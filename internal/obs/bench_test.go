package obs

import (
	"fmt"
	"io"
	"math"
	"testing"
	"time"
)

// The disabled-path benchmarks behind BENCH_obs3.json: the text exposition
// (which the telemetry-history layer threads through the ?prefix= filter)
// and the alert evaluation loop (which now collects transitions for the
// OnTransition hook). Both must stay within the repo's <2% off-path budget
// against the pre-history tree.

// benchRegistry populates a registry the size of a fully wired server's:
// labelled counters and gauges plus a few histograms.
func benchRegistry() *Registry {
	reg := NewRegistry()
	for i := 0; i < 16; i++ {
		video := Labels{"video": fmt.Sprint(i + 1)}
		reg.CounterWith("bench_requests_total", "Requests per video.", video).Add(float64(i * 7))
		reg.GaugeWith("bench_channel_load", "Streams per video.", video).Set(float64(i) / 3)
	}
	for i := 0; i < 8; i++ {
		reg.Counter(fmt.Sprintf("bench_plain_%d_total", i), "A plain counter.").Add(float64(i))
	}
	for i := 0; i < 4; i++ {
		h := reg.Histogram(fmt.Sprintf("bench_latency_%d_seconds", i), "A latency histogram.",
			[]float64{0.001, 0.01, 0.1, 1})
		for j := 0; j < 10; j++ {
			h.Observe(float64(j) * 0.013)
		}
	}
	return reg
}

func BenchmarkWritePrometheus(b *testing.B) {
	reg := benchRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowObserve is the machine-drift control for the A/B in
// BENCH_obs3.json: obs.Window is untouched by the telemetry-history layer,
// so its ratio across trees isolates machine noise from real overhead.
func BenchmarkWindowObserve(b *testing.B) {
	w := NewWindow(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i & 1023))
	}
}

func BenchmarkAlertEngineEval(b *testing.B) {
	e := NewAlertEngine()
	for i := 0; i < 4; i++ {
		rule := AlertRule{
			Name:      fmt.Sprintf("bench_rule_%d", i),
			Severity:  "warning",
			Value:     func() float64 { return 0.1 },
			Threshold: 1,
			For:       time.Minute,
		}
		if i == 3 {
			rule.Value = func() float64 { return math.NaN() } // the no-data path
		}
		if err := e.Add(rule); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval()
	}
}
