// Package broadcast implements the proactive (static) broadcasting protocols
// of the paper's related work: Juhn and Tseng's fast broadcasting (FB,
// Figure 1), Pâris's pagoda-family broadcasting standing in for new pagoda
// broadcasting (NPB, Figure 2), and Hua and Sheu's skyscraper broadcasting
// (SB, Figure 3).
//
// All three share one representation: each server stream is partitioned into
// M substreams by slot residue, and substream r carries a run of consecutive
// segments round-robin. A segment carried by a substream with Count segments
// and slot spacing M is rebroadcast with period Count*M, and every protocol
// maintains the broadcasting invariant period(S_i) <= i, which guarantees
// that a client downloading all streams from the slot after its arrival
// receives every segment in time.
package broadcast

import (
	"fmt"
	"strings"
)

// Substream is a run of Count consecutive segments starting at Start,
// broadcast round-robin in the slots of one residue class of its stream.
// A Count of zero marks an unused (idle) substream.
type Substream struct {
	Start int
	Count int
}

// Stream is one server channel: M substreams interleaved by slot residue.
// Subs must have length M.
type Stream struct {
	M    int
	Subs []Substream
}

// Mapping is a complete segment-to-stream assignment for segments 1..N.
type Mapping struct {
	n       int
	streams []Stream
	// segHome[i] locates segment i: stream index and substream index.
	segHome []struct{ stream, sub int }
}

// NewMapping validates and indexes a hand-built stream layout covering
// segments 1..n exactly once.
func NewMapping(n int, streams []Stream) (*Mapping, error) {
	m := &Mapping{n: n, streams: streams}
	m.segHome = make([]struct{ stream, sub int }, n+1)
	seen := make([]bool, n+1)
	for js, st := range streams {
		if st.M <= 0 || len(st.Subs) != st.M {
			return nil, fmt.Errorf("broadcast: stream %d has M=%d with %d substreams", js+1, st.M, len(st.Subs))
		}
		for r, sub := range st.Subs {
			if sub.Count < 0 {
				return nil, fmt.Errorf("broadcast: stream %d substream %d has negative count", js+1, r)
			}
			for k := 0; k < sub.Count; k++ {
				seg := sub.Start + k
				if seg < 1 || seg > n {
					return nil, fmt.Errorf("broadcast: segment %d outside 1..%d", seg, n)
				}
				if seen[seg] {
					return nil, fmt.Errorf("broadcast: segment %d assigned twice", seg)
				}
				seen[seg] = true
				m.segHome[seg] = struct{ stream, sub int }{js, r}
			}
		}
	}
	for s := 1; s <= n; s++ {
		if !seen[s] {
			return nil, fmt.Errorf("broadcast: segment %d unassigned", s)
		}
	}
	if err := m.checkPeriods(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Mapping) checkPeriods() error {
	for s := 1; s <= m.n; s++ {
		if p := m.Period(s); p > s {
			return fmt.Errorf("broadcast: segment %d has period %d > %d, violating the broadcasting invariant", s, p, s)
		}
	}
	return nil
}

// N reports the number of segments.
func (m *Mapping) N() int { return m.n }

// Streams reports the number of server streams (channels).
func (m *Mapping) Streams() int { return len(m.streams) }

// Period reports the rebroadcast period of segment s in slots.
func (m *Mapping) Period(s int) int {
	home := m.segHome[s]
	st := m.streams[home.stream]
	return st.Subs[home.sub].Count * st.M
}

// SegmentAt reports which segment stream j (0-based) broadcasts during
// absolute slot t (0-based), or 0 if that slot is idle.
func (m *Mapping) SegmentAt(j, t int) int {
	st := m.streams[j]
	r := t % st.M
	sub := st.Subs[r]
	if sub.Count == 0 {
		return 0
	}
	idx := (t / st.M) % sub.Count
	return sub.Start + idx
}

// FirstOccurrenceAfter reports the earliest slot strictly after slot t in
// which segment s is broadcast.
func (m *Mapping) FirstOccurrenceAfter(s, t int) int {
	home := m.segHome[s]
	st := m.streams[home.stream]
	sub := st.Subs[home.sub]
	// Segment s occupies slots with residue home.sub (mod st.M) whose
	// round-robin index matches its offset inside the substream.
	offset := s - sub.Start
	// Slots carrying s satisfy: slot = (q*sub.Count + offset)*st.M + home.sub.
	period := sub.Count * st.M
	first := offset*st.M + home.sub
	if first > t {
		return first
	}
	k := (t - first) / period
	return first + (k+1)*period
}

// Render draws the first `slots` slots of every stream as rows of segment
// labels, the format of the paper's Figures 1-3.
func (m *Mapping) Render(slots int) []string {
	rows := make([]string, len(m.streams))
	for j := range m.streams {
		var b strings.Builder
		for t := 0; t < slots; t++ {
			if t > 0 {
				b.WriteByte(' ')
			}
			if s := m.SegmentAt(j, t); s == 0 {
				b.WriteString("--")
			} else {
				fmt.Fprintf(&b, "S%d", s)
			}
		}
		rows[j] = b.String()
	}
	return rows
}
