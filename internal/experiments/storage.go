package experiments

import (
	"fmt"

	"vodcast/internal/core"
	"vodcast/internal/sim"
	"vodcast/internal/storage"
	"vodcast/internal/workload"
)

// StorageRow compares disk provisioning for one scheduling policy.
type StorageRow struct {
	Policy       string
	PeakLoad     int
	DisksNeeded  int
	MinDiskBound int
	MaxBusy      float64
	MeanBusy     float64
}

// StorageConfig parameterizes the disk-provisioning study.
type StorageConfig struct {
	Segments     int
	VideoSeconds float64
	// SegmentBytes is the on-disk size of one segment.
	SegmentBytes float64
	// RatePerHour drives the demand.
	RatePerHour  float64
	HorizonSlots int
	Seed         int64
	// Disk is the drive model; MaxDisks bounds the search.
	Disk     storage.Disk
	MaxDisks int
}

// DefaultStorageConfig provisions the paper's two-hour video (46 MB per
// 73-second segment at the trace's mean rate) on deliberately slow drives so
// peak structure dominates.
func DefaultStorageConfig() StorageConfig {
	return StorageConfig{
		Segments:     99,
		VideoSeconds: 7200,
		SegmentBytes: 46e6,
		RatePerHour:  150,
		HorizonSlots: 6000,
		Seed:         5,
		Disk:         storage.Disk{OverheadSeconds: 0.010, TransferBytesPerSecond: 5e6},
		MaxDisks:     64,
	}
}

// Storage records the transmission schedule of each DHB placement policy
// under identical demand and reports the striped disk array each needs —
// the I/O side of Figure 8's bandwidth-peak comparison.
func Storage(cfg StorageConfig) ([]StorageRow, error) {
	if cfg.Segments <= 0 || cfg.VideoSeconds <= 0 || cfg.SegmentBytes <= 0 {
		return nil, fmt.Errorf("experiments: storage study needs positive segments/duration/bytes")
	}
	if cfg.RatePerHour <= 0 || cfg.HorizonSlots <= 0 || cfg.MaxDisks <= 0 {
		return nil, fmt.Errorf("experiments: storage study needs positive rate/horizon/disks")
	}
	policies := []struct {
		name   string
		policy core.Policy
	}{
		{name: "DHB heuristic", policy: core.PolicyHeuristic},
		{name: "min-load earliest", policy: core.PolicyMinLoadEarliest},
		{name: "naive latest-slot", policy: core.PolicyNaive},
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]StorageRow, 0, len(policies))
	for _, p := range policies {
		s, err := core.New(core.Config{Segments: cfg.Segments, Policy: p.policy, TrackSegments: true})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		rng := sim.NewRNG(cfg.Seed)
		arrivals := workload.NewSlottedArrivals(rng, workload.Constant(cfg.RatePerHour), d)
		sched := storage.Schedule{SlotSeconds: d}
		peak := 0
		for slot := 0; slot < cfg.HorizonSlots; slot++ {
			for a := 0; a < arrivals.Next(); a++ {
				s.AdmitRequest(core.AdmitOptions{})
			}
			rep := s.AdvanceSlot()
			if rep.Load > peak {
				peak = rep.Load
			}
			reads := make([]storage.Read, 0, len(rep.Segments))
			for _, seg := range rep.Segments {
				reads = append(reads, storage.Read{Video: 0, Segment: seg, Bytes: cfg.SegmentBytes})
			}
			sched.Slots = append(sched.Slots, reads)
		}
		disks, err := storage.DisksNeeded(cfg.Disk, sched, cfg.MaxDisks)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.name, err)
		}
		bound, err := storage.MinDiskBound(cfg.Disk, sched)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.name, err)
		}
		rep, err := storage.Evaluate(cfg.Disk, sched, disks)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.name, err)
		}
		rows = append(rows, StorageRow{
			Policy:       p.name,
			PeakLoad:     peak,
			DisksNeeded:  disks,
			MinDiskBound: bound,
			MaxBusy:      rep.MaxBusyFraction,
			MeanBusy:     rep.MeanBusyFraction,
		})
	}
	return rows, nil
}
