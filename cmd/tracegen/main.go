// Command tracegen emits the synthetic VBR trace standing in for the
// paper's Section 4 movie, either as CSV (second,bytes) or as a summary of
// its statistics.
//
// Usage:
//
//	tracegen -seed 42 > matrix.csv
//	tracegen -seed 42 -summary
//	tracegen -seconds 3600 -mean 500000 -peak 800000 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"vodcast/internal/trace"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "RNG seed")
		seconds = flag.Int("seconds", 0, "duration in seconds (0 = the paper's 8170)")
		mean    = flag.Float64("mean", 0, "mean rate in bytes/s (0 = the paper's 636000)")
		peak    = flag.Float64("peak", 0, "peak one-second rate in bytes/s (0 = the paper's 951000)")
		summary = flag.Bool("summary", false, "print statistics instead of the CSV body")
	)
	flag.Parse()
	if err := run(*seed, *seconds, *mean, *peak, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(seed int64, seconds int, mean, peak float64, summary bool) error {
	cfg := trace.MatrixConfig()
	if seconds > 0 {
		cfg.Seconds = seconds
	}
	if mean > 0 {
		cfg.MeanRate = mean
	}
	if peak > 0 {
		cfg.PeakRate = peak
	}
	tr, err := trace.Synthetic(cfg, seed)
	if err != nil {
		return err
	}
	if summary {
		fmt.Printf("duration: %d s\n", tr.Seconds())
		fmt.Printf("mean rate: %.0f B/s\n", tr.Mean())
		fmt.Printf("peak 1 s rate: %.0f B/s\n", tr.Peak())
		fmt.Printf("total size: %.0f bytes\n", tr.TotalBytes())
		return nil
	}
	return trace.WriteCSV(os.Stdout, tr)
}
