// Package reactive implements the reactive (purely on-demand) distribution
// protocols of the paper's evaluation and related work: stream tapping /
// patching with unlimited client buffers (the Figure 7 comparator), request
// batching, and selective catching, plus the classical merging lower bound
// for context.
//
// All simulators run in continuous time on the internal/sim event loop and
// report time-weighted bandwidth in multiples of the video consumption rate.
package reactive

import (
	"fmt"
	"math"

	"vodcast/internal/metrics"
	"vodcast/internal/sim"
)

// Config parameterizes a reactive-protocol simulation.
type Config struct {
	// RatePerHour is the Poisson request arrival rate.
	RatePerHour float64
	// VideoSeconds is the video duration D.
	VideoSeconds float64
	// HorizonSeconds is the simulated time span.
	HorizonSeconds float64
	// WarmupSeconds excludes the initial transient from the statistics.
	WarmupSeconds float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c Config) validate() error {
	if c.RatePerHour <= 0 {
		return fmt.Errorf("reactive: rate %v must be positive", c.RatePerHour)
	}
	if c.VideoSeconds <= 0 {
		return fmt.Errorf("reactive: video duration %v must be positive", c.VideoSeconds)
	}
	if c.HorizonSeconds <= c.WarmupSeconds {
		return fmt.Errorf("reactive: horizon %v must exceed warmup %v", c.HorizonSeconds, c.WarmupSeconds)
	}
	if c.WarmupSeconds < 0 {
		return fmt.Errorf("reactive: warmup %v must be non-negative", c.WarmupSeconds)
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	// AvgBandwidth is the time-weighted mean number of concurrent streams.
	AvgBandwidth float64
	// MaxBandwidth is the peak number of concurrent streams.
	MaxBandwidth float64
	// Requests counts the customers served.
	Requests int64
	// CompleteStreams counts full-length streams started.
	CompleteStreams int64
	// PartialStreams counts taps / patches / catch-up streams started.
	PartialStreams int64
	// AvgWait and MaxWait are customer waiting times in seconds.
	AvgWait float64
	MaxWait float64
}

// gauge tracks the number of concurrent streams, feeding the bandwidth
// accumulator only after the warmup boundary.
type gauge struct {
	counter *metrics.Counter
	active  float64
	warmup  float64
	started bool
}

func newGauge(bw *metrics.Bandwidth, warmup float64) *gauge {
	return &gauge{counter: metrics.NewCounter(bw), warmup: warmup}
}

func (g *gauge) add(delta, now float64) {
	g.active += delta
	if now < g.warmup {
		return
	}
	if !g.started {
		g.counter.Set(g.active, g.warmup)
		g.started = true
		return
	}
	g.counter.Set(g.active, now)
}

func (g *gauge) finish(now float64) {
	if !g.started {
		g.counter.Set(g.active, g.warmup)
	}
	g.counter.Finish(now)
}

// Tapping simulates stream tapping / patching with unlimited client buffers,
// the reactive comparator of Figure 7. Every arrival is served immediately:
// either by a new complete stream of length D or by a tap stream carrying
// only the first delta = t - t0 seconds of the video while the client taps
// the rest from the latest complete stream. The server restarts a complete
// stream whenever delta reaches the adaptive threshold sqrt(2 D / lambda),
// the window that minimizes the long-run bandwidth of threshold patching,
// with lambda estimated online from observed interarrival times.
func Tapping(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var (
		rng    = sim.NewRNG(cfg.Seed)
		proc   = sim.NewPoissonProcess(rng, cfg.RatePerHour/3600)
		loop   = sim.NewLoop()
		bw     = metrics.NewBandwidth()
		g      = newGauge(bw, cfg.WarmupSeconds)
		res    Result
		d      = cfg.VideoSeconds
		iatEst = 3600 / cfg.RatePerHour // warm-start at the true mean
		last   = 0.0
		// lastComplete is the start time of the latest complete stream;
		// none exists before the first arrival.
		lastComplete = math.Inf(-1)
	)
	startStream := func(at, length float64) {
		g.add(1, at)
		loop.At(at+length, func(now float64) { g.add(-1, now) })
	}
	for {
		t := proc.Next()
		if t >= cfg.HorizonSeconds {
			break
		}
		loop.Run(t)
		if res.Requests > 0 {
			iatEst = 0.95*iatEst + 0.05*(t-last)
		}
		last = t
		res.Requests++

		delta := t - lastComplete
		threshold := math.Min(d, math.Sqrt(2*d*iatEst))
		if delta >= threshold || delta >= d {
			lastComplete = t
			res.CompleteStreams++
			startStream(t, d)
			continue
		}
		res.PartialStreams++
		startStream(t, delta)
	}
	loop.Run(cfg.HorizonSeconds)
	g.finish(cfg.HorizonSeconds)
	res.AvgBandwidth = bw.Mean()
	res.MaxBandwidth = bw.Max()
	// Tapping offers zero-delay access.
	res.AvgWait, res.MaxWait = 0, 0
	return res, nil
}

// Batching simulates the earliest bandwidth-saving approach of the related
// work: requests queue and a single complete stream serves everyone waiting
// at each multiple of windowSeconds.
func Batching(cfg Config, windowSeconds float64) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if windowSeconds <= 0 {
		return Result{}, fmt.Errorf("reactive: batching window %v must be positive", windowSeconds)
	}
	var (
		rng       = sim.NewRNG(cfg.Seed)
		proc      = sim.NewPoissonProcess(rng, cfg.RatePerHour/3600)
		loop      = sim.NewLoop()
		bw        = metrics.NewBandwidth()
		g         = newGauge(bw, cfg.WarmupSeconds)
		waits     = metrics.NewWait()
		res       Result
		scheduled = -1.0 // departure boundary that already has a stream
	)
	for {
		t := proc.Next()
		if t >= cfg.HorizonSeconds {
			break
		}
		loop.Run(t)
		res.Requests++
		// The batch departs at the next window boundary.
		depart := (math.Floor(t/windowSeconds) + 1) * windowSeconds
		waits.Record(depart - t)
		if depart == scheduled {
			continue // this batch's stream is already scheduled
		}
		scheduled = depart
		res.CompleteStreams++
		loop.At(depart, func(now float64) {
			g.add(1, now)
			loop.At(now+cfg.VideoSeconds, func(end float64) { g.add(-1, end) })
		})
	}
	loop.Run(cfg.HorizonSeconds)
	g.finish(cfg.HorizonSeconds)
	res.AvgBandwidth = bw.Mean()
	res.MaxBandwidth = bw.Max()
	res.AvgWait = waits.Mean()
	res.MaxWait = waits.Max()
	return res, nil
}

// SelectiveCatching simulates Gao, Zhang and Towsley's hybrid: channels
// dedicated to staggered periodic broadcasts of the whole video (one start
// every D/channels), plus a unicast catch-up stream per request carrying the
// gap back to the preceding broadcast start. Requests within the same gap
// share the catch-up stream of their group leader.
func SelectiveCatching(cfg Config, channels int) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if channels <= 0 {
		return Result{}, fmt.Errorf("reactive: channel count %d must be positive", channels)
	}
	var (
		rng     = sim.NewRNG(cfg.Seed)
		proc    = sim.NewPoissonProcess(rng, cfg.RatePerHour/3600)
		loop    = sim.NewLoop()
		bw      = metrics.NewBandwidth()
		g       = newGauge(bw, cfg.WarmupSeconds)
		res     Result
		period  = cfg.VideoSeconds / float64(channels)
		lastCat = math.Inf(-1) // broadcast-cycle start covered by the newest catch-up stream
	)
	// The dedicated channels are always on.
	g.add(float64(channels), 0)
	res.CompleteStreams = int64(channels)
	for {
		t := proc.Next()
		if t >= cfg.HorizonSeconds {
			break
		}
		loop.Run(t)
		res.Requests++
		cycle := math.Floor(t/period) * period
		if cycle <= lastCat {
			// An existing catch-up stream already carries this gap prefix;
			// the client taps it (unlimited buffer) and the broadcast.
			continue
		}
		lastCat = cycle
		res.PartialStreams++
		gap := t - cycle
		if gap > 0 {
			g.add(1, t)
			loop.At(t+gap, func(now float64) { g.add(-1, now) })
		}
	}
	loop.Run(cfg.HorizonSeconds)
	g.finish(cfg.HorizonSeconds)
	res.AvgBandwidth = bw.Mean()
	res.MaxBandwidth = bw.Max()
	return res, nil
}

// MergingLowerBound returns Eager, Vernon and Zahorjan's lower bound on the
// average server bandwidth of any reactive protocol that delivers immediate
// service with unconstrained client bandwidth: ln(1 + lambda D) in units of
// the consumption rate.
func MergingLowerBound(ratePerHour, videoSeconds float64) float64 {
	return math.Log(1 + ratePerHour/3600*videoSeconds)
}
