// Package station is the concurrent multi-video broadcast engine: it owns
// one DHB scheduler per catalogue video and partitions them across worker
// shards so admissions for different videos proceed in parallel.
//
// The paper's introduction motivates a server distributing a whole catalogue
// under per-video demand; core.Scheduler deliberately has no concurrency
// story (one goroutine per scheduler), so catalogue-scale service is a
// sharding problem, exactly as Viennot et al. treat distributed VoD as a
// parallel-channel problem. The design:
//
//   - Sharding. Videos are assigned round-robin to S shards; each shard
//     guards its schedulers with its own mutex. Admissions for videos on
//     different shards never contend.
//   - One clock. A single optional clock goroutine fans AdvanceSlot ticks
//     out to every shard (in parallel) so all videos share the slot grid;
//     deterministic drivers call AdvanceSlot themselves instead.
//   - Batched admission. Enqueue appends a request to the shard's bounded
//     pending queue and returns immediately; the batch is applied under one
//     lock acquisition when it reaches FlushBatch requests, and always
//     before the shard's next AdvanceSlot — a request enqueued during slot
//     i is admitted in slot i, so batching never changes DHB semantics.
//   - Overload. A full pending queue rejects with ErrOverloaded instead of
//     blocking: under overload the engine degrades by shedding admissions,
//     never by stalling the broadcast clock.
//
// Within one slot, admissions for the same video are identical operations,
// so any interleaving of shard work yields the same per-video schedule as a
// sequential run with the same per-slot arrival counts; station_test.go
// proves this equivalence against K independent core schedulers.
package station

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vodcast/internal/core"
	"vodcast/internal/obs"
)

// Sentinel errors. Construction errors wrap these (and the core sentinels
// for per-video scheduler problems) with context; runtime errors from Admit
// and Enqueue are classifiable with errors.Is.
var (
	// ErrEmptyCatalogue reports a Config with no videos.
	ErrEmptyCatalogue = errors.New("station: empty catalogue")
	// ErrBadShards reports a negative Config.Shards.
	ErrBadShards = errors.New("station: shard count must be non-negative")
	// ErrBadQueueDepth reports a negative Config.QueueDepth.
	ErrBadQueueDepth = errors.New("station: queue depth must be non-negative")
	// ErrBadFlushBatch reports a negative Config.FlushBatch.
	ErrBadFlushBatch = errors.New("station: flush batch must be non-negative")
	// ErrBadSlotDuration reports a non-positive StartClock interval.
	ErrBadSlotDuration = errors.New("station: slot duration must be positive")
	// ErrUnknownVideo reports a video index outside the catalogue.
	ErrUnknownVideo = errors.New("station: unknown video")
	// ErrOverloaded reports an Enqueue against a full shard queue; the
	// request was shed, not blocked.
	ErrOverloaded = errors.New("station: admission queue full")
	// ErrClosed reports an operation against a closed station.
	ErrClosed = errors.New("station: closed")
	// ErrClockRunning reports a second StartClock without a StopClock.
	ErrClockRunning = errors.New("station: clock already running")
)

// VideoConfig describes one catalogue video of a station.
type VideoConfig struct {
	// Name labels the video in reports and metrics ("" is allowed).
	Name string
	// Segments is the DHB segment count n.
	Segments int
	// Periods optionally carries a DHB-d period vector; nil selects the CBR
	// default T[i] = i.
	Periods []int
	// TrackSegments records which segment ids occupy each slot (needed when
	// slot reports feed a data plane, as in vodserver).
	TrackSegments bool
	// Observer optionally receives the video's scheduling decisions. It is
	// invoked under the owning shard's lock, possibly from clock or flush
	// goroutines, so it must be safe for use from multiple goroutines over
	// time (obs.SchedObserver over a Tracer is).
	Observer core.Observer
}

// Config parameterizes a station.
type Config struct {
	// Videos is the catalogue. Video indices in the station API are indices
	// into this slice.
	Videos []VideoConfig
	// Shards is the number of worker shards; 0 selects
	// min(GOMAXPROCS, len(Videos)).
	Shards int
	// QueueDepth bounds each shard's pending (asynchronous) admission
	// queue; an Enqueue against a full queue is rejected with
	// ErrOverloaded. 0 selects DefaultQueueDepth.
	QueueDepth int
	// FlushBatch is the pending-queue length that triggers an immediate
	// batch flush; smaller batches trade lock amortization for admission
	// latency. 0 selects DefaultFlushBatch.
	FlushBatch int
	// Registry optionally receives the per-shard gauges and counters
	// (station_shard_queue_depth, station_shard_admits_total,
	// station_shard_rejects_total).
	Registry *obs.Registry
}

// Defaults for the zero values of Config.
const (
	DefaultQueueDepth = 1024
	DefaultFlushBatch = 64
)

// pendingReq is one asynchronously enqueued admission. Arrival instants for
// the enqueue-wait stage live in the shard's parallel enqTimes slice, kept
// separate so the uninstrumented queue stays two words per request.
type pendingReq struct {
	video int
	from  int
}

// stage is one instrumented pipeline stage: a histogram for scrape-horizon
// distributions and a rolling window for the live p50/p95/p99 that /statusz
// and vodtop render.
type stage struct {
	hist *obs.Histogram
	win  *obs.Window
}

func (s *stage) observe(v float64) {
	s.hist.Observe(v)
	s.win.Observe(v)
}

// Stage names of the admission pipeline, the keys of Status.Stages.
const (
	// StageEnqueueWait is the time a batched admission waits in the shard
	// queue between Enqueue and its flush.
	StageEnqueueWait = "enqueue_wait"
	// StageLockWait is the time an admission waits for its shard's lock.
	StageLockWait = "lock_wait"
	// StageAdmit is the scheduler service time under the shard lock.
	StageAdmit = "admit"
	// StageQueueDepth is the shard queue depth sampled at every flush (a
	// request count, not seconds).
	StageQueueDepth = "queue_depth"
)

// stageBuckets bound the stage histograms: admission stages complete in
// microseconds unloaded and the interesting tail is milliseconds, so the
// default 5ms-and-up latency buckets would flatten everything into one bin.
var stageBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.25, 1,
}

// depthBuckets bound the sampled queue-depth histogram.
var depthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// stationObs carries every instrument of an observed station; a nil
// *stationObs disables the whole layer for one predictable branch per hot
// path.
type stationObs struct {
	enqueueWait stage
	lockWait    stage
	admit       stage
	queueDepth  stage

	clockLag   *obs.Gauge
	clockDrift *obs.Gauge
	clockTicks *obs.Counter
	clockWin   *obs.Window
}

// newStationObs registers the pipeline instruments on reg.
func newStationObs(reg *obs.Registry) *stationObs {
	o := &stationObs{}
	latency := func(name string, st *stage) {
		st.hist = reg.HistogramWith("station_stage_seconds",
			"Admission pipeline stage latencies.", stageBuckets, obs.Labels{"stage": name})
		st.win = obs.NewWindow(0)
	}
	latency(StageEnqueueWait, &o.enqueueWait)
	latency(StageLockWait, &o.lockWait)
	latency(StageAdmit, &o.admit)
	o.queueDepth.hist = reg.Histogram("station_queue_depth_sampled",
		"Shard pending-queue depth sampled at every flush (requests, not seconds).", depthBuckets)
	o.queueDepth.win = obs.NewWindow(0)
	o.clockLag = reg.Gauge("station_clock_tick_lag_seconds",
		"Lag of the most recent clock tick behind its scheduled time.")
	o.clockDrift = reg.Gauge("station_clock_slot_drift_slots",
		"Clock tick lag expressed in slot durations; >=1 means a whole slot slipped.")
	o.clockTicks = reg.Counter("station_clock_ticks_total",
		"Slot ticks fanned out by the clock goroutine.")
	o.clockWin = obs.NewWindow(0)
	return o
}

// stationVideo binds one catalogue video to its scheduler and shard.
type stationVideo struct {
	name  string
	sched *core.Scheduler
	shard int
}

// shard is one worker partition: a mutex, the videos it owns, and the
// bounded pending queue of batched admissions.
type shard struct {
	mu      sync.Mutex
	videos  []int // station video indices owned by this shard
	pending []pendingReq
	// enqTimes shadows pending with per-request enqueue instants. It is
	// only appended to when the station is instrumented, keeping
	// pendingReq small (pure memory traffic) on the disabled path.
	enqTimes []time.Time
	// assign is the shard's reusable assignment scratch: Admit and
	// AdmitBatch serve WantAssignment from it (growing it on demand) when
	// the caller supplies no buffer of their own, keeping the traced admit
	// path allocation-free in steady state. Guarded by mu.
	assign []int

	// Per-shard observability (nil without a Registry).
	queueDepth *obs.Gauge
	admits     *obs.Counter
	rejects    *obs.Counter
}

// Station is a sharded multi-video DHB broadcast engine. All methods are
// safe for concurrent use.
type Station struct {
	videos     []*stationVideo
	shards     []*shard
	queueCap   int
	flushBatch int

	// obs is the pipeline instrumentation, nil when Config.Registry was
	// nil: every hot path pays exactly one branch for the disabled layer.
	obs *stationObs

	closed atomic.Bool

	clockMu   sync.Mutex
	clockStop chan struct{}
	clockWG   sync.WaitGroup

	// Clock health, readable without the clock mutex: tick count, the last
	// tick's lag behind schedule (nanoseconds) and the configured interval
	// (nanoseconds; 0 when no clock is running).
	clockTicks    atomic.Uint64
	clockLagNanos atomic.Int64
	clockInterval atomic.Int64
}

// New validates cfg and builds the station with every scheduler at slot 0.
func New(cfg Config) (*Station, error) {
	if len(cfg.Videos) == 0 {
		return nil, ErrEmptyCatalogue
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadShards, cfg.Shards)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadQueueDepth, cfg.QueueDepth)
	}
	if cfg.FlushBatch < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadFlushBatch, cfg.FlushBatch)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(cfg.Videos) {
		shards = len(cfg.Videos)
	}
	st := &Station{
		videos:     make([]*stationVideo, len(cfg.Videos)),
		shards:     make([]*shard, shards),
		queueCap:   cfg.QueueDepth,
		flushBatch: cfg.FlushBatch,
	}
	if st.queueCap == 0 {
		st.queueCap = DefaultQueueDepth
	}
	if st.flushBatch == 0 {
		st.flushBatch = DefaultFlushBatch
	}
	if cfg.Registry != nil {
		st.obs = newStationObs(cfg.Registry)
	}
	for i := range st.shards {
		sh := &shard{}
		if cfg.Registry != nil {
			ls := obs.Labels{"shard": fmt.Sprint(i)}
			sh.queueDepth = cfg.Registry.GaugeWith("station_shard_queue_depth",
				"Admissions batched in the shard's pending queue, waiting for the next flush.", ls)
			sh.admits = cfg.Registry.CounterWith("station_shard_admits_total",
				"Requests admitted through the shard (synchronous and batched).", ls)
			sh.rejects = cfg.Registry.CounterWith("station_shard_rejects_total",
				"Requests shed by the shard: queue overload or invalid resume points.", ls)
		}
		st.shards[i] = sh
	}
	for i, vc := range cfg.Videos {
		sched, err := core.New(core.Config{
			Segments:      vc.Segments,
			Periods:       vc.Periods,
			TrackSegments: vc.TrackSegments,
			Observer:      vc.Observer,
		})
		if err != nil {
			return nil, fmt.Errorf("station: video %d (%q): %w", i, vc.Name, err)
		}
		shardIdx := i % shards
		st.videos[i] = &stationVideo{name: vc.Name, sched: sched, shard: shardIdx}
		sh := st.shards[shardIdx]
		sh.videos = append(sh.videos, i)
	}
	return st, nil
}

// Videos reports the catalogue size.
func (st *Station) Videos() int { return len(st.videos) }

// Shards reports the number of worker shards.
func (st *Station) Shards() int { return len(st.shards) }

// ShardOf reports which shard owns the video.
func (st *Station) ShardOf(video int) int { return st.videos[video].shard }

// Name reports the video's configured label.
func (st *Station) Name(video int) string { return st.videos[video].name }

// FanoutSpans partitions the catalogue's video index range [0, Videos())
// into at most n contiguous near-equal half-open spans — the work
// assignment hint for a parallel fan-out walking the clock's per-slot
// reports, which are indexed by video. Contiguity is what matters for the
// consumer: each span worker touches a dense range of the report slice and
// of the caller's parallel video array, never interleaving cache lines
// with its neighbours. Spans differ in length by at most one video; fewer
// than n spans come back when the catalogue is smaller than n.
func (st *Station) FanoutSpans(n int) [][2]int {
	videos := len(st.videos)
	if n > videos {
		n = videos
	}
	if n < 1 {
		n = 1
	}
	spans := make([][2]int, n)
	base, rem := videos/n, videos%n
	lo := 0
	for i := range spans {
		size := base
		if i < rem {
			size++
		}
		spans[i] = [2]int{lo, lo + size}
		lo += size
	}
	return spans
}

// Periods returns a copy of the video's resolved 1-based period vector
// (CBR defaults applied).
func (st *Station) Periods(video int) []int {
	sched := st.videos[video].sched
	periods := make([]int, sched.N()+1)
	for j := 1; j <= sched.N(); j++ {
		periods[j] = sched.Period(j)
	}
	return periods
}

// checkVideo validates a video index.
func (st *Station) checkVideo(video int) error {
	if video < 0 || video >= len(st.videos) {
		return fmt.Errorf("%w: index %d outside 0..%d", ErrUnknownVideo, video, len(st.videos)-1)
	}
	return nil
}

// Admit synchronously admits one request for the video under its shard's
// lock, flushing any batched admissions first so arrival order is
// preserved. Admissions for videos on different shards run in parallel.
//
// When opts.WantAssignment is set without a caller-supplied
// opts.Assignment buffer, the returned assignment aliases a per-shard
// scratch buffer that the shard's next assignment-carrying admission
// overwrites: callers that retain it must copy it out, or pass their own
// AdmitOptions.Assignment.
func (st *Station) Admit(video int, opts core.AdmitOptions) (core.AdmitResult, error) {
	return st.admitBatch(video, 1, opts)
}

// AdmitBatch synchronously admits count identical requests for the video —
// the coalesced form of a same-slot duplicate burst — under one shard lock
// acquisition and one scheduler call: the first request runs the full
// placement loop and, uncapped and unobserved, each later one is an O(1)
// same-slot memo hit. The result carries the batch's total Placed and (when
// requested) the final request's assignment, under the same scratch-buffer
// aliasing rule as Admit. A non-positive count is rejected with
// core.ErrBadBatchCount.
func (st *Station) AdmitBatch(video, count int, opts core.AdmitOptions) (core.AdmitResult, error) {
	return st.admitBatch(video, count, opts)
}

func (st *Station) admitBatch(video, count int, opts core.AdmitOptions) (core.AdmitResult, error) {
	if st.closed.Load() {
		return core.AdmitResult{}, ErrClosed
	}
	if err := st.checkVideo(video); err != nil {
		return core.AdmitResult{}, err
	}
	sh := st.shards[st.videos[video].shard]
	// The instrumented path brackets the lock acquisition and the
	// scheduler service with clock reads; the disabled path pays one nil
	// check and no clock.
	var t0 time.Time
	if st.obs != nil {
		t0 = time.Now()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var tLocked time.Time
	if st.obs != nil {
		tLocked = time.Now()
		st.obs.lockWait.observe(tLocked.Sub(t0).Seconds())
	}
	sh.flushLocked(st)
	useScratch := opts.WantAssignment && opts.Assignment == nil
	if useScratch {
		opts.Assignment = sh.assign
	}
	res, err := st.videos[video].sched.AdmitBatch(count, opts)
	if st.obs != nil {
		st.obs.admit.observe(time.Since(tLocked).Seconds())
	}
	if err != nil {
		if sh.rejects != nil {
			sh.rejects.Inc()
		}
		return core.AdmitResult{}, err
	}
	if useScratch {
		// Keep the (possibly grown) buffer for the shard's next admission.
		sh.assign = res.Assignment
	}
	if sh.admits != nil {
		sh.admits.Add(float64(count))
	}
	return res, nil
}

// Enqueue appends one full-viewing-or-resume admission (from <= 1 means a
// full viewing) to the video's shard queue and returns without waiting for
// it to be applied. The batch flushes when it reaches FlushBatch requests
// and always before the shard's next AdvanceSlot, so the request is
// admitted in the slot it arrived in. A full queue rejects with
// ErrOverloaded.
func (st *Station) Enqueue(video, from int) error {
	if st.closed.Load() {
		return ErrClosed
	}
	if err := st.checkVideo(video); err != nil {
		return err
	}
	sched := st.videos[video].sched
	if from > sched.N() {
		shd := st.shards[st.videos[video].shard]
		if shd.rejects != nil {
			shd.rejects.Inc()
		}
		return fmt.Errorf("%w: segment %d outside 1..%d", core.ErrBadResumePoint, from, sched.N())
	}
	if from < 1 {
		from = 1
	}
	sh := st.shards[st.videos[video].shard]
	var t0 time.Time
	if st.obs != nil {
		t0 = time.Now()
	}
	sh.mu.Lock()
	if st.obs != nil {
		st.obs.lockWait.observe(time.Since(t0).Seconds())
	}
	if len(sh.pending) >= st.queueCap {
		sh.mu.Unlock()
		if sh.rejects != nil {
			sh.rejects.Inc()
		}
		return fmt.Errorf("%w: shard %d at depth %d", ErrOverloaded, st.videos[video].shard, st.queueCap)
	}
	if st.obs != nil {
		sh.enqTimes = append(sh.enqTimes, time.Now())
	}
	sh.pending = append(sh.pending, pendingReq{video: video, from: from})
	if len(sh.pending) >= st.flushBatch {
		sh.flushLocked(st)
	} else if sh.queueDepth != nil {
		sh.queueDepth.Set(float64(len(sh.pending)))
	}
	sh.mu.Unlock()
	return nil
}

// flushLocked applies the shard's pending admissions in arrival order,
// coalescing runs of identical (video, from) requests — the common shape of
// a same-slot flash crowd — into single scheduler batch calls. The caller
// holds sh.mu. Requests were validated at Enqueue, so admission cannot
// fail.
func (sh *shard) flushLocked(st *Station) {
	if len(sh.pending) == 0 {
		return
	}
	if st.obs != nil {
		// One clock read covers the whole batch: each request's enqueue
		// wait is measured against the flush instant, and the pre-flush
		// depth is the sampled queue-depth observation.
		now := time.Now()
		st.obs.queueDepth.observe(float64(len(sh.pending)))
		for _, enq := range sh.enqTimes {
			st.obs.enqueueWait.observe(now.Sub(enq).Seconds())
		}
		sh.enqTimes = sh.enqTimes[:0]
	}
	for start := 0; start < len(sh.pending); {
		r := sh.pending[start]
		end := start + 1
		for end < len(sh.pending) && sh.pending[end] == r {
			end++
		}
		// The error is impossible: from was validated against the segment
		// count at Enqueue and the run length is positive.
		_, _ = st.videos[r.video].sched.AdmitBatch(end-start, core.AdmitOptions{From: r.from})
		start = end
	}
	if sh.admits != nil {
		sh.admits.Add(float64(len(sh.pending)))
	}
	sh.pending = sh.pending[:0]
	if sh.queueDepth != nil {
		sh.queueDepth.Set(0)
	}
}

// AdvanceSlot finishes the current slot of every video and returns the
// retired slot reports, indexed by video. Each shard flushes its pending
// admissions first (they arrived during the finishing slot) and shards
// advance in parallel. The returned slice is owned by the caller;
// steady-state drivers reuse one via AdvanceSlotInto.
func (st *Station) AdvanceSlot() []core.SlotReport {
	return st.AdvanceSlotInto(nil)
}

// AdvanceSlotInto is AdvanceSlot writing the reports into dst (grown when
// its capacity is below the catalogue size) so a steady-state driver — the
// clock goroutine reuses one buffer across ticks — retires slots without a
// per-tick allocation. Every entry is overwritten. It returns dst resliced
// to the catalogue size.
func (st *Station) AdvanceSlotInto(dst []core.SlotReport) []core.SlotReport {
	if cap(dst) < len(st.videos) {
		dst = make([]core.SlotReport, len(st.videos))
	}
	dst = dst[:len(st.videos)]
	if len(st.shards) == 1 {
		st.advanceShard(0, dst)
		return dst
	}
	// The parallel fan-out lives in a helper so its goroutine closures
	// never capture dst: a captured-and-reassigned slice header would be
	// forced onto the heap, costing the single-shard fast path above one
	// allocation per tick.
	st.advanceParallel(dst)
	return dst
}

// advanceParallel flushes and advances every shard concurrently.
func (st *Station) advanceParallel(reports []core.SlotReport) {
	var wg sync.WaitGroup
	for i := range st.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The pprof label makes shard workers attributable in CPU
			// profiles: /debug/pprof/profile breaks slot-advance time down
			// by station_shard.
			pprof.Do(context.Background(), pprof.Labels("station_shard", strconv.Itoa(i)),
				func(context.Context) { st.advanceShard(i, reports) })
		}(i)
	}
	wg.Wait()
}

// advanceShard flushes and advances one shard. Shards own disjoint video
// index sets, so concurrent writes into reports never alias.
func (st *Station) advanceShard(i int, reports []core.SlotReport) {
	sh := st.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.flushLocked(st)
	for _, v := range sh.videos {
		reports[v] = st.videos[v].sched.AdvanceSlot()
	}
}

// CurrentSlot reports the video's current transmission slot.
func (st *Station) CurrentSlot(video int) int {
	sh := st.shards[st.videos[video].shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.videos[video].sched.CurrentSlot()
}

// NextLoads fills dst (grown as needed) with each video's scheduled
// instance count for its next transmission slot — the quantity admission
// control gates on — taking each shard's lock once. It returns dst.
func (st *Station) NextLoads(dst []int) []int {
	if cap(dst) < len(st.videos) {
		dst = make([]int, len(st.videos))
	}
	dst = dst[:len(st.videos)]
	for _, sh := range st.shards {
		sh.mu.Lock()
		for _, v := range sh.videos {
			sched := st.videos[v].sched
			dst[v] = sched.LoadAt(sched.CurrentSlot() + 1)
		}
		sh.mu.Unlock()
	}
	return dst
}

// VideoTotals reports the video's admitted request and scheduled instance
// counts.
func (st *Station) VideoTotals(video int) (requests, instances int64) {
	sh := st.shards[st.videos[video].shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sched := st.videos[video].sched
	return sched.Requests(), sched.Instances()
}

// Totals reports the station-wide admitted request and scheduled instance
// counts.
func (st *Station) Totals() (requests, instances int64) {
	for _, sh := range st.shards {
		sh.mu.Lock()
		for _, v := range sh.videos {
			sched := st.videos[v].sched
			requests += sched.Requests()
			instances += sched.Instances()
		}
		sh.mu.Unlock()
	}
	return requests, instances
}

// Pending reports how many admissions are batched in the shard's queue.
func (st *Station) Pending(shard int) int {
	sh := st.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.pending)
}

// StartClock launches the single clock goroutine: every interval it fans an
// AdvanceSlot tick out to all shards and, when onTick is non-nil, hands the
// slot reports to onTick (on the clock goroutine; onTick must not call
// StopClock or Close). The reports slice is borrowed for the duration of
// the callback — the clock reuses its backing array on the next tick — so
// an onTick that retains reports must copy them.
func (st *Station) StartClock(interval time.Duration, onTick func([]core.SlotReport)) error {
	if interval <= 0 {
		return fmt.Errorf("%w: got %v", ErrBadSlotDuration, interval)
	}
	if st.closed.Load() {
		return ErrClosed
	}
	st.clockMu.Lock()
	defer st.clockMu.Unlock()
	if st.clockStop != nil {
		return ErrClockRunning
	}
	stop := make(chan struct{})
	st.clockStop = stop
	st.clockInterval.Store(int64(interval))
	st.clockWG.Add(1)
	go func() {
		defer st.clockWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		start := time.Now()
		ticks := uint64(0)
		// One report buffer serves every tick: onTick runs synchronously on
		// this goroutine, so the slice is never reused while borrowed.
		var reports []core.SlotReport
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				// Tick-lag: how far behind its scheduled instant this tick
				// fired. time.Ticker drops ticks under load, so lag past a
				// whole interval means the slot grid itself is drifting —
				// the drift gauge expresses the same lag in slot units.
				ticks++
				lag := time.Since(start) - time.Duration(ticks)*interval
				if lag < 0 {
					lag = 0
				}
				st.clockTicks.Store(ticks)
				st.clockLagNanos.Store(int64(lag))
				if st.obs != nil {
					lagSec := lag.Seconds()
					st.obs.clockTicks.Inc()
					st.obs.clockLag.Set(lagSec)
					st.obs.clockDrift.Set(lagSec / interval.Seconds())
					st.obs.clockWin.Observe(lagSec)
				}
				reports = st.AdvanceSlotInto(reports)
				if onTick != nil {
					onTick(reports)
				}
			}
		}
	}()
	return nil
}

// StopClock stops the clock goroutine and waits for it to exit (including
// any in-flight onTick). It is a no-op when no clock is running.
func (st *Station) StopClock() {
	st.clockMu.Lock()
	stop := st.clockStop
	st.clockStop = nil
	st.clockMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	st.clockWG.Wait()
	st.clockInterval.Store(0)
}

// ShardStatus is one row of the /statusz (and vodtop) shard table.
type ShardStatus struct {
	// Shard is the worker index; Videos the catalogue entries it owns.
	Shard  int `json:"shard"`
	Videos int `json:"videos"`
	// Pending is the live batched-queue depth; QueueCap its bound.
	Pending  int `json:"pending"`
	QueueCap int `json:"queue_cap"`
	// Admits and Rejects mirror the shard's registry counters (zero when
	// the station is uninstrumented).
	Admits  float64 `json:"admits"`
	Rejects float64 `json:"rejects"`
}

// ClockStatus describes the clock goroutine's health.
type ClockStatus struct {
	// Running reports an active clock; IntervalSeconds its slot duration.
	Running         bool    `json:"running"`
	IntervalSeconds float64 `json:"interval_seconds"`
	// Ticks counts fanned-out slot ticks; LagSeconds is the last tick's
	// lag behind schedule and DriftSlots the same lag in slot units.
	Ticks      uint64  `json:"ticks"`
	LagSeconds float64 `json:"lag_seconds"`
	DriftSlots float64 `json:"drift_slots"`
	// Lag is the rolling window over recent tick lags (zero when the
	// station is uninstrumented).
	Lag obs.WindowSnapshot `json:"lag"`
}

// VideoStatus is one catalogue row of the operator snapshot: which shard
// owns the video, how far its schedule has advanced, and its admission
// totals. The QoE pipeline joins client_miss_total{video} against these rows
// by name.
type VideoStatus struct {
	// Video is the station catalogue index; Name the configured name (the
	// wire-facing video ID for vodserver catalogues).
	Video int    `json:"video"`
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	// Slot is the video's current schedule slot; Requests and Instances are
	// its lifetime admission and transmission totals.
	Slot      int   `json:"slot"`
	Requests  int64 `json:"requests"`
	Instances int64 `json:"instances"`
}

// Status is one consistent snapshot of the station for operators: the shard
// table, the per-video rows, the per-stage rolling latency windows, and
// clock health.
type Status struct {
	Videos int           `json:"videos"`
	Shards []ShardStatus `json:"shards"`
	// PerVideo lists every catalogue video; rows are in catalogue order.
	PerVideo []VideoStatus `json:"per_video"`
	// Stages maps the Stage* names to their rolling windows (empty when
	// the station is uninstrumented). Latency stages are in seconds;
	// StageQueueDepth is in requests.
	Stages map[string]obs.WindowSnapshot `json:"stages,omitempty"`
	Clock  ClockStatus                   `json:"clock"`
	// Requests and Instances are the station-wide admission totals.
	Requests  int64 `json:"requests"`
	Instances int64 `json:"instances"`
}

// Status assembles the operator snapshot behind /statusz. It takes each
// shard lock once (like Totals) and never blocks the clock beyond one shard
// advance.
func (st *Station) Status() Status {
	s := Status{
		Videos:   len(st.videos),
		Shards:   make([]ShardStatus, len(st.shards)),
		PerVideo: make([]VideoStatus, len(st.videos)),
	}
	for i, sh := range st.shards {
		row := ShardStatus{Shard: i, Videos: len(sh.videos), QueueCap: st.queueCap}
		sh.mu.Lock()
		row.Pending = len(sh.pending)
		for _, v := range sh.videos {
			sv := st.videos[v]
			s.Requests += sv.sched.Requests()
			s.Instances += sv.sched.Instances()
			s.PerVideo[v] = VideoStatus{
				Video: v, Name: sv.name, Shard: i,
				Slot:      sv.sched.CurrentSlot(),
				Requests:  sv.sched.Requests(),
				Instances: sv.sched.Instances(),
			}
		}
		sh.mu.Unlock()
		if sh.admits != nil {
			row.Admits = sh.admits.Value()
			row.Rejects = sh.rejects.Value()
		}
		s.Shards[i] = row
	}
	interval := time.Duration(st.clockInterval.Load())
	s.Clock = ClockStatus{
		Running:         interval > 0,
		IntervalSeconds: interval.Seconds(),
		Ticks:           st.clockTicks.Load(),
		LagSeconds:      time.Duration(st.clockLagNanos.Load()).Seconds(),
	}
	if interval > 0 && s.Clock.LagSeconds > 0 {
		s.Clock.DriftSlots = s.Clock.LagSeconds / interval.Seconds()
	}
	if st.obs != nil {
		s.Stages = map[string]obs.WindowSnapshot{
			StageEnqueueWait: st.obs.enqueueWait.win.Snapshot(),
			StageLockWait:    st.obs.lockWait.win.Snapshot(),
			StageAdmit:       st.obs.admit.win.Snapshot(),
			StageQueueDepth:  st.obs.queueDepth.win.Snapshot(),
		}
		s.Clock.Lag = st.obs.clockWin.Snapshot()
	}
	return s
}

// Close stops the clock and marks the station closed: subsequent Admit and
// Enqueue calls fail with ErrClosed. It is safe to call more than once.
func (st *Station) Close() {
	st.closed.Store(true)
	st.StopClock()
}
