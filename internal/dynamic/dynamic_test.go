package dynamic

import (
	"testing"

	"vodcast/internal/broadcast"
	"vodcast/internal/sim"
)

func TestUDSingleRequestCost(t *testing.T) {
	o, err := UD(99)
	if err != nil {
		t.Fatal(err)
	}
	if added := o.Admit(); added != 99 {
		t.Fatalf("isolated request forced %d transmissions, want 99", added)
	}
	total := 0
	for k := 0; k < 200; k++ {
		_, load := o.AdvanceSlot()
		total += load
	}
	if total != 99 {
		t.Fatalf("transmitted %d instances, want 99", total)
	}
}

func TestUDSameSlotRequestsShare(t *testing.T) {
	o, err := UD(50)
	if err != nil {
		t.Fatal(err)
	}
	o.Admit()
	for r := 0; r < 5; r++ {
		if added := o.Admit(); added != 0 {
			t.Fatalf("same-slot request forced %d new transmissions", added)
		}
	}
}

func TestUDTimeliness(t *testing.T) {
	o, err := UD(40)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(21)
	for step := 0; step < 3000; step++ {
		i := o.CurrentSlot()
		for a := 0; a < rng.Poisson(0.4); a++ {
			got := o.AdmitTraced()
			for s := 1; s <= 40; s++ {
				if got[s] <= i || got[s] > i+s {
					t.Fatalf("slot %d: segment %d served at %d outside (%d, %d]", i, s, got[s], i, i+s)
				}
			}
		}
		o.AdvanceSlot()
	}
}

func TestDynamicPagodaTimeliness(t *testing.T) {
	o, err := DynamicPagoda(40)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(22)
	for step := 0; step < 3000; step++ {
		i := o.CurrentSlot()
		for a := 0; a < rng.Poisson(0.6); a++ {
			got := o.AdmitTraced()
			for s := 1; s <= 40; s++ {
				if got[s] <= i || got[s] > i+s {
					t.Fatalf("slot %d: segment %d served at %d outside (%d, %d]", i, s, got[s], i, i+s)
				}
			}
		}
		o.AdvanceSlot()
	}
}

func TestUDSaturatesToFastBroadcasting(t *testing.T) {
	// "Above 200 requests per hour ... the UD reverts to a conventional FB
	// protocol": with a request in every slot, every stream slot is
	// transmitted, so the load equals the FB stream count.
	o, err := UD(99)
	if err != nil {
		t.Fatal(err)
	}
	if o.Streams() != broadcast.FBStreams(99) {
		t.Fatalf("Streams = %d, want %d", o.Streams(), broadcast.FBStreams(99))
	}
	var total, slotCount int
	for k := 0; k < 3000; k++ {
		o.Admit()
		_, load := o.AdvanceSlot()
		if load > o.Streams() {
			t.Fatalf("load %d exceeded stream count %d", load, o.Streams())
		}
		if k >= 500 {
			total += load
			slotCount++
		}
	}
	mean := float64(total) / float64(slotCount)
	if mean < float64(o.Streams())-0.05 {
		t.Fatalf("saturated mean load = %.3f, want about %d", mean, o.Streams())
	}
}

func TestDynamicPagodaSaturatesBelowUD(t *testing.T) {
	// Section 3: the dynamic NPB variant "bested the UD protocol at
	// moderate to high access rates because its bandwidth requirements
	// never exceeded those of NPB" (6 streams vs UD's 7 for 99 segments).
	ud, err := UD(99)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := DynamicPagoda(99)
	if err != nil {
		t.Fatal(err)
	}
	var udTotal, dpTotal int
	for k := 0; k < 3000; k++ {
		ud.Admit()
		dp.Admit()
		_, udLoad := ud.AdvanceSlot()
		_, dpLoad := dp.AdvanceSlot()
		if k >= 500 {
			udTotal += udLoad
			dpTotal += dpLoad
		}
	}
	if dpTotal >= udTotal {
		t.Fatalf("saturated dynamic pagoda load %d not below UD load %d", dpTotal, udTotal)
	}
}

func TestOnDemandLowRateSharing(t *testing.T) {
	// Two requests one slot apart must share every segment whose first
	// occurrence serves both.
	o, err := UD(30)
	if err != nil {
		t.Fatal(err)
	}
	first := o.Admit()
	o.AdvanceSlot()
	second := o.Admit()
	if first != 30 {
		t.Fatalf("first request forced %d, want 30", first)
	}
	if second >= 30 || second == 0 {
		t.Fatalf("second request forced %d transmissions, want within (0, 30)", second)
	}
}

func TestOnDemandErrors(t *testing.T) {
	if _, err := NewOnDemand(nil, 0); err == nil {
		t.Fatal("nil mapping should error")
	}
	m, err := broadcast.FastBroadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnDemand(m, -1); err == nil {
		t.Fatal("negative start slot should error")
	}
	if _, err := UD(0); err == nil {
		t.Fatal("UD(0) should error")
	}
	if _, err := DynamicPagoda(0); err == nil {
		t.Fatal("DynamicPagoda(0) should error")
	}
}

func TestOnDemandCounters(t *testing.T) {
	o, err := UD(10)
	if err != nil {
		t.Fatal(err)
	}
	o.Admit()
	o.Admit()
	if o.Requests() != 2 {
		t.Fatalf("Requests = %d, want 2", o.Requests())
	}
	if o.Instances() != 10 {
		t.Fatalf("Instances = %d, want 10", o.Instances())
	}
	if o.N() != 10 {
		t.Fatalf("N = %d, want 10", o.N())
	}
}

func TestOnDemandInstanceConservation(t *testing.T) {
	o, err := DynamicPagoda(15)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(23)
	var transmitted int64
	for step := 0; step < 2000; step++ {
		for a := 0; a < rng.Poisson(0.3); a++ {
			o.Admit()
		}
		_, load := o.AdvanceSlot()
		transmitted += int64(load)
	}
	for k := 0; k < 20; k++ {
		_, load := o.AdvanceSlot()
		transmitted += int64(load)
	}
	if transmitted != o.Instances() {
		t.Fatalf("transmitted %d but marked %d instances", transmitted, o.Instances())
	}
}
