package vodserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// This file is the server's live introspection surface:
//
//	GET /statsz       operational counters as JSON
//	GET /healthz      liveness probe: 200 with status and uptime
//	GET /metricsz     the obs registry in Prometheus text format
//	GET /tracez?n=N   the most recent N scheduler events (default: all buffered)
//	GET /debug/pprof  the standard Go profiling endpoints
//
// Every handler answers only its exact path (and GET), so a probe of an
// unregistered path is a 404 rather than a copy of /statsz.

// statsHandler serves the operational counters as JSON on GET /statsz, the
// monitoring hook a deployed server needs.
type statsHandler struct {
	server *Server
}

func (h statsHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Answer only the exact path: if this handler is ever mounted on a
	// prefix pattern, sub-paths must 404 instead of masquerading as
	// /statsz.
	if r.URL.Path != "/statsz" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.server.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// healthz reports liveness and uptime for load-balancer probes.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/healthz" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n", s.Uptime().Seconds())
}

// metricsz renders the registry in the Prometheus text exposition format.
func (s *Server) metricsz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/metricsz" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// tracez serves the most recent scheduler events from the tracer's ring
// buffer as a JSON array; ?n=N bounds the window.
func (s *Server) tracez(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/tracez" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad n %q", raw), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.tracer.Recent(n)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveStats binds the monitoring endpoint and returns its listener so
// Close can tear it down. It is called from Start when Config.StatsAddr is
// set.
func (s *Server) serveStats(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vodserver: stats listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/statsz", statsHandler{server: s})
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/metricsz", s.metricsz)
	mux.HandleFunc("/tracez", s.tracez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve returns once the listener closes during shutdown.
		_ = httpSrv.Serve(ln)
	}()
	return ln, nil
}
