package storage

import (
	"math"
	"testing"

	"vodcast/internal/core"
	"vodcast/internal/sim"
)

func TestDiskReadSeconds(t *testing.T) {
	d := Disk{OverheadSeconds: 0.01, TransferBytesPerSecond: 20e6}
	// 40 MB read: 10 ms + 2 s.
	if got := d.ReadSeconds(40e6); math.Abs(got-2.01) > 1e-12 {
		t.Fatalf("ReadSeconds = %v, want 2.01", got)
	}
	if got := d.ReadSeconds(0); got != 0.01 {
		t.Fatalf("zero-byte read = %v, want overhead only", got)
	}
}

func TestCommodityDisk(t *testing.T) {
	d := CommodityDisk2001()
	if d.OverheadSeconds != 0.010 || d.TransferBytesPerSecond != 20e6 {
		t.Fatalf("unexpected parameters %+v", d)
	}
}

func oneSlotSchedule(reads ...Read) Schedule {
	return Schedule{SlotSeconds: 10, Slots: [][]Read{reads}}
}

func TestEvaluateValidation(t *testing.T) {
	d := CommodityDisk2001()
	good := oneSlotSchedule(Read{Video: 0, Segment: 1, Bytes: 1e6})
	if _, err := Evaluate(Disk{TransferBytesPerSecond: 0}, good, 1); err == nil {
		t.Error("bad disk accepted")
	}
	if _, err := Evaluate(d, Schedule{SlotSeconds: 0, Slots: good.Slots}, 1); err == nil {
		t.Error("bad slot duration accepted")
	}
	if _, err := Evaluate(d, Schedule{SlotSeconds: 1}, 1); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := Evaluate(d, oneSlotSchedule(Read{Segment: 0}), 1); err == nil {
		t.Error("invalid read accepted")
	}
	if _, err := Evaluate(d, good, 0); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestEvaluateBusyFractions(t *testing.T) {
	d := Disk{OverheadSeconds: 0, TransferBytesPerSecond: 1e6}
	// Two 5 MB reads in a 10 s slot: 5 s each.
	sched := oneSlotSchedule(
		Read{Video: 0, Segment: 1, Bytes: 5e6},
		Read{Video: 0, Segment: 2, Bytes: 5e6},
	)
	one, err := Evaluate(d, sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.MaxBusyFraction-1.0) > 1e-12 {
		t.Fatalf("one disk busy = %v, want 1.0", one.MaxBusyFraction)
	}
	two, err := Evaluate(d, sched, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Segments 1 and 2 stripe to different drives.
	if math.Abs(two.MaxBusyFraction-0.5) > 1e-12 {
		t.Fatalf("two disks busy = %v, want 0.5", two.MaxBusyFraction)
	}
	if two.PeakSlotReads != 2 {
		t.Fatalf("peak reads = %d, want 2", two.PeakSlotReads)
	}
}

func TestDisksNeeded(t *testing.T) {
	d := Disk{OverheadSeconds: 0, TransferBytesPerSecond: 1e6}
	// Four 6 MB reads in a 10 s slot: 24 s of disk time needs 3 drives,
	// and segments 1..4 stripe evenly.
	sched := oneSlotSchedule(
		Read{Segment: 1, Bytes: 6e6},
		Read{Segment: 2, Bytes: 6e6},
		Read{Segment: 3, Bytes: 6e6},
		Read{Segment: 4, Bytes: 6e6},
	)
	got, err := DisksNeeded(d, sched, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 2 disks: two reads each = 12 s > 10 s. 4 disks: one read each.
	// 3 disks: segments {1,4} share a drive = 12 s, so 4 are needed.
	if got != 4 {
		t.Fatalf("DisksNeeded = %d, want 4", got)
	}
	bound, err := MinDiskBound(d, sched)
	if err != nil {
		t.Fatal(err)
	}
	if bound != 3 {
		t.Fatalf("MinDiskBound = %d, want 3", bound)
	}
	if _, err := DisksNeeded(d, sched, 1); err == nil {
		t.Error("infeasible cap accepted")
	}
	if _, err := DisksNeeded(d, sched, 0); err == nil {
		t.Error("zero cap accepted")
	}
}

// recordSchedule runs a DHB policy under saturation and records the reads.
func recordSchedule(t *testing.T, policy core.Policy, segments, horizon int, segBytes float64) Schedule {
	t.Helper()
	s, err := core.New(core.Config{Segments: segments, Policy: policy, TrackSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(55)
	sched := Schedule{SlotSeconds: 7200.0 / float64(segments)}
	for slot := 0; slot < horizon; slot++ {
		for a := 0; a < rng.Poisson(1.5); a++ {
			s.AdmitRequest(core.AdmitOptions{})
		}
		rep := s.AdvanceSlot()
		reads := make([]Read, 0, len(rep.Segments))
		for _, seg := range rep.Segments {
			reads = append(reads, Read{Video: 0, Segment: seg, Bytes: segBytes})
		}
		sched.Slots = append(sched.Slots, reads)
	}
	return sched
}

// TestHeuristicNeedsFewerDisksThanNaive ties storage provisioning back to
// Figure 8: flat bandwidth peaks are flat disk peaks.
func TestHeuristicNeedsFewerDisksThanNaive(t *testing.T) {
	// A 2-hour video at the trace's 636 KB/s mean: 46 MB per 73 s segment.
	const segBytes = 46e6
	// A slow drive makes each read a substantial share of the slot so that
	// peak differences matter: 5 MB/s -> 9.2 s per read.
	d := Disk{OverheadSeconds: 0.010, TransferBytesPerSecond: 5e6}
	naive := recordSchedule(t, core.PolicyNaive, 99, 6000, segBytes)
	heuristic := recordSchedule(t, core.PolicyHeuristic, 99, 6000, segBytes)
	nd, err := DisksNeeded(d, naive, 64)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := DisksNeeded(d, heuristic, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hd > nd {
		t.Fatalf("heuristic needs %d disks, naive %d: peak flattening should never cost drives", hd, nd)
	}
	if nd <= hd {
		// Both equal is possible on short runs; require the naive policy
		// to need strictly more at this horizon, where divisor peaks bite.
		if nd == hd {
			t.Fatalf("naive (%d) did not need more disks than heuristic (%d)", nd, hd)
		}
	}
	// Heuristic provisioning sits close to the information floor.
	bound, err := MinDiskBound(d, heuristic)
	if err != nil {
		t.Fatal(err)
	}
	if hd > 3*bound {
		t.Fatalf("heuristic needs %d disks, floor is %d", hd, bound)
	}
}

func TestMinDiskBoundValidation(t *testing.T) {
	if _, err := MinDiskBound(Disk{TransferBytesPerSecond: -1}, oneSlotSchedule()); err == nil {
		t.Error("bad disk accepted")
	}
}
