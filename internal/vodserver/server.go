// Package vodserver is the networked realization of the DHB protocol: a
// video server that admits customer requests over TCP, schedules segment
// transmissions with the DHB scheduler in real time, and pushes the segment
// payloads of every broadcast instance to the subscribed set-top boxes.
//
// The data plane models broadcast channels: each scheduled instance is
// produced (and counted) exactly once per slot and the encoded frames are
// fanned out to every subscriber of the video, standing in for the IP
// multicast a production deployment would use (see DESIGN.md §3). Video
// bytes are generated deterministically per (video, segment) so the client
// can verify every byte without the server storing real footage.
package vodserver

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"vodcast/internal/core"
	"vodcast/internal/obs"
	"vodcast/internal/wire"
)

// VideoConfig describes one servable video.
type VideoConfig struct {
	// ID is the catalogue identifier clients request.
	ID uint32
	// Segments is the DHB segment count.
	Segments int
	// Periods optionally carries a DHB-d period vector (nil = CBR default).
	Periods []int
	// SegmentBytes is the payload size of one segment.
	SegmentBytes int
	// SegmentSizes optionally carries per-segment payload sizes for
	// variable-bit-rate videos (it must have Segments entries and
	// overrides SegmentBytes). Build one from a Section 4 plan with
	// NewVBRVideo.
	SegmentSizes []int
}

// sizeOf reports the payload size of 1-based segment j.
func (vc VideoConfig) sizeOf(j int) int {
	if len(vc.SegmentSizes) == 0 {
		return vc.SegmentBytes
	}
	return vc.SegmentSizes[j-1]
}

// Config parameterizes a server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// Videos is the catalogue.
	Videos []VideoConfig
	// SlotDuration is the real-time slot length (the paper's d, scaled
	// down for testing).
	SlotDuration time.Duration
	// SubscriberBuffer is the per-client queue of encoded slot batches; a
	// client that falls further behind is disconnected so one slow STB
	// cannot stall the broadcast. Zero selects a sensible default.
	SubscriberBuffer int
	// StatsAddr optionally binds an HTTP monitoring endpoint serving
	// /statsz (JSON counters), /healthz (liveness + uptime), /metricsz
	// (Prometheus text format), /tracez (recent scheduler events) and
	// /debug/pprof/*.
	StatsAddr string
	// TraceWriter optionally streams every scheduler event as JSONL (the
	// qlog-style trace of internal/obs) for offline analysis.
	TraceWriter io.Writer
	// TraceEvents bounds the /tracez ring buffer; zero selects
	// obs.DefaultRingSize.
	TraceEvents int
}

// Stats is a snapshot of server counters.
type Stats struct {
	// Requests counts admitted customers.
	Requests int64
	// Instances counts segment transmissions (the broadcast cost).
	Instances int64
	// BroadcastBytes counts payload bytes transmitted, one count per
	// instance regardless of subscriber fan-out.
	BroadcastBytes int64
	// ActiveSubscribers counts clients currently receiving.
	ActiveSubscribers int
	// Dropped counts subscribers disconnected for falling behind.
	Dropped int64
}

type video struct {
	cfg       VideoConfig
	sched     *core.Scheduler
	maxPeriod int
	subs      map[*subscriber]struct{}
	// load is the channel-load gauge vod_channel_load{video="..."},
	// updated to each retired slot's instance count.
	load *obs.Gauge
}

type subscriber struct {
	conn net.Conn
	// batches carries one encoded byte batch per slot; closed when the
	// subscription ends.
	batches chan []byte
	// lastSlot is the final slot this subscriber needs.
	lastSlot int
	// admitted stamps the admission for the first-byte latency histogram.
	admitted time.Time
}

// Server is a running VOD server. Create with Start, stop with Close.
type Server struct {
	cfg Config
	ln  net.Listener

	statsLn net.Listener
	started time.Time

	reg    *obs.Registry
	tracer *obs.Tracer
	// Registry handles, bound once at startup so the hot paths never
	// touch the registry's name map.
	mRequests       *obs.Counter
	mRejects        *obs.Counter
	mInstances      *obs.Counter
	mBroadcastBytes *obs.Counter
	mDropped        *obs.Counter
	mAdmitLatency   *obs.Histogram

	mu     sync.Mutex
	videos map[uint32]*video
	conns  map[net.Conn]struct{}
	stats  Stats
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// Start validates cfg, binds the listener and launches the slot ticker.
func Start(cfg Config) (*Server, error) {
	if len(cfg.Videos) == 0 {
		return nil, fmt.Errorf("vodserver: empty catalogue")
	}
	if cfg.SlotDuration <= 0 {
		return nil, fmt.Errorf("vodserver: slot duration %v must be positive", cfg.SlotDuration)
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 64
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(cfg.TraceWriter, cfg.TraceEvents)
	videos := make(map[uint32]*video, len(cfg.Videos))
	for _, vc := range cfg.Videos {
		if len(vc.SegmentSizes) == 0 && vc.SegmentBytes <= 0 {
			return nil, fmt.Errorf("vodserver: video %d: segment bytes %d must be positive", vc.ID, vc.SegmentBytes)
		}
		if len(vc.SegmentSizes) != 0 {
			if len(vc.SegmentSizes) != vc.Segments {
				return nil, fmt.Errorf("vodserver: video %d: %d segment sizes for %d segments",
					vc.ID, len(vc.SegmentSizes), vc.Segments)
			}
			for j, sz := range vc.SegmentSizes {
				if sz <= 0 {
					return nil, fmt.Errorf("vodserver: video %d: segment %d size %d must be positive", vc.ID, j+1, sz)
				}
			}
		}
		if _, dup := videos[vc.ID]; dup {
			return nil, fmt.Errorf("vodserver: duplicate video id %d", vc.ID)
		}
		sched, err := core.New(core.Config{
			Segments:      vc.Segments,
			Periods:       vc.Periods,
			TrackSegments: true,
			Observer:      obs.SchedObserver{Video: vc.ID, T: tracer},
		})
		if err != nil {
			return nil, fmt.Errorf("vodserver: video %d: %w", vc.ID, err)
		}
		maxP := 0
		for j := 1; j <= vc.Segments; j++ {
			if p := sched.Period(j); p > maxP {
				maxP = p
			}
		}
		videos[vc.ID] = &video{
			cfg:       vc,
			sched:     sched,
			maxPeriod: maxP,
			subs:      make(map[*subscriber]struct{}),
			load: reg.GaugeWith("vod_channel_load",
				"Instances transmitted in the video's most recent slot (multiples of the consumption rate).",
				obs.Labels{"video": fmt.Sprint(vc.ID)}),
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("vodserver: listen: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		started: time.Now(),
		reg:     reg,
		tracer:  tracer,
		mRequests: reg.Counter("vod_requests_total",
			"Admitted customer requests (including interactive resumes)."),
		mRejects: reg.Counter("vod_rejects_total",
			"Refused customer requests (unknown video, bad resume point, shutdown)."),
		mInstances: reg.Counter("vod_instances_total",
			"Segment instances transmitted across all videos."),
		mBroadcastBytes: reg.Counter("vod_broadcast_bytes_total",
			"Payload bytes transmitted, counted once per instance regardless of fan-out."),
		mDropped: reg.Counter("vod_dropped_subscribers_total",
			"Subscribers disconnected for falling a full buffer behind."),
		mAdmitLatency: reg.Histogram("vod_admit_first_byte_seconds",
			"Latency from request admission to the first broadcast byte reaching the subscriber.", nil),
		videos: videos,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	reg.GaugeFunc("vod_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("vod_active_subscribers", "Clients currently receiving a broadcast.",
		func() float64 { return float64(s.Stats().ActiveSubscribers) })
	if cfg.StatsAddr != "" {
		statsLn, err := s.serveStats(cfg.StatsAddr)
		if err != nil {
			ln.Close()
			s.wg.Wait()
			return nil, err
		}
		s.statsLn = statsLn
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// StatsAddr reports the bound monitoring address, or "" when disabled.
func (s *Server) StatsAddr() string {
	if s.statsLn == nil {
		return ""
	}
	return s.statsLn.Addr().String()
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry exposes the server's metrics registry, the source of /metricsz.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the server's scheduler event tracer, the source of
// /tracez.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Uptime reports how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, v := range s.videos {
		st.Instances += v.sched.Instances()
		st.ActiveSubscribers += len(v.subs)
	}
	return st
}

// Close stops accepting, terminates every subscription and waits for all
// server goroutines to exit. It is safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.ln.Close()
	if s.statsLn != nil {
		s.statsLn.Close()
	}
	for _, v := range s.videos {
		for sub := range v.subs {
			close(sub.batches)
			delete(v.subs, sub)
		}
	}
	// Unblock handlers parked in reads or writes.
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// track registers a connection for shutdown; it reports false when the
// server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn admits one request and streams its subscription.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)

	msg, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	req, ok := msg.(wire.Request)
	if !ok {
		_ = wire.WriteFrame(conn, wire.ErrorMsg{Text: "expected a request frame"})
		return
	}

	sub, info, err := s.admit(req.VideoID, req.FromSegment, conn)
	if err != nil {
		s.mRejects.Inc()
		s.tracer.Emit(obs.Event{Type: obs.EventReject, Video: req.VideoID,
			From: int(req.FromSegment), Detail: err.Error()})
		_ = wire.WriteFrame(conn, wire.ErrorMsg{Text: err.Error()})
		return
	}
	if err := wire.WriteFrame(conn, info); err != nil {
		s.unsubscribe(req.VideoID, sub)
		return
	}
	firstByte := false
	for batch := range sub.batches {
		if _, err := conn.Write(batch); err != nil {
			s.unsubscribe(req.VideoID, sub)
			// Drain so the ticker never blocks on this subscriber.
			for range sub.batches {
			}
			return
		}
		if !firstByte {
			firstByte = true
			s.mAdmitLatency.Observe(time.Since(sub.admitted).Seconds())
		}
	}
}

// admit registers a subscription under the scheduler lock. fromSegment
// above 1 resumes interactive playback there (0 and 1 mean a full viewing).
func (s *Server) admit(videoID, fromSegment uint32, conn net.Conn) (*subscriber, wire.ScheduleInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, wire.ScheduleInfo{}, fmt.Errorf("server shutting down")
	}
	v, ok := s.videos[videoID]
	if !ok {
		return nil, wire.ScheduleInfo{}, fmt.Errorf("unknown video %d", videoID)
	}
	from := int(fromSegment)
	if from == 0 {
		from = 1
	}
	if from > v.cfg.Segments {
		return nil, wire.ScheduleInfo{}, fmt.Errorf("resume segment %d beyond %d", from, v.cfg.Segments)
	}
	admitSlot := v.sched.CurrentSlot()
	if _, err := v.sched.AdmitFrom(from); err != nil {
		return nil, wire.ScheduleInfo{}, err
	}
	s.stats.Requests++
	s.mRequests.Inc()

	// The subscription ends once the customer's last deadline passes: the
	// largest shifted period of the remaining suffix.
	suffixMax := 0
	for k := 1; k <= v.cfg.Segments-from+1; k++ {
		if p := v.sched.Period(k); p > suffixMax {
			suffixMax = p
		}
	}
	sub := &subscriber{
		conn:     conn,
		batches:  make(chan []byte, s.cfg.SubscriberBuffer),
		lastSlot: admitSlot + suffixMax,
		admitted: time.Now(),
	}
	v.subs[sub] = struct{}{}

	periods := make([]uint32, v.cfg.Segments)
	for j := 1; j <= v.cfg.Segments; j++ {
		periods[j-1] = uint32(v.sched.Period(j))
	}
	info := wire.ScheduleInfo{
		VideoID:      videoID,
		Segments:     uint32(v.cfg.Segments),
		SlotMillis:   uint32(s.cfg.SlotDuration / time.Millisecond),
		SegmentBytes: uint32(v.cfg.SegmentBytes),
		AdmitSlot:    uint64(admitSlot),
		Periods:      periods,
	}
	if len(v.cfg.SegmentSizes) != 0 {
		info.SegmentSizes = make([]uint32, len(v.cfg.SegmentSizes))
		for j, sz := range v.cfg.SegmentSizes {
			info.SegmentSizes[j] = uint32(sz)
		}
	}
	return sub, info, nil
}

// unsubscribe removes the subscription and closes its channel if the ticker
// has not already done so, which lets the caller drain without blocking.
func (s *Server) unsubscribe(videoID uint32, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[videoID]
	if !ok {
		return
	}
	if _, live := v.subs[sub]; live {
		delete(v.subs, sub)
		close(sub.batches)
	}
}

func (s *Server) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SlotDuration)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.tick()
		}
	}
}

// tick finishes the current slot of every video: it encodes the slot's
// broadcast instances once and fans the batch out to the subscribers.
func (s *Server) tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for id, v := range s.videos {
		rep := v.sched.AdvanceSlot()
		v.load.Set(float64(rep.Load))
		s.mInstances.Add(float64(rep.Load))
		var buf bytes.Buffer
		for _, seg := range rep.Segments {
			payload := wire.SegmentPayload(id, uint32(seg), uint32(v.cfg.sizeOf(seg)))
			frame := wire.Segment{
				VideoID: id,
				Segment: uint32(seg),
				Slot:    uint64(rep.Slot),
				Payload: payload,
			}
			if err := wire.WriteFrame(&buf, frame); err != nil {
				continue // unreachable: in-memory write
			}
			s.stats.BroadcastBytes += int64(len(payload))
			s.mBroadcastBytes.Add(float64(len(payload)))
		}
		if err := wire.WriteFrame(&buf, wire.SlotEnd{Slot: uint64(rep.Slot)}); err != nil {
			continue
		}
		batch := buf.Bytes()
		for sub := range v.subs {
			select {
			case sub.batches <- batch:
			default:
				// The subscriber fell a full buffer behind: disconnect it
				// rather than stall the broadcast.
				delete(v.subs, sub)
				close(sub.batches)
				s.stats.Dropped++
				s.mDropped.Inc()
				continue
			}
			if rep.Slot >= sub.lastSlot {
				delete(v.subs, sub)
				close(sub.batches)
			}
		}
	}
}
