package smoothing

import (
	"math"
	"testing"
	"testing/quick"

	"vodcast/internal/trace"
)

func matrix(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPeakSegmentRateCBR(t *testing.T) {
	tr, err := trace.CBR(600, 100)
	if err != nil {
		t.Fatal(err)
	}
	r, err := PeakSegmentRate(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-100) > 1e-9 {
		t.Fatalf("CBR peak segment rate = %v, want 100", r)
	}
}

func TestPeakSegmentRateBetweenMeanAndPeak(t *testing.T) {
	tr := matrix(t)
	r, err := PeakSegmentRate(tr, 137)
	if err != nil {
		t.Fatal(err)
	}
	// The paper found 789 KB/s for its trace: strictly between the 636 KB/s
	// mean and the 951 KB/s one-second peak. Our synthetic trace must show
	// the same ordering.
	if r <= tr.Mean() || r >= tr.Peak() {
		t.Fatalf("peak segment rate %v not in (mean %v, peak %v)", r, tr.Mean(), tr.Peak())
	}
}

func TestPeakSegmentRateError(t *testing.T) {
	if _, err := PeakSegmentRate(matrix(t), 0); err == nil {
		t.Fatal("want error")
	}
}

func TestMinWorkAheadRateCBR(t *testing.T) {
	tr, err := trace.CBR(600, 100)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MinWorkAheadRate(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-100) > 1e-9 {
		t.Fatalf("CBR work-ahead rate = %v, want 100", r)
	}
}

func TestMinWorkAheadRateOrdering(t *testing.T) {
	tr := matrix(t)
	d := tr.Duration() / 137
	workAhead, err := MinWorkAheadRate(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	segPeak, err := PeakSegmentRate(tr, 137)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Section 4: smoothing reduced the rate from 789 to 671 KB/s,
	// i.e. mean <= work-ahead rate <= per-segment peak rate.
	if workAhead < tr.Mean()-1e-6 {
		t.Fatalf("work-ahead rate %v below mean %v", workAhead, tr.Mean())
	}
	if workAhead > segPeak+1e-6 {
		t.Fatalf("work-ahead rate %v above per-segment peak %v", workAhead, segPeak)
	}
}

func TestMinWorkAheadRateDominatesPrefixes(t *testing.T) {
	tr := matrix(t)
	const d = 60.0
	r, err := MinWorkAheadRate(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	f := func(kf float64) bool {
		n := int(math.Ceil(tr.Duration() / d))
		k := 1 + int(math.Mod(math.Abs(kf), float64(n)))
		t := math.Min(float64(k)*d, tr.Duration())
		return tr.CumulativeAt(t) <= r*float64(k)*d+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinWorkAheadRateBadSlot(t *testing.T) {
	if _, err := MinWorkAheadRate(matrix(t), 0); err == nil {
		t.Fatal("want error")
	}
}

func TestPackedSegmentsShrinks(t *testing.T) {
	tr := matrix(t)
	d := tr.Duration() / 137
	r, err := MinWorkAheadRate(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PackedSegments(tr, d, r)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 137 original segments packed into 129. The exact count is
	// trace-specific; full-rate packing must not need more than 137 and
	// cannot beat the information-theoretic floor total/(r*d).
	if n > 137 {
		t.Fatalf("packed segments = %d, want <= 137", n)
	}
	if float64(n) < tr.TotalBytes()/(r*d)-1 {
		t.Fatalf("packed segments = %d below floor", n)
	}
}

func TestPackedSegmentsErrors(t *testing.T) {
	tr := matrix(t)
	if _, err := PackedSegments(tr, 0, 1); err == nil {
		t.Fatal("want error for zero slot")
	}
	if _, err := PackedSegments(tr, 60, 0); err == nil {
		t.Fatal("want error for zero rate")
	}
}

func TestPeriodsCBRAreIdentity(t *testing.T) {
	tr, err := trace.CBR(600, 100)
	if err != nil {
		t.Fatal(err)
	}
	const d = 60.0
	periods, err := Periods(tr, d, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 10; j++ {
		if periods[j] != j {
			t.Fatalf("CBR periods[%d] = %d, want %d", j, periods[j], j)
		}
	}
}

func TestPeriodsProperties(t *testing.T) {
	tr := matrix(t)
	d := tr.Duration() / 137
	r, err := MinWorkAheadRate(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PackedSegments(tr, d, r)
	if err != nil {
		t.Fatal(err)
	}
	periods, err := Periods(tr, d, r, n)
	if err != nil {
		t.Fatal(err)
	}
	if periods[1] != 1 {
		t.Fatalf("T[1] = %d, want 1", periods[1])
	}
	delayed := 0
	for j := 1; j <= n; j++ {
		if periods[j] < j {
			t.Fatalf("T[%d] = %d < %d: work-ahead periods can never shrink below the CBR deadline", j, periods[j], j)
		}
		if j > 1 && periods[j] < periods[j-1] {
			t.Fatalf("periods not monotone at %d: %d then %d", j, periods[j-1], periods[j])
		}
		if periods[j] > j {
			delayed++
		}
	}
	// Paper Section 4: "nearly all other segments could be delayed by one
	// to eight slots". At least half of the units must gain slack.
	if delayed < n/2 {
		t.Fatalf("only %d/%d units gained delay slack; expected most of them", delayed, n)
	}
}

func TestPeriodsErrors(t *testing.T) {
	tr := matrix(t)
	if _, err := Periods(tr, 0, 1, 5); err == nil {
		t.Fatal("want error for zero slot")
	}
	if _, err := Periods(tr, 60, 0, 5); err == nil {
		t.Fatal("want error for zero rate")
	}
	if _, err := Periods(tr, 60, 1, 0); err == nil {
		t.Fatal("want error for zero units")
	}
}

func TestVerifyFeasibleAcceptsDerivedPlan(t *testing.T) {
	tr := matrix(t)
	d := tr.Duration() / 137
	r, err := MinWorkAheadRate(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PackedSegments(tr, d, r)
	if err != nil {
		t.Fatal(err)
	}
	periods, err := Periods(tr, d, r, n)
	if err != nil {
		t.Fatal(err)
	}
	maxBuf, err := VerifyFeasible(tr, d, r, periods)
	if err != nil {
		t.Fatal(err)
	}
	if maxBuf <= 0 {
		t.Fatal("work-ahead plan should need a positive client buffer")
	}
	if maxBuf > tr.TotalBytes() {
		t.Fatalf("max buffer %v exceeds total video size", maxBuf)
	}
}

func TestVerifyFeasibleCatchesLatePlan(t *testing.T) {
	tr := matrix(t)
	d := tr.Duration() / 137
	r, err := MinWorkAheadRate(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PackedSegments(tr, d, r)
	if err != nil {
		t.Fatal(err)
	}
	periods, err := Periods(tr, d, r, n)
	if err != nil {
		t.Fatal(err)
	}
	// Delivering the first unit one slot too late must underflow.
	periods[1] = 3
	periods[2] = 3
	if _, err := VerifyFeasible(tr, d, r, periods); err == nil {
		t.Fatal("late delivery plan accepted")
	}
}

func TestVerifyFeasibleRejectsEmpty(t *testing.T) {
	tr := matrix(t)
	if _, err := VerifyFeasible(tr, 60, 1, []int{0}); err == nil {
		t.Fatal("want error for empty period vector")
	}
}
