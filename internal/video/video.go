// Package video models the videos a VOD server distributes: their duration,
// consumption rate, and the equal-duration segmentation every broadcasting
// protocol in the paper relies on.
package video

import (
	"fmt"
	"math"
)

// Video describes one video to distribute. Rate is the consumption rate b.
// For the CBR experiments of the paper (Figures 7-8) Rate is normalized to 1,
// so bandwidths come out in "data streams"; for the VBR study (Figure 9) it
// carries bytes per second.
type Video struct {
	// Duration is the playback length in seconds.
	Duration float64
	// Rate is the consumption rate b in stream units or bytes per second.
	Rate float64
}

// TwoHourMovie is the reference video of the paper's CBR evaluation: a
// two-hour video with a normalized consumption rate of one stream unit.
func TwoHourMovie() Video {
	return Video{Duration: 2 * 3600, Rate: 1}
}

// Bytes reports the total size of the video, Duration x Rate.
func (v Video) Bytes() float64 { return v.Duration * v.Rate }

// Segmentation is a partition of a video into n segments of equal duration d.
// The segment duration is also the maximum waiting time of every slotted
// protocol in the paper.
type Segmentation struct {
	// N is the number of segments.
	N int
	// SlotDuration is the segment (and slot) duration d in seconds.
	SlotDuration float64
}

// Segment validates n and partitions the video into n equal segments.
func Segment(v Video, n int) (Segmentation, error) {
	if n <= 0 {
		return Segmentation{}, fmt.Errorf("video: segment count %d must be positive", n)
	}
	if v.Duration <= 0 {
		return Segmentation{}, fmt.Errorf("video: duration %v must be positive", v.Duration)
	}
	return Segmentation{N: n, SlotDuration: v.Duration / float64(n)}, nil
}

// SegmentForMaxWait partitions the video into the fewest equal segments that
// guarantee a maximum waiting time of at most maxWait seconds, as in the
// paper's "137 segments for a one-minute wait" example.
func SegmentForMaxWait(v Video, maxWait float64) (Segmentation, error) {
	if maxWait <= 0 {
		return Segmentation{}, fmt.Errorf("video: max wait %v must be positive", maxWait)
	}
	n := int(math.Ceil(v.Duration / maxWait))
	return Segment(v, n)
}

// DefaultPeriods returns the CBR maximum-period vector T with T[i] = i
// (1-based; index 0 is unused and set to 0): segment S_i may be delayed at
// most i slots after the slot in which its request arrived.
func DefaultPeriods(n int) []int {
	t := make([]int, n+1)
	for i := 1; i <= n; i++ {
		t[i] = i
	}
	return t
}

// ValidatePeriods checks that a period vector is usable by the DHB scheduler:
// len(T) == n+1, T[1] == 1, and 1 <= T[i] for every segment. Periods larger
// than i are legal (Section 4 derives them from work-ahead smoothing).
func ValidatePeriods(t []int, n int) error {
	if len(t) != n+1 {
		return fmt.Errorf("video: period vector has length %d, want %d", len(t), n+1)
	}
	if n >= 1 && t[1] != 1 {
		return fmt.Errorf("video: T[1] = %d, must be 1", t[1])
	}
	for i := 1; i <= n; i++ {
		if t[i] < 1 {
			return fmt.Errorf("video: T[%d] = %d, must be >= 1", i, t[i])
		}
	}
	return nil
}
