package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vodcast/internal/sim"
)

func TestNewArrivalTraceValidation(t *testing.T) {
	if _, err := NewArrivalTrace(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewArrivalTrace([]float64{1, -2}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestNewArrivalTraceSortsAndCopies(t *testing.T) {
	times := []float64{30, 10, 20}
	tr, err := NewArrivalTrace(times)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 30 || tr.Count() != 3 {
		t.Fatalf("duration=%v count=%d", tr.Duration(), tr.Count())
	}
	times[0] = 999 // must not affect the trace
	if tr.Duration() != 30 {
		t.Fatal("trace aliased caller slice")
	}
}

func TestMeanRatePerHour(t *testing.T) {
	tr, err := NewArrivalTrace([]float64{0, 1800, 3600})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MeanRatePerHour(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rate = %v, want 3/h", got)
	}
}

// TestDegenerateTraces: accessors on traces the constructor would reject —
// nil receivers and zero values reached through struct embedding or decoding
// — report zeros instead of panicking, and zero-duration traces define no
// rate.
func TestDegenerateTraces(t *testing.T) {
	tests := []struct {
		name string
		tr   *ArrivalTrace
	}{
		{"nil trace", nil},
		{"zero value", &ArrivalTrace{}},
		{"single point at origin", &ArrivalTrace{times: []float64{0}}},
		{"simultaneous burst at origin", &ArrivalTrace{times: []float64{0, 0, 0}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if d := tc.tr.Duration(); d != 0 {
				t.Fatalf("Duration = %v, want 0", d)
			}
			if r := tc.tr.MeanRatePerHour(); r != 0 {
				t.Fatalf("MeanRatePerHour = %v, want 0 (no interval to rate over)", r)
			}
		})
	}
	if n := (*ArrivalTrace)(nil).Count(); n != 0 {
		t.Fatalf("nil Count = %d, want 0", n)
	}
	// A single arrival off the origin has a duration and therefore a rate.
	single := &ArrivalTrace{times: []float64{7.2}}
	if single.Duration() != 7.2 {
		t.Fatalf("Duration = %v, want 7.2", single.Duration())
	}
	if r := single.MeanRatePerHour(); math.Abs(r-3600/7.2) > 1e-9 {
		t.Fatalf("MeanRatePerHour = %v, want %v", r, 3600/7.2)
	}
}

func TestSlotted(t *testing.T) {
	tr, err := NewArrivalTrace([]float64{0, 5, 5.5, 19, 20})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.Slotted(10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("slots = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("slots = %v, want %v", counts, want)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tr.Count() {
		t.Fatalf("slotted counts sum to %d, want %d", total, tr.Count())
	}
	if _, err := tr.Slotted(0); err == nil {
		t.Fatal("zero slot accepted")
	}
}

func TestArrivalTraceRoundTrip(t *testing.T) {
	rng := sim.NewRNG(3)
	proc := sim.NewPoissonProcess(rng, 0.01)
	var times []float64
	for i := 0; i < 200; i++ {
		times = append(times, proc.Next())
	}
	orig, err := NewArrivalTrace(times)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != orig.Count() || back.Duration() != orig.Duration() {
		t.Fatalf("round trip changed the trace: %d/%v vs %d/%v",
			back.Count(), back.Duration(), orig.Count(), orig.Duration())
	}
}

func TestReadArrivalTraceSkipsCommentsAndErrors(t *testing.T) {
	tr, err := ReadArrivalTrace(strings.NewReader("# header\n\n10\n20\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 2 {
		t.Fatalf("count = %d, want 2", tr.Count())
	}
	if _, err := ReadArrivalTrace(strings.NewReader("abc\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadArrivalTrace(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty trace accepted")
	}
}
