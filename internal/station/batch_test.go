package station

import (
	"errors"
	"math/rand"
	"testing"

	"vodcast/internal/core"
)

// TestAdmitBatchMatchesSequential: a coalesced batch through the station is
// indistinguishable from the same admissions issued one by one against an
// independent reference scheduler — loads, counters, everything.
func TestAdmitBatchMatchesSequential(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(3, 15), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*core.Scheduler, 3)
	for v := range refs {
		if refs[v], err = core.New(core.Config{Segments: 15, Reference: true}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 200; step++ {
		if rng.Intn(5) == 0 {
			st.AdvanceSlot()
			for _, ref := range refs {
				ref.AdvanceSlot()
			}
			continue
		}
		v := rng.Intn(3)
		count := 1 + rng.Intn(6)
		from := 0
		if rng.Intn(3) == 0 {
			from = 1 + rng.Intn(15)
		}
		res, err := st.AdmitBatch(v, count, core.AdmitOptions{From: from})
		if err != nil {
			t.Fatal(err)
		}
		placed := 0
		for k := 0; k < count; k++ {
			r, err := refs[v].AdmitRequest(core.AdmitOptions{From: from})
			if err != nil {
				t.Fatal(err)
			}
			placed += r.Placed
		}
		if res.Placed != placed {
			t.Fatalf("step %d: batch placed %d, reference %d", step, res.Placed, placed)
		}
	}
	req, inst := st.Totals()
	var wantReq, wantInst int64
	for _, ref := range refs {
		wantReq += ref.Requests()
		wantInst += ref.Instances()
	}
	if req != wantReq || inst != wantInst {
		t.Fatalf("totals (%d, %d), reference (%d, %d)", req, inst, wantReq, wantInst)
	}
}

// TestEnqueueCoalescingMatchesSequential: duplicate same-slot Enqueues are
// flushed through the coalesced batch path; the resulting schedule must
// equal a sequential reference run with the same arrivals.
func TestEnqueueCoalescingMatchesSequential(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(2, 12), Shards: 1, FlushBatch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ref0, _ := core.New(core.Config{Segments: 12, Reference: true})
	ref1, _ := core.New(core.Config{Segments: 12, Reference: true})
	refs := []*core.Scheduler{ref0, ref1}
	rng := rand.New(rand.NewSource(21))
	for slot := 0; slot < 40; slot++ {
		// A burst of duplicates for one video, a sprinkle for the other,
		// plus resume duplicates — the coalescer sees mixed runs.
		for k := 0; k < 5; k++ {
			if err := st.Enqueue(0, 0); err != nil {
				t.Fatal(err)
			}
			refs[0].AdmitRequest(core.AdmitOptions{})
		}
		if rng.Intn(2) == 0 {
			from := 1 + rng.Intn(12)
			for k := 0; k < 3; k++ {
				if err := st.Enqueue(1, from); err != nil {
					t.Fatal(err)
				}
				if _, err := refs[1].AdmitRequest(core.AdmitOptions{From: from}); err != nil {
					t.Fatal(err)
				}
			}
		}
		reports := st.AdvanceSlot()
		for v, ref := range refs {
			want := ref.AdvanceSlot()
			if reports[v].Load != want.Load || reports[v].Slot != want.Slot {
				t.Fatalf("slot %d video %d: report (%d, %d), reference (%d, %d)",
					slot, v, reports[v].Slot, reports[v].Load, want.Slot, want.Load)
			}
		}
	}
	req, inst := st.Totals()
	if want := refs[0].Requests() + refs[1].Requests(); req != want {
		t.Fatalf("requests %d, reference %d", req, want)
	}
	if want := refs[0].Instances() + refs[1].Instances(); inst != want {
		t.Fatalf("instances %d, reference %d", inst, want)
	}
}

// TestAdmitBatchValidation: the batch path rejects what Admit rejects, plus
// non-positive counts, without mutating the engine.
func TestAdmitBatchValidation(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AdmitBatch(9, 2, core.AdmitOptions{}); !errors.Is(err, ErrUnknownVideo) {
		t.Fatalf("unknown video: %v", err)
	}
	if _, err := st.AdmitBatch(0, 0, core.AdmitOptions{}); !errors.Is(err, core.ErrBadBatchCount) {
		t.Fatalf("zero count: %v", err)
	}
	if _, err := st.AdmitBatch(0, 3, core.AdmitOptions{From: 77}); !errors.Is(err, core.ErrBadResumePoint) {
		t.Fatalf("bad resume: %v", err)
	}
	if req, inst := st.Totals(); req != 0 || inst != 0 {
		t.Fatalf("failed batches mutated the engine: %d, %d", req, inst)
	}
	st.Close()
	if _, err := st.AdmitBatch(0, 1, core.AdmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: %v", err)
	}
}

// TestAdmitScratchAssignment: WantAssignment without a caller buffer is
// served from the per-shard scratch (no allocation in steady state, same
// backing array across admissions); a caller-supplied buffer bypasses the
// scratch.
func TestAdmitScratchAssignment(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(1, 10), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := st.Admit(0, core.AdmitOptions{WantAssignment: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Admit(0, core.AdmitOptions{WantAssignment: true})
	if err != nil {
		t.Fatal(err)
	}
	if &a.Assignment[0] != &b.Assignment[0] {
		t.Fatal("scratch buffer was not reused across admissions")
	}
	own := make([]int, 11)
	c, err := st.Admit(0, core.AdmitOptions{Assignment: own})
	if err != nil {
		t.Fatal(err)
	}
	if &c.Assignment[0] != &own[0] {
		t.Fatal("caller-supplied buffer was not used")
	}
	if &c.Assignment[0] == &a.Assignment[0] {
		t.Fatal("caller-supplied admission leaked into the scratch")
	}
}

// TestStationSteadyStateZeroAlloc: the uninstrumented synchronous admit
// path and the reusable-buffer slot advance allocate nothing per operation
// in steady state (single shard, so AdvanceSlotInto spawns no goroutines).
func TestStationSteadyStateZeroAlloc(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(4, 50), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var reports []core.SlotReport
	for k := 0; k < 100; k++ { // steady state; also warms the shard scratch
		for v := 0; v < 4; v++ {
			if _, err := st.Admit(v, core.AdmitOptions{}); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Admit(v, core.AdmitOptions{WantAssignment: true}); err != nil {
				t.Fatal(err)
			}
		}
		reports = st.AdvanceSlotInto(reports)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for v := 0; v < 4; v++ {
			if _, err := st.Admit(v, core.AdmitOptions{}); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Admit(v, core.AdmitOptions{WantAssignment: true}); err != nil {
				t.Fatal(err)
			}
		}
		reports = st.AdvanceSlotInto(reports)
	}); allocs != 0 {
		t.Fatalf("steady-state station path allocates %.1f/run, want 0", allocs)
	}
}

// TestAdvanceSlotIntoMatchesAdvanceSlot: the reusable-buffer variant
// produces the same reports and reslices correctly.
func TestAdvanceSlotIntoMatchesAdvanceSlot(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(3, 8), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if _, err := st.Admit(v, core.AdmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]core.SlotReport, 1) // undersized: must be grown
	dst = st.AdvanceSlotInto(dst)
	if len(dst) != 3 {
		t.Fatalf("reports length %d, want 3", len(dst))
	}
	for v := 0; v < 3; v++ {
		// Slot-0 admissions are served starting at slot 1, so the retired
		// slot 0 is empty.
		if dst[v].Slot != 0 || dst[v].Load != 0 {
			t.Fatalf("video %d retired %+v, want slot 0 load 0", v, dst[v])
		}
	}
	// Oversized buffers are resliced down and every entry overwritten; the
	// retired slot 1 carries each video's segment 1 (deadline T[1] = 1).
	big := make([]core.SlotReport, 10)
	for i := range big {
		big[i] = core.SlotReport{Slot: -99, Load: -99}
	}
	big = st.AdvanceSlotInto(big)
	if len(big) != 3 {
		t.Fatalf("reports length %d, want 3", len(big))
	}
	for v := 0; v < 3; v++ {
		if big[v].Slot != 1 || big[v].Load < 1 {
			t.Fatalf("video %d stale report %+v, want slot 1 with load >= 1", v, big[v])
		}
	}
}
