package broadcast

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFastBroadcastFigure1(t *testing.T) {
	// Figure 1 of the paper: FB with three streams and seven segments.
	m, err := FastBroadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams() != 3 {
		t.Fatalf("streams = %d, want 3", m.Streams())
	}
	rows := m.Render(4)
	want := []string{
		"S1 S1 S1 S1",
		"S2 S3 S2 S3",
		"S4 S5 S6 S7",
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("stream %d = %q, want %q", i+1, rows[i], w)
		}
	}
}

func TestFastBroadcastTruncated(t *testing.T) {
	// 99 segments: streams 1..6 full, stream 7 truncated to segments 64-99.
	m, err := FastBroadcast(99)
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams() != 7 {
		t.Fatalf("streams = %d, want 7", m.Streams())
	}
	if got := m.Period(99); got != 36 {
		t.Fatalf("period(99) = %d, want 36 (truncated stream cycle)", got)
	}
	if got := m.Period(63); got != 32 {
		t.Fatalf("period(63) = %d, want 32", got)
	}
}

func TestFBStreams(t *testing.T) {
	tests := []struct{ n, want int }{
		{n: 1, want: 1},
		{n: 3, want: 2},
		{n: 4, want: 3},
		{n: 7, want: 3},
		{n: 63, want: 6},
		{n: 64, want: 7},
		{n: 99, want: 7},
		{n: 127, want: 7},
	}
	for _, tt := range tests {
		if got := FBStreams(tt.n); got != tt.want {
			t.Errorf("FBStreams(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestSkyscraperFigure3(t *testing.T) {
	// Figure 3 of the paper: first three SB streams (widths 1, 2, 2).
	m, err := Skyscraper(5)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Render(6)
	want := []string{
		"S1 S1 S1 S1 S1 S1",
		"S2 S3 S2 S3 S2 S3",
		"S4 S5 S4 S5 S4 S5",
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("stream %d = %q, want %q", i+1, rows[i], w)
		}
	}
}

func TestSkyscraperWidthSeries(t *testing.T) {
	got := skyscraperWidths(11)
	want := []int{1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("widths = %v, want %v", got, want)
		}
	}
}

func TestSkyscraperNeedsMoreStreamsThanFB(t *testing.T) {
	// The paper: "SB will always require more server bandwidth than NPB and
	// FB to guarantee the same maximum waiting time d".
	sb, err := Skyscraper(99)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := FastBroadcast(99)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Streams() <= fb.Streams() {
		t.Fatalf("SB streams = %d, FB streams = %d: SB should need more", sb.Streams(), fb.Streams())
	}
}

func TestNPBFigure2(t *testing.T) {
	m, err := NPBFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams() != 3 || m.N() != 9 {
		t.Fatalf("NPB fixture: %d streams, %d segments; want 3, 9", m.Streams(), m.N())
	}
	rows := m.Render(6)
	want := []string{
		"S1 S1 S1 S1 S1 S1",
		"S2 S4 S2 S5 S2 S4",
		"S3 S6 S8 S3 S7 S9",
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("stream %d = %q, want %q", i+1, rows[i], w)
		}
	}
}

func TestPagodaPacksNinetyNineSegmentsIntoSixStreams(t *testing.T) {
	// The evaluation point of Figures 7-8: NPB with 99 segments runs on six
	// streams, and our pagoda packer must need the same count.
	if got := PagodaStreams(99); got != 6 {
		t.Fatalf("PagodaStreams(99) = %d, want 6", got)
	}
}

func TestPagodaBeatsFB(t *testing.T) {
	// A pagoda-family packer exists to pack more segments per stream than
	// FB does (paper Section 2: NPB packs 9 where FB packs 7).
	for _, n := range []int{20, 50, 99, 200, 500} {
		p, err := Pagoda(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Streams() > FBStreams(n) {
			t.Errorf("Pagoda(%d) uses %d streams, FB only %d", n, p.Streams(), FBStreams(n))
		}
	}
	// And strictly fewer once n is large enough.
	p, err := Pagoda(99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Streams() >= FBStreams(99) {
		t.Fatalf("Pagoda(99) = %d streams, want < FB's %d", p.Streams(), FBStreams(99))
	}
}

func TestPagodaSmallCases(t *testing.T) {
	tests := []struct{ n, want int }{
		{n: 1, want: 1},
		{n: 3, want: 2},
		{n: 8, want: 3},
		{n: 20, want: 4},
		{n: 50, want: 5},
		{n: 124, want: 6},
	}
	for _, tt := range tests {
		if got := PagodaStreams(tt.n); got != tt.want {
			t.Errorf("PagodaStreams(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestConstructorsRejectBadN(t *testing.T) {
	if _, err := FastBroadcast(0); err == nil {
		t.Error("FB(0) should error")
	}
	if _, err := Skyscraper(-1); err == nil {
		t.Error("SB(-1) should error")
	}
	if _, err := Pagoda(0); err == nil {
		t.Error("Pagoda(0) should error")
	}
}

func TestNewMappingValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		streams []Stream
	}{
		{
			name:    "missing segment",
			n:       2,
			streams: []Stream{{M: 1, Subs: []Substream{{Start: 1, Count: 1}}}},
		},
		{
			name: "duplicate segment",
			n:    2,
			streams: []Stream{
				{M: 1, Subs: []Substream{{Start: 1, Count: 2}}},
				{M: 1, Subs: []Substream{{Start: 2, Count: 1}}},
			},
		},
		{
			name:    "segment out of range",
			n:       1,
			streams: []Stream{{M: 1, Subs: []Substream{{Start: 1, Count: 2}}}},
		},
		{
			name:    "bad substream count",
			n:       1,
			streams: []Stream{{M: 2, Subs: []Substream{{Start: 1, Count: 1}}}},
		},
		{
			name: "period violation",
			n:    3,
			streams: []Stream{
				{M: 1, Subs: []Substream{{Start: 1, Count: 1}}},
				// S2 and S3 at period 4 violates period(S2) <= 2.
				{M: 2, Subs: []Substream{{Start: 2, Count: 2}, {Start: 0, Count: 0}}},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMapping(tt.n, tt.streams); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// checkTimeliness verifies the broadcasting guarantee: a client arriving in
// slot i (downloading everything from slot i+1 on) receives each segment s
// no later than slot i+s.
func checkTimeliness(t *testing.T, m *Mapping, arrivals []int) {
	t.Helper()
	for _, i := range arrivals {
		for s := 1; s <= m.N(); s++ {
			occ := m.FirstOccurrenceAfter(s, i)
			if occ <= i {
				t.Fatalf("FirstOccurrenceAfter(%d, %d) = %d not after arrival", s, i, occ)
			}
			if occ > i+s {
				t.Fatalf("segment %d for arrival at slot %d first broadcast at %d > %d", s, i, occ, i+s)
			}
			if m.SegmentAt(m.segHome[s].stream, occ) != s {
				t.Fatalf("FirstOccurrenceAfter lied: slot %d of stream %d does not carry S%d", occ, m.segHome[s].stream, s)
			}
		}
	}
}

func TestTimelinessAllProtocols(t *testing.T) {
	arrivals := []int{0, 1, 2, 3, 17, 100, 9999}
	builders := []struct {
		name  string
		build func(int) (*Mapping, error)
	}{
		{name: "fb", build: FastBroadcast},
		{name: "sb", build: Skyscraper},
		{name: "pagoda", build: Pagoda},
	}
	for _, b := range builders {
		for _, n := range []int{1, 2, 7, 9, 50, 99} {
			m, err := b.build(n)
			if err != nil {
				t.Fatalf("%s(%d): %v", b.name, n, err)
			}
			t.Run(b.name, func(t *testing.T) { checkTimeliness(t, m, arrivals) })
		}
	}
	npb, err := NPBFigure2()
	if err != nil {
		t.Fatal(err)
	}
	checkTimeliness(t, npb, arrivals)
}

func TestTimelinessProperty(t *testing.T) {
	m, err := Pagoda(99)
	if err != nil {
		t.Fatal(err)
	}
	f := func(arrival uint16, seg uint8) bool {
		i := int(arrival)
		s := 1 + int(seg)%99
		occ := m.FirstOccurrenceAfter(s, i)
		return occ > i && occ <= i+s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodsAtMostIndexProperty(t *testing.T) {
	for _, n := range []int{7, 30, 99} {
		for _, build := range []func(int) (*Mapping, error){FastBroadcast, Skyscraper, Pagoda} {
			m, err := build(n)
			if err != nil {
				t.Fatal(err)
			}
			for s := 1; s <= n; s++ {
				if m.Period(s) > s {
					t.Fatalf("period(%d) = %d > %d", s, m.Period(s), s)
				}
				if m.Period(s) < 1 {
					t.Fatalf("period(%d) = %d < 1", s, m.Period(s))
				}
			}
		}
	}
}

func TestRenderIdleSlots(t *testing.T) {
	m, err := NewMapping(2, []Stream{
		{M: 1, Subs: []Substream{{Start: 1, Count: 1}}},
		{M: 2, Subs: []Substream{{Start: 2, Count: 1}, {Start: 0, Count: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := m.Render(4)[1]
	if !strings.Contains(row, "--") {
		t.Fatalf("idle slots not rendered: %q", row)
	}
}

func TestStreamsFullyPackedExceptLast(t *testing.T) {
	// Every stream but possibly the last must have no idle slots: that is
	// what makes pagoda protocols bandwidth-efficient.
	m, err := Pagoda(99)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.Streams()-1; j++ {
		for t2 := 0; t2 < 1000; t2++ {
			if m.SegmentAt(j, t2) == 0 {
				t.Fatalf("stream %d idle at slot %d", j+1, t2)
			}
		}
	}
}
