// Package workload generates the customer request patterns of the paper's
// evaluation: homogeneous Poisson arrivals at a configurable hourly rate,
// time-of-day varying rates (the introduction's child-oriented versus
// late-night videos), and Zipf-distributed popularity across a multi-video
// catalogue.
package workload

import (
	"fmt"
	"math"

	"vodcast/internal/sim"
)

// PerHour converts an hourly request rate (the unit used throughout the
// paper) to the per-second rate used by the simulators.
func PerHour(requestsPerHour float64) float64 {
	return requestsPerHour / 3600
}

// RateFunc reports an instantaneous arrival rate in requests per second at
// simulated time t (seconds).
type RateFunc func(t float64) float64

// Constant returns a rate function with a fixed hourly rate.
func Constant(requestsPerHour float64) RateFunc {
	r := PerHour(requestsPerHour)
	return func(float64) float64 { return r }
}

// DayNight returns a 24-hour-periodic rate that peaks at peakPerHour around
// peakHour (0-24) and bottoms out at offPeakPerHour twelve hours later,
// varying sinusoidally. It models the introduction's observation that demand
// for any given video swings with the time of day.
func DayNight(peakPerHour, offPeakPerHour, peakHour float64) RateFunc {
	mid := (peakPerHour + offPeakPerHour) / 2
	amp := (peakPerHour - offPeakPerHour) / 2
	return func(t float64) float64 {
		hour := math.Mod(t/3600, 24)
		phase := 2 * math.Pi * (hour - peakHour) / 24
		return PerHour(mid + amp*math.Cos(phase))
	}
}

// Ramp returns a rate that climbs linearly from startPerHour to endPerHour
// over rampSeconds and holds the end rate afterwards — the warm-up shape a
// load harness uses to find the knee of a capacity curve. rampSeconds <= 0
// jumps straight to the end rate.
func Ramp(startPerHour, endPerHour, rampSeconds float64) RateFunc {
	if rampSeconds <= 0 {
		return Constant(endPerHour)
	}
	return func(t float64) float64 {
		switch {
		case t <= 0:
			return PerHour(startPerHour)
		case t >= rampSeconds:
			return PerHour(endPerHour)
		default:
			return PerHour(startPerHour + (endPerHour-startPerHour)*t/rampSeconds)
		}
	}
}

// Soak returns a flat sustained rate: Constant under a name that reads as
// the load-profile it drives (hold one rate long enough for slow leaks and
// drift to surface).
func Soak(requestsPerHour float64) RateFunc { return Constant(requestsPerHour) }

// Spike returns a base rate with a burst plateau: spikePerHour during
// [startSeconds, startSeconds+durationSeconds), basePerHour elsewhere — the
// flash-crowd shape (a popular release, a failover dumping one server's
// customers onto another). A non-positive duration never spikes.
func Spike(basePerHour, spikePerHour, startSeconds, durationSeconds float64) RateFunc {
	if durationSeconds <= 0 {
		return Constant(basePerHour)
	}
	return func(t float64) float64 {
		if t >= startSeconds && t < startSeconds+durationSeconds {
			return PerHour(spikePerHour)
		}
		return PerHour(basePerHour)
	}
}

// SlottedArrivals draws the number of requests arriving in each consecutive
// slot. For a non-constant rate the expected count integrates the rate across
// the slot with a midpoint rule, which is exact for the constant case and
// accurate for rates that vary on hour scales while slots last about a
// minute.
type SlottedArrivals struct {
	rng  *sim.RNG
	rate RateFunc
	d    float64
	slot int
}

// NewSlottedArrivals returns a slotted arrival source with the given slot
// duration in seconds. It panics if d <= 0.
func NewSlottedArrivals(rng *sim.RNG, rate RateFunc, d float64) *SlottedArrivals {
	if d <= 0 {
		panic("workload: slot duration must be positive")
	}
	return &SlottedArrivals{rng: rng, rate: rate, d: d}
}

// Next returns the number of requests arriving during the next slot.
func (s *SlottedArrivals) Next() int {
	mid := (float64(s.slot) + 0.5) * s.d
	s.slot++
	mean := s.rate(mid) * s.d
	return s.rng.Poisson(mean)
}

// Slot reports the index of the next slot Next will draw.
func (s *SlottedArrivals) Slot() int { return s.slot }

// Zipf models video popularity across a catalogue: the i-th most popular of
// n videos is requested proportionally to 1/i^skew.
type Zipf struct {
	cumulative []float64
	weights    []float64
}

// NewZipf builds a catalogue of n videos with the given skew (1.0 is the
// classic Zipf law typically fitted to video rental popularity).
func NewZipf(n int, skew float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: catalogue size %d must be positive", n)
	}
	if skew < 0 {
		return nil, fmt.Errorf("workload: skew %v must be non-negative", skew)
	}
	weights := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		weights[i] = 1 / math.Pow(float64(i+1), skew)
		sum += weights[i]
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		weights[i] /= sum
		acc += weights[i]
		cum[i] = acc
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cumulative: cum, weights: weights}, nil
}

// Weight reports the probability that a request targets video i (0-based
// popularity rank).
func (z *Zipf) Weight(i int) float64 { return z.weights[i] }

// N reports the catalogue size.
func (z *Zipf) N() int { return len(z.weights) }

// Sample draws a video index according to the popularity law.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	// Binary search the cumulative distribution.
	lo, hi := 0, len(z.cumulative)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cumulative[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
