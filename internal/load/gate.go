package load

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"vodcast/internal/analysis"
	"vodcast/internal/obs"
	"vodcast/internal/vodclient"
)

// Gate tunes the analytic pass/fail envelopes a step must sit inside. The
// zero value selects the documented defaults; Disabled skips gating (every
// step passes and Checks stays empty).
type Gate struct {
	Disabled bool

	// ErrorBudget bounds the fraction of sessions that may fail outright
	// (admit rejects, disconnects, timeouts). Default 0.01.
	ErrorBudget float64
	// MissBudget bounds deadline misses per completed session — the paper's
	// delivery guarantee says zero, so the budget only absorbs measurement
	// edge effects. Default 0.01.
	MissBudget float64
	// StartupSlackSlots pads the waiting-time envelope: p99 startup delay
	// must not exceed T[1] + StartupSlackSlots. DHB promises segment 1
	// within T[1] slots of admission; the slack absorbs the half-open slot
	// the admission itself lands in. Default 1.
	StartupSlackSlots float64
	// SaturatedTolerance pads the hard bandwidth ceiling: each video's
	// measured broadcast load may exceed DHBSaturated by this fraction
	// (absorbing boundary effects of short steps). Default 0.15.
	SaturatedTolerance float64
	// MeanTolerance and MeanSlackStreams pad the renewal-model envelope:
	// measured load must stay under DHBMean(measured rate)×(1+MeanTolerance)
	// + MeanSlackStreams. The relative term absorbs model error, the
	// absolute term short-step variance at low rates. Defaults 0.5 and 0.5.
	MeanTolerance    float64
	MeanSlackStreams float64
	// MinSessions is the smallest completed-session count a step needs
	// before its client-side distributions are gated; MinSlots the smallest
	// per-video slot delta before its bandwidth is gated. Too-small samples
	// are skipped, not failed. Defaults 20 and 20.
	MinSessions int
	MinSlots    int
	// ConnStalledBudget bounds the fraction of tracked connections the
	// server's transport telemetry classifies stalled at the step boundary —
	// a healthy closed-loop fleet keeps reading, so any stall is the
	// server's (or the harness's) fault. Default 0.05.
	ConnStalledBudget float64
	// ConnRetransBudget bounds mean kernel retransmits per tracked
	// connection over the step: loopback load runs should see essentially
	// none, so the default mostly exists for shaped-network profiles.
	// Default 50.
	ConnRetransBudget float64
}

func (g Gate) withDefaults() Gate {
	if g.ErrorBudget == 0 {
		g.ErrorBudget = 0.01
	}
	if g.MissBudget == 0 {
		g.MissBudget = 0.01
	}
	if g.StartupSlackSlots == 0 {
		g.StartupSlackSlots = 1
	}
	if g.SaturatedTolerance == 0 {
		g.SaturatedTolerance = 0.15
	}
	if g.MeanTolerance == 0 {
		g.MeanTolerance = 0.5
	}
	if g.MeanSlackStreams == 0 {
		g.MeanSlackStreams = 0.5
	}
	if g.MinSessions == 0 {
		g.MinSessions = 20
	}
	if g.MinSlots == 0 {
		g.MinSlots = 20
	}
	if g.ConnStalledBudget == 0 {
		g.ConnStalledBudget = 0.05
	}
	if g.ConnRetransBudget == 0 {
		g.ConnRetransBudget = 50
	}
	return g
}

// Check is one gate verdict: a measured quantity against its analytic
// limit.
type Check struct {
	Name     string  `json:"name"`
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"`
	Pass     bool    `json:"pass"`
	Detail   string  `json:"detail,omitempty"`
}

func check(name string, measured, limit float64, detail string) Check {
	return Check{Name: name, Measured: measured, Limit: limit, Pass: measured <= limit, Detail: detail}
}

// StepResult is one finished load step: the merged client-side digests,
// the server-side delta when /statusz was polled, and the gate verdicts.
type StepResult struct {
	Name            string  `json:"name"`
	TargetSessions  int     `json:"target_sessions"`
	DurationSeconds float64 `json:"duration_seconds"`

	Sessions         uint64  `json:"sessions"`
	Errors           uint64  `json:"errors"`
	Misses           uint64  `json:"deadline_misses"`
	SessionsPerSec   float64 `json:"sessions_per_sec"`
	SessionsPerCore  float64 `json:"sessions_per_core"`
	AdmitsPerSec     float64 `json:"admits_per_sec"`
	ErrorRate        float64 `json:"error_rate"`
	MissesPerSession float64 `json:"misses_per_session"`

	Startup   obs.WindowSnapshot `json:"startup_slots"`
	Slack     obs.WindowSnapshot `json:"slack_slots"`
	Dial      obs.WindowSnapshot `json:"dial_seconds"`
	PoolWait  obs.WindowSnapshot `json:"pool_wait_seconds"`
	FirstByte obs.WindowSnapshot `json:"first_byte_seconds"`

	Server  *ServerDelta  `json:"server,omitempty"`
	History *HistoryDelta `json:"history,omitempty"`
	Conn    *ConnDelta    `json:"conn,omitempty"`
	Checks  []Check       `json:"checks,omitempty"`
	// Gated reports whether the gate evaluated this step; Pass is its
	// verdict (true when ungated — an ungated step cannot fail).
	Gated bool `json:"gated"`
	Pass  bool `json:"pass"`
}

// Report is the final machine-readable artifact of a run.
type Report struct {
	Addr       string              `json:"addr"`
	Cores      int                 `json:"cores"`
	Zipf       float64             `json:"zipf_skew"`
	SlotMillis int                 `json:"slot_millis"`
	Steps      []StepResult        `json:"steps"`
	Pool       vodclient.PoolStats `json:"pool"`
	// Pass is the run verdict: every gated step passed and the run was not
	// interrupted. Failures names what went wrong, one line per failed
	// check.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

func (r *Report) finalize(interrupted bool) {
	r.Pass = true
	if interrupted {
		r.Pass = false
		r.Failures = append(r.Failures, "run interrupted before the profile completed")
	}
	for i := range r.Steps {
		st := &r.Steps[i]
		if st.Pass {
			continue
		}
		r.Pass = false
		for _, c := range st.Checks {
			if !c.Pass {
				r.Failures = append(r.Failures,
					fmt.Sprintf("step %s: %s measured %.4g > limit %.4g (%s)",
						st.Name, c.Name, c.Measured, c.Limit, c.Detail))
			}
		}
	}
}

// gateStep evaluates the envelopes for one finished step in place.
func (h *Harness) gateStep(res *StepResult) {
	g := h.cfg.Gate
	res.Pass = true
	if g.Disabled {
		return
	}
	total := res.Sessions + res.Errors
	if total < uint64(g.MinSessions) {
		return
	}
	res.Gated = true

	// Session health: errors and deadline misses against their budgets.
	res.Checks = append(res.Checks,
		check("error_rate", res.ErrorRate, g.ErrorBudget,
			fmt.Sprintf("%d of %d sessions failed", res.Errors, total)),
		check("miss_rate", res.MissesPerSession, g.MissBudget,
			fmt.Sprintf("%d deadline misses over %d sessions", res.Misses, res.Sessions)))

	// Waiting time: DHB delivers segment 1 within T[1] slots of admission,
	// so p99 startup delay is gated at max T[1] over the catalogue plus
	// slack. Needs at least one learned schedule.
	periods := h.periodsLearned()
	if maxT1 := maxFirstPeriod(periods); maxT1 > 0 && res.Startup.Count > 0 {
		res.Checks = append(res.Checks,
			check("startup_p99_slots", res.Startup.P99, float64(maxT1)+g.StartupSlackSlots,
				fmt.Sprintf("T[1]=%d over %d videos", maxT1, len(periods))))
	}

	// Transport health: the server's /connz histogram at the step boundary.
	// A closed-loop fleet keeps reading, so stalled classifications and
	// kernel retransmits are budgeted, not expected. Skipped when the sample
	// is missing (conntrack disabled, an older server) or nothing was
	// tracked at the boundary.
	if cd := res.Conn; cd != nil && cd.Tracked > 0 {
		res.Checks = append(res.Checks,
			check("conn_stalled_ratio", cd.StalledRatio, g.ConnStalledBudget,
				fmt.Sprintf("%d of %d tracked connections stalled", cd.States["stalled"], cd.Tracked)),
			check("conn_retrans_per_conn", cd.RetransPerConn, g.ConnRetransBudget,
				fmt.Sprintf("%d kernel retransmits over %d connections", cd.Retrans, cd.Tracked)))
	}

	// Bandwidth: each video's measured broadcast load (instances per slot,
	// from the server-side delta) against the saturation ceiling and the
	// renewal-model mean at the measured arrival rate. Both server-side
	// sections are skipped — not failed — when /statusz was never polled;
	// the client-side checks above still decide the verdict below.
	if res.Server != nil {
		// Cross-check: the server's retained history must agree with its
		// live counters over the step. The tolerance absorbs scrape-boundary
		// effects (requests landing before the first in-window sample);
		// sparse ranges — short CI smokes, slow scrape intervals — are
		// skipped, not failed.
		if hd := res.History; hd != nil && hd.Points >= 5 && res.Server.Requests > 0 {
			hd.StatuszDelta = res.Server.Requests
			diff := math.Abs(hd.Delta - float64(res.Server.Requests))
			limit := 0.3*float64(res.Server.Requests) + 10
			res.Checks = append(res.Checks,
				check("history_requests_delta", diff, limit,
					fmt.Sprintf("history %s moved %.0f over %d points, statusz moved %d",
						hd.Series, hd.Delta, hd.Points, res.Server.Requests)))
		}
		slotSec := float64(h.slotMillisLearned()) / 1000
		for i := range res.Server.PerVideo {
			v := &res.Server.PerVideo[i]
			p, ok := periods[v.Video]
			if !ok || v.Slots < h.cfg.Gate.MinSlots || slotSec <= 0 {
				continue
			}
			sat, err := analysis.DHBSaturated(p)
			if err != nil {
				continue
			}
			v.Saturated = sat
			res.Checks = append(res.Checks,
				check(fmt.Sprintf("bandwidth_saturated_video_%d", v.Video), v.Load, sat*(1+g.SaturatedTolerance),
					fmt.Sprintf("measured %.3f streams over %d slots, H ceiling %.3f", v.Load, v.Slots, sat)))
			if v.RatePerHour > 0 {
				mean, err := analysis.DHBMean(p, v.RatePerHour, slotSec)
				if err == nil {
					v.MeanEnvelope = mean
					res.Checks = append(res.Checks,
						check(fmt.Sprintf("bandwidth_mean_video_%d", v.Video), v.Load, mean*(1+g.MeanTolerance)+g.MeanSlackStreams,
							fmt.Sprintf("renewal model %.3f streams at %.0f req/h", mean, v.RatePerHour)))
				}
			}
		}
	}
	for _, c := range res.Checks {
		if !c.Pass {
			res.Pass = false
		}
	}
}

func maxFirstPeriod(periods map[uint32][]int) int {
	max := 0
	for _, p := range periods {
		if len(p) > 1 && p[1] > max {
			max = p[1]
		}
	}
	return max
}

// ServerDelta is the server's own accounting over one step, from /statusz
// samples at the step boundaries.
type ServerDelta struct {
	Requests  int64        `json:"requests"`
	Instances int64        `json:"instances"`
	Slots     int          `json:"slots"`
	PerVideo  []VideoDelta `json:"per_video,omitempty"`
}

// VideoDelta is one video's step delta plus the analytic envelopes the
// gate compared it against.
type VideoDelta struct {
	Video     uint32 `json:"video"`
	Requests  int64  `json:"requests"`
	Instances int64  `json:"instances"`
	Slots     int    `json:"slots"`
	// Load is the measured broadcast bandwidth, instances per slot (streams
	// in consumption-rate units); RatePerHour the measured arrival rate.
	Load        float64 `json:"load"`
	RatePerHour float64 `json:"rate_per_hour"`
	// MeanEnvelope and Saturated are the analytic references, filled by the
	// gate when it evaluated this video.
	MeanEnvelope float64 `json:"mean_envelope,omitempty"`
	Saturated    float64 `json:"saturated,omitempty"`
}

// serverSample is the slice of the /statusz document the gate consumes —
// decoded structurally so the harness does not import the server.
type serverSample struct {
	Stats struct {
		Requests  int64 `json:"Requests"`
		Instances int64 `json:"Instances"`
	} `json:"stats"`
	Station struct {
		PerVideo []struct {
			// Video is the station's 0-based catalogue index; Name carries
			// the wire-level video ID the schedules are granted under.
			Video     int    `json:"video"`
			Name      string `json:"name"`
			Slot      int    `json:"slot"`
			Requests  int64  `json:"requests"`
			Instances int64  `json:"instances"`
		} `json:"per_video"`
		Clock struct {
			Ticks uint64 `json:"ticks"`
		} `json:"clock"`
	} `json:"station"`
}

// wireID recovers the wire-level video ID from a station per-video row:
// vodserver names each station video after its wire ID. Rows with
// non-numeric names (foreign station layouts) report ok=false and are
// skipped rather than misattributed.
func wireID(name string) (uint32, bool) {
	id, err := strconv.ParseUint(name, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(id), true
}

// HistoryDelta cross-checks the server's retained metric history against
// its live counters: the vod_requests_total range the server's own /queryz
// endpoint served for the step window, and the /statusz counter delta the
// gate compared it with. A scrape pipeline that lags, drops samples or
// retains the wrong series shows up here as a delta mismatch.
type HistoryDelta struct {
	Series string `json:"series"`
	// Points is the number of retained samples inside the step window;
	// Delta the counter movement they record (last minus first).
	Points int     `json:"points"`
	Delta  float64 `json:"delta"`
	// StatuszDelta is the /statusz requests delta over the same step,
	// filled by the gate when it evaluated the cross-check.
	StatuszDelta int64 `json:"statusz_delta,omitempty"`
}

// historySeries is the series the cross-check ranges over — the request
// counter, because every admitted session moves it and both sides of the
// comparison observe the same server.
const historySeries = "vod_requests_total"

// ConnDelta is the transport-telemetry sample taken at the step boundary:
// the /connz state histogram plus the aggregate evidence the gate budgets.
// Unlike the counter deltas it is a point-in-time sample — connections
// churn too fast across a step for per-connection subtraction to mean
// anything.
type ConnDelta struct {
	Tracked      int            `json:"tracked"`
	States       map[string]int `json:"states,omitempty"`
	StalledRatio float64        `json:"stalled_ratio"`
	// Retrans sums the kernel retransmit counters across the tracked set;
	// RetransPerConn is the mean the gate compares against its budget.
	Retrans        uint64  `json:"retrans_total"`
	RetransPerConn float64 `json:"retrans_per_conn"`
}

type statusPoller struct {
	url      string
	queryURL string
	connzURL string
	client   *http.Client
}

// newStatusPoller returns a poller for the server's stats address, or nil
// when addr is empty (server-side gating disabled).
func newStatusPoller(addr string) *statusPoller {
	if addr == "" {
		return nil
	}
	return &statusPoller{
		url:      "http://" + addr + "/statusz",
		queryURL: "http://" + addr + "/queryz",
		connzURL: "http://" + addr + "/connz",
		client:   &http.Client{Timeout: 5 * time.Second},
	}
}

// conns samples /connz at a step boundary; nil on any failure — conntrack
// disabled (503), an older server without the endpoint (404) — which skips
// the transport checks for the step.
func (p *statusPoller) conns() *ConnDelta {
	if p == nil {
		return nil
	}
	resp, err := p.client.Get(p.connzURL)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Tracked      int            `json:"tracked"`
		States       map[string]int `json:"states"`
		StalledRatio float64        `json:"stalled_ratio"`
		Conns        []struct {
			Retrans uint32 `json:"retrans_total"`
		} `json:"conns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	cd := &ConnDelta{Tracked: body.Tracked, States: body.States, StalledRatio: body.StalledRatio}
	for _, c := range body.Conns {
		cd.Retrans += uint64(c.Retrans)
	}
	if body.Tracked > 0 {
		cd.RetransPerConn = float64(cd.Retrans) / float64(body.Tracked)
	}
	return cd
}

// history runs one /queryz range query over the step window; nil on any
// failure — history disabled (503), an older server without the endpoint —
// which downgrades the step to the /statusz-only checks.
func (p *statusPoller) history(from, to time.Time) *HistoryDelta {
	if p == nil {
		return nil
	}
	q := url.Values{}
	q.Set("series", historySeries)
	q.Set("from", fmt.Sprintf("%.3f", float64(from.UnixNano())/1e9))
	q.Set("to", fmt.Sprintf("%.3f", float64(to.UnixNano())/1e9))
	resp, err := p.client.Get(p.queryURL + "?" + q.Encode())
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Points []struct {
			Unix  float64 `json:"unix"`
			Value float64 `json:"value"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	h := &HistoryDelta{Series: historySeries, Points: len(body.Points)}
	if n := len(body.Points); n > 1 {
		h.Delta = body.Points[n-1].Value - body.Points[0].Value
	}
	return h
}

// sample fetches one /statusz snapshot; nil on any failure (a missing
// sample downgrades the step to client-side gating only).
func (p *statusPoller) sample() *serverSample {
	if p == nil {
		return nil
	}
	resp, err := p.client.Get(p.url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var s serverSample
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil
	}
	return &s
}

// delta samples again and subtracts before, converting per-video counter
// deltas into measured load and arrival rate over the step.
func (p *statusPoller) delta(before *serverSample, stepSeconds float64) *ServerDelta {
	if p == nil || before == nil {
		return nil
	}
	after := p.sample()
	if after == nil {
		return nil
	}
	d := &ServerDelta{
		Requests:  after.Stats.Requests - before.Stats.Requests,
		Instances: after.Stats.Instances - before.Stats.Instances,
		Slots:     int(after.Station.Clock.Ticks - before.Station.Clock.Ticks),
	}
	prev := make(map[uint32]struct {
		slot      int
		requests  int64
		instances int64
	}, len(before.Station.PerVideo))
	for _, v := range before.Station.PerVideo {
		id, ok := wireID(v.Name)
		if !ok {
			continue
		}
		prev[id] = struct {
			slot      int
			requests  int64
			instances int64
		}{v.Slot, v.Requests, v.Instances}
	}
	for _, v := range after.Station.PerVideo {
		id, ok := wireID(v.Name)
		if !ok {
			continue
		}
		b, ok := prev[id]
		if !ok {
			continue
		}
		vd := VideoDelta{
			Video:     id,
			Requests:  v.Requests - b.requests,
			Instances: v.Instances - b.instances,
			Slots:     v.Slot - b.slot,
		}
		if vd.Slots > 0 {
			vd.Load = float64(vd.Instances) / float64(vd.Slots)
		}
		if stepSeconds > 0 {
			vd.RatePerHour = float64(vd.Requests) / stepSeconds * 3600
		}
		d.PerVideo = append(d.PerVideo, vd)
	}
	return d
}
