package core

import (
	"testing"

	"vodcast/internal/sim"
)

func TestCappedConfigValidation(t *testing.T) {
	if _, err := New(Config{Segments: 5, MaxClientStreams: -1}); err == nil {
		t.Fatal("negative cap should error")
	}
	if _, err := New(Config{Segments: 5, MaxClientStreams: 2, Policy: PolicyNaive}); err == nil {
		t.Fatal("cap with naive policy should error")
	}
	s, err := New(Config{Segments: 5, MaxClientStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.ClientStreamCap() != 2 {
		t.Fatalf("ClientStreamCap = %d, want 2", s.ClientStreamCap())
	}
}

// concurrency returns the largest number of this request's segments assigned
// to one slot.
func concurrency(assignment []int) int {
	counts := make(map[int]int)
	max := 0
	for j := 1; j < len(assignment); j++ {
		counts[assignment[j]]++
		if counts[assignment[j]] > max {
			max = counts[assignment[j]]
		}
	}
	return max
}

func TestCappedRespectsClientBandwidth(t *testing.T) {
	for _, cap := range []int{1, 2, 3} {
		s, err := New(Config{Segments: 40, MaxClientStreams: cap})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(41)
		for step := 0; step < 2500; step++ {
			i := s.CurrentSlot()
			for a := 0; a < rng.Poisson(0.6); a++ {
				got := admitTraced(s)
				if c := concurrency(got); c > cap {
					t.Fatalf("cap %d: request at slot %d downloads %d streams at once", cap, i, c)
				}
				for j := 1; j <= 40; j++ {
					if got[j] < i+1 || got[j] > i+j {
						t.Fatalf("cap %d: segment %d served at %d outside [%d, %d]", cap, j, got[j], i+1, i+j)
					}
				}
			}
			s.AdvanceSlot()
		}
	}
}

func TestCapOneIsSequentialJustInTime(t *testing.T) {
	// With one receivable stream, an isolated request degenerates to the
	// sequential schedule S_j at slot i+j.
	s, err := New(Config{Segments: 12, MaxClientStreams: 1, StartSlot: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := admitTraced(s)
	for j := 1; j <= 12; j++ {
		if got[j] != 1+j {
			t.Fatalf("segment %d at slot %d, want %d", j, got[j], 1+j)
		}
	}
}

func TestCappedSharingStillHappens(t *testing.T) {
	s, err := New(Config{Segments: 30, MaxClientStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	admit(s)
	s.AdvanceSlot()
	s.AdvanceSlot()
	added := admit(s)
	if added >= 30 {
		t.Fatalf("second request scheduled %d instances: no sharing under cap 2", added)
	}
	if added == 0 {
		t.Fatal("second request cannot share everything (S1, S2 already passed)")
	}
}

func TestCappedBandwidthMonotoneInCap(t *testing.T) {
	// Tighter client bandwidth means less sharing, so the server pays more.
	run := func(cap int) float64 {
		cfg := Config{Segments: 50}
		if cap > 0 {
			cfg.MaxClientStreams = cap
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(43)
		total := 0
		const horizon = 8000
		for slot := 0; slot < horizon; slot++ {
			for a := 0; a < rng.Poisson(0.5); a++ {
				admit(s)
			}
			total += s.AdvanceSlot().Load
		}
		return float64(total) / horizon
	}
	uncapped := run(0)
	cap3 := run(3)
	cap2 := run(2)
	cap1 := run(1)
	if !(cap1 >= cap2 && cap2 >= cap3 && cap3 >= uncapped-0.05) {
		t.Fatalf("bandwidth not monotone in cap: cap1=%.2f cap2=%.2f cap3=%.2f uncapped=%.2f",
			cap1, cap2, cap3, uncapped)
	}
	if cap1 <= uncapped {
		t.Fatalf("cap 1 (%.2f) should cost strictly more than unlimited (%.2f)", cap1, uncapped)
	}
}

func TestCappedTwoOrThreeStreamsCloseToUncapped(t *testing.T) {
	// The conclusion's conjecture: limiting clients to two or three streams
	// should not be ruinous. Verify cap 3 stays within 25% of unlimited at
	// a busy operating point.
	run := func(cap int) float64 {
		cfg := Config{Segments: 99, MaxClientStreams: cap}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(47)
		total := 0
		const horizon = 6000
		for slot := 0; slot < horizon; slot++ {
			for a := 0; a < rng.Poisson(2.0); a++ {
				admit(s)
			}
			total += s.AdvanceSlot().Load
		}
		return float64(total) / horizon
	}
	capped := run(3)
	uncapped := run(0)
	if capped > 1.25*uncapped {
		t.Fatalf("cap 3 bandwidth %.2f more than 25%% above unlimited %.2f", capped, uncapped)
	}
}

func TestCappedInstanceConservation(t *testing.T) {
	s, err := New(Config{Segments: 15, MaxClientStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(53)
	var transmitted int64
	for step := 0; step < 3000; step++ {
		for a := 0; a < rng.Poisson(0.4); a++ {
			admit(s)
		}
		transmitted += int64(s.AdvanceSlot().Load)
	}
	for k := 0; k <= 15; k++ {
		transmitted += int64(s.AdvanceSlot().Load)
	}
	if transmitted != s.Instances() {
		t.Fatalf("transmitted %d, scheduled %d", transmitted, s.Instances())
	}
}

func TestCappedWithStretchedPeriods(t *testing.T) {
	periods := []int{0, 1, 3, 3, 5, 6, 8, 9, 9}
	s, err := New(Config{Segments: 8, Periods: periods, MaxClientStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(59)
	for step := 0; step < 3000; step++ {
		i := s.CurrentSlot()
		for a := 0; a < rng.Poisson(0.9); a++ {
			got := admitTraced(s)
			if c := concurrency(got); c > 2 {
				t.Fatalf("concurrency %d under cap 2", c)
			}
			for j := 1; j <= 8; j++ {
				if got[j] < i+1 || got[j] > i+periods[j] {
					t.Fatalf("segment %d at %d outside [%d, %d]", j, got[j], i+1, i+periods[j])
				}
			}
		}
		s.AdvanceSlot()
	}
}
