// Command vodtop is a terminal dashboard for a running vodserver. It polls
// the /statusz snapshot endpoint and renders the admission pipeline the way
// an operator wants to read it: shard table, per-stage latency quantiles,
// the admit-to-first-byte SLO burn rate and the station clock's drift.
//
// Usage:
//
//	vodserver -stats-addr 127.0.0.1:4900 &
//	vodtop -addr 127.0.0.1:4900
//
// or, for scripting and snapshots in CI logs:
//
//	vodtop -addr 127.0.0.1:4900 -once
//
// In -once mode the exit status doubles as a health probe: 0 when no alert
// rule is firing, 2 when at least one is, so shell gates can read the
// dashboard without parsing it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"vodcast/internal/conntrack"
	"vodcast/internal/obs"
	"vodcast/internal/obs/history"
	"vodcast/internal/vodserver"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4900", "vodserver stats address (the -stats-addr it was started with)")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render a single frame and exit (for scripting)")
	)
	flag.Parse()
	firing, err := run(os.Stdout, *addr, *interval, *once)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodtop:", err)
		os.Exit(1)
	}
	if *once && firing {
		os.Exit(2)
	}
}

// run renders frames until the loop is interrupted, or exactly one frame in
// once mode. The firing result reports whether the last rendered frame had
// any alert rule in the firing state (the -once exit-code contract).
func run(w io.Writer, addr string, interval time.Duration, once bool) (firing bool, err error) {
	if interval <= 0 {
		return false, fmt.Errorf("interval %v must be positive", interval)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		snap, err := fetch(client, addr)
		if err != nil {
			return false, err
		}
		// The trend and connection panes are best-effort: a server without
		// history (or an old one without /queryz), or one with conntrack
		// disabled, renders the dashboard without them.
		pane := fetchHistory(client, addr)
		conns := fetchConns(client, addr)
		if !once {
			// Clear the screen and home the cursor between frames.
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		render(w, addr, snap)
		if pane != nil {
			renderHistory(w, pane)
		}
		if conns != nil {
			renderConns(w, conns)
		}
		firing = false
		for _, a := range snap.Alerts {
			if a.State == obs.StateFiring {
				firing = true
			}
		}
		if once {
			return firing, nil
		}
		time.Sleep(interval)
	}
}

// fetch pulls one /statusz snapshot from the server.
func fetch(client *http.Client, addr string) (vodserver.StatusSnapshot, error) {
	var snap vodserver.StatusSnapshot
	resp, err := client.Get("http://" + addr + "/statusz")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /statusz: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode /statusz: %w", err)
	}
	return snap, nil
}

// render writes one dashboard frame. It is pure so tests can drive it with
// a synthetic snapshot.
func render(w io.Writer, addr string, snap vodserver.StatusSnapshot) {
	st := snap.Station
	fmt.Fprintf(w, "vodtop — %s  up %s\n", addr, fmtDur(snap.UptimeSeconds))
	fmt.Fprintf(w, "requests=%d instances=%d broadcast=%.1fMB subscribers=%d dropped=%d\n",
		snap.Stats.Requests, snap.Stats.Instances,
		float64(snap.Stats.BroadcastBytes)/1e6, snap.Stats.ActiveSubscribers, snap.Stats.Dropped)

	clock := st.Clock
	state := "stopped"
	if clock.Running {
		state = "running"
	}
	fmt.Fprintf(w, "clock: %s  slot=%s  ticks=%d  lag=%s  drift=%.3f slots",
		state, fmtDur(clock.IntervalSeconds), clock.Ticks, fmtDur(clock.LagSeconds), clock.DriftSlots)
	if clock.Lag.Count > 0 {
		fmt.Fprintf(w, "  (p95 lag %s)", fmtDur(clock.Lag.P95))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "spans: %d roots, %d sampled (1 in %d), %d finished\n",
		snap.Spans.Roots, snap.Spans.Sampled, snap.Spans.SampleEvery, snap.Spans.Finished)

	fb := snap.FirstByte
	fmt.Fprintf(w, "SLO  : first-byte p50=%s p95=%s p99=%s  target<=%s @ %.1f%%  good=%d bad=%d  burn=%.2f\n",
		fmtDur(fb.P50), fmtDur(fb.P95), fmtDur(fb.P99),
		fmtDur(fb.SLOThreshold), fb.SLOObjective*100, fb.Good, fb.Bad, fb.BurnRate)

	// The client's side of the contract: what the reported sessions actually
	// experienced, in slots.
	q := snap.QoE
	fmt.Fprintf(w, "QoE  : reports=%d  startup p50=%.0f p95=%.0f slots  slack mean=%.1f slots  miss/report mean=%.2f\n",
		q.Reports, q.Startup.P50, q.Startup.P95, q.Slack.Mean, q.MissRate.Mean)

	// The load pane appears only while /statusz carries a co-located load
	// harness's counters (vodload's self-hosted mode).
	if l := snap.Load; l != nil {
		state := "idle"
		if l.Running {
			state = fmt.Sprintf("step %s (%d/%d)", l.Step, l.StepIndex, l.Steps)
		}
		fmt.Fprintf(w, "load : %s  target=%d active=%d  sessions=%d err=%d (%.2f%%)  admits/s=%.1f\n",
			state, l.TargetSessions, l.ActiveSessions,
			l.Sessions, l.Errors, l.ErrorRate*100, l.AdmitsPerSec)
	}

	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tCOUNT\tP50\tP95\tP99\tMAX")
	for _, row := range stageRows(snap) {
		win := row.win
		if row.depth {
			// Queue depth is in requests, not seconds.
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				row.name, win.Count, win.P50, win.P95, win.P99, win.Max)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
			row.name, win.Count, fmtDur(win.P50), fmtDur(win.P95), fmtDur(win.P99), fmtDur(win.Max))
	}
	tw.Flush()

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tVIDEOS\tPENDING\tCAP\tADMITS\tREJECTS")
	for _, sh := range st.Shards {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.0f\t%.0f\n",
			sh.Shard, sh.Videos, sh.Pending, sh.QueueCap, sh.Admits, sh.Rejects)
	}
	tw.Flush()

	if len(st.PerVideo) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "VIDEO\tNAME\tSHARD\tSLOT\tREQUESTS\tINSTANCES")
		for _, row := range st.PerVideo {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\n",
				row.Video, row.Name, row.Shard, row.Slot, row.Requests, row.Instances)
		}
		tw.Flush()
	}

	if len(snap.Alerts) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ALERT\tSEVERITY\tSTATE\tVALUE\tTHRESHOLD\tFIRED")
		for _, a := range snap.Alerts {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s %.4g\t%d\n",
				a.Name, a.Severity, renderState(a.State), fmtAlertValue(a.Value),
				a.Op, a.Threshold, a.Fired)
		}
		tw.Flush()
	}
}

// renderState upper-cases the firing state so an operator scanning the pane
// cannot miss it.
func renderState(s obs.AlertState) string {
	if s == obs.StateFiring {
		return "FIRING"
	}
	return string(s)
}

// fmtAlertValue renders a rule's observed value; NaN means the rule has not
// seen data yet.
func fmtAlertValue(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// stageRow is one line of the latency table.
type stageRow struct {
	name string
	win  obs.WindowSnapshot
	// depth marks a window measured in requests rather than seconds.
	depth bool
}

// stageRows orders the pipeline stages the way a request traverses them:
// the station's internal stages first (sorted for stability), then the
// server-side fan-out and first-byte windows.
func stageRows(snap vodserver.StatusSnapshot) []stageRow {
	names := make([]string, 0, len(snap.Station.Stages))
	for name := range snap.Station.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]stageRow, 0, len(names)+2)
	for _, name := range names {
		rows = append(rows, stageRow{
			name:  name,
			win:   snap.Station.Stages[name],
			depth: name == "queue_depth",
		})
	}
	rows = append(rows,
		stageRow{name: "fanout", win: snap.Fanout},
		stageRow{name: "first_byte", win: snap.FirstByte},
	)
	return rows
}

// historyPane holds the raw /queryz ranges behind the trend pane: the
// startup-latency gauge, the cumulative request counter (turned into a rate
// client-side) and the firing-alert count.
type historyPane struct {
	startup  []history.Point
	requests []history.Point
	firing   []history.Point
}

// queryzRange mirrors the /queryz range-response wire format; vodtop only
// needs the points.
type queryzRange struct {
	Points []history.Point `json:"points"`
}

// fetchHistory pulls the trend series over /queryz, relying on the server's
// default one-minute window. Any failure — history disabled (503), an older
// server without the endpoint (404), a transport error — returns nil and the
// pane is skipped for the frame.
func fetchHistory(client *http.Client, addr string) *historyPane {
	pane := &historyPane{}
	for _, s := range []struct {
		name string
		dst  *[]history.Point
	}{
		{"vod_qoe_startup_p99_slots", &pane.startup},
		{"vod_requests_total", &pane.requests},
		{"vod_alerts_firing", &pane.firing},
	} {
		pts, ok := fetchSeries(client, addr, s.name)
		if !ok {
			return nil
		}
		*s.dst = pts
	}
	return pane
}

// fetchSeries runs one /queryz range query; ok is false on any error.
func fetchSeries(client *http.Client, addr, series string) ([]history.Point, bool) {
	resp, err := client.Get("http://" + addr + "/queryz?series=" + url.QueryEscape(series))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	var qr queryzRange
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, false
	}
	return qr.Points, true
}

// sparkWidth is the trend pane's column budget per sparkline.
const sparkWidth = 30

// renderHistory writes the trend pane under the dashboard. Pure, like
// render, so tests can drive it with synthetic ranges.
func renderHistory(w io.Writer, pane *historyPane) {
	admits := counterRate(pane.requests)
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TREND (1m)\tSPARK\tLAST")
	fmt.Fprintf(tw, "startup p99\t%s\t%s slots\n",
		sparkline(gaugeValues(pane.startup), sparkWidth), lastValue(gaugeValues(pane.startup), "%.0f"))
	fmt.Fprintf(tw, "admits/sec\t%s\t%s\n", sparkline(admits, sparkWidth), lastValue(admits, "%.1f"))
	fmt.Fprintf(tw, "alerts firing\t%s\t%s\n",
		sparkline(gaugeValues(pane.firing), sparkWidth), lastValue(gaugeValues(pane.firing), "%.0f"))
	tw.Flush()
}

// sparkRunes are the eight block heights a sparkline cell can take.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vs as a unicode trend at most width cells wide, scaled
// to the window's own min..max. Wider inputs are downsampled by max so
// spikes survive; a flat series renders at the lowest block.
func sparkline(vs []float64, width int) string {
	if len(vs) == 0 || width <= 0 {
		return ""
	}
	if len(vs) > width {
		buckets := make([]float64, width)
		for i := range buckets {
			buckets[i] = math.Inf(-1)
		}
		for i, v := range vs {
			if b := i * width / len(vs); v > buckets[b] {
				buckets[b] = v
			}
		}
		vs = buckets
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range vs {
		idx := 0
		if hi > lo {
			idx = int((v-lo)/(hi-lo)*float64(len(sparkRunes)-1) + 0.5)
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// counterRate turns cumulative counter points into per-second rates between
// consecutive samples. A counter reset (negative delta) clamps to zero
// rather than rendering a bogus spike.
func counterRate(pts []history.Point) []float64 {
	if len(pts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].Unix - pts[i-1].Unix
		dv := pts[i].Value - pts[i-1].Value
		if dt <= 0 || dv < 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, dv/dt)
	}
	return out
}

// gaugeValues strips timestamps (and any NaN a young window reported) from
// a gauge range for sparkline rendering.
func gaugeValues(pts []history.Point) []float64 {
	out := make([]float64, 0, len(pts))
	for _, p := range pts {
		if math.IsNaN(p.Value) {
			continue
		}
		out = append(out, p.Value)
	}
	return out
}

// lastValue renders the newest value with format, or a dash when the series
// is still empty.
func lastValue(vs []float64, format string) string {
	if len(vs) == 0 {
		return "-"
	}
	return fmt.Sprintf(format, vs[len(vs)-1])
}

// fetchConns pulls the /connz transport-telemetry summary. Best-effort like
// the trend pane: a server with conntrack disabled (503), an older one
// without the endpoint (404) or a transport error skips the pane for the
// frame.
func fetchConns(client *http.Client, addr string) *conntrack.Summary {
	resp, err := client.Get("http://" + addr + "/connz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var sum conntrack.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return nil
	}
	return &sum
}

// connRows caps the per-connection table at the worst offenders; the full
// inventory stays one curl of /connz away.
const connRows = 8

// connSeverity ranks connection states worst-first for the CONN table.
var connSeverity = map[string]int{
	"stalled":              0,
	"path_limited":         1,
	"receiver_limited":     2,
	"sender_backpressured": 3,
	"healthy":              4,
}

// renderConns writes the transport-telemetry pane: the state histogram on
// one line, then the worst tracked connections with the evidence behind
// each verdict. Pure, like render, so tests drive it with a synthetic
// summary.
func renderConns(w io.Writer, sum *conntrack.Summary) {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "CONN : tracked=%d stalled_ratio=%.2f  healthy=%d recv_limited=%d path_limited=%d backpressured=%d stalled=%d\n",
		sum.Tracked, sum.StalledRatio,
		sum.States["healthy"], sum.States["receiver_limited"], sum.States["path_limited"],
		sum.States["sender_backpressured"], sum.States["stalled"])
	if len(sum.Conns) == 0 {
		return
	}
	rows := make([]conntrack.ConnSnapshot, len(sum.Conns))
	copy(rows, sum.Conns)
	sort.SliceStable(rows, func(i, j int) bool {
		if si, sj := connSeverity[rows[i].State], connSeverity[rows[j].State]; si != sj {
			return si < sj
		}
		return rows[i].RingDepth > rows[j].RingDepth
	})
	if len(rows) > connRows {
		rows = rows[:connRows]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CONN\tREMOTE\tSTATE\tAGE\tRTT\tRETRANS\tRING\tKB/S")
	for _, c := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%d\t%d/%d\t%.1f\n",
			c.ID, c.Remote, c.State, fmtDur(c.StateAgeSeconds),
			fmtDur(c.RTTMillis/1000), c.Retrans, c.RingDepth, c.RingCap, c.BytesPerSec/1024)
	}
	tw.Flush()
}

// fmtDur renders a duration given in seconds with a unit that keeps three
// significant digits readable (µs under a millisecond, ms under a second).
func fmtDur(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
