package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"vodcast/internal/sim"
)

func mustNew(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "zero segments", cfg: Config{Segments: 0}},
		{name: "bad periods length", cfg: Config{Segments: 3, Periods: []int{0, 1}}},
		{name: "T1 not one", cfg: Config{Segments: 2, Periods: []int{0, 2, 2}}},
		{name: "unknown policy", cfg: Config{Segments: 2, Policy: Policy(9)}},
		{name: "negative start slot", cfg: Config{Segments: 2, StartSlot: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestDHBFigure4(t *testing.T) {
	// Figure 4: one request arriving during slot 1 into an idle system
	// schedules S_i in slot i+1 for every i.
	s := mustNew(t, Config{Segments: 6, TrackSegments: true, StartSlot: 1})
	added := admit(s)
	if added != 6 {
		t.Fatalf("Admit scheduled %d instances, want 6", added)
	}
	for i := 1; i <= 6; i++ {
		got := s.ScheduledAt(1 + i)
		if len(got) != 1 || got[0] != i {
			t.Errorf("slot %d holds %v, want [S%d]", 1+i, got, i)
		}
	}
}

func TestDHBFigure5(t *testing.T) {
	// Figure 5: a second request during slot 3 shares S3..S6 with the first
	// request and schedules only S1 in slot 4 and S2 in slot 5.
	s := mustNew(t, Config{Segments: 6, TrackSegments: true, StartSlot: 1})
	admit(s)
	s.AdvanceSlot() // finish slot 1
	s.AdvanceSlot() // finish slot 2
	if s.CurrentSlot() != 3 {
		t.Fatalf("current slot = %d, want 3", s.CurrentSlot())
	}
	added := admit(s)
	if added != 2 {
		t.Fatalf("second request scheduled %d new instances, want 2 (S1 and S2)", added)
	}
	wantSlots := map[int][]int{
		3: {2},
		4: {3, 1},
		5: {4, 2},
		6: {5},
		7: {6},
	}
	for slot, want := range wantSlots {
		if got := s.ScheduledAt(slot); !reflect.DeepEqual(got, want) {
			t.Errorf("slot %d holds %v, want %v", slot, got, want)
		}
	}
}

func TestAdmitTracedSharing(t *testing.T) {
	s := mustNew(t, Config{Segments: 6, StartSlot: 1})
	first := admitTraced(s)
	for j := 1; j <= 6; j++ {
		if first[j] != 1+j {
			t.Fatalf("first request: segment %d served at slot %d, want %d", j, first[j], 1+j)
		}
	}
	s.AdvanceSlot()
	s.AdvanceSlot()
	second := admitTraced(s)
	// S3..S6 must be shared with the first request's instances.
	for j := 3; j <= 6; j++ {
		if second[j] != first[j] {
			t.Errorf("segment %d not shared: slot %d vs %d", j, second[j], first[j])
		}
	}
	if second[1] != 4 || second[2] != 5 {
		t.Errorf("new instances at S1=%d S2=%d, want 4 and 5", second[1], second[2])
	}
}

func TestHeuristicNeverDelaysPastDeadline(t *testing.T) {
	// Property: for every request arriving at slot i, segment j is served in
	// [i+1, i+T[j]] — the heuristic "never affects the customer waiting
	// time" (Section 3).
	rng := sim.NewRNG(13)
	s := mustNew(t, Config{Segments: 25})
	for step := 0; step < 4000; step++ {
		arrivals := rng.Poisson(0.7)
		i := s.CurrentSlot()
		for a := 0; a < arrivals; a++ {
			got := admitTraced(s)
			for j := 1; j <= s.N(); j++ {
				if got[j] < i+1 || got[j] > i+j {
					t.Fatalf("slot %d: segment %d served at %d outside [%d, %d]",
						i, j, got[j], i+1, i+j)
				}
			}
		}
		s.AdvanceSlot()
	}
}

func TestNaivePolicyDeadlines(t *testing.T) {
	rng := sim.NewRNG(14)
	s := mustNew(t, Config{Segments: 20, Policy: PolicyNaive})
	for step := 0; step < 2000; step++ {
		i := s.CurrentSlot()
		if rng.Float64() < 0.5 {
			got := admitTraced(s)
			for j := 1; j <= s.N(); j++ {
				if got[j] < i+1 || got[j] > i+j {
					t.Fatalf("naive: segment %d served at %d outside [%d, %d]", j, got[j], i+1, i+j)
				}
			}
		}
		s.AdvanceSlot()
	}
}

func TestStretchedPeriodsRespected(t *testing.T) {
	periods := []int{0, 1, 3, 3, 9, 9}
	s := mustNew(t, Config{Segments: 5, Periods: periods})
	rng := sim.NewRNG(15)
	for step := 0; step < 3000; step++ {
		i := s.CurrentSlot()
		if rng.Float64() < 0.8 {
			got := admitTraced(s)
			for j := 1; j <= 5; j++ {
				if got[j] < i+1 || got[j] > i+periods[j] {
					t.Fatalf("segment %d served at %d outside [%d, %d]", j, got[j], i+1, i+periods[j])
				}
			}
		}
		s.AdvanceSlot()
	}
}

func TestSingleRequestCostsOneInstancePerSegment(t *testing.T) {
	s := mustNew(t, Config{Segments: 99})
	admit(s)
	total := 0
	for slot := 0; slot < 200; slot++ {
		total += s.AdvanceSlot().Load
	}
	if total != 99 {
		t.Fatalf("one isolated request transmitted %d instances, want 99", total)
	}
	if s.Instances() != 99 || s.Requests() != 1 {
		t.Fatalf("counters: %d instances, %d requests", s.Instances(), s.Requests())
	}
}

func TestSameSlotRequestsShareEverything(t *testing.T) {
	s := mustNew(t, Config{Segments: 50})
	if added := admit(s); added != 50 {
		t.Fatalf("first request added %d, want 50", added)
	}
	for r := 0; r < 10; r++ {
		if added := admit(s); added != 0 {
			t.Fatalf("same-slot request added %d new instances, want 0", added)
		}
	}
}

func TestSaturatedLoadNearHarmonicBound(t *testing.T) {
	// With at least one request per slot, DHB transmits segment j roughly
	// once every j slots, so mean load approaches the harmonic number
	// H(n). For n = 99, H(99) ~ 5.17. The heuristic's early placements can
	// cost a little extra; it must stay below the 6 streams of the pagoda
	// comparator (Figure 7's key finding).
	s := mustNew(t, Config{Segments: 99})
	const warmup, horizon = 500, 20000
	var total int
	for slot := 0; slot < horizon; slot++ {
		admit(s)
		rep := s.AdvanceSlot()
		if slot >= warmup {
			total += rep.Load
		}
	}
	mean := float64(total) / float64(horizon-warmup)
	if mean < 4.5 || mean > 6.0 {
		t.Fatalf("saturated mean load = %.3f, want within (4.5, 6.0) around H(99)=5.17", mean)
	}
}

func TestNaivePeaksExplodeHeuristicPeaksDoNot(t *testing.T) {
	// Section 3: without the heuristic, continuous demand piles one
	// transmission of many segments into the same slot (slot 120! would
	// carry all 120). The heuristic flattens those peaks.
	run := func(policy Policy) (maxLoad int) {
		s := mustNew(t, Config{Segments: 120, Policy: policy})
		for slot := 0; slot < 10000; slot++ {
			admit(s)
			if rep := s.AdvanceSlot(); rep.Load > maxLoad {
				maxLoad = rep.Load
			}
		}
		return maxLoad
	}
	naive := run(PolicyNaive)
	heuristic := run(PolicyHeuristic)
	if naive < 2*heuristic {
		t.Fatalf("naive peak %d not clearly above heuristic peak %d", naive, heuristic)
	}
	if heuristic > 12 {
		t.Fatalf("heuristic peak %d too high for n=120 (H(120)=5.3)", heuristic)
	}
}

func TestLowRateSharingBeatsIsolatedCost(t *testing.T) {
	// Overlapping requests must share high-numbered segments: the total
	// instance count for two requests i slots apart (i < n) is strictly
	// less than 2n.
	s := mustNew(t, Config{Segments: 30})
	admit(s)
	for k := 0; k < 10; k++ {
		s.AdvanceSlot()
	}
	admit(s)
	total := 0
	for k := 0; k < 100; k++ {
		total += s.AdvanceSlot().Load
	}
	if total >= 60 {
		t.Fatalf("two overlapping requests cost %d instances, want < 60", total)
	}
	if total < 30 {
		t.Fatalf("two requests cost %d instances, below a single request's 30", total)
	}
}

func TestInstanceConservationProperty(t *testing.T) {
	// Whatever arrival pattern drives the scheduler, every scheduled
	// instance is transmitted exactly once.
	f := func(pattern []uint8) bool {
		s, err := New(Config{Segments: 12})
		if err != nil {
			return false
		}
		var transmitted int64
		for _, p := range pattern {
			for a := 0; a < int(p%3); a++ {
				admit(s)
			}
			transmitted += int64(s.AdvanceSlot().Load)
		}
		// Drain the full scheduling horizon.
		for k := 0; k <= 12; k++ {
			transmitted += int64(s.AdvanceSlot().Load)
		}
		return transmitted == s.Instances()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyDefaultsToHeuristic(t *testing.T) {
	s := mustNew(t, Config{Segments: 5})
	if s.policy != PolicyHeuristic {
		t.Fatalf("default policy = %v, want heuristic", s.policy)
	}
}

func TestPeriodAccessor(t *testing.T) {
	s := mustNew(t, Config{Segments: 4, Periods: []int{0, 1, 3, 3, 7}})
	if s.Period(2) != 3 || s.Period(4) != 7 {
		t.Fatalf("Period(2)=%d Period(4)=%d", s.Period(2), s.Period(4))
	}
}

func TestConfigPeriodsCopied(t *testing.T) {
	periods := []int{0, 1, 2, 3}
	s := mustNew(t, Config{Segments: 3, Periods: periods})
	periods[2] = 99
	if s.Period(2) != 2 {
		t.Fatal("scheduler aliased the caller's period slice")
	}
}

func TestLoadAt(t *testing.T) {
	s := mustNew(t, Config{Segments: 5, StartSlot: 1})
	admit(s)
	if got := s.LoadAt(2); got != 1 {
		t.Fatalf("LoadAt(2) = %d, want 1", got)
	}
	if got := s.LoadAt(1); got != 0 {
		t.Fatalf("LoadAt(1) = %d, want 0 (current slot untouched)", got)
	}
}
