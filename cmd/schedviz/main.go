// Command schedviz prints the segment-to-stream and segment-to-slot diagrams
// of the paper's Figures 1-5.
//
// Usage:
//
//	schedviz -proto fb  -n 7  -slots 4    # Figure 1
//	schedviz -proto npb                   # Figure 2 (canonical fixture)
//	schedviz -proto sb  -n 5  -slots 6    # Figure 3
//	schedviz -proto pagoda -n 99          # our greedy pagoda packing
//	schedviz -proto dhb -n 6              # Figure 4 (one request in slot 1)
//	schedviz -proto dhb -n 6 -second 3    # Figure 5 (second request in slot 3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vodcast/internal/broadcast"
	"vodcast/internal/core"
)

func main() {
	var (
		proto  = flag.String("proto", "fb", "fb, npb, sb, pagoda or dhb")
		n      = flag.Int("n", 7, "segment count")
		slots  = flag.Int("slots", 6, "slots to draw")
		second = flag.Int("second", 0, "for dhb: slot of a second request (0 = none)")
	)
	flag.Parse()
	if err := run(*proto, *n, *slots, *second); err != nil {
		fmt.Fprintln(os.Stderr, "schedviz:", err)
		os.Exit(1)
	}
}

func run(proto string, n, slots, second int) error {
	var (
		m   *broadcast.Mapping
		err error
	)
	switch proto {
	case "fb":
		m, err = broadcast.FastBroadcast(n)
	case "npb":
		m, err = broadcast.NPBFigure2()
	case "sb":
		m, err = broadcast.Skyscraper(n)
	case "pagoda":
		m, err = broadcast.Pagoda(n)
	case "dhb":
		return runDHB(n, second)
	default:
		return fmt.Errorf("unknown protocol %q", proto)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d segments on %d streams\n", strings.ToUpper(proto), m.N(), m.Streams())
	for i, row := range m.Render(slots) {
		fmt.Printf("stream %d: %s\n", i+1, row)
	}
	return nil
}

func runDHB(n, second int) error {
	s, err := core.New(core.Config{Segments: n, TrackSegments: true, StartSlot: 1})
	if err != nil {
		return err
	}
	s.Admit()
	fmt.Printf("DHB: request arriving during slot 1 (n = %d)\n", n)
	last := 1 + n
	rows := make(map[int][]int)
	if second > 0 {
		if second <= s.CurrentSlot() {
			return fmt.Errorf("second request slot %d must be after slot 1", second)
		}
		for s.CurrentSlot() < second {
			rep := s.AdvanceSlot()
			rows[rep.Slot] = rep.Segments
		}
		s.Admit()
		fmt.Printf("second request arriving during slot %d\n", second)
		if second+n > last {
			last = second + n
		}
	}
	for slot := s.CurrentSlot(); slot <= last; slot++ {
		rows[slot] = s.ScheduledAt(slot)
	}
	for slot := 2; slot <= last; slot++ {
		segs := rows[slot]
		labels := make([]string, len(segs))
		for i, seg := range segs {
			labels[i] = fmt.Sprintf("S%d", seg)
		}
		row := strings.Join(labels, " ")
		if row == "" {
			row = "--"
		}
		fmt.Printf("slot %2d: %s\n", slot, row)
	}
	return nil
}
