package server

import (
	"errors"
	"testing"

	"vodcast/internal/core"
	"vodcast/internal/workload"
)

// TestNewSentinelErrors: every validation failure of New is classifiable
// with errors.Is, including per-video scheduler failures surfacing the core
// sentinels through the wrap chain.
func TestNewSentinelErrors(t *testing.T) {
	valid := Config{
		Videos:       []VideoSpec{{Name: "a", Segments: 8, Rate: 1}},
		Arrivals:     workload.Constant(10),
		SlotSeconds:  1,
		HorizonSlots: 10,
	}
	tests := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"empty catalogue", func(c *Config) { c.Videos = nil }, ErrEmptyCatalogue},
		{"nil arrivals", func(c *Config) { c.Arrivals = nil }, ErrNilArrivals},
		{"zero slot", func(c *Config) { c.SlotSeconds = 0 }, ErrBadSlotDuration},
		{"horizon under warmup", func(c *Config) { c.WarmupSlots = 10 }, ErrBadHorizon},
		{"negative capacity", func(c *Config) { c.ChannelCapacity = -1 }, ErrBadCapacity},
		{"deferral without capacity", func(c *Config) { c.DeferRequests = true }, ErrBadDeferral},
		{"zero rate", func(c *Config) { c.Videos = []VideoSpec{{Name: "a", Segments: 8}} }, ErrBadRate},
		{"bad segments", func(c *Config) { c.Videos = []VideoSpec{{Name: "a", Segments: -1, Rate: 1}} }, core.ErrBadSegmentCount},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, tt.want) {
				t.Fatalf("New err = %v, want %v", err, tt.want)
			}
		})
	}
	if _, err := New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
