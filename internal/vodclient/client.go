// Package vodclient is the set-top-box side of the networked DHB system: it
// requests a video from a vodserver, receives the broadcast segment frames,
// verifies every payload byte and every delivery deadline with the STB
// oracle of internal/client, and reports what it observed — locally through
// the returned Result (and optionally an obs.Registry), and back to the
// server as a wire.ClientReport so operators see the customer's side of the
// delivery contract.
package vodclient

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"vodcast/internal/client"
	"vodcast/internal/obs"
	"vodcast/internal/wire"
)

// Result describes one completed fetch.
type Result struct {
	// VideoID and Segments echo the schedule the server granted.
	VideoID  uint32
	Segments int
	// AdmitSlot is the slot the request was admitted in.
	AdmitSlot uint64
	// PayloadBytes counts verified video bytes received.
	PayloadBytes int64
	// SharedFrames counts segment frames that arrived for segments the
	// client already held (broadcast transmissions scheduled for other
	// overlapping customers).
	SharedFrames int
	// MaxBuffered is the peak number of segments held before consumption.
	MaxBuffered int
	// Elapsed is the wall-clock duration of the session.
	Elapsed time.Duration
	// FirstByte is the wall-clock delay from sending the request to the
	// first broadcast payload byte, the client-side view of the server's
	// vod_admit_first_byte_seconds histogram.
	FirstByte time.Duration

	// QoE telemetry, measured in slots against the paper's delivery bound
	// (segment j due by AdmitSlot + Periods[j-from+1]).

	// StartupSlots is the delay from admission to the first needed segment.
	StartupSlots int
	// DeadlineMisses counts segments that were not delivered by their
	// deadline; Rebuffers counts the distinct playback stalls they caused
	// (consecutive miss slots merge into one stall). Both are always zero
	// under StrictDeadlines, which fails the fetch on the first miss.
	DeadlineMisses int
	Rebuffers      int
	// MissingSegments counts needed segments that never arrived at all.
	MissingSegments int
	// MinSlackSlots and MeanSlackSlots summarize slack-to-deadline over the
	// segments that did arrive: how close delivery ran to the bound.
	MinSlackSlots  int
	MeanSlackSlots float64
	// SessionSlots is the broadcast-slot length of the session.
	SessionSlots int
	// TraceID is the server's trace identifier for this session, zero when
	// the session was not sampled (or tracing was declined). The matching
	// spans are visible in the server's /spanz.
	TraceID uint64

	// Dial is the TCP connection establishment latency; PoolWait is the time
	// the session queued for a connection slot before dialing (always zero
	// outside a Pool). Load harnesses fold both into their step digests.
	Dial     time.Duration
	PoolWait time.Duration

	// Periods is the 1-based DHB period vector the server granted (index 0
	// unused) and SlotMillis its slot duration — the schedule parameters an
	// analytic capacity model needs to gate measured results against
	// internal/analysis envelopes.
	Periods    []int
	SlotMillis int
}

// FetchOptions parameterizes a fetch. The zero value of every field is the
// production default: fetch from the beginning, tolerate deadline misses
// (recording them as QoE telemetry), join the server's trace when offered,
// and send a ClientReport at session end.
type FetchOptions struct {
	// VideoID selects the catalogue entry.
	VideoID uint32
	// From resumes playback at this segment (0 and 1 both mean the
	// beginning).
	From uint32
	// Timeout bounds the whole session, dial included. Required.
	Timeout time.Duration
	// NoTrace declines trace propagation: the server will not hand this
	// session trace identifiers and synthesizes no client spans.
	NoTrace bool
	// NoReport opts out of the end-of-session ClientReport.
	NoReport bool
	// StrictDeadlines arms the full STB oracle: the first missed deadline
	// fails the fetch instead of being recorded as QoE telemetry.
	StrictDeadlines bool
	// Registry, when non-nil, receives the session's client_* metric
	// families for local scraping.
	Registry *obs.Registry
}

// FetchWith runs one session against the server at addr as configured by
// opts: it speaks protocol v2, continuing the server's admit trace and
// summarizing playback QoE into a ClientReport, unless opts declines either.
func FetchWith(addr string, opts FetchOptions) (Result, error) {
	if opts.From == 0 {
		opts.From = 1
	}
	return fetch(addr, opts)
}

// checkOptions validates the fields every session entry point shares.
func checkOptions(opts FetchOptions) error {
	if opts.Timeout <= 0 {
		return fmt.Errorf("vodclient: timeout %v must be positive", opts.Timeout)
	}
	if opts.From < 1 {
		return fmt.Errorf("vodclient: resume segment %d must be at least 1", opts.From)
	}
	return nil
}

// fetch dials its own connection and runs one session over it.
func fetch(addr string, opts FetchOptions) (Result, error) {
	if err := checkOptions(opts); err != nil {
		return Result{}, err
	}
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: dial: %w", err)
	}
	return runSession(conn, start, time.Since(start), opts)
}

// runSession speaks one session over an established connection; it owns the
// connection and closes it on return. start anchors the session timeout and
// the first-byte clock (set it before dialing so both cover the dial), dial
// is the recorded connection establishment latency.
func runSession(conn net.Conn, start time.Time, dial time.Duration, opts FetchOptions) (Result, error) {
	defer conn.Close()
	if err := conn.SetDeadline(start.Add(opts.Timeout)); err != nil {
		return Result{}, fmt.Errorf("vodclient: set deadline: %w", err)
	}

	req := wire.Request{VideoID: opts.VideoID, FromSegment: opts.From, Version: wire.ProtoV2}
	if opts.NoReport {
		req.Flags |= wire.FlagNoReport
	}
	if opts.NoTrace {
		req.Flags |= wire.FlagNoTrace
	}
	if err := wire.WriteFrame(conn, req); err != nil {
		return Result{}, fmt.Errorf("vodclient: send request: %w", err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: read schedule: %w", err)
	}
	var info wire.ScheduleInfo
	switch m := msg.(type) {
	case wire.ScheduleInfo:
		info = m
	case wire.ErrorMsg:
		return Result{}, fmt.Errorf("vodclient: server rejected request: %s", m.Text)
	default:
		return Result{}, fmt.Errorf("vodclient: unexpected %T before schedule", msg)
	}
	if info.VideoID != opts.VideoID {
		return Result{}, fmt.Errorf("vodclient: schedule for video %d, requested %d", info.VideoID, opts.VideoID)
	}

	if opts.From > info.Segments {
		return Result{}, fmt.Errorf("vodclient: resume segment %d beyond %d", opts.From, info.Segments)
	}

	// Rebuild the 1-based period vector and arm the STB oracle — even a
	// tolerant session wants the oracle's validation of the schedule.
	periods := make([]int, info.Segments+1)
	for j := uint32(1); j <= info.Segments; j++ {
		periods[j] = int(info.Periods[j-1])
	}
	stb, err := client.NewFrom(int(info.AdmitSlot), periods, int(opts.From))
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: %w", err)
	}
	qoe := newQoETracker(int(info.AdmitSlot), periods, int(opts.From))
	// A report is only owed when both sides speak v2 and nobody opted out.
	sendReport := info.Version >= wire.ProtoV2 && !opts.NoReport

	res := Result{
		VideoID:    info.VideoID,
		Segments:   int(info.Segments),
		AdmitSlot:  info.AdmitSlot,
		TraceID:    info.TraceID,
		Dial:       dial,
		Periods:    periods,
		SlotMillis: int(info.SlotMillis),
	}
	// The session ends when the shifted suffix's last deadline passes.
	lastSlot := int(info.AdmitSlot) + maxPeriod(periods[:int(info.Segments)-int(opts.From)+2])
	var slotSegments []int
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return Result{}, fmt.Errorf("vodclient: read frame: %w", err)
		}
		switch m := msg.(type) {
		case wire.Segment:
			if m.VideoID != opts.VideoID {
				return Result{}, fmt.Errorf("vodclient: frame for video %d on a video-%d subscription", m.VideoID, opts.VideoID)
			}
			if res.FirstByte == 0 {
				res.FirstByte = time.Since(start)
			}
			if m.Segment < 1 || m.Segment > info.Segments {
				return Result{}, fmt.Errorf("vodclient: frame for unknown segment %d", m.Segment)
			}
			want := wire.SegmentPayload(m.VideoID, m.Segment, info.SizeOf(m.Segment))
			if !bytes.Equal(m.Payload, want) {
				return Result{}, fmt.Errorf("vodclient: corrupt payload for segment %d", m.Segment)
			}
			if qoe.seen(int(m.Segment)) {
				res.SharedFrames++
			}
			res.PayloadBytes += int64(len(m.Payload))
			slotSegments = append(slotSegments, int(m.Segment))
		case wire.SlotEnd:
			if opts.StrictDeadlines {
				if err := stb.ObserveSlot(int(m.Slot), slotSegments); err != nil {
					return Result{}, fmt.Errorf("vodclient: %w", err)
				}
			}
			qoe.observeSlot(int(m.Slot), slotSegments)
			slotSegments = slotSegments[:0]
			if int(m.Slot) >= lastSlot {
				qoe.finalize(int(m.Slot))
				if opts.StrictDeadlines && !stb.Complete() {
					return Result{}, fmt.Errorf("vodclient: stream ended with segments missing")
				}
				res.MaxBuffered = qoe.maxBuffered
				res.StartupSlots = qoe.startup
				res.DeadlineMisses = qoe.misses
				res.Rebuffers = qoe.rebuffers
				res.MissingSegments = qoe.needed() - qoe.receivedCount
				res.MinSlackSlots = qoe.minSlack
				res.MeanSlackSlots = qoe.meanSlack()
				res.SessionSlots = qoe.sessionSlots
				res.Elapsed = time.Since(start)
				qoe.publish(opts.Registry, info.VideoID, res.PayloadBytes)
				if sendReport {
					report := qoe.report(info.VideoID, info.TraceID, info.SpanID,
						res.SharedFrames, res.PayloadBytes)
					if err := wire.WriteFrame(conn, report); err != nil {
						return res, fmt.Errorf("vodclient: send report: %w", err)
					}
				}
				return res, nil
			}
		case wire.ErrorMsg:
			return Result{}, fmt.Errorf("vodclient: server error: %s", m.Text)
		default:
			return Result{}, fmt.Errorf("vodclient: unexpected frame %T", msg)
		}
	}
}

func maxPeriod(periods []int) int {
	max := 0
	for _, p := range periods[1:] {
		if p > max {
			max = p
		}
	}
	return max
}
