package server

import (
	"math"
	"testing"

	"vodcast/internal/workload"
)

func catalogue(n int) []VideoSpec {
	specs := make([]VideoSpec, n)
	for i := range specs {
		specs[i] = VideoSpec{Name: string(rune('A' + i)), Segments: 40, Rate: 1}
	}
	return specs
}

func TestNewValidation(t *testing.T) {
	base := Config{
		Videos:       catalogue(2),
		ZipfSkew:     1,
		Arrivals:     workload.Constant(10),
		SlotSeconds:  60,
		HorizonSlots: 100,
	}
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "empty catalogue", mut: func(c *Config) { c.Videos = nil }},
		{name: "nil arrivals", mut: func(c *Config) { c.Arrivals = nil }},
		{name: "zero slot", mut: func(c *Config) { c.SlotSeconds = 0 }},
		{name: "horizon below warmup", mut: func(c *Config) { c.WarmupSlots = 100 }},
		{name: "negative skew", mut: func(c *Config) { c.ZipfSkew = -1 }},
		{name: "zero rate video", mut: func(c *Config) { c.Videos = []VideoSpec{{Name: "x", Segments: 5}} }},
		{name: "zero segments", mut: func(c *Config) { c.Videos = []VideoSpec{{Name: "x", Rate: 1}} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestPopularVideoDominates(t *testing.T) {
	srv, err := New(Config{
		Videos:       catalogue(5),
		ZipfSkew:     1.2,
		Arrivals:     workload.Constant(200),
		SlotSeconds:  60,
		HorizonSlots: 3000,
		WarmupSlots:  200,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.PerVideo[0].Requests <= rep.PerVideo[4].Requests {
		t.Fatalf("most popular video got %d requests, least popular %d",
			rep.PerVideo[0].Requests, rep.PerVideo[4].Requests)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests simulated")
	}
}

func TestAggregateIsSumOfVideos(t *testing.T) {
	srv, err := New(Config{
		Videos:       catalogue(3),
		ZipfSkew:     0.8,
		Arrivals:     workload.Constant(100),
		SlotSeconds:  60,
		HorizonSlots: 2000,
		WarmupSlots:  100,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	sum := 0.0
	for _, v := range rep.PerVideo {
		sum += v.AvgBandwidth
	}
	if math.Abs(sum-rep.AvgBandwidth) > 1e-9 {
		t.Fatalf("per-video bandwidths sum to %v, total reports %v", sum, rep.AvgBandwidth)
	}
	if rep.MaxBandwidth < rep.AvgBandwidth {
		t.Fatal("max below mean")
	}
}

func TestWaitNeverExceedsSlot(t *testing.T) {
	srv, err := New(Config{
		Videos:       catalogue(2),
		ZipfSkew:     1,
		Arrivals:     workload.Constant(300),
		SlotSeconds:  72.7,
		HorizonSlots: 1000,
		WarmupSlots:  50,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.MaxWaitSeconds > 72.7 {
		t.Fatalf("max wait %.2f exceeds the slot duration", rep.MaxWaitSeconds)
	}
	if rep.AvgWaitSeconds < 20 || rep.AvgWaitSeconds > 55 {
		t.Fatalf("avg wait %.2f implausible for uniform arrivals in a 72.7 s slot", rep.AvgWaitSeconds)
	}
}

func TestDayNightLoadFollowsDemand(t *testing.T) {
	// With day/night arrivals the aggregate bandwidth must stay strictly
	// below the saturated ceiling yet above the isolated-request floor,
	// and the run must be deterministic per seed.
	cfg := Config{
		Videos:       catalogue(4),
		ZipfSkew:     1,
		Arrivals:     workload.DayNight(200, 2, 20),
		SlotSeconds:  60,
		HorizonSlots: 5000,
		WarmupSlots:  200,
		Seed:         8,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := a.Run(), b.Run()
	if repA.AvgBandwidth != repB.AvgBandwidth || repA.Requests != repB.Requests {
		t.Fatalf("same seed diverged: %v vs %v requests, %v vs %v bandwidth",
			repA.Requests, repB.Requests, repA.AvgBandwidth, repB.AvgBandwidth)
	}
	if repA.AvgBandwidth <= 0 {
		t.Fatal("no bandwidth recorded")
	}
}

func TestChannelCapacityValidation(t *testing.T) {
	_, err := New(Config{
		Videos:          catalogue(1),
		Arrivals:        workload.Constant(10),
		SlotSeconds:     60,
		HorizonSlots:    100,
		ChannelCapacity: -1,
	})
	if err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestOverflowAccounting(t *testing.T) {
	base := Config{
		Videos:       catalogue(3),
		ZipfSkew:     1,
		Arrivals:     workload.Constant(150),
		SlotSeconds:  60,
		HorizonSlots: 3000,
		WarmupSlots:  200,
		Seed:         21,
	}
	// A generous pool never overflows; a one-stream pool almost always does.
	big := base
	big.ChannelCapacity = 1000
	srvBig, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	repBig := srvBig.Run()
	if repBig.OverflowFraction != 0 || repBig.OverflowExcess != 0 {
		t.Fatalf("1000-channel pool overflowed: %+v", repBig)
	}

	tiny := base
	tiny.ChannelCapacity = 1
	srvTiny, err := New(tiny)
	if err != nil {
		t.Fatal(err)
	}
	repTiny := srvTiny.Run()
	if repTiny.OverflowFraction < 0.9 {
		t.Fatalf("one-channel pool overflow fraction = %.3f, want near 1", repTiny.OverflowFraction)
	}
	if repTiny.OverflowExcess <= 0 {
		t.Fatal("overflow excess not recorded")
	}
	// A pool at the 99th percentile overflows about 1% of the time.
	p99 := base
	p99.ChannelCapacity = repTiny.P99Bandwidth
	srvP99, err := New(p99)
	if err != nil {
		t.Fatal(err)
	}
	repP99 := srvP99.Run()
	if repP99.OverflowFraction > 0.03 {
		t.Fatalf("p99 pool overflow fraction = %.3f, want about 0.01", repP99.OverflowFraction)
	}
}

func TestNoCapacityMeansNoOverflowStats(t *testing.T) {
	srv, err := New(Config{
		Videos:       catalogue(1),
		Arrivals:     workload.Constant(50),
		SlotSeconds:  60,
		HorizonSlots: 500,
		WarmupSlots:  50,
		Seed:         22,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.OverflowFraction != 0 || rep.OverflowExcess != 0 {
		t.Fatal("overflow stats reported without a configured capacity")
	}
	if rep.P99Bandwidth < rep.AvgBandwidth || rep.P99Bandwidth > rep.MaxBandwidth {
		t.Fatalf("p99 %.1f outside [avg %.1f, max %.1f]", rep.P99Bandwidth, rep.AvgBandwidth, rep.MaxBandwidth)
	}
}

func TestDeferralRequiresCapacity(t *testing.T) {
	_, err := New(Config{
		Videos:        catalogue(1),
		Arrivals:      workload.Constant(10),
		SlotSeconds:   60,
		HorizonSlots:  100,
		DeferRequests: true,
	})
	if err == nil {
		t.Fatal("deferral without capacity accepted")
	}
}

func TestDeferralOffMatchesLegacyBehaviour(t *testing.T) {
	base := Config{
		Videos:       catalogue(2),
		ZipfSkew:     1,
		Arrivals:     workload.Constant(80),
		SlotSeconds:  72.7,
		HorizonSlots: 2000,
		WarmupSlots:  100,
		Seed:         31,
	}
	srv, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.DeferredRequests != 0 {
		t.Fatalf("deferred %d requests without admission control", rep.DeferredRequests)
	}
	if rep.MaxWaitSeconds > base.SlotSeconds {
		t.Fatalf("max wait %.1f above one slot without deferral", rep.MaxWaitSeconds)
	}
}

func TestGenerousPoolNeverDefers(t *testing.T) {
	srv, err := New(Config{
		Videos:          catalogue(2),
		ZipfSkew:        1,
		Arrivals:        workload.Constant(80),
		SlotSeconds:     72.7,
		HorizonSlots:    2000,
		WarmupSlots:     100,
		ChannelCapacity: 500,
		DeferRequests:   true,
		Seed:            32,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.DeferredRequests != 0 {
		t.Fatalf("generous pool deferred %d requests", rep.DeferredRequests)
	}
}

func TestTightPoolDegradesWaitsNotCorrectness(t *testing.T) {
	// A pool close to the saturated demand forces deferrals: waits exceed
	// one slot, every admitted customer is still served, and the scheduled
	// load respects the protocol's structure.
	cfg := Config{
		Videos:          catalogue(3),
		ZipfSkew:        1,
		Arrivals:        workload.Constant(250),
		SlotSeconds:     72.7,
		HorizonSlots:    3000,
		WarmupSlots:     100,
		ChannelCapacity: 11, // three videos saturate around 13-14 streams
		DeferRequests:   true,
		Seed:            33,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.DeferredRequests == 0 {
		t.Fatal("tight pool never deferred")
	}
	if rep.MaxWaitSeconds <= cfg.SlotSeconds {
		t.Fatalf("max wait %.1f did not exceed one slot despite deferrals", rep.MaxWaitSeconds)
	}
	if rep.MaxQueue <= 0 {
		t.Fatal("queue length not tracked")
	}
	if rep.Requests == 0 {
		t.Fatal("nothing admitted")
	}
	// Deferral trades wait for bandwidth: the average load must sit at or
	// below the pool plus the one-slot overshoot a single admission can add.
	if rep.AvgBandwidth > cfg.ChannelCapacity+2 {
		t.Fatalf("avg bandwidth %.1f far above the pool %v", rep.AvgBandwidth, cfg.ChannelCapacity)
	}
}

func TestDeferralPreservesArrivalOrder(t *testing.T) {
	// With deferral on, waits grow but remain bounded when capacity is
	// sustainable; a quick sanity run at moderate pressure.
	srv, err := New(Config{
		Videos:          catalogue(2),
		ZipfSkew:        1,
		Arrivals:        workload.Constant(120),
		SlotSeconds:     72.7,
		HorizonSlots:    3000,
		WarmupSlots:     100,
		ChannelCapacity: 12,
		DeferRequests:   true,
		Seed:            34,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := srv.Run()
	if rep.AvgWaitSeconds <= 0 {
		t.Fatal("no waits recorded")
	}
	// Sustainable capacity: the queue cannot have grown without bound.
	if rep.MaxQueue > 200 {
		t.Fatalf("queue exploded to %d under sustainable capacity", rep.MaxQueue)
	}
}
