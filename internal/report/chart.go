package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) sample of a chart series.
type Point struct {
	X float64
	Y float64
}

// Series is one named curve.
type Series struct {
	Name   string
	Points []Point
}

// ChartOptions shape RenderChart's canvas.
type ChartOptions struct {
	// Width and Height are the plot area in characters (defaults 64x20).
	Width  int
	Height int
	// LogX plots a logarithmic x axis, the paper's request-rate scaling.
	LogX bool
}

// RenderChart draws the series as an ASCII scatter/line chart, giving each
// series a marker letter and a legend — enough to see the crossovers of
// Figure 7 in a terminal without leaving the CLI.
func RenderChart(w io.Writer, title string, series []Series, opts ChartOptions) error {
	if len(series) == 0 {
		return fmt.Errorf("report: chart %q has no series", title)
	}
	width, height := opts.Width, opts.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			x := p.X
			if opts.LogX {
				if x <= 0 {
					return fmt.Errorf("report: chart %q: log x axis with x = %v", title, x)
				}
				x = math.Log10(x)
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymax = math.Max(ymax, p.Y)
			total++
		}
	}
	if total == 0 {
		return fmt.Errorf("report: chart %q has no points", title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	col := func(x float64) int {
		if opts.LogX {
			x = math.Log10(x)
		}
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}
	markers := []rune("*+ox#@%&")
	for i, s := range series {
		m := markers[i%len(markers)]
		for _, p := range s.Points {
			grid[row(p.Y)][col(p.X)] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		// Y labels at the top, middle and bottom rows.
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", ymax)
		case height / 2:
			label = fmt.Sprintf("%7.1f ", ymin+(ymax-ymin)/2)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	lo, hi := xmin, xmax
	if opts.LogX {
		lo, hi = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	axis := "x"
	if opts.LogX {
		axis = "x (log)"
	}
	fmt.Fprintf(&b, "%s%-10.4g%s%10.4g  %s\n", strings.Repeat(" ", 9), lo,
		strings.Repeat(" ", maxInt(1, width-22)), hi, axis)
	for i, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[i%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
