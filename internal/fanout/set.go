package fanout

import (
	"sync"
	"sync/atomic"
)

// Set is a copy-on-write subscriber set: the broadcast hot loop reads an
// immutable snapshot slice through one atomic pointer load — no lock, no map
// iteration — while the admin operations (subscribe, unsubscribe, retire)
// build a fresh slice under a small mutex and publish it atomically. The
// type replaces the per-video `mu + map[*subscriber]struct{}` pair the
// fan-out tick used to take once per video per slot: with N subscribers the
// tick's read side is now exactly one atomic load and N pointer pushes, and
// a slow admit or teardown can never stall the clock.
//
// Semantics:
//
//   - Snapshot returns the current element slice. It is immutable — every
//     mutation replaces the whole slice — so holders may iterate it without
//     synchronization for as long as they like; they only see membership as
//     of the load.
//   - Add appends one element (callers add each element at most once; the
//     set does not deduplicate). It fails once the set is closed, which is
//     how the server refuses registrations during shutdown.
//   - Remove deletes the first matching element and reports whether it was
//     present. Exactly one of several racing removers wins, which is what
//     makes teardown single-shot: whoever gets true owns closing the
//     element's delivery primitive.
//   - Close marks the set closed and hands the final membership to the
//     caller (subsequent Snapshots see an empty set).
//
// The publication order gives the server its delivery guarantee: Add stores
// the new snapshot before the subscriber's admission reaches the scheduler,
// so any tick that retires the admit slot — ordered after the admission by
// the station's shard lock — observes the subscriber in its snapshot.
type Set[T comparable] struct {
	mu     sync.Mutex
	snap   atomic.Pointer[[]T]
	closed bool
}

// NewSet returns an empty, open set.
func NewSet[T comparable]() *Set[T] { return &Set[T]{} }

// Snapshot returns the current membership as an immutable slice. Callers
// must not modify it.
func (s *Set[T]) Snapshot() []T {
	p := s.snap.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Len reports the current membership size.
func (s *Set[T]) Len() int { return len(s.Snapshot()) }

// Add appends x to the set. It reports false — and does not add — when the
// set has been closed.
func (s *Set[T]) Add(x T) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	cur := s.Snapshot()
	next := make([]T, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = x
	s.snap.Store(&next)
	return true
}

// Remove deletes the first occurrence of x and reports whether it was
// present. Concurrent removers of the same element race safely: exactly one
// observes true.
func (s *Set[T]) Remove(x T) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.Snapshot()
	for i, e := range cur {
		if e == x {
			next := make([]T, len(cur)-1)
			copy(next, cur[:i])
			copy(next[i:], cur[i+1:])
			s.snap.Store(&next)
			return true
		}
	}
	return false
}

// Close marks the set closed — further Adds fail, Snapshot reads empty —
// and returns the final membership so the caller can finish each element
// exactly once. Elements concurrently won by Remove are not returned.
// Idempotent: a second Close returns nil.
func (s *Set[T]) Close() []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	final := s.Snapshot()
	var empty []T
	s.snap.Store(&empty)
	return final
}
