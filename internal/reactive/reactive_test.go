package reactive

import (
	"math"
	"testing"
)

func tapCfg(rate float64, seed int64) Config {
	return Config{
		RatePerHour:    rate,
		VideoSeconds:   7200,
		HorizonSeconds: 400 * 3600,
		WarmupSeconds:  4 * 3600,
		Seed:           seed,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "zero rate", mut: func(c *Config) { c.RatePerHour = 0 }},
		{name: "zero video", mut: func(c *Config) { c.VideoSeconds = 0 }},
		{name: "horizon before warmup", mut: func(c *Config) { c.HorizonSeconds = c.WarmupSeconds }},
		{name: "negative warmup", mut: func(c *Config) { c.WarmupSeconds = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := tapCfg(10, 1)
			tt.mut(&cfg)
			if _, err := Tapping(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestTappingNearOptimalPatchingBandwidth(t *testing.T) {
	// Threshold patching with the optimal window needs about sqrt(2 lambda
	// D) streams on average. The event-driven simulation must land near
	// that law across the Figure 7 rate range.
	tests := []struct {
		rate float64
		lo   float64
		hi   float64
	}{
		{rate: 1, lo: 1.2, hi: 2.6},     // sqrt(2*2) = 2
		{rate: 10, lo: 4.0, hi: 8.0},    // sqrt(2*20) = 6.3
		{rate: 100, lo: 13.0, hi: 27.0}, // sqrt(2*200) = 20
	}
	for _, tt := range tests {
		res, err := Tapping(tapCfg(tt.rate, 7))
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgBandwidth < tt.lo || res.AvgBandwidth > tt.hi {
			t.Errorf("rate %v: avg bandwidth = %.2f, want within [%v, %v]",
				tt.rate, res.AvgBandwidth, tt.lo, tt.hi)
		}
		if res.AvgBandwidth < MergingLowerBound(tt.rate, 7200) {
			t.Errorf("rate %v: avg bandwidth %.2f below the merging lower bound %.2f",
				tt.rate, res.AvgBandwidth, MergingLowerBound(tt.rate, 7200))
		}
	}
}

func TestTappingBandwidthGrowsWithRate(t *testing.T) {
	prev := 0.0
	for _, rate := range []float64{1, 5, 20, 100} {
		res, err := Tapping(tapCfg(rate, 3))
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgBandwidth <= prev {
			t.Fatalf("bandwidth not increasing: %.2f at rate %v after %.2f", res.AvgBandwidth, rate, prev)
		}
		prev = res.AvgBandwidth
	}
}

func TestTappingServesEveryoneInstantly(t *testing.T) {
	res, err := Tapping(tapCfg(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait != 0 || res.MaxWait != 0 {
		t.Fatalf("tapping waits = (%v, %v), want zero-delay access", res.AvgWait, res.MaxWait)
	}
	if res.Requests == 0 || res.CompleteStreams == 0 || res.PartialStreams == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.CompleteStreams+res.PartialStreams != res.Requests {
		t.Fatalf("streams %d+%d do not cover requests %d",
			res.CompleteStreams, res.PartialStreams, res.Requests)
	}
}

func TestTappingDeterministicPerSeed(t *testing.T) {
	a, err := Tapping(tapCfg(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tapping(tapCfg(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestTappingMostRequestsTapAtHighRates(t *testing.T) {
	res, err := Tapping(tapCfg(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialStreams < 5*res.CompleteStreams {
		t.Fatalf("at 200/h want taps to dominate: %d taps vs %d complete",
			res.PartialStreams, res.CompleteStreams)
	}
}

func TestBatchingBandwidthBoundedByWindow(t *testing.T) {
	cfg := tapCfg(100, 11)
	const window = 600.0
	res, err := Batching(cfg, window)
	if err != nil {
		t.Fatal(err)
	}
	// At 100 req/h every 10-minute batch is almost surely non-empty, so
	// the server runs about D/W = 12 concurrent streams.
	want := cfg.VideoSeconds / window
	if math.Abs(res.AvgBandwidth-want) > 1.0 {
		t.Fatalf("avg bandwidth = %.2f, want about %.1f", res.AvgBandwidth, want)
	}
	if res.MaxWait > window {
		t.Fatalf("max wait %.1f exceeded the batching window %v", res.MaxWait, window)
	}
	if math.Abs(res.AvgWait-window/2) > window/10 {
		t.Fatalf("avg wait = %.1f, want about %v", res.AvgWait, window/2)
	}
}

func TestBatchingWindowValidation(t *testing.T) {
	if _, err := Batching(tapCfg(10, 1), 0); err == nil {
		t.Fatal("zero window should error")
	}
}

func TestBatchingCheaperThanTappingAtHighRates(t *testing.T) {
	cfg := tapCfg(500, 13)
	tap, err := Tapping(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := Batching(cfg, 600)
	if err != nil {
		t.Fatal(err)
	}
	if bat.AvgBandwidth >= tap.AvgBandwidth {
		t.Fatalf("batching (%.1f) should beat zero-delay tapping (%.1f) at 500 req/h",
			bat.AvgBandwidth, tap.AvgBandwidth)
	}
}

func TestSelectiveCatchingBandwidth(t *testing.T) {
	cfg := tapCfg(50, 17)
	const channels = 6
	res, err := SelectiveCatching(cfg, channels)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgBandwidth < channels {
		t.Fatalf("avg bandwidth %.2f below the %d dedicated channels", res.AvgBandwidth, channels)
	}
	// Catch-up streams add at most one concurrent stream per broadcast
	// period on average at this rate.
	if res.AvgBandwidth > channels+3 {
		t.Fatalf("avg bandwidth %.2f implausibly high", res.AvgBandwidth)
	}
	if res.Requests == 0 || res.PartialStreams == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}

func TestSelectiveCatchingChannelValidation(t *testing.T) {
	if _, err := SelectiveCatching(tapCfg(10, 1), 0); err == nil {
		t.Fatal("zero channels should error")
	}
}

func TestSelectiveCatchingSharesCatchUps(t *testing.T) {
	// At very high rates many requests fall into the same broadcast gap
	// and share one catch-up stream.
	res, err := SelectiveCatching(tapCfg(1000, 19), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialStreams >= res.Requests {
		t.Fatalf("no catch-up sharing: %d streams for %d requests", res.PartialStreams, res.Requests)
	}
}

func TestMergingLowerBound(t *testing.T) {
	if got := MergingLowerBound(0, 7200); got != 0 {
		t.Fatalf("bound at rate 0 = %v, want 0", got)
	}
	// ln(1 + 2) for 1 request/hour on a 2-hour video.
	want := math.Log(3)
	if got := MergingLowerBound(1, 7200); math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	if MergingLowerBound(100, 7200) <= MergingLowerBound(10, 7200) {
		t.Fatal("bound must grow with the request rate")
	}
}
