package experiments

import (
	"fmt"

	"vodcast/internal/server"
	"vodcast/internal/workload"
)

// CapacityRow describes how one channel-pool size behaves under admission
// control: the bandwidth the pool actually carries and the waiting times
// customers pay for deferral.
type CapacityRow struct {
	Capacity       float64
	AvgBandwidth   float64
	AvgWaitSeconds float64
	MaxWaitSeconds float64
	DeferredShare  float64
	MaxQueue       int
}

// CapacityConfig parameterizes the provisioning study.
type CapacityConfig struct {
	// Videos is the catalogue size; every video uses Segments segments.
	Videos   int
	Segments int
	// RatePerHour is the aggregate request rate.
	RatePerHour float64
	// VideoSeconds is the video duration D.
	VideoSeconds float64
	// HorizonSlots / WarmupSlots size the run.
	HorizonSlots int
	WarmupSlots  int
	Seed         int64
}

// DefaultCapacityConfig is a three-video catalogue at 250 requests/hour,
// whose unconstrained demand saturates around 13-14 streams.
func DefaultCapacityConfig() CapacityConfig {
	return CapacityConfig{
		Videos:       3,
		Segments:     99,
		RatePerHour:  250,
		VideoSeconds: 7200,
		HorizonSlots: 4000,
		WarmupSlots:  200,
		Seed:         3,
	}
}

// Capacity sweeps channel-pool sizes with deferral admission control,
// producing the provisioning curve: a generous pool serves everyone within
// one slot; shrinking it trades bandwidth for growing waits.
func Capacity(cfg CapacityConfig, pools []float64) ([]CapacityRow, error) {
	if cfg.Videos <= 0 || cfg.Segments <= 0 {
		return nil, fmt.Errorf("experiments: capacity study needs positive videos (%d) and segments (%d)",
			cfg.Videos, cfg.Segments)
	}
	if cfg.RatePerHour <= 0 || cfg.VideoSeconds <= 0 {
		return nil, fmt.Errorf("experiments: capacity study needs positive rate and duration")
	}
	if len(pools) == 0 {
		return nil, fmt.Errorf("experiments: empty pool sweep")
	}
	videos := make([]server.VideoSpec, cfg.Videos)
	for i := range videos {
		videos[i] = server.VideoSpec{
			Name:     fmt.Sprintf("video-%d", i+1),
			Segments: cfg.Segments,
			Rate:     1,
		}
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]CapacityRow, 0, len(pools))
	for _, pool := range pools {
		if pool <= 0 {
			return nil, fmt.Errorf("experiments: pool size %v must be positive", pool)
		}
		srv, err := server.New(server.Config{
			Videos:          videos,
			ZipfSkew:        1,
			Arrivals:        workload.Constant(cfg.RatePerHour),
			SlotSeconds:     d,
			HorizonSlots:    cfg.HorizonSlots,
			WarmupSlots:     cfg.WarmupSlots,
			ChannelCapacity: pool,
			DeferRequests:   true,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		rep := srv.Run()
		row := CapacityRow{
			Capacity:       pool,
			AvgBandwidth:   rep.AvgBandwidth,
			AvgWaitSeconds: rep.AvgWaitSeconds,
			MaxWaitSeconds: rep.MaxWaitSeconds,
			MaxQueue:       rep.MaxQueue,
		}
		if rep.Requests+rep.DeferredRequests > 0 {
			row.DeferredShare = float64(rep.DeferredRequests) / float64(rep.Requests)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
