// Package client models the customer's set-top box (STB): it replays the
// transmissions of a slotted broadcasting protocol and verifies, segment by
// segment, that everything a customer needs arrives before its deadline.
// Integration tests use it as the correctness oracle for the schedulers, and
// it reports the buffer occupancy Section 2's STB-sizing discussion cares
// about.
package client

import (
	"fmt"

	"vodcast/internal/video"
)

// STB follows one customer's download. The customer requested the video
// during arrivalSlot; segment j must be fully received by the end of slot
// arrivalSlot + T[j] and is consumed during the following slot.
type STB struct {
	arrival  int
	from     int
	periods  []int
	received []bool
	pending  int
	// buffered tracks segments received but not yet consumed.
	buffered    int
	maxBuffered int
	lastSlot    int
}

// New returns an STB for a request that arrived during arrivalSlot, for a
// video whose 1-based maximum-period vector is periods (as in core.Config).
func New(arrivalSlot int, periods []int) (*STB, error) {
	return NewFrom(arrivalSlot, periods, 1)
}

// NewFrom returns an STB for an interactive customer resuming playback at
// segment from: it only expects segments from..n, and segment j's deadline
// shifts to arrivalSlot + periods[j-from+1] because the customer consumes
// the suffix as if it were the whole video.
func NewFrom(arrivalSlot int, periods []int, from int) (*STB, error) {
	n := len(periods) - 1
	if n < 1 {
		return nil, fmt.Errorf("client: empty period vector")
	}
	if err := video.ValidatePeriods(periods, n); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if arrivalSlot < 0 {
		return nil, fmt.Errorf("client: arrival slot %d must be non-negative", arrivalSlot)
	}
	if from < 1 || from > n {
		return nil, fmt.Errorf("client: resume segment %d outside 1..%d", from, n)
	}
	own := make([]int, len(periods))
	copy(own, periods)
	received := make([]bool, n+1)
	for j := 1; j < from; j++ {
		received[j] = true // already watched before the pause
	}
	return &STB{
		arrival:  arrivalSlot,
		from:     from,
		periods:  own,
		received: received,
		pending:  n - from + 1,
		lastSlot: arrivalSlot,
	}, nil
}

// N reports the video's segment count.
func (c *STB) N() int { return len(c.periods) - 1 }

// Deadline reports the last slot in which segment j may arrive; it is only
// meaningful for segments the customer still needs (j >= the resume point).
func (c *STB) Deadline(j int) int {
	if j < c.from {
		return -1 // already held; no deadline
	}
	return c.arrival + c.periods[j-c.from+1]
}

// Received reports whether segment j has arrived.
func (c *STB) Received(j int) bool { return c.received[j] }

// Complete reports whether every segment has arrived.
func (c *STB) Complete() bool { return c.pending == 0 }

// MaxBuffered reports the largest number of segments the STB held before
// consuming them.
func (c *STB) MaxBuffered() int { return c.maxBuffered }

// ObserveSlot ingests the transmissions of one slot and then checks the
// deadlines that expire with it. Slots must be fed in increasing order,
// starting no earlier than the arrival slot; segments the customer already
// holds are ignored (the STB simply does not tune in again).
func (c *STB) ObserveSlot(slot int, segments []int) error {
	if slot < c.lastSlot {
		return fmt.Errorf("client: slot %d fed after slot %d", slot, c.lastSlot)
	}
	c.lastSlot = slot
	for _, j := range segments {
		if j < 1 || j > c.N() {
			return fmt.Errorf("client: transmission of unknown segment %d", j)
		}
		if c.received[j] {
			continue
		}
		if slot <= c.arrival {
			// The customer cannot download before the slot after arrival.
			continue
		}
		c.received[j] = true
		c.pending--
		c.buffered++
		if c.buffered > c.maxBuffered {
			c.maxBuffered = c.buffered
		}
	}
	// Deadlines expiring at the end of this slot.
	for j := 1; j <= c.N(); j++ {
		if c.Deadline(j) == slot {
			if !c.received[j] {
				return fmt.Errorf("client: segment %d missed its deadline slot %d (arrival %d, T=%d)",
					j, slot, c.arrival, c.periods[j])
			}
			// Consumed during the next slot; it leaves the buffer now.
			c.buffered--
		}
	}
	return nil
}
