package vodserver

import (
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vodcast/internal/vodclient"
	"vodcast/internal/wire"
)

// TestParallelTickChurn is the -race stress for the parallel broadcast
// tick: with four fan-out workers walking the catalogue, three subscriber
// populations churn concurrently — full fetches that end with a clean
// lastSlot retirement, clients that disconnect right after admission, and
// slow subscribers on a heavy video that stop reading and must be cut
// loose by a ring-full drop racing the tick. The assertions: every admit
// is counted exactly once, at least one slow subscriber is dropped, the
// subscriber set drains to zero, Stats() agrees with /metricsz, no frame
// ref-count panic fires, and no goroutine outlives the server.
func TestParallelTickChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := Start(Config{
		Addr: "127.0.0.1:0",
		Videos: []VideoConfig{
			// Video 1 is the heavy channel: enough bytes per slot to wedge a
			// non-reading subscriber's vectored write within a few ticks.
			{ID: 1, Segments: 200, SegmentBytes: 32 << 10},
			{ID: 2, Segments: 8, SegmentBytes: 512},
			{ID: 3, Segments: 8, SegmentBytes: 512},
			{ID: 4, Segments: 8, SegmentBytes: 512},
			{ID: 5, Segments: 8, SegmentBytes: 512},
		},
		SlotDuration:  2 * time.Millisecond,
		FanoutWorkers: 4,
		StatsAddr:     "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.Now().Add(30 * time.Second)
	var wg sync.WaitGroup
	errc := make(chan error, 16)

	// Class 1: six full fetches across the small videos — admissions racing
	// the tick, clean lastSlot retirements, session reports.
	const fetchers = 6
	for c := 0; c < fetchers; c++ {
		wg.Add(1)
		go func(video uint32) {
			defer wg.Done()
			res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{
				VideoID: video, Timeout: 25 * time.Second,
			})
			if err != nil {
				errc <- fmt.Errorf("fetch video %d: %w", video, err)
				return
			}
			if res.Segments != 8 {
				errc <- fmt.Errorf("fetch video %d: %d segments, want 8", video, res.Segments)
			}
		}(uint32(2 + c%4))
	}

	// Class 2: four clients that disconnect the moment they are admitted —
	// the abnormal-teardown path racing the tick's snapshot push.
	const quitters = 4
	for c := 0; c < quitters; c++ {
		wg.Add(1)
		go func(video uint32) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			if err := wire.WriteFrame(conn, wire.Request{VideoID: video, FromSegment: 1, Version: wire.ProtoV2}); err != nil {
				errc <- err
				return
			}
			if _, err := wire.ReadFrame(conn); err != nil {
				errc <- err
			}
			// Admitted; the deferred close races the next slot's fan-out.
		}(uint32(2 + c%4))
	}

	// Class 3: two slow subscribers on the heavy video — admitted, then
	// never read again, so TCP backpressure wedges their drain goroutines
	// and the parallel tick must retire them with a ring-full Drop.
	const slow = 2
	slowConns := make([]net.Conn, 0, slow)
	for c := 0; c < slow; c++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(25 * time.Second))
		if err := wire.WriteFrame(conn, wire.Request{VideoID: 1, FromSegment: 1, Version: wire.ProtoV2}); err != nil {
			t.Fatal(err)
		}
		if _, err := wire.ReadFrame(conn); err != nil {
			t.Fatal(err)
		}
		slowConns = append(slowConns, conn)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The slow subscribers must be dropped by the tick, not by anything the
	// test does: poll until the fan-out cuts them loose.
	for s.Stats().Dropped < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no slow subscriber dropped: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, conn := range slowConns {
		conn.Close()
	}
	for s.Stats().ActiveSubscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers never drained: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := s.Stats()
	if want := int64(fetchers + quitters + slow); st.Requests != want {
		t.Fatalf("requests = %d, want exactly %d (one per admit)", st.Requests, want)
	}
	if st.Dropped < 1 || st.Dropped > slow {
		t.Fatalf("dropped = %d, want 1..%d (only slow subscribers drop)", st.Dropped, slow)
	}

	// The same accounting must surface through the exposition endpoint —
	// the per-worker tallies merge into the registry counters too. The drop
	// counter is reason-labelled, so its scrape sums every child.
	_, body := get(t, s, "/metricsz")
	scrape := func(name string) int64 {
		var total int64
		found := false
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
				continue
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad exposition line %q: %v", line, err)
			}
			total += int64(v)
			found = true
		}
		if !found {
			t.Fatalf("/metricsz missing %s", name)
		}
		return total
	}
	if got := scrape("vod_requests_total"); got != st.Requests {
		t.Fatalf("Stats().Requests = %d but /metricsz reports %d", st.Requests, got)
	}
	if got := scrape("vod_dropped_subscribers_total"); got != st.Dropped {
		t.Fatalf("Stats().Dropped = %d but /metricsz reports %d", st.Dropped, got)
	}

	// Close twice: worker pool, station clock and every ring wind down once.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
