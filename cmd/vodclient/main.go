// Command vodclient is the set-top-box side of the networked DHB system: it
// requests a video from a running vodserver, verifies every byte and every
// delivery deadline, and prints the session summary.
//
// Usage:
//
//	vodclient -addr 127.0.0.1:4800 -video 1
//	vodclient -addr 127.0.0.1:4800 -video 1 -count 5   # five customers
//	vodclient -addr 127.0.0.1:4800 -video 1 -strict    # hard-fail on any missed deadline
//
// By default the client tolerates missed deadlines (recording them as QoE),
// joins the server's admit trace, and reports its session telemetry back at
// the end; -strict, -no-trace and -no-report flip each behaviour.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"vodcast/internal/vodclient"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4800", "server address")
		video    = flag.Uint("video", 1, "video id to request")
		count    = flag.Int("count", 1, "number of concurrent customers to simulate")
		from     = flag.Uint("from", 1, "resume playback at this segment (1 = the beginning)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "session timeout")
		noReport = flag.Bool("no-report", false, "opt out of sending the end-of-session QoE report")
		noTrace  = flag.Bool("no-trace", false, "opt out of joining the server's admit trace")
		strict   = flag.Bool("strict", false, "fail the session on the first missed delivery deadline (instead of recording it as QoE)")
	)
	flag.Parse()
	opts := vodclient.FetchOptions{
		VideoID: uint32(*video), From: uint32(*from), Timeout: *timeout,
		NoReport: *noReport, NoTrace: *noTrace, StrictDeadlines: *strict,
	}
	if err := run(*addr, opts, *count); err != nil {
		fmt.Fprintln(os.Stderr, "vodclient:", err)
		os.Exit(1)
	}
}

func run(addr string, opts vodclient.FetchOptions, count int) error {
	if count <= 0 {
		return fmt.Errorf("count %d must be positive", count)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		failure error
	)
	for c := 0; c < count; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res, err := vodclient.FetchWith(addr, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fmt.Printf("customer %d: FAILED: %v\n", id, err)
				if failure == nil {
					failure = err
				}
				return
			}
			fmt.Printf("customer %d: video %d complete — %d segments, %.1f KB verified, "+
				"%d shared frames, peak buffer %d segments, first byte %.2fs, %.2fs\n",
				id, res.VideoID, res.Segments, float64(res.PayloadBytes)/1e3,
				res.SharedFrames, res.MaxBuffered, res.FirstByte.Seconds(), res.Elapsed.Seconds())
			fmt.Printf("customer %d: QoE — startup %d slots, min slack %d, mean slack %.1f, "+
				"%d misses, %d rebuffers, %d missing, trace %#x\n",
				id, res.StartupSlots, res.MinSlackSlots, res.MeanSlackSlots,
				res.DeadlineMisses, res.Rebuffers, res.MissingSegments, res.TraceID)
		}(c)
	}
	wg.Wait()
	return failure
}
