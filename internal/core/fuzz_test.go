package core

import (
	"testing"

	"vodcast/internal/video"
)

// FuzzSchedulerInvariants drives the scheduler with an arbitrary byte-coded
// command stream and checks every protocol invariant on every step: no
// panics, deadlines always met, conservation of instances.
//
// Command encoding (one byte each):
//
//	0-1: advance one slot
//	2-4: admit an ordinary request
//	5-7: admit a resume at a segment derived from the byte
func FuzzSchedulerInvariants(f *testing.F) {
	f.Add([]byte{2, 0, 2, 2, 0, 5, 0, 0}, uint8(12), uint8(0))
	f.Add([]byte{3, 3, 3, 3}, uint8(30), uint8(2))
	f.Add([]byte{0, 0, 0}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, cmds []byte, segByte, capByte uint8) {
		n := 1 + int(segByte)%40
		cap := int(capByte) % 4 // 0 = unlimited
		s, err := New(Config{Segments: n, MaxClientStreams: cap})
		if err != nil {
			t.Fatal(err)
		}
		if len(cmds) > 400 {
			cmds = cmds[:400]
		}
		var transmitted int64
		for idx, c := range cmds {
			switch c % 8 {
			case 0, 1:
				transmitted += int64(s.AdvanceSlot().Load)
			case 2, 3, 4:
				i := s.CurrentSlot()
				got := s.AdmitTraced()
				for j := 1; j <= n; j++ {
					if got[j] < i+1 || got[j] > i+j {
						t.Fatalf("cmd %d: segment %d served at %d outside [%d, %d]",
							idx, j, got[j], i+1, i+j)
					}
				}
			default:
				from := 1 + int(c)%n
				i := s.CurrentSlot()
				got, err := s.AdmitFromTraced(from)
				if err != nil {
					t.Fatalf("cmd %d: %v", idx, err)
				}
				for j := from; j <= n; j++ {
					deadline := i + (j - from + 1)
					if got[j] < i+1 || got[j] > deadline {
						t.Fatalf("cmd %d: resume segment %d at %d outside [%d, %d]",
							idx, j, got[j], i+1, deadline)
					}
				}
			}
		}
		// Drain and check conservation.
		for k := 0; k <= n; k++ {
			transmitted += int64(s.AdvanceSlot().Load)
		}
		if transmitted != s.Instances() {
			t.Fatalf("transmitted %d, scheduled %d", transmitted, s.Instances())
		}
	})
}

// FuzzPeriodVectors feeds arbitrary (sanitized) period vectors through the
// validator and scheduler: any vector the validator accepts must run without
// violating its own deadlines.
func FuzzPeriodVectors(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{1, 3, 3, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 32 {
			return
		}
		n := len(raw)
		periods := make([]int, n+1)
		for i, b := range raw {
			periods[i+1] = int(b)
		}
		if err := video.ValidatePeriods(periods, n); err != nil {
			return // correctly rejected
		}
		s, err := New(Config{Segments: n, Periods: periods})
		if err != nil {
			t.Fatalf("validated periods rejected by the scheduler: %v", err)
		}
		for step := 0; step < 50; step++ {
			i := s.CurrentSlot()
			got := s.AdmitTraced()
			for j := 1; j <= n; j++ {
				if got[j] < i+1 || got[j] > i+periods[j] {
					t.Fatalf("segment %d at %d outside [%d, %d]", j, got[j], i+1, i+periods[j])
				}
			}
			s.AdvanceSlot()
		}
	})
}
