// Command vodserver runs the networked DHB video server: it admits customer
// requests over TCP, schedules segment transmissions with the DHB protocol
// in real time and broadcasts deterministic segment payloads to every
// subscriber.
//
// Usage:
//
//	vodserver -addr 127.0.0.1:4800 -videos 3 -segments 99 -slot-ms 500
//
// then point cmd/vodclient at it. The server prints its statistics once a
// second and exits cleanly on interrupt.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vodcast/internal/vodserver"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:4800", "TCP listen address")
		videos        = flag.Int("videos", 1, "number of videos in the catalogue (ids 1..n)")
		segments      = flag.Int("segments", 99, "segments per video")
		slotMillis    = flag.Int("slot-ms", 500, "slot duration in milliseconds")
		segmentBytes  = flag.Int("segment-bytes", 4096, "payload bytes per segment")
		shards        = flag.Int("shards", 0, "station worker shards (0 = one per CPU, capped at the catalogue size)")
		fanoutWorkers = flag.Int("fanout-workers", 0, "parallel broadcast tick workers over contiguous catalogue spans (0 = one per CPU capped at the catalogue size, 1 = serial tick)")
		statsAddr     = flag.String("stats-addr", "", "optional HTTP monitoring address serving /statsz, /statusz, /healthz, /metricsz, /tracez, /spanz and /debug/pprof")
		tracePath     = flag.String("trace", "", "optional JSONL file capturing every scheduler event")
		spanPath      = flag.String("span-trace", "", "optional JSONL file capturing sampled admission pipeline spans")
		spanSample    = flag.Int("span-sample", 0, "keep 1 in N admission span trees (0 = default, 1 = everything)")
		sloMillis     = flag.Float64("slo-ms", 0, "admit-to-first-byte SLO threshold in milliseconds (0 = two slot durations)")
		sloObjective  = flag.Float64("slo-objective", 0, "fraction of admissions that must meet the SLO threshold (0 = 0.99)")
		alertInterval = flag.Duration("alert-interval", 0, "alert rule evaluation interval (0 = 1s)")
		alertFor      = flag.Duration("alert-for", 0, "how long a breach must hold before a rule fires (0 = fire immediately)")
		missThreshold = flag.Float64("miss-threshold", 0, "windowed mean deadline misses per client report that fires the miss alert (0 = 0.5)")
		reportStale   = flag.Duration("report-stale", 0, "fire a staleness alert when no client report arrives for this long (0 = disabled)")
		fanoutMode    = flag.String("fanout", "zerocopy", "broadcast data plane: zerocopy (shared ref-counted frames over write rings) or reference (per-subscriber copies over channels)")
		historyEvery  = flag.Duration("history-interval", 0, "metric history scrape interval (0 = 1s)")
		noHistory     = flag.Bool("no-history", false, "disable the in-process metric history (and /queryz)")
		historyBytes  = flag.Int("history-max-bytes", 0, "metric history memory cap in bytes (0 = 8 MiB)")
		flightDir     = flag.String("flight-dir", "", "directory for flight-recorder diagnostic bundles (empty = disabled)")
		flightCool    = flag.Duration("flight-cooldown", 0, "minimum gap between alert-triggered bundles (0 = 5m)")
		flightKeep    = flag.Int("flight-keep", 0, "diagnostic bundles retained before pruning the oldest (0 = 8)")
		noConntrack   = flag.Bool("no-conntrack", false, "disable per-subscriber transport telemetry (and /connz)")
		connEvery     = flag.Duration("conntrack-interval", 0, "transport telemetry sampling interval (0 = 1s)")
		connStalled   = flag.Float64("conn-stalled-ratio", 0, "fraction of tracked connections classified stalled that fires the stall alert (0 = 0.5)")
	)
	flag.Parse()
	opts := serveOpts{
		addr: *addr, statsAddr: *statsAddr, tracePath: *tracePath, spanPath: *spanPath,
		videos: *videos, segments: *segments, slotMillis: *slotMillis,
		segmentBytes: *segmentBytes, shards: *shards, fanoutWorkers: *fanoutWorkers, spanSample: *spanSample,
		sloMillis: *sloMillis, sloObjective: *sloObjective,
		alertInterval: *alertInterval, alertFor: *alertFor,
		missThreshold: *missThreshold, reportStale: *reportStale,
		fanoutMode:   *fanoutMode,
		historyEvery: *historyEvery, noHistory: *noHistory, historyBytes: *historyBytes,
		flightDir: *flightDir, flightCool: *flightCool, flightKeep: *flightKeep,
		noConntrack: *noConntrack, connEvery: *connEvery, connStalled: *connStalled,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "vodserver:", err)
		os.Exit(1)
	}
}

// serveOpts carries the parsed flag set.
type serveOpts struct {
	addr, statsAddr, tracePath, spanPath       string
	videos, segments, slotMillis, segmentBytes int
	shards, fanoutWorkers, spanSample          int
	sloMillis, sloObjective                    float64
	alertInterval, alertFor, reportStale       time.Duration
	missThreshold                              float64
	fanoutMode                                 string
	historyEvery                               time.Duration
	noHistory                                  bool
	historyBytes                               int
	flightDir                                  string
	flightCool                                 time.Duration
	flightKeep                                 int
	noConntrack                                bool
	connEvery                                  time.Duration
	connStalled                                float64
}

func run(o serveOpts) error {
	if o.videos <= 0 {
		return fmt.Errorf("video count %d must be positive", o.videos)
	}
	if o.fanoutMode != "zerocopy" && o.fanoutMode != "reference" {
		return fmt.Errorf("fanout mode %q must be zerocopy or reference", o.fanoutMode)
	}
	catalogue := make([]vodserver.VideoConfig, o.videos)
	for i := range catalogue {
		catalogue[i] = vodserver.VideoConfig{
			ID:           uint32(i + 1),
			Segments:     o.segments,
			SegmentBytes: o.segmentBytes,
		}
	}
	openJSONL := func(path string) (*os.File, error) {
		if path == "" {
			return nil, nil
		}
		return os.Create(path)
	}
	traceFile, err := openJSONL(o.tracePath)
	if err != nil {
		return fmt.Errorf("trace file: %w", err)
	}
	if traceFile != nil {
		defer traceFile.Close()
	}
	spanFile, err := openJSONL(o.spanPath)
	if err != nil {
		return fmt.Errorf("span trace file: %w", err)
	}
	if spanFile != nil {
		defer spanFile.Close()
	}
	cfg := vodserver.Config{
		Addr:              o.addr,
		Videos:            catalogue,
		SlotDuration:      time.Duration(o.slotMillis) * time.Millisecond,
		Shards:            o.shards,
		FanoutWorkers:     o.fanoutWorkers,
		StatsAddr:         o.statsAddr,
		SpanSampleEvery:   o.spanSample,
		SLOTargetSeconds:  o.sloMillis / 1000,
		SLOObjective:      o.sloObjective,
		AlertInterval:     o.alertInterval,
		AlertFor:          o.alertFor,
		MissRateThreshold: o.missThreshold,
		ReportStaleAfter:  o.reportStale,
		FanoutReference:   o.fanoutMode == "reference",
		HistoryInterval:   o.historyEvery,
		HistoryDisabled:   o.noHistory,
		HistoryMaxBytes:   o.historyBytes,
		FlightDir:         o.flightDir,
		FlightCooldown:    o.flightCool,
		FlightKeep:        o.flightKeep,
		ConntrackDisabled: o.noConntrack,
		ConntrackInterval: o.connEvery,
		ConnStalledRatio:  o.connStalled,
	}
	if traceFile != nil {
		cfg.TraceWriter = traceFile
	}
	if spanFile != nil {
		cfg.SpanWriter = spanFile
	}
	srv, err := vodserver.Start(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("vodserver listening on %s (%d videos, %d segments, %d ms slots, %d shards, %s fan-out)\n",
		srv.Addr(), o.videos, o.segments, o.slotMillis, srv.Station().Shards(), o.fanoutMode)
	if srv.StatsAddr() != "" {
		fmt.Printf("introspection on http://%s/{statsz,statusz,healthz,metricsz,tracez,spanz,alertz,queryz,connz,debug/pprof}\n", srv.StatsAddr())
		fmt.Printf("live dashboard: go run ./cmd/vodtop -addr %s\n", srv.StatsAddr())
	}
	if o.flightDir != "" {
		fmt.Printf("flight recorder writing diagnostic bundles to %s (SIGQUIT or GET /debug/flightrecord forces one)\n", o.flightDir)
	}
	if o.tracePath != "" {
		fmt.Printf("tracing scheduler events to %s\n", o.tracePath)
	}
	if o.spanPath != "" {
		fmt.Printf("tracing pipeline spans to %s\n", o.spanPath)
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	// SIGQUIT is the operator's "dump everything now": capture a diagnostic
	// bundle instead of dying with a stack dump. Go's runtime handler is
	// replaced for the process; interrupt still exits cleanly.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-interrupt:
			fmt.Println("\nshutting down")
			return nil
		case <-quit:
			if dir, err := srv.FlightRecord("sigquit"); err != nil {
				fmt.Fprintln(os.Stderr, "flight record:", err)
			} else {
				fmt.Println("flight record:", dir)
			}
		case <-ticker.C:
			st := srv.Stats()
			fmt.Printf("requests=%d instances=%d broadcastMB=%.1f subscribers=%d dropped=%d\n",
				st.Requests, st.Instances, float64(st.BroadcastBytes)/1e6,
				st.ActiveSubscribers, st.Dropped)
		}
	}
}
