package experiments

import "testing"

func extCfg() Config {
	cfg := QuickConfig()
	cfg.Rates = []float64{2, 20, 200}
	return cfg
}

func TestClientCapShape(t *testing.T) {
	rows, err := ClientCap(extCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Tighter client bandwidth costs the server more; the gap shrinks
		// as demand saturates (everything transmits at minimum frequency
		// anyway).
		if !(r.Cap1 >= r.Cap2-0.05 && r.Cap2 >= r.Cap3-0.05 && r.Cap3 >= r.Unlimited-0.05) {
			t.Errorf("rate %v: bandwidth not monotone in cap: 1=%.2f 2=%.2f 3=%.2f inf=%.2f",
				r.RatePerHour, r.Cap1, r.Cap2, r.Cap3, r.Unlimited)
		}
	}
	// The Section 5 conjecture: a cap of three is nearly free.
	last := rows[len(rows)-1]
	if last.Cap3 > last.Unlimited*1.2 {
		t.Errorf("cap 3 (%.2f) more than 20%% above unlimited (%.2f) at %v/h",
			last.Cap3, last.Unlimited, last.RatePerHour)
	}
	// But a cap of one must visibly hurt at low rates, where sharing is
	// opportunistic.
	first := rows[0]
	if first.Cap1 <= first.Unlimited {
		t.Errorf("cap 1 (%.2f) should exceed unlimited (%.2f) at %v/h",
			first.Cap1, first.Unlimited, first.RatePerHour)
	}
}

func TestClientCapValidation(t *testing.T) {
	cfg := extCfg()
	cfg.Segments = 0
	if _, err := ClientCap(cfg); err == nil {
		t.Fatal("want error")
	}
}

func TestReactiveZooShape(t *testing.T) {
	rows, err := ReactiveZoo(extCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Everything sits above the information-theoretic merging bound.
		for name, v := range map[string]float64{
			"tapping": r.Tapping, "hmsm": r.HMSM, "piggyback": r.Piggyback,
		} {
			if v < r.MergingBound {
				t.Errorf("rate %v: %s (%.2f) below the merging bound (%.2f)",
					r.RatePerHour, name, v, r.MergingBound)
			}
		}
		// Hierarchical merging dominates threshold patching, which
		// dominates rate-alteration piggybacking.
		if !(r.HMSM <= r.Tapping && r.Tapping <= r.Piggyback) {
			t.Errorf("rate %v: ordering hmsm (%.2f) <= tapping (%.2f) <= piggyback (%.2f) violated",
				r.RatePerHour, r.HMSM, r.Tapping, r.Piggyback)
		}
	}
	// At 200/h the fixed-cost hybrids win over pure reactive approaches.
	last := rows[len(rows)-1]
	if last.Catching > last.Tapping {
		t.Errorf("selective catching (%.2f) above tapping (%.2f) at %v/h",
			last.Catching, last.Tapping, last.RatePerHour)
	}
	if last.Batching > last.Tapping {
		t.Errorf("batching (%.2f) above tapping (%.2f) at %v/h",
			last.Batching, last.Tapping, last.RatePerHour)
	}
}

func TestReactiveZooValidation(t *testing.T) {
	cfg := extCfg()
	cfg.Rates = nil
	if _, err := ReactiveZoo(cfg); err == nil {
		t.Fatal("want error")
	}
}

func TestDSBComparisonShape(t *testing.T) {
	rows, err := DSBComparison(extCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The related-work claim: DSB needs more server bandwidth than UD
		// (the skyscraper mapping packs fewer segments per stream), and
		// DHB beats both.
		if r.DSB <= r.UD {
			t.Errorf("rate %v: DSB (%.2f) not above UD (%.2f)", r.RatePerHour, r.DSB, r.UD)
		}
		if r.DHB >= r.UD {
			t.Errorf("rate %v: DHB (%.2f) not below UD (%.2f)", r.RatePerHour, r.DHB, r.UD)
		}
	}
}

func TestDSBComparisonValidation(t *testing.T) {
	cfg := extCfg()
	cfg.VideoSeconds = 0
	if _, err := DSBComparison(cfg); err == nil {
		t.Fatal("want error")
	}
}

func TestModelsAgreeWithSimulation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rates = []float64{5, 50, 500}
	rows, err := Models(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if rel(r.UDSim, r.UDModel) > 0.08 {
			t.Errorf("rate %v: UD sim %.2f vs model %.2f", r.RatePerHour, r.UDSim, r.UDModel)
		}
		if rel(r.TappingSim, r.TappingModel) > 0.12 {
			t.Errorf("rate %v: tapping sim %.2f vs model %.2f", r.RatePerHour, r.TappingSim, r.TappingModel)
		}
		// The heuristic sits at or slightly above the renewal model.
		if r.DHBSim < r.DHBModel*0.9 || r.DHBSim > r.DHBModel*1.2 {
			t.Errorf("rate %v: DHB sim %.2f vs model %.2f", r.RatePerHour, r.DHBSim, r.DHBModel)
		}
	}
}

func TestModelsValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rates = nil
	if _, err := Models(cfg); err == nil {
		t.Fatal("want error")
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return d
	}
	return d / b
}

func TestConfidenceSweep(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rates = []float64{20}
	rows, err := ConfidenceSweep(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Replicates != 5 {
		t.Fatalf("replicates = %d, want 5", r.Replicates)
	}
	for name, pair := range map[string][2]float64{
		"dhb":     {r.DHBMean, r.DHBHalf},
		"ud":      {r.UDMean, r.UDHalf},
		"tapping": {r.TappingMean, r.TappingHalf},
	} {
		mean, half := pair[0], pair[1]
		if mean <= 0 {
			t.Errorf("%s mean = %v", name, mean)
		}
		if half <= 0 {
			t.Errorf("%s half-width = %v, want positive", name, half)
		}
		// Replicate noise must be small relative to the estimate, or the
		// horizons are too short to trust.
		if half > 0.2*mean {
			t.Errorf("%s half-width %v exceeds 20%% of mean %v", name, half, mean)
		}
	}
	// The single-run Figure 7 value must sit inside (a slightly widened)
	// interval of the replicate mean.
	single, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := single[0].DHBAvg - r.DHBMean; d > 3*r.DHBHalf || d < -3*r.DHBHalf {
		t.Errorf("single-run DHB %.3f far outside the replicate interval %.3f +/- %.3f",
			single[0].DHBAvg, r.DHBMean, r.DHBHalf)
	}
}

func TestConfidenceSweepValidation(t *testing.T) {
	cfg := QuickConfig()
	if _, err := ConfidenceSweep(cfg, 1); err == nil {
		t.Fatal("one replicate should error")
	}
	cfg.Rates = nil
	if _, err := ConfidenceSweep(cfg, 5); err == nil {
		t.Fatal("empty rates should error")
	}
}

func TestWaitTradeoff(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rates = []float64{100}
	counts := []int{9, 19, 49, 99, 199}
	rows, err := WaitTradeoff(cfg, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Segments != counts[i] {
			t.Fatalf("row %d segments = %d, want %d", i, r.Segments, counts[i])
		}
		// d = D/n and bandwidth below the analytic saturation ceiling.
		if rel(r.MaxWaitSecs, 7200/float64(r.Segments)) > 1e-9 {
			t.Errorf("n=%d: wait = %v", r.Segments, r.MaxWaitSecs)
		}
		if r.DHBAvg > r.Saturation+0.4 {
			t.Errorf("n=%d: avg %.2f above saturation %.2f", r.Segments, r.DHBAvg, r.Saturation)
		}
		if r.DHBAvg < 0.5 {
			t.Errorf("n=%d: avg %.2f — degenerate measurement window", r.Segments, r.DHBAvg)
		}
		if i > 0 {
			// More segments: shorter wait, more bandwidth.
			if r.MaxWaitSecs >= rows[i-1].MaxWaitSecs {
				t.Errorf("wait did not shrink at n=%d", r.Segments)
			}
			if r.DHBAvg <= rows[i-1].DHBAvg {
				t.Errorf("bandwidth did not grow at n=%d (%.2f after %.2f)",
					r.Segments, r.DHBAvg, rows[i-1].DHBAvg)
			}
		}
	}
}

func TestWaitTradeoffValidation(t *testing.T) {
	cfg := QuickConfig()
	if _, err := WaitTradeoff(cfg, nil); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, err := WaitTradeoff(cfg, []int{0}); err == nil {
		t.Fatal("zero count accepted")
	}
	cfg.Rates = nil
	if _, err := WaitTradeoff(cfg, []int{9}); err == nil {
		t.Fatal("bad config accepted")
	}
}
