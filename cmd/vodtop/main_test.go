package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vodcast/internal/conntrack"
	"vodcast/internal/obs"
	"vodcast/internal/obs/history"
	"vodcast/internal/station"
	"vodcast/internal/vodclient"
	"vodcast/internal/vodserver"
)

// TestRenderFrame drives render with a synthetic snapshot and checks every
// dashboard section appears with the right units.
func TestRenderFrame(t *testing.T) {
	snap := vodserver.StatusSnapshot{
		UptimeSeconds: 12.5,
		Stats:         vodserver.Stats{Requests: 42, Instances: 7, BroadcastBytes: 3_500_000, ActiveSubscribers: 3, Dropped: 1},
		Station: station.Status{
			Videos: 2,
			Shards: []station.ShardStatus{
				{Shard: 0, Videos: 1, Pending: 2, QueueCap: 256, Admits: 30, Rejects: 4},
				{Shard: 1, Videos: 1, Pending: 0, QueueCap: 256, Admits: 12, Rejects: 0},
			},
			Stages: map[string]obs.WindowSnapshot{
				"lock_wait":   {Count: 42, P50: 0.000004, P95: 0.00002, P99: 0.00005, Max: 0.0001},
				"admit":       {Count: 42, P50: 0.0012, P95: 0.004, P99: 0.009, Max: 0.02},
				"queue_depth": {Count: 10, P50: 3, P95: 8, P99: 9, Max: 9},
			},
			Clock: station.ClockStatus{
				Running: true, IntervalSeconds: 0.5, Ticks: 25,
				LagSeconds: 0.001, DriftSlots: 0.002,
				Lag: obs.WindowSnapshot{Count: 25, P95: 0.0015},
			},
		},
		FirstByte: obs.WindowSnapshot{
			Count: 42, P50: 0.003, P95: 0.008, P99: 0.012, Max: 0.02,
			SLOThreshold: 0.01, SLOObjective: 0.99, Good: 40, Bad: 2, BurnRate: 4.76,
		},
		Fanout: obs.WindowSnapshot{Count: 25, P50: 0.0001, P95: 0.0004, P99: 0.0006, Max: 0.001},
		Spans:  obs.SpanStats{Roots: 42, Sampled: 6, Finished: 18, SampleEvery: 8},
		QoE: vodserver.QoESnapshot{
			Reports:  9,
			Startup:  obs.WindowSnapshot{Count: 9, P50: 2, P95: 5},
			Slack:    obs.WindowSnapshot{Count: 9, Mean: 3.5},
			MissRate: obs.WindowSnapshot{Count: 9, Mean: 0.25},
		},
		Alerts: []obs.AlertStatus{
			{Name: "client_deadline_miss_rate", Severity: "critical", State: obs.StateFiring,
				Value: 0.75, Op: ">", Threshold: 0.5, Fired: 2},
			{Name: "client_reports_stale", Severity: "warning", State: obs.StateInactive,
				Value: math.NaN(), Op: "stale", Threshold: 30},
		},
	}
	snap.Station.PerVideo = []station.VideoStatus{
		{Video: 0, Name: "trailer", Shard: 0, Slot: 7, Requests: 30, Instances: 19},
		{Video: 1, Name: "feature", Shard: 1, Slot: 7, Requests: 12, Instances: 11},
	}
	var b strings.Builder
	render(&b, "127.0.0.1:4900", snap)
	out := b.String()
	for _, want := range []string{
		"vodtop — 127.0.0.1:4900",
		"requests=42 instances=7 broadcast=3.5MB subscribers=3 dropped=1",
		"clock: running  slot=500.00ms  ticks=25",
		"drift=0.002 slots",
		"(p95 lag 1.50ms)",
		"spans: 42 roots, 6 sampled (1 in 8), 18 finished",
		"target<=10.00ms @ 99.0%",
		"good=40 bad=2  burn=4.76",
		"lock_wait", "admit", "queue_depth", "fanout", "first_byte",
		"SHARD", "REJECTS",
		"QoE  : reports=9  startup p50=2 p95=5 slots  slack mean=3.5 slots  miss/report mean=0.25",
		"VIDEO", "trailer", "feature",
		"ALERT", "SEVERITY",
		"client_deadline_miss_rate", "critical", "FIRING", "> 0.5",
		"client_reports_stale", "inactive", "stale 30",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	// The sub-millisecond stage renders in microseconds; queue depth stays
	// a bare request count.
	if !strings.Contains(out, "4µs") {
		t.Fatalf("lock_wait not rendered in µs:\n%s", out)
	}
	// Shard rows carry the admit/reject counters.
	if !strings.Contains(out, "30") || !strings.Contains(out, "4") {
		t.Fatalf("shard counters missing:\n%s", out)
	}
	// The no-data staleness value renders as a dash, not NaN.
	if strings.Contains(out, "NaN") {
		t.Fatalf("alert pane leaked NaN:\n%s", out)
	}
	// Without a co-located harness the load pane stays hidden.
	if strings.Contains(out, "load :") {
		t.Fatalf("load pane rendered without load status:\n%s", out)
	}
}

// TestRenderLoadPane: the load pane appears exactly when /statusz carries
// harness counters, and shows the step position, fleet and admit rate.
func TestRenderLoadPane(t *testing.T) {
	snap := vodserver.StatusSnapshot{
		Load: &vodserver.LoadStatus{
			Running: true, Step: "ramp-2", StepIndex: 2, Steps: 3,
			TargetSessions: 80, ActiveSessions: 77,
			Sessions: 1234, Errors: 12, ErrorRate: 0.0096, AdmitsPerSec: 612.5,
		},
	}
	var b strings.Builder
	render(&b, "x", snap)
	out := b.String()
	for _, want := range []string{
		"load : step ramp-2 (2/3)",
		"target=80 active=77",
		"sessions=1234 err=12 (0.96%)",
		"admits/s=612.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("load pane missing %q:\n%s", want, out)
		}
	}

	// A harness that finished its run shows as idle, not as a stale step.
	snap.Load = &vodserver.LoadStatus{Sessions: 500}
	b.Reset()
	render(&b, "x", snap)
	if !strings.Contains(b.String(), "load : idle") {
		t.Fatalf("finished harness not idle:\n%s", b.String())
	}
}

// TestOnceFiringExitPath: run's firing result — the source of the -once exit
// code — follows the alert table served by the endpoint, and an empty table
// stays quiet.
func TestOnceFiringExitPath(t *testing.T) {
	serve := func(snap vodserver.StatusSnapshot) (addr string, done func()) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/statusz" {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(snap)
		}))
		return strings.TrimPrefix(srv.URL, "http://"), srv.Close
	}

	quiet := vodserver.StatusSnapshot{Alerts: []obs.AlertStatus{
		{Name: "client_deadline_miss_rate", State: obs.StatePending, Value: 0.75, Op: ">", Threshold: 0.5},
	}}
	addr, done := serve(quiet)
	var b strings.Builder
	firing, err := run(&b, addr, time.Second, true)
	done()
	if err != nil || firing {
		t.Fatalf("pending-only frame: firing=%v err=%v", firing, err)
	}

	hot := vodserver.StatusSnapshot{Alerts: []obs.AlertStatus{
		{Name: "first_byte_slo_burn", State: obs.StateResolved},
		{Name: "client_deadline_miss_rate", Severity: "critical", State: obs.StateFiring,
			Value: 2, Op: ">", Threshold: 0.5, Fired: 1},
	}}
	addr, done = serve(hot)
	b.Reset()
	firing, err = run(&b, addr, time.Second, true)
	done()
	if err != nil || !firing {
		t.Fatalf("firing frame: firing=%v err=%v", firing, err)
	}
	// The frame the probe rendered shows why it will exit non-zero.
	if !strings.Contains(b.String(), "FIRING") {
		t.Fatalf("firing frame missing alert pane:\n%s", b.String())
	}
}

// TestSparkline pins the sparkline contract: scaling to the window's own
// range, max-preserving downsampling, flat and empty series.
func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Fatalf("empty series rendered %q", got)
	}
	if got := sparkline([]float64{1, 2}, 0); got != "" {
		t.Fatalf("zero width rendered %q", got)
	}
	// A monotone ramp uses the full block range, lowest to highest.
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", got)
	}
	// A flat series renders at the lowest block, not mid-scale noise.
	if got := sparkline([]float64{5, 5, 5}, 8); got != "▁▁▁" {
		t.Fatalf("flat = %q", got)
	}
	// Downsampling keeps the bucket max: the single spike at index 5 of 12
	// must survive into the 4-cell line.
	vs := make([]float64, 12)
	vs[5] = 9
	got = sparkline(vs, 4)
	if len([]rune(got)) != 4 || !strings.Contains(got, "█") {
		t.Fatalf("downsampled spike lost: %q", got)
	}
}

// TestCounterRate: cumulative counters become per-second rates; resets and
// bad timestamps clamp to zero.
func TestCounterRate(t *testing.T) {
	if got := counterRate([]history.Point{{Unix: 1, Value: 5}}); got != nil {
		t.Fatalf("single point produced rates %v", got)
	}
	pts := []history.Point{
		{Unix: 10, Value: 100},
		{Unix: 11, Value: 130}, // +30 over 1s
		{Unix: 13, Value: 140}, // +10 over 2s
		{Unix: 14, Value: 20},  // counter reset
		{Unix: 14, Value: 25},  // zero dt
	}
	got := counterRate(pts)
	want := []float64{30, 5, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("rates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rates = %v, want %v", got, want)
		}
	}
}

// TestRenderHistoryPane drives the pure pane renderer with synthetic
// ranges and checks each trend row.
func TestRenderHistoryPane(t *testing.T) {
	pane := &historyPane{
		startup: []history.Point{{Unix: 1, Value: 2}, {Unix: 2, Value: 3}, {Unix: 3, Value: 7}},
		requests: []history.Point{
			{Unix: 1, Value: 0}, {Unix: 2, Value: 10}, {Unix: 3, Value: 25},
		},
		firing: []history.Point{{Unix: 1, Value: 0}, {Unix: 2, Value: 0}, {Unix: 3, Value: 1}},
	}
	var b strings.Builder
	renderHistory(&b, pane)
	out := b.String()
	for _, want := range []string{
		"TREND (1m)",
		"startup p99", "7 slots",
		"admits/sec", "15.0", // last rate: (25-10)/1s
		"alerts firing", "1",
		"█", // some cell reaches full height
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("history pane missing %q:\n%s", want, out)
		}
	}

	// Empty ranges degrade to dashes, never NaN or a panic.
	b.Reset()
	renderHistory(&b, &historyPane{})
	if out := b.String(); !strings.Contains(out, "-") || strings.Contains(out, "NaN") {
		t.Fatalf("empty pane rendered %q", out)
	}
}

// TestRenderConnPane drives the pure CONN-pane renderer with a synthetic
// /connz summary: the state histogram on the headline, worst-first row
// ordering and the row cap.
func TestRenderConnPane(t *testing.T) {
	sum := &conntrack.Summary{
		Tracked: 3,
		States: map[string]int{
			"healthy": 1, "receiver_limited": 1, "path_limited": 0,
			"sender_backpressured": 0, "stalled": 1,
		},
		StalledRatio: 1.0 / 3,
		Conns: []conntrack.ConnSnapshot{
			{ID: 1, Remote: "10.0.0.1:999", State: "healthy", RingDepth: 1, RingCap: 64, RTTMillis: 0.2, BytesPerSec: 2048},
			{ID: 2, Remote: "10.0.0.2:999", State: "stalled", StateAgeSeconds: 4.5, RingDepth: 60, RingCap: 64, Retrans: 7},
			{ID: 3, Remote: "10.0.0.3:999", State: "receiver_limited", RingDepth: 30, RingCap: 64, BytesPerSec: 512},
		},
	}
	var b strings.Builder
	renderConns(&b, sum)
	out := b.String()
	for _, want := range []string{
		"CONN : tracked=3 stalled_ratio=0.33",
		"healthy=1 recv_limited=1 path_limited=0 backpressured=0 stalled=1",
		"REMOTE", "STATE", "RETRANS", "RING",
		"10.0.0.2:999", "stalled", "60/64",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("conn pane missing %q:\n%s", want, out)
		}
	}
	// Worst-first: the stalled row must render before the limited one, and
	// the limited one before the healthy one.
	if si, ri, hi := strings.Index(out, "10.0.0.2"), strings.Index(out, "10.0.0.3"), strings.Index(out, "10.0.0.1"); !(si < ri && ri < hi) {
		t.Fatalf("rows not worst-first (stalled=%d recv=%d healthy=%d):\n%s", si, ri, hi, out)
	}

	// A crowded table keeps only the connRows worst offenders.
	big := &conntrack.Summary{States: map[string]int{}, Tracked: connRows + 5}
	for i := 0; i < connRows+5; i++ {
		big.Conns = append(big.Conns, conntrack.ConnSnapshot{ID: uint64(i + 1), State: "healthy"})
	}
	big.Conns[connRows+2].State = "stalled"
	b.Reset()
	renderConns(&b, big)
	out = b.String()
	if lines := strings.Count(out, "\n"); lines > connRows+4 {
		t.Fatalf("crowded pane rendered %d lines:\n%s", lines, out)
	}
	// The lone stalled row survives the cap even though it registered last.
	if !strings.Contains(out, "stalled") {
		t.Fatalf("row cap dropped the stalled connection:\n%s", out)
	}

	// Empty summary: headline only, no table header.
	b.Reset()
	renderConns(&b, &conntrack.Summary{States: map[string]int{}})
	if out := b.String(); strings.Contains(out, "REMOTE") {
		t.Fatalf("empty summary rendered a table:\n%s", out)
	}
}

// TestConnPaneAgainstLiveServer: a default server serves the CONN pane end
// to end, and one with conntrack disabled skips it silently.
func TestConnPaneAgainstLiveServer(t *testing.T) {
	s, err := vodserver.Start(vodserver.Config{
		Addr:         "127.0.0.1:0",
		Videos:       []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration: 10 * time.Millisecond,
		StatsAddr:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	if sum := fetchConns(client, s.StatsAddr()); sum == nil {
		t.Fatal("fetchConns returned nil from a conntrack-enabled server")
	}
	var b strings.Builder
	if _, err := run(&b, s.StatsAddr(), time.Second, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CONN : tracked=") {
		t.Fatalf("live frame missing CONN pane:\n%s", b.String())
	}

	s2, err := vodserver.Start(vodserver.Config{
		Addr:              "127.0.0.1:0",
		Videos:            []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:      10 * time.Millisecond,
		StatsAddr:         "127.0.0.1:0",
		ConntrackDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if sum := fetchConns(client, s2.StatsAddr()); sum != nil {
		t.Fatal("fetchConns returned a pane from a conntrack-disabled server")
	}
	b.Reset()
	if _, err := run(&b, s2.StatsAddr(), time.Second, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "CONN : tracked=") {
		t.Fatalf("disabled-conntrack frame rendered CONN pane:\n%s", b.String())
	}
}

// TestHistoryPaneAgainstLiveServer: a server with fast history scrapes
// serves the trend pane end to end, and one with history disabled skips it
// silently.
func TestHistoryPaneAgainstLiveServer(t *testing.T) {
	s, err := vodserver.Start(vodserver.Config{
		Addr:            "127.0.0.1:0",
		Videos:          []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}
	// Let a few scrapes land so the counter rate has deltas to work with.
	deadline := time.Now().Add(5 * time.Second)
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		if pane := fetchHistory(client, s.StatsAddr()); pane != nil && len(pane.requests) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("history never accumulated two request points")
		}
		time.Sleep(20 * time.Millisecond)
	}

	var b strings.Builder
	firing, err := run(&b, s.StatsAddr(), time.Second, true)
	if err != nil || firing {
		t.Fatalf("once frame: firing=%v err=%v", firing, err)
	}
	if !strings.Contains(b.String(), "TREND (1m)") {
		t.Fatalf("live frame missing trend pane:\n%s", b.String())
	}

	// History disabled: the pane is skipped, the frame still renders.
	s2, err := vodserver.Start(vodserver.Config{
		Addr:            "127.0.0.1:0",
		Videos:          []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if pane := fetchHistory(client, s2.StatsAddr()); pane != nil {
		t.Fatal("fetchHistory returned a pane from a history-disabled server")
	}
	b.Reset()
	if _, err := run(&b, s2.StatsAddr(), time.Second, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "TREND (1m)") {
		t.Fatalf("disabled-history frame rendered trend pane:\n%s", b.String())
	}
}

// TestOnceAgainstLiveServer is the acceptance path: a real vodserver, one
// fetched video, then run(..., once=true) renders a populated frame from
// the live /statusz endpoint and returns.
func TestOnceAgainstLiveServer(t *testing.T) {
	s, err := vodserver.Start(vodserver.Config{
		Addr:            "127.0.0.1:0",
		Videos:          []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		SpanSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	firing, err := run(&b, s.StatsAddr(), time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if firing {
		t.Fatal("healthy server reported a firing alert")
	}
	out := b.String()
	if strings.Contains(out, "\x1b[2J") {
		t.Fatalf("-once frame must not clear the screen:\n%q", out)
	}
	for _, want := range []string{"requests=1", "clock: running", "lock_wait", "SHARD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("live frame missing %q:\n%s", want, out)
		}
	}

	// A dead endpoint is an error, not a hang or a zero frame.
	if _, err := run(&b, "127.0.0.1:1", time.Second, true); err == nil {
		t.Fatal("run against dead endpoint succeeded")
	}
	// A non-statusz HTTP server yields a decode/status error.
	if _, err := fetch(&http.Client{Timeout: time.Second}, "0.0.0.0:0"); err == nil {
		t.Fatal("fetch from invalid address succeeded")
	}
	// And a non-positive interval is rejected up front.
	if _, err := run(&b, s.StatsAddr(), 0, true); err == nil {
		t.Fatal("run accepted zero interval")
	}
}
