package vodserver

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/vodclient"
)

// This file is the end-to-end test of the client QoE loop: a real server, N
// concurrent real clients, reports landing in /statusz, client spans joining
// the admit traces in /spanz, and an injected fault walking the miss alert
// through pending → firing → resolved in /alertz.

// alertzDoc mirrors the /alertz response shape.
type alertzDoc struct {
	Firing int               `json:"firing"`
	Evals  uint64            `json:"evals"`
	Rules  []obs.AlertStatus `json:"rules"`
}

func getAlertz(t *testing.T, s *Server) alertzDoc {
	t.Helper()
	code, body := get(t, s, "/alertz")
	if code != http.StatusOK {
		t.Fatalf("alertz status = %d", code)
	}
	var doc alertzDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("alertz body: %v\n%s", err, body)
	}
	return doc
}

func ruleState(t *testing.T, s *Server, name string) obs.AlertState {
	t.Helper()
	for _, r := range getAlertz(t, s).Rules {
		if r.Name == name {
			return r.State
		}
	}
	t.Fatalf("rule %q not served by /alertz", name)
	return ""
}

func TestE2EClientQoELoop(t *testing.T) {
	// dropping suppresses every transmission of video 1's segment 1, so
	// video-1 customers provably miss its deadline — the wire-level stand-in
	// for sustained packet loss on one channel.
	var dropping atomic.Bool
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}, {ID: 2, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		SpanSampleEvery: 1,
		QoEWindow:       4,
		// The test drives evaluations by hand for determinism; the ticker
		// is parked out of the way.
		AlertInterval:     time.Hour,
		AlertFor:          50 * time.Millisecond,
		MissRateThreshold: 0.5,
		ReportStaleAfter:  time.Hour,
		DropInstance: func(video uint32, segment, _ int) bool {
			return dropping.Load() && video == 1 && segment == 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Phase 1 — healthy fleet: N concurrent clients across both videos,
	// every session reporting back.
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		videoID := uint32(1 + i%2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{
				VideoID: videoID, Timeout: 10 * time.Second,
			})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The report read is concurrent with the client's return: poll until
	// every one of the N reports has been folded in.
	waitFor(t, "all reports ingested", func() bool {
		return s.QoE().Reports >= n
	})
	snap := s.Status()
	if snap.QoE.Slack.Count == 0 || snap.QoE.Startup.Count == 0 {
		t.Fatalf("QoE windows empty after %d reports: %+v", n, snap.QoE)
	}

	// Every session was sampled, so every admit tree must have gained
	// client-side children with intact parent links.
	spans := s.Spans().Recent(0)
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	for _, r := range spans {
		byID[r.ID] = r
	}
	sessions, startups := 0, 0
	for _, r := range spans {
		switch r.Name {
		case "client_session":
			parent, ok := byID[r.Parent]
			if !ok || parent.Name != "admit" {
				t.Fatalf("client_session %+v not parented to an admit root", r)
			}
			sessions++
		case "client_startup":
			parent, ok := byID[r.Parent]
			if !ok || parent.Name != "client_session" {
				t.Fatalf("client_startup %+v not parented to a client_session", r)
			}
			startups++
		}
	}
	if sessions < n || startups < n {
		t.Fatalf("synthesized %d session / %d startup spans, want >= %d each", sessions, startups, n)
	}

	// The healthy window keeps the miss alert quiet.
	s.Alerts().Eval()
	if st := ruleState(t, s, "client_deadline_miss_rate"); st != obs.StateInactive {
		t.Fatalf("healthy miss alert state = %s, want inactive", st)
	}

	// Phase 2 — fault injection: drop video 1 segment 1 so its customers
	// miss a deadline, and watch the rule walk pending → firing.
	dropping.Store(true)
	for i := 0; i < 4; i++ {
		res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{
			VideoID: 1, Timeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeadlineMisses == 0 || res.MissingSegments == 0 {
			t.Fatalf("dropped segment not observed by client: %+v", res)
		}
	}
	waitFor(t, "miss reports ingested", func() bool {
		return s.QoE().Reports >= n+4
	})
	s.Alerts().Eval()
	if st := ruleState(t, s, "client_deadline_miss_rate"); st != obs.StatePending {
		t.Fatalf("breached miss alert state = %s, want pending (For not yet elapsed)", st)
	}
	time.Sleep(60 * time.Millisecond) // AlertFor is 50ms
	s.Alerts().Eval()
	if st := ruleState(t, s, "client_deadline_miss_rate"); st != obs.StateFiring {
		t.Fatalf("held breach state = %s, want firing", st)
	}
	if doc := getAlertz(t, s); doc.Firing == 0 || doc.Evals == 0 {
		t.Fatalf("alertz doc = %+v, want firing > 0 and evals > 0", doc)
	}

	// Phase 3 — recovery: healthy sessions roll the bad reports out of the
	// miss-rate window and the rule resolves.
	dropping.Store(false)
	for i := 0; i < 4; i++ {
		if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{
			VideoID: 1, Timeout: 10 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "recovery reports ingested", func() bool {
		return s.QoE().Reports >= n+8
	})
	s.Alerts().Eval()
	if st := ruleState(t, s, "client_deadline_miss_rate"); st != obs.StateResolved {
		t.Fatalf("recovered miss alert state = %s, want resolved", st)
	}

	// The lifetime counters keep the evidence the window rolled past.
	if misses := s.clientMiss(1).Value(); misses < 4 {
		t.Fatalf("client_miss_total{video=1} = %v, want >= 4", misses)
	}
	if s.clientMiss(2).Value() != 0 {
		t.Fatalf("client_miss_total{video=2} = %v, want 0", s.clientMiss(2).Value())
	}
}

// waitFor polls cond with a generous deadline, failing the test with the
// label on timeout.
func waitFor(t *testing.T, label string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", label)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
