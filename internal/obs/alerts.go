package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// This file implements the rule-based alert engine: the layer that turns the
// QoE windows and counters the rest of the package accumulates into an
// operator signal. Metrics answer "what is the value"; an alert rule answers
// "is this value a problem yet" — with hysteresis (a rule must hold for a
// configured duration before it fires) so a single slow segment does not
// page anyone, and an explicit resolved state so dashboards show recovery
// instead of silently dropping the row.
//
// Rules are declarative: a name, a value source, a comparison, and timing.
// The engine evaluates every rule on a ticker (or on demand via Eval, which
// is how tests drive it deterministically with an injected clock) and walks
// each rule through the Prometheus-style state machine
//
//	inactive → pending → firing → resolved → (pending | inactive)
//
// Everything is nil-safe in the package idiom: a nil *AlertEngine accepts
// rules, evaluates and snapshots as a no-op, so wiring stays unconditional.

// AlertState names a rule's position in the alert lifecycle.
type AlertState string

const (
	// StateInactive: the condition does not hold.
	StateInactive AlertState = "inactive"
	// StatePending: the condition holds but not yet for the rule's For
	// duration.
	StatePending AlertState = "pending"
	// StateFiring: the condition has held for at least For.
	StateFiring AlertState = "firing"
	// StateResolved: the condition stopped holding while the rule was
	// firing; kept visible for the rule's KeepResolved duration.
	StateResolved AlertState = "resolved"
)

// CmpOp selects the comparison between a rule's value and its threshold.
type CmpOp string

const (
	// CmpAbove fires when value > threshold (the default).
	CmpAbove CmpOp = ">"
	// CmpBelow fires when value < threshold.
	CmpBelow CmpOp = "<"
)

// AlertRule declares one condition the engine watches.
type AlertRule struct {
	// Name identifies the rule; it follows metric-name syntax so the same
	// lint that guards the registry guards the alert table.
	Name string
	// Severity and Help are operator-facing annotations ("warning",
	// "critical"; one line of what to do about it).
	Severity string
	Help     string
	// Value reads the current level of the watched signal. It is called
	// once per evaluation; NaN means "no data" and never satisfies the
	// condition.
	Value func() float64
	// Op compares Value() against Threshold ("" means CmpAbove). Ignored
	// for staleness rules.
	Op        CmpOp
	Threshold float64
	// For is how long the condition must hold continuously before the rule
	// transitions pending → firing. Zero fires on the first evaluation the
	// condition holds.
	For time.Duration
	// Stale, when positive, turns the rule into a staleness watch: the
	// condition is "Value() has not changed for at least Stale". Op and
	// Threshold are ignored.
	Stale time.Duration
	// KeepResolved bounds how long a resolved rule stays visibly resolved
	// before returning to inactive. Zero keeps the resolved marker until
	// the condition holds again.
	KeepResolved time.Duration
}

// AlertStatus is one rule's externally visible state, as served by /alertz.
type AlertStatus struct {
	Name     string     `json:"name"`
	Severity string     `json:"severity,omitempty"`
	Help     string     `json:"help,omitempty"`
	State    AlertState `json:"state"`
	// Value is the level observed at the last evaluation; Threshold and Op
	// restate the rule so the dashboard needs no second lookup. Op is
	// "stale" for staleness rules.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Op        string  `json:"op"`
	// Since is the trace-clock time (seconds) the rule entered its current
	// state; Fired counts lifetime pending→firing transitions.
	Since float64 `json:"since"`
	Fired uint64  `json:"fired_total"`
}

// alertRuleState is a rule plus its evaluation history.
type alertRuleState struct {
	rule  AlertRule
	state AlertState
	// enteredAt is when the rule entered its current state; condSince is
	// when the condition last became true (drives the For timer).
	enteredAt time.Time
	condSince time.Time
	// lastValue/lastChange drive staleness rules.
	lastValue  float64
	lastChange time.Time
	haveValue  bool
	value      float64
	fired      uint64
}

// AlertEngine evaluates a set of AlertRules against an injectable clock. All
// methods are safe for concurrent use; a nil *AlertEngine is valid and inert.
type AlertEngine struct {
	mu      sync.Mutex
	rules   []*alertRuleState
	clock   func() time.Time
	started time.Time
	stop    chan struct{}
	evals   uint64
	// onTransition, when set, observes every state change an evaluation
	// produced. It is invoked AFTER the engine lock is released so the hook
	// may call back into the engine (Snapshot) or into subsystems whose
	// scrape paths read alert state — the flight recorder does both.
	onTransition func(AlertTransition)
}

// AlertTransition describes one rule state change, as delivered to the
// OnTransition hook: which rule moved, from where to where, and the value
// that drove the evaluation.
type AlertTransition struct {
	Rule     string
	Severity string
	From, To AlertState
	Value    float64
}

// NewAlertEngine returns an empty engine on the wall clock.
func NewAlertEngine() *AlertEngine {
	return &AlertEngine{clock: time.Now, started: time.Now()}
}

// SetClock replaces the engine's clock (tests install a manual clock so For
// and Stale timers are deterministic).
func (e *AlertEngine) SetClock(fn func() time.Time) {
	if e == nil || fn == nil {
		return
	}
	e.mu.Lock()
	e.clock = fn
	e.started = fn()
	e.mu.Unlock()
}

// Add registers a rule. Rule names are unique and follow metric-name syntax;
// a rule must have a Value source.
func (e *AlertEngine) Add(r AlertRule) error {
	if e == nil {
		return nil
	}
	if !ValidMetricName(r.Name) {
		return fmt.Errorf("obs: invalid alert rule name %q", r.Name)
	}
	if r.Value == nil {
		return fmt.Errorf("obs: alert rule %q has no value source", r.Name)
	}
	if r.Op != "" && r.Op != CmpAbove && r.Op != CmpBelow {
		return fmt.Errorf("obs: alert rule %q has unknown op %q", r.Name, r.Op)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.rules {
		if s.rule.Name == r.Name {
			return fmt.Errorf("obs: alert rule %q already registered", r.Name)
		}
	}
	now := e.clock()
	e.rules = append(e.rules, &alertRuleState{
		rule: r, state: StateInactive, enteredAt: now, lastChange: now,
	})
	sort.Slice(e.rules, func(i, j int) bool {
		return e.rules[i].rule.Name < e.rules[j].rule.Name
	})
	return nil
}

// SetOnTransition installs (or, with nil, removes) the state-change hook.
// The hook runs on whichever goroutine called Eval — the ticker goroutine in
// production — after the engine lock is released, so it may freely read the
// engine and anything that reads the engine.
func (e *AlertEngine) SetOnTransition(fn func(AlertTransition)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.onTransition = fn
	e.mu.Unlock()
}

// Eval runs one evaluation pass over every rule. The ticker calls it; tests
// call it directly after advancing their clock.
func (e *AlertEngine) Eval() {
	if e == nil {
		return
	}
	e.mu.Lock()
	now := e.clock()
	e.evals++
	// Hoisted so the hookless (disabled) path pays one register test per
	// rule instead of re-loading the field through the engine pointer.
	hook := e.onTransition
	var transitions []AlertTransition
	for _, s := range e.rules {
		v := s.rule.Value()
		s.value = v
		cond := false
		if s.rule.Stale > 0 {
			// Staleness watch: any change (or first sight) of the value
			// resets the timer; NaN reads keep the previous value's clock.
			if !math.IsNaN(v) && (!s.haveValue || v != s.lastValue) {
				s.lastValue = v
				s.lastChange = now
				s.haveValue = true
			}
			cond = s.haveValue && now.Sub(s.lastChange) >= s.rule.Stale
		} else if !math.IsNaN(v) {
			if s.rule.Op == CmpBelow {
				cond = v < s.rule.Threshold
			} else {
				cond = v > s.rule.Threshold
			}
		}
		before := s.state
		s.step(cond, now)
		if hook != nil && s.state != before {
			transitions = append(transitions, AlertTransition{
				Rule: s.rule.Name, Severity: s.rule.Severity,
				From: before, To: s.state, Value: v,
			})
		}
	}
	e.mu.Unlock()
	for _, tr := range transitions {
		hook(tr)
	}
}

// step advances one rule's state machine given this evaluation's condition.
func (s *alertRuleState) step(cond bool, now time.Time) {
	enter := func(st AlertState) {
		s.state = st
		s.enteredAt = now
	}
	switch s.state {
	case StateInactive, StateResolved:
		if cond {
			s.condSince = now
			enter(StatePending)
			if now.Sub(s.condSince) >= s.rule.For {
				s.fired++
				enter(StateFiring)
			}
		} else if s.state == StateResolved && s.rule.KeepResolved > 0 &&
			now.Sub(s.enteredAt) >= s.rule.KeepResolved {
			enter(StateInactive)
		}
	case StatePending:
		if !cond {
			enter(StateInactive)
		} else if now.Sub(s.condSince) >= s.rule.For {
			s.fired++
			enter(StateFiring)
		}
	case StateFiring:
		if !cond {
			enter(StateResolved)
		}
	}
}

// Start begins periodic evaluation every interval (<= 0 selects 1s). It is a
// no-op if the engine is already running.
func (e *AlertEngine) Start(interval time.Duration) {
	if e == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	e.stop = stop
	e.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Eval()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts periodic evaluation. Idempotent.
func (e *AlertEngine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.stop != nil {
		close(e.stop)
		e.stop = nil
	}
	e.mu.Unlock()
}

// Snapshot returns every rule's current status, sorted by name. Since is
// reported on the engine's trace clock: seconds from the engine's start to
// the state transition, so snapshots are deterministic under SetClock.
func (e *AlertEngine) Snapshot() []AlertStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.rules))
	for _, s := range e.rules {
		op := string(s.rule.Op)
		if op == "" {
			op = string(CmpAbove)
		}
		threshold := s.rule.Threshold
		if s.rule.Stale > 0 {
			// Staleness rules compare against time, not level: surface the
			// stale window (seconds) where the threshold would render.
			op = "stale"
			threshold = s.rule.Stale.Seconds()
		}
		value := s.value
		if math.IsNaN(value) {
			// NaN is the engine's "no data" sentinel; JSON has no NaN, so
			// the no-data level renders as zero (the state already says
			// inactive).
			value = 0
		}
		out = append(out, AlertStatus{
			Name: s.rule.Name, Severity: s.rule.Severity, Help: s.rule.Help,
			State: s.state, Value: value,
			Threshold: threshold, Op: op,
			Since: s.enteredAt.Sub(e.started).Seconds(),
			Fired: s.fired,
		})
	}
	return out
}

// Firing reports how many rules are currently firing.
func (e *AlertEngine) Firing() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, s := range e.rules {
		if s.state == StateFiring {
			n++
		}
	}
	return n
}

// Evals reports the number of evaluation passes run, so callers can tell a
// quiet alert table from an engine that never ticked.
func (e *AlertEngine) Evals() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// BurnRateRule watches a Window's SLO burn rate: it fires when the error
// budget burns faster than maxBurn for forDur.
func BurnRateRule(name string, w *Window, maxBurn float64, forDur time.Duration) AlertRule {
	return AlertRule{
		Name:     name,
		Severity: "critical",
		Help:     fmt.Sprintf("SLO error budget burning faster than %gx", maxBurn),
		Value:    func() float64 { return w.Snapshot().BurnRate },
		Op:       CmpAbove, Threshold: maxBurn, For: forDur,
	}
}

// WindowMeanRule watches the rolling mean of a Window — the right shape for
// signals that must be able to recover (a lifetime counter can never come
// back down, the windowed mean rolls bad samples out).
func WindowMeanRule(name string, w *Window, op CmpOp, threshold float64, forDur time.Duration) AlertRule {
	return AlertRule{
		Name:     name,
		Severity: "warning",
		Help:     fmt.Sprintf("windowed mean %s %g", opOrDefault(op), threshold),
		Value: func() float64 {
			snap := w.Snapshot()
			if snap.Count == 0 {
				return math.NaN()
			}
			return snap.Mean
		},
		Op: op, Threshold: threshold, For: forDur,
	}
}

// StalenessRule fires when value stops changing for stale — the liveness
// check for feeds that should always move (e.g. the client report counter
// while sessions are supposed to be running).
func StalenessRule(name string, value func() float64, stale time.Duration) AlertRule {
	return AlertRule{
		Name:     name,
		Severity: "warning",
		Help:     fmt.Sprintf("signal unchanged for %v", stale),
		Value:    value,
		Stale:    stale,
	}
}

func opOrDefault(op CmpOp) CmpOp {
	if op == "" {
		return CmpAbove
	}
	return op
}
