package station

import (
	"sync"
	"sync/atomic"
	"testing"

	"vodcast/internal/core"
)

// singleMutexEngine is the baseline the sharded station is measured
// against: the same per-video schedulers behind ONE engine-wide mutex, the
// design a straightforward "make it concurrent" port of the simulation
// would produce. Every admission serializes against every other, whatever
// the video.
type singleMutexEngine struct {
	mu     sync.Mutex
	scheds []*core.Scheduler
}

func newSingleMutexEngine(b *testing.B, videos, segments int) *singleMutexEngine {
	e := &singleMutexEngine{scheds: make([]*core.Scheduler, videos)}
	for i := range e.scheds {
		s, err := core.New(core.Config{Segments: segments})
		if err != nil {
			b.Fatal(err)
		}
		e.scheds[i] = s
	}
	return e
}

func (e *singleMutexEngine) Admit(video int) {
	e.mu.Lock()
	e.scheds[video].AdmitRequest(core.AdmitOptions{})
	e.mu.Unlock()
}

func (e *singleMutexEngine) AdvanceSlot() {
	e.mu.Lock()
	for _, s := range e.scheds {
		s.AdvanceSlot()
	}
	e.mu.Unlock()
}

const (
	benchVideos   = 64
	benchSegments = 100
)

func newBenchStation(b *testing.B) *Station {
	st, err := New(Config{Videos: testCatalogue(benchVideos, benchSegments)})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStationAdmit measures parallel admission throughput: goroutines
// admit across the catalogue round-robin. "sharded" is the station;
// "single-mutex" is the whole-engine-lock baseline. On a multi-core host
// the sharded engine's advantage is the point of the design; on one core
// the two mostly measure lock overhead.
func BenchmarkStationAdmit(b *testing.B) {
	b.Run("sharded", func(b *testing.B) {
		st := newBenchStation(b)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int(next.Add(1)) % benchVideos
			for pb.Next() {
				if _, err := st.Admit(v, core.AdmitOptions{}); err != nil {
					b.Error(err)
					return
				}
				v = (v + 1) % benchVideos
			}
		})
	})
	b.Run("single-mutex", func(b *testing.B) {
		e := newSingleMutexEngine(b, benchVideos, benchSegments)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int(next.Add(1)) % benchVideos
			for pb.Next() {
				e.Admit(v)
				v = (v + 1) % benchVideos
			}
		})
	})
	// "coalesced-batch" admits the same workload but groups every 16
	// same-video arrivals into one AdmitBatch call: one lock acquisition
	// and one full placement plus 15 memo hits per group. ns/op stays
	// per-admission (each pb.Next() is one admission), so the row is
	// directly comparable to "sharded".
	b.Run("coalesced-batch", func(b *testing.B) {
		st := newBenchStation(b)
		const group = 16
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int(next.Add(1)) % benchVideos
			pending := 0
			for pb.Next() {
				if pending++; pending < group {
					continue
				}
				if _, err := st.AdmitBatch(v, pending, core.AdmitOptions{}); err != nil {
					b.Error(err)
					return
				}
				pending = 0
				v = (v + 1) % benchVideos
			}
			if pending > 0 {
				if _, err := st.AdmitBatch(v, pending, core.AdmitOptions{}); err != nil {
					b.Error(err)
				}
			}
		})
	})
}

// BenchmarkStationMixed interleaves batched admissions with slot advances
// (one advance per 256 operations per goroutine), the realistic steady
// state of a clock-driven server under load.
func BenchmarkStationMixed(b *testing.B) {
	b.Run("sharded", func(b *testing.B) {
		st := newBenchStation(b)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int(next.Add(1)) % benchVideos
			n := 0
			for pb.Next() {
				if n++; n%256 == 0 {
					st.AdvanceSlot()
					continue
				}
				if err := st.Enqueue(v, 0); err != nil {
					b.Error(err)
					return
				}
				v = (v + 1) % benchVideos
			}
		})
	})
	b.Run("single-mutex", func(b *testing.B) {
		e := newSingleMutexEngine(b, benchVideos, benchSegments)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := int(next.Add(1)) % benchVideos
			n := 0
			for pb.Next() {
				if n++; n%256 == 0 {
					e.AdvanceSlot()
					continue
				}
				e.Admit(v)
				v = (v + 1) % benchVideos
			}
		})
	})
}

// BenchmarkStationEnqueue isolates the batched admission path (lock
// amortization): FlushBatch admissions share one lock acquisition.
func BenchmarkStationEnqueue(b *testing.B) {
	st := newBenchStation(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := int(next.Add(1)) % benchVideos
		for pb.Next() {
			if err := st.Enqueue(v, 0); err != nil {
				b.Error(err)
				return
			}
			v = (v + 1) % benchVideos
		}
	})
}
