module vodcast

go 1.22
