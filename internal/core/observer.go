package core

// Observer receives a callback at every scheduling decision, the
// instrumentation hook the observability layer (internal/obs) plugs into.
// All methods take plain integers so implementations outside this package
// need no core types; vodcast/internal/obs.SchedObserver satisfies the
// interface structurally.
//
// The scheduler guards every invocation with a nil check, so a scheduler
// built without an observer pays one predictable branch per decision and
// allocates nothing extra (see BenchmarkSchedulerObserverOff). Observers run
// synchronously on the scheduling path and must not call back into the
// scheduler.
type Observer interface {
	// ObserveAdmit fires once per admitted request, after its per-segment
	// decisions: slot is the admission slot, from the first consumed
	// segment (1 for a full viewing, >1 for an interactive resume), placed
	// the number of new instances the request forced.
	ObserveAdmit(slot, from, placed int)
	// ObserveDecision fires for every per-segment placement decision of
	// Figure 6: segment's serving instance is at slot, chosen within the
	// feasible window [windowLo, windowHi]; load is the chosen slot's
	// instance count after the decision; shared reports that an existing
	// instance satisfied the window (no new transmission).
	ObserveDecision(reqSlot, segment, slot, windowLo, windowHi, load int, shared bool)
	// ObserveRetire fires when a slot finishes transmitting, with its
	// final load. segments lists the transmitted segment ids when the
	// scheduler was built with TrackSegments (nil otherwise) and must not
	// be retained or mutated.
	ObserveRetire(slot, load int, segments []int)
}
