package vodserver

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/vodclient"
)

// startStatusServer runs a fully observed server: span sampling keeps
// everything so assertions are deterministic, and two fetches populate every
// window.
func startStatusServer(t *testing.T, spanSink io.Writer) *Server {
	t.Helper()
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}, {ID: 2, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		SpanWriter:      spanSink,
		SpanSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for _, id := range []uint32{1, 2} {
		// Decline trace join and reporting so the span sink holds exactly the
		// server-side admit trees (client spans are covered by the QoE tests).
		if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: id, Timeout: 10 * time.Second, StrictDeadlines: true, NoTrace: true, NoReport: true}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestStatuszSnapshot decodes /statusz and checks every section of the
// operator view: shard table, stage windows, first-byte SLO, fan-out and
// span accounting.
func TestStatuszSnapshot(t *testing.T) {
	s := startStatusServer(t, nil)
	code, body := get(t, s, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz status = %d", code)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("statusz body: %v\n%s", err, body)
	}
	if snap.UptimeSeconds <= 0 || snap.Stats.Requests != 2 {
		t.Fatalf("uptime=%v stats=%+v", snap.UptimeSeconds, snap.Stats)
	}
	st := snap.Station
	if st.Videos != 2 || len(st.Shards) == 0 {
		t.Fatalf("station snapshot %+v", st)
	}
	var admits float64
	videos := 0
	for _, row := range st.Shards {
		admits += row.Admits
		videos += row.Videos
	}
	if admits != 2 || videos != 2 {
		t.Fatalf("shard table admits=%v videos=%d", admits, videos)
	}
	for _, stage := range []string{"lock_wait", "admit"} {
		if st.Stages[stage].Count == 0 {
			t.Fatalf("stage %q empty in %+v", stage, st.Stages)
		}
	}
	if !st.Clock.Running || st.Clock.Ticks == 0 {
		t.Fatalf("clock %+v", st.Clock)
	}
	if snap.FirstByte.Count < 2 || snap.FirstByte.P50 <= 0 {
		t.Fatalf("first-byte window %+v", snap.FirstByte)
	}
	// Default SLO: two slot durations at 99%.
	if snap.FirstByte.SLOThreshold != 0.02 || snap.FirstByte.SLOObjective != 0.99 {
		t.Fatalf("SLO config %+v", snap.FirstByte)
	}
	if snap.Fanout.Count == 0 {
		t.Fatalf("fan-out window empty: %+v", snap.Fanout)
	}
	if snap.Spans.Roots != 2 || snap.Spans.Sampled != 2 || snap.Spans.SampleEvery != 1 {
		t.Fatalf("span stats %+v", snap.Spans)
	}
}

// TestSpanzPipelineTree: /spanz carries the admit trees — roots attributed
// to video and shard, station_admit and first_byte_wait children linked to
// their parents.
func TestSpanzPipelineTree(t *testing.T) {
	sink := &syncBuffer{}
	s := startStatusServer(t, sink)
	code, body := get(t, s, "/spanz")
	if code != http.StatusOK {
		t.Fatalf("spanz status = %d", code)
	}
	var recs []obs.SpanRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("spanz body: %v", err)
	}
	byID := make(map[uint64]obs.SpanRecord)
	names := make(map[string]int)
	for _, r := range recs {
		byID[r.ID] = r
		names[r.Name]++
	}
	if names["admit"] != 2 || names["station_admit"] != 2 || names["first_byte_wait"] != 2 {
		t.Fatalf("span names %v", names)
	}
	for _, r := range recs {
		switch r.Name {
		case "admit":
			if r.Parent != 0 || r.Video == 0 || r.Shard < 0 || r.Dur <= 0 {
				t.Fatalf("root span %+v", r)
			}
		case "station_admit", "first_byte_wait":
			parent, ok := byID[r.Parent]
			if !ok || parent.Name != "admit" {
				t.Fatalf("span %+v has no admit parent", r)
			}
			if r.Video != parent.Video || r.Shard != parent.Shard {
				t.Fatalf("child %+v lost parent attribution %+v", r, parent)
			}
		}
	}
	if code, _ := get(t, s, "/spanz?n=-1"); code != http.StatusBadRequest {
		t.Fatalf("spanz?n=-1 = %d, want 400", code)
	}

	// The JSONL sink carries the same spans, one decodable object per line.
	s.Close()
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("span sink has %d lines, want 6", len(lines))
	}
	for _, line := range lines {
		var r obs.SpanRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad span JSONL %q: %v", line, err)
		}
	}
}

// TestRouteGuards: every introspection endpoint 405s non-GET methods with
// an Allow header, 404s sub-paths, and declares its Content-Type — no
// request falls through to a handler it did not name.
func TestRouteGuards(t *testing.T) {
	s := startStatusServer(t, nil)
	endpoints := []struct {
		path        string
		contentType string
	}{
		{"/statsz", "application/json"},
		{"/statusz", "application/json"},
		{"/healthz", "application/json"},
		{"/metricsz", "text/plain; version=0.0.4; charset=utf-8"},
		{"/tracez", "application/json"},
		{"/spanz", "application/json"},
		{"/alertz", "application/json"},
		{"/connz", "application/json"},
		{"/queryz", "application/json"},
	}
	client := &http.Client{}
	for _, ep := range endpoints {
		url := "http://" + s.StatsAddr() + ep.path

		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", ep.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != ep.contentType {
			t.Fatalf("GET %s Content-Type = %q, want %q", ep.path, got, ep.contentType)
		}

		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodHead} {
			req, err := http.NewRequest(method, url, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s = %d, want 405", method, ep.path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != http.MethodGet {
				t.Fatalf("%s %s Allow = %q, want GET", method, ep.path, got)
			}
		}

		if code, _ := get(t, s, ep.path+"/sub"); code != http.StatusNotFound {
			t.Fatalf("GET %s/sub did not 404", ep.path)
		}
	}
}

// TestConnzDisabled: a server with conntrack turned off answers /connz 503
// while keeping the shared routing guards, exposes no sampler handle, and
// registers none of the conn_* families.
func TestConnzDisabled(t *testing.T) {
	s, err := Start(Config{
		Addr:              "127.0.0.1:0",
		Videos:            []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:      10 * time.Millisecond,
		StatsAddr:         "127.0.0.1:0",
		ConntrackDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Conns() != nil {
		t.Fatal("ConntrackDisabled left a live sampler")
	}
	if code, _ := get(t, s, "/connz"); code != http.StatusServiceUnavailable {
		t.Fatalf("connz disabled = %d, want 503", code)
	}
	// Routing guards hold even when the feature is disabled.
	resp, err := http.Post("http://"+s.StatsAddr()+"/connz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /connz = %d, want 405", resp.StatusCode)
	}
	if code, _ := get(t, s, "/connz/sub"); code != http.StatusNotFound {
		t.Fatal("GET /connz/sub did not 404")
	}
	// The disabled server's registry carries no conn_* families, and the
	// alert table carries no conn_stalled_ratio rule.
	for _, name := range s.Registry().Names() {
		if strings.HasPrefix(name, "conn_") {
			t.Fatalf("disabled conntrack registered %q", name)
		}
	}
	for _, r := range s.Alerts().Snapshot() {
		if r.Name == "conn_stalled_ratio" {
			t.Fatal("disabled conntrack armed the stall alert")
		}
	}
}

// TestRegisteredMetricNamesValid is the metric-name lint: every family the
// fully wired server registers must pass the Prometheus charset predicate.
// `make ci` runs this by name.
func TestRegisteredMetricNamesValid(t *testing.T) {
	s := startStatusServer(t, nil)
	names := s.Registry().Names()
	if len(names) == 0 {
		t.Fatal("no registered metrics")
	}
	for _, name := range names {
		if !obs.ValidMetricName(name) {
			t.Fatalf("registered metric %q fails validName", name)
		}
	}
	// The full pipeline inventory must be present: server, station, spans
	// feed /metricsz from one registry.
	want := []string{
		"vod_requests_total", "vod_fanout_seconds", "vod_admit_first_byte_seconds",
		"station_stage_seconds", "station_queue_depth_sampled",
		"station_clock_tick_lag_seconds", "station_clock_slot_drift_slots",
		"station_clock_ticks_total", "station_shard_queue_depth",
		"go_goroutines", "go_heap_alloc_bytes",
		"client_reports_total", "client_startup_slots",
		"client_deadline_slack_slots", "client_miss_total", "client_rebuffer_total",
		"vod_fanout_ring_depth_max", "vod_qoe_startup_p99_slots",
		"vod_qoe_miss_rate", "vod_alerts_firing",
		"vod_dropped_subscribers_total",
		"conn_rtt_seconds", "conn_retrans_total", "conn_push_fail_total",
		"conn_drain_bytes_total", "conn_state", "conn_tracked",
		"conn_stalled_ratio", "conn_ring_occupancy_p99",
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("metric %q missing from registry inventory %v", w, names)
		}
	}
}
