// Package station is the concurrent multi-video broadcast engine: it owns
// one DHB scheduler per catalogue video and partitions them across worker
// shards so admissions for different videos proceed in parallel.
//
// The paper's introduction motivates a server distributing a whole catalogue
// under per-video demand; core.Scheduler deliberately has no concurrency
// story (one goroutine per scheduler), so catalogue-scale service is a
// sharding problem, exactly as Viennot et al. treat distributed VoD as a
// parallel-channel problem. The design:
//
//   - Sharding. Videos are assigned round-robin to S shards; each shard
//     guards its schedulers with its own mutex. Admissions for videos on
//     different shards never contend.
//   - One clock. A single optional clock goroutine fans AdvanceSlot ticks
//     out to every shard (in parallel) so all videos share the slot grid;
//     deterministic drivers call AdvanceSlot themselves instead.
//   - Batched admission. Enqueue appends a request to the shard's bounded
//     pending queue and returns immediately; the batch is applied under one
//     lock acquisition when it reaches FlushBatch requests, and always
//     before the shard's next AdvanceSlot — a request enqueued during slot
//     i is admitted in slot i, so batching never changes DHB semantics.
//   - Overload. A full pending queue rejects with ErrOverloaded instead of
//     blocking: under overload the engine degrades by shedding admissions,
//     never by stalling the broadcast clock.
//
// Within one slot, admissions for the same video are identical operations,
// so any interleaving of shard work yields the same per-video schedule as a
// sequential run with the same per-slot arrival counts; station_test.go
// proves this equivalence against K independent core schedulers.
package station

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vodcast/internal/core"
	"vodcast/internal/obs"
)

// Sentinel errors. Construction errors wrap these (and the core sentinels
// for per-video scheduler problems) with context; runtime errors from Admit
// and Enqueue are classifiable with errors.Is.
var (
	// ErrEmptyCatalogue reports a Config with no videos.
	ErrEmptyCatalogue = errors.New("station: empty catalogue")
	// ErrBadShards reports a negative Config.Shards.
	ErrBadShards = errors.New("station: shard count must be non-negative")
	// ErrBadQueueDepth reports a negative Config.QueueDepth.
	ErrBadQueueDepth = errors.New("station: queue depth must be non-negative")
	// ErrBadFlushBatch reports a negative Config.FlushBatch.
	ErrBadFlushBatch = errors.New("station: flush batch must be non-negative")
	// ErrBadSlotDuration reports a non-positive StartClock interval.
	ErrBadSlotDuration = errors.New("station: slot duration must be positive")
	// ErrUnknownVideo reports a video index outside the catalogue.
	ErrUnknownVideo = errors.New("station: unknown video")
	// ErrOverloaded reports an Enqueue against a full shard queue; the
	// request was shed, not blocked.
	ErrOverloaded = errors.New("station: admission queue full")
	// ErrClosed reports an operation against a closed station.
	ErrClosed = errors.New("station: closed")
	// ErrClockRunning reports a second StartClock without a StopClock.
	ErrClockRunning = errors.New("station: clock already running")
)

// VideoConfig describes one catalogue video of a station.
type VideoConfig struct {
	// Name labels the video in reports and metrics ("" is allowed).
	Name string
	// Segments is the DHB segment count n.
	Segments int
	// Periods optionally carries a DHB-d period vector; nil selects the CBR
	// default T[i] = i.
	Periods []int
	// TrackSegments records which segment ids occupy each slot (needed when
	// slot reports feed a data plane, as in vodserver).
	TrackSegments bool
	// Observer optionally receives the video's scheduling decisions. It is
	// invoked under the owning shard's lock, possibly from clock or flush
	// goroutines, so it must be safe for use from multiple goroutines over
	// time (obs.SchedObserver over a Tracer is).
	Observer core.Observer
}

// Config parameterizes a station.
type Config struct {
	// Videos is the catalogue. Video indices in the station API are indices
	// into this slice.
	Videos []VideoConfig
	// Shards is the number of worker shards; 0 selects
	// min(GOMAXPROCS, len(Videos)).
	Shards int
	// QueueDepth bounds each shard's pending (asynchronous) admission
	// queue; an Enqueue against a full queue is rejected with
	// ErrOverloaded. 0 selects DefaultQueueDepth.
	QueueDepth int
	// FlushBatch is the pending-queue length that triggers an immediate
	// batch flush; smaller batches trade lock amortization for admission
	// latency. 0 selects DefaultFlushBatch.
	FlushBatch int
	// Registry optionally receives the per-shard gauges and counters
	// (station_shard_queue_depth, station_shard_admits_total,
	// station_shard_rejects_total).
	Registry *obs.Registry
}

// Defaults for the zero values of Config.
const (
	DefaultQueueDepth = 1024
	DefaultFlushBatch = 64
)

// pendingReq is one asynchronously enqueued admission.
type pendingReq struct {
	video int
	from  int
}

// stationVideo binds one catalogue video to its scheduler and shard.
type stationVideo struct {
	name  string
	sched *core.Scheduler
	shard int
}

// shard is one worker partition: a mutex, the videos it owns, and the
// bounded pending queue of batched admissions.
type shard struct {
	mu      sync.Mutex
	videos  []int // station video indices owned by this shard
	pending []pendingReq

	// Per-shard observability (nil without a Registry).
	queueDepth *obs.Gauge
	admits     *obs.Counter
	rejects    *obs.Counter
}

// Station is a sharded multi-video DHB broadcast engine. All methods are
// safe for concurrent use.
type Station struct {
	videos     []*stationVideo
	shards     []*shard
	queueCap   int
	flushBatch int

	closed atomic.Bool

	clockMu   sync.Mutex
	clockStop chan struct{}
	clockWG   sync.WaitGroup
}

// New validates cfg and builds the station with every scheduler at slot 0.
func New(cfg Config) (*Station, error) {
	if len(cfg.Videos) == 0 {
		return nil, ErrEmptyCatalogue
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadShards, cfg.Shards)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadQueueDepth, cfg.QueueDepth)
	}
	if cfg.FlushBatch < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadFlushBatch, cfg.FlushBatch)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(cfg.Videos) {
		shards = len(cfg.Videos)
	}
	st := &Station{
		videos:     make([]*stationVideo, len(cfg.Videos)),
		shards:     make([]*shard, shards),
		queueCap:   cfg.QueueDepth,
		flushBatch: cfg.FlushBatch,
	}
	if st.queueCap == 0 {
		st.queueCap = DefaultQueueDepth
	}
	if st.flushBatch == 0 {
		st.flushBatch = DefaultFlushBatch
	}
	for i := range st.shards {
		sh := &shard{}
		if cfg.Registry != nil {
			ls := obs.Labels{"shard": fmt.Sprint(i)}
			sh.queueDepth = cfg.Registry.GaugeWith("station_shard_queue_depth",
				"Admissions batched in the shard's pending queue, waiting for the next flush.", ls)
			sh.admits = cfg.Registry.CounterWith("station_shard_admits_total",
				"Requests admitted through the shard (synchronous and batched).", ls)
			sh.rejects = cfg.Registry.CounterWith("station_shard_rejects_total",
				"Requests shed by the shard: queue overload or invalid resume points.", ls)
		}
		st.shards[i] = sh
	}
	for i, vc := range cfg.Videos {
		sched, err := core.New(core.Config{
			Segments:      vc.Segments,
			Periods:       vc.Periods,
			TrackSegments: vc.TrackSegments,
			Observer:      vc.Observer,
		})
		if err != nil {
			return nil, fmt.Errorf("station: video %d (%q): %w", i, vc.Name, err)
		}
		shardIdx := i % shards
		st.videos[i] = &stationVideo{name: vc.Name, sched: sched, shard: shardIdx}
		sh := st.shards[shardIdx]
		sh.videos = append(sh.videos, i)
	}
	return st, nil
}

// Videos reports the catalogue size.
func (st *Station) Videos() int { return len(st.videos) }

// Shards reports the number of worker shards.
func (st *Station) Shards() int { return len(st.shards) }

// ShardOf reports which shard owns the video.
func (st *Station) ShardOf(video int) int { return st.videos[video].shard }

// Name reports the video's configured label.
func (st *Station) Name(video int) string { return st.videos[video].name }

// Periods returns a copy of the video's resolved 1-based period vector
// (CBR defaults applied).
func (st *Station) Periods(video int) []int {
	sched := st.videos[video].sched
	periods := make([]int, sched.N()+1)
	for j := 1; j <= sched.N(); j++ {
		periods[j] = sched.Period(j)
	}
	return periods
}

// checkVideo validates a video index.
func (st *Station) checkVideo(video int) error {
	if video < 0 || video >= len(st.videos) {
		return fmt.Errorf("%w: index %d outside 0..%d", ErrUnknownVideo, video, len(st.videos)-1)
	}
	return nil
}

// Admit synchronously admits one request for the video under its shard's
// lock, flushing any batched admissions first so arrival order is
// preserved. Admissions for videos on different shards run in parallel.
func (st *Station) Admit(video int, opts core.AdmitOptions) (core.AdmitResult, error) {
	if st.closed.Load() {
		return core.AdmitResult{}, ErrClosed
	}
	if err := st.checkVideo(video); err != nil {
		return core.AdmitResult{}, err
	}
	sh := st.shards[st.videos[video].shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.flushLocked(st)
	res, err := st.videos[video].sched.AdmitRequest(opts)
	if err != nil {
		if sh.rejects != nil {
			sh.rejects.Inc()
		}
		return core.AdmitResult{}, err
	}
	if sh.admits != nil {
		sh.admits.Inc()
	}
	return res, nil
}

// Enqueue appends one full-viewing-or-resume admission (from <= 1 means a
// full viewing) to the video's shard queue and returns without waiting for
// it to be applied. The batch flushes when it reaches FlushBatch requests
// and always before the shard's next AdvanceSlot, so the request is
// admitted in the slot it arrived in. A full queue rejects with
// ErrOverloaded.
func (st *Station) Enqueue(video, from int) error {
	if st.closed.Load() {
		return ErrClosed
	}
	if err := st.checkVideo(video); err != nil {
		return err
	}
	sched := st.videos[video].sched
	if from > sched.N() {
		shd := st.shards[st.videos[video].shard]
		if shd.rejects != nil {
			shd.rejects.Inc()
		}
		return fmt.Errorf("%w: segment %d outside 1..%d", core.ErrBadResumePoint, from, sched.N())
	}
	if from < 1 {
		from = 1
	}
	sh := st.shards[st.videos[video].shard]
	sh.mu.Lock()
	if len(sh.pending) >= st.queueCap {
		sh.mu.Unlock()
		if sh.rejects != nil {
			sh.rejects.Inc()
		}
		return fmt.Errorf("%w: shard %d at depth %d", ErrOverloaded, st.videos[video].shard, st.queueCap)
	}
	sh.pending = append(sh.pending, pendingReq{video: video, from: from})
	if len(sh.pending) >= st.flushBatch {
		sh.flushLocked(st)
	} else if sh.queueDepth != nil {
		sh.queueDepth.Set(float64(len(sh.pending)))
	}
	sh.mu.Unlock()
	return nil
}

// flushLocked applies the shard's pending admissions in arrival order. The
// caller holds sh.mu. Requests were validated at Enqueue, so admission
// cannot fail.
func (sh *shard) flushLocked(st *Station) {
	if len(sh.pending) == 0 {
		return
	}
	for _, r := range sh.pending {
		// The error is impossible: from was validated against the segment
		// count at Enqueue.
		_, _ = st.videos[r.video].sched.AdmitRequest(core.AdmitOptions{From: r.from})
	}
	if sh.admits != nil {
		sh.admits.Add(float64(len(sh.pending)))
	}
	sh.pending = sh.pending[:0]
	if sh.queueDepth != nil {
		sh.queueDepth.Set(0)
	}
}

// AdvanceSlot finishes the current slot of every video and returns the
// retired slot reports, indexed by video. Each shard flushes its pending
// admissions first (they arrived during the finishing slot) and shards
// advance in parallel.
func (st *Station) AdvanceSlot() []core.SlotReport {
	reports := make([]core.SlotReport, len(st.videos))
	if len(st.shards) == 1 {
		st.advanceShard(0, reports)
		return reports
	}
	var wg sync.WaitGroup
	for i := range st.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st.advanceShard(i, reports)
		}(i)
	}
	wg.Wait()
	return reports
}

// advanceShard flushes and advances one shard. Shards own disjoint video
// index sets, so concurrent writes into reports never alias.
func (st *Station) advanceShard(i int, reports []core.SlotReport) {
	sh := st.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.flushLocked(st)
	for _, v := range sh.videos {
		reports[v] = st.videos[v].sched.AdvanceSlot()
	}
}

// CurrentSlot reports the video's current transmission slot.
func (st *Station) CurrentSlot(video int) int {
	sh := st.shards[st.videos[video].shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.videos[video].sched.CurrentSlot()
}

// NextLoads fills dst (grown as needed) with each video's scheduled
// instance count for its next transmission slot — the quantity admission
// control gates on — taking each shard's lock once. It returns dst.
func (st *Station) NextLoads(dst []int) []int {
	if cap(dst) < len(st.videos) {
		dst = make([]int, len(st.videos))
	}
	dst = dst[:len(st.videos)]
	for _, sh := range st.shards {
		sh.mu.Lock()
		for _, v := range sh.videos {
			sched := st.videos[v].sched
			dst[v] = sched.LoadAt(sched.CurrentSlot() + 1)
		}
		sh.mu.Unlock()
	}
	return dst
}

// VideoTotals reports the video's admitted request and scheduled instance
// counts.
func (st *Station) VideoTotals(video int) (requests, instances int64) {
	sh := st.shards[st.videos[video].shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sched := st.videos[video].sched
	return sched.Requests(), sched.Instances()
}

// Totals reports the station-wide admitted request and scheduled instance
// counts.
func (st *Station) Totals() (requests, instances int64) {
	for _, sh := range st.shards {
		sh.mu.Lock()
		for _, v := range sh.videos {
			sched := st.videos[v].sched
			requests += sched.Requests()
			instances += sched.Instances()
		}
		sh.mu.Unlock()
	}
	return requests, instances
}

// Pending reports how many admissions are batched in the shard's queue.
func (st *Station) Pending(shard int) int {
	sh := st.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.pending)
}

// StartClock launches the single clock goroutine: every interval it fans an
// AdvanceSlot tick out to all shards and, when onTick is non-nil, hands the
// slot reports to onTick (on the clock goroutine; onTick must not call
// StopClock or Close).
func (st *Station) StartClock(interval time.Duration, onTick func([]core.SlotReport)) error {
	if interval <= 0 {
		return fmt.Errorf("%w: got %v", ErrBadSlotDuration, interval)
	}
	if st.closed.Load() {
		return ErrClosed
	}
	st.clockMu.Lock()
	defer st.clockMu.Unlock()
	if st.clockStop != nil {
		return ErrClockRunning
	}
	stop := make(chan struct{})
	st.clockStop = stop
	st.clockWG.Add(1)
	go func() {
		defer st.clockWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				reports := st.AdvanceSlot()
				if onTick != nil {
					onTick(reports)
				}
			}
		}
	}()
	return nil
}

// StopClock stops the clock goroutine and waits for it to exit (including
// any in-flight onTick). It is a no-op when no clock is running.
func (st *Station) StopClock() {
	st.clockMu.Lock()
	stop := st.clockStop
	st.clockStop = nil
	st.clockMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	st.clockWG.Wait()
}

// Close stops the clock and marks the station closed: subsequent Admit and
// Enqueue calls fail with ErrClosed. It is safe to call more than once.
func (st *Station) Close() {
	st.closed.Store(true)
	st.StopClock()
}
