package fanout

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetDifferentialVsMap drives the copy-on-write set and a plain
// map-based reference through the same randomized op sequence and holds the
// two to identical membership after every step — the same executable-spec
// discipline the encoder's differential test uses.
func TestSetDifferentialVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := NewSet[int]()
	ref := make(map[int]bool)
	live := make([]int, 0, 64)
	next := 0
	for op := 0; op < 4000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) != 0:
			x := next
			next++
			if !set.Add(x) {
				t.Fatalf("op %d: Add(%d) failed on open set", op, x)
			}
			ref[x] = true
			live = append(live, x)
		default:
			i := rng.Intn(len(live))
			x := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !set.Remove(x) {
				t.Fatalf("op %d: Remove(%d) missed a present element", op, x)
			}
			delete(ref, x)
			// A second remove of the same element must miss.
			if set.Remove(x) {
				t.Fatalf("op %d: Remove(%d) succeeded twice", op, x)
			}
		}
		snap := set.Snapshot()
		if len(snap) != len(ref) {
			t.Fatalf("op %d: snapshot has %d elements, reference %d", op, len(snap), len(ref))
		}
		for _, x := range snap {
			if !ref[x] {
				t.Fatalf("op %d: snapshot carries %d, absent from reference", op, x)
			}
		}
		if set.Len() != len(ref) {
			t.Fatalf("op %d: Len %d, want %d", op, set.Len(), len(ref))
		}
	}
}

// TestSetSnapshotIsolation pins the copy-on-write property the lock-free
// fan-out read side depends on: a snapshot taken before a mutation is
// never modified by it.
func TestSetSnapshotIsolation(t *testing.T) {
	set := NewSet[int]()
	for i := 0; i < 4; i++ {
		set.Add(i)
	}
	before := set.Snapshot()
	saved := append([]int(nil), before...)
	set.Add(99)
	set.Remove(1)
	set.Remove(2)
	if len(before) != len(saved) {
		t.Fatalf("held snapshot resized from %d to %d", len(saved), len(before))
	}
	for i := range saved {
		if before[i] != saved[i] {
			t.Fatalf("held snapshot element %d mutated: %d -> %d", i, saved[i], before[i])
		}
	}
	if got := set.Len(); got != 3 {
		t.Fatalf("post-mutation Len = %d, want 3", got)
	}
}

func TestSetCloseSemantics(t *testing.T) {
	set := NewSet[string]()
	set.Add("a")
	set.Add("b")
	final := set.Close()
	if len(final) != 2 {
		t.Fatalf("Close returned %d elements, want 2", len(final))
	}
	if set.Add("c") {
		t.Fatal("Add succeeded on closed set")
	}
	if set.Len() != 0 {
		t.Fatalf("closed set Len = %d, want 0", set.Len())
	}
	if set.Remove("a") {
		t.Fatal("Remove found an element after Close drained the set")
	}
	if again := set.Close(); again != nil {
		t.Fatalf("second Close returned %d elements, want none", len(again))
	}
}

// TestSetConcurrentChurn races adders, removers and lock-free snapshot
// readers — the shape of admits, disconnects and the parallel tick — and
// then proves exactly-once removal accounting: every element is won by
// exactly one remover or surfaced exactly once by Close.
func TestSetConcurrentChurn(t *testing.T) {
	const (
		adders   = 4
		perAdder = 300
	)
	set := NewSet[int]()
	var (
		wg      sync.WaitGroup // adders and removers
		readers sync.WaitGroup // snapshot spinners, stopped after the churn
		removed atomic.Int64
		stop    = make(chan struct{})
	)
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				x := base*perAdder + i
				if !set.Add(x) {
					return
				}
				// Half the elements get a racing remover: both it and the
				// final Close may try to win x, only one may.
				if i%2 == 0 {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if set.Remove(x) {
							removed.Add(1)
						}
					}()
				}
			}
		}(a)
	}
	// Snapshot readers spin lock-free against the churn; the race detector
	// is the real assertion here.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, x := range set.Snapshot() {
					_ = x
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	final := set.Close()
	total := int64(len(final)) + removed.Load()
	if want := int64(adders * perAdder); total != want {
		t.Fatalf("accounting: %d closed + %d removed = %d, want %d",
			len(final), removed.Load(), total, want)
	}
	seen := make(map[int]bool, len(final))
	for _, x := range final {
		if seen[x] {
			t.Fatalf("element %d surfaced twice by Close", x)
		}
		seen[x] = true
	}
}

func TestWorkersCoverSpansExactlyOnce(t *testing.T) {
	spans := [][2]int{{0, 3}, {3, 7}, {7, 8}}
	hits := make([]atomic.Int64, 8)
	var ticks atomic.Int64
	w := NewWorkers(spans, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
		ticks.Add(1)
	})
	defer w.Close()
	if w.Count() != 3 {
		t.Fatalf("Count = %d, want 3", w.Count())
	}
	const rounds = 50
	for r := 1; r <= rounds; r++ {
		w.Tick()
		for i := range hits {
			if got := hits[i].Load(); got != int64(r) {
				t.Fatalf("after tick %d index %d covered %d times", r, i, got)
			}
		}
	}
	if got := ticks.Load(); got != rounds*int64(len(spans)) {
		t.Fatalf("span executions = %d, want %d", got, rounds*len(spans))
	}
	w.Close() // idempotent
}

func TestWorkersEmpty(t *testing.T) {
	w := NewWorkers(nil, func(int, int, int) { t.Error("run invoked with no spans") })
	w.Tick()
	w.Close()
}

// TestWorkersParallelSetChurn combines the two new types the way the server
// does: workers push shared frames into per-video COW subscriber sets while
// an admin goroutine churns membership — meant for the -race and -cpu 4 CI
// lanes.
func TestWorkersParallelSetChurn(t *testing.T) {
	enc, _ := catalogues(t)
	const videos = 8
	sets := make([]*Set[*Ring], videos)
	for i := range sets {
		sets[i] = NewSet[*Ring]()
	}
	spans := [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}
	var slot atomic.Int64
	var scratches [4][]*Frame
	w := NewWorkers(spans, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			f, err := enc.EncodeSlot(1, int(slot.Load()), []int{1, 2}, nil)
			if err != nil {
				panic(err)
			}
			// One snapshot serves push and drain: a ring added between two
			// separate snapshots would be empty and block PopAll forever.
			snap := sets[i].Snapshot()
			for _, r := range snap {
				f.Retain()
				if _, ok := r.Push(f); !ok {
					f.Release()
				}
			}
			f.Release()
			// Drain this span's rings inline so refcounts settle per tick:
			// every pushed ring has a frame queued (or was dropped), so the
			// blocking PopAll returns immediately.
			for _, r := range snap {
				var frames []*Frame
				frames, _ = r.PopAll(scratches[worker][:0])
				for _, g := range frames {
					g.Release()
				}
				scratches[worker] = frames
			}
		}
	})
	defer w.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 400; i++ {
			v := rng.Intn(videos)
			if rng.Intn(2) == 0 {
				sets[v].Add(NewRing(4))
			} else if snap := sets[v].Snapshot(); len(snap) > 0 {
				if sets[v].Remove(snap[0]) {
					snap[0].Drop()
				}
			}
		}
	}()
	for tick := 0; tick < 200; tick++ {
		slot.Store(int64(tick))
		w.Tick()
	}
	<-done
	for _, s := range sets {
		for _, r := range s.Close() {
			r.Drop()
		}
	}
}
