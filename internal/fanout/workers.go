package fanout

import "sync"

// Workers is the bounded fan-out worker pool: a fixed set of persistent
// goroutines, one per catalogue span, that a clock goroutine wakes once per
// slot tick. Each worker runs the caller's span function over its half-open
// index range [lo, hi) and the clock's Tick call returns only when every
// span has finished — the clock dispatches and joins, nothing more, so the
// tick's service time becomes the slowest span instead of the whole
// catalogue.
//
// The pool is allocation-free per tick (one channel send per worker plus a
// WaitGroup join) and the goroutines are reused across ticks, so arming it
// costs nothing on the steady-state broadcast path. Tick must only be
// called from one goroutine at a time (the station clock), and never after
// or concurrently with Close.
type Workers struct {
	spans [][2]int
	wake  []chan struct{}
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once
}

// NewWorkers starts one persistent goroutine per span; spans are half-open
// [lo, hi) index ranges (typically a near-equal contiguous partition of the
// catalogue, e.g. station.FanoutSpans). run is invoked as run(worker, lo,
// hi) on that worker's goroutine every Tick; it must confine itself to its
// span so workers never contend. Passing no spans yields a pool whose Tick
// is a no-op.
func NewWorkers(spans [][2]int, run func(worker, lo, hi int)) *Workers {
	w := &Workers{
		spans: spans,
		wake:  make([]chan struct{}, len(spans)),
		stop:  make(chan struct{}),
	}
	for i, span := range spans {
		ch := make(chan struct{}, 1)
		w.wake[i] = ch
		go func(worker, lo, hi int) {
			for {
				select {
				case <-w.stop:
					return
				case <-ch:
					run(worker, lo, hi)
					w.wg.Done()
				}
			}
		}(i, span[0], span[1])
	}
	return w
}

// Count reports the number of workers (= spans).
func (w *Workers) Count() int { return len(w.spans) }

// Tick wakes every worker and blocks until all spans complete. It performs
// no allocations.
func (w *Workers) Tick() {
	w.wg.Add(len(w.wake))
	for _, ch := range w.wake {
		ch <- struct{}{}
	}
	w.wg.Wait()
}

// Close terminates the worker goroutines. Idempotent; must not race a Tick.
func (w *Workers) Close() {
	w.once.Do(func() { close(w.stop) })
}
