// Command vodserver runs the networked DHB video server: it admits customer
// requests over TCP, schedules segment transmissions with the DHB protocol
// in real time and broadcasts deterministic segment payloads to every
// subscriber.
//
// Usage:
//
//	vodserver -addr 127.0.0.1:4800 -videos 3 -segments 99 -slot-ms 500
//
// then point cmd/vodclient at it. The server prints its statistics once a
// second and exits cleanly on interrupt.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"vodcast/internal/vodserver"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:4800", "TCP listen address")
		videos       = flag.Int("videos", 1, "number of videos in the catalogue (ids 1..n)")
		segments     = flag.Int("segments", 99, "segments per video")
		slotMillis   = flag.Int("slot-ms", 500, "slot duration in milliseconds")
		segmentBytes = flag.Int("segment-bytes", 4096, "payload bytes per segment")
		shards       = flag.Int("shards", 0, "station worker shards (0 = one per CPU, capped at the catalogue size)")
		statsAddr    = flag.String("stats-addr", "", "optional HTTP monitoring address serving /statsz, /healthz, /metricsz, /tracez and /debug/pprof")
		tracePath    = flag.String("trace", "", "optional JSONL file capturing every scheduler event")
	)
	flag.Parse()
	if err := run(*addr, *statsAddr, *tracePath, *videos, *segments, *slotMillis, *segmentBytes, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "vodserver:", err)
		os.Exit(1)
	}
}

func run(addr, statsAddr, tracePath string, videos, segments, slotMillis, segmentBytes, shards int) error {
	if videos <= 0 {
		return fmt.Errorf("video count %d must be positive", videos)
	}
	catalogue := make([]vodserver.VideoConfig, videos)
	for i := range catalogue {
		catalogue[i] = vodserver.VideoConfig{
			ID:           uint32(i + 1),
			Segments:     segments,
			SegmentBytes: segmentBytes,
		}
	}
	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		traceFile = f
		defer traceFile.Close()
	}
	cfg := vodserver.Config{
		Addr:         addr,
		Videos:       catalogue,
		SlotDuration: time.Duration(slotMillis) * time.Millisecond,
		Shards:       shards,
		StatsAddr:    statsAddr,
	}
	if traceFile != nil {
		cfg.TraceWriter = traceFile
	}
	srv, err := vodserver.Start(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("vodserver listening on %s (%d videos, %d segments, %d ms slots, %d shards)\n",
		srv.Addr(), videos, segments, slotMillis, srv.Station().Shards())
	if srv.StatsAddr() != "" {
		fmt.Printf("introspection on http://%s/{statsz,healthz,metricsz,tracez,debug/pprof}\n", srv.StatsAddr())
	}
	if tracePath != "" {
		fmt.Printf("tracing scheduler events to %s\n", tracePath)
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-interrupt:
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			st := srv.Stats()
			fmt.Printf("requests=%d instances=%d broadcastMB=%.1f subscribers=%d dropped=%d\n",
				st.Requests, st.Instances, float64(st.BroadcastBytes)/1e6,
				st.ActiveSubscribers, st.Dropped)
		}
	}
}
