package core

import (
	"testing"
)

// recordingObserver checks the callback invariants while counting events.
type recordingObserver struct {
	t          *testing.T
	admits     int
	resumes    int
	decisions  int
	newPlaced  int         // non-shared decisions since the last admit callback
	starts     map[int]int // slot -> instances started
	retires    []int       // retired slots in order
	lastRetire int
}

func newRecordingObserver(t *testing.T) *recordingObserver {
	return &recordingObserver{t: t, starts: make(map[int]int), lastRetire: -1}
}

func (r *recordingObserver) ObserveAdmit(slot, from, placed int) {
	r.t.Helper()
	if from > 1 {
		r.resumes++
	} else {
		r.admits++
	}
	if placed != r.newPlaced {
		r.t.Fatalf("admit at slot %d reported %d placed, observed %d new decisions", slot, placed, r.newPlaced)
	}
	r.newPlaced = 0
}

func (r *recordingObserver) ObserveDecision(reqSlot, segment, slot, windowLo, windowHi, load int, shared bool) {
	r.t.Helper()
	r.decisions++
	if windowLo != reqSlot+1 {
		r.t.Fatalf("segment %d window starts at %d, want %d", segment, windowLo, reqSlot+1)
	}
	if slot < windowLo || slot > windowHi {
		r.t.Fatalf("segment %d placed at %d outside window [%d, %d]", segment, slot, windowLo, windowHi)
	}
	if load < 1 {
		r.t.Fatalf("segment %d decision with load %d", segment, load)
	}
	if !shared {
		r.newPlaced++
		r.starts[slot]++
	}
}

func (r *recordingObserver) ObserveRetire(slot, load int, segments []int) {
	r.t.Helper()
	if slot <= r.lastRetire {
		r.t.Fatalf("retire of slot %d after slot %d: out of order", slot, r.lastRetire)
	}
	r.lastRetire = slot
	r.retires = append(r.retires, slot)
	if segments != nil && len(segments) != load {
		r.t.Fatalf("slot %d retired %d segments with load %d", slot, len(segments), load)
	}
	if got := r.starts[slot]; got != load {
		r.t.Fatalf("slot %d retired with load %d, observed %d instance starts", slot, load, got)
	}
}

// driveObserved runs a deterministic admission pattern through a scheduler.
func driveObserved(t *testing.T, cfg Config, slots int) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < slots; k++ {
		if k%2 == 0 {
			admit(s)
		}
		if k%5 == 3 {
			if _, err := admitFrom(s, 1+k%s.N()); err != nil {
				t.Fatal(err)
			}
		}
		s.AdvanceSlot()
	}
	// Drain so every observed instance start is matched by a retire.
	for k := 0; k < s.N()+1; k++ {
		s.AdvanceSlot()
	}
}

// TestObserverInvariants drives the plain and capped schedulers with an
// invariant-checking observer: windows honoured, placed counts consistent,
// retires in slot order, per-slot starts equal to the retired load.
func TestObserverInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"heuristic", Config{Segments: 12, TrackSegments: true}},
		{"naive", Config{Segments: 12, Policy: PolicyNaive, TrackSegments: true}},
		{"capped", Config{Segments: 12, MaxClientStreams: 2, TrackSegments: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := newRecordingObserver(t)
			tc.cfg.Observer = rec
			driveObserved(t, tc.cfg, 60)
			if rec.admits == 0 || rec.resumes == 0 || rec.decisions == 0 {
				t.Fatalf("observer missed events: %d admits, %d resumes, %d decisions",
					rec.admits, rec.resumes, rec.decisions)
			}
			if len(rec.retires) == 0 {
				t.Fatal("no retire callbacks")
			}
		})
	}
}

// TestObserverNilSafe: a nil observer must change nothing about scheduling.
func TestObserverNilSafe(t *testing.T) {
	run := func(obs Observer) []int {
		s, err := New(Config{Segments: 20, Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		var loads []int
		for k := 0; k < 100; k++ {
			if k%3 == 0 {
				admit(s)
			}
			loads = append(loads, s.AdvanceSlot().Load)
		}
		return loads
	}
	plain := run(nil)
	observed := run(newRecordingObserver(t))
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("slot %d: load %d with observer, %d without", i, observed[i], plain[i])
		}
	}
}

// noopObserver measures pure hook-dispatch overhead.
type noopObserver struct{}

func (noopObserver) ObserveAdmit(slot, from, placed int) {}
func (noopObserver) ObserveDecision(reqSlot, segment, slot, windowLo, windowHi, load int, shared bool) {
}
func (noopObserver) ObserveRetire(slot, load int, segments []int) {}

// benchScheduler drives the Figure 7 steady-state pattern: one arrival per
// slot at n = 99.
func benchScheduler(b *testing.B, obs Observer) {
	b.Helper()
	s, err := New(Config{Segments: 99, Observer: obs})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		admit(s)
		s.AdvanceSlot()
	}
}

// BenchmarkSchedulerObserverOff is the guard for the "<2% overhead when
// disabled" contract: compare against BenchmarkSchedulerObserverOn (noop
// observer) and against the pre-observability baseline via
//
//	make bench-obs
func BenchmarkSchedulerObserverOff(b *testing.B) { benchScheduler(b, nil) }

// BenchmarkSchedulerObserverOn measures hook dispatch with a no-op observer.
func BenchmarkSchedulerObserverOn(b *testing.B) { benchScheduler(b, noopObserver{}) }
