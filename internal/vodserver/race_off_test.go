//go:build !race

package vodserver

const raceEnabled = false
