package experiments

import (
	"math"
	"testing"

	"vodcast/internal/core"
	"vodcast/internal/dynamic"
	"vodcast/internal/sim"
	"vodcast/internal/workload"
)

func TestMeasureValidation(t *testing.T) {
	dhb, err := core.New(core.Config{Segments: 10})
	if err != nil {
		t.Fatal(err)
	}
	proto := AdaptDHB(dhb)
	if _, err := Measure(nil, 1, 1, 10, 0, 1); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Measure(proto, 0, 1, 10, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Measure(proto, 1, 0, 10, 0, 1); err == nil {
		t.Error("zero slot accepted")
	}
	if _, err := Measure(proto, 1, 1, 10, 10, 1); err == nil {
		t.Error("warmup >= horizon accepted")
	}
}

func TestMeasureAdapters(t *testing.T) {
	dhb, err := core.New(core.Config{Segments: 20})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(AdaptDHB(dhb), 50, 72.7, 3000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgBandwidth <= 0 || m.MaxBandwidth < m.AvgBandwidth || m.Slots != 2900 {
		t.Fatalf("bad measurement %+v", m)
	}
	ud, err := dynamic.UD(20)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := Measure(AdaptOnDemand(ud), 50, 72.7, 3000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mu.AvgBandwidth <= m.AvgBandwidth {
		t.Fatalf("UD avg %.2f should exceed DHB avg %.2f", mu.AvgBandwidth, m.AvgBandwidth)
	}
}

func TestReplayMatchesPoissonMeasure(t *testing.T) {
	// A replayed Poisson trace must land near a live Poisson run of the
	// same rate.
	rng := sim.NewRNG(81)
	proc := sim.NewPoissonProcess(rng, 50.0/3600)
	var times []float64
	horizon := 400 * 3600.0
	for {
		next := proc.Next()
		if next > horizon {
			break
		}
		times = append(times, next)
	}
	tr, err := workload.NewArrivalTrace(times)
	if err != nil {
		t.Fatal(err)
	}
	const d = 72.7
	dhb, err := core.New(core.Config{Segments: 99})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(AdaptDHB(dhb), tr, d, 99)
	if err != nil {
		t.Fatal(err)
	}
	dhb2, err := core.New(core.Config{Segments: 99})
	if err != nil {
		t.Fatal(err)
	}
	live, err := Measure(AdaptDHB(dhb2), 50, d, int(horizon/d), 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(replayed.AvgBandwidth-live.AvgBandwidth) > 0.25 {
		t.Fatalf("replayed %.2f vs live %.2f", replayed.AvgBandwidth, live.AvgBandwidth)
	}
}

func TestReplayDrainsEverything(t *testing.T) {
	tr, err := workload.NewArrivalTrace([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	dhb, err := core.New(core.Config{Segments: 12})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Replay(AdaptDHB(dhb), tr, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	// One isolated request transmits exactly its 12 segments.
	total := m.AvgBandwidth * float64(m.Slots) // mean * slot count = instances
	if math.Abs(total-12) > 1e-9 {
		t.Fatalf("replay transmitted %.2f instances, want 12", total)
	}
}

func TestReplayValidation(t *testing.T) {
	tr, err := workload.NewArrivalTrace([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	dhb, err := core.New(core.Config{Segments: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(nil, tr, 60, 0); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Replay(AdaptDHB(dhb), nil, 60, 0); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Replay(AdaptDHB(dhb), tr, 0, 0); err == nil {
		t.Error("zero slot accepted")
	}
	if _, err := Replay(AdaptDHB(dhb), tr, 60, -1); err == nil {
		t.Error("negative drain accepted")
	}
}
