package vodserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/vodclient"
)

// startObsServer runs a server with the monitoring endpoint bound and an
// optional JSONL trace sink, and fetches one video so every metric has data.
func startObsServer(t *testing.T, traceSink io.Writer) *Server {
	t.Helper()
	s, err := Start(Config{
		Addr:         "127.0.0.1:0",
		Videos:       []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration: 10 * time.Millisecond,
		StatsAddr:    "127.0.0.1:0",
		TraceWriter:  traceSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}
	return s
}

// get fetches a monitoring path and returns status and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.StatsAddr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestUnknownPathIs404: only the registered introspection paths answer;
// anything else — including sub-paths of /statsz — is a 404.
func TestUnknownPathIs404(t *testing.T) {
	s := startObsServer(t, nil)
	for _, path := range []string{"/", "/nope", "/statsz/extra", "/statszz", "/metricsz/sub"} {
		if code, _ := get(t, s, path); code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
}

// TestHealthz returns 200 with a positive uptime.
func TestHealthz(t *testing.T) {
	s := startObsServer(t, nil)
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	var h struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h.Status != "ok" || h.UptimeSeconds <= 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestMetricszExposition scrapes /metricsz and checks the exposition carries
// the server's families with consistent values.
func TestMetricszExposition(t *testing.T) {
	s := startObsServer(t, nil)
	code, body := get(t, s, "/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz status = %d", code)
	}
	for _, want := range []string{
		"# TYPE vod_requests_total counter",
		"vod_requests_total 1",
		`vod_channel_load{video="1"}`,
		"# TYPE vod_admit_first_byte_seconds histogram",
		`vod_admit_first_byte_seconds_bucket{le="+Inf"} 1`,
		"vod_admit_first_byte_seconds_count 1",
		"vod_uptime_seconds",
		"vod_active_subscribers",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, body)
		}
	}
	// One full viewing of 6 segments transmits 6 instances once drained;
	// the counter must agree with the JSON stats instance count.
	st := s.Stats()
	if !strings.Contains(body, "vod_instances_total") {
		t.Fatalf("metricsz missing instance counter:\n%s", body)
	}
	if st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTracezRecentEvents: the ring serves recent scheduler events, newest
// window selectable with ?n=.
func TestTracezRecentEvents(t *testing.T) {
	s := startObsServer(t, nil)
	code, body := get(t, s, "/tracez")
	if code != http.StatusOK {
		t.Fatalf("tracez status = %d", code)
	}
	var evs []obs.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("tracez body: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("tracez empty after a fetch")
	}
	types := make(map[string]int)
	for _, ev := range evs {
		types[ev.Type]++
	}
	if types[obs.EventAdmit] == 0 && types[obs.EventSlotRetire] == 0 {
		t.Fatalf("tracez lacks admit/slot_retire events: %v", types)
	}

	code, body = get(t, s, "/tracez?n=2")
	if code != http.StatusOK {
		t.Fatalf("tracez?n=2 status = %d", code)
	}
	evs = nil
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("tracez?n=2 returned %d events", len(evs))
	}
	if code, _ := get(t, s, "/tracez?n=-1"); code != http.StatusBadRequest {
		t.Fatalf("tracez?n=-1 status = %d, want 400", code)
	}
}

// TestPprofEndpoint: the standard profiling index answers.
func TestPprofEndpoint(t *testing.T) {
	s := startObsServer(t, nil)
	code, body := get(t, s, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index lacks profiles")
	}
}

// syncBuffer guards a bytes.Buffer: the trace sink is written from server
// goroutines while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerTraceSink: a TraceWriter receives the whole JSONL stream, every
// line decodable, rejects included.
func TestServerTraceSink(t *testing.T) {
	sink := &syncBuffer{}
	s := startObsServer(t, sink)
	// Provoke a reject as well.
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 99, Timeout: 2 * time.Second, StrictDeadlines: true}); err == nil {
		t.Fatal("unknown video accepted")
	}
	s.Close()

	var types = make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		types[ev.Type]++
	}
	if types[obs.EventAdmit] != 1 {
		t.Fatalf("want exactly 1 admit, got %v", types)
	}
	if types[obs.EventReject] != 1 {
		t.Fatalf("want exactly 1 reject, got %v", types)
	}
	if types[obs.EventInstanceStart] == 0 || types[obs.EventInstanceStop] == 0 {
		t.Fatalf("missing instance events: %v", types)
	}
	if types[obs.EventSlotDecision] == 0 || types[obs.EventSlotRetire] == 0 {
		t.Fatalf("missing decision/retire events: %v", types)
	}
}
