package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestWindowNilSafety: a nil window accepts everything and snapshots to
// zero.
func TestWindowNilSafety(t *testing.T) {
	var w *Window
	w.Observe(1)
	if err := w.SetSLO(1, 0.99); err != nil {
		t.Fatal(err)
	}
	if got := w.Snapshot(); got != (WindowSnapshot{}) {
		t.Fatalf("nil window snapshot = %+v", got)
	}
}

// TestWindowQuantiles checks exact quantiles on a known sample, before and
// after the ring wraps.
func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	s := w.Snapshot()
	if s.Count != 100 || s.Total != 100 {
		t.Fatalf("count=%d total=%d", s.Count, s.Total)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Max != 100 {
		t.Fatalf("quantiles p50=%v p95=%v p99=%v max=%v", s.P50, s.P95, s.P99, s.Max)
	}

	// Wrap: 50 more observations of 1000 displace the oldest 50.
	for i := 0; i < 50; i++ {
		w.Observe(1000)
	}
	s = w.Snapshot()
	if s.Count != 100 || s.Total != 150 {
		t.Fatalf("after wrap count=%d total=%d", s.Count, s.Total)
	}
	// Window now holds 51..100 and fifty 1000s; median is 100.
	if s.P50 != 100 || s.Max != 1000 {
		t.Fatalf("after wrap p50=%v max=%v", s.P50, s.Max)
	}
}

// TestWindowSLOBurn: burn rate is (bad fraction)/(error budget).
func TestWindowSLOBurn(t *testing.T) {
	w := NewWindow(0)
	if err := w.SetSLO(0.1, 0.99); err != nil {
		t.Fatal(err)
	}
	// 98 good, 2 bad: bad fraction 2%, budget 1% -> burn 2.0.
	for i := 0; i < 98; i++ {
		w.Observe(0.05)
	}
	w.Observe(0.2)
	w.Observe(0.3)
	s := w.Snapshot()
	if s.Good != 98 || s.Bad != 2 {
		t.Fatalf("good=%d bad=%d", s.Good, s.Bad)
	}
	if math.Abs(s.BurnRate-2.0) > 1e-9 {
		t.Fatalf("burn rate = %v, want 2.0", s.BurnRate)
	}
	if w.SetSLO(0, 0.99) == nil || w.SetSLO(1, 1) == nil || w.SetSLO(1, 0) == nil {
		t.Fatal("invalid SLO accepted")
	}
}

// TestWindowConcurrency: parallel observers plus snapshot readers, the
// -race proof for the tracker.
func TestWindowConcurrency(t *testing.T) {
	w := NewWindow(256)
	if err := w.SetSLO(0.5, 0.9); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(float64(i%10) / 10)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			w.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := w.Snapshot()
	if s.Total != 4000 || s.Good+s.Bad != 4000 {
		t.Fatalf("total=%d good+bad=%d, want 4000", s.Total, s.Good+s.Bad)
	}
	if s.Count != 256 {
		t.Fatalf("window count = %d, want 256", s.Count)
	}
}

// TestWindowMergeMatchesCombined: per-shard windows folded into a fresh
// aggregate yield the same quantiles, mean and counters as one window that
// observed every sample directly — the contract the load harness's
// per-worker shards rely on.
func TestWindowMergeMatchesCombined(t *testing.T) {
	const shards = 7
	combined := NewWindow(4096)
	parts := make([]*Window, shards)
	for i := range parts {
		parts[i] = NewWindow(4096)
	}
	// A deterministic, interleaved, skewed sample across the shards.
	v := 1.0
	for i := 0; i < 3000; i++ {
		v = math.Mod(v*1.618+float64(i%17), 97)
		parts[i%shards].Observe(v)
		combined.Observe(v)
	}
	agg := NewWindow(4096)
	for _, p := range parts {
		agg.Merge(p)
	}
	got, want := agg.Snapshot(), combined.Snapshot()
	if got.Count != want.Count || got.Total != want.Total {
		t.Fatalf("merged count=%d total=%d, want %d/%d", got.Count, got.Total, want.Count, want.Total)
	}
	for _, q := range []struct {
		name      string
		got, want float64
	}{
		{"p50", got.P50, want.P50}, {"p95", got.P95, want.P95},
		{"p99", got.P99, want.P99}, {"max", got.Max, want.Max},
		{"mean", got.Mean, want.Mean},
	} {
		if math.Abs(q.got-q.want) > 1e-9 {
			t.Fatalf("merged %s = %v, combined window has %v", q.name, q.got, q.want)
		}
	}
	// Merging again into a fresh aggregate must not have consumed the shards.
	agg2 := NewWindow(4096)
	for _, p := range parts {
		agg2.Merge(p)
	}
	if s := agg2.Snapshot(); s.Total != want.Total {
		t.Fatalf("second merge total = %d, want %d (Merge mutated its source?)", s.Total, want.Total)
	}
}

// TestWindowMergeSLOAndOverflow: SLO good/bad counters sum across shards,
// lifetime totals survive eviction, and a wrapped source merges oldest-first
// so the aggregate evicts like a single window would.
func TestWindowMergeSLOAndOverflow(t *testing.T) {
	a, b := NewWindow(8), NewWindow(8)
	for _, w := range []*Window{a, b} {
		if err := w.SetSLO(10, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ { // wraps: window keeps 5..12
		a.Observe(float64(i + 1))
	}
	b.Observe(100) // bad under the 10 threshold
	b.Observe(5)

	agg := NewWindow(8) // smaller than the combined sample: must keep newest
	agg.Merge(a)
	agg.Merge(b)
	s := agg.Snapshot()
	if s.Total != 14 || s.Good+s.Bad != 14 || s.Bad != 3 {
		t.Fatalf("merged total=%d good=%d bad=%d, want 14/11/3", s.Total, s.Good, s.Bad)
	}
	// The 8-slot aggregate holds a's newest 6 (7..12) after b's two evicted
	// the oldest two of 5..12: the max must be b's 100, the min surviving
	// sample 7.
	if s.Count != 8 || s.Max != 100 {
		t.Fatalf("merged count=%d max=%v, want 8/100", s.Count, s.Max)
	}

	// Nil and self merges are no-ops.
	var nilw *Window
	nilw.Merge(a)
	a.Merge(nil)
	before := a.Snapshot()
	a.Merge(a)
	if after := a.Snapshot(); after.Total != before.Total {
		t.Fatalf("self-merge changed total %d -> %d", before.Total, after.Total)
	}
}

// TestRegisterRuntime: the collector's gauges expose, carry valid names and
// plausible values.
func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	for _, name := range r.Names() {
		if !ValidMetricName(name) {
			t.Fatalf("runtime gauge %q invalid", name)
		}
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
		"go_gc_cycles_total", "go_gc_pause_total_seconds",
		"go_gc_last_pause_seconds", "go_next_gc_bytes",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Fatalf("missing runtime gauge %s in:\n%s", name, out)
		}
	}
	samples := parseExposition(t, out)
	if samples["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", samples["go_goroutines"])
	}
	if samples["go_heap_alloc_bytes"] <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v", samples["go_heap_alloc_bytes"])
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(4)
	if got := w.Snapshot().Mean; got != 0 {
		t.Fatalf("empty window mean = %v, want 0", got)
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.Observe(v)
	}
	if got := w.Snapshot().Mean; got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
	// Rolling: 1 falls out, 9 comes in -> (2+3+4+9)/4.
	w.Observe(9)
	if got := w.Snapshot().Mean; got != 4.5 {
		t.Fatalf("rolled mean = %v, want 4.5", got)
	}
}
