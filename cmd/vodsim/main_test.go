package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vodcast/internal/obs"
	"vodcast/internal/report"
)

// TestEveryExperimentRuns drives the CLI entry point through every
// experiment id in both output formats at quick scale.
func TestEveryExperimentRuns(t *testing.T) {
	ids := []string{
		"fig7", "fig8", "fig9", "ablation", "peaks", "vbrplan",
		"clientcap", "reactive", "dsb", "models", "wait", "capacity", "storage", "buffer",
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, id, false /* full */, false /* json */, false /* chart */, 1, "", 100); err != nil {
				t.Fatalf("text: %v", err)
			}
			if buf.Len() == 0 {
				t.Fatal("no text output")
			}
			buf.Reset()
			if err := run(&buf, id, false, true /* json */, false, 1, "", 100); err != nil {
				t.Fatalf("json: %v", err)
			}
			var tables []report.Table
			if err := json.Unmarshal(buf.Bytes(), &tables); err != nil {
				t.Fatalf("invalid JSON: %v", err)
			}
			if len(tables) == 0 || len(tables[0].Rows) == 0 {
				t.Fatal("empty JSON tables")
			}
		})
	}
}

// TestTraceExperiment drives the CLI trace path: the run reports its table
// and the JSONL file decodes line by line with a sane event mix.
func TestTraceExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	if err := run(&buf, "trace", false, false, false, 3, path, 150); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Traced DHB run") {
		t.Fatalf("missing trace table:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]int)
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		types[ev.Type]++
	}
	for _, want := range []string{
		obs.EventAdmit, obs.EventSlotDecision, obs.EventInstanceStart,
		obs.EventInstanceStop, obs.EventSlotRetire,
	} {
		if types[want] == 0 {
			t.Fatalf("trace lacks %q events: %v", want, types)
		}
	}
	if types[obs.EventInstanceStart] != types[obs.EventInstanceStop] {
		t.Fatalf("unbalanced instances: %v", types)
	}

	// Without -trace the experiment must refuse rather than run silently.
	if err := run(&buf, "trace", false, false, false, 3, "", 150); err == nil {
		t.Fatal("trace experiment without -trace accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", false, false, false, 1, "", 100); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig7TextShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig7", false, false, false, 1, "", 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 7", "tapping", "DHB", "NPB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "fig7", false, false, false, 7, "", 100); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "fig7", false, false, false, 7, "", 100); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestChartOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig7", false, false, true /* chart */, 1, "", 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 7 —", "x (log)", "tapping", "NPB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart output missing %q", want)
		}
	}
	// No chart defined for vbrplan: the flag must error rather than lie.
	if err := run(&buf, "vbrplan", false, false, true, 1, "", 100); err == nil {
		t.Fatal("chart for vbrplan accepted")
	}
}
