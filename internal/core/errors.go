package core

import "errors"

// Sentinel validation errors. New and AdmitRequest wrap these with context
// (the offending value, the valid range), so callers branch on the class with
// errors.Is while logs keep the detail:
//
//	if _, err := core.New(cfg); errors.Is(err, core.ErrBadSegmentCount) { ... }
var (
	// ErrBadSegmentCount reports a non-positive Config.Segments.
	ErrBadSegmentCount = errors.New("core: segment count must be positive")
	// ErrBadPeriods reports a period vector the scheduler cannot use (wrong
	// length, T[1] != 1, or a non-positive period).
	ErrBadPeriods = errors.New("core: invalid period vector")
	// ErrBadPolicy reports an unknown placement policy.
	ErrBadPolicy = errors.New("core: unknown placement policy")
	// ErrBadStartSlot reports a negative Config.StartSlot.
	ErrBadStartSlot = errors.New("core: start slot must be non-negative")
	// ErrBadClientCap reports an unusable Config.MaxClientStreams: a
	// negative cap, or a positive cap combined with a non-heuristic policy.
	ErrBadClientCap = errors.New("core: invalid client stream cap")
	// ErrBadResumePoint reports an AdmitOptions.From outside 1..n.
	ErrBadResumePoint = errors.New("core: resume segment out of range")
	// ErrBadBatchCount reports a non-positive AdmitBatch count.
	ErrBadBatchCount = errors.New("core: batch count must be positive")
)
