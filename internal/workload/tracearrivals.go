package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ArrivalTrace replays a recorded sequence of request timestamps — for
// example a production VOD request log — instead of drawing synthetic
// Poisson arrivals. Timestamps are seconds from the start of the trace.
type ArrivalTrace struct {
	times []float64
}

// NewArrivalTrace validates and wraps a timestamp series. Times must be
// non-negative; they are sorted if needed.
func NewArrivalTrace(times []float64) (*ArrivalTrace, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("workload: empty arrival trace")
	}
	own := make([]float64, len(times))
	copy(own, times)
	for i, t := range own {
		if t < 0 {
			return nil, fmt.Errorf("workload: arrival %d at negative time %v", i, t)
		}
	}
	sort.Float64s(own)
	return &ArrivalTrace{times: own}, nil
}

// ReadArrivalTrace parses one timestamp per line (blank lines and lines
// starting with '#' are skipped), the format WriteArrivalTrace emits.
func ReadArrivalTrace(r io.Reader) (*ArrivalTrace, error) {
	sc := bufio.NewScanner(r)
	var times []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		times = append(times, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: scan: %w", err)
	}
	return NewArrivalTrace(times)
}

// WriteArrivalTrace emits one timestamp per line.
func WriteArrivalTrace(w io.Writer, tr *ArrivalTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("# request arrival times in seconds\n"); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	for _, t := range tr.times {
		if _, err := fmt.Fprintf(bw, "%s\n", strconv.FormatFloat(t, 'f', -1, 64)); err != nil {
			return fmt.Errorf("workload: write: %w", err)
		}
	}
	return bw.Flush()
}

// Count reports the number of recorded arrivals (zero for a nil trace).
func (a *ArrivalTrace) Count() int {
	if a == nil {
		return 0
	}
	return len(a.times)
}

// Duration reports the time of the last arrival. A degenerate trace (nil,
// empty, or a zero-value ArrivalTrace that skipped the constructor) reports
// zero instead of panicking: downstream consumers divide by it and are
// expected to handle zero, not recover.
func (a *ArrivalTrace) Duration() float64 {
	if a == nil || len(a.times) == 0 {
		return 0
	}
	return a.times[len(a.times)-1]
}

// MeanRatePerHour reports the trace's empirical arrival rate. Degenerate
// traces — empty, or single-point/simultaneous ones whose duration is zero —
// report zero: there is no interval to define a rate over.
func (a *ArrivalTrace) MeanRatePerHour() float64 {
	d := a.Duration()
	if d == 0 {
		return 0
	}
	return float64(len(a.times)) / d * 3600
}

// Slotted converts the trace into per-slot arrival counts for a slotted
// protocol simulation with the given slot duration.
func (a *ArrivalTrace) Slotted(slotSeconds float64) ([]int, error) {
	if slotSeconds <= 0 {
		return nil, fmt.Errorf("workload: slot duration %v must be positive", slotSeconds)
	}
	slots := int(a.Duration()/slotSeconds) + 1
	counts := make([]int, slots)
	for _, t := range a.times {
		counts[int(t/slotSeconds)]++
	}
	return counts, nil
}
