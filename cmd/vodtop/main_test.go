package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/station"
	"vodcast/internal/vodclient"
	"vodcast/internal/vodserver"
)

// TestRenderFrame drives render with a synthetic snapshot and checks every
// dashboard section appears with the right units.
func TestRenderFrame(t *testing.T) {
	snap := vodserver.StatusSnapshot{
		UptimeSeconds: 12.5,
		Stats:         vodserver.Stats{Requests: 42, Instances: 7, BroadcastBytes: 3_500_000, ActiveSubscribers: 3, Dropped: 1},
		Station: station.Status{
			Videos: 2,
			Shards: []station.ShardStatus{
				{Shard: 0, Videos: 1, Pending: 2, QueueCap: 256, Admits: 30, Rejects: 4},
				{Shard: 1, Videos: 1, Pending: 0, QueueCap: 256, Admits: 12, Rejects: 0},
			},
			Stages: map[string]obs.WindowSnapshot{
				"lock_wait":   {Count: 42, P50: 0.000004, P95: 0.00002, P99: 0.00005, Max: 0.0001},
				"admit":       {Count: 42, P50: 0.0012, P95: 0.004, P99: 0.009, Max: 0.02},
				"queue_depth": {Count: 10, P50: 3, P95: 8, P99: 9, Max: 9},
			},
			Clock: station.ClockStatus{
				Running: true, IntervalSeconds: 0.5, Ticks: 25,
				LagSeconds: 0.001, DriftSlots: 0.002,
				Lag: obs.WindowSnapshot{Count: 25, P95: 0.0015},
			},
		},
		FirstByte: obs.WindowSnapshot{
			Count: 42, P50: 0.003, P95: 0.008, P99: 0.012, Max: 0.02,
			SLOThreshold: 0.01, SLOObjective: 0.99, Good: 40, Bad: 2, BurnRate: 4.76,
		},
		Fanout: obs.WindowSnapshot{Count: 25, P50: 0.0001, P95: 0.0004, P99: 0.0006, Max: 0.001},
		Spans:  obs.SpanStats{Roots: 42, Sampled: 6, Finished: 18, SampleEvery: 8},
	}
	var b strings.Builder
	render(&b, "127.0.0.1:4900", snap)
	out := b.String()
	for _, want := range []string{
		"vodtop — 127.0.0.1:4900",
		"requests=42 instances=7 broadcast=3.5MB subscribers=3 dropped=1",
		"clock: running  slot=500.00ms  ticks=25",
		"drift=0.002 slots",
		"(p95 lag 1.50ms)",
		"spans: 42 roots, 6 sampled (1 in 8), 18 finished",
		"target<=10.00ms @ 99.0%",
		"good=40 bad=2  burn=4.76",
		"lock_wait", "admit", "queue_depth", "fanout", "first_byte",
		"SHARD", "REJECTS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	// The sub-millisecond stage renders in microseconds; queue depth stays
	// a bare request count.
	if !strings.Contains(out, "4µs") {
		t.Fatalf("lock_wait not rendered in µs:\n%s", out)
	}
	// Shard rows carry the admit/reject counters.
	if !strings.Contains(out, "30") || !strings.Contains(out, "4") {
		t.Fatalf("shard counters missing:\n%s", out)
	}
}

// TestOnceAgainstLiveServer is the acceptance path: a real vodserver, one
// fetched video, then run(..., once=true) renders a populated frame from
// the live /statusz endpoint and returns.
func TestOnceAgainstLiveServer(t *testing.T) {
	s, err := vodserver.Start(vodserver.Config{
		Addr:            "127.0.0.1:0",
		Videos:          []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		SpanSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := vodclient.Fetch(s.Addr(), 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := run(&b, s.StatsAddr(), time.Second, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "\x1b[2J") {
		t.Fatalf("-once frame must not clear the screen:\n%q", out)
	}
	for _, want := range []string{"requests=1", "clock: running", "lock_wait", "SHARD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("live frame missing %q:\n%s", want, out)
		}
	}

	// A dead endpoint is an error, not a hang or a zero frame.
	if err := run(&b, "127.0.0.1:1", time.Second, true); err == nil {
		t.Fatal("run against dead endpoint succeeded")
	}
	// A non-statusz HTTP server yields a decode/status error.
	if _, err := fetch(&http.Client{Timeout: time.Second}, "0.0.0.0:0"); err == nil {
		t.Fatal("fetch from invalid address succeeded")
	}
	// And a non-positive interval is rejected up front.
	if err := run(&b, s.StatsAddr(), 0, true); err == nil {
		t.Fatal("run accepted zero interval")
	}
}
