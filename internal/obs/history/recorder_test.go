package history

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vodcast/internal/obs"
)

// newTestRecorder wires a recorder over a populated store in a temp dir.
func newTestRecorder(t *testing.T, cfg RecorderConfig) (*Recorder, *manualClock) {
	t.Helper()
	clk := newManualClock()
	cfg.Dir = t.TempDir()
	cfg.Clock = clk.Now
	r, err := NewRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, clk
}

// populatedStore returns a store with a few scrapes of two series on the
// given clock.
func populatedStore(t *testing.T, clk *manualClock) *Store {
	t.Helper()
	reg := obs.NewRegistry()
	g := reg.Gauge("vod_qoe_miss_rate", "")
	c := reg.Counter("vod_requests_total", "")
	s := New(Config{Samples: reg.Samples, Interval: time.Second, Clock: clk.Now})
	for i := 0; i < 5; i++ {
		g.Set(float64(i) / 10)
		c.Add(1)
		s.Scrape()
		clk.Advance(time.Second)
	}
	return s
}

func TestRecorderBundleContents(t *testing.T) {
	clk := newManualClock()
	store := populatedStore(t, clk)
	dir := t.TempDir()
	r, err := NewRecorder(RecorderConfig{
		Dir:   dir,
		Clock: clk.Now,
		Store: store,
		Status: func() ([]byte, error) {
			return []byte(`{"uptime_seconds": 5}`), nil
		},
		Spans: func() []obs.SpanRecord {
			return []obs.SpanRecord{{Name: "admit"}}
		},
		Alerts: func() []obs.AlertStatus {
			return []obs.AlertStatus{{Name: "miss_rate_high", State: obs.StateFiring}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	path, ok := r.Trigger("alert_miss_rate_high")
	if !ok {
		t.Fatal("Trigger refused the first capture")
	}
	if !strings.Contains(filepath.Base(path), "alert_miss_rate_high") {
		t.Fatalf("bundle name missing reason: %s", path)
	}

	// Every expected file is present and well-formed.
	var meta bundleMeta
	decodeFile(t, filepath.Join(path, "meta.json"), &meta)
	if meta.Reason != "alert_miss_rate_high" {
		t.Fatalf("meta reason = %q", meta.Reason)
	}
	if meta.StoreStats == nil || meta.StoreStats.Series != 2 {
		t.Fatalf("meta store stats = %+v", meta.StoreStats)
	}
	for _, f := range []string{"history.jsonl", "spans.jsonl", "status.json", "alerts.json", "goroutine.pprof", "heap.pprof", "meta.json"} {
		if _, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}

	// history.jsonl: one line per series, points present, miss-rate ramp
	// recorded.
	lines := readJSONL(t, filepath.Join(path, "history.jsonl"))
	if len(lines) != 2 {
		t.Fatalf("history.jsonl has %d lines, want 2", len(lines))
	}
	var miss *historyLine
	for i := range lines {
		if lines[i].Series == "vod_qoe_miss_rate" {
			miss = &lines[i]
		}
	}
	if miss == nil || len(miss.Points) != 5 {
		t.Fatalf("miss-rate history wrong: %+v", lines)
	}
	if miss.Points[0].Value != 0 || miss.Points[4].Value != 0.4 {
		t.Fatalf("miss-rate ramp not recorded: %+v", miss.Points)
	}

	var alerts []obs.AlertStatus
	decodeFile(t, filepath.Join(path, "alerts.json"), &alerts)
	if len(alerts) != 1 || alerts[0].State != obs.StateFiring {
		t.Fatalf("alerts.json wrong: %+v", alerts)
	}

	// pprof profiles written with debug=0 are binary protos; just require
	// non-empty.
	for _, f := range []string{"goroutine.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(path, f))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s empty or missing: %v", f, err)
		}
	}

	// No .tmp directory left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp dir leaked: %s", e.Name())
		}
	}
}

func TestRecorderCooldown(t *testing.T) {
	r, clk := newTestRecorder(t, RecorderConfig{Cooldown: time.Minute})

	if _, ok := r.Trigger("first"); !ok {
		t.Fatal("first trigger refused")
	}
	if _, ok := r.Trigger("second"); ok {
		t.Fatal("second trigger inside cooldown captured")
	}
	clk.Advance(59 * time.Second)
	if _, ok := r.Trigger("third"); ok {
		t.Fatal("trigger at cooldown-1s captured")
	}
	clk.Advance(time.Second)
	if _, ok := r.Trigger("fourth"); !ok {
		t.Fatal("trigger after cooldown refused")
	}

	st := r.Stats()
	if st.Captured != 2 || st.Skipped != 2 {
		t.Fatalf("stats = %+v, want captured=2 skipped=2", st)
	}

	// Force bypasses the cooldown and re-arms it.
	if _, err := r.Force("operator"); err != nil {
		t.Fatalf("Force failed: %v", err)
	}
	if _, ok := r.Trigger("fifth"); ok {
		t.Fatal("trigger right after Force captured (cooldown not re-armed)")
	}
	if got := len(r.Bundles()); got != 3 {
		t.Fatalf("Bundles() = %d, want 3", got)
	}
}

func TestRecorderRetention(t *testing.T) {
	r, clk := newTestRecorder(t, RecorderConfig{Keep: 3, Cooldown: time.Millisecond})
	for i := 0; i < 6; i++ {
		if _, err := r.Force("sweep"); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	names := r.Bundles()
	if len(names) != 3 {
		t.Fatalf("retention kept %d bundles, want 3: %v", len(names), names)
	}
	// Oldest-first naming: the survivors are the three most recent.
	if !strings.Contains(names[0], "000003") && !strings.Contains(names[0], "00:00:03") {
		// Timestamps are 2026-01-01T00:00:03..05 — format 20060102T150405.
		if !strings.Contains(names[0], "T000003") {
			t.Fatalf("oldest survivor wrong: %v", names)
		}
	}
}

func TestRecorderNilAndValidation(t *testing.T) {
	var r *Recorder
	if _, ok := r.Trigger("x"); ok {
		t.Fatal("nil recorder captured")
	}
	if _, err := r.Force("x"); err == nil {
		t.Fatal("nil recorder Force returned no error")
	}
	if r.Bundles() != nil {
		t.Fatal("nil recorder listed bundles")
	}
	if r.Stats() != (RecorderStats{}) {
		t.Fatal("nil recorder stats non-zero")
	}
	if _, err := NewRecorder(RecorderConfig{}); err == nil {
		t.Fatal("NewRecorder without Dir did not error")
	}
}

func TestSanitizeReason(t *testing.T) {
	cases := map[string]string{
		"":                      "manual",
		"alert_miss_rate_high":  "alert_miss_rate_high",
		"sig/quit ?":            "sig_quit__",
		strings.Repeat("a", 99): strings.Repeat("a", 48),
	}
	for in, want := range cases {
		if got := sanitizeReason(in); got != want {
			t.Fatalf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

// decodeFile unmarshals one JSON file into v.
func decodeFile(t *testing.T, path string, v any) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}

// readJSONL decodes every line of a history JSONL file.
func readJSONL(t *testing.T, path string) []historyLine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []historyLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var line historyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	return out
}
