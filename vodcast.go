// Package vodcast is a from-scratch Go implementation of the Dynamic
// Heuristic Broadcasting (DHB) protocol for video-on-demand (Carter, Pâris,
// Mohan, Long — ICDCS 2001), together with every protocol and substrate its
// evaluation depends on: fast broadcasting, pagoda/NPB and skyscraper
// mappings, the universal distribution protocol, stream tapping/patching,
// batching, selective catching, a discrete-event simulator, a VBR-video
// substrate with work-ahead smoothing, and a multi-video server.
//
// This file is the public facade: it re-exports the pieces a downstream user
// needs without reaching into internal packages. The three entry points most
// users want:
//
//   - NewDHB builds the paper's scheduler (DHBConfig selects segment count,
//     period vector and placement policy).
//   - Measure drives any slotted protocol under Poisson load and reports its
//     average/maximum bandwidth.
//   - PlanVBR turns a variable-bit-rate trace into the four Section 4
//     distribution plans (DHB-a through DHB-d).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package vodcast

import (
	"time"

	"vodcast/internal/analysis"
	"vodcast/internal/broadcast"
	"vodcast/internal/core"
	"vodcast/internal/dynamic"
	"vodcast/internal/experiments"
	"vodcast/internal/reactive"
	"vodcast/internal/server"
	"vodcast/internal/storage"
	"vodcast/internal/trace"
	"vodcast/internal/vodclient"
	"vodcast/internal/vodserver"
	"vodcast/internal/wire"
	"vodcast/internal/workload"
)

// ---- The DHB protocol (the paper's contribution) ----

// DHBConfig parameterizes a DHB scheduler; see NewDHB.
type DHBConfig = core.Config

// DHB is the dynamic heuristic broadcasting scheduler of Figure 6.
type DHB = core.Scheduler

// SlotReport describes one transmitted slot of a DHB schedule.
type SlotReport = core.SlotReport

// Policy selects the placement rule of a DHB scheduler.
type Policy = core.Policy

// Placement policies: the published min-load heuristic, the naive
// latest-slot strawman it improves on, and the earliest-tie-break ablation.
const (
	PolicyHeuristic       = core.PolicyHeuristic
	PolicyNaive           = core.PolicyNaive
	PolicyMinLoadEarliest = core.PolicyMinLoadEarliest
)

// NewDHB builds a DHB scheduler.
func NewDHB(cfg DHBConfig) (*DHB, error) { return core.New(cfg) }

// ---- Compressed (VBR) video support: Section 4 ----

// VBRVariant identifies one of the DHB-a .. DHB-d solutions.
type VBRVariant = core.VBRVariant

// The four Section 4 solutions.
const (
	VariantA = core.VariantA
	VariantB = core.VariantB
	VariantC = core.VariantC
	VariantD = core.VariantD
)

// VBRSolution is a ready-to-schedule plan for one VBR video.
type VBRSolution = core.VBRSolution

// PlanVBR derives the four Section 4 plans for distributing the traced video
// with the given maximum waiting time in seconds.
func PlanVBR(tr *Trace, maxWaitSeconds float64) (map[VBRVariant]VBRSolution, error) {
	return core.PlanVBR(tr, maxWaitSeconds)
}

// ---- VBR traces ----

// Trace is a per-second bit-rate series of a compressed video.
type Trace = trace.Trace

// NewTrace builds a trace from a per-second byte series.
func NewTrace(rates []float64) (*Trace, error) { return trace.New(rates) }

// CBRTrace returns a constant-bit-rate trace.
func CBRTrace(seconds int, rate float64) (*Trace, error) { return trace.CBR(seconds, rate) }

// SyntheticMatrix generates the seeded synthetic trace calibrated to the
// published statistics of the paper's movie (8170 s, 636 KB/s mean,
// 951 KB/s peak).
func SyntheticMatrix(seed int64) (*Trace, error) { return trace.SyntheticMatrix(seed) }

// ---- Static broadcasting protocols (related work) ----

// Mapping is a static segment-to-stream broadcast schedule.
type Mapping = broadcast.Mapping

// FastBroadcast builds Juhn and Tseng's FB mapping (Figure 1).
func FastBroadcast(n int) (*Mapping, error) { return broadcast.FastBroadcast(n) }

// Skyscraper builds Hua and Sheu's SB mapping (Figure 3).
func Skyscraper(n int) (*Mapping, error) { return broadcast.Skyscraper(n) }

// Pagoda builds the pagoda-family mapping standing in for NPB (Figure 2).
func Pagoda(n int) (*Mapping, error) { return broadcast.Pagoda(n) }

// NPBFigure2 returns the canonical three-stream NPB mapping of Figure 2.
func NPBFigure2() (*Mapping, error) { return broadcast.NPBFigure2() }

// ---- Dynamic (on-demand) broadcasting protocols ----

// OnDemand is a dynamic broadcasting protocol over a static mapping.
type OnDemand = dynamic.OnDemand

// NewUD builds the universal distribution protocol for n segments.
func NewUD(n int) (*OnDemand, error) { return dynamic.UD(n) }

// NewDynamicPagoda builds the on-demand pagoda protocol of Section 3's
// ablation.
func NewDynamicPagoda(n int) (*OnDemand, error) { return dynamic.DynamicPagoda(n) }

// NewDSB builds Eager and Vernon's dynamic skyscraper broadcasting.
func NewDSB(n int) (*OnDemand, error) { return dynamic.DSB(n) }

// ---- Reactive protocols ----

// ReactiveConfig parameterizes a reactive-protocol simulation.
type ReactiveConfig = reactive.Config

// ReactiveResult summarizes a reactive-protocol run.
type ReactiveResult = reactive.Result

// Tapping simulates stream tapping / patching with unlimited client buffers.
func Tapping(cfg ReactiveConfig) (ReactiveResult, error) { return reactive.Tapping(cfg) }

// HMSM simulates Eager and Vernon's hierarchical multicast stream merging.
func HMSM(cfg ReactiveConfig) (ReactiveResult, error) { return reactive.HMSM(cfg) }

// Piggybacking simulates adaptive piggybacking with the given display-rate
// alteration (classically 0.05).
func Piggybacking(cfg ReactiveConfig, delta float64) (ReactiveResult, error) {
	return reactive.Piggybacking(cfg, delta)
}

// Batching simulates request batching with the given window.
func Batching(cfg ReactiveConfig, windowSeconds float64) (ReactiveResult, error) {
	return reactive.Batching(cfg, windowSeconds)
}

// SelectiveCatching simulates the hybrid of dedicated staggered broadcasts
// plus shared catch-up streams.
func SelectiveCatching(cfg ReactiveConfig, channels int) (ReactiveResult, error) {
	return reactive.SelectiveCatching(cfg, channels)
}

// MergingLowerBound is the ln(1 + lambda D) bound on any zero-delay reactive
// protocol's average bandwidth.
func MergingLowerBound(ratePerHour, videoSeconds float64) float64 {
	return reactive.MergingLowerBound(ratePerHour, videoSeconds)
}

// ---- Measurement and experiments ----

// Slotted is any slotted protocol Measure can drive.
type Slotted = experiments.Slotted

// Measurement summarizes a Measure run.
type Measurement = experiments.Measurement

// AdaptDHB exposes a DHB scheduler through the Slotted interface.
func AdaptDHB(s *DHB) Slotted { return experiments.AdaptDHB(s) }

// AdaptOnDemand exposes a dynamic protocol through the Slotted interface.
func AdaptOnDemand(o *OnDemand) Slotted { return experiments.AdaptOnDemand(o) }

// Measure drives a slotted protocol under constant Poisson arrivals.
func Measure(proto Slotted, ratePerHour, slotSeconds float64, horizonSlots, warmupSlots int, seed int64) (Measurement, error) {
	return experiments.Measure(proto, ratePerHour, slotSeconds, horizonSlots, warmupSlots, seed)
}

// ArrivalTrace is a recorded request-timestamp series (e.g. a production
// log) that Replay can feed to any slotted protocol.
type ArrivalTrace = workload.ArrivalTrace

// NewArrivalTrace wraps a timestamp series (seconds from trace start).
func NewArrivalTrace(times []float64) (*ArrivalTrace, error) {
	return workload.NewArrivalTrace(times)
}

// Replay drives a slotted protocol with a recorded arrival trace.
func Replay(proto Slotted, arrivals *ArrivalTrace, slotSeconds float64, drainSlots int) (Measurement, error) {
	return experiments.Replay(proto, arrivals, slotSeconds, drainSlots)
}

// SweepConfig parameterizes the Figures 7-8 reproduction.
type SweepConfig = experiments.Config

// SweepRow is one rate's measurements in a sweep.
type SweepRow = experiments.SweepRow

// DefaultSweepConfig reproduces the paper's setup at publication quality;
// QuickSweepConfig is the reduced variant for smoke tests.
func DefaultSweepConfig() SweepConfig { return experiments.DefaultConfig() }

// QuickSweepConfig returns the reduced sweep setup.
func QuickSweepConfig() SweepConfig { return experiments.QuickConfig() }

// Sweep runs the Figures 7-8 experiment.
func Sweep(cfg SweepConfig) ([]SweepRow, error) { return experiments.Sweep(cfg) }

// VBRSweepConfig parameterizes the Figure 9 reproduction.
type VBRSweepConfig = experiments.VBRConfig

// Fig9Row is one rate's measurements in the Figure 9 sweep.
type Fig9Row = experiments.Fig9Row

// DefaultVBRSweepConfig reproduces the paper's Figure 9 setup.
func DefaultVBRSweepConfig() VBRSweepConfig { return experiments.DefaultVBRConfig() }

// QuickVBRSweepConfig returns the reduced Figure 9 setup.
func QuickVBRSweepConfig() VBRSweepConfig { return experiments.QuickVBRConfig() }

// Fig9 runs the compressed-video experiment.
func Fig9(cfg VBRSweepConfig) ([]Fig9Row, map[VBRVariant]VBRSolution, error) {
	return experiments.Fig9(cfg)
}

// PeaksResult compares naive and heuristic placement under saturation.
type PeaksResult = experiments.PeaksResult

// Peaks runs Section 3's peak-bandwidth comparison.
func Peaks(segments, horizonSlots int) (PeaksResult, error) {
	return experiments.Peaks(segments, horizonSlots)
}

// ClientCapRow is one rate's measurements in the client-bandwidth sweep.
type ClientCapRow = experiments.ClientCapRow

// ClientCap sweeps the Section 5 client-bandwidth-limited DHB variants.
func ClientCap(cfg SweepConfig) ([]ClientCapRow, error) { return experiments.ClientCap(cfg) }

// ReactiveZooRow is one rate's measurements in the reactive-protocol sweep.
type ReactiveZooRow = experiments.ReactiveZooRow

// ReactiveZoo sweeps every reactive protocol in the repository.
func ReactiveZoo(cfg SweepConfig) ([]ReactiveZooRow, error) { return experiments.ReactiveZoo(cfg) }

// WaitTradeoffRow relates segment count, waiting-time guarantee and DHB
// bandwidth.
type WaitTradeoffRow = experiments.WaitTradeoffRow

// WaitTradeoff sweeps the segment count at cfg.Rates[0].
func WaitTradeoff(cfg SweepConfig, segmentCounts []int) ([]WaitTradeoffRow, error) {
	return experiments.WaitTradeoff(cfg, segmentCounts)
}

// CapacityRow describes one channel-pool size under deferral admission
// control.
type CapacityRow = experiments.CapacityRow

// CapacityConfig parameterizes the provisioning study.
type CapacityConfig = experiments.CapacityConfig

// DefaultCapacityConfig returns the reference provisioning setup.
func DefaultCapacityConfig() CapacityConfig { return experiments.DefaultCapacityConfig() }

// Capacity sweeps channel-pool sizes with deferral admission control.
func Capacity(cfg CapacityConfig, pools []float64) ([]CapacityRow, error) {
	return experiments.Capacity(cfg, pools)
}

// BufferRow reports STB buffer occupancy per protocol at one rate.
type BufferRow = experiments.BufferRow

// BufferStudy measures client buffer needs for DHB and UD.
func BufferStudy(cfg SweepConfig) ([]BufferRow, error) { return experiments.BufferStudy(cfg) }

// CIRow is one rate's replicate means with confidence half-widths.
type CIRow = experiments.CIRow

// ConfidenceSweep repeats the Figure 7 measurement with independent seeds
// and reports 95% confidence intervals.
func ConfidenceSweep(cfg SweepConfig, replicates int) ([]CIRow, error) {
	return experiments.ConfidenceSweep(cfg, replicates)
}

// DSBRow is one rate's measurements in the DSB comparison.
type DSBRow = experiments.DSBRow

// DSBComparison sweeps dynamic skyscraper broadcasting against UD and DHB.
func DSBComparison(cfg SweepConfig) ([]DSBRow, error) { return experiments.DSBComparison(cfg) }

// ---- Multi-video server ----

// ServerConfig parameterizes a multi-video DHB server simulation.
type ServerConfig = server.Config

// VideoSpec describes one catalogue entry of a server.
type VideoSpec = server.VideoSpec

// ServerReport summarizes a server run.
type ServerReport = server.Report

// Server is a configured multi-video simulation.
type Server = server.Server

// NewServer validates cfg and prepares the per-video schedulers.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ---- The networked system ----

// ServeConfig parameterizes the networked DHB video server.
type ServeConfig = vodserver.Config

// ServeVideo describes one servable video of the networked server.
type ServeVideo = vodserver.VideoConfig

// ServeStats is a snapshot of the networked server's counters.
type ServeStats = vodserver.Stats

// VODServer is a running networked DHB server.
type VODServer = vodserver.Server

// StartServer binds and runs the networked DHB server.
func StartServer(cfg ServeConfig) (*VODServer, error) { return vodserver.Start(cfg) }

// NewVBRVideo turns a Section 4 plan into a servable video.
func NewVBRVideo(id uint32, tr *Trace, plan VBRSolution, scale float64) (ServeVideo, error) {
	return vodserver.NewVBRVideo(id, tr, plan, scale)
}

// FetchResult describes one completed client session.
type FetchResult = vodclient.Result

// Fetch requests a video from a running server, verifying every byte and
// every delivery deadline.
func Fetch(addr string, videoID uint32, timeout time.Duration) (FetchResult, error) {
	return vodclient.Fetch(addr, videoID, timeout)
}

// FetchFrom is Fetch for an interactive customer resuming at a segment.
func FetchFrom(addr string, videoID, from uint32, timeout time.Duration) (FetchResult, error) {
	return vodclient.FetchFrom(addr, videoID, from, timeout)
}

// SegmentPayloadForBench exposes the deterministic payload generator of the
// data plane for benchmarking and external verification tools.
func SegmentPayloadForBench(videoID, segment, size uint32) []byte {
	return wire.SegmentPayload(videoID, segment, size)
}

// ---- Storage provisioning ----

// Disk models one drive of the server's striped array.
type Disk = storage.Disk

// DiskSchedule is a recorded transmission plan for disk evaluation.
type DiskSchedule = storage.Schedule

// DiskRead identifies one segment read.
type DiskRead = storage.Read

// DiskReport describes how a schedule runs on a striped array.
type DiskReport = storage.Report

// CommodityDisk2001 returns era-typical drive parameters.
func CommodityDisk2001() Disk { return storage.CommodityDisk2001() }

// DisksNeeded reports the smallest striped array serving the schedule.
func DisksNeeded(d Disk, s DiskSchedule, maxDisks int) (int, error) {
	return storage.DisksNeeded(d, s, maxDisks)
}

// EvaluateDisks runs a schedule on an array of the given size.
func EvaluateDisks(d Disk, s DiskSchedule, disks int) (DiskReport, error) {
	return storage.Evaluate(d, s, disks)
}

// StorageRow compares disk provisioning across scheduling policies.
type StorageRow = experiments.StorageRow

// StorageConfig parameterizes the disk-provisioning study.
type StorageConfig = experiments.StorageConfig

// DefaultStorageConfig returns the reference disk study setup.
func DefaultStorageConfig() StorageConfig { return experiments.DefaultStorageConfig() }

// StorageStudy records each policy's schedule and sizes its disk array.
func StorageStudy(cfg StorageConfig) ([]StorageRow, error) { return experiments.Storage(cfg) }

// ---- Closed-form performance models ----

// ModelOnDemandMean predicts the average load of an on-demand protocol over
// a static mapping at the given Poisson rate.
func ModelOnDemandMean(m *Mapping, ratePerHour, slotSeconds float64) (float64, error) {
	return analysis.OnDemandMean(m, ratePerHour, slotSeconds)
}

// ModelDHBMean predicts DHB's average load with the renewal model.
func ModelDHBMean(periods []int, ratePerHour, slotSeconds float64) (float64, error) {
	return analysis.DHBMean(periods, ratePerHour, slotSeconds)
}

// ModelDHBSaturated returns DHB's saturation bandwidth, sum of 1/T[s].
func ModelDHBSaturated(periods []int) (float64, error) {
	return analysis.DHBSaturated(periods)
}

// ModelPatchingMean returns optimal threshold patching's bandwidth,
// sqrt(1 + 2 lambda D) - 1.
func ModelPatchingMean(ratePerHour, videoSeconds float64) (float64, error) {
	return analysis.PatchingMean(ratePerHour, videoSeconds)
}

// HarmonicBandwidth returns H(n), the bandwidth of harmonic broadcasting
// and DHB's saturation level for CBR video.
func HarmonicBandwidth(n int) (float64, error) { return analysis.HarmonicBandwidth(n) }

// ---- Workload shaping ----

// RateFunc reports an instantaneous arrival rate (requests/second) at a
// simulated instant.
type RateFunc = workload.RateFunc

// ConstantRate returns a fixed hourly request rate.
func ConstantRate(requestsPerHour float64) RateFunc { return workload.Constant(requestsPerHour) }

// DayNightRate returns a 24-hour-periodic rate peaking at peakHour.
func DayNightRate(peakPerHour, offPeakPerHour, peakHour float64) RateFunc {
	return workload.DayNight(peakPerHour, offPeakPerHour, peakHour)
}
