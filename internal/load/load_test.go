package load

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vodcast/internal/analysis"
	"vodcast/internal/obs"
)

func TestProfiles(t *testing.T) {
	ramp, err := RampProfile(120, 3, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ramp) != 3 {
		t.Fatalf("ramp steps = %d, want 3", len(ramp))
	}
	want := []int{40, 80, 120}
	var total time.Duration
	for i, st := range ramp {
		if st.Sessions != want[i] {
			t.Fatalf("ramp[%d] = %d sessions, want %d", i, st.Sessions, want[i])
		}
		if i > 0 && st.Sessions <= ramp[i-1].Sessions {
			t.Fatalf("ramp not monotone at step %d", i)
		}
		total += st.Duration
	}
	if total != 3*time.Second {
		t.Fatalf("ramp total = %v, want 3s", total)
	}

	// More steps than sessions collapses to one step per session.
	tiny, err := RampProfile(2, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) != 2 || tiny[1].Sessions != 2 {
		t.Fatalf("tiny ramp = %+v", tiny)
	}

	soak, err := SoakProfile(50, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(soak) != 1 || soak[0].Sessions != 50 || soak[0].Duration != 10*time.Second {
		t.Fatalf("soak = %+v", soak)
	}

	spike, err := SpikeProfile(10, 100, 9*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(spike) != 3 {
		t.Fatalf("spike steps = %d, want 3", len(spike))
	}
	if spike[0].Sessions != 10 || spike[1].Sessions != 100 || spike[2].Sessions != 10 {
		t.Fatalf("spike shape = %+v", spike)
	}
	if spike[1].Name != "spike" || spike[2].Name != "recover" {
		t.Fatalf("spike names = %q %q", spike[1].Name, spike[2].Name)
	}

	bad := []func() ([]Step, error){
		func() ([]Step, error) { return RampProfile(0, 3, time.Second) },
		func() ([]Step, error) { return RampProfile(10, 0, time.Second) },
		func() ([]Step, error) { return RampProfile(10, 3, 0) },
		func() ([]Step, error) { return SoakProfile(0, time.Second) },
		func() ([]Step, error) { return SpikeProfile(10, 10, time.Second) },
		func() ([]Step, error) { return SpikeProfile(0, 10, time.Second) },
	}
	for i, f := range bad {
		if _, err := f(); err == nil {
			t.Fatalf("bad profile %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	ok := Config{
		Addr:    "127.0.0.1:1",
		Videos:  []uint32{1},
		Profile: []Step{{Name: "s", Sessions: 1, Duration: time.Second}},
	}
	if _, err := New(ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no addr", func(c *Config) { c.Addr = "" }},
		{"no videos", func(c *Config) { c.Videos = nil }},
		{"no profile", func(c *Config) { c.Profile = nil }},
		{"zero-session step", func(c *Config) { c.Profile = []Step{{Sessions: 0, Duration: time.Second}} }},
		{"zero-duration step", func(c *Config) { c.Profile = []Step{{Sessions: 1}} }},
		{"bad skew", func(c *Config) { c.ZipfSkew = -1 }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// testHarness returns a harness with an injected learned schedule, never
// dialed.
func testHarness(t *testing.T, g Gate) *Harness {
	t.Helper()
	h, err := New(Config{
		Addr:    "127.0.0.1:1",
		Videos:  []uint32{1},
		Profile: []Step{{Name: "s", Sessions: 1, Duration: time.Second}},
		Gate:    g,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.periods[1] = []int{0, 1, 2, 4} // T[1..3]; saturated = 1.75
	h.slotMillis = 10
	return h
}

func healthyStep() StepResult {
	return StepResult{
		Name:     "s",
		Sessions: 100,
		Startup:  obs.WindowSnapshot{Count: 100, P99: 1},
		Server: &ServerDelta{
			Requests: 100, Instances: 100, Slots: 200,
			PerVideo: []VideoDelta{{
				Video: 1, Requests: 100, Instances: 150, Slots: 200,
				Load: 0.75, RatePerHour: 3_600_000,
			}},
		},
	}
}

func TestGateHealthyStepPasses(t *testing.T) {
	h := testHarness(t, Gate{})
	res := healthyStep()
	h.gateStep(&res)
	if !res.Gated {
		t.Fatal("step not gated")
	}
	if !res.Pass {
		t.Fatalf("healthy step failed: %+v", res.Checks)
	}
	names := map[string]bool{}
	for _, c := range res.Checks {
		names[c.Name] = c.Pass
	}
	for _, want := range []string{"error_rate", "miss_rate", "startup_p99_slots",
		"bandwidth_saturated_video_1", "bandwidth_mean_video_1"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("check %q missing from %v", want, names)
		}
	}
	// The gate recorded the envelopes it compared against.
	v := res.Server.PerVideo[0]
	if math.Abs(v.Saturated-1.75) > 1e-12 {
		t.Fatalf("saturated = %v, want 1.75", v.Saturated)
	}
	// At mu = 10 arrivals/slot the renewal wait vanishes and the mean
	// envelope approaches saturation.
	mean, err := analysis.DHBMean([]int{0, 1, 2, 4}, 3_600_000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.MeanEnvelope-mean) > 1e-12 {
		t.Fatalf("mean envelope = %v, want %v", v.MeanEnvelope, mean)
	}
}

func TestGateFailsOverBandwidth(t *testing.T) {
	h := testHarness(t, Gate{})
	res := healthyStep()
	// 2.5 streams against a 1.75 ceiling: past saturation plus tolerance.
	res.Server.PerVideo[0].Load = 2.5
	h.gateStep(&res)
	if res.Pass {
		t.Fatal("over-saturated step passed")
	}
	for _, c := range res.Checks {
		if c.Name == "bandwidth_saturated_video_1" && c.Pass {
			t.Fatalf("saturated check passed at load 2.5: %+v", c)
		}
	}
}

func TestGateFailsOnMissesAndStartup(t *testing.T) {
	h := testHarness(t, Gate{})
	res := healthyStep()
	res.Misses = 50
	res.MissesPerSession = 0.5
	res.Startup.P99 = 9 // limit is T[1] + 1 = 2
	h.gateStep(&res)
	if res.Pass {
		t.Fatal("missing-deadline step passed")
	}
	failed := map[string]bool{}
	for _, c := range res.Checks {
		if !c.Pass {
			failed[c.Name] = true
		}
	}
	if !failed["miss_rate"] || !failed["startup_p99_slots"] {
		t.Fatalf("wrong checks failed: %v", failed)
	}
}

func TestGateSkipsSmallSamples(t *testing.T) {
	h := testHarness(t, Gate{})
	res := healthyStep()
	res.Sessions = 5 // below MinSessions
	res.MissesPerSession = 10
	h.gateStep(&res)
	if res.Gated || !res.Pass || len(res.Checks) != 0 {
		t.Fatalf("small step gated: %+v", res)
	}

	// Disabled gate never evaluates.
	h2 := testHarness(t, Gate{Disabled: true})
	res2 := healthyStep()
	res2.Server.PerVideo[0].Load = 99
	h2.gateStep(&res2)
	if res2.Gated || !res2.Pass {
		t.Fatalf("disabled gate evaluated: %+v", res2)
	}
}

func TestReportFinalize(t *testing.T) {
	r := &Report{Steps: []StepResult{
		{Name: "a", Pass: true},
		{Name: "b", Pass: false, Checks: []Check{
			{Name: "miss_rate", Measured: 0.5, Limit: 0.01, Pass: false, Detail: "50 misses"},
			{Name: "error_rate", Measured: 0, Limit: 0.01, Pass: true},
		}},
	}}
	r.finalize(false)
	if r.Pass {
		t.Fatal("report with a failed step passed")
	}
	if len(r.Failures) != 1 || !strings.Contains(r.Failures[0], "step b: miss_rate") {
		t.Fatalf("failures = %v", r.Failures)
	}

	ok := &Report{Steps: []StepResult{{Name: "a", Pass: true}}}
	ok.finalize(false)
	if !ok.Pass || len(ok.Failures) != 0 {
		t.Fatalf("clean report failed: %+v", ok)
	}

	interrupted := &Report{Steps: []StepResult{{Name: "a", Pass: true}}}
	interrupted.finalize(true)
	if interrupted.Pass || len(interrupted.Failures) != 1 {
		t.Fatalf("interrupted report passed: %+v", interrupted)
	}
}

// TestStatusPollerDelta: the poller turns two /statusz snapshots into
// per-video load and arrival-rate deltas.
func TestStatusPollerDelta(t *testing.T) {
	// The station row's video field is a 0-based index; the name carries the
	// wire ID the harness learned schedules under. A non-numeric name (a
	// foreign station layout) is skipped, not misattributed.
	snaps := []string{
		`{"stats":{"Requests":10,"Instances":20},
		  "station":{"per_video":[{"video":0,"name":"7","slot":100,"requests":10,"instances":20},
		                          {"video":1,"name":"trailer","slot":100,"requests":1,"instances":1}],
		             "clock":{"ticks":100}}}`,
		`{"stats":{"Requests":110,"Instances":220},
		  "station":{"per_video":[{"video":0,"name":"7","slot":300,"requests":110,"instances":220},
		                          {"video":1,"name":"trailer","slot":300,"requests":2,"instances":2}],
		             "clock":{"ticks":300}}}`,
	}
	i := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statusz" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(snaps[i]))
		if i < len(snaps)-1 {
			i++
		}
	}))
	defer srv.Close()

	p := newStatusPoller(strings.TrimPrefix(srv.URL, "http://"))
	before := p.sample()
	if before == nil {
		t.Fatal("first sample failed")
	}
	d := p.delta(before, 2.0)
	if d == nil {
		t.Fatal("delta failed")
	}
	if d.Requests != 100 || d.Instances != 200 || d.Slots != 200 {
		t.Fatalf("delta = %+v", d)
	}
	if len(d.PerVideo) != 1 {
		t.Fatalf("per-video = %+v (non-numeric names must be skipped)", d.PerVideo)
	}
	v := d.PerVideo[0]
	if v.Video != 7 {
		t.Fatalf("video = %d, want wire id 7 from the row name", v.Video)
	}
	if v.Load != 1.0 {
		t.Fatalf("load = %v, want 1.0 (200 instances / 200 slots)", v.Load)
	}
	if math.Abs(v.RatePerHour-180000) > 1e-9 {
		t.Fatalf("rate = %v, want 180000/h (100 requests / 2s)", v.RatePerHour)
	}

	// A nil poller (no stats address) degrades to nil samples and deltas.
	var none *statusPoller
	if none.sample() != nil || none.delta(before, 1) != nil {
		t.Fatal("nil poller returned data")
	}
	if newStatusPoller("") != nil {
		t.Fatal("empty address built a poller")
	}
}

// TestGateHistoryCrossCheck: the history cross-check compares the /queryz
// counter movement against the /statusz delta — agreement passes, a scrape
// pipeline reporting a different world fails, and sparse ranges are
// skipped rather than gated on noise.
func TestGateHistoryCrossCheck(t *testing.T) {
	findCheck := func(res StepResult) (Check, bool) {
		for _, c := range res.Checks {
			if c.Name == "history_requests_delta" {
				return c, true
			}
		}
		return Check{}, false
	}

	h := testHarness(t, Gate{})
	res := healthyStep()
	res.History = &HistoryDelta{Series: historySeries, Points: 8, Delta: 95}
	h.gateStep(&res)
	c, ok := findCheck(res)
	if !ok {
		t.Fatalf("cross-check missing: %+v", res.Checks)
	}
	// |95 - 100| = 5 against limit 0.3*100 + 10 = 40.
	if !c.Pass || c.Measured != 5 || c.Limit != 40 {
		t.Fatalf("agreeing history failed: %+v", c)
	}
	if res.History.StatuszDelta != 100 {
		t.Fatalf("statusz delta not recorded: %+v", res.History)
	}

	// History that disagrees beyond the tolerance trips the step.
	res = healthyStep()
	res.History = &HistoryDelta{Series: historySeries, Points: 8, Delta: 400}
	h.gateStep(&res)
	if c, ok := findCheck(res); !ok || c.Pass || res.Pass {
		t.Fatalf("disagreeing history passed: %+v", res.Checks)
	}

	// Too few points (a short CI smoke): skipped, not failed.
	res = healthyStep()
	res.History = &HistoryDelta{Series: historySeries, Points: 3, Delta: 0}
	h.gateStep(&res)
	if _, ok := findCheck(res); ok || !res.Pass {
		t.Fatalf("sparse history gated: %+v", res.Checks)
	}

	// No history at all (disabled server): the step gates on /statusz only.
	res = healthyStep()
	h.gateStep(&res)
	if _, ok := findCheck(res); ok || !res.Pass {
		t.Fatalf("absent history gated: %+v", res.Checks)
	}
}

// TestStatusPollerHistory: the poller turns one /queryz range into a
// HistoryDelta, and any failure — disabled history, an old server —
// degrades to nil.
func TestStatusPollerHistory(t *testing.T) {
	var gotSeries, gotFrom, gotTo string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/queryz" {
			http.NotFound(w, r)
			return
		}
		q := r.URL.Query()
		gotSeries, gotFrom, gotTo = q.Get("series"), q.Get("from"), q.Get("to")
		w.Write([]byte(`{"series":"vod_requests_total","points":[
			{"unix":10,"value":100},{"unix":11,"value":130},{"unix":12,"value":160}]}`))
	}))
	defer srv.Close()

	p := newStatusPoller(strings.TrimPrefix(srv.URL, "http://"))
	from := time.Unix(10, 0)
	to := time.Unix(12, 500_000_000)
	hd := p.history(from, to)
	if hd == nil {
		t.Fatal("history query failed")
	}
	if hd.Series != historySeries || hd.Points != 3 || hd.Delta != 60 {
		t.Fatalf("history delta = %+v", hd)
	}
	if gotSeries != historySeries || gotFrom != "10.000" || gotTo != "12.500" {
		t.Fatalf("query params = series %q from %q to %q", gotSeries, gotFrom, gotTo)
	}

	// A single point carries no delta but still reports its count.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"points":[{"unix":10,"value":100}]}`))
	}))
	defer srv2.Close()
	hd = newStatusPoller(strings.TrimPrefix(srv2.URL, "http://")).history(from, to)
	if hd == nil || hd.Points != 1 || hd.Delta != 0 {
		t.Fatalf("single-point history = %+v", hd)
	}

	// History disabled answers 503 → nil, like a server without /queryz.
	srv503 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "history disabled", http.StatusServiceUnavailable)
	}))
	defer srv503.Close()
	if hd := newStatusPoller(strings.TrimPrefix(srv503.URL, "http://")).history(from, to); hd != nil {
		t.Fatalf("503 produced history %+v", hd)
	}

	var none *statusPoller
	if none.history(from, to) != nil {
		t.Fatal("nil poller returned history")
	}
}

// TestGateConnBudgets: the transport checks budget the /connz histogram —
// present on a tracked sample, failing over either budget, skipped when the
// sample is missing or empty.
func TestGateConnBudgets(t *testing.T) {
	h := testHarness(t, Gate{})
	res := healthyStep()
	res.Conn = &ConnDelta{
		Tracked:      10,
		States:       map[string]int{"healthy": 10},
		StalledRatio: 0,
	}
	h.gateStep(&res)
	if !res.Pass {
		t.Fatalf("healthy transport failed: %+v", res.Checks)
	}
	names := map[string]bool{}
	for _, c := range res.Checks {
		names[c.Name] = true
	}
	if !names["conn_stalled_ratio"] || !names["conn_retrans_per_conn"] {
		t.Fatalf("conn checks missing: %v", names)
	}

	// A stall past the budget fails the step even when everything else is
	// green.
	res = healthyStep()
	res.Conn = &ConnDelta{
		Tracked:      10,
		States:       map[string]int{"healthy": 8, "stalled": 2},
		StalledRatio: 0.2,
	}
	h.gateStep(&res)
	if res.Pass {
		t.Fatal("stalled fleet passed the gate")
	}
	for _, c := range res.Checks {
		if c.Name == "conn_stalled_ratio" && c.Pass {
			t.Fatalf("stalled check passed at ratio 0.2: %+v", c)
		}
	}

	// Retransmit storms budget the same way.
	res = healthyStep()
	res.Conn = &ConnDelta{Tracked: 4, States: map[string]int{"path_limited": 4}, Retrans: 400, RetransPerConn: 100}
	h.gateStep(&res)
	if res.Pass {
		t.Fatal("retransmit storm passed the gate")
	}

	// Missing or empty samples skip the checks, not fail them.
	for _, cd := range []*ConnDelta{nil, {Tracked: 0}} {
		res = healthyStep()
		res.Conn = cd
		h.gateStep(&res)
		if !res.Pass {
			t.Fatalf("conn sample %+v failed the step", cd)
		}
		for _, c := range res.Checks {
			if strings.HasPrefix(c.Name, "conn_") {
				t.Fatalf("conn check emitted without a tracked sample: %+v", c)
			}
		}
	}
}

// TestGateFailsWithoutServerDelta pins the verdict path when /statusz was
// never polled: client-side failures must still fail the step.
func TestGateFailsWithoutServerDelta(t *testing.T) {
	h := testHarness(t, Gate{})
	res := healthyStep()
	res.Server = nil
	res.Misses = 50
	res.MissesPerSession = 0.5
	h.gateStep(&res)
	if res.Pass {
		t.Fatal("missing-deadline step passed without a server delta")
	}
}

// TestStatusPollerConns: the poller turns one /connz document into a
// ConnDelta, and any failure — conntrack disabled, an old server — degrades
// to nil.
func TestStatusPollerConns(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/connz" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"tracked":3,
			"states":{"healthy":2,"stalled":1},
			"stalled_ratio":0.3333,
			"conns":[{"id":1,"retrans_total":2},{"id":2,"retrans_total":0},{"id":3,"retrans_total":4}]}`))
	}))
	defer srv.Close()

	cd := newStatusPoller(strings.TrimPrefix(srv.URL, "http://")).conns()
	if cd == nil {
		t.Fatal("connz sample failed")
	}
	if cd.Tracked != 3 || cd.States["stalled"] != 1 || cd.StalledRatio != 0.3333 {
		t.Fatalf("conn delta = %+v", cd)
	}
	if cd.Retrans != 6 || cd.RetransPerConn != 2 {
		t.Fatalf("retrans aggregate = %+v", cd)
	}

	// Conntrack disabled answers 503 → nil, like a server without /connz.
	srv503 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "conntrack disabled", http.StatusServiceUnavailable)
	}))
	defer srv503.Close()
	if cd := newStatusPoller(strings.TrimPrefix(srv503.URL, "http://")).conns(); cd != nil {
		t.Fatalf("503 produced conn delta %+v", cd)
	}

	var none *statusPoller
	if none.conns() != nil {
		t.Fatal("nil poller returned a conn delta")
	}
}

// TestStepResultJSON: the JSONL record round-trips with stable field names
// — the contract vodtop and BENCH_load.json consumers parse.
func TestStepResultJSON(t *testing.T) {
	res := healthyStep()
	res.Checks = []Check{{Name: "error_rate", Pass: true}}
	res.Gated, res.Pass = true, true
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"name"`, `"sessions_per_core"`, `"admits_per_sec"`,
		`"startup_slots"`, `"pool_wait_seconds"`, `"server"`, `"checks"`, `"pass"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("step JSON missing %s: %s", key, b)
		}
	}
	var back StepResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sessions != res.Sessions || back.Server.PerVideo[0].Load != 0.75 {
		t.Fatalf("round trip changed the record: %+v", back)
	}
}
