package experiments

import (
	"fmt"

	"vodcast/internal/analysis"
	"vodcast/internal/broadcast"
	"vodcast/internal/core"
	"vodcast/internal/dynamic"
	"vodcast/internal/metrics"
	"vodcast/internal/reactive"
	"vodcast/internal/video"
)

// ClientCapRow carries DHB's average bandwidth for one rate under different
// per-client concurrent-stream caps — the paper's Section 5 future-work
// question ("limit the client bandwidth to two or three data streams").
type ClientCapRow struct {
	RatePerHour float64
	Cap1        float64
	Cap2        float64
	Cap3        float64
	Unlimited   float64
}

// ClientCap sweeps the capped DHB variants alongside the unlimited protocol.
func ClientCap(cfg Config) ([]ClientCapRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]ClientCapRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		horizonSlots := int(hours * 3600 / d)
		seed := cfg.Seed + int64(i)*100
		row := ClientCapRow{RatePerHour: rate}
		for cap, dst := range map[int]*float64{
			1: &row.Cap1,
			2: &row.Cap2,
			3: &row.Cap3,
			0: &row.Unlimited,
		} {
			s, err := core.New(core.Config{Segments: cfg.Segments, MaxClientStreams: cap})
			if err != nil {
				return nil, fmt.Errorf("experiments: client cap %d: %w", cap, err)
			}
			avg, _ := runSlotted(dhbAdapter{s: s}, func() int { return s.AdvanceSlot().Load },
				seed+int64(cap), rate, d, horizonSlots, cfg.WarmupSlots)
			*dst = avg
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReactiveZooRow compares every reactive and hybrid protocol in the
// repository at one rate, next to the theoretical merging lower bound.
type ReactiveZooRow struct {
	RatePerHour  float64
	Tapping      float64
	HMSM         float64
	Piggyback    float64
	Batching     float64
	Catching     float64
	MergingBound float64
}

// ReactiveZoo sweeps the reactive protocols of the related work. Batching
// uses a ten-minute window; selective catching six dedicated channels;
// piggybacking the classic 5% rate alteration.
func ReactiveZoo(cfg Config) ([]ReactiveZooRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]ReactiveZooRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		seed := cfg.Seed + int64(i)*100
		rcfg := reactive.Config{
			RatePerHour:    rate,
			VideoSeconds:   cfg.VideoSeconds,
			HorizonSeconds: hours * 3600,
			WarmupSeconds:  float64(cfg.WarmupSlots) * d,
			Seed:           seed,
		}
		row := ReactiveZooRow{
			RatePerHour:  rate,
			MergingBound: reactive.MergingLowerBound(rate, cfg.VideoSeconds),
		}
		tap, err := reactive.Tapping(rcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: tapping: %w", err)
		}
		row.Tapping = tap.AvgBandwidth
		hm, err := reactive.HMSM(rcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: HMSM: %w", err)
		}
		row.HMSM = hm.AvgBandwidth
		pb, err := reactive.Piggybacking(rcfg, 0.05)
		if err != nil {
			return nil, fmt.Errorf("experiments: piggybacking: %w", err)
		}
		row.Piggyback = pb.AvgBandwidth
		bat, err := reactive.Batching(rcfg, 600)
		if err != nil {
			return nil, fmt.Errorf("experiments: batching: %w", err)
		}
		row.Batching = bat.AvgBandwidth
		sc, err := reactive.SelectiveCatching(rcfg, 6)
		if err != nil {
			return nil, fmt.Errorf("experiments: selective catching: %w", err)
		}
		row.Catching = sc.AvgBandwidth
		rows = append(rows, row)
	}
	return rows, nil
}

// WaitTradeoffRow relates the segment count to the waiting-time guarantee
// and the bandwidth DHB pays for it at one operating rate.
type WaitTradeoffRow struct {
	Segments    int
	MaxWaitSecs float64
	DHBAvg      float64
	DHBMax      float64
	// Saturation is the analytic ceiling sum(1/j) = H(n).
	Saturation float64
}

// WaitTradeoff sweeps the segment count at a fixed request rate: more
// segments shorten the guaranteed maximum wait (d = D/n) but raise the
// bandwidth, the provisioning trade every deployment must pick. The sweep
// uses cfg.Rates[0] as the operating rate.
func WaitTradeoff(cfg Config, segmentCounts []int) ([]WaitTradeoffRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(segmentCounts) == 0 {
		return nil, fmt.Errorf("experiments: empty segment-count sweep")
	}
	rate := cfg.Rates[0]
	hours := cfg.hoursFor(rate)
	rows := make([]WaitTradeoffRow, 0, len(segmentCounts))
	for i, n := range segmentCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: segment count %d must be positive", n)
		}
		d := cfg.VideoSeconds / float64(n)
		// Few, long slots: make sure the horizon comfortably covers both
		// the warm-up and a meaningful measurement window.
		horizonSlots := int(hours * 3600 / d)
		if min := 40 * n; horizonSlots < min {
			horizonSlots = min
		}
		warmup := effectiveWarmup(horizonSlots, cfg.WarmupSlots)
		s, err := core.New(core.Config{Segments: n})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		avg, max := runSlotted(dhbAdapter{s: s}, func() int { return s.AdvanceSlot().Load },
			cfg.Seed+int64(i)*100, rate, d, horizonSlots, warmup)
		sat, err := analysis.DHBSaturated(video.DefaultPeriods(n))
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		rows = append(rows, WaitTradeoffRow{
			Segments:    n,
			MaxWaitSecs: d,
			DHBAvg:      avg,
			DHBMax:      max,
			Saturation:  sat,
		})
	}
	return rows, nil
}

// CIRow carries replicate means with 95% confidence half-widths for the
// three simulated Figure 7 protocols at one rate.
type CIRow struct {
	RatePerHour float64
	Replicates  int

	DHBMean     float64
	DHBHalf     float64
	UDMean      float64
	UDHalf      float64
	TappingMean float64
	TappingHalf float64
}

// ConfidenceSweep repeats the Figure 7 measurement `replicates` times with
// independent seeds and reports each protocol's mean average bandwidth with
// its 95% confidence half-width — the error bars the paper's plots omit.
func ConfidenceSweep(cfg Config, replicates int) ([]CIRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if replicates < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 replicates, got %d", replicates)
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]CIRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		horizonSlots := int(hours * 3600 / d)
		row := CIRow{RatePerHour: rate, Replicates: replicates}
		var dhbR, udR, tapR metrics.Replicates
		for rep := 0; rep < replicates; rep++ {
			seed := cfg.Seed + int64(i)*1000 + int64(rep)*7

			dhb, err := core.New(core.Config{Segments: cfg.Segments})
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			avg, _ := runSlotted(dhbAdapter{s: dhb}, func() int { return dhb.AdvanceSlot().Load },
				seed+1, rate, d, horizonSlots, cfg.WarmupSlots)
			dhbR.Add(avg)

			ud, err := dynamic.UD(cfg.Segments)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			avg, _ = runSlotted(ud, func() int { _, l := ud.AdvanceSlot(); return l },
				seed+2, rate, d, horizonSlots, cfg.WarmupSlots)
			udR.Add(avg)

			tap, err := reactive.Tapping(reactive.Config{
				RatePerHour:    rate,
				VideoSeconds:   cfg.VideoSeconds,
				HorizonSeconds: hours * 3600,
				WarmupSeconds:  float64(cfg.WarmupSlots) * d,
				Seed:           seed + 3,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			tapR.Add(tap.AvgBandwidth)
		}
		row.DHBMean, row.DHBHalf = dhbR.Mean(), dhbR.HalfWidth95()
		row.UDMean, row.UDHalf = udR.Mean(), udR.HalfWidth95()
		row.TappingMean, row.TappingHalf = tapR.Mean(), tapR.HalfWidth95()
		rows = append(rows, row)
	}
	return rows, nil
}

// ModelRow compares a protocol's simulated average bandwidth with its
// closed-form model at one rate.
type ModelRow struct {
	RatePerHour  float64
	DHBSim       float64
	DHBModel     float64
	UDSim        float64
	UDModel      float64
	TappingSim   float64
	TappingModel float64
}

// Models cross-validates the simulators against the closed-form performance
// models of internal/analysis.
func Models(cfg Config) ([]ModelRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	periods := video.DefaultPeriods(cfg.Segments)
	fb, err := broadcast.FastBroadcast(cfg.Segments)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	rows := make([]ModelRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		horizonSlots := int(hours * 3600 / d)
		seed := cfg.Seed + int64(i)*100
		row := ModelRow{RatePerHour: rate}

		if row.DHBModel, err = analysis.DHBMean(periods, rate, d); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if row.UDModel, err = analysis.OnDemandMean(fb, rate, d); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if row.TappingModel, err = analysis.PatchingMean(rate, cfg.VideoSeconds); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}

		dhb, err := core.New(core.Config{Segments: cfg.Segments})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		row.DHBSim, _ = runSlotted(dhbAdapter{s: dhb}, func() int { return dhb.AdvanceSlot().Load },
			seed+1, rate, d, horizonSlots, cfg.WarmupSlots)

		ud, err := dynamic.UD(cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		row.UDSim, _ = runSlotted(ud, func() int { _, l := ud.AdvanceSlot(); return l },
			seed+2, rate, d, horizonSlots, cfg.WarmupSlots)

		tap, err := reactive.Tapping(reactive.Config{
			RatePerHour:    rate,
			VideoSeconds:   cfg.VideoSeconds,
			HorizonSeconds: hours * 3600,
			WarmupSeconds:  float64(cfg.WarmupSlots) * d,
			Seed:           seed + 3,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		row.TappingSim = tap.AvgBandwidth

		rows = append(rows, row)
	}
	return rows, nil
}

// DSBRow extends the Section 3 ablation with dynamic skyscraper
// broadcasting, the earlier dynamic-static hybrid of the related work.
type DSBRow struct {
	RatePerHour float64
	DSB         float64
	UD          float64
	DHB         float64
}

// DSBComparison sweeps DSB against UD and DHB: the paper's related-work
// claim is that DSB "requires a higher server bandwidth than the UD
// protocol" because the skyscraper mapping packs fewer segments per stream.
func DSBComparison(cfg Config) ([]DSBRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]DSBRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		horizonSlots := int(hours * 3600 / d)
		seed := cfg.Seed + int64(i)*100
		row := DSBRow{RatePerHour: rate}

		dsb, err := dynamic.DSB(cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("experiments: DSB: %w", err)
		}
		row.DSB, _ = runSlotted(dsb, func() int { _, l := dsb.AdvanceSlot(); return l },
			seed+1, rate, d, horizonSlots, cfg.WarmupSlots)

		ud, err := dynamic.UD(cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("experiments: UD: %w", err)
		}
		row.UD, _ = runSlotted(ud, func() int { _, l := ud.AdvanceSlot(); return l },
			seed+2, rate, d, horizonSlots, cfg.WarmupSlots)

		dhb, err := core.New(core.Config{Segments: cfg.Segments})
		if err != nil {
			return nil, fmt.Errorf("experiments: DHB: %w", err)
		}
		row.DHB, _ = runSlotted(dhbAdapter{s: dhb}, func() int { return dhb.AdvanceSlot().Load },
			seed+3, rate, d, horizonSlots, cfg.WarmupSlots)

		rows = append(rows, row)
	}
	return rows, nil
}
