package core

import "fmt"

// This file is the scheduler's unified admission entry point. The historical
// surface grew one method per variant — Admit, AdmitTraced, AdmitFrom,
// AdmitFromTraced — which forced every new option into a combinatorial
// method family. AdmitRequest collapses them into one options/result pair;
// the old wrapper methods are gone (see DESIGN.md's API-compatibility note).

// AdmitOptions selects what one admission should do.
type AdmitOptions struct {
	// From is the first segment the customer consumes: 0 and 1 both mean a
	// full viewing; 2..n resumes interactive playback there (see resume.go).
	From int
	// WantAssignment requests the per-segment serving slots in
	// AdmitResult.Assignment. Without a reusable Assignment buffer it
	// allocates one []int per admission; large simulations leave it off.
	WantAssignment bool
	// Assignment optionally supplies a reusable buffer for the serving-slot
	// vector, implying WantAssignment. The buffer is grown when its capacity
	// is below n+1, resliced to exactly n+1, and returned in
	// AdmitResult.Assignment; reusing one buffer across admissions makes
	// the traced admit path allocation-free.
	Assignment []int
}

// AdmitResult describes one admitted request.
type AdmitResult struct {
	// Slot is the admission slot: the request's segments are served in the
	// window starting at Slot+1.
	Slot int
	// Placed is the number of new segment instances this request forced the
	// scheduler to transmit (segments covered by shared instances add
	// nothing).
	Placed int
	// Assignment, when requested, maps segment j to the slot whose instance
	// serves it (index 0 unused; entries below the resume point are zero).
	Assignment []int
}

// AdmitRequest processes one request arriving during the current slot. It is
// the single admission entry point: the resume point and the assignment
// trace are options rather than separate methods. The only error is a resume
// point outside 1..n, reported as ErrBadResumePoint.
func (s *Scheduler) AdmitRequest(opts AdmitOptions) (AdmitResult, error) {
	from := opts.From
	if from == 0 {
		from = 1
	}
	var assignment []int
	switch {
	case opts.Assignment != nil:
		assignment = opts.Assignment
		if cap(assignment) < s.n+1 {
			assignment = make([]int, s.n+1)
		}
		assignment = assignment[:s.n+1]
		// A fresh allocation arrives zeroed; a reused buffer must clear the
		// entries the admission will not write: index 0 and everything below
		// the resume point.
		clearTo := from
		if clearTo > s.n+1 {
			clearTo = s.n + 1
		}
		for k := 0; k < clearTo; k++ {
			assignment[k] = 0
		}
	case opts.WantAssignment:
		assignment = make([]int, s.n+1)
	}
	res := AdmitResult{Slot: s.current, Assignment: assignment}
	if from == 1 {
		res.Placed = s.admit(assignment)
		return res, nil
	}
	placed, err := s.admitFrom(from, assignment)
	if err != nil {
		return AdmitResult{}, err
	}
	res.Placed = placed
	return res, nil
}

// AdmitBatch admits count identical requests arriving during the current
// slot — the coalesced form of a same-slot duplicate burst. The first
// request runs the full placement loop; with no Observer attached and no
// client cap, every later one is an O(1) same-slot memo hit, so the batch
// costs one scheduler pass plus count-1 memo hits. The result reports the
// batch total in Placed and the final request's assignment (identical
// across the batch when sharing is unconstrained). A non-positive count is
// rejected with ErrBadBatchCount.
func (s *Scheduler) AdmitBatch(count int, opts AdmitOptions) (AdmitResult, error) {
	if count <= 0 {
		return AdmitResult{}, fmt.Errorf("%w: got %d", ErrBadBatchCount, count)
	}
	res, err := s.AdmitRequest(opts)
	if err != nil {
		return AdmitResult{}, err
	}
	placed := res.Placed
	for k := 1; k < count; k++ {
		// The first admission validated opts, so later ones cannot fail.
		r, _ := s.AdmitRequest(opts)
		placed += r.Placed
		res = r
	}
	res.Placed = placed
	return res, nil
}

// badResume builds the ErrBadResumePoint error shared by the admission
// paths.
func (s *Scheduler) badResume(from int) error {
	return fmt.Errorf("%w: segment %d outside 1..%d", ErrBadResumePoint, from, s.n)
}
