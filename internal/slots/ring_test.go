package slots

import (
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4, 0, false)
	if r.Base() != 0 || r.End() != 3 || r.Horizon() != 4 {
		t.Fatalf("window = [%d, %d] horizon %d", r.Base(), r.End(), r.Horizon())
	}
	r.Add(1, 5)
	r.Add(1, 6)
	r.Add(3, 7)
	if got := r.Load(1); got != 2 {
		t.Fatalf("Load(1) = %d, want 2", got)
	}
	if got := r.Load(0); got != 0 {
		t.Fatalf("Load(0) = %d, want 0", got)
	}
}

func TestRingRetireAdvancesWindow(t *testing.T) {
	r := NewRing(3, 0, false)
	r.Add(0, 1)
	r.Add(2, 2)
	abs, load, _ := r.Retire()
	if abs != 0 || load != 1 {
		t.Fatalf("Retire = (%d, %d), want (0, 1)", abs, load)
	}
	if r.Base() != 1 || r.End() != 3 {
		t.Fatalf("window = [%d, %d], want [1, 3]", r.Base(), r.End())
	}
	// The freshly exposed slot 3 must start empty.
	if got := r.Load(3); got != 0 {
		t.Fatalf("Load(3) = %d, want 0 (recycled slot not cleared)", got)
	}
	if got := r.Load(2); got != 1 {
		t.Fatalf("Load(2) = %d, want 1 (existing load lost)", got)
	}
}

func TestRingSegmentTracking(t *testing.T) {
	r := NewRing(3, 10, true)
	r.Add(11, 4)
	r.Add(11, 9)
	got := r.Segments(11)
	if len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("Segments(11) = %v, want [4 9]", got)
	}
	// Mutating the returned slice must not affect the ring.
	got[0] = 99
	if r.Segments(11)[0] != 4 {
		t.Fatal("Segments exposed internal state")
	}
}

func TestRingSegmentsUntracked(t *testing.T) {
	r := NewRing(3, 0, false)
	r.Add(0, 1)
	if r.Segments(0) != nil {
		t.Fatal("untracked ring should return nil segments")
	}
}

func TestRingRetireReturnsSegments(t *testing.T) {
	r := NewRing(2, 0, true)
	r.Add(0, 7)
	r.Add(0, 8)
	_, _, segs := r.Retire()
	if len(segs) != 2 || segs[0] != 7 || segs[1] != 8 {
		t.Fatalf("retired segs = %v, want [7 8]", segs)
	}
	// Slot 2 (recycled position) must be empty.
	if got := r.Segments(2); len(got) != 0 {
		t.Fatalf("recycled slot has stale segments %v", got)
	}
}

func TestRingOutOfWindowPanics(t *testing.T) {
	r := NewRing(3, 5, false)
	for _, abs := range []int{4, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("access to slot %d outside [5,7] did not panic", abs)
				}
			}()
			r.Load(abs)
		}()
	}
}

func TestRingBadHorizonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero horizon did not panic")
		}
	}()
	NewRing(0, 0, false)
}

func TestMinLoadLatestPrefersLatestTie(t *testing.T) {
	r := NewRing(6, 0, false)
	// loads: slot0=1 slot1=0 slot2=2 slot3=0 slot4=3
	r.Add(0, 1)
	r.Add(2, 1)
	r.Add(2, 2)
	r.Add(4, 1)
	r.Add(4, 2)
	r.Add(4, 3)
	slot, load := r.MinLoadLatest(0, 4)
	if slot != 3 || load != 0 {
		t.Fatalf("MinLoadLatest = (%d, %d), want (3, 0): ties must pick the latest slot", slot, load)
	}
}

func TestMinLoadLatestSingleSlot(t *testing.T) {
	r := NewRing(3, 0, false)
	r.Add(1, 9)
	slot, load := r.MinLoadLatest(1, 1)
	if slot != 1 || load != 1 {
		t.Fatalf("MinLoadLatest = (%d, %d), want (1, 1)", slot, load)
	}
}

func TestMinLoadLatestEmptyRangePanics(t *testing.T) {
	r := NewRing(3, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("empty scan range did not panic")
		}
	}()
	r.MinLoadLatest(2, 1)
}

func TestRingLongRunConsistency(t *testing.T) {
	// Drive the ring through many retire cycles and verify conservation:
	// everything added is eventually retired exactly once.
	r := NewRing(5, 0, false)
	added, retired := 0, 0
	for step := 0; step < 1000; step++ {
		slot := r.Base() + 1 + step%4
		if slot <= r.End() {
			r.Add(slot, step)
			added++
		}
		_, load, _ := r.Retire()
		retired += load
	}
	for i := 0; i < 5; i++ {
		_, load, _ := r.Retire()
		retired += load
	}
	if added != retired {
		t.Fatalf("added %d instances but retired %d", added, retired)
	}
}

func TestRingConservationProperty(t *testing.T) {
	f := func(offsets []uint8) bool {
		r := NewRing(8, 0, false)
		added, retired := 0, 0
		for _, o := range offsets {
			slot := r.Base() + int(o)%8
			r.Add(slot, 1)
			added++
			_, load, _ := r.Retire()
			retired += load
		}
		for i := 0; i < 8; i++ {
			_, load, _ := r.Retire()
			retired += load
		}
		return added == retired
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinLoadEarliestPrefersEarliestTie(t *testing.T) {
	r := NewRing(6, 0, false)
	r.Add(0, 1)
	r.Add(2, 1)
	r.Add(4, 1)
	slot, load := r.MinLoadEarliest(0, 4)
	if slot != 1 || load != 0 {
		t.Fatalf("MinLoadEarliest = (%d, %d), want (1, 0)", slot, load)
	}
	slot, load = r.MinLoadEarliest(4, 4)
	if slot != 4 || load != 1 {
		t.Fatalf("single-slot MinLoadEarliest = (%d, %d), want (4, 1)", slot, load)
	}
}

func TestMinLoadEarliestEmptyRangePanics(t *testing.T) {
	r := NewRing(3, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("empty scan range did not panic")
		}
	}()
	r.MinLoadEarliest(2, 1)
}
