package experiments

import (
	"fmt"
	"io"

	"vodcast/internal/core"
	"vodcast/internal/metrics"
	"vodcast/internal/obs"
	"vodcast/internal/sim"
	"vodcast/internal/workload"
)

// TraceConfig parameterizes a traced DHB run: one video under constant
// Poisson arrivals, with every scheduling decision captured as a qlog-style
// JSONL event stream.
type TraceConfig struct {
	// Segments is the DHB segment count n.
	Segments int
	// Periods optionally carries a DHB-d period vector (nil = CBR).
	Periods []int
	// RatePerHour is the Poisson arrival rate.
	RatePerHour float64
	// SlotSeconds is the slot duration d.
	SlotSeconds float64
	// HorizonSlots is the measured span; WarmupSlots of it are excluded
	// from the bandwidth statistics (the trace still records them).
	HorizonSlots int
	WarmupSlots  int
	// Seed drives the arrival process.
	Seed int64
}

// DefaultTraceConfig mirrors the paper's setup (n = 99, D = 7200 s) at a
// quick horizon.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Segments:     99,
		RatePerHour:  100,
		SlotSeconds:  7200.0 / 99,
		HorizonSlots: 2000,
		WarmupSlots:  200,
		Seed:         1,
	}
}

// TraceResult summarizes a traced run.
type TraceResult struct {
	Measurement
	// Requests and Instances are the scheduler's lifetime totals.
	Requests  int64
	Instances int64
	// Events counts the emitted trace events, drain included.
	Events uint64
	// DrainSlots is how many post-horizon slots were retired so every
	// instance_start in the trace has a matching instance_stop.
	DrainSlots int
}

func (c TraceConfig) validate() error {
	if c.Segments <= 0 {
		return fmt.Errorf("experiments: segment count %d must be positive", c.Segments)
	}
	if c.RatePerHour <= 0 {
		return fmt.Errorf("experiments: rate %v must be positive", c.RatePerHour)
	}
	if c.SlotSeconds <= 0 {
		return fmt.Errorf("experiments: slot duration %v must be positive", c.SlotSeconds)
	}
	if c.HorizonSlots <= c.WarmupSlots || c.WarmupSlots < 0 {
		return fmt.Errorf("experiments: horizon %d must exceed warmup %d >= 0",
			c.HorizonSlots, c.WarmupSlots)
	}
	return nil
}

// TraceDHB runs the DHB scheduler under Poisson arrivals with a tracer
// attached, streaming every event to sink as JSONL. The trace clock is the
// simulated time, so runs with equal configs produce byte-identical traces.
//
// The per-slot load series in the trace is exact: re-aggregating the
// slot_retire events for slots [WarmupSlots, HorizonSlots) reproduces the
// returned mean and max bandwidth, because both are computed from the same
// retired-slot loads. After the horizon the schedule is drained for
// maxPeriod further slots (unmeasured) so every scheduled instance retires.
func TraceDHB(cfg TraceConfig, sink io.Writer) (TraceResult, error) {
	if err := cfg.validate(); err != nil {
		return TraceResult{}, err
	}
	tracer := obs.NewTracer(sink, obs.DefaultRingSize)
	now := 0.0
	tracer.SetClock(func() float64 { return now })

	sched, err := core.New(core.Config{
		Segments:      cfg.Segments,
		Periods:       cfg.Periods,
		TrackSegments: true,
		Observer:      obs.SchedObserver{Video: 1, T: tracer},
	})
	if err != nil {
		return TraceResult{}, err
	}
	maxPeriod := 0
	for j := 1; j <= cfg.Segments; j++ {
		if p := sched.Period(j); p > maxPeriod {
			maxPeriod = p
		}
	}

	rng := sim.NewRNG(cfg.Seed)
	arrivals := workload.NewSlottedArrivals(rng, workload.Constant(cfg.RatePerHour), cfg.SlotSeconds)
	bw := metrics.NewBandwidth()
	for slot := 0; slot < cfg.HorizonSlots; slot++ {
		now = float64(slot) * cfg.SlotSeconds
		for a := 0; a < arrivals.Next(); a++ {
			sched.AdmitRequest(core.AdmitOptions{})
		}
		rep := sched.AdvanceSlot()
		if slot >= cfg.WarmupSlots {
			bw.Record(float64(rep.Load), cfg.SlotSeconds)
		}
	}
	// Drain: no further arrivals, so after maxPeriod slots every scheduled
	// instance has been transmitted and traced as instance_stop.
	for k := 0; k < maxPeriod; k++ {
		now = float64(cfg.HorizonSlots+k) * cfg.SlotSeconds
		sched.AdvanceSlot()
	}
	if err := tracer.Err(); err != nil {
		return TraceResult{}, fmt.Errorf("experiments: trace sink: %w", err)
	}
	return TraceResult{
		Measurement: Measurement{
			AvgBandwidth: bw.Mean(),
			MaxBandwidth: bw.Max(),
			Slots:        cfg.HorizonSlots - cfg.WarmupSlots,
		},
		Requests:   sched.Requests(),
		Instances:  sched.Instances(),
		Events:     tracer.Total(),
		DrainSlots: maxPeriod,
	}, nil
}
