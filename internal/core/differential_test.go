package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// This file is the differential harness for the admission fast path: every
// scenario drives two schedulers — the fast one (RMQ ring, same-slot memo)
// and the linear reference (Config.Reference) — through the same randomized
// workload and requires byte-identical behaviour at every step: admission
// results, per-segment assignments, per-slot window loads, tracked segment
// lists, retired-slot reports, and the Requests/Instances counters.

// diffScenario is one cell of the differential matrix.
type diffScenario struct {
	name    string
	n       int
	policy  Policy
	cap     int
	periods []int
	resumes bool // mix resume admissions into the workload
}

func diffScenarios() []diffScenario {
	// A legal non-monotonic, larger-than-i period vector (Section 4's DHB-d
	// shapes are irregular like this): T[1] must be 1, the rest just >= 1.
	irregular := []int{0, 1, 4, 2, 6, 3, 8, 5, 9, 7, 10, 11, 6, 13, 12, 15, 9}
	return []diffScenario{
		{name: "heuristic", n: 33, policy: PolicyHeuristic, resumes: true},
		{name: "naive", n: 33, policy: PolicyNaive, resumes: true},
		{name: "earliest", n: 33, policy: PolicyMinLoadEarliest, resumes: true},
		{name: "heuristic-small", n: 1, policy: PolicyHeuristic},
		{name: "heuristic-capped", n: 17, policy: PolicyHeuristic, cap: 2, resumes: true},
		{name: "heuristic-capped-1", n: 9, policy: PolicyHeuristic, cap: 1, resumes: true},
		{name: "irregular-periods", n: 16, policy: PolicyHeuristic, periods: irregular, resumes: true},
		{name: "irregular-earliest", n: 16, policy: PolicyMinLoadEarliest, periods: irregular},
	}
}

// diffPair builds the fast scheduler and its linear reference twin.
func diffPair(t *testing.T, sc diffScenario) (fast, ref *Scheduler) {
	t.Helper()
	mk := func(reference bool) *Scheduler {
		s, err := New(Config{
			Segments:         sc.n,
			Policy:           sc.policy,
			Periods:          sc.periods,
			MaxClientStreams: sc.cap,
			TrackSegments:    true,
			Reference:        reference,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(false), mk(true)
}

// maxPeriod reports the scheduler's window span so load checks can sweep
// the whole ring.
func maxPeriod(s *Scheduler) int {
	maxP := 0
	for j := 1; j <= s.N(); j++ {
		if s.Period(j) > maxP {
			maxP = s.Period(j)
		}
	}
	return maxP
}

// checkState compares everything observable about the two schedulers.
func checkState(t *testing.T, step int, fast, ref *Scheduler) {
	t.Helper()
	if fast.CurrentSlot() != ref.CurrentSlot() {
		t.Fatalf("step %d: current slot %d, reference %d", step, fast.CurrentSlot(), ref.CurrentSlot())
	}
	if fast.Requests() != ref.Requests() {
		t.Fatalf("step %d: requests %d, reference %d", step, fast.Requests(), ref.Requests())
	}
	if fast.Instances() != ref.Instances() {
		t.Fatalf("step %d: instances %d, reference %d", step, fast.Instances(), ref.Instances())
	}
	cur := fast.CurrentSlot()
	for slot := cur; slot <= cur+maxPeriod(fast); slot++ {
		if fl, rl := fast.LoadAt(slot), ref.LoadAt(slot); fl != rl {
			t.Fatalf("step %d: slot %d load %d, reference %d", step, slot, fl, rl)
		}
		if fs, rs := fast.ScheduledAt(slot), ref.ScheduledAt(slot); !reflect.DeepEqual(fs, rs) {
			t.Fatalf("step %d: slot %d segments %v, reference %v", step, slot, fs, rs)
		}
	}
}

// TestDifferentialFastVsReference is the randomized equivalence proof across
// policies, client caps, period shapes, resume mixes and duplicate same-slot
// arrival bursts.
func TestDifferentialFastVsReference(t *testing.T) {
	for _, sc := range diffScenarios() {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				fast, ref := diffPair(t, sc)
				fastBuf := make([]int, 0) // exercises the reusable-buffer path
				for step := 0; step < 400; step++ {
					switch op := rng.Intn(10); {
					case op < 3: // advance, compare the retired slot exactly
						fr, rr := fast.AdvanceSlot(), ref.AdvanceSlot()
						if fr.Slot != rr.Slot || fr.Load != rr.Load || !reflect.DeepEqual(fr.Segments, rr.Segments) {
							t.Fatalf("step %d: retired %+v, reference %+v", step, fr, rr)
						}
					case op < 6 || !sc.resumes: // duplicate same-slot burst (size 1..4)
						burst := 1 + rng.Intn(4)
						for k := 0; k < burst; k++ {
							fres, err := fast.AdmitRequest(AdmitOptions{Assignment: fastBuf})
							if err != nil {
								t.Fatal(err)
							}
							fastBuf = fres.Assignment
							rres, err := ref.AdmitRequest(AdmitOptions{WantAssignment: true})
							if err != nil {
								t.Fatal(err)
							}
							if fres.Slot != rres.Slot || fres.Placed != rres.Placed {
								t.Fatalf("step %d burst %d: result (%d, %d), reference (%d, %d)",
									step, k, fres.Slot, fres.Placed, rres.Slot, rres.Placed)
							}
							if !reflect.DeepEqual(fres.Assignment, rres.Assignment) {
								t.Fatalf("step %d burst %d: assignment %v, reference %v",
									step, k, fres.Assignment, rres.Assignment)
							}
						}
					default: // resume at a random segment
						from := 1 + rng.Intn(sc.n)
						fres, ferr := fast.AdmitRequest(AdmitOptions{From: from, Assignment: fastBuf})
						rres, rerr := ref.AdmitRequest(AdmitOptions{From: from, WantAssignment: true})
						if (ferr == nil) != (rerr == nil) {
							t.Fatalf("step %d: error %v, reference %v", step, ferr, rerr)
						}
						if ferr != nil {
							continue
						}
						fastBuf = fres.Assignment
						if fres.Placed != rres.Placed || !reflect.DeepEqual(fres.Assignment, rres.Assignment) {
							t.Fatalf("step %d: resume(%d) = (%d, %v), reference (%d, %v)",
								step, from, fres.Placed, fres.Assignment, rres.Placed, rres.Assignment)
						}
					}
					checkState(t, step, fast, ref)
				}
			})
		}
	}
}

// TestDifferentialAdmitBatch: a coalesced batch call must be
// indistinguishable — schedule, counters, result totals — from the same
// number of sequential admissions on the reference scheduler.
func TestDifferentialAdmitBatch(t *testing.T) {
	for _, sc := range diffScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			fast, ref := diffPair(t, sc)
			for step := 0; step < 120; step++ {
				if rng.Intn(4) == 0 {
					fast.AdvanceSlot()
					ref.AdvanceSlot()
					continue
				}
				count := 1 + rng.Intn(5)
				from := 0
				if sc.resumes && rng.Intn(2) == 0 {
					from = 1 + rng.Intn(sc.n)
				}
				bres, err := fast.AdmitBatch(count, AdmitOptions{From: from, WantAssignment: true})
				if err != nil {
					t.Fatal(err)
				}
				placed := 0
				var last AdmitResult
				for k := 0; k < count; k++ {
					r, err := ref.AdmitRequest(AdmitOptions{From: from, WantAssignment: true})
					if err != nil {
						t.Fatal(err)
					}
					placed += r.Placed
					last = r
				}
				if bres.Placed != placed {
					t.Fatalf("step %d: batch placed %d, reference %d", step, bres.Placed, placed)
				}
				if !reflect.DeepEqual(bres.Assignment, last.Assignment) {
					t.Fatalf("step %d: batch assignment %v, reference %v", step, bres.Assignment, last.Assignment)
				}
				checkState(t, step, fast, ref)
			}
		})
	}
}

// TestMemoObserverDisablesFastPath: with an Observer attached the full loop
// must run for every duplicate so per-decision callbacks keep their exact
// semantics — the decision count for k same-slot admissions stays k*n.
func TestMemoObserverDisablesFastPath(t *testing.T) {
	rec := &countingObserver{}
	s, err := New(Config{Segments: 12, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		admit(s)
	}
	if want := 3 * 12; rec.decisions != want {
		t.Fatalf("observed %d decisions, want %d (full loop per duplicate)", rec.decisions, want)
	}
	if rec.admits != 3 {
		t.Fatalf("observed %d admits, want 3", rec.admits)
	}
}

// countingObserver tallies callbacks.
type countingObserver struct {
	admits, decisions, retires int
}

func (o *countingObserver) ObserveAdmit(slot, from, placed int) { o.admits++ }
func (o *countingObserver) ObserveDecision(reqSlot, segment, slot, windowLo, windowHi, load int, shared bool) {
	o.decisions++
}
func (o *countingObserver) ObserveRetire(slot, load int, segments []int) { o.retires++ }

// TestMemoInvalidatedByAdvance: a memo built in slot i must not survive into
// slot i+1 — the second slot's admission has to place the instances that
// retired with slot i+1's transmission.
func TestMemoInvalidatedByAdvance(t *testing.T) {
	fast, ref := diffPair(t, diffScenario{name: "inv", n: 20, policy: PolicyHeuristic})
	for step := 0; step < 60; step++ {
		admit(fast)
		admit(fast) // memo hit
		admit(ref)
		admit(ref)
		fr, rr := fast.AdvanceSlot(), ref.AdvanceSlot()
		if fr.Load != rr.Load {
			t.Fatalf("step %d: load %d, reference %d", step, fr.Load, rr.Load)
		}
		checkState(t, step, fast, ref)
	}
}

// TestAdmitSteadyStateZeroAlloc: the uninstrumented steady-state admit path
// (both the full placement loop and the same-slot memo hit) allocates
// nothing, with and without a reused assignment buffer.
func TestAdmitSteadyStateZeroAlloc(t *testing.T) {
	s, err := New(Config{Segments: 99})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 200; k++ { // reach steady state
		admit(s)
		s.AdvanceSlot()
	}
	if allocs := testing.AllocsPerRun(200, func() {
		admit(s)
		admit(s) // same-slot memo hit
		s.AdvanceSlot()
	}); allocs != 0 {
		t.Fatalf("steady-state admit path allocates %.1f/op, want 0", allocs)
	}
	opts := AdmitOptions{Assignment: make([]int, s.N()+1)}
	if allocs := testing.AllocsPerRun(200, func() {
		res, err := s.AdmitRequest(opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Assignment = res.Assignment
		s.AdvanceSlot()
	}); allocs != 0 {
		t.Fatalf("buffered traced admit allocates %.1f/op, want 0", allocs)
	}
}

// TestAdmitRequestBufferReuse: a caller-supplied buffer is reused when large
// enough, grown when too small, and cleared below the resume point.
func TestAdmitRequestBufferReuse(t *testing.T) {
	s, err := New(Config{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, s.N()+1)
	res, err := s.AdmitRequest(AdmitOptions{Assignment: buf})
	if err != nil {
		t.Fatal(err)
	}
	if &res.Assignment[0] != &buf[0] {
		t.Fatal("sufficient buffer was not reused")
	}
	// A stale buffer admitted with a resume point must come back with
	// zeroed entries below From.
	for i := range res.Assignment {
		res.Assignment[i] = 777
	}
	res, err = s.AdmitRequest(AdmitOptions{From: 5, Assignment: res.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if res.Assignment[j] != 0 {
			t.Fatalf("entry %d below resume point = %d, want 0", j, res.Assignment[j])
		}
	}
	for j := 5; j <= s.N(); j++ {
		if res.Assignment[j] == 0 || res.Assignment[j] == 777 {
			t.Fatalf("entry %d not written: %d", j, res.Assignment[j])
		}
	}
	// An undersized buffer is grown, not overrun.
	res, err = s.AdmitRequest(AdmitOptions{Assignment: make([]int, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != s.N()+1 {
		t.Fatalf("grown buffer has length %d, want %d", len(res.Assignment), s.N()+1)
	}
	// An oversized buffer is resliced to exactly n+1.
	res, err = s.AdmitRequest(AdmitOptions{Assignment: make([]int, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != s.N()+1 {
		t.Fatalf("oversized buffer resliced to %d, want %d", len(res.Assignment), s.N()+1)
	}
}

// TestAdmitBatchValidation: non-positive counts and bad resume points are
// rejected without mutating the scheduler.
func TestAdmitBatchValidation(t *testing.T) {
	s, err := New(Config{Segments: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdmitBatch(0, AdmitOptions{}); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := s.AdmitBatch(-3, AdmitOptions{}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := s.AdmitBatch(2, AdmitOptions{From: 99}); err == nil {
		t.Fatal("bad resume point accepted")
	}
	if s.Requests() != 0 || s.Instances() != 0 {
		t.Fatalf("failed batches mutated the scheduler: %d requests, %d instances",
			s.Requests(), s.Instances())
	}
}
