package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vodcast/internal/load"
)

func TestBuildProfile(t *testing.T) {
	ramp, err := buildProfile(runOpts{profile: "ramp", sessions: 30, steps: 3, duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(ramp) != 3 || ramp[2].Sessions != 30 {
		t.Fatalf("ramp = %+v", ramp)
	}
	soak, err := buildProfile(runOpts{profile: "Soak", sessions: 10, duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(soak) != 1 {
		t.Fatalf("soak = %+v", soak)
	}
	spike, err := buildProfile(runOpts{profile: "spike", sessions: 40, duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if spike[0].Sessions != 4 || spike[1].Sessions != 40 {
		t.Fatalf("spike defaulted base wrong: %+v", spike)
	}
	if _, err := buildProfile(runOpts{profile: "sawtooth"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestRunSelfContained: the full CLI path in self-contained mode — boots
// its own server, runs a short ramp, writes the report and the step log,
// and exits 0 with the gate passing.
func TestRunSelfContained(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	stepPath := filepath.Join(dir, "steps.jsonl")
	var stdout, stderr bytes.Buffer
	code, err := run(runOpts{
		sessions: 12, steps: 3, duration: 1500 * time.Millisecond, profile: "ramp",
		videos: 2, segments: 6, segmentBytes: 48, slotMillis: 5,
		conns: 16, timeout: 10 * time.Second, seed: 3, skew: 1.0,
		interval:   250 * time.Millisecond,
		reportPath: reportPath, stepLog: stepPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr.String())
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var report load.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if !report.Pass || len(report.Steps) != 3 {
		t.Fatalf("report pass=%v steps=%d failures=%v", report.Pass, len(report.Steps), report.Failures)
	}
	for _, st := range report.Steps {
		if !st.Gated {
			t.Fatalf("step %s ungated (sessions=%d)", st.Name, st.Sessions)
		}
	}
	f, err := os.Open(stepPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
	}
	if lines != 3 {
		t.Fatalf("step log lines = %d, want 3", lines)
	}
	if !strings.Contains(stderr.String(), "PASS") {
		t.Fatalf("stderr missing verdict:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "self-contained server on") {
		t.Fatalf("stderr missing server banner:\n%s", stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(runOpts{videos: 0}, &out, &out); err == nil {
		t.Fatal("zero catalogue accepted")
	}
	if _, err := run(runOpts{videos: 1, profile: "nope"}, &out, &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
