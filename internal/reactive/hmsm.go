package reactive

import (
	"math"

	"vodcast/internal/metrics"
	"vodcast/internal/sim"
)

// hmsmStream is one active multicast stream in the HMSM simulation. Clients
// that arrived together listen to their own stream and tap the closest
// stream ahead of them; once they have tapped for as long as the gap between
// the two streams, their stream merges into the target and disappears.
type hmsmStream struct {
	id int
	// vstart is the stream's virtual start time: at time t it has
	// transmitted video [0, t-vstart).
	vstart float64
	// target is the stream this one is merging into (nil while playing out
	// alone).
	target *hmsmStream
	// listenStart is when the group began tapping the current target.
	listenStart float64
	// epoch invalidates stale loop events after retargeting or removal.
	epoch int
	alive bool
}

// HMSM simulates Eager and Vernon's hierarchical multicast stream merging,
// the best published reactive protocol of the paper's related work: every
// arrival starts a stream and taps the closest stream ahead; streams merge
// hierarchically until everything rides the oldest stream.
//
// Two simplifications, both conservative (they can only increase the
// measured bandwidth): clients listen to at most two streams (the paper's
// own HMSM restriction), and when a group's target merges away, the group
// retargets and restarts its tap without crediting data it already buffered
// from the vanished target.
func HMSM(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var (
		rng    = sim.NewRNG(cfg.Seed)
		proc   = sim.NewPoissonProcess(rng, cfg.RatePerHour/3600)
		loop   = sim.NewLoop()
		bw     = metrics.NewBandwidth()
		g      = newGauge(bw, cfg.WarmupSeconds)
		res    Result
		d      = cfg.VideoSeconds
		active []*hmsmStream
		nextID int
	)

	remove := func(s *hmsmStream) {
		s.alive = false
		s.epoch++
		for i, a := range active {
			if a == s {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}

	// retarget points s at the closest live stream ahead of it and
	// schedules the merge or natural end, whichever comes first.
	var retarget func(s *hmsmStream, now float64)

	endOrMerge := func(s *hmsmStream, now float64) {
		end := s.vstart + d // natural completion
		mergeAt := math.Inf(1)
		if s.target != nil {
			gap := s.vstart - s.target.vstart
			mergeAt = s.listenStart + gap
			// The merge must happen while both streams still exist.
			if mergeAt >= end || mergeAt >= s.target.vstart+d {
				mergeAt = math.Inf(1)
				s.target = nil
			}
		}
		epoch := s.epoch
		if mergeAt < end {
			loop.At(mergeAt, func(at float64) {
				if !s.alive || s.epoch != epoch {
					return
				}
				if s.target == nil || !s.target.alive {
					// The target merged away first; restart the tap
					// against whatever is ahead now.
					retarget(s, at)
					return
				}
				// The group joins the target; everyone it carried is now
				// served by the target's transmissions.
				remove(s)
				g.add(-1, at)
				// Streams that were merging into s must pick a new target.
				for _, a := range active {
					if a.target == s {
						retarget(a, at)
					}
				}
			})
			return
		}
		loop.At(end, func(at float64) {
			if !s.alive || s.epoch != epoch {
				return
			}
			remove(s)
			g.add(-1, at)
			// Streams that were merging into s must pick a new target.
			for _, a := range active {
				if a.target == s {
					retarget(a, at)
				}
			}
		})
	}

	retarget = func(s *hmsmStream, now float64) {
		s.epoch++
		s.target = nil
		s.listenStart = now
		// The closest stream ahead is the live stream with the largest
		// virtual start below s's.
		for _, a := range active {
			if a == s || a.vstart >= s.vstart {
				continue
			}
			if s.target == nil || a.vstart > s.target.vstart {
				s.target = a
			}
		}
		endOrMerge(s, now)
	}

	// Streams whose target merges away retarget at the merge instant; the
	// merge handler above removes the target first, so retargeting happens
	// from the arrival path and the end handler. Target-merged retargeting
	// is handled lazily here: a stream whose mergeAt was computed against a
	// now-dead target keeps its event (the epoch guard drops it) and the
	// next sweep re-schedules it.
	fixOrphans := func(now float64) {
		for _, a := range active {
			if a.target != nil && !a.target.alive {
				retarget(a, now)
			}
		}
	}

	for {
		t := proc.Next()
		if t >= cfg.HorizonSeconds {
			break
		}
		loop.Run(t)
		fixOrphans(t)
		res.Requests++
		s := &hmsmStream{id: nextID, vstart: t, listenStart: t, alive: true}
		nextID++
		// Pick the closest live stream ahead.
		for _, a := range active {
			if s.target == nil || a.vstart > s.target.vstart {
				s.target = a
			}
		}
		active = append(active, s)
		g.add(1, t)
		if s.target == nil {
			res.CompleteStreams++
		} else {
			res.PartialStreams++
		}
		endOrMerge(s, t)
	}
	loop.Run(cfg.HorizonSeconds)
	g.finish(cfg.HorizonSeconds)
	res.AvgBandwidth = bw.Mean()
	res.MaxBandwidth = bw.Max()
	res.AvgWait, res.MaxWait = 0, 0
	return res, nil
}
