// Package conntrack is the per-subscriber transport telemetry layer: it
// samples kernel TCP state (TCP_INFO on Linux) alongside the userspace
// signals the fan-out path already produces — ring occupancy, push-fail
// streaks, drain batch sizes, bytes written — and classifies every tracked
// connection into an explicit state machine with hysteresis:
//
//	healthy               delivering at the broadcast rate
//	receiver_limited      the client application reads too slowly (kernel
//	                      rwnd-limited time, or a deep ring with a live drain)
//	path_limited          the network is losing or delaying segments
//	                      (retransmit rate over threshold)
//	sender_backpressured  frames queue in OUR ring while the kernel shows no
//	                      constraint — the server's own drain is the bottleneck
//	stalled               a backlog exists and nothing has moved for a full
//	                      hold period (no drained bytes, no acked bytes)
//
// The classifier is deliberately conservative: a candidate state must hold
// for Config.Hold consecutive samples before the published state changes, so
// one slow scrape or a single retransmission never flaps a connection
// between states. The published state is what the slow-subscriber drop path
// records as its reason, what /connz serves, and what the conn_stalled_ratio
// alert aggregates.
//
// The package follows the repository's observability idiom: stdlib-only
// imports (plus obs), nil-safe methods on every type — a server with
// conntrack disabled holds a nil *Sampler and nil *Conn handles, and every
// hot-path touch point costs one predictable branch — and zero-value configs
// selecting documented defaults.
package conntrack

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vodcast/internal/obs"
)

// State is the classified transport condition of one tracked connection.
type State uint8

const (
	StateHealthy State = iota
	StateReceiverLimited
	StatePathLimited
	StateSenderBackpressured
	StateStalled
	numStates
)

// NumStates is the number of distinct classifier states, for callers that
// index per-state accounting arrays.
const NumStates = int(numStates)

var stateNames = [NumStates]string{
	"healthy", "receiver_limited", "path_limited", "sender_backpressured", "stalled",
}

// String returns the state's metric-label-safe name.
func (s State) String() string {
	if int(s) < NumStates {
		return stateNames[s]
	}
	return "unknown"
}

// StateNames returns every classifier state name in State order — callers
// pre-registering per-state metric children iterate this so the inventory is
// complete from boot.
func StateNames() []string {
	out := make([]string, NumStates)
	copy(out, stateNames[:])
	return out
}

// TCPInfo is the portable slice of the kernel's TCP_INFO the classifier
// consumes. Valid reports whether the kernel answered at all; Extended
// whether it filled the busy/rwnd/sndbuf limited-time tail (Linux >= 4.10).
// On non-Linux builds Valid is always false and classification runs on the
// userspace signals alone.
type TCPInfo struct {
	Valid    bool
	Extended bool
	// RTT and RTTVar are the smoothed round-trip estimate and its variance.
	RTT    time.Duration
	RTTVar time.Duration
	// TotalRetrans counts lifetime retransmitted segments.
	TotalRetrans uint32
	// NotSentBytes is the send-queue backlog the kernel has not yet put on
	// the wire.
	NotSentBytes uint32
	// SndCwnd and SndSsthresh are the congestion window and its threshold,
	// in segments.
	SndCwnd     uint32
	SndSsthresh uint32
	// BytesAcked is the lifetime count of bytes the receiver acknowledged —
	// the ground truth for "is anything still being delivered".
	BytesAcked uint64
	// DeliveryRate is the kernel's delivery rate estimate in bytes/sec.
	DeliveryRate uint64
	// BusyTime, RwndLimited and SndbufLimited are cumulative times the
	// connection spent sending, blocked on the receiver's window, and
	// blocked on the local send buffer.
	BusyTime      time.Duration
	RwndLimited   time.Duration
	SndbufLimited time.Duration
}

// Config parameterizes a Sampler. The zero value of every field selects a
// documented default.
type Config struct {
	// Interval is the sampling period; <= 0 selects 1s.
	Interval time.Duration
	// Hold is the hysteresis: how many consecutive samples a candidate state
	// must persist before the published state changes. <= 0 selects 2.
	Hold int
	// RetransThreshold is the per-sample retransmitted-segment delta at or
	// above which a connection classifies path_limited. <= 0 selects 3.
	RetransThreshold int64
	// RwndFraction classifies receiver_limited when the kernel's
	// rwnd-limited time grew by at least this fraction of the sample
	// interval. <= 0 selects 0.1.
	RwndFraction float64
	// RingHighFraction is the ring occupancy at or above which a connection
	// counts as behind the broadcast rate. <= 0 selects 0.5.
	RingHighFraction float64
	// NotSentLowBytes bounds the kernel send-queue backlog below which a
	// deep ring is attributed to the server's own drain (sender_backpressured)
	// rather than the receiver. <= 0 selects 4096.
	NotSentLowBytes uint32
	// MaxVideoLabels caps the conn_video_tracked gauge cardinality: at most
	// this many distinct video labels are created, the rest fold into
	// video="other". <= 0 selects 16.
	MaxVideoLabels int
	// DepthWindow sizes the per-connection ring-depth window behind the
	// /connz ring-depth p99 column. <= 0 selects 64.
	DepthWindow int
	// Registry, when non-nil, receives the conn_* metric families.
	Registry *obs.Registry
	// Clock stamps samples; nil selects time.Now. Tests inject a manual
	// clock to make hysteresis deterministic.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Hold <= 0 {
		c.Hold = 2
	}
	if c.RetransThreshold <= 0 {
		c.RetransThreshold = 3
	}
	if c.RwndFraction <= 0 {
		c.RwndFraction = 0.1
	}
	if c.RingHighFraction <= 0 {
		c.RingHighFraction = 0.5
	}
	if c.NotSentLowBytes <= 0 {
		c.NotSentLowBytes = 4096
	}
	if c.MaxVideoLabels <= 0 {
		c.MaxVideoLabels = 16
	}
	if c.DepthWindow <= 0 {
		c.DepthWindow = 64
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Sampler tracks a set of connections and classifies them on an interval.
// All methods are safe for concurrent use; a nil *Sampler is valid and inert
// (Register returns a nil *Conn whose record methods are no-ops), so a
// server with conntrack disabled pays one branch per touch point.
type Sampler struct {
	cfg Config

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	nextID uint64
	counts [NumStates]int
	stop   chan struct{}
	wg     sync.WaitGroup

	// occWin holds the latest ring-occupancy fraction of every tracked
	// connection, one observation per connection per sweep — the aggregate
	// quantile surface behind conn_ring_occupancy_p99.
	occWin *obs.Window

	mRTT        *obs.Histogram
	mRetrans    *obs.Counter
	mPushFail   *obs.Counter
	mDrainBytes *obs.Counter
	stateGauges [NumStates]*obs.Gauge
	videoGauges map[uint32]*obs.Gauge
	otherGauge  *obs.Gauge
}

// rttBuckets bins the RTT histogram from LAN to congested-WAN scales.
var rttBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}

// New builds a sampler on cfg; call Start to begin periodic sweeps.
func New(cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	s := &Sampler{
		cfg:    cfg,
		conns:  make(map[*Conn]struct{}),
		occWin: obs.NewWindow(0),
	}
	if reg := cfg.Registry; reg != nil {
		s.mRTT = reg.Histogram("conn_rtt_seconds",
			"Kernel smoothed RTT per tracked connection per sample.", rttBuckets)
		s.mRetrans = reg.Counter("conn_retrans_total",
			"TCP segments retransmitted across all tracked connections.")
		s.mPushFail = reg.Counter("conn_push_fail_total",
			"Fan-out ring pushes refused because the subscriber's ring was full.")
		s.mDrainBytes = reg.Counter("conn_drain_bytes_total",
			"Payload bytes drained to tracked subscriber connections.")
		for st := 0; st < NumStates; st++ {
			s.stateGauges[st] = reg.GaugeWith("conn_state",
				"Tracked connections currently classified into each transport state.",
				obs.Labels{"state": stateNames[st]})
		}
		s.videoGauges = make(map[uint32]*obs.Gauge)
		reg.GaugeFunc("conn_tracked",
			"Connections currently tracked by the transport telemetry sampler.",
			func() float64 { return float64(s.Tracked()) })
		reg.GaugeFunc("conn_stalled_ratio",
			"Fraction of tracked connections classified stalled (0 when none are tracked).",
			s.StalledRatio)
		reg.GaugeFunc("conn_ring_occupancy_p99",
			"99th percentile of per-subscriber ring occupancy (fraction of capacity) over recent samples.",
			func() float64 { return s.occWin.Snapshot().P99 })
	}
	return s
}

// Start begins periodic sweeping on an internal goroutine. No-op when nil or
// already running.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	s.stop = stop
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sweep()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts periodic sweeping and waits for the sweep goroutine to exit.
// Idempotent and nil-safe.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Conn is one tracked connection's telemetry handle. The fan-out and drain
// hot paths feed it through RecordPush and RecordDrain — lock-free atomics,
// nil-safe so the disabled path costs one branch — and the sampler's sweep
// owns everything else.
type Conn struct {
	id      uint64
	video   uint32
	remote  string
	ringCap int
	raw     syscall.RawConn // nil when the conn is not *net.TCPConn
	opened  time.Time

	// Hot-path counters.
	pushes     atomic.Int64
	pushFails  atomic.Int64
	failStreak atomic.Int64
	lastDepth  atomic.Int64
	drainBytes atomic.Int64
	drainOps   atomic.Int64

	// Published classification, readable from any goroutine (the drop path
	// reads it at disconnect time).
	pub      atomic.Uint32
	pubSince atomic.Int64 // unix nanos

	// Sweep-owned classifier state, guarded by the sampler's mutex.
	candidate    State
	candidateRun int
	prev         prevSample
	depthWin     *obs.Window
	snap         ConnSnapshot
}

// prevSample is the previous sweep's cumulative counters, the baseline the
// next sweep diffs against.
type prevSample struct {
	valid       bool
	at          time.Time
	drainBytes  int64
	pushFails   int64
	retrans     uint32
	bytesAcked  uint64
	rwndLimited time.Duration
}

// Register starts tracking conn. ringCap is the subscriber's queue capacity
// (ring slots or channel buffer), the denominator of the occupancy signal.
// A nil sampler returns a nil *Conn, which every Conn method accepts.
func (s *Sampler) Register(conn net.Conn, video uint32, ringCap int) *Conn {
	if s == nil {
		return nil
	}
	if ringCap < 1 {
		ringCap = 1
	}
	now := s.cfg.Clock()
	c := &Conn{
		video:    video,
		ringCap:  ringCap,
		opened:   now,
		depthWin: obs.NewWindow(s.cfg.DepthWindow),
	}
	if conn != nil {
		if addr := conn.RemoteAddr(); addr != nil {
			c.remote = addr.String()
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			if raw, err := tc.SyscallConn(); err == nil {
				c.raw = raw
			}
		}
	}
	c.pubSince.Store(now.UnixNano())
	s.mu.Lock()
	s.nextID++
	c.id = s.nextID
	c.snap = ConnSnapshot{ID: c.id, Remote: c.remote, Video: video,
		State: StateHealthy.String(), RingCap: ringCap, Kernel: c.raw != nil}
	s.conns[c] = struct{}{}
	s.counts[StateHealthy]++
	s.mu.Unlock()
	return c
}

// Unregister stops tracking c. Nil-safe on both receiver and argument, and
// idempotent — the drop, disconnect and shutdown paths may all reach it for
// the same connection.
func (s *Sampler) Unregister(c *Conn) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.counts[c.State()]--
	}
	s.mu.Unlock()
}

// RecordPush notes one fan-out push attempt: the post-push ring depth on
// success, or a refused push (ring full) on failure. Nil-safe — the disabled
// path is one branch, no atomics.
func (c *Conn) RecordPush(depth int, ok bool) {
	if c == nil {
		return
	}
	if ok {
		c.pushes.Add(1)
		c.lastDepth.Store(int64(depth))
		c.failStreak.Store(0)
		return
	}
	c.pushFails.Add(1)
	c.failStreak.Add(1)
}

// RecordDrain notes one completed drain batch: frames handed to the kernel
// and the payload bytes written. The ring is empty after a batch pop, so the
// depth signal resets. Nil-safe.
func (c *Conn) RecordDrain(frames int, bytes int64) {
	if c == nil || frames == 0 {
		return
	}
	c.drainOps.Add(1)
	c.drainBytes.Add(bytes)
	c.lastDepth.Store(0)
}

// State returns the connection's published classification. Nil-safe: an
// untracked connection reads healthy.
func (c *Conn) State() State {
	if c == nil {
		return StateHealthy
	}
	return State(c.pub.Load())
}

// StateAge reports how long the published state has held.
func (c *Conn) StateAge(now time.Time) time.Duration {
	if c == nil {
		return 0
	}
	return now.Sub(time.Unix(0, c.pubSince.Load()))
}

// Sweep runs one sampling pass over every tracked connection: read the
// kernel and userspace signals, classify with hysteresis, refresh the
// cached /connz snapshots and the aggregate metric families. The interval
// ticker calls it; tests and E2Es may call it directly. Nil-safe.
func (s *Sampler) Sweep() {
	if s == nil {
		return
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	videoCounts := make(map[uint32]int)
	for c := range s.conns {
		s.sweepConn(c, now)
		videoCounts[c.video]++
	}
	if s.cfg.Registry != nil {
		for st := 0; st < NumStates; st++ {
			s.stateGauges[st].Set(float64(s.counts[st]))
		}
		s.setVideoGauges(videoCounts)
	}
}

// sweepConn samples and classifies one connection. Caller holds s.mu.
func (s *Sampler) sweepConn(c *Conn, now time.Time) {
	drain := c.drainBytes.Load()
	fails := c.pushFails.Load()
	streak := c.failStreak.Load()
	depth := c.lastDepth.Load()
	occ := float64(depth) / float64(c.ringCap)
	info, kernelOK := readTCPInfo(c.raw)

	cur := prevSample{
		valid:      true,
		at:         now,
		drainBytes: drain,
		pushFails:  fails,
	}
	if kernelOK {
		cur.retrans = info.TotalRetrans
		cur.bytesAcked = info.BytesAcked
		cur.rwndLimited = info.RwndLimited
	}

	prev := c.prev
	c.prev = cur
	c.depthWin.Observe(float64(depth))
	s.occWin.Observe(occ)

	if s.cfg.Registry != nil {
		if kernelOK && info.RTT > 0 {
			s.mRTT.Observe(info.RTT.Seconds())
		}
		if prev.valid {
			if d := drain - prev.drainBytes; d > 0 {
				s.mDrainBytes.Add(float64(d))
			}
			if d := fails - prev.pushFails; d > 0 {
				s.mPushFail.Add(float64(d))
			}
			if kernelOK && info.TotalRetrans > prev.retrans {
				s.mRetrans.Add(float64(info.TotalRetrans - prev.retrans))
			}
		}
	}

	// The first sweep after registration only seeds the baseline: zero
	// deltas would otherwise read as "nothing moved" and nominate stalled
	// for a connection that just arrived.
	if prev.valid {
		elapsed := now.Sub(prev.at)
		wrote := drain > prev.drainBytes ||
			(kernelOK && prev.bytesAcked > 0 && info.BytesAcked > prev.bytesAcked)
		backlog := depth > 0 || streak > 0 || (kernelOK && info.NotSentBytes > 0)
		var retransDelta int64
		var rwndDelta time.Duration
		if kernelOK {
			retransDelta = int64(info.TotalRetrans) - int64(prev.retrans)
			rwndDelta = info.RwndLimited - prev.rwndLimited
		}
		cand := s.classify(wrote, backlog, occ, streak, retransDelta, rwndDelta, elapsed, info, kernelOK)
		s.holdAndPublish(c, cand, now)
	}

	rate := 0.0
	if prev.valid {
		if dt := now.Sub(prev.at).Seconds(); dt > 0 {
			if d := drain - prev.drainBytes; d > 0 {
				rate = float64(d) / dt
			}
		}
	}
	st := c.State()
	c.snap = ConnSnapshot{
		ID:              c.id,
		Remote:          c.remote,
		Video:           c.video,
		State:           st.String(),
		StateAgeSeconds: c.StateAge(now).Seconds(),
		RingDepth:       depth,
		RingCap:         c.ringCap,
		RingDepthP99:    c.depthWin.Snapshot().P99,
		BytesPerSec:     rate,
		PushFails:       fails,
		Kernel:          kernelOK,
	}
	if kernelOK {
		c.snap.RTTMillis = float64(info.RTT) / float64(time.Millisecond)
		c.snap.RTTVarMillis = float64(info.RTTVar) / float64(time.Millisecond)
		c.snap.Retrans = info.TotalRetrans
		c.snap.NotSentBytes = info.NotSentBytes
		c.snap.Cwnd = info.SndCwnd
		c.snap.DeliveryRate = info.DeliveryRate
	}
}

// classify nominates a candidate state from one sample's signals. Rules are
// ordered by how definitive the evidence is: total stall beats everything, a
// retransmit burst beats window accounting, kernel window accounting beats
// the occupancy fallback.
func (s *Sampler) classify(wrote, backlog bool, occ float64, streak, retransDelta int64,
	rwndDelta, elapsed time.Duration, info TCPInfo, kernelOK bool) State {
	if backlog && !wrote {
		return StateStalled
	}
	if kernelOK && retransDelta >= s.cfg.RetransThreshold {
		return StatePathLimited
	}
	if info.Extended && elapsed > 0 &&
		rwndDelta >= time.Duration(s.cfg.RwndFraction*float64(elapsed)) {
		return StateReceiverLimited
	}
	if occ >= s.cfg.RingHighFraction || streak > 0 {
		// A deep ring with a drained kernel queue means the network and the
		// receiver are keeping up — the server's own drain is behind.
		if kernelOK && info.NotSentBytes <= s.cfg.NotSentLowBytes {
			return StateSenderBackpressured
		}
		return StateReceiverLimited
	}
	return StateHealthy
}

// holdAndPublish applies hysteresis: the candidate must repeat for
// Config.Hold consecutive sweeps before the published state moves. Caller
// holds s.mu.
func (s *Sampler) holdAndPublish(c *Conn, cand State, now time.Time) {
	cur := c.State()
	if cand == cur {
		c.candidateRun = 0
		return
	}
	if cand == c.candidate {
		c.candidateRun++
	} else {
		c.candidate = cand
		c.candidateRun = 1
	}
	if c.candidateRun < s.cfg.Hold {
		return
	}
	s.counts[cur]--
	s.counts[cand]++
	c.pub.Store(uint32(cand))
	c.pubSince.Store(now.UnixNano())
	c.candidateRun = 0
}

// setVideoGauges refreshes the capped-cardinality per-video breakdown.
// Caller holds s.mu.
func (s *Sampler) setVideoGauges(counts map[uint32]int) {
	for video, g := range s.videoGauges {
		g.Set(float64(counts[video]))
		delete(counts, video)
	}
	other := 0
	for video, n := range counts {
		if len(s.videoGauges) < s.cfg.MaxVideoLabels {
			g := s.cfg.Registry.GaugeWith("conn_video_tracked",
				"Tracked connections per video (cardinality-capped; overflow folds into video=\"other\").",
				obs.Labels{"video": fmt.Sprint(video)})
			g.Set(float64(n))
			s.videoGauges[video] = g
			continue
		}
		other += n
	}
	if other > 0 || s.otherGauge != nil {
		if s.otherGauge == nil {
			s.otherGauge = s.cfg.Registry.GaugeWith("conn_video_tracked",
				"Tracked connections per video (cardinality-capped; overflow folds into video=\"other\").",
				obs.Labels{"video": "other"})
		}
		s.otherGauge.Set(float64(other))
	}
}

// Tracked reports the number of connections currently tracked. Nil-safe.
func (s *Sampler) Tracked() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// StalledRatio reports the fraction of tracked connections whose published
// state is stalled, or 0 when none are tracked — the conn_stalled_ratio
// alert signal. Nil-safe.
func (s *Sampler) StalledRatio() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.conns) == 0 {
		return 0
	}
	return float64(s.counts[StateStalled]) / float64(len(s.conns))
}

// StateCounts reports the per-state connection counts. Nil-safe.
func (s *Sampler) StateCounts() [NumStates]int {
	if s == nil {
		return [NumStates]int{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// ConnSnapshot is one /connz table row: the connection's identity, its
// published state, and the kernel plus ring signals behind it. Kernel fields
// are zero when the platform (or the socket type) offers no TCP_INFO.
type ConnSnapshot struct {
	ID              uint64  `json:"id"`
	Remote          string  `json:"remote,omitempty"`
	Video           uint32  `json:"video"`
	State           string  `json:"state"`
	StateAgeSeconds float64 `json:"state_age_seconds"`
	RTTMillis       float64 `json:"rtt_ms,omitempty"`
	RTTVarMillis    float64 `json:"rttvar_ms,omitempty"`
	Retrans         uint32  `json:"retrans_total"`
	NotSentBytes    uint32  `json:"notsent_bytes,omitempty"`
	Cwnd            uint32  `json:"cwnd,omitempty"`
	DeliveryRate    uint64  `json:"delivery_rate_bps,omitempty"`
	RingDepth       int64   `json:"ring_depth"`
	RingCap         int     `json:"ring_cap"`
	RingDepthP99    float64 `json:"ring_depth_p99"`
	BytesPerSec     float64 `json:"bytes_per_sec"`
	PushFails       int64   `json:"push_fails"`
	Kernel          bool    `json:"kernel"`
}

// Summary is the /connz document (and the flight bundle's conns.json): the
// state histogram, the aggregate signals, and one row per tracked
// connection sorted by registration order.
type Summary struct {
	Tracked       int                `json:"tracked"`
	States        map[string]int     `json:"states"`
	StalledRatio  float64            `json:"stalled_ratio"`
	RingOccupancy obs.WindowSnapshot `json:"ring_occupancy"`
	Conns         []ConnSnapshot     `json:"conns"`
}

// Snapshot assembles the /connz document from the most recent sweep's cached
// rows. State ages are refreshed to now so a poll between sweeps still sees
// them advance. Nil-safe: a disabled sampler reports an empty summary.
func (s *Sampler) Snapshot() Summary {
	sum := Summary{States: make(map[string]int, NumStates)}
	for _, name := range stateNames {
		sum.States[name] = 0
	}
	if s == nil {
		return sum
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	sum.Tracked = len(s.conns)
	for st := 0; st < NumStates; st++ {
		sum.States[stateNames[st]] = s.counts[st]
	}
	if len(s.conns) > 0 {
		sum.StalledRatio = float64(s.counts[StateStalled]) / float64(len(s.conns))
	}
	sum.Conns = make([]ConnSnapshot, 0, len(s.conns))
	for c := range s.conns {
		row := c.snap
		row.State = c.State().String()
		row.StateAgeSeconds = c.StateAge(now).Seconds()
		sum.Conns = append(sum.Conns, row)
	}
	s.mu.Unlock()
	sum.RingOccupancy = s.occWin.Snapshot()
	sort.Slice(sum.Conns, func(i, j int) bool { return sum.Conns[i].ID < sum.Conns[j].ID })
	return sum
}
