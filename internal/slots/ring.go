// Package slots implements the slotted transmission schedule at the heart of
// the DHB protocol: a bounded window of future slots, each holding the set of
// segment instances scheduled for transmission during that slot.
//
// The window advances one slot at a time; retired slots report their load to
// the caller, which feeds the bandwidth statistics. Because no protocol in
// this repository ever schedules further than n slots ahead of the current
// slot, the window is a fixed-size ring and all operations are O(1) or
// O(window span).
package slots

import "fmt"

// Ring is a fixed-horizon window of future transmission slots. Slot indices
// are absolute and monotonically increasing; the ring tracks slots
// [Base, Base+Horizon-1].
type Ring struct {
	horizon   int
	base      int
	loads     []int
	segs      [][]int
	trackSegs bool
}

// NewRing returns a ring tracking horizon consecutive slots starting at
// absolute slot base. If trackSegs is true the ring also records which
// segment ids were scheduled in each slot (used by golden tests and the
// schedule visualizer; the hot simulation path leaves it off).
func NewRing(horizon, base int, trackSegs bool) *Ring {
	if horizon <= 0 {
		panic("slots: horizon must be positive")
	}
	r := &Ring{
		horizon:   horizon,
		base:      base,
		loads:     make([]int, horizon),
		trackSegs: trackSegs,
	}
	if trackSegs {
		r.segs = make([][]int, horizon)
	}
	return r
}

// Base reports the absolute index of the earliest tracked slot.
func (r *Ring) Base() int { return r.base }

// End reports the absolute index of the latest tracked slot.
func (r *Ring) End() int { return r.base + r.horizon - 1 }

// Horizon reports the number of tracked slots.
func (r *Ring) Horizon() int { return r.horizon }

func (r *Ring) pos(abs int) int {
	if abs < r.base || abs > r.End() {
		panic(fmt.Sprintf("slots: slot %d outside window [%d, %d]", abs, r.base, r.End()))
	}
	return abs % r.horizon
}

// Load reports the number of segment instances scheduled in slot abs.
func (r *Ring) Load(abs int) int { return r.loads[r.pos(abs)] }

// Add schedules one instance of segment seg in slot abs.
func (r *Ring) Add(abs, seg int) {
	p := r.pos(abs)
	r.loads[p]++
	if r.trackSegs {
		r.segs[p] = append(r.segs[p], seg)
	}
}

// Segments returns the segment ids scheduled in slot abs, in scheduling
// order. It returns nil unless the ring was built with trackSegs.
func (r *Ring) Segments(abs int) []int {
	if !r.trackSegs {
		return nil
	}
	p := r.pos(abs)
	out := make([]int, len(r.segs[p]))
	copy(out, r.segs[p])
	return out
}

// MinLoadLatest scans slots [from, to] and returns the slot with the minimum
// load, preferring the latest slot among ties — the DHB heuristic of
// Figure 6. Both bounds must lie inside the window and from <= to.
func (r *Ring) MinLoadLatest(from, to int) (slot, load int) {
	if from > to {
		panic(fmt.Sprintf("slots: empty scan range [%d, %d]", from, to))
	}
	slot, load = to, r.Load(to)
	for s := to - 1; s >= from; s-- {
		if l := r.Load(s); l < load {
			slot, load = s, l
		}
	}
	return slot, load
}

// MinLoadEarliest scans slots [from, to] and returns the slot with the
// minimum load, preferring the earliest slot among ties — the ablated
// tie-breaking rule core's PolicyMinLoadEarliest studies.
func (r *Ring) MinLoadEarliest(from, to int) (slot, load int) {
	if from > to {
		panic(fmt.Sprintf("slots: empty scan range [%d, %d]", from, to))
	}
	slot, load = from, r.Load(from)
	for s := from + 1; s <= to; s++ {
		if l := r.Load(s); l < load {
			slot, load = s, l
		}
	}
	return slot, load
}

// Retire removes the earliest slot from the window, appends a fresh empty
// slot at the far end, and returns the retired slot's absolute index and
// load. Segment ids, when tracked, are returned in scheduling order and the
// returned slice is owned by the caller.
func (r *Ring) Retire() (abs, load int, segs []int) {
	abs = r.base
	p := abs % r.horizon
	load = r.loads[p]
	r.loads[p] = 0
	if r.trackSegs {
		segs = r.segs[p]
		r.segs[p] = nil
	}
	r.base++
	return abs, load, segs
}
