package history

import (
	"fmt"
	"testing"
	"time"

	"vodcast/internal/obs"
)

// benchRegistry builds a registry with n gauge series, roughly the shape of
// the server's metric inventory.
func benchRegistry(n int) *obs.Registry {
	reg := obs.NewRegistry()
	for i := 0; i < n; i++ {
		reg.GaugeWith("vod_channel_load", "", obs.Labels{"video": fmt.Sprint(i)}).Set(float64(i))
	}
	return reg
}

// BenchmarkStoreScrape measures one full scrape pass over an established
// series set — the per-interval cost of having history enabled.
func BenchmarkStoreScrape(b *testing.B) {
	reg := benchRegistry(64)
	clk := newManualClock()
	s := New(Config{Samples: reg.Samples, Interval: time.Second, Clock: clk.Now})
	s.Scrape() // establish series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		s.Scrape()
	}
}

// BenchmarkStoreQuery measures a raw-tier range query over a full ring.
func BenchmarkStoreQuery(b *testing.B) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	clk := newManualClock()
	s := New(Config{Samples: reg.Samples, Interval: time.Second, Clock: clk.Now})
	start := clk.Now()
	for i := 0; i < pointsPerTier; i++ {
		g.Set(float64(i))
		s.Scrape()
		clk.Advance(time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Query("g", start, clk.Now(), 0); len(pts) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkNilStoreScrape pins the disabled path: a nil store's Scrape is
// the branch the server pays when history is off, and it must stay
// allocation-free.
func BenchmarkNilStoreScrape(b *testing.B) {
	var s *Store
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scrape()
		s.Query("g", time.Time{}, time.Time{}, 0)
	}
}

// BenchmarkNilRecorderTrigger pins the disabled recorder path on the alert
// transition hook.
func BenchmarkNilRecorderTrigger(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Trigger("alert")
	}
}
