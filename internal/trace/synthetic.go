package trace

import (
	"fmt"

	"vodcast/internal/sim"
)

// SyntheticConfig parameterizes the MPEG-like synthetic trace generator. The
// generator produces a raw activity series (scene-level AR(1) modulation,
// GOP-periodic ripple, rare action bursts) and then calibrates it with an
// affine map so the resulting trace matches the requested mean and peak
// exactly.
type SyntheticConfig struct {
	// Seconds is the playback duration in whole seconds.
	Seconds int
	// MeanRate is the target average rate in bytes per second.
	MeanRate float64
	// PeakRate is the target maximum one-second rate in bytes per second.
	PeakRate float64
	// SceneMeanLength is the mean scene duration in seconds.
	SceneMeanLength float64
	// BurstProbability is the per-second chance that an action burst starts.
	BurstProbability float64
}

// MatrixConfig returns the configuration calibrated to the published
// statistics of the paper's trace: 8170 s, 636 KB/s mean, 951 KB/s peak
// (KB = 1000 bytes, as in the paper).
func MatrixConfig() SyntheticConfig {
	return SyntheticConfig{
		Seconds:          8170,
		MeanRate:         636e3,
		PeakRate:         951e3,
		SceneMeanLength:  40,
		BurstProbability: 0.004,
	}
}

// Synthetic generates a VBR trace from cfg using the deterministic seed.
// The returned trace satisfies Mean() == cfg.MeanRate and
// Peak() == cfg.PeakRate up to floating-point rounding.
func Synthetic(cfg SyntheticConfig, seed int64) (*Trace, error) {
	if cfg.Seconds <= 0 {
		return nil, fmt.Errorf("trace: duration %d must be positive", cfg.Seconds)
	}
	if cfg.MeanRate <= 0 || cfg.PeakRate <= cfg.MeanRate {
		return nil, fmt.Errorf("trace: need 0 < mean (%v) < peak (%v)", cfg.MeanRate, cfg.PeakRate)
	}
	if cfg.SceneMeanLength <= 1 {
		return nil, fmt.Errorf("trace: scene mean length %v must exceed 1 s", cfg.SceneMeanLength)
	}

	rng := sim.NewRNG(seed)
	raw := make([]float64, cfg.Seconds)

	var (
		sceneLevel float64 // base activity of the current scene, in [0.25, 1]
		sceneLeft  int     // seconds remaining in the current scene
		ar         float64 // within-scene AR(1) fluctuation
		burstLeft  int     // seconds remaining in the current action burst
	)
	for i := range raw {
		if sceneLeft == 0 {
			sceneLeft = 1 + int(rng.Exp(cfg.SceneMeanLength))
			sceneLevel = 0.25 + 0.75*rng.Float64()
		}
		sceneLeft--
		ar = 0.85*ar + 0.15*rng.NormFloat64()
		if burstLeft == 0 && rng.Float64() < cfg.BurstProbability {
			burstLeft = 2 + rng.Intn(8)
		}
		burst := 0.0
		if burstLeft > 0 {
			burstLeft--
			burst = 0.6
		}
		// GOP-periodic ripple: large I-frames roughly every half second
		// show up as a mild periodic component at 1-second granularity.
		gop := 0.05 * gopRipple(i)
		v := sceneLevel + 0.12*ar + burst + gop
		if v < 0.05 {
			v = 0.05
		}
		raw[i] = v
	}

	// Affine calibration rate = c0 + c1*raw matching the sample mean and
	// maximum to the requested statistics exactly.
	var sum, max, min float64
	min = raw[0]
	for _, v := range raw {
		sum += v
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	mean := sum / float64(len(raw))
	if max <= mean {
		return nil, fmt.Errorf("trace: degenerate raw series (max %v <= mean %v)", max, mean)
	}
	c1 := (cfg.PeakRate - cfg.MeanRate) / (max - mean)
	c0 := cfg.MeanRate - c1*mean
	if c0+c1*min <= 0 {
		return nil, fmt.Errorf("trace: calibration produced non-positive minimum rate %v; widen mean/peak gap", c0+c1*min)
	}
	rates := make([]float64, len(raw))
	for i, v := range raw {
		rates[i] = c0 + c1*v
	}
	return New(rates)
}

// SyntheticMatrix generates the Matrix-calibrated trace used by the Figure 9
// reproduction.
func SyntheticMatrix(seed int64) (*Trace, error) {
	return Synthetic(MatrixConfig(), seed)
}

// gopRipple is a cheap deterministic periodic component standing in for the
// I/P/B frame cadence visible at coarse granularity.
func gopRipple(i int) float64 {
	switch i % 4 {
	case 0:
		return 1
	case 2:
		return -1
	default:
		return 0
	}
}
