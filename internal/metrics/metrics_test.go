package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBandwidthMean(t *testing.T) {
	b := NewBandwidth()
	b.Record(2, 10)
	b.Record(4, 10)
	if got := b.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := b.Max(); got != 4 {
		t.Fatalf("Max = %v, want 4", got)
	}
}

func TestBandwidthWeighting(t *testing.T) {
	b := NewBandwidth()
	b.Record(1, 90)
	b.Record(10, 10)
	want := (1*90 + 10*10) / 100.0
	if got := b.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestBandwidthEmptyMean(t *testing.T) {
	b := NewBandwidth()
	if b.Mean() != 0 || b.Max() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestBandwidthZeroWeightUpdatesMax(t *testing.T) {
	b := NewBandwidth()
	b.Record(7, 0)
	if b.Max() != 7 {
		t.Fatalf("Max = %v, want 7 after zero-weight peak", b.Max())
	}
	if b.Mean() != 0 {
		t.Fatalf("Mean = %v, want 0 (zero weight)", b.Mean())
	}
}

func TestBandwidthNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	NewBandwidth().Record(1, -1)
}

func TestBandwidthQuantile(t *testing.T) {
	b := NewBandwidth()
	b.Record(1, 50)
	b.Record(2, 30)
	b.Record(3, 20)
	tests := []struct {
		q    float64
		want int
	}{
		{q: 0.5, want: 1},
		{q: 0.6, want: 2},
		{q: 0.8, want: 2},
		{q: 0.9, want: 3},
		{q: 1.0, want: 3},
	}
	for _, tt := range tests {
		if got := b.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %d, want %d", tt.q, got, tt.want)
		}
	}
}

func TestBandwidthQuantileEdges(t *testing.T) {
	b := NewBandwidth()
	if b.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	b.Record(4, 10)
	if b.Quantile(2) != 4 {
		t.Fatal("q > 1 should clamp to max load")
	}
	if b.Quantile(0) != 0 {
		t.Fatal("q <= 0 should report 0")
	}
}

func TestBandwidthHistogramIsCopy(t *testing.T) {
	b := NewBandwidth()
	b.Record(2, 5)
	h := b.Histogram()
	h[2] = 999
	if b.Histogram()[2] != 5 {
		t.Fatal("Histogram exposed internal state")
	}
}

func TestBandwidthString(t *testing.T) {
	b := NewBandwidth()
	b.Record(2, 10)
	if s := b.String(); !strings.Contains(s, "mean=2.000") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBandwidthMeanBoundedByMaxProperty(t *testing.T) {
	f := func(loads []float64) bool {
		b := NewBandwidth()
		for _, l := range loads {
			v := math.Mod(math.Abs(l), 1e6)
			if math.IsNaN(v) {
				v = 0
			}
			b.Record(v, 1)
		}
		return b.Mean() <= b.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitStats(t *testing.T) {
	w := NewWait()
	w.Record(10)
	w.Record(20)
	w.Record(60)
	if got := w.Mean(); got != 30 {
		t.Fatalf("Mean = %v, want 30", got)
	}
	if got := w.Max(); got != 60 {
		t.Fatalf("Max = %v, want 60", got)
	}
	if got := w.Count(); got != 3 {
		t.Fatalf("Count = %v, want 3", got)
	}
}

func TestWaitEmpty(t *testing.T) {
	w := NewWait()
	if w.Mean() != 0 || w.Max() != 0 || w.Count() != 0 {
		t.Fatal("empty wait accumulator should report zeros")
	}
}

func TestWaitNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative wait did not panic")
		}
	}()
	NewWait().Record(-1)
}

func TestCounterStepFunction(t *testing.T) {
	bw := NewBandwidth()
	c := NewCounter(bw)
	c.Set(0, 0)
	c.Add(2, 10)  // value 0 for [0,10)
	c.Add(1, 20)  // value 2 for [10,20)
	c.Add(-3, 40) // value 3 for [20,40)
	c.Finish(50)  // value 0 for [40,50)
	want := (0*10 + 2*10 + 3*20 + 0*10) / 50.0
	if got := bw.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if bw.Max() != 3 {
		t.Fatalf("Max = %v, want 3", bw.Max())
	}
}

func TestCounterInstantPeakCounts(t *testing.T) {
	bw := NewBandwidth()
	c := NewCounter(bw)
	c.Set(0, 0)
	c.Set(9, 5)
	c.Set(0, 5) // peak of 9 lasted zero time
	c.Finish(10)
	if bw.Max() != 9 {
		t.Fatalf("Max = %v, want 9 (instantaneous peak)", bw.Max())
	}
}

func TestCounterBackwardsTimePanics(t *testing.T) {
	c := NewCounter(NewBandwidth())
	c.Set(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	c.Set(2, 5)
}

func TestCounterValue(t *testing.T) {
	c := NewCounter(NewBandwidth())
	c.Set(4, 0)
	c.Add(-1, 1)
	if c.Value() != 3 {
		t.Fatalf("Value = %v, want 3", c.Value())
	}
}

func TestBandwidthAccessors(t *testing.T) {
	b := NewBandwidth()
	b.Record(2, 5)
	b.Record(3, 0)
	if b.Samples() != 2 {
		t.Fatalf("Samples = %d, want 2", b.Samples())
	}
	if b.TotalWeight() != 5 {
		t.Fatalf("TotalWeight = %v, want 5", b.TotalWeight())
	}
}
