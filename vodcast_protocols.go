package vodcast

// This file groups the related-work protocols the paper evaluates DHB
// against: the static broadcast mappings of Figures 1-3, the dynamic
// (on-demand) protocols built over them, and the reactive protocol family.

import (
	"vodcast/internal/broadcast"
	"vodcast/internal/dynamic"
	"vodcast/internal/reactive"
)

// ---- Static broadcasting protocols (related work) ----

// Mapping is a static segment-to-stream broadcast schedule.
type Mapping = broadcast.Mapping

// FastBroadcast builds Juhn and Tseng's FB mapping (Figure 1).
func FastBroadcast(n int) (*Mapping, error) { return broadcast.FastBroadcast(n) }

// Skyscraper builds Hua and Sheu's SB mapping (Figure 3).
func Skyscraper(n int) (*Mapping, error) { return broadcast.Skyscraper(n) }

// Pagoda builds the pagoda-family mapping standing in for NPB (Figure 2).
func Pagoda(n int) (*Mapping, error) { return broadcast.Pagoda(n) }

// NPBFigure2 returns the canonical three-stream NPB mapping of Figure 2.
func NPBFigure2() (*Mapping, error) { return broadcast.NPBFigure2() }

// ---- Dynamic (on-demand) broadcasting protocols ----

// OnDemand is a dynamic broadcasting protocol over a static mapping.
type OnDemand = dynamic.OnDemand

// NewUD builds the universal distribution protocol for n segments.
func NewUD(n int) (*OnDemand, error) { return dynamic.UD(n) }

// NewDynamicPagoda builds the on-demand pagoda protocol of Section 3's
// ablation.
func NewDynamicPagoda(n int) (*OnDemand, error) { return dynamic.DynamicPagoda(n) }

// NewDSB builds Eager and Vernon's dynamic skyscraper broadcasting.
func NewDSB(n int) (*OnDemand, error) { return dynamic.DSB(n) }

// ---- Reactive protocols ----

// ReactiveConfig parameterizes a reactive-protocol simulation.
type ReactiveConfig = reactive.Config

// ReactiveResult summarizes a reactive-protocol run.
type ReactiveResult = reactive.Result

// Tapping simulates stream tapping / patching with unlimited client buffers.
func Tapping(cfg ReactiveConfig) (ReactiveResult, error) { return reactive.Tapping(cfg) }

// HMSM simulates Eager and Vernon's hierarchical multicast stream merging.
func HMSM(cfg ReactiveConfig) (ReactiveResult, error) { return reactive.HMSM(cfg) }

// Piggybacking simulates adaptive piggybacking with the given display-rate
// alteration (classically 0.05).
func Piggybacking(cfg ReactiveConfig, delta float64) (ReactiveResult, error) {
	return reactive.Piggybacking(cfg, delta)
}

// Batching simulates request batching with the given window.
func Batching(cfg ReactiveConfig, windowSeconds float64) (ReactiveResult, error) {
	return reactive.Batching(cfg, windowSeconds)
}

// SelectiveCatching simulates the hybrid of dedicated staggered broadcasts
// plus shared catch-up streams.
func SelectiveCatching(cfg ReactiveConfig, channels int) (ReactiveResult, error) {
	return reactive.SelectiveCatching(cfg, channels)
}

// MergingLowerBound is the ln(1 + lambda D) bound on any zero-delay reactive
// protocol's average bandwidth.
func MergingLowerBound(ratePerHour, videoSeconds float64) float64 {
	return reactive.MergingLowerBound(ratePerHour, videoSeconds)
}
