package vodserver

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/obs/history"
	"vodcast/internal/vodclient"
)

// This file tests the retained-telemetry surface end to end: the /metricsz
// prefix filter, the /queryz range API, the ring-depth high-watermark wiring,
// and the flight recorder — including the full fault-injection E2E where a
// firing miss alert captures a bundle whose history explains the firing.

// queryzRange mirrors the /queryz range response shape.
type queryzRange struct {
	Series string          `json:"series"`
	From   float64         `json:"from"`
	To     float64         `json:"to"`
	StepMS int64           `json:"step_ms"`
	Points []history.Point `json:"points"`
}

// queryzIndex mirrors the /queryz series-listing response shape.
type queryzIndex struct {
	Series []string      `json:"series"`
	Stats  history.Stats `json:"stats"`
}

// TestMetricszPrefix pins the ?prefix= family filter: the filtered dump
// carries exactly the matching families and the default stays the full dump.
func TestMetricszPrefix(t *testing.T) {
	s := startStatusServer(t, nil)
	code, full := get(t, s, "/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz = %d", code)
	}
	code, filtered := get(t, s, "/metricsz?prefix=station_")
	if code != http.StatusOK {
		t.Fatalf("metricsz?prefix= = %d", code)
	}
	if !strings.Contains(full, "vod_requests_total") || !strings.Contains(full, "station_clock_ticks_total") {
		t.Fatalf("full dump incomplete:\n%s", full)
	}
	if !strings.Contains(filtered, "station_clock_ticks_total") {
		t.Fatalf("prefix dump missing matching family:\n%s", filtered)
	}
	for _, line := range strings.Split(filtered, "\n") {
		if line == "" {
			continue
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(line, "# HELP "), "# TYPE ")
		if !strings.HasPrefix(rest, "station_") {
			t.Fatalf("prefix dump leaked non-matching line %q", line)
		}
	}
	// The filtered dump is a verbatim subset of the full dump: same bytes,
	// same order — the golden property scrape diffing relies on.
	for _, line := range strings.Split(strings.TrimSpace(filtered), "\n") {
		if !strings.Contains(full, line) {
			t.Fatalf("filtered line %q not in full dump", line)
		}
	}
}

// TestRingDepthWatermarkWiring drives the server's watermark directly and
// reads it back through /metricsz twice: the spike survives to the first
// scrape after it and the read resets the interval.
func TestRingDepthWatermarkWiring(t *testing.T) {
	// History is disabled so its background scrape cannot consume the
	// watermark between Record and the /metricsz read below.
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A spike tick followed by quieter ticks, as fanOut would record them.
	s.ringDepth.Record(17)
	s.ringDepth.Record(2)
	_, body := get(t, s, "/metricsz?prefix=vod_fanout_ring_depth_max")
	if !strings.Contains(body, "vod_fanout_ring_depth_max 17\n") {
		t.Fatalf("spike lost before first scrape:\n%s", body)
	}
	_, body = get(t, s, "/metricsz?prefix=vod_fanout_ring_depth_max")
	if !strings.Contains(body, "vod_fanout_ring_depth_max 0\n") {
		t.Fatalf("watermark not reset by scrape:\n%s", body)
	}
}

// TestQueryzEndpoint covers the /queryz API against a live store: the series
// listing, a range query with points, and the parameter validation.
func TestQueryzEndpoint(t *testing.T) {
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitFor(t, "history scrapes", func() bool {
		return s.History().Stats().Scrapes >= 5
	})

	// No series: the discovery listing, with store stats.
	code, body := get(t, s, "/queryz")
	if code != http.StatusOK {
		t.Fatalf("queryz = %d", code)
	}
	var idx queryzIndex
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("queryz body: %v\n%s", err, body)
	}
	found := false
	for _, name := range idx.Series {
		if name == "vod_uptime_seconds" {
			found = true
		}
	}
	if !found || idx.Stats.Scrapes < 5 {
		t.Fatalf("queryz index wrong: %+v", idx)
	}

	// A range query returns timestamped points for the series.
	code, body = get(t, s, "/queryz?series=vod_uptime_seconds")
	if code != http.StatusOK {
		t.Fatalf("queryz?series = %d", code)
	}
	var rng queryzRange
	if err := json.Unmarshal([]byte(body), &rng); err != nil {
		t.Fatalf("queryz range body: %v", err)
	}
	if len(rng.Points) < 5 {
		t.Fatalf("queryz returned %d points, want >= 5: %+v", len(rng.Points), rng)
	}
	last := rng.Points[len(rng.Points)-1]
	if last.Value <= rng.Points[0].Value {
		t.Fatalf("uptime series not increasing: %+v", rng.Points)
	}
	if last.Unix < rng.From || last.Unix > rng.To {
		t.Fatalf("point %v outside [%v, %v]", last.Unix, rng.From, rng.To)
	}

	// Unknown series: valid query, empty points.
	code, body = get(t, s, "/queryz?series=no_such_series")
	if code != http.StatusOK {
		t.Fatalf("unknown series = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &rng); err != nil || len(rng.Points) != 0 {
		t.Fatalf("unknown series points: %v %+v", err, rng.Points)
	}

	// Parameter validation: every rejected shape answers 400 without
	// touching the store, and the boundary-adjacent valid shapes still pass.
	for _, tc := range []struct {
		name string
		url  string
		want int
	}{
		{"from not a time", "/queryz?series=x&from=notatime", http.StatusBadRequest},
		{"to not a time", "/queryz?series=x&to=alsonot", http.StatusBadRequest},
		{"step not a duration", "/queryz?series=x&step=sideways", http.StatusBadRequest},
		{"step negative", "/queryz?series=x&step=-5s", http.StatusBadRequest},
		{"step zero", "/queryz?series=x&step=0", http.StatusBadRequest},
		{"step zero with unit", "/queryz?series=x&step=0s", http.StatusBadRequest},
		{"from after to", "/queryz?series=x&from=2000000000&to=1000000000", http.StatusBadRequest},
		{"from after to rfc3339", "/queryz?series=x&from=2026-01-02T00:00:00Z&to=2026-01-01T00:00:00Z", http.StatusBadRequest},
		{"from equals to is valid", "/queryz?series=x&from=1000000000&to=1000000000", http.StatusOK},
		{"positive step is valid", "/queryz?series=x&step=5s", http.StatusOK},
		{"unix float bounds are valid", "/queryz?series=x&from=1000000000.5&to=2000000000.5", http.StatusOK},
	} {
		if code, _ := get(t, s, tc.url); code != tc.want {
			t.Fatalf("%s: GET %s = %d, want %d", tc.name, tc.url, code, tc.want)
		}
	}
}

// TestQueryzSeriesCapExcludesRefused pins the series-cap refusal accounting
// through the HTTP surface: a store capped well below the registry's family
// count admits only the first few series, counts every refusal, and the
// /queryz discovery listing advertises exactly the admitted identities —
// never a refused series with no retained data behind it.
func TestQueryzSeriesCapExcludesRefused(t *testing.T) {
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryInterval: 20 * time.Millisecond,
		// Room for three series; the registry exports far more.
		HistoryMaxBytes: 3 * history.SeriesCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitFor(t, "history scrapes", func() bool {
		return s.History().Stats().Scrapes >= 2
	})

	code, body := get(t, s, "/queryz")
	if code != http.StatusOK {
		t.Fatalf("queryz = %d", code)
	}
	var idx queryzIndex
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("queryz body: %v\n%s", err, body)
	}
	if len(idx.Series) != 3 {
		t.Fatalf("capped listing advertises %d series, want 3: %v", len(idx.Series), idx.Series)
	}
	if idx.Stats.DroppedSeries == 0 {
		t.Fatalf("no refusals counted despite the cap: %+v", idx.Stats)
	}
	if idx.Stats.Bytes > idx.Stats.MaxBytes {
		t.Fatalf("resident bytes %d exceed cap %d", idx.Stats.Bytes, idx.Stats.MaxBytes)
	}
	// vod_uptime_seconds sorts far past the first three families, so the cap
	// must have refused it — the listing is how an operator learns that.
	for _, name := range idx.Series {
		if name == "vod_uptime_seconds" {
			t.Fatalf("refused series leaked into the listing: %v", idx.Series)
		}
	}
	// Querying a refused series over HTTP is a valid empty range, not an
	// error and not fabricated points.
	code, body = get(t, s, "/queryz?series=vod_uptime_seconds")
	if code != http.StatusOK {
		t.Fatalf("refused-series query = %d", code)
	}
	var rng queryzRange
	if err := json.Unmarshal([]byte(body), &rng); err != nil {
		t.Fatalf("queryz range body: %v", err)
	}
	if len(rng.Points) != 0 {
		t.Fatalf("refused series served %d points", len(rng.Points))
	}
	// An admitted series answers with real points over the same surface.
	code, body = get(t, s, "/queryz?series="+idx.Series[0])
	if code != http.StatusOK {
		t.Fatalf("admitted-series query = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &rng); err != nil {
		t.Fatalf("queryz range body: %v", err)
	}
	if len(rng.Points) < 2 {
		t.Fatalf("admitted series %q has %d points, want >= 2", idx.Series[0], len(rng.Points))
	}
}

// TestQueryzAndFlightDisabled: a server without history answers /queryz 503,
// and one without a flight dir answers /debug/flightrecord 503 — while both
// keep the shared routing guards.
func TestQueryzAndFlightDisabled(t *testing.T) {
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.History() != nil {
		t.Fatal("HistoryDisabled left a live store")
	}
	if code, _ := get(t, s, "/queryz"); code != http.StatusServiceUnavailable {
		t.Fatalf("queryz disabled = %d, want 503", code)
	}
	if code, _ := get(t, s, "/debug/flightrecord"); code != http.StatusServiceUnavailable {
		t.Fatalf("flightrecord disabled = %d, want 503", code)
	}
	if _, err := s.FlightRecord("test"); err == nil {
		t.Fatal("FlightRecord without FlightDir returned no error")
	}
	// Routing guards hold even when the feature is disabled.
	for _, path := range []string{"/queryz", "/debug/flightrecord"} {
		url := "http://" + s.StatsAddr() + path
		resp, err := http.Post(url, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, resp.StatusCode)
		}
		if code, _ := get(t, s, path+"/sub"); code != http.StatusNotFound {
			t.Fatalf("GET %s/sub did not 404", path)
		}
	}
}

// TestFlightRecordEndpoint forces a capture over HTTP and checks the bundle
// lands well-formed under the configured directory.
func TestFlightRecordEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		HistoryInterval: 20 * time.Millisecond,
		FlightDir:       dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitFor(t, "history scrapes", func() bool {
		return s.History().Stats().Scrapes >= 3
	})

	code, body := get(t, s, "/debug/flightrecord")
	if code != http.StatusOK {
		t.Fatalf("flightrecord = %d: %s", code, body)
	}
	var doc struct {
		Bundle string                `json:"bundle"`
		Stats  history.RecorderStats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("flightrecord body: %v", err)
	}
	if doc.Stats.Captured != 1 {
		t.Fatalf("recorder stats = %+v, want captured=1", doc.Stats)
	}
	for _, f := range []string{"meta.json", "history.jsonl", "spans.jsonl", "status.json", "alerts.json", "goroutine.pprof", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(doc.Bundle, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}
	// status.json decodes as the same document /statusz serves, including
	// history and flight sections.
	var snap StatusSnapshot
	raw, err := os.ReadFile(filepath.Join(doc.Bundle, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("status.json: %v", err)
	}
	if snap.History == nil || snap.History.Scrapes == 0 || snap.Flight == nil {
		t.Fatalf("status.json missing history/flight sections: %+v", snap)
	}
}

// TestE2EFlightRecorder is the acceptance E2E: under DropInstance fault
// injection the miss-rate alert fires, exactly one bundle is captured within
// the cooldown window, the bundle's metric history shows the miss-rate
// step-up that preceded the transition, and /queryz serves the same series
// over HTTP.
func TestE2EFlightRecorder(t *testing.T) {
	flightDir := t.TempDir()
	var dropping atomic.Bool
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		QoEWindow:       4,
		HistoryInterval: 20 * time.Millisecond,
		FlightDir:       flightDir,
		FlightCooldown:  time.Hour, // at most one alert-triggered bundle
		// A generous SLO keeps the first_byte_slo_burn rule quiet on slow CI
		// machines: the only firing rule must be the injected miss alert.
		SLOTargetSeconds: 10,
		// Evaluations are driven by hand for determinism.
		AlertInterval:     time.Hour,
		AlertFor:          50 * time.Millisecond,
		MissRateThreshold: 0.5,
		DropInstance: func(video uint32, segment, _ int) bool {
			return dropping.Load() && video == 1 && segment == 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Phase 1 — healthy: sessions report zero misses, history records the
	// flat-zero miss-rate baseline the step-up will stand out against.
	for i := 0; i < 3; i++ {
		if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{
			VideoID: 1, Timeout: 10 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "healthy reports ingested", func() bool { return s.QoE().Reports >= 3 })
	baseline := s.History().Stats().Scrapes
	waitFor(t, "healthy baseline scraped", func() bool {
		return s.History().Stats().Scrapes >= baseline+3
	})
	s.Alerts().Eval()
	if st := ruleState(t, s, "client_deadline_miss_rate"); st != obs.StateInactive {
		t.Fatalf("healthy miss alert = %s, want inactive", st)
	}
	if got := len(bundleDirs(t, flightDir)); got != 0 {
		t.Fatalf("%d bundles before any firing", got)
	}

	// Phase 2 — fault injection: the miss alert walks pending → firing, and
	// the firing transition captures exactly one bundle synchronously.
	dropping.Store(true)
	for i := 0; i < 4; i++ {
		res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{
			VideoID: 1, Timeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeadlineMisses == 0 {
			t.Fatalf("dropped segment not observed: %+v", res)
		}
	}
	waitFor(t, "miss reports ingested", func() bool { return s.QoE().Reports >= 7 })
	// Let the elevated miss rate land in history before the transition.
	elevated := s.History().Stats().Scrapes
	waitFor(t, "elevated miss rate scraped", func() bool {
		return s.History().Stats().Scrapes >= elevated+2
	})
	s.Alerts().Eval() // inactive → pending: no bundle yet
	if got := len(bundleDirs(t, flightDir)); got != 0 {
		t.Fatalf("%d bundles while merely pending", got)
	}
	time.Sleep(60 * time.Millisecond) // AlertFor is 50ms
	s.Alerts().Eval()                 // pending → firing: captures the bundle
	if st := ruleState(t, s, "client_deadline_miss_rate"); st != obs.StateFiring {
		t.Fatalf("held breach = %s, want firing", st)
	}
	bundles := bundleDirs(t, flightDir)
	if len(bundles) != 1 {
		t.Fatalf("firing captured %d bundles, want exactly 1: %v", len(bundles), bundles)
	}
	if !strings.Contains(bundles[0], "alert_client_deadline_miss_rate") {
		t.Fatalf("bundle name missing triggering rule: %s", bundles[0])
	}
	// Re-evaluating while still firing captures nothing more (no transition,
	// and the cooldown holds regardless).
	s.Alerts().Eval()
	if got := len(bundleDirs(t, flightDir)); got != 1 {
		t.Fatalf("still-firing eval grew bundles to %d", got)
	}

	// The bundle's miss-rate history shows the step-up preceding the
	// transition: a zero-valued healthy baseline followed by points above
	// the threshold.
	bundle := filepath.Join(flightDir, bundles[0])
	miss := bundleSeries(t, filepath.Join(bundle, "history.jsonl"), "vod_qoe_miss_rate")
	if len(miss) < 4 {
		t.Fatalf("bundled miss-rate history too short: %+v", miss)
	}
	sawZero, sawElevated := false, false
	for _, p := range miss {
		if p.Value == 0 {
			sawZero = true
		}
		if sawZero && p.Value > 0.5 {
			sawElevated = true
		}
	}
	if !sawZero || !sawElevated {
		t.Fatalf("miss-rate step-up not recorded (zero=%v elevated=%v): %+v",
			sawZero, sawElevated, miss)
	}
	// alerts.json was snapshotted after the transition: the rule is firing.
	var alerts []obs.AlertStatus
	rawAlerts, err := os.ReadFile(filepath.Join(bundle, "alerts.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawAlerts, &alerts); err != nil {
		t.Fatal(err)
	}
	firingSeen := false
	for _, a := range alerts {
		if a.Name == "client_deadline_miss_rate" && a.State == obs.StateFiring {
			firingSeen = true
		}
	}
	if !firingSeen {
		t.Fatalf("bundle alerts.json does not show the firing rule: %+v", alerts)
	}

	// /queryz serves the same series over HTTP with the same step-up.
	code, body := get(t, s, "/queryz?series=vod_qoe_miss_rate")
	if code != http.StatusOK {
		t.Fatalf("queryz = %d", code)
	}
	var rng queryzRange
	if err := json.Unmarshal([]byte(body), &rng); err != nil {
		t.Fatalf("queryz body: %v", err)
	}
	var maxV float64
	for _, p := range rng.Points {
		if p.Value > maxV {
			maxV = p.Value
		}
	}
	if len(rng.Points) < 4 || maxV <= 0.5 {
		t.Fatalf("queryz miss-rate history wrong (%d points, max %v)", len(rng.Points), maxV)
	}
}

// bundleDirs lists bundle directory names under dir.
func bundleDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			names = append(names, e.Name())
		}
	}
	return names
}

// bundleSeries extracts one series' points from a bundle's history.jsonl.
func bundleSeries(t *testing.T, path, series string) []history.Point {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var line struct {
			Series string          `json:"series"`
			Points []history.Point `json:"points"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad history line %q: %v", sc.Text(), err)
		}
		if line.Series == series {
			return line.Points
		}
	}
	t.Fatalf("series %q not in %s", series, path)
	return nil
}
