package vodcast

// This file groups the serving system: the sharded multi-video station
// engine, the catalogue simulation built on it, the networked server/client
// pair, and disk provisioning for the resulting schedules.

import (
	"io"
	"time"

	"vodcast/internal/conntrack"
	"vodcast/internal/load"
	"vodcast/internal/obs"
	"vodcast/internal/obs/history"
	"vodcast/internal/server"
	"vodcast/internal/station"
	"vodcast/internal/storage"
	"vodcast/internal/vodclient"
	"vodcast/internal/vodserver"
	"vodcast/internal/wire"
)

// ---- The multi-video broadcast station ----

// Station is the sharded, concurrency-safe multi-video broadcast engine:
// one DHB scheduler per catalogue video, partitioned across worker shards
// so admissions for different videos proceed in parallel, with one clock
// fanning slot ticks out to every shard.
type Station = station.Station

// StationConfig parameterizes a station.
type StationConfig = station.Config

// StationVideo describes one catalogue video of a station.
type StationVideo = station.VideoConfig

// NewStation validates cfg and builds the broadcast engine.
func NewStation(cfg StationConfig) (*Station, error) { return station.New(cfg) }

// Sentinel errors of the station's admission and lifecycle paths.
var (
	ErrStationOverloaded = station.ErrOverloaded
	ErrUnknownVideo      = station.ErrUnknownVideo
	ErrStationClosed     = station.ErrClosed
)

// ---- Observability ----

// MetricsRegistry collects counters, gauges and histograms and renders them
// in the Prometheus text exposition format. Pass one to StationConfig or
// ServerConfig to instrument the admission pipeline.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// PipelineSpanTracer samples admission span trees and exports them as JSONL.
type PipelineSpanTracer = obs.SpanTracer

// PipelineSpan is one timed region of the admission pipeline.
type PipelineSpan = obs.Span

// SpanRecord is the exported form of one finished span.
type SpanRecord = obs.SpanRecord

// SpanStats summarizes a tracer's sampling decisions.
type SpanStats = obs.SpanStats

// NewPipelineSpanTracer builds a span tracer keeping 1-in-sampleEvery root
// trees; w may be nil to keep spans only in the in-memory ring.
func NewPipelineSpanTracer(w io.Writer, ringSize, sampleEvery int, seed int64) *PipelineSpanTracer {
	return obs.NewSpanTracer(w, ringSize, sampleEvery, seed)
}

// LatencyWindow tracks rolling quantiles and SLO burn over recent
// observations.
type LatencyWindow = obs.Window

// LatencySnapshot is one consistent read of a LatencyWindow.
type LatencySnapshot = obs.WindowSnapshot

// NewLatencyWindow builds a window over the last size observations (0
// selects the default).
func NewLatencyWindow(size int) *LatencyWindow { return obs.NewWindow(size) }

// AlertEngine evaluates declarative alert rules over live metrics on a
// ticker, walking each rule through the inactive/pending/firing/resolved
// state machine the /alertz endpoint and vodtop render.
type AlertEngine = obs.AlertEngine

// AlertRule is one declarative rule: a value source, a comparison against a
// threshold (or a staleness watch), and hold/retention durations.
type AlertRule = obs.AlertRule

// AlertStatus is the exported state of one rule after an evaluation.
type AlertStatus = obs.AlertStatus

// NewAlertEngine builds an empty alert engine; add rules then Start it, or
// hand rules to ServeConfig.AlertRules and let the server drive it.
func NewAlertEngine() *AlertEngine { return obs.NewAlertEngine() }

// AlertTransition is one rule state change delivered to the engine's
// OnTransition hook — the signal the flight recorder captures bundles on.
type AlertTransition = obs.AlertTransition

// MetricSample is one structured sample of a registry walk, the scrape
// format MetricHistory retains.
type MetricSample = obs.Sample

// MetricHistory is the in-process metric TSDB: per-series rings downsampled
// across raw/10s/1m tiers under a hard memory cap, range-queried by the
// /queryz endpoint.
type MetricHistory = history.Store

// MetricHistoryConfig parameterizes a history store (scrape source,
// interval, memory cap).
type MetricHistoryConfig = history.Config

// MetricHistoryStats snapshots a store's retention accounting.
type MetricHistoryStats = history.Stats

// MetricPoint is one retained sample of a series.
type MetricPoint = history.Point

// NewMetricHistory builds a store on cfg; call Start to begin scraping.
// It panics when cfg.Samples is nil.
func NewMetricHistory(cfg MetricHistoryConfig) *MetricHistory { return history.New(cfg) }

// FlightRecorder dumps bounded diagnostic bundles — metric history, span
// ring, status snapshot, alert states, goroutine and heap profiles — on
// alert transitions, SIGQUIT or operator request.
type FlightRecorder = history.Recorder

// FlightRecorderConfig parameterizes a recorder (bundle directory,
// cooldown, retention, capture sources).
type FlightRecorderConfig = history.RecorderConfig

// FlightRecorderStats snapshots a recorder's capture accounting.
type FlightRecorderStats = history.RecorderStats

// NewFlightRecorder builds a recorder writing bundles under cfg.Dir.
func NewFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	return history.NewRecorder(cfg)
}

// ConnSampler tracks per-subscriber transport telemetry: each sweep reads
// kernel TCP_INFO alongside the fan-out's userspace signals and classifies
// every tracked connection into a stall-attribution state with hysteresis.
// The networked server runs one automatically; embedders drive their own
// with Register/Sweep.
type ConnSampler = conntrack.Sampler

// ConnSamplerConfig parameterizes a sampler (sweep interval, classifier
// thresholds, hysteresis hold, metrics registry).
type ConnSamplerConfig = conntrack.Config

// ConnState is one stall-attribution verdict: healthy, receiver_limited,
// path_limited, sender_backpressured or stalled.
type ConnState = conntrack.State

// ConnSnapshot is one tracked connection's row of the /connz document.
type ConnSnapshot = conntrack.ConnSnapshot

// ConnSummary is the full /connz document (and the flight bundle's
// conns.json): state histogram, aggregate signals, per-connection rows.
type ConnSummary = conntrack.Summary

// NewConnSampler builds a transport-telemetry sampler; call Start for
// periodic sweeps or drive Sweep by hand.
func NewConnSampler(cfg ConnSamplerConfig) *ConnSampler { return conntrack.New(cfg) }

// StationStatus is the station's operator snapshot: shard table, per-video
// rows, stage latency windows and clock health.
type StationStatus = station.Status

// StationShardStatus is one row of the shard table.
type StationShardStatus = station.ShardStatus

// StationVideoStatus is one per-video row of the station snapshot.
type StationVideoStatus = station.VideoStatus

// StationClockStatus describes the broadcast clock's tick lag and drift.
type StationClockStatus = station.ClockStatus

// ServeStatus is the networked server's full /statusz snapshot, the
// document cmd/vodtop renders.
type ServeStatus = vodserver.StatusSnapshot

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap, GC) to a
// registry.
func RegisterRuntimeMetrics(r *MetricsRegistry) { obs.RegisterRuntime(r) }

// ---- Multi-video catalogue simulation ----

// ServerConfig parameterizes a multi-video DHB server simulation.
type ServerConfig = server.Config

// VideoSpec describes one catalogue entry of a server.
type VideoSpec = server.VideoSpec

// ServerReport summarizes a server run.
type ServerReport = server.Report

// Server is a configured multi-video simulation: a thin deterministic
// driver over the same Station engine the networked server uses.
type Server = server.Server

// NewServer validates cfg and prepares the broadcast engine.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ---- The networked system ----

// ServeConfig parameterizes the networked DHB video server.
type ServeConfig = vodserver.Config

// ServeVideo describes one servable video of the networked server.
type ServeVideo = vodserver.VideoConfig

// ServeStats is a snapshot of the networked server's counters.
type ServeStats = vodserver.Stats

// VODServer is a running networked DHB server.
type VODServer = vodserver.Server

// StartServer binds and runs the networked DHB server.
func StartServer(cfg ServeConfig) (*VODServer, error) { return vodserver.Start(cfg) }

// NewVBRVideo turns a Section 4 plan into a servable video.
func NewVBRVideo(id uint32, tr *Trace, plan VBRSolution, scale float64) (ServeVideo, error) {
	return vodserver.NewVBRVideo(id, tr, plan, scale)
}

// FetchResult describes one completed client session, including its QoE
// telemetry (startup delay, deadline slack, misses and rebuffers).
type FetchResult = vodclient.Result

// FetchOptions parameterizes a client session: video, resume point, timeout,
// and the v2 behaviours (trace join, end-of-session report, strict
// deadlines).
type FetchOptions = vodclient.FetchOptions

// ClientReport is the wire-level QoE summary a v2 session sends back to the
// server at its end.
type ClientReport = wire.ClientReport

// QoESnapshot is the server's aggregated view of reported client sessions,
// served inside /statusz.
type QoESnapshot = vodserver.QoESnapshot

// FetchWith requests a video with explicit options; the returned result
// carries the session's QoE telemetry.
func FetchWith(addr string, opts FetchOptions) (FetchResult, error) {
	return vodclient.FetchWith(addr, opts)
}

// SegmentPayloadForBench exposes the deterministic payload generator of the
// data plane for benchmarking and external verification tools.
func SegmentPayloadForBench(videoID, segment, size uint32) []byte {
	return wire.SegmentPayload(videoID, segment, size)
}

// ---- The load harness ----

// ClientPool runs client sessions against one server through a bounded
// number of concurrent connections, queueing (and measuring) the overflow
// instead of exhausting descriptors.
type ClientPool = vodclient.Pool

// ClientPoolStats snapshots a pool's lifetime counters.
type ClientPoolStats = vodclient.PoolStats

// NewClientPool returns a pool of at most maxConns connections to addr.
func NewClientPool(addr string, maxConns int) (*ClientPool, error) {
	return vodclient.NewPool(addr, maxConns)
}

// LoadHarness is the closed-loop load generator of cmd/vodload: concurrent
// QoE-tracking sessions over a ClientPool, stepped through a load profile,
// with every step gated against the analytic DHB capacity envelopes.
type LoadHarness = load.Harness

// LoadConfig parameterizes a harness run.
type LoadConfig = load.Config

// LoadStep is one plateau of a load profile.
type LoadStep = load.Step

// LoadGate tunes the analytic pass/fail envelopes.
type LoadGate = load.Gate

// LoadReport is the final machine-readable run artifact; LoadStepResult one
// finished step of it.
type LoadReport = load.Report

// LoadStepResult is one finished load step: merged client digests, the
// server-side delta, and the gate verdicts.
type LoadStepResult = load.StepResult

// LoadLiveStatus is the harness's instantaneous view, the payload of the
// vodtop load pane.
type LoadLiveStatus = load.LiveStatus

// NewLoadHarness validates cfg and prepares a load run.
func NewLoadHarness(cfg LoadConfig) (*LoadHarness, error) { return load.New(cfg) }

// LoadRampProfile climbs to peak sessions in equal plateaus over total.
func LoadRampProfile(peak, steps int, total time.Duration) ([]LoadStep, error) {
	return load.RampProfile(peak, steps, total)
}

// LoadSoakProfile holds one plateau for the whole run.
func LoadSoakProfile(sessions int, total time.Duration) ([]LoadStep, error) {
	return load.SoakProfile(sessions, total)
}

// LoadSpikeProfile runs base, spike, recover in three equal plateaus.
func LoadSpikeProfile(base, spike int, total time.Duration) ([]LoadStep, error) {
	return load.SpikeProfile(base, spike, total)
}

// ---- Storage provisioning ----

// Disk models one drive of the server's striped array.
type Disk = storage.Disk

// DiskSchedule is a recorded transmission plan for disk evaluation.
type DiskSchedule = storage.Schedule

// DiskRead identifies one segment read.
type DiskRead = storage.Read

// DiskReport describes how a schedule runs on a striped array.
type DiskReport = storage.Report

// CommodityDisk2001 returns era-typical drive parameters.
func CommodityDisk2001() Disk { return storage.CommodityDisk2001() }

// DisksNeeded reports the smallest striped array serving the schedule.
func DisksNeeded(d Disk, s DiskSchedule, maxDisks int) (int, error) {
	return storage.DisksNeeded(d, s, maxDisks)
}

// EvaluateDisks runs a schedule on an array of the given size.
func EvaluateDisks(d Disk, s DiskSchedule, disks int) (DiskReport, error) {
	return storage.Evaluate(d, s, disks)
}
