//go:build race

package fanout

// raceEnabled lets the alloc-count gate skip itself under the race
// detector, whose instrumentation allocates inside sync primitives.
const raceEnabled = true
