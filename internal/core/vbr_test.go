package core

import (
	"testing"

	"vodcast/internal/trace"
)

func planMatrix(t *testing.T) map[VBRVariant]VBRSolution {
	t.Helper()
	tr, err := trace.SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := PlanVBR(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

func TestPlanVBRSegmentCounts(t *testing.T) {
	plans := planMatrix(t)
	// Paper Section 4: 137 segments for a one-minute wait on the 8170 s
	// video; smoothing packs them into fewer (the paper's trace gave 129).
	if got := plans[VariantA].Segments; got != 137 {
		t.Fatalf("DHB-a segments = %d, want 137", got)
	}
	if got := plans[VariantB].Segments; got != 137 {
		t.Fatalf("DHB-b segments = %d, want 137", got)
	}
	c := plans[VariantC].Segments
	if c >= 137 || c < 120 {
		t.Fatalf("DHB-c segments = %d, want a modest reduction below 137", c)
	}
	if plans[VariantD].Segments != c {
		t.Fatalf("DHB-d segments = %d, want same as DHB-c's %d", plans[VariantD].Segments, c)
	}
}

func TestPlanVBRRateOrdering(t *testing.T) {
	tr, err := trace.SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := PlanVBR(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, d := plans[VariantA], plans[VariantB], plans[VariantC], plans[VariantD]
	// Section 4's chain: 951 (peak) > 789 (segment peak) > 671 (smoothed)
	// >= mean, and DHB-d reuses DHB-c's rate.
	if !(a.Rate > b.Rate && b.Rate > c.Rate && c.Rate >= tr.Mean()) {
		t.Fatalf("rate ordering violated: a=%.0f b=%.0f c=%.0f mean=%.0f", a.Rate, b.Rate, c.Rate, tr.Mean())
	}
	if d.Rate != c.Rate {
		t.Fatalf("DHB-d rate %.0f differs from DHB-c rate %.0f", d.Rate, c.Rate)
	}
	if a.Rate != tr.Peak() {
		t.Fatalf("DHB-a rate = %.0f, want trace peak %.0f", a.Rate, tr.Peak())
	}
}

func TestPlanVBRPeriods(t *testing.T) {
	plans := planMatrix(t)
	d := plans[VariantD]
	if d.Periods[1] != 1 {
		t.Fatalf("DHB-d T[1] = %d, want 1", d.Periods[1])
	}
	relaxed := 0
	for j := 1; j <= d.Segments; j++ {
		if d.Periods[j] < j {
			t.Fatalf("DHB-d T[%d] = %d below the CBR deadline", j, d.Periods[j])
		}
		if d.Periods[j] > j {
			relaxed++
		}
	}
	// "Nearly all other segments could be delayed by one to eight slots."
	if relaxed < d.Segments/2 {
		t.Fatalf("only %d/%d periods relaxed", relaxed, d.Segments)
	}
	for _, v := range []VBRVariant{VariantA, VariantB, VariantC} {
		p := plans[v].Periods
		for j := 1; j <= plans[v].Segments; j++ {
			if p[j] != j {
				t.Fatalf("%v T[%d] = %d, want identity", v, j, p[j])
			}
		}
	}
}

func TestPlanVBRSaturatedBandwidthOrdering(t *testing.T) {
	plans := planMatrix(t)
	a := plans[VariantA].SaturatedBandwidth()
	b := plans[VariantB].SaturatedBandwidth()
	c := plans[VariantC].SaturatedBandwidth()
	d := plans[VariantD].SaturatedBandwidth()
	// Figure 9's ordering at high request rates.
	if !(a > b && b > c && c > d) {
		t.Fatalf("saturated bandwidth not ordered: a=%.0f b=%.0f c=%.0f d=%.0f", a, b, c, d)
	}
	// Section 4: switching to a deterministic waiting time (a -> b) has
	// "the most impact" of any single step.
	if (a-b) < (b-c) || (a-b) < (c-d) {
		t.Fatalf("a->b saving %.0f should be the largest step (b->c %.0f, c->d %.0f)", a-b, b-c, c-d)
	}
}

func TestPlanVBRBuffers(t *testing.T) {
	plans := planMatrix(t)
	if plans[VariantC].WorkAheadBuffer <= 0 {
		t.Fatal("DHB-c must need a positive work-ahead buffer")
	}
	if plans[VariantD].WorkAheadBuffer <= 0 {
		t.Fatal("DHB-d must need a positive work-ahead buffer")
	}
	// Delaying transmissions toward their deadlines can only reduce the
	// data waiting in the client buffer.
	if plans[VariantD].WorkAheadBuffer > plans[VariantC].WorkAheadBuffer {
		t.Fatal("DHB-d buffer exceeds DHB-c's despite later deliveries")
	}
}

func TestPlanVBRSchedulerConfigRuns(t *testing.T) {
	plans := planMatrix(t)
	for _, v := range []VBRVariant{VariantA, VariantB, VariantC, VariantD} {
		s, err := New(plans[v].SchedulerConfig())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		admit(s)
		total := 0
		for k := 0; k < 2*plans[v].Segments; k++ {
			total += s.AdvanceSlot().Load
		}
		if total != plans[v].Segments {
			t.Fatalf("%v: isolated request transmitted %d units, want %d", v, total, plans[v].Segments)
		}
	}
}

func TestPlanVBRErrors(t *testing.T) {
	tr, err := trace.SyntheticMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanVBR(nil, 60); err == nil {
		t.Fatal("nil trace should error")
	}
	if _, err := PlanVBR(tr, 0); err == nil {
		t.Fatal("zero wait should error")
	}
}

func TestVBRVariantString(t *testing.T) {
	tests := []struct {
		v    VBRVariant
		want string
	}{
		{v: VariantA, want: "DHB-a"},
		{v: VariantB, want: "DHB-b"},
		{v: VariantC, want: "DHB-c"},
		{v: VariantD, want: "DHB-d"},
		{v: VBRVariant(9), want: "VBRVariant(9)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.v), got, tt.want)
		}
	}
}
