package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustCBR(t *testing.T, seconds int, rate float64) *Trace {
	t.Helper()
	tr, err := CBR(seconds, rate)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadRates(t *testing.T) {
	tests := []struct {
		name  string
		rates []float64
	}{
		{name: "empty", rates: nil},
		{name: "zero", rates: []float64{1, 0, 1}},
		{name: "negative", rates: []float64{1, -2}},
		{name: "nan", rates: []float64{math.NaN()}},
		{name: "inf", rates: []float64{math.Inf(1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.rates); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestCBRStats(t *testing.T) {
	tr := mustCBR(t, 100, 500)
	if tr.Duration() != 100 || tr.Mean() != 500 || tr.Peak() != 500 {
		t.Fatalf("duration=%v mean=%v peak=%v", tr.Duration(), tr.Mean(), tr.Peak())
	}
	if tr.TotalBytes() != 50000 {
		t.Fatalf("TotalBytes = %v, want 50000", tr.TotalBytes())
	}
}

func TestCBRErrors(t *testing.T) {
	if _, err := CBR(0, 5); err == nil {
		t.Fatal("zero duration should error")
	}
}

func TestRatesIsCopy(t *testing.T) {
	tr := mustCBR(t, 3, 10)
	r := tr.Rates()
	r[0] = 999
	if tr.Rate(0) != 10 {
		t.Fatal("Rates exposed internal state")
	}
}

func TestCumulativeAt(t *testing.T) {
	tr, err := New([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{x: -1, want: 0},
		{x: 0, want: 0},
		{x: 0.5, want: 5},
		{x: 1, want: 10},
		{x: 1.5, want: 20},
		{x: 3, want: 60},
		{x: 99, want: 60},
	}
	for _, tt := range tests {
		if got := tr.CumulativeAt(tt.x); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("CumulativeAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestTimeOfByte(t *testing.T) {
	tr, err := New([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		bytes float64
		want  float64
	}{
		{bytes: -5, want: 0},
		{bytes: 0, want: 0},
		{bytes: 5, want: 0.5},
		{bytes: 10, want: 1},
		{bytes: 25, want: 1.75},
		{bytes: 60, want: 3},
		{bytes: 100, want: 3},
	}
	for _, tt := range tests {
		if got := tr.TimeOfByte(tt.bytes); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("TimeOfByte(%v) = %v, want %v", tt.bytes, got, tt.want)
		}
	}
}

func TestTimeOfByteInvertsCumulative(t *testing.T) {
	tr, err := SyntheticMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(frac float64) bool {
		x := math.Mod(math.Abs(frac), 1) * tr.Duration()
		bytes := tr.CumulativeAt(x)
		back := tr.TimeOfByte(bytes)
		return math.Abs(back-x) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBytesSumToTotal(t *testing.T) {
	tr, err := SyntheticMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := tr.SegmentBytes(137)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 137 {
		t.Fatalf("len = %d, want 137", len(segs))
	}
	sum := 0.0
	for _, s := range segs {
		if s <= 0 {
			t.Fatal("segment with non-positive bytes")
		}
		sum += s
	}
	if math.Abs(sum-tr.TotalBytes()) > 1e-3 {
		t.Fatalf("segments sum to %v, want %v", sum, tr.TotalBytes())
	}
}

func TestSegmentBytesError(t *testing.T) {
	tr := mustCBR(t, 10, 1)
	if _, err := tr.SegmentBytes(0); err == nil {
		t.Fatal("zero segments should error")
	}
}

func TestSyntheticMatrixMatchesPublishedStats(t *testing.T) {
	tr, err := SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Seconds(); got != 8170 {
		t.Fatalf("duration = %d s, want 8170 (paper Section 4)", got)
	}
	if got := tr.Mean(); math.Abs(got-636e3) > 1 {
		t.Fatalf("mean = %v B/s, want 636000 (paper Section 4)", got)
	}
	if got := tr.Peak(); math.Abs(got-951e3) > 1 {
		t.Fatalf("peak = %v B/s, want 951000 (paper Section 4)", got)
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	a, err := SyntheticMatrix(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticMatrix(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Seconds(); i++ {
		if a.Rate(i) != b.Rate(i) {
			t.Fatalf("same seed diverged at second %d", i)
		}
	}
	c, err := SyntheticMatrix(8)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < a.Seconds(); i++ {
		if a.Rate(i) != c.Rate(i) {
			diff++
		}
	}
	if diff < a.Seconds()/2 {
		t.Fatalf("different seeds produced mostly identical traces (%d differing samples)", diff)
	}
}

func TestSyntheticIsGenuinelyVariable(t *testing.T) {
	tr, err := SyntheticMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	mean := tr.Mean()
	for i := 0; i < tr.Seconds(); i++ {
		d := tr.Rate(i) - mean
		sumSq += d * d
	}
	stddev := math.Sqrt(sumSq / tr.Duration())
	// An MPEG movie trace has a coefficient of variation well above a few
	// percent; require at least 5% so a near-CBR regression is caught.
	if stddev/mean < 0.05 {
		t.Fatalf("coefficient of variation = %.4f, trace is too flat", stddev/mean)
	}
	if tr.Peak() <= 1.2*mean {
		t.Fatalf("peak %v too close to mean %v", tr.Peak(), mean)
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*SyntheticConfig)
	}{
		{name: "zero seconds", mut: func(c *SyntheticConfig) { c.Seconds = 0 }},
		{name: "zero mean", mut: func(c *SyntheticConfig) { c.MeanRate = 0 }},
		{name: "peak below mean", mut: func(c *SyntheticConfig) { c.PeakRate = c.MeanRate / 2 }},
		{name: "short scenes", mut: func(c *SyntheticConfig) { c.SceneMeanLength = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := MatrixConfig()
			tt.mut(&cfg)
			if _, err := Synthetic(cfg, 1); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := SyntheticMatrix(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seconds() != orig.Seconds() {
		t.Fatalf("seconds = %d, want %d", back.Seconds(), orig.Seconds())
	}
	for i := 0; i < orig.Seconds(); i++ {
		if back.Rate(i) != orig.Rate(i) {
			t.Fatalf("rate[%d] = %v, want %v", i, back.Rate(i), orig.Rate(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{name: "empty", input: ""},
		{name: "bad header", input: "a,b\n0,1\n"},
		{name: "bad fields", input: "second,bytes\n0\n"},
		{name: "bad second", input: "second,bytes\nx,1\n"},
		{name: "out of order", input: "second,bytes\n1,5\n"},
		{name: "bad rate", input: "second,bytes\n0,abc\n"},
		{name: "no rows", input: "second,bytes\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.input)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}
