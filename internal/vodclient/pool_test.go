package vodclient

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"vodcast/internal/vodserver"
)

func startPoolServer(t *testing.T, segments int) *vodserver.Server {
	t.Helper()
	s, err := vodserver.Start(vodserver.Config{
		Addr:         "127.0.0.1:0",
		Videos:       []vodserver.VideoConfig{{ID: 1, Segments: segments, SegmentBytes: 32}},
		SlotDuration: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool("", 4); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := NewPool("127.0.0.1:1", 0); err == nil {
		t.Fatal("zero-size pool accepted")
	}
	p, err := NewPool("127.0.0.1:1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr() != "127.0.0.1:1" {
		t.Fatalf("Addr = %q", p.Addr())
	}
	if _, err := p.Fetch(FetchOptions{VideoID: 1}); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

// TestPoolBoundsConcurrency: many concurrent sessions share the pool; the
// socket high-water mark never exceeds the bound, the overflow sessions
// queue (recording a pool wait), and every session still verifies its
// stream end to end.
func TestPoolBoundsConcurrency(t *testing.T) {
	s := startPoolServer(t, 4)
	const maxConns, sessions = 3, 24
	p, err := NewPool(s.Addr(), maxConns)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make(chan Result, sessions)
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Fetch(FetchOptions{VideoID: 1, Timeout: 20 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}()
	}
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	waited := 0
	for res := range results {
		if res.Segments != 4 || res.MissingSegments != 0 {
			t.Fatalf("session incomplete: %+v", res)
		}
		if res.PoolWait > 0 {
			waited++
		}
	}
	st := p.Stats()
	if st.Peak > maxConns {
		t.Fatalf("peak connections %d exceeded bound %d", st.Peak, maxConns)
	}
	if st.Active != 0 {
		t.Fatalf("active = %d after all sessions returned, want 0", st.Active)
	}
	if st.Dials != sessions {
		t.Fatalf("dials = %d, want %d", st.Dials, sessions)
	}
	// 24 sessions over 3 slots must have queued somewhere; Stats agrees with
	// the per-result waits.
	if st.Waits == 0 || waited == 0 {
		t.Fatalf("no session waited (stats %d, results %d) — bound not enforced?", st.Waits, waited)
	}
}

// openFDs counts this process's open file descriptors (Linux-only).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}

// TestPoolSequentialSessionsNoFDLeak: a thousand sequential sessions through
// a two-slot pool leave the process's descriptor count where it started —
// the regression test for socket leaks in the dial/session/release cycle.
func TestPoolSequentialSessionsNoFDLeak(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting uses /proc")
	}
	sessions := 1000
	if testing.Short() {
		sessions = 100
	}
	s := startPoolServer(t, 1)
	p, err := NewPool(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up (lazily-created runtime fds: epoll, netpoll pipe) before the
	// baseline.
	if _, err := p.Fetch(FetchOptions{VideoID: 1, Timeout: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	before := openFDs(t)
	for i := 0; i < sessions; i++ {
		res, err := p.Fetch(FetchOptions{VideoID: 1, Timeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if res.MissingSegments != 0 {
			t.Fatalf("session %d incomplete: %+v", i, res)
		}
	}
	after := openFDs(t)
	// TIME_WAIT sockets belong to the kernel, not our fd table; the only
	// slack allowed is transient server-side accept/close churn.
	if after > before+8 {
		t.Fatalf("fd count grew %d -> %d across %d sessions: descriptor leak", before, after, sessions)
	}
	st := p.Stats()
	if st.Active != 0 {
		t.Fatalf("active = %d after sequential run, want 0", st.Active)
	}
	if int(st.Dials) != sessions+1 {
		t.Fatalf("dials = %d, want %d", st.Dials, sessions+1)
	}
}
