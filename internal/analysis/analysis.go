// Package analysis provides closed-form performance models for the
// protocols in this repository and cross-validates the simulators against
// them. Each model is derived from first principles:
//
//   - On-demand static mappings (UD, dynamic pagoda, DSB): segment s is
//     rebroadcast every p_s slots and each occurrence is transmitted iff at
//     least one request arrived in the p_s preceding slots, so the expected
//     per-slot load is sum over s of (1/p_s)(1 - e^(-lambda p_s d)).
//   - DHB: successive instances of segment s form a renewal process — an
//     instance placed for a request in slot i covers slots up to i+T[s]-1
//     and the next is scheduled by the first nonempty slot after coverage
//     expires, a geometric wait of mean 1/(e^(lambda d) - 1) slots — giving
//     a mean load of sum over s of 1/(T[s] + 1/(e^(lambda d) - 1)).
//   - Threshold patching: a restart cycle consists of a window W of taps
//     (mean length W/2 each) followed by an exponential wait for the arrival
//     that triggers the next complete stream, costing
//     (D + lambda W^2/2) / (W + 1/lambda) streams; minimizing over W gives
//     the closed form sqrt(1 + 2 lambda D) - 1, the exact renewal
//     counterpart of the classical sqrt(2 lambda D).
//
// All rates are requests per hour and all durations seconds, matching the
// rest of the repository.
package analysis

import (
	"fmt"
	"math"

	"vodcast/internal/broadcast"
)

// OnDemandMean returns the expected average load (in streams) of an
// on-demand protocol over the given static mapping at the given Poisson
// request rate.
func OnDemandMean(m *broadcast.Mapping, ratePerHour, slotSeconds float64) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("analysis: nil mapping")
	}
	if err := checkRates(ratePerHour, slotSeconds); err != nil {
		return 0, err
	}
	lambda := ratePerHour / 3600
	mean := 0.0
	for s := 1; s <= m.N(); s++ {
		p := float64(m.Period(s))
		mean += (1 - math.Exp(-lambda*p*slotSeconds)) / p
	}
	return mean, nil
}

// DHBMean returns the renewal-model average load of a DHB scheduler with
// the given 1-based period vector (periods[0] unused).
func DHBMean(periods []int, ratePerHour, slotSeconds float64) (float64, error) {
	if len(periods) < 2 {
		return 0, fmt.Errorf("analysis: empty period vector")
	}
	if err := checkRates(ratePerHour, slotSeconds); err != nil {
		return 0, err
	}
	mu := ratePerHour / 3600 * slotSeconds // mean arrivals per slot
	// Expected number of empty slots before the first nonempty one.
	wait := 1 / (math.Expm1(mu))
	mean := 0.0
	for s := 1; s < len(periods); s++ {
		mean += 1 / (float64(periods[s]) + wait)
	}
	return mean, nil
}

// DHBSaturated returns the saturation bandwidth of DHB: every segment at
// its minimum frequency, sum of 1/T[s] — the harmonic number H(n) for CBR.
func DHBSaturated(periods []int) (float64, error) {
	if len(periods) < 2 {
		return 0, fmt.Errorf("analysis: empty period vector")
	}
	mean := 0.0
	for s := 1; s < len(periods); s++ {
		if periods[s] < 1 {
			return 0, fmt.Errorf("analysis: period[%d] = %d", s, periods[s])
		}
		mean += 1 / float64(periods[s])
	}
	return mean, nil
}

// PatchingMean returns the bandwidth of threshold patching with the optimal
// restart window: sqrt(1 + 2 lambda D) - 1. (Minimizing the renewal cost
// (D + lambda W^2/2)/(W + 1/lambda) gives W* = (sqrt(1+2 lambda D)-1)/lambda
// and the cost collapses to that same square root minus one.)
func PatchingMean(ratePerHour, videoSeconds float64) (float64, error) {
	if err := checkRates(ratePerHour, videoSeconds); err != nil {
		return 0, err
	}
	lambda := ratePerHour / 3600
	return math.Sqrt(1+2*lambda*videoSeconds) - 1, nil
}

// MergingMean returns the Eager-Vernon-Zahorjan bound ln(1 + lambda D),
// the asymptote of hierarchical stream merging.
func MergingMean(ratePerHour, videoSeconds float64) (float64, error) {
	if err := checkRates(ratePerHour, videoSeconds); err != nil {
		return 0, err
	}
	return math.Log(1 + ratePerHour/3600*videoSeconds), nil
}

// HarmonicBandwidth returns the server bandwidth of Juhn and Tseng's
// harmonic broadcasting family for n segments: segment i on a dedicated
// sub-stream of rate b/i, for a total of H(n) = sum 1/i times the
// consumption rate. DHB's saturation load approaches the same harmonic
// number — the sense in which the paper calls its on-the-fly scheduling as
// efficient as the best fixed mappings.
func HarmonicBandwidth(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("analysis: segment count %d must be positive", n)
	}
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h, nil
}

// PolyharmonicBandwidth returns the server bandwidth of polyharmonic
// broadcasting PHB(m) for n segments: clients wait m slots before playback,
// segment i streams continuously at rate b/(m+i-1), so the total is
// H(n+m-1) - H(m-1) times the consumption rate. Section 4 names PHB with
// partial preloading as one of only two prior protocols able to handle
// compressed video; this is its bandwidth-versus-wait law (m = 1 recovers
// plain harmonic broadcasting).
func PolyharmonicBandwidth(n, m int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("analysis: segment count %d must be positive", n)
	}
	if m <= 0 {
		return 0, fmt.Errorf("analysis: delay parameter %d must be positive", m)
	}
	b := 0.0
	for i := m; i <= n+m-1; i++ {
		b += 1 / float64(i)
	}
	return b, nil
}

// IsolatedRequestMean returns the bandwidth a protocol pays when requests
// never overlap: lambda D in consumption-rate units (every request costs
// one full video transmission).
func IsolatedRequestMean(ratePerHour, videoSeconds float64) float64 {
	return ratePerHour / 3600 * videoSeconds
}

func checkRates(ratePerHour, seconds float64) error {
	if ratePerHour <= 0 {
		return fmt.Errorf("analysis: rate %v must be positive", ratePerHour)
	}
	if seconds <= 0 {
		return fmt.Errorf("analysis: duration %v must be positive", seconds)
	}
	return nil
}
