// Package metrics collects the bandwidth and waiting-time statistics that the
// paper's evaluation reports: time-weighted average bandwidth, maximum
// bandwidth, and load histograms, all expressed in multiples of the video
// consumption rate b (one "data stream" = b).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Bandwidth accumulates a time-weighted bandwidth series. Loads are recorded
// with an explicit duration weight so slotted protocols (one sample per slot)
// and continuous-time protocols (variable-length intervals between events)
// share the same accumulator.
type Bandwidth struct {
	weightedSum float64
	totalWeight float64
	max         float64
	samples     int
	histogram   map[int]float64 // integer load -> accumulated weight
}

// NewBandwidth returns an empty accumulator.
func NewBandwidth() *Bandwidth {
	return &Bandwidth{histogram: make(map[int]float64)}
}

// Record adds an observation of the given load lasting for weight seconds.
// Zero-weight observations still update the maximum (an instantaneous peak
// counts even if it lasted no measurable time). Negative weights panic.
func (b *Bandwidth) Record(load, weight float64) {
	if weight < 0 {
		panic("metrics: negative weight")
	}
	if load > b.max {
		b.max = load
	}
	b.samples++
	if weight == 0 {
		return
	}
	b.weightedSum += load * weight
	b.totalWeight += weight
	b.histogram[int(math.Round(load))] += weight
}

// Mean reports the time-weighted average load, or 0 if nothing was recorded.
func (b *Bandwidth) Mean() float64 {
	if b.totalWeight == 0 {
		return 0
	}
	return b.weightedSum / b.totalWeight
}

// Max reports the largest load observed.
func (b *Bandwidth) Max() float64 { return b.max }

// Samples reports how many observations were recorded.
func (b *Bandwidth) Samples() int { return b.samples }

// TotalWeight reports the accumulated observation time in seconds.
func (b *Bandwidth) TotalWeight() float64 { return b.totalWeight }

// Quantile returns the smallest integer load whose cumulative weight reaches
// the given fraction q in (0, 1]. It returns 0 when nothing was recorded.
func (b *Bandwidth) Quantile(q float64) int {
	if b.totalWeight == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	loads := make([]int, 0, len(b.histogram))
	for l := range b.histogram {
		loads = append(loads, l)
	}
	sort.Ints(loads)
	target := q * b.totalWeight
	cum := 0.0
	for _, l := range loads {
		cum += b.histogram[l]
		if cum >= target-1e-9 {
			return l
		}
	}
	return loads[len(loads)-1]
}

// Histogram returns a copy of the load-to-weight histogram.
func (b *Bandwidth) Histogram() map[int]float64 {
	out := make(map[int]float64, len(b.histogram))
	for k, v := range b.histogram {
		out[k] = v
	}
	return out
}

// String summarizes the accumulator for logs and CLI output.
func (b *Bandwidth) String() string {
	return fmt.Sprintf("mean=%.3f max=%.0f over %.0fs", b.Mean(), b.Max(), b.totalWeight)
}

// Wait accumulates customer waiting times in seconds.
type Wait struct {
	sum   float64
	max   float64
	count int
}

// NewWait returns an empty waiting-time accumulator.
func NewWait() *Wait { return &Wait{} }

// Record adds one customer's waiting time. Negative waits panic: a protocol
// can never serve a request before it arrives.
func (w *Wait) Record(seconds float64) {
	if seconds < 0 {
		panic("metrics: negative waiting time")
	}
	w.sum += seconds
	if seconds > w.max {
		w.max = seconds
	}
	w.count++
}

// Mean reports the average waiting time, or 0 with no observations.
func (w *Wait) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Max reports the longest waiting time observed.
func (w *Wait) Max() float64 { return w.max }

// Count reports the number of customers recorded.
func (w *Wait) Count() int { return w.count }

// Counter is a time-weighted step-function tracker for continuous-time
// simulations: call Set (or Add) whenever the tracked quantity changes and
// the counter attributes the elapsed interval to the previous value.
type Counter struct {
	bw      *Bandwidth
	value   float64
	lastAt  float64
	started bool
}

// NewCounter returns a counter feeding the given bandwidth accumulator.
func NewCounter(bw *Bandwidth) *Counter {
	return &Counter{bw: bw}
}

// Set records that the tracked value changed to v at time now. Time must not
// move backwards.
func (c *Counter) Set(v, now float64) {
	if c.started {
		if now < c.lastAt {
			panic("metrics: counter time moved backwards")
		}
		c.bw.Record(c.value, now-c.lastAt)
	}
	c.value = v
	c.lastAt = now
	c.started = true
	// Make sure instantaneous peaks register even before the next change.
	if v > c.bw.max {
		c.bw.max = v
	}
}

// Add shifts the tracked value by delta at time now.
func (c *Counter) Add(delta, now float64) {
	c.Set(c.value+delta, now)
}

// Value reports the current tracked value.
func (c *Counter) Value() float64 { return c.value }

// Finish closes the last interval at time now.
func (c *Counter) Finish(now float64) {
	if c.started {
		c.Set(c.value, now)
	}
}
