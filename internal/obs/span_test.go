package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestSpanNilSafety: a nil tracer and the nil spans it hands out must accept
// every call, the guarantee that lets call sites skip guards.
func TestSpanNilSafety(t *testing.T) {
	var tr *SpanTracer
	tr.SetClock(func() float64 { return 0 })
	root := tr.StartSpan("admit")
	if root != nil {
		t.Fatal("nil tracer produced a span")
	}
	child := root.Child("station_admit")
	child.SetVideo(1)
	child.SetShard(0)
	child.SetAttr("k", "v")
	child.End()
	root.End()
	if got := tr.Recent(0); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	if tr.Stats() != (SpanStats{}) || tr.Err() != nil {
		t.Fatal("nil tracer stats/err not zero")
	}
}

// TestSpanTreeExport builds one admit tree and checks the JSONL export:
// parent links, attribution inheritance, durations from the installed clock.
func TestSpanTreeExport(t *testing.T) {
	var buf bytes.Buffer
	tr := NewSpanTracer(&buf, 0, 1, 1)
	now := 0.0
	tr.SetClock(func() float64 { return now })

	root := tr.StartSpan("admit")
	root.SetVideo(7)
	root.SetShard(2)
	now = 0.5
	child := root.Child("station_admit")
	child.SetAttr("batch", "16")
	now = 1.5
	child.End()
	now = 2.0
	root.End()
	root.End() // idempotent

	var recs []SpanRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("exported %d spans, want 2", len(recs))
	}
	c, r := recs[0], recs[1] // children end first
	if c.Name != "station_admit" || r.Name != "admit" {
		t.Fatalf("order wrong: %q then %q", c.Name, r.Name)
	}
	if c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parent links wrong: child.Parent=%d root.ID=%d root.Parent=%d", c.Parent, r.ID, r.Parent)
	}
	if c.Video != 7 || c.Shard != 2 {
		t.Fatalf("child did not inherit attribution: video=%d shard=%d", c.Video, c.Shard)
	}
	if c.Start != 0.5 || c.Dur != 1.0 || r.Start != 0 || r.Dur != 2.0 {
		t.Fatalf("clocked intervals wrong: child %v+%v root %v+%v", c.Start, c.Dur, r.Start, r.Dur)
	}
	if c.Attrs["batch"] != "16" {
		t.Fatalf("attrs lost: %v", c.Attrs)
	}
	st := tr.Stats()
	if st.Roots != 1 || st.Sampled != 1 || st.Finished != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
}

// sampledSet records which of n roots a tracer with the given seed and
// sampling period keeps.
func sampledSet(n, every int, seed int64) []bool {
	tr := NewSpanTracer(nil, 0, every, seed)
	out := make([]bool, n)
	for i := range out {
		s := tr.StartSpan("root")
		out[i] = s != nil
		s.End()
	}
	return out
}

// TestSpanSamplingDeterminism: the seeded sampler keeps exactly the same
// root set for the same seed, keeps everything at period 1, and keeps
// roughly 1/every of a long sequence.
func TestSpanSamplingDeterminism(t *testing.T) {
	const n = 4096
	a := sampledSet(n, 8, 42)
	b := sampledSet(n, 8, 42)
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at root %d", i)
		}
		if a[i] {
			kept++
		}
	}
	// Binomial(4096, 1/8): mean 512, sd ~21. Accept a generous +/- 6 sd.
	if kept < 384 || kept > 640 {
		t.Fatalf("kept %d of %d at period 8, want ~512", kept, n)
	}
	for i, keep := range sampledSet(64, 1, 7) {
		if !keep {
			t.Fatalf("period 1 dropped root %d", i)
		}
	}
	st := NewSpanTracer(nil, 0, 8, 42)
	for i := 0; i < 100; i++ {
		st.StartSpan("r").End()
	}
	if s := st.Stats(); s.Roots != 100 || s.Sampled != s.Finished {
		t.Fatalf("sampling stats inconsistent: %+v", s)
	}
}

// lockedBuffer is a goroutine-safe sink for the concurrency test (the
// tracer serializes writes, but the test also reads the buffer at the end).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Lines(t *testing.T) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	sc := bufio.NewScanner(bytes.NewReader(b.buf.Bytes()))
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Errorf("bad concurrent JSONL line: %v", err)
		}
		n++
	}
	return n
}

// TestSpanConcurrency hammers start/child/end/export from many goroutines
// with concurrent Recent readers; run under -race this is the data-race
// proof for the span path.
func TestSpanConcurrency(t *testing.T) {
	sink := &lockedBuffer{}
	tr := NewSpanTracer(sink, 128, 2, 99)
	const (
		workers = 8
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				root := tr.StartSpan("admit")
				root.SetVideo(uint32(w + 1))
				root.SetShard(w % 4)
				c := root.Child("station_admit")
				c.SetAttr("i", fmt.Sprint(i))
				c.End()
				root.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Recent(32)
			tr.Stats()
		}
	}()
	wg.Wait()
	<-done

	st := tr.Stats()
	if st.Roots != workers*perW {
		t.Fatalf("roots = %d, want %d", st.Roots, workers*perW)
	}
	if st.Finished != 2*st.Sampled {
		t.Fatalf("finished %d != 2*sampled %d", st.Finished, st.Sampled)
	}
	if got := uint64(sink.Lines(t)); got != st.Finished {
		t.Fatalf("exported %d JSONL spans, stats say %d finished", got, st.Finished)
	}
	if recent := tr.Recent(0); len(recent) != 128 {
		t.Fatalf("ring holds %d, want full 128", len(recent))
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
}

func TestRecordChildJoinsTrace(t *testing.T) {
	var sink bytes.Buffer
	tr := NewSpanTracer(&sink, 16, 1, 1)
	tr.SetClock(func() float64 { return 10 })

	root := tr.StartSpan("admit")
	if root.ID() == 0 {
		t.Fatal("sampled root has ID 0")
	}
	root.End()

	// A client report arrives later; the server synthesizes its spans as
	// children of the admit root it handed out on the wire.
	id := tr.RecordChild(root.ID(), "client_session", 10, 2.5, 7,
		map[string]string{"misses": "1"})
	if id == 0 {
		t.Fatal("RecordChild returned ID 0 on a live tracer")
	}
	recs := tr.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	child := recs[1]
	if child.Parent != root.ID() || child.Name != "client_session" ||
		child.Dur != 2.5 || child.Video != 7 || child.Attrs["misses"] != "1" {
		t.Fatalf("synthesized child mismatch: %+v", child)
	}
	if tr.Now() != 10 {
		t.Fatalf("Now() = %v, want 10 (installed clock)", tr.Now())
	}

	// Nil-safety for the whole synthetic-span surface.
	var nilTr *SpanTracer
	if nilTr.RecordChild(1, "x", 0, 0, 0, nil) != 0 || nilTr.Now() != 0 {
		t.Fatal("nil tracer synthesized a span")
	}
	var nilSpan *Span
	if nilSpan.ID() != 0 {
		t.Fatal("nil span has nonzero ID")
	}
}
