//go:build !race

package fanout

const raceEnabled = false
