// Package sim provides the discrete-event simulation substrate used by every
// protocol simulator in this repository: a deterministic random number
// generator, Poisson arrival processes, and a time-ordered event loop.
//
// All randomness in the repository flows through RNG with explicit seeds so
// that every experiment and every test is exactly reproducible.
package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic pseudo-random source. It wraps math/rand with an
// explicit seed and a small convenience API so that callers never touch the
// global (shared, racy) rand functions.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed. Two generators built with the
// same seed produce identical streams.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: exponential mean must be positive")
	}
	return g.r.ExpFloat64() * mean
}

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Poisson returns a Poisson-distributed count with the given mean. It uses
// Knuth inversion for small means and the additivity of the Poisson
// distribution to split large means into tractable halves, so it stays exact
// (not a normal approximation) at every mean this repository uses.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		p := 1.0
		n := -1
		for p > limit {
			p *= g.Float64()
			n++
		}
		return n
	}
	half := mean / 2
	return g.Poisson(half) + g.Poisson(mean-half)
}
