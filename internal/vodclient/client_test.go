package vodclient

import (
	"net"
	"strings"
	"testing"
	"time"

	"vodcast/internal/wire"
)

// fakeServer accepts one connection and plays the given script of frames.
func fakeServer(t *testing.T, script func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Consume the request frame first.
		if _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		script(conn)
	}()
	return ln.Addr().String()
}

func goodInfo() wire.ScheduleInfo {
	return wire.ScheduleInfo{
		VideoID:      1,
		Segments:     2,
		SlotMillis:   10,
		SegmentBytes: 32,
		AdmitSlot:    0,
		Periods:      []uint32{1, 2},
	}
}

func fetchErr(t *testing.T, addr string) error {
	t.Helper()
	_, err := FetchWith(addr, FetchOptions{VideoID: 1, Timeout: 2 * time.Second, StrictDeadlines: true})
	if err == nil {
		t.Fatal("fetch succeeded against a misbehaving server")
	}
	return err
}

func TestFetchValidation(t *testing.T) {
	if _, err := FetchWith("127.0.0.1:1", FetchOptions{VideoID: 1, Timeout: 0, StrictDeadlines: true}); err == nil {
		t.Error("zero timeout accepted")
	}
	// From 0 now means "the beginning" (FetchWith coerces it to 1), so only
	// a non-positive timeout remains an option-level validation failure.
	if _, err := FetchWith("127.0.0.1:1", FetchOptions{VideoID: 1, From: 5, Timeout: -time.Second, StrictDeadlines: true}); err == nil {
		t.Error("negative timeout accepted")
	}
}

func TestFetchRejectsServerError(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, wire.ErrorMsg{Text: "nope"})
	})
	err := fetchErr(t, addr)
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error text lost: %v", err)
	}
}

func TestFetchRejectsUnexpectedFirstFrame(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 1})
	})
	fetchErr(t, addr)
}

func TestFetchRejectsWrongVideoSchedule(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		info := goodInfo()
		info.VideoID = 9
		_ = wire.WriteFrame(conn, info)
	})
	fetchErr(t, addr)
}

func TestFetchRejectsCorruptPayload(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, goodInfo())
		payload := make([]byte, 32) // zeros, not the generator output
		_ = wire.WriteFrame(conn, wire.Segment{VideoID: 1, Segment: 1, Slot: 1, Payload: payload})
	})
	err := fetchErr(t, addr)
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption not reported: %v", err)
	}
}

func TestFetchRejectsForeignVideoFrame(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, goodInfo())
		payload := wire.SegmentPayload(2, 1, 32)
		_ = wire.WriteFrame(conn, wire.Segment{VideoID: 2, Segment: 1, Slot: 1, Payload: payload})
	})
	fetchErr(t, addr)
}

func TestFetchRejectsUnknownSegment(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, goodInfo())
		payload := wire.SegmentPayload(1, 7, 32)
		_ = wire.WriteFrame(conn, wire.Segment{VideoID: 1, Segment: 7, Slot: 1, Payload: payload})
	})
	fetchErr(t, addr)
}

func TestFetchRejectsMissedDeadline(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, goodInfo())
		// Slot 1 ends without segment 1, whose deadline is slot 1.
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 1})
	})
	err := fetchErr(t, addr)
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline miss not reported: %v", err)
	}
}

func TestFetchRejectsTruncatedStream(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, goodInfo())
		// Close without delivering anything.
	})
	fetchErr(t, addr)
}

func TestFetchRejectsResumeBeyondSchedule(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		_ = wire.WriteFrame(conn, goodInfo())
	}()
	if _, err := FetchWith(ln.Addr().String(), FetchOptions{VideoID: 1, From: 5, Timeout: 2 * time.Second, StrictDeadlines: true}); err == nil {
		t.Fatal("resume beyond the schedule accepted")
	}
}

func TestFetchHappyPathAgainstScript(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = wire.WriteFrame(conn, goodInfo())
		_ = wire.WriteFrame(conn, wire.Segment{
			VideoID: 1, Segment: 1, Slot: 1, Payload: wire.SegmentPayload(1, 1, 32),
		})
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 1})
		_ = wire.WriteFrame(conn, wire.Segment{
			VideoID: 1, Segment: 2, Slot: 2, Payload: wire.SegmentPayload(1, 2, 32),
		})
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 2})
	})
	res, err := FetchWith(addr, FetchOptions{VideoID: 1, Timeout: 2 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 2 || res.PayloadBytes != 64 {
		t.Fatalf("result = %+v", res)
	}
}
