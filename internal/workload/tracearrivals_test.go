package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vodcast/internal/sim"
)

func TestNewArrivalTraceValidation(t *testing.T) {
	if _, err := NewArrivalTrace(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewArrivalTrace([]float64{1, -2}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestNewArrivalTraceSortsAndCopies(t *testing.T) {
	times := []float64{30, 10, 20}
	tr, err := NewArrivalTrace(times)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 30 || tr.Count() != 3 {
		t.Fatalf("duration=%v count=%d", tr.Duration(), tr.Count())
	}
	times[0] = 999 // must not affect the trace
	if tr.Duration() != 30 {
		t.Fatal("trace aliased caller slice")
	}
}

func TestMeanRatePerHour(t *testing.T) {
	tr, err := NewArrivalTrace([]float64{0, 1800, 3600})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MeanRatePerHour(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rate = %v, want 3/h", got)
	}
}

func TestSlotted(t *testing.T) {
	tr, err := NewArrivalTrace([]float64{0, 5, 5.5, 19, 20})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.Slotted(10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("slots = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("slots = %v, want %v", counts, want)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tr.Count() {
		t.Fatalf("slotted counts sum to %d, want %d", total, tr.Count())
	}
	if _, err := tr.Slotted(0); err == nil {
		t.Fatal("zero slot accepted")
	}
}

func TestArrivalTraceRoundTrip(t *testing.T) {
	rng := sim.NewRNG(3)
	proc := sim.NewPoissonProcess(rng, 0.01)
	var times []float64
	for i := 0; i < 200; i++ {
		times = append(times, proc.Next())
	}
	orig, err := NewArrivalTrace(times)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArrivalTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != orig.Count() || back.Duration() != orig.Duration() {
		t.Fatalf("round trip changed the trace: %d/%v vs %d/%v",
			back.Count(), back.Duration(), orig.Count(), orig.Duration())
	}
}

func TestReadArrivalTraceSkipsCommentsAndErrors(t *testing.T) {
	tr, err := ReadArrivalTrace(strings.NewReader("# header\n\n10\n20\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 2 {
		t.Fatalf("count = %d, want 2", tr.Count())
	}
	if _, err := ReadArrivalTrace(strings.NewReader("abc\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadArrivalTrace(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty trace accepted")
	}
}
