package fanout

import (
	"fmt"
	"testing"
)

// benchSizes is a VBR-ish segment size vector; each slot broadcasts a
// rotating window of segments so ticks exercise different frame shapes.
var benchSizes = []int{1500, 700, 2200, 900, 4096, 333, 1234, 800, 600, 2048}

func benchSegments(slot int) []int {
	// Three segments per slot, rotating through the catalogue.
	base := slot % len(benchSizes)
	return []int{
		1 + base,
		1 + (base+3)%len(benchSizes),
		1 + (base+7)%len(benchSizes),
	}
}

// BenchmarkFanOut measures one broadcast tick across the videos × subscribers
// matrix for both data planes: the zero-copy path (one shared frame per
// video, ref-counted through per-subscriber rings) and the reference path
// (per-tick serialization into a fresh buffer, one copy per subscriber
// channel). The zero-copy rows must report 0 allocs/op at steady state —
// make ci gates on the same property through TestSteadyStateZeroAlloc.
func BenchmarkFanOut(b *testing.B) {
	// Segment lists are precomputed so the loop measures the data plane,
	// not the scenario generator.
	segs := make([][]int, 64)
	for i := range segs {
		segs[i] = benchSegments(i)
	}

	for _, videos := range []int{1, 4} {
		for _, subs := range []int{1, 16, 64} {
			name := fmt.Sprintf("videos=%d/subs=%d", videos, subs)

			b.Run(name+"/zerocopy", func(b *testing.B) {
				enc := NewEncoder()
				for v := 1; v <= videos; v++ {
					if err := enc.AddVideo(uint32(v), benchSizes); err != nil {
						b.Fatal(err)
					}
				}
				rings := make([]*Ring, subs)
				for i := range rings {
					rings[i] = NewRing(8)
				}
				var scratch []*Frame
				tick := func(slot int) {
					for v := 1; v <= videos; v++ {
						f, err := enc.EncodeSlot(uint32(v), slot, segs[slot%len(segs)], nil)
						if err != nil {
							b.Fatal(err)
						}
						for _, r := range rings {
							f.Retain()
							if !r.Push(f) {
								f.Release()
							}
						}
						f.Release()
					}
					// Drain every ring inline — the benchmark measures the
					// producer side plus the consumer's release, without
					// socket noise.
					for _, r := range rings {
						scratch, _ = r.PopAll(scratch[:0])
						for _, f := range scratch {
							f.Release()
						}
					}
				}
				// Warm the frame pool before measuring.
				for i := 0; i < 8; i++ {
					tick(i)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tick(i)
				}
			})

			b.Run(name+"/reference", func(b *testing.B) {
				ref := NewFanoutReference()
				for v := 1; v <= videos; v++ {
					if err := ref.AddVideo(uint32(v), benchSizes); err != nil {
						b.Fatal(err)
					}
				}
				chans := make([]chan []byte, subs)
				for i := range chans {
					chans[i] = make(chan []byte, 8)
				}
				tick := func(slot int) {
					for v := 1; v <= videos; v++ {
						payload, _, err := ref.EncodeSlot(uint32(v), slot, segs[slot%len(segs)], nil)
						if err != nil {
							b.Fatal(err)
						}
						for _, c := range chans {
							select {
							case c <- payload:
							default:
							}
						}
					}
					for _, c := range chans {
						for {
							select {
							case <-c:
								continue
							default:
							}
							break
						}
					}
				}
				for i := 0; i < 8; i++ {
					tick(i)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tick(i)
				}
			})
		}
	}
}
