// Package report renders experiment results as aligned text tables or JSON,
// so cmd/vodsim stays a thin flag-parsing shell and downstream tooling can
// consume machine-readable output for plotting.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Table is one renderable result set.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends one row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Validate checks the table's shape.
func (t *Table) Validate() error {
	if t.Title == "" {
		return fmt.Errorf("report: table without a title")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("report: table %q without columns", t.Title)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: table %q row %d has %d cells for %d columns",
				t.Title, i, len(row), len(t.Columns))
		}
	}
	return nil
}

// RenderText writes the tables as titled, column-aligned text.
func RenderText(w io.Writer, tables ...Table) error {
	for i, t := range tables {
		if err := t.Validate(); err != nil {
			return err
		}
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		for _, col := range t.Columns {
			fmt.Fprintf(tw, "%s\t", col)
		}
		fmt.Fprintln(tw)
		for _, row := range t.Rows {
			for _, cell := range row {
				fmt.Fprintf(tw, "%s\t", cell)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return fmt.Errorf("report: render %q: %w", t.Title, err)
		}
	}
	return nil
}

// RenderJSON writes the tables as a JSON array.
func RenderJSON(w io.Writer, tables ...Table) error {
	for _, t := range tables {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tables); err != nil {
		return fmt.Errorf("report: encode: %w", err)
	}
	return nil
}

// Cell formatting helpers shared by the table builders.

// F formats a float with the given decimal places.
func F(v float64, places int) string {
	return strconv.FormatFloat(v, 'f', places, 64)
}

// I formats an integer.
func I(v int) string { return strconv.Itoa(v) }

// I64 formats a 64-bit integer.
func I64(v int64) string { return strconv.FormatInt(v, 10) }
