package obs

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// manualClock is a hand-advanced clock for deterministic For/Stale timers.
type manualClock struct{ now time.Time }

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *manualClock) Now() time.Time          { return c.now }
func (c *manualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func stateOf(t *testing.T, e *AlertEngine, name string) AlertStatus {
	t.Helper()
	for _, s := range e.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("rule %q not in snapshot", name)
	return AlertStatus{}
}

func TestAlertThresholdLifecycle(t *testing.T) {
	clk := newManualClock()
	e := NewAlertEngine()
	e.SetClock(clk.Now)
	level := 0.0
	err := e.Add(AlertRule{
		Name: "miss_rate_high", Severity: "critical",
		Value:     func() float64 { return level },
		Threshold: 0.5, For: 10 * time.Second, KeepResolved: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateInactive {
		t.Fatalf("quiet rule state = %s, want inactive", got.State)
	}

	// Condition starts holding: pending until For elapses, then firing.
	level = 0.9
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StatePending {
		t.Fatalf("fresh breach state = %s, want pending", got.State)
	}
	clk.Advance(5 * time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StatePending {
		t.Fatalf("breach at 5s state = %s, want pending", got.State)
	}
	clk.Advance(5 * time.Second)
	e.Eval()
	got := stateOf(t, e, "miss_rate_high")
	if got.State != StateFiring || got.Fired != 1 {
		t.Fatalf("breach at 10s = %s fired=%d, want firing fired=1", got.State, got.Fired)
	}
	if e.Firing() != 1 {
		t.Fatalf("Firing() = %d, want 1", e.Firing())
	}

	// Recovery: firing → resolved, then back to inactive after KeepResolved.
	level = 0.1
	clk.Advance(time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateResolved {
		t.Fatalf("recovered state = %s, want resolved", got.State)
	}
	if e.Firing() != 0 {
		t.Fatalf("Firing() after recovery = %d, want 0", e.Firing())
	}
	clk.Advance(time.Minute)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateInactive {
		t.Fatalf("state after KeepResolved = %s, want inactive", got.State)
	}
}

func TestAlertPendingResetsOnRecovery(t *testing.T) {
	clk := newManualClock()
	e := NewAlertEngine()
	e.SetClock(clk.Now)
	level := 1.0
	if err := e.Add(AlertRule{
		Name: "flappy", Value: func() float64 { return level },
		Threshold: 0.5, For: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	e.Eval() // pending
	clk.Advance(9 * time.Second)
	level = 0.0
	e.Eval() // condition gone before For elapsed
	if got := stateOf(t, e, "flappy"); got.State != StateInactive {
		t.Fatalf("state = %s, want inactive", got.State)
	}
	// A fresh breach must wait the full For again.
	level = 1.0
	e.Eval()
	clk.Advance(9 * time.Second)
	e.Eval()
	if got := stateOf(t, e, "flappy"); got.State != StatePending {
		t.Fatalf("state = %s, want pending (For timer restarted)", got.State)
	}
}

func TestAlertForZeroFiresImmediately(t *testing.T) {
	e := NewAlertEngine()
	if err := e.Add(AlertRule{
		Name: "instant", Value: func() float64 { return 2 }, Threshold: 1,
	}); err != nil {
		t.Fatal(err)
	}
	e.Eval()
	if got := stateOf(t, e, "instant"); got.State != StateFiring {
		t.Fatalf("For=0 breach state = %s, want firing", got.State)
	}
}

func TestAlertBelowOpAndNaN(t *testing.T) {
	e := NewAlertEngine()
	level := math.NaN()
	if err := e.Add(AlertRule{
		Name: "throughput_low", Op: CmpBelow, Threshold: 5,
		Value: func() float64 { return level },
	}); err != nil {
		t.Fatal(err)
	}
	e.Eval()
	if got := stateOf(t, e, "throughput_low"); got.State != StateInactive {
		t.Fatalf("NaN state = %s, want inactive (no data never fires)", got.State)
	}
	// The no-data level must stay JSON-encodable: /alertz serves Snapshot
	// verbatim and encoding/json refuses NaN.
	if got := stateOf(t, e, "throughput_low"); got.Value != 0 {
		t.Fatalf("no-data snapshot value = %v, want 0", got.Value)
	}
	if _, err := json.Marshal(e.Snapshot()); err != nil {
		t.Fatalf("no-data snapshot not JSON-encodable: %v", err)
	}
	level = 2
	e.Eval()
	if got := stateOf(t, e, "throughput_low"); got.State != StateFiring {
		t.Fatalf("below-threshold state = %s, want firing", got.State)
	}
}

func TestStalenessRule(t *testing.T) {
	clk := newManualClock()
	e := NewAlertEngine()
	e.SetClock(clk.Now)
	reports := 0.0
	if err := e.Add(StalenessRule("reports_stale",
		func() float64 { return reports }, 30*time.Second)); err != nil {
		t.Fatal(err)
	}
	e.Eval() // first sight arms the timer
	clk.Advance(29 * time.Second)
	e.Eval()
	if got := stateOf(t, e, "reports_stale"); got.State != StateInactive {
		t.Fatalf("state before stale = %s, want inactive", got.State)
	}
	clk.Advance(time.Second)
	e.Eval()
	got := stateOf(t, e, "reports_stale")
	if got.State != StateFiring || got.Op != "stale" {
		t.Fatalf("stale state = %s op=%q, want firing op=stale", got.State, got.Op)
	}
	// The snapshot surfaces the stale window (seconds) as the threshold.
	if got.Threshold != 30 {
		t.Fatalf("stale threshold = %v, want 30", got.Threshold)
	}
	// The value moving again resolves it.
	reports = 1
	clk.Advance(time.Second)
	e.Eval()
	if got := stateOf(t, e, "reports_stale"); got.State != StateResolved {
		t.Fatalf("state after movement = %s, want resolved", got.State)
	}
}

func TestBurnRateAndWindowMeanRules(t *testing.T) {
	w := NewWindow(8)
	if err := w.SetSLO(1.0, 0.9); err != nil {
		t.Fatal(err)
	}
	e := NewAlertEngine()
	if err := e.Add(BurnRateRule("slo_burn", w, 2.0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(WindowMeanRule("mean_high", w, CmpAbove, 1.5, 0)); err != nil {
		t.Fatal(err)
	}
	// Empty window: mean rule reads NaN and stays quiet.
	e.Eval()
	if got := stateOf(t, e, "mean_high"); got.State != StateInactive {
		t.Fatalf("empty-window mean state = %s, want inactive", got.State)
	}
	// All-bad observations: burn = 1.0/0.1 = 10x budget, mean = 3.
	for i := 0; i < 8; i++ {
		w.Observe(3)
	}
	e.Eval()
	if got := stateOf(t, e, "slo_burn"); got.State != StateFiring {
		t.Fatalf("burn state = %s, want firing", got.State)
	}
	if got := stateOf(t, e, "mean_high"); got.State != StateFiring {
		t.Fatalf("mean state = %s, want firing", got.State)
	}
	// Good samples roll the window; the mean recovers (the lifetime burn
	// rate cannot, which is exactly why miss-rate alerts use the mean).
	for i := 0; i < 8; i++ {
		w.Observe(0.1)
	}
	e.Eval()
	if got := stateOf(t, e, "mean_high"); got.State != StateResolved {
		t.Fatalf("mean state after recovery = %s, want resolved", got.State)
	}
}

func TestAlertEngineValidation(t *testing.T) {
	e := NewAlertEngine()
	if err := e.Add(AlertRule{Name: "bad name!", Value: func() float64 { return 0 }}); err == nil {
		t.Fatal("invalid rule name accepted")
	}
	if err := e.Add(AlertRule{Name: "no_value"}); err == nil {
		t.Fatal("rule without value source accepted")
	}
	if err := e.Add(AlertRule{Name: "bad_op", Op: "!=", Value: func() float64 { return 0 }}); err == nil {
		t.Fatal("unknown op accepted")
	}
	ok := AlertRule{Name: "dup", Value: func() float64 { return 0 }}
	if err := e.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(ok); err == nil {
		t.Fatal("duplicate rule name accepted")
	}
}

func TestAlertEngineNilSafe(t *testing.T) {
	var e *AlertEngine
	if err := e.Add(AlertRule{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	e.SetClock(time.Now)
	e.Eval()
	e.Start(time.Second)
	e.Stop()
	if got := e.Snapshot(); got != nil {
		t.Fatalf("nil engine snapshot = %v, want nil", got)
	}
	if e.Firing() != 0 || e.Evals() != 0 {
		t.Fatal("nil engine reports activity")
	}
}

func TestAlertEngineTicker(t *testing.T) {
	e := NewAlertEngine()
	if err := e.Add(AlertRule{Name: "tick", Value: func() float64 { return 0 }, Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	e.Start(time.Millisecond)
	defer e.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for e.Evals() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never evaluated")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
}

// TestAlertKeepResolvedExpiry pins the resolved-marker lifecycle end to end:
// the marker stays visible for the whole KeepResolved window, drops to
// inactive once it elapses, and the rule walks a complete second firing cycle
// afterwards (fired counter incremented, resolved marker fresh again).
func TestAlertKeepResolvedExpiry(t *testing.T) {
	clk := newManualClock()
	e := NewAlertEngine()
	e.SetClock(clk.Now)
	level := 0.0
	if err := e.Add(AlertRule{
		Name:      "miss_rate_high",
		Value:     func() float64 { return level },
		Threshold: 0.5, For: 2 * time.Second, KeepResolved: 30 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	// First cycle: breach → firing → recover → resolved.
	level = 0.9
	e.Eval()
	clk.Advance(2 * time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateFiring || got.Fired != 1 {
		t.Fatalf("first cycle = %s fired=%d, want firing fired=1", got.State, got.Fired)
	}
	level = 0.1
	clk.Advance(time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateResolved {
		t.Fatalf("after recovery = %s, want resolved", got.State)
	}

	// Inside the KeepResolved window the marker must persist across evals.
	clk.Advance(29 * time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateResolved {
		t.Fatalf("at KeepResolved-1s = %s, want resolved still visible", got.State)
	}

	// Once KeepResolved elapses the marker expires to inactive.
	clk.Advance(time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateInactive {
		t.Fatalf("after KeepResolved = %s, want inactive", got.State)
	}

	// Second cycle: the rule must fire and resolve again from scratch.
	level = 0.9
	clk.Advance(time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StatePending {
		t.Fatalf("re-breach = %s, want pending", got.State)
	}
	clk.Advance(2 * time.Second)
	e.Eval()
	if got := stateOf(t, e, "miss_rate_high"); got.State != StateFiring || got.Fired != 2 {
		t.Fatalf("second cycle = %s fired=%d, want firing fired=2", got.State, got.Fired)
	}
	level = 0.1
	clk.Advance(time.Second)
	e.Eval()
	resolved := stateOf(t, e, "miss_rate_high")
	if resolved.State != StateResolved {
		t.Fatalf("second recovery = %s, want resolved", resolved.State)
	}
	if wantSince := clk.Now().Sub(newManualClock().Now()).Seconds(); resolved.Since != wantSince {
		t.Fatalf("resolved Since = %v, want fresh transition at %v", resolved.Since, wantSince)
	}
}

// TestAlertOnTransition pins the state-change hook: every transition of an
// evaluation is delivered with the right endpoints and driving value, quiet
// evaluations deliver nothing, and the hook may re-enter the engine (the
// flight recorder snapshots alert state from inside it) without deadlocking.
func TestAlertOnTransition(t *testing.T) {
	clk := newManualClock()
	e := NewAlertEngine()
	e.SetClock(clk.Now)
	level := 0.0
	if err := e.Add(AlertRule{
		Name: "miss_rate_high", Severity: "critical",
		Value:     func() float64 { return level },
		Threshold: 0.5, For: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	var got []AlertTransition
	e.SetOnTransition(func(tr AlertTransition) {
		// Re-entering the engine from the hook must not deadlock.
		_ = e.Snapshot()
		got = append(got, tr)
	})

	e.Eval() // quiet: no transition
	if len(got) != 0 {
		t.Fatalf("quiet eval delivered %+v", got)
	}

	level = 0.9
	e.Eval() // inactive → pending
	clk.Advance(2 * time.Second)
	e.Eval() // pending → firing
	level = 0.1
	clk.Advance(time.Second)
	e.Eval() // firing → resolved

	want := []AlertTransition{
		{Rule: "miss_rate_high", Severity: "critical", From: StateInactive, To: StatePending, Value: 0.9},
		{Rule: "miss_rate_high", Severity: "critical", From: StatePending, To: StateFiring, Value: 0.9},
		{Rule: "miss_rate_high", Severity: "critical", From: StateFiring, To: StateResolved, Value: 0.1},
	}
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A For==0 rule crosses inactive → firing in one evaluation and must
	// still report the real endpoints.
	if err := e.Add(AlertRule{
		Name: "instant", Value: func() float64 { return 1 }, Threshold: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	got = nil
	e.Eval()
	found := false
	for _, tr := range got {
		if tr.Rule == "instant" {
			found = true
			if tr.From != StateInactive || tr.To != StateFiring {
				t.Fatalf("For==0 transition = %+v, want inactive→firing", tr)
			}
		}
	}
	if !found {
		t.Fatalf("For==0 rule delivered no transition: %+v", got)
	}

	// Removing the hook stops delivery.
	e.SetOnTransition(nil)
	got = nil
	level = 0.9
	clk.Advance(time.Second)
	e.Eval()
	if len(got) != 0 {
		t.Fatalf("removed hook still delivered %+v", got)
	}
}
