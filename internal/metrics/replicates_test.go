package metrics

import (
	"math"
	"testing"

	"vodcast/internal/sim"
)

func TestReplicatesEmpty(t *testing.T) {
	r := NewReplicates()
	if r.Mean() != 0 || r.StdDev() != 0 || r.HalfWidth95() != 0 || r.Count() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestReplicatesSingleValue(t *testing.T) {
	r := NewReplicates()
	r.Add(5)
	if r.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	if r.HalfWidth95() != 0 {
		t.Fatal("one replicate cannot have a half-width")
	}
}

func TestReplicatesKnownValues(t *testing.T) {
	r := NewReplicates()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Sample stddev with n-1 = 7: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(r.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", r.StdDev(), want)
	}
	// Half-width = t_7 * s / sqrt(8) with t_7 = 2.365.
	hw := 2.365 * want / math.Sqrt(8)
	if math.Abs(r.HalfWidth95()-hw) > 1e-9 {
		t.Fatalf("HalfWidth95 = %v, want %v", r.HalfWidth95(), hw)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		q := tQuantile95(df)
		if q > prev {
			t.Fatalf("t quantile increased at df %d: %v after %v", df, q, prev)
		}
		prev = q
	}
	if tQuantile95(1000) != 1.96 {
		t.Fatal("large-df quantile should be the normal 1.96")
	}
	if !math.IsInf(tQuantile95(0), 1) {
		t.Fatal("df 0 should be infinite")
	}
}

// TestConfidenceIntervalCoverage draws replicates of a known distribution
// and checks that the 95% interval covers the true mean about 95% of the
// time — the defining property of the construction.
func TestConfidenceIntervalCoverage(t *testing.T) {
	rng := sim.NewRNG(77)
	const (
		trials     = 2000
		replicates = 10
		trueMean   = 3.0
	)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		r := NewReplicates()
		for i := 0; i < replicates; i++ {
			r.Add(rng.Exp(trueMean))
		}
		if math.Abs(r.Mean()-trueMean) <= r.HalfWidth95() {
			covered++
		}
	}
	rate := float64(covered) / trials
	// Exponential replicates are skewed, so allow a generous band around
	// the nominal 95%.
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("coverage = %.3f, want about 0.95", rate)
	}
}

func TestHalfWidthShrinksWithReplicates(t *testing.T) {
	rng := sim.NewRNG(78)
	few := NewReplicates()
	many := NewReplicates()
	for i := 0; i < 5; i++ {
		few.Add(rng.Float64())
	}
	for i := 0; i < 50; i++ {
		many.Add(rng.Float64())
	}
	if many.HalfWidth95() >= few.HalfWidth95() {
		t.Fatalf("half-width did not shrink: %v with 5, %v with 50",
			few.HalfWidth95(), many.HalfWidth95())
	}
}
