package load_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"vodcast/internal/load"
	"vodcast/internal/vodserver"
)

// startLoadServer boots a two-video station with the monitoring endpoint
// bound, optionally with fault injection.
func startLoadServer(t *testing.T, drop func(video uint32, segment, slot int) bool) *vodserver.Server {
	t.Helper()
	s, err := vodserver.Start(vodserver.Config{
		Addr:      "127.0.0.1:0",
		StatsAddr: "127.0.0.1:0",
		Videos: []vodserver.VideoConfig{
			{ID: 1, Segments: 6, SegmentBytes: 48},
			{ID: 2, Segments: 6, SegmentBytes: 48},
		},
		SlotDuration: 5 * time.Millisecond,
		DropInstance: drop,
		// Fast history scrapes so the harness's /queryz cross-check has a
		// dense enough range inside sub-second steps.
		HistoryInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestE2ELoadHarnessHealthy: a short ramp against a healthy server — every
// step's measured bandwidth, startup delay and error rate must sit inside
// the analytic envelopes, and the run artifacts (live progress, JSONL step
// log, final report) must all be produced.
func TestE2ELoadHarnessHealthy(t *testing.T) {
	s := startLoadServer(t, nil)
	profile, err := load.RampProfile(24, 3, 2100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var progress, stepLog bytes.Buffer
	h, err := load.New(load.Config{
		Addr:           s.Addr(),
		StatusAddr:     s.StatsAddr(),
		Videos:         []uint32{1, 2},
		Profile:        profile,
		MaxConns:       16,
		SessionTimeout: 10 * time.Second,
		Seed:           42,
		Interval:       250 * time.Millisecond,
		Progress:       &progress,
		StepLog:        &stepLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := h.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass {
		t.Fatalf("healthy run failed the gate: %v", report.Failures)
	}
	if len(report.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(report.Steps))
	}
	if report.SlotMillis != 5 {
		t.Fatalf("learned slot = %dms, want 5", report.SlotMillis)
	}
	for _, st := range report.Steps {
		if !st.Gated {
			t.Fatalf("step %s not gated (sessions=%d)", st.Name, st.Sessions)
		}
		if st.Errors != 0 {
			t.Fatalf("step %s: %d session errors", st.Name, st.Errors)
		}
		if st.Server == nil || len(st.Server.PerVideo) != 2 {
			t.Fatalf("step %s missing server delta: %+v", st.Name, st.Server)
		}
		if st.SessionsPerCore <= 0 || st.AdmitsPerSec <= 0 {
			t.Fatalf("step %s rates not computed: %+v", st.Name, st)
		}
		// Both catalogue videos must be bandwidth-gated against their own
		// schedules (wire ids 1 and 2, not station indices).
		checks := map[string]bool{}
		for _, c := range st.Checks {
			checks[c.Name] = true
		}
		for _, want := range []string{"bandwidth_saturated_video_1", "bandwidth_saturated_video_2"} {
			if !checks[want] {
				t.Fatalf("step %s missing %s: %v", st.Name, want, checks)
			}
		}
		// The server retains history, so every step carries the /queryz
		// range; dense enough ranges must also have been cross-checked
		// against the /statusz delta (the gate passing is covered above).
		if st.History == nil {
			t.Fatalf("step %s missing history range", st.Name)
		}
		if st.History.Points >= 5 && !checks["history_requests_delta"] {
			t.Fatalf("step %s: %d history points but no cross-check: %v",
				st.Name, st.History.Points, checks)
		}
	}
	// The fleet outgrew the 16-connection pool at step 3 (24 sessions), so
	// the pool must have bounded, not errored.
	if report.Pool.Peak > 16 {
		t.Fatalf("pool peak %d exceeded bound", report.Pool.Peak)
	}
	if report.Pool.Dials == 0 {
		t.Fatal("pool recorded no dials")
	}

	// Live progress lines rendered on the interval.
	if !strings.Contains(progress.String(), "step=ramp-1") {
		t.Fatalf("no live progress rendered:\n%s", progress.String())
	}
	// The JSONL step log parses line by line back into StepResults.
	lines := 0
	sc := bufio.NewScanner(&stepLog)
	for sc.Scan() {
		var st load.StepResult
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("step log line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("step log lines = %d, want 3", lines)
	}
	// The run is over; the live view must say so.
	if live := h.Live(); live.Running || live.ActiveSessions != 0 {
		t.Fatalf("live after run: %+v", live)
	}
}

// TestE2ELoadHarnessFaultInjection: the same harness against a server that
// drops every scheduled instance of video 1's first segment. The streams
// still complete (the tolerant client records the holes as QoE damage), so
// only the analytic gate can tell this server is broken — and it must.
func TestE2ELoadHarnessFaultInjection(t *testing.T) {
	s := startLoadServer(t, func(video uint32, segment, slot int) bool {
		return video == 1 && segment == 1
	})
	profile, err := load.SoakProfile(12, 900*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h, err := load.New(load.Config{
		Addr:           s.Addr(),
		StatusAddr:     s.StatsAddr(),
		Videos:         []uint32{1, 2},
		Profile:        profile,
		MaxConns:       16,
		SessionTimeout: 10 * time.Second,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := h.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Pass {
		t.Fatal("gate passed a server dropping segment deadlines")
	}
	if len(report.Failures) == 0 {
		t.Fatal("failed report names no failures")
	}
	// The damage is client-visible QoE, so the miss-rate envelope (and with
	// segment 1 gone, the startup envelope) must be what tripped.
	failed := map[string]bool{}
	for _, st := range report.Steps {
		for _, c := range st.Checks {
			if !c.Pass {
				failed[c.Name] = true
			}
		}
	}
	if !failed["miss_rate"] {
		t.Fatalf("miss_rate did not trip; failed checks: %v (failures %v)", failed, report.Failures)
	}
	if !failed["startup_p99_slots"] {
		t.Fatalf("startup_p99_slots did not trip; failed checks: %v", failed)
	}
}
