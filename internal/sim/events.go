package sim

import "container/heap"

// Event is a callback scheduled to run at a simulated instant. The loop passes
// the event's firing time back to the callback.
type Event func(now float64)

type scheduledEvent struct {
	at  float64
	seq uint64 // FIFO tie-break for events at the same instant
	fn  Event
}

type eventHeap []scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduledEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop. Events fire in timestamp
// order; ties fire in scheduling order. The zero value is not usable; call
// NewLoop.
type Loop struct {
	events eventHeap
	now    float64
	seq    uint64
}

// NewLoop returns an empty event loop whose clock starts at zero.
func NewLoop() *Loop {
	return &Loop{}
}

// Now reports the current simulated time in seconds.
func (l *Loop) Now() float64 { return l.now }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) is a programming error and panics, since it would silently corrupt the
// causal order of the simulation.
func (l *Loop) At(at float64, fn Event) {
	if at < l.now {
		panic("sim: event scheduled in the past")
	}
	l.seq++
	heap.Push(&l.events, scheduledEvent{at: at, seq: l.seq, fn: fn})
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (l *Loop) After(delay float64, fn Event) {
	l.At(l.now+delay, fn)
}

// Run fires events in order until the queue is empty or the next event is
// after horizon. The clock is left at the last fired event (or at horizon if
// no event at or before it remained). It returns the number of events fired.
func (l *Loop) Run(horizon float64) int {
	fired := 0
	for len(l.events) > 0 {
		next := l.events[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&l.events)
		l.now = next.at
		next.fn(next.at)
		fired++
	}
	if l.now < horizon {
		l.now = horizon
	}
	return fired
}

// Pending reports how many events are queued.
func (l *Loop) Pending() int { return len(l.events) }
