package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestHighWatermarkSpikeSurvivesScrape is the regression test for the plain-
// gauge failure mode: a one-tick depth spike followed by quieter ticks must
// still be the value the next scrape reads, and once consumed the next
// interval starts fresh.
func TestHighWatermarkSpikeSurvivesScrape(t *testing.T) {
	var h HighWatermark
	h.Record(10) // the spike tick
	h.Record(2)  // later, quieter tick — a plain gauge would overwrite here
	h.Record(3)
	if got := h.Peek(); got != 10 {
		t.Fatalf("Peek() = %v, want 10", got)
	}
	if got := h.Read(); got != 10 {
		t.Fatalf("spike lost: Read() = %v, want 10", got)
	}
	// The read consumed the interval; the next one only sees what follows.
	if got := h.Read(); got != 0 {
		t.Fatalf("Read() after reset = %v, want 0", got)
	}
	h.Record(2)
	if got := h.Read(); got != 2 {
		t.Fatalf("post-reset Read() = %v, want 2", got)
	}
}

// TestHighWatermarkGaugeFunc wires a watermark through GaugeFunc the way the
// server registers vod_fanout_ring_depth_max and asserts the scrape sees the
// inter-scrape maximum, not the last Set value.
func TestHighWatermarkGaugeFunc(t *testing.T) {
	var h HighWatermark
	r := NewRegistry()
	r.GaugeFunc("vod_fanout_ring_depth_max", "", h.Read)

	h.Record(7)
	h.Record(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vod_fanout_ring_depth_max 7\n") {
		t.Fatalf("scrape missed the spike:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vod_fanout_ring_depth_max 0\n") {
		t.Fatalf("watermark not reset by scrape:\n%s", buf.String())
	}
}

// TestHighWatermarkConcurrent hammers Record from many goroutines and checks
// the final read is exactly the global maximum — the CAS loop must not lose
// the largest value under contention.
func TestHighWatermarkConcurrent(t *testing.T) {
	var h HighWatermark
	var wg sync.WaitGroup
	const writers, perWriter = 8, 1000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(float64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Read(), float64(writers*perWriter-1); got != want {
		t.Fatalf("Read() = %v, want %v", got, want)
	}
}
