package wire

import (
	"bytes"
	"io"
	"testing"
)

// The trace-propagation A/B behind BENCH_wire.json: the v1 benchmarks are
// the disabled path — the exact frames a pre-v2 deployment keeps exchanging
// after this change — and must stay within the repo's 2% off-path
// observability budget of the pre-change baseline (measured against a
// baseline worktree, same methodology as BENCH_obs2.json). The v2
// benchmarks price the enabled path: one fixed 20/18-byte trace block per
// control frame, never per segment frame.

func benchWrite(b *testing.B, msg any) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRead(b *testing.B, msg any) {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRequest(version uint16) Request {
	req := Request{VideoID: 7, FromSegment: 3, Version: version}
	if version >= ProtoV2 {
		req.TraceID = 0xDEADBEEF
		req.SpanID = 42
	}
	return req
}

func benchScheduleInfo(version uint16, segments int) ScheduleInfo {
	periods := make([]uint32, segments)
	for i := range periods {
		periods[i] = uint32(i + 1)
	}
	info := ScheduleInfo{
		VideoID: 1, Segments: uint32(segments), SlotMillis: 500,
		SegmentBytes: 4096, AdmitSlot: 123456, Version: version, Periods: periods,
	}
	if version >= ProtoV2 {
		info.TraceID = 0xDEADBEEF
		info.SpanID = 42
	}
	return info
}

func BenchmarkWriteRequestV1(b *testing.B) { benchWrite(b, benchRequest(0)) }
func BenchmarkWriteRequestV2(b *testing.B) { benchWrite(b, benchRequest(ProtoV2)) }
func BenchmarkReadRequestV1(b *testing.B)  { benchRead(b, benchRequest(0)) }
func BenchmarkReadRequestV2(b *testing.B)  { benchRead(b, benchRequest(ProtoV2)) }

func BenchmarkWriteScheduleInfoV1(b *testing.B) { benchWrite(b, benchScheduleInfo(0, 99)) }
func BenchmarkWriteScheduleInfoV2(b *testing.B) { benchWrite(b, benchScheduleInfo(ProtoV2, 99)) }
func BenchmarkReadScheduleInfoV1(b *testing.B)  { benchRead(b, benchScheduleInfo(0, 99)) }
func BenchmarkReadScheduleInfoV2(b *testing.B)  { benchRead(b, benchScheduleInfo(ProtoV2, 99)) }

func BenchmarkWriteClientReport(b *testing.B) {
	benchWrite(b, ClientReport{Version: ProtoV2, VideoID: 1, TraceID: 7, SpanID: 8,
		AdmitSlot: 5, SegmentsNeeded: 99, SegmentsReceived: 99, PayloadBytes: 1 << 20})
}

// BenchmarkWriteSegment prices the data plane the versioning change must
// not touch: segment frames are identical bytes in both protocol versions.
func BenchmarkWriteSegment(b *testing.B) {
	benchWrite(b, Segment{VideoID: 1, Segment: 2, Slot: 3,
		Payload: SegmentPayload(1, 2, 4096)})
}
