package obs

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the rolling-window latency tracker: exact quantiles
// over the last N observations plus SLO burn accounting. Histograms (see
// registry.go) are the long-horizon, scrape-friendly view; the window is the
// operator's "what is the pipeline doing RIGHT NOW" view that /statusz and
// vodtop render — p50/p95/p99 over a bounded, recent sample, and how fast
// the error budget of a latency objective is burning.
//
// The paper's evaluation bounds client waiting time while holding bandwidth
// near FB; an SLO of the form "objective fraction of admissions reach first
// byte within threshold seconds" is exactly that bound restated as an
// operational target, so the tracker carries one per pipeline stage.

// DefaultWindowSize bounds a Window when the owner does not choose one.
const DefaultWindowSize = 1024

// Window is a rolling window of float64 observations with quantile
// snapshots and optional SLO accounting. All methods are safe for concurrent
// use; a nil *Window drops observations and snapshots to zero, so disabled
// tracking needs no call-site guards.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool

	total uint64

	// SLO accounting (threshold <= 0 disables it).
	threshold float64
	objective float64
	good, bad uint64
}

// NewWindow returns a tracker over the last size observations (size <= 0
// selects DefaultWindowSize).
func NewWindow(size int) *Window {
	if size <= 0 {
		size = DefaultWindowSize
	}
	return &Window{buf: make([]float64, 0, size)}
}

// SetSLO arms burn accounting: an observation at or under threshold is
// "good"; the budget is the 1-objective fraction allowed to be bad
// (objective in (0,1), e.g. 0.99 for a 99% target). Observations recorded
// before SetSLO are not reclassified.
func (w *Window) SetSLO(threshold, objective float64) error {
	if w == nil {
		return nil
	}
	if threshold <= 0 {
		return fmt.Errorf("obs: SLO threshold %v must be positive", threshold)
	}
	if objective <= 0 || objective >= 1 {
		return fmt.Errorf("obs: SLO objective %v must be in (0,1)", objective)
	}
	w.mu.Lock()
	w.threshold = threshold
	w.objective = objective
	w.mu.Unlock()
	return nil
}

// Observe records one value.
func (w *Window) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.next] = v
		w.next = (w.next + 1) % cap(w.buf)
		w.full = true
	}
	w.total++
	if w.threshold > 0 {
		if v <= w.threshold {
			w.good++
		} else {
			w.bad++
		}
	}
	w.mu.Unlock()
}

// Merge folds the other window's state into w: every sample currently in
// other's window is observed into w (subject to w's own capacity and SLO
// classification is NOT re-run — the lifetime good/bad and total counters are
// carried over instead, so merged burn accounting equals the sum of the
// parts). Merging leaves other untouched, so per-worker shard windows can be
// folded into a fresh aggregate repeatedly without double counting the
// shards themselves: build a new aggregate, merge every shard, snapshot.
//
// Quantiles of the merged window match a single window that observed all
// samples directly whenever the aggregate's capacity holds the combined
// sample; under overflow the ring keeps the most recently merged samples,
// exactly as a single window would under the same arrival order.
func (w *Window) Merge(other *Window) {
	if w == nil || other == nil || w == other {
		return
	}
	other.mu.Lock()
	// Copy in arrival order: oldest first when the ring has wrapped, so the
	// aggregate's ring evicts in the same order a single combined window
	// would.
	var sample []float64
	if other.full {
		sample = make([]float64, 0, len(other.buf))
		sample = append(sample, other.buf[other.next:]...)
		sample = append(sample, other.buf[:other.next]...)
	} else {
		sample = append(sample, other.buf...)
	}
	total, good, bad := other.total, other.good, other.bad
	other.mu.Unlock()

	w.mu.Lock()
	for _, v := range sample {
		if len(w.buf) < cap(w.buf) {
			w.buf = append(w.buf, v)
		} else {
			w.buf[w.next] = v
			w.next = (w.next + 1) % cap(w.buf)
			w.full = true
		}
	}
	// Lifetime counters carry over wholesale: total counts observations the
	// window may have already evicted, and good/bad keep the source's SLO
	// classification (the thresholds may differ; the source judged them).
	w.total += total
	w.good += good
	w.bad += bad
	w.mu.Unlock()
}

// WindowSnapshot is one consistent view of a Window.
type WindowSnapshot struct {
	// Count is the number of observations currently in the window; Total
	// counts every observation over the tracker's lifetime.
	Count int    `json:"count"`
	Total uint64 `json:"total"`
	// Quantiles, mean and extremes of the windowed sample, zero when empty.
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// SLO accounting, zero unless SetSLO armed it. Good and Bad are
	// lifetime totals; BurnRate is the rate the error budget burns at:
	// (bad fraction)/(1-objective), so 1.0 means "exactly on budget",
	// above 1 means the objective will be missed if the rate holds.
	SLOThreshold float64 `json:"slo_threshold,omitempty"`
	SLOObjective float64 `json:"slo_objective,omitempty"`
	Good         uint64  `json:"good,omitempty"`
	Bad          uint64  `json:"bad,omitempty"`
	BurnRate     float64 `json:"burn_rate"`
}

// quantile reads q in [0,1] from the sorted sample using the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Snapshot computes quantiles over the current window and the SLO burn
// rate. It copies and sorts the window (O(n log n) for n = window size), a
// cost paid by the introspection reader, never the observation hot path.
func (w *Window) Snapshot() WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	w.mu.Lock()
	sample := append([]float64(nil), w.buf...)
	snap := WindowSnapshot{
		Count: len(w.buf), Total: w.total,
		SLOThreshold: w.threshold, SLOObjective: w.objective,
		Good: w.good, Bad: w.bad,
	}
	w.mu.Unlock()

	if len(sample) > 0 {
		var sum float64
		for _, v := range sample {
			sum += v
		}
		snap.Mean = sum / float64(len(sample))
		sort.Float64s(sample)
		snap.P50 = quantile(sample, 0.50)
		snap.P95 = quantile(sample, 0.95)
		snap.P99 = quantile(sample, 0.99)
		snap.Max = sample[len(sample)-1]
	}
	if snap.SLOThreshold > 0 && snap.Good+snap.Bad > 0 {
		badFrac := float64(snap.Bad) / float64(snap.Good+snap.Bad)
		snap.BurnRate = badFrac / (1 - snap.SLOObjective)
	}
	return snap
}
