// Comparison: a miniature Figure 7 — the average bandwidth of stream
// tapping/patching, UD, DHB and NPB across request rates, showing why a
// video whose popularity swings with the time of day needs a protocol that
// behaves at every rate.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vodcast"
)

func main() {
	cfg := vodcast.QuickSweepConfig()
	cfg.Rates = []float64{1, 10, 100, 1000}

	rows, err := vodcast.Sweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("average bandwidth (multiples of the consumption rate), 99 segments:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "req/h\ttapping\tUD\tDHB\tNPB\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%.0f\t%.2f\t%.2f\t%.2f\t%.0f\t\n",
			r.RatePerHour, r.TappingAvg, r.UDAvg, r.DHBAvg, r.NPB)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - tapping wins only when the video is nearly idle, then grows ~sqrt(rate)")
	fmt.Println("  - NPB pays its 6 streams no matter how few customers show up")
	fmt.Println("  - DHB tracks the cheapest protocol at every rate (the paper's claim)")
}
