package fanout

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

// catalogues returns a paired zero-copy encoder and reference encoder over
// the same videos: one CBR, one VBR-shaped, one empty-slot-prone tiny one.
func catalogues(t *testing.T) (*Encoder, *Reference) {
	t.Helper()
	enc, ref := NewEncoder(), NewFanoutReference()
	vids := map[uint32][]int{
		1: {1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000},
		2: {1500, 700, 2200, 90, 4096, 1, 0, 333, 1234, 800}, // VBR-shaped, incl. zero-size
		3: {64},
	}
	for id, sizes := range vids {
		if err := enc.AddVideo(id, sizes); err != nil {
			t.Fatalf("Encoder.AddVideo(%d): %v", id, err)
		}
		if err := ref.AddVideo(id, sizes); err != nil {
			t.Fatalf("Reference.AddVideo(%d): %v", id, err)
		}
	}
	return enc, ref
}

// TestDifferentialByteIdentical is the executable-spec gate: the zero-copy
// encoder must emit exactly the bytes the retained reference path emits,
// for every slot shape including empty slots, repeated instances, and
// fault-injected drops.
func TestDifferentialByteIdentical(t *testing.T) {
	enc, ref := catalogues(t)
	cases := []struct {
		name     string
		videoID  uint32
		slot     int
		segments []int
		drop     func(int) bool
	}{
		{"empty slot", 1, 0, nil, nil},
		{"single segment", 1, 5, []int{1}, nil},
		{"full slot", 1, 17, []int{1, 2, 3, 5, 8}, nil},
		{"vbr mixed sizes", 2, 9, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, nil},
		{"zero-size segment", 2, 3, []int{7}, nil},
		{"repeat instance", 3, 40, []int{1, 1, 1}, nil},
		{"drop odd segments", 2, 11, []int{1, 2, 3, 4}, func(seg int) bool { return seg%2 == 1 }},
		{"drop everything", 1, 2, []int{1, 2, 3}, func(int) bool { return true }},
		{"large slot index", 2, 1 << 40, []int{5}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, wantPayload, err := ref.EncodeSlot(c.videoID, c.slot, c.segments, c.drop)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			f, err := enc.EncodeSlot(c.videoID, c.slot, c.segments, c.drop)
			if err != nil {
				t.Fatalf("zerocopy: %v", err)
			}
			defer f.Release()
			if !bytes.Equal(f.Bytes(), want) {
				t.Fatalf("wire bytes differ: zerocopy %d bytes, reference %d bytes", len(f.Bytes()), len(want))
			}
			if f.PayloadBytes() != wantPayload {
				t.Fatalf("payload accounting differs: zerocopy %d, reference %d", f.PayloadBytes(), wantPayload)
			}
			if f.Slot() != c.slot {
				t.Fatalf("frame slot %d, want %d", f.Slot(), c.slot)
			}
		})
	}
}

func TestEncodeSlotErrors(t *testing.T) {
	enc, ref := catalogues(t)
	if _, err := enc.EncodeSlot(99, 0, nil, nil); err == nil {
		t.Fatal("unknown video accepted by encoder")
	}
	if _, _, err := ref.EncodeSlot(99, 0, nil, nil); err == nil {
		t.Fatal("unknown video accepted by reference")
	}
	if _, err := enc.EncodeSlot(3, 0, []int{2}, nil); err == nil {
		t.Fatal("out-of-range segment accepted by encoder")
	}
	if _, _, err := ref.EncodeSlot(3, 0, []int{0}, nil); err == nil {
		t.Fatal("out-of-range segment accepted by reference")
	}
	if err := enc.AddVideo(1, []int{5}); err == nil {
		t.Fatal("duplicate video accepted by encoder")
	}
	if err := ref.AddVideo(1, []int{5}); err == nil {
		t.Fatal("duplicate video accepted by reference")
	}
	if err := enc.AddVideo(8, []int{-1}); err == nil {
		t.Fatal("negative size accepted by encoder")
	}
	if err := ref.AddVideo(8, []int{-1}); err == nil {
		t.Fatal("negative size accepted by reference")
	}
}

// TestFrameRecyclesThroughPool proves the refcount lifecycle: a released
// frame returns to the pool and its backing array is reused, while a
// retained frame survives a release.
func TestFrameRecyclesThroughPool(t *testing.T) {
	enc, _ := catalogues(t)
	f, err := enc.EncodeSlot(1, 1, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Retain()
	f.Release()
	if got := f.refsForTest(); got != 1 {
		t.Fatalf("refs after retain+release = %d, want 1", got)
	}
	firstBytes := f.Bytes()
	f.Release()
	// The frame is back in the pool; the next encode on this goroutine
	// should reuse its backing array.
	g, err := enc.EncodeSlot(1, 2, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if cap(firstBytes) > 0 && cap(g.Bytes()) == 0 {
		t.Fatal("pooled frame lost its backing array")
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	enc, _ := catalogues(t)
	f, err := enc.EncodeSlot(1, 1, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

func TestRingPushPopOrder(t *testing.T) {
	enc, _ := catalogues(t)
	r := NewRing(4)
	var frames []*Frame
	for slot := 0; slot < 3; slot++ {
		f, err := enc.EncodeSlot(3, slot, []int{1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		f.Retain()
		d, ok := r.Push(f)
		if !ok {
			t.Fatalf("push %d failed on non-full ring", slot)
		}
		if d != slot+1 {
			t.Fatalf("push %d reported depth %d, want %d", slot, d, slot+1)
		}
	}
	if d := r.Depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
	got, ok := r.PopAll(nil)
	if !ok {
		t.Fatal("open ring reported closed")
	}
	if len(got) != 3 {
		t.Fatalf("popped %d frames, want 3", len(got))
	}
	for i, f := range got {
		if f.Slot() != i {
			t.Fatalf("frame %d has slot %d, want FIFO order", i, f.Slot())
		}
		f.Release()
	}
	for _, f := range frames {
		f.Release()
	}
}

func TestRingPushFailsWhenFull(t *testing.T) {
	enc, _ := catalogues(t)
	r := NewRing(1)
	a, _ := enc.EncodeSlot(3, 1, []int{1}, nil)
	b, _ := enc.EncodeSlot(3, 2, []int{1}, nil)
	defer a.Release()
	defer b.Release()
	a.Retain()
	if _, ok := r.Push(a); !ok {
		t.Fatal("first push failed")
	}
	if _, ok := r.Push(b); ok {
		t.Fatal("push succeeded on full ring")
	}
	r.Drop()
	if !r.Dropped() {
		t.Fatal("Dropped() false after Drop")
	}
	if r.Depth() != 0 {
		t.Fatal("Drop left frames queued")
	}
	// The queued reference was released by Drop; a remains live through the
	// caller's own reference only.
	if got := a.refsForTest(); got != 1 {
		t.Fatalf("refs after Drop = %d, want 1", got)
	}
	if _, ok := r.PopAll(nil); ok {
		t.Fatal("dropped ring reported open")
	}
}

func TestRingCloseDeliversTail(t *testing.T) {
	enc, _ := catalogues(t)
	r := NewRing(4)
	f, _ := enc.EncodeSlot(3, 7, []int{1}, nil)
	f.Retain()
	if _, ok := r.Push(f); !ok {
		t.Fatal("push failed")
	}
	r.Close()
	if _, ok := r.Push(f); ok {
		t.Fatal("push succeeded on closed ring")
	}
	got, ok := r.PopAll(nil)
	if ok {
		t.Fatal("closed ring reported open")
	}
	if len(got) != 1 || got[0].Slot() != 7 {
		t.Fatalf("tail frames not delivered on close: %d frames", len(got))
	}
	got[0].Release()
	f.Release()
	if r.Dropped() {
		t.Fatal("clean Close reported as Drop")
	}
}

// TestRingBlockingDrain exercises the producer/consumer handoff under the
// race detector: a consumer blocked in PopAll wakes on push and on close.
func TestRingBlockingDrain(t *testing.T) {
	enc, _ := catalogues(t)
	r := NewRing(8)
	const slots = 200
	var wg sync.WaitGroup
	wg.Add(1)
	seen := 0
	go func() {
		defer wg.Done()
		var buf []*Frame
		for {
			var ok bool
			buf, ok = r.PopAll(buf[:0])
			for _, f := range buf {
				seen++
				f.Release()
			}
			if !ok {
				return
			}
		}
	}()
	for slot := 0; slot < slots; slot++ {
		f, err := enc.EncodeSlot(1, slot, []int{1, 2, 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.Retain()
		for {
			if _, ok := r.Push(f); ok {
				break
			}
			// Full ring: yield to the drainer instead of dropping, so the
			// test exercises the blocking handoff deterministically even on
			// one CPU.
			runtime.Gosched()
		}
		f.Release()
	}
	r.Close()
	wg.Wait()
	if seen != slots {
		t.Fatalf("consumer saw %d frames, producer delivered %d", seen, slots)
	}
}

// TestSteadyStateZeroAlloc is the alloc gate the CI target enforces: once
// the pool is warm, encode → push → pop → write-accounting → release must
// not allocate.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync primitives")
	}
	enc, _ := catalogues(t)
	rings := make([]*Ring, 16)
	for i := range rings {
		rings[i] = NewRing(4)
	}
	segments := []int{1, 2, 3, 5, 8}
	drain := make([]*Frame, 0, 4)
	slot := 0
	tick := func() {
		f, err := enc.EncodeSlot(1, slot, segments, nil)
		if err != nil {
			t.Fatal(err)
		}
		slot++
		for _, r := range rings {
			f.Retain()
			if _, ok := r.Push(f); !ok {
				f.Release()
			}
		}
		f.Release()
		for _, r := range rings {
			var ok bool
			drain, ok = r.PopAll(drain[:0])
			if !ok {
				t.Fatal("ring closed unexpectedly")
			}
			for _, g := range drain {
				_ = g.Bytes()
				g.Release()
			}
		}
	}
	// Warm the pool and the drain buffer.
	for i := 0; i < 8; i++ {
		tick()
	}
	if avg := testing.AllocsPerRun(100, tick); avg != 0 {
		t.Fatalf("steady-state broadcast path allocates %.1f per slot, want 0", avg)
	}
}
