// Package experiments regenerates the evaluation of the paper: the average
// and maximum bandwidth sweeps of Figures 7 and 8, the compressed-video
// study of Figure 9, Section 3's dynamic-pagoda ablation, and the
// naive-versus-heuristic peak comparison that motivates the DHB heuristic.
//
// Absolute numbers depend on the substrate (a fresh event simulator and, for
// Figure 9, a synthetic VBR trace); the package's contract is the paper's
// shape: who wins, by roughly what factor, and where the curves cross.
package experiments

import (
	"fmt"

	"vodcast/internal/broadcast"
	"vodcast/internal/core"
	"vodcast/internal/dynamic"
	"vodcast/internal/metrics"
	"vodcast/internal/reactive"
	"vodcast/internal/sim"
	"vodcast/internal/trace"
	"vodcast/internal/workload"
)

// DefaultRates is the request-rate sweep of Figures 7-9, in requests/hour.
var DefaultRates = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Config parameterizes the CBR sweeps (Figures 7 and 8).
type Config struct {
	// Rates lists the arrival rates to sweep in requests per hour.
	Rates []float64
	// Segments is the per-video segment count (99 in the paper).
	Segments int
	// VideoSeconds is the video duration D (7200 in the paper).
	VideoSeconds float64
	// TargetRequests sizes each run: the horizon aims to observe this many
	// requests, clamped to [MinHours, MaxHours] of simulated time.
	TargetRequests float64
	MinHours       float64
	MaxHours       float64
	// WarmupSlots are excluded from the statistics.
	WarmupSlots int
	// Seed drives every RNG in the sweep.
	Seed int64
	// IncludeAblation additionally simulates the dynamic pagoda protocol
	// of Section 3's ablation.
	IncludeAblation bool
}

// DefaultConfig reproduces the paper's setup at publication quality.
func DefaultConfig() Config {
	return Config{
		Rates:          DefaultRates,
		Segments:       99,
		VideoSeconds:   7200,
		TargetRequests: 20000,
		MinHours:       100,
		MaxHours:       2000,
		WarmupSlots:    200,
		Seed:           1,
	}
}

// QuickConfig is a reduced setup for tests and benchmarks: same shape,
// shorter horizons.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.TargetRequests = 2000
	cfg.MinHours = 30
	cfg.MaxHours = 400
	return cfg
}

func (c Config) validate() error {
	if len(c.Rates) == 0 {
		return fmt.Errorf("experiments: empty rate sweep")
	}
	for _, r := range c.Rates {
		if r <= 0 {
			return fmt.Errorf("experiments: rate %v must be positive", r)
		}
	}
	if c.Segments <= 0 {
		return fmt.Errorf("experiments: segment count %d must be positive", c.Segments)
	}
	if c.VideoSeconds <= 0 {
		return fmt.Errorf("experiments: video duration %v must be positive", c.VideoSeconds)
	}
	if c.TargetRequests <= 0 || c.MinHours <= 0 || c.MaxHours < c.MinHours {
		return fmt.Errorf("experiments: bad horizon sizing (target %v, hours [%v, %v])",
			c.TargetRequests, c.MinHours, c.MaxHours)
	}
	if c.WarmupSlots < 0 {
		return fmt.Errorf("experiments: negative warmup")
	}
	return nil
}

// hoursFor sizes the simulated span for one rate.
func (c Config) hoursFor(rate float64) float64 {
	h := c.TargetRequests / rate
	if h < c.MinHours {
		return c.MinHours
	}
	if h > c.MaxHours {
		return c.MaxHours
	}
	return h
}

// SweepRow carries the measured bandwidths for one arrival rate, in
// multiples of the video consumption rate. NPB is the static pagoda
// comparator, whose bandwidth is its stream count at every rate.
type SweepRow struct {
	RatePerHour float64

	TappingAvg float64
	TappingMax float64
	UDAvg      float64
	UDMax      float64
	DHBAvg     float64
	DHBMax     float64
	NPB        float64

	// DNPBAvg/DNPBMax are filled only when Config.IncludeAblation is set.
	DNPBAvg float64
	DNPBMax float64
}

// slotted adapts the two slotted protocol implementations to one runner.
type slotted interface {
	Admit() int
}

// effectiveWarmup shrinks the configured warm-up when a horizon is too short
// to afford it, keeping at least three quarters of the run measurable.
func effectiveWarmup(horizonSlots, warmup int) int {
	if warmup > horizonSlots/4 {
		return horizonSlots / 4
	}
	return warmup
}

// runSlotted drives a slotted protocol under Poisson arrivals and returns
// its time-weighted average and maximum per-slot load.
func runSlotted(proto slotted, advance func() int, seed int64, ratePerHour, slotSeconds float64, horizonSlots, warmupSlots int) (avg, max float64) {
	rng := sim.NewRNG(seed)
	arrivals := workload.NewSlottedArrivals(rng, workload.Constant(ratePerHour), slotSeconds)
	bw := metrics.NewBandwidth()
	for slot := 0; slot < horizonSlots; slot++ {
		for a := 0; a < arrivals.Next(); a++ {
			proto.Admit()
		}
		load := float64(advance())
		if slot >= warmupSlots {
			bw.Record(load, slotSeconds)
		}
	}
	return bw.Mean(), bw.Max()
}

// Sweep runs the Figures 7-8 experiment: for every rate it simulates stream
// tapping/patching, UD, DHB and (optionally) dynamic pagoda, and pins NPB at
// its stream count.
func Sweep(cfg Config) ([]SweepRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	npbStreams := float64(broadcast.PagodaStreams(cfg.Segments))
	d := cfg.VideoSeconds / float64(cfg.Segments)

	rows := make([]SweepRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		horizonSlots := int(hours * 3600 / d)
		seed := cfg.Seed + int64(i)*100
		row := SweepRow{RatePerHour: rate, NPB: npbStreams}

		tap, err := reactive.Tapping(reactive.Config{
			RatePerHour:    rate,
			VideoSeconds:   cfg.VideoSeconds,
			HorizonSeconds: hours * 3600,
			WarmupSeconds:  float64(cfg.WarmupSlots) * d,
			Seed:           seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: tapping at %v/h: %w", rate, err)
		}
		row.TappingAvg, row.TappingMax = tap.AvgBandwidth, tap.MaxBandwidth

		ud, err := dynamic.UD(cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("experiments: UD: %w", err)
		}
		row.UDAvg, row.UDMax = runSlotted(ud, func() int { _, l := ud.AdvanceSlot(); return l },
			seed+2, rate, d, horizonSlots, cfg.WarmupSlots)

		dhb, err := core.New(core.Config{Segments: cfg.Segments})
		if err != nil {
			return nil, fmt.Errorf("experiments: DHB: %w", err)
		}
		row.DHBAvg, row.DHBMax = runSlotted(dhbAdapter{s: dhb}, func() int { return dhb.AdvanceSlot().Load },
			seed+3, rate, d, horizonSlots, cfg.WarmupSlots)

		if cfg.IncludeAblation {
			dnpb, err := dynamic.DynamicPagoda(cfg.Segments)
			if err != nil {
				return nil, fmt.Errorf("experiments: dynamic pagoda: %w", err)
			}
			row.DNPBAvg, row.DNPBMax = runSlotted(dnpb, func() int { _, l := dnpb.AdvanceSlot(); return l },
				seed+4, rate, d, horizonSlots, cfg.WarmupSlots)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PeaksResult compares the naive latest-slot policy with the DHB heuristic
// under saturation (Section 3's motivating example).
type PeaksResult struct {
	Segments     int
	HorizonSlots int
	NaiveMax     int
	NaiveAvg     float64
	HeuristicMax int
	HeuristicAvg float64
}

// Peaks runs both policies with one request per slot for horizonSlots slots.
func Peaks(segments, horizonSlots int) (PeaksResult, error) {
	if segments <= 0 || horizonSlots <= 0 {
		return PeaksResult{}, fmt.Errorf("experiments: peaks needs positive segments (%d) and horizon (%d)", segments, horizonSlots)
	}
	res := PeaksResult{Segments: segments, HorizonSlots: horizonSlots}
	run := func(policy core.Policy) (int, float64, error) {
		s, err := core.New(core.Config{Segments: segments, Policy: policy})
		if err != nil {
			return 0, 0, err
		}
		max, total := 0, 0
		for slot := 0; slot < horizonSlots; slot++ {
			s.AdmitRequest(core.AdmitOptions{})
			load := s.AdvanceSlot().Load
			total += load
			if load > max {
				max = load
			}
		}
		return max, float64(total) / float64(horizonSlots), nil
	}
	var err error
	if res.NaiveMax, res.NaiveAvg, err = run(core.PolicyNaive); err != nil {
		return PeaksResult{}, err
	}
	if res.HeuristicMax, res.HeuristicAvg, err = run(core.PolicyHeuristic); err != nil {
		return PeaksResult{}, err
	}
	return res, nil
}

// VBRConfig parameterizes the Figure 9 reproduction.
type VBRConfig struct {
	// Rates lists the arrival rates in requests per hour.
	Rates []float64
	// MaxWaitSeconds is the waiting-time guarantee (60 in the paper).
	MaxWaitSeconds float64
	// TraceSeed generates the synthetic Matrix-calibrated trace.
	TraceSeed int64
	// Seed drives the arrival processes.
	Seed int64
	// TargetRequests / MinHours / MaxHours size each run as in Config.
	TargetRequests float64
	MinHours       float64
	MaxHours       float64
	WarmupSlots    int
}

// DefaultVBRConfig reproduces the paper's Figure 9 setup.
func DefaultVBRConfig() VBRConfig {
	return VBRConfig{
		Rates:          DefaultRates,
		MaxWaitSeconds: 60,
		TraceSeed:      42,
		Seed:           2,
		TargetRequests: 20000,
		MinHours:       100,
		MaxHours:       2000,
		WarmupSlots:    200,
	}
}

// QuickVBRConfig is the reduced variant for tests and benchmarks.
func QuickVBRConfig() VBRConfig {
	cfg := DefaultVBRConfig()
	cfg.TargetRequests = 2000
	cfg.MinHours = 30
	cfg.MaxHours = 400
	return cfg
}

// Fig9Row carries average bandwidths in megabytes per second.
type Fig9Row struct {
	RatePerHour float64
	UD          float64
	DHBA        float64
	DHBB        float64
	DHBC        float64
	DHBD        float64
}

// Fig9 reproduces the compressed-video comparison: UD and the four DHB
// solutions distributing the (synthetic) Matrix trace.
func Fig9(cfg VBRConfig) ([]Fig9Row, map[core.VBRVariant]core.VBRSolution, error) {
	if len(cfg.Rates) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty rate sweep")
	}
	tr, err := trace.SyntheticMatrix(cfg.TraceSeed)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	plans, err := core.PlanVBR(tr, cfg.MaxWaitSeconds)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	base := Config{
		Rates:          cfg.Rates,
		Segments:       plans[core.VariantA].Segments,
		VideoSeconds:   tr.Duration(),
		TargetRequests: cfg.TargetRequests,
		MinHours:       cfg.MinHours,
		MaxHours:       cfg.MaxHours,
		WarmupSlots:    cfg.WarmupSlots,
		Seed:           cfg.Seed,
	}
	if err := base.validate(); err != nil {
		return nil, nil, err
	}

	const mb = 1e6
	rows := make([]Fig9Row, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := base.hoursFor(rate)
		seed := cfg.Seed + int64(i)*100
		row := Fig9Row{RatePerHour: rate}

		// UD distributes the video on peak-rate streams (the DHB-a rate).
		planA := plans[core.VariantA]
		horizon := int(hours * 3600 / planA.SlotDuration)
		ud, err := dynamic.UD(planA.Segments)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: UD: %w", err)
		}
		avg, _ := runSlotted(ud, func() int { _, l := ud.AdvanceSlot(); return l },
			seed+1, rate, planA.SlotDuration, horizon, cfg.WarmupSlots)
		row.UD = avg * planA.Rate / mb

		for v, dst := range map[core.VBRVariant]*float64{
			core.VariantA: &row.DHBA,
			core.VariantB: &row.DHBB,
			core.VariantC: &row.DHBC,
			core.VariantD: &row.DHBD,
		} {
			plan := plans[v]
			horizon := int(hours * 3600 / plan.SlotDuration)
			sched, err := core.New(plan.SchedulerConfig())
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %v: %w", v, err)
			}
			avg, _ := runSlotted(dhbAdapter{s: sched}, func() int { return sched.AdvanceSlot().Load },
				seed+int64(v)+1, rate, plan.SlotDuration, horizon, cfg.WarmupSlots)
			*dst = avg * plan.Rate / mb
		}
		rows = append(rows, row)
	}
	return rows, plans, nil
}
