// Package storage models the video server's disk subsystem — the "I/O
// traffic" cost the paper's introduction names alongside network bandwidth.
// Every segment instance a broadcasting protocol schedules must be read from
// disk within its slot, so a protocol's bandwidth peaks translate directly
// into disk provisioning: this package computes, for a striped disk array,
// how many drives a recorded transmission schedule needs and how busy they
// run.
package storage

import (
	"fmt"
	"math"
)

// Disk models one drive: a fixed per-request overhead (seek plus rotational
// latency) and a sustained transfer rate.
type Disk struct {
	// OverheadSeconds is paid once per segment read.
	OverheadSeconds float64
	// TransferBytesPerSecond is the sustained sequential rate.
	TransferBytesPerSecond float64
}

// CommodityDisk2001 returns drive parameters typical of the paper's era:
// 10 ms combined seek and rotational latency, 20 MB/s sustained transfer.
func CommodityDisk2001() Disk {
	return Disk{OverheadSeconds: 0.010, TransferBytesPerSecond: 20e6}
}

func (d Disk) validate() error {
	if d.OverheadSeconds < 0 {
		return fmt.Errorf("storage: negative overhead %v", d.OverheadSeconds)
	}
	if d.TransferBytesPerSecond <= 0 {
		return fmt.Errorf("storage: transfer rate %v must be positive", d.TransferBytesPerSecond)
	}
	return nil
}

// ReadSeconds reports the disk time one segment read of the given size
// occupies.
func (d Disk) ReadSeconds(bytes float64) float64 {
	return d.OverheadSeconds + bytes/d.TransferBytesPerSecond
}

// Read identifies one segment read: which video, which segment, how many
// bytes. Striping assigns it to drive (Segment-1 + Video) mod disks so
// consecutive segments of one video — which a schedule tends to read in
// nearby slots — spread across the array.
type Read struct {
	Video   int
	Segment int
	Bytes   float64
}

func (r Read) disk(disks int) int {
	return ((r.Segment - 1) + r.Video) % disks
}

// Schedule is the recorded transmission plan: Slots[t] lists the reads slot
// t performs.
type Schedule struct {
	SlotSeconds float64
	Slots       [][]Read
}

func (s Schedule) validate() error {
	if s.SlotSeconds <= 0 {
		return fmt.Errorf("storage: slot duration %v must be positive", s.SlotSeconds)
	}
	if len(s.Slots) == 0 {
		return fmt.Errorf("storage: empty schedule")
	}
	for t, reads := range s.Slots {
		for _, r := range reads {
			if r.Segment < 1 || r.Video < 0 || r.Bytes < 0 {
				return fmt.Errorf("storage: slot %d has invalid read %+v", t, r)
			}
		}
	}
	return nil
}

// Report describes how a schedule runs on a striped array.
type Report struct {
	// Disks is the array size evaluated.
	Disks int
	// MaxBusyFraction is the worst per-disk busy share of any slot; above
	// 1.0 the array cannot keep up.
	MaxBusyFraction float64
	// MeanBusyFraction is the average per-disk busy share.
	MeanBusyFraction float64
	// PeakSlotReads is the largest number of reads any single slot issued.
	PeakSlotReads int
}

// Evaluate runs the schedule on an array of the given size.
func Evaluate(d Disk, s Schedule, disks int) (Report, error) {
	if err := d.validate(); err != nil {
		return Report{}, err
	}
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	if disks <= 0 {
		return Report{}, fmt.Errorf("storage: disk count %d must be positive", disks)
	}
	rep := Report{Disks: disks}
	busy := make([]float64, disks)
	var busySum float64
	var busySamples int
	for _, reads := range s.Slots {
		for i := range busy {
			busy[i] = 0
		}
		for _, r := range reads {
			busy[r.disk(disks)] += d.ReadSeconds(r.Bytes)
		}
		if len(reads) > rep.PeakSlotReads {
			rep.PeakSlotReads = len(reads)
		}
		for _, b := range busy {
			frac := b / s.SlotSeconds
			busySum += frac
			busySamples++
			if frac > rep.MaxBusyFraction {
				rep.MaxBusyFraction = frac
			}
		}
	}
	if busySamples > 0 {
		rep.MeanBusyFraction = busySum / float64(busySamples)
	}
	return rep, nil
}

// DisksNeeded reports the smallest striped array on which every slot's
// reads finish within the slot, searching up to maxDisks.
func DisksNeeded(d Disk, s Schedule, maxDisks int) (int, error) {
	if maxDisks <= 0 {
		return 0, fmt.Errorf("storage: max disks %d must be positive", maxDisks)
	}
	// Feasibility is NOT monotone in the array size — striping is modular,
	// so a pathological segment mix can load one drive of a larger array
	// harder — hence the linear scan.
	for k := 1; k <= maxDisks; k++ {
		rep, err := Evaluate(d, s, k)
		if err != nil {
			return 0, err
		}
		if rep.MaxBusyFraction <= 1.0 {
			return k, nil
		}
	}
	return 0, fmt.Errorf("storage: schedule infeasible even on %d disks", maxDisks)
}

// MinDiskBound is the information-theoretic floor: total read time across
// the whole schedule divided by the wall-clock time, rounded up.
func MinDiskBound(d Disk, s Schedule) (int, error) {
	if err := d.validate(); err != nil {
		return 0, err
	}
	if err := s.validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for _, reads := range s.Slots {
		for _, r := range reads {
			total += d.ReadSeconds(r.Bytes)
		}
	}
	wall := float64(len(s.Slots)) * s.SlotSeconds
	return int(math.Ceil(total / wall)), nil
}
