// Package wire defines the binary protocol between the networked DHB video
// server (internal/vodserver) and its set-top-box client
// (internal/vodclient).
//
// Every message is a frame:
//
//	1 byte  type
//	4 bytes big-endian body length
//	body
//
// The control flow is minimal, mirroring the paper's protocol: the client
// sends one Request for a video; the server answers with ScheduleInfo
// (segment count, slot length, the slot the request was admitted in, and the
// maximum-period vector so the client knows every deadline); from then on
// the server pushes Segment frames carrying the actual video bytes and a
// SlotEnd frame at every slot boundary until the client's last deadline has
// passed.
//
// # Protocol versions
//
// The original protocol carried no version field; those frames are "v1" and
// remain valid byte-for-byte. Version 2 adds the client QoE loop: a Request
// may announce Version 2 (plus feature flags), the server's ScheduleInfo
// then echoes the negotiated version together with the TraceID/SpanID of the
// server-side admission trace, and the session ends with the client pushing
// one ClientReport frame summarizing what it observed — startup delay,
// per-segment slack to the AdmitSlot+T[j] deadline, misses, rebuffers. A
// server that only speaks v1 ignores the unknown fields' absence (a v2
// client downgrades when the ScheduleInfo comes back versionless), and a v1
// client's 8-byte Request decodes exactly as before, so both directions
// negotiate down for free. Version discrimination is structural: every v2
// body length is distinguishable from every legal v1 body length (see the
// layout comments on each frame).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MsgType identifies a frame.
type MsgType uint8

// Message types.
const (
	TypeRequest MsgType = iota + 1
	TypeScheduleInfo
	TypeSegment
	TypeSlotEnd
	TypeError
	TypeClientReport
)

// Protocol versions. Zero means "versionless", the original v1 wire format;
// ProtoV2 adds trace propagation and the end-of-session ClientReport.
const (
	ProtoV1 uint16 = 1
	ProtoV2 uint16 = 2
	// MaxProto is the highest version this package speaks; peers announcing
	// more negotiate down to it.
	MaxProto = ProtoV2
)

// Request feature flags (v2 and later).
const (
	// FlagNoReport tells the server the client will not send a ClientReport
	// at session end, so it must not wait for one.
	FlagNoReport uint16 = 1 << iota
	// FlagNoTrace opts the session out of trace propagation: the server
	// leaves the ScheduleInfo trace fields zero and attaches no client
	// spans.
	FlagNoTrace
)

// MaxBody bounds a frame body; anything larger is rejected as corrupt
// before allocation.
const MaxBody = 16 << 20

// Request asks the server to admit one customer for a video. A FromSegment
// above 1 resumes interactive playback at that segment; 0 and 1 both mean a
// full viewing.
//
// Body layout: v1 is exactly 8 bytes (VideoID, FromSegment). A Version of 2
// or more appends Version, Flags, TraceID and SpanID for a fixed 28 bytes,
// so the two layouts never collide.
type Request struct {
	VideoID     uint32
	FromSegment uint32
	// Version is the highest protocol version the client speaks; 0 means a
	// versionless (v1) request with none of the fields below on the wire.
	Version uint16
	// Flags carries v2 feature bits (FlagNoReport, FlagNoTrace).
	Flags uint16
	// TraceID and SpanID optionally continue a caller-side trace; zero asks
	// the server to start a fresh trace.
	TraceID uint64
	SpanID  uint64
}

// ScheduleInfo tells the admitted customer everything it needs to verify
// timely delivery.
//
// Body layout: a 24-byte fixed head, then (v2 only) an 18-byte trace block
// (Version, TraceID, SpanID), then the period vector and the optional
// per-segment size vector. A v1 tail is always a multiple of 4 bytes while
// the v2 trace block shifts the tail to 2 mod 4, so the decoder
// discriminates the versions structurally without a type byte.
type ScheduleInfo struct {
	VideoID      uint32
	Segments     uint32
	SlotMillis   uint32
	SegmentBytes uint32
	// AdmitSlot is the slot during which the request was admitted; segment
	// j arrives by slot AdmitSlot + Periods[j-1].
	AdmitSlot uint64
	// Version is the protocol version the server negotiated for the
	// session; 0 means a versionless (v1) schedule with no trace fields on
	// the wire and no ClientReport expected.
	Version uint16
	// TraceID and SpanID identify the server-side admission trace the
	// client's QoE events will be joined to; zero when the admission was
	// not sampled (or tracing was declined).
	TraceID uint64
	SpanID  uint64
	// Periods is the maximum-period vector, 0-indexed by segment-1.
	Periods []uint32
	// SegmentSizes optionally carries per-segment payload sizes for
	// variable-bit-rate videos (Section 4); empty means every segment is
	// SegmentBytes long. When present its length must equal Segments.
	SegmentSizes []uint32
}

// SizeOf reports the payload size of 1-based segment j under the schedule.
func (s ScheduleInfo) SizeOf(j uint32) uint32 {
	if len(s.SegmentSizes) == 0 {
		return s.SegmentBytes
	}
	return s.SegmentSizes[j-1]
}

// Segment carries the payload of one broadcast segment instance.
type Segment struct {
	VideoID uint32
	Segment uint32
	Slot    uint64
	Payload []byte
}

// SlotEnd marks a slot boundary on the data stream.
type SlotEnd struct {
	Slot uint64
}

// ErrorMsg reports a server-side rejection.
type ErrorMsg struct {
	Text string
}

// ClientReport is the customer's end-of-session QoE summary (v2 and later):
// the client-side half of the paper's delivery contract. The server folds it
// into the client_* metric families and, when TraceID is set, joins the
// session to the admission trace in /spanz. The body is a fixed 86 bytes.
type ClientReport struct {
	// Version is the protocol version the client spoke (>= ProtoV2).
	Version uint16
	VideoID uint32
	// TraceID and SpanID echo the ScheduleInfo trace fields so the server
	// can parent the client's session onto the admission span; zero when
	// the admission was unsampled or tracing was declined.
	TraceID uint64
	SpanID  uint64
	// AdmitSlot echoes the granted schedule; FromSegment the resume point.
	AdmitSlot   uint64
	FromSegment uint32
	// SegmentsNeeded counts the segments the customer had to download
	// (n - from + 1); SegmentsReceived how many actually arrived before the
	// stream ended; SharedFrames the broadcast frames for segments already
	// held.
	SegmentsNeeded   uint32
	SegmentsReceived uint32
	SharedFrames     uint32
	// StartupSlots is the delay, in slots after AdmitSlot, before the first
	// needed segment arrived (the client-side startup latency).
	StartupSlots uint32
	// DeadlineMisses counts needed segments that were not fully received by
	// slot AdmitSlot + T[j]; Rebuffers counts the stall events those misses
	// caused (consecutive misses share one stall).
	DeadlineMisses uint32
	Rebuffers      uint32
	// MaxBuffered is the peak number of segments held before consumption;
	// SessionSlots the session length in slots.
	MaxBuffered  uint32
	SessionSlots uint32
	// MinSlackSlots is the tightest observed slack, deadline minus arrival
	// slot, over the needed segments that arrived (negative = a miss);
	// SumSlackSlots the total, so mean slack = sum / received.
	MinSlackSlots int32
	SumSlackSlots int64
	// PayloadBytes counts verified payload bytes the client consumed; the
	// server compares it against the paper's per-customer bandwidth bound.
	PayloadBytes uint64
}

// clientReportLen is the fixed ClientReport body length.
const clientReportLen = 2 + 4 + 8 + 8 + 8 + 9*4 + 4 + 8 + 8

// WriteFrame serializes one message to w.
func WriteFrame(w io.Writer, msg any) error {
	var (
		t    MsgType
		body []byte
	)
	switch m := msg.(type) {
	case Request:
		t = TypeRequest
		body = binary.BigEndian.AppendUint32(nil, m.VideoID)
		body = binary.BigEndian.AppendUint32(body, m.FromSegment)
		if m.Version == 0 {
			// Versionless v1 layout: the trace fields cannot travel.
			if m.Flags != 0 || m.TraceID != 0 || m.SpanID != 0 {
				return fmt.Errorf("wire: request carries v2 fields without a version")
			}
			break
		}
		if m.Version == ProtoV1 {
			return fmt.Errorf("wire: request version %d has no versioned layout", m.Version)
		}
		body = binary.BigEndian.AppendUint16(body, m.Version)
		body = binary.BigEndian.AppendUint16(body, m.Flags)
		body = binary.BigEndian.AppendUint64(body, m.TraceID)
		body = binary.BigEndian.AppendUint64(body, m.SpanID)
	case ScheduleInfo:
		t = TypeScheduleInfo
		body = make([]byte, 0, 24+18+4*len(m.Periods))
		body = binary.BigEndian.AppendUint32(body, m.VideoID)
		body = binary.BigEndian.AppendUint32(body, m.Segments)
		body = binary.BigEndian.AppendUint32(body, m.SlotMillis)
		body = binary.BigEndian.AppendUint32(body, m.SegmentBytes)
		body = binary.BigEndian.AppendUint64(body, m.AdmitSlot)
		switch {
		case m.Version == 0:
			if m.TraceID != 0 || m.SpanID != 0 {
				return fmt.Errorf("wire: schedule info carries trace fields without a version")
			}
		case m.Version == ProtoV1:
			return fmt.Errorf("wire: schedule info version %d has no versioned layout", m.Version)
		default:
			body = binary.BigEndian.AppendUint16(body, m.Version)
			body = binary.BigEndian.AppendUint64(body, m.TraceID)
			body = binary.BigEndian.AppendUint64(body, m.SpanID)
		}
		if uint32(len(m.Periods)) != m.Segments {
			return fmt.Errorf("wire: schedule info has %d periods for %d segments", len(m.Periods), m.Segments)
		}
		if len(m.SegmentSizes) != 0 && uint32(len(m.SegmentSizes)) != m.Segments {
			return fmt.Errorf("wire: schedule info has %d sizes for %d segments", len(m.SegmentSizes), m.Segments)
		}
		for _, p := range m.Periods {
			body = binary.BigEndian.AppendUint32(body, p)
		}
		for _, sz := range m.SegmentSizes {
			body = binary.BigEndian.AppendUint32(body, sz)
		}
	case Segment:
		t = TypeSegment
		body = make([]byte, 0, 16+len(m.Payload))
		body = binary.BigEndian.AppendUint32(body, m.VideoID)
		body = binary.BigEndian.AppendUint32(body, m.Segment)
		body = binary.BigEndian.AppendUint64(body, m.Slot)
		body = append(body, m.Payload...)
	case SlotEnd:
		t = TypeSlotEnd
		body = binary.BigEndian.AppendUint64(nil, m.Slot)
	case ErrorMsg:
		t = TypeError
		body = []byte(m.Text)
	case ClientReport:
		t = TypeClientReport
		if m.Version < ProtoV2 {
			return fmt.Errorf("wire: client report requires version >= %d, have %d", ProtoV2, m.Version)
		}
		body = make([]byte, 0, clientReportLen)
		body = binary.BigEndian.AppendUint16(body, m.Version)
		body = binary.BigEndian.AppendUint32(body, m.VideoID)
		body = binary.BigEndian.AppendUint64(body, m.TraceID)
		body = binary.BigEndian.AppendUint64(body, m.SpanID)
		body = binary.BigEndian.AppendUint64(body, m.AdmitSlot)
		body = binary.BigEndian.AppendUint32(body, m.FromSegment)
		body = binary.BigEndian.AppendUint32(body, m.SegmentsNeeded)
		body = binary.BigEndian.AppendUint32(body, m.SegmentsReceived)
		body = binary.BigEndian.AppendUint32(body, m.SharedFrames)
		body = binary.BigEndian.AppendUint32(body, m.StartupSlots)
		body = binary.BigEndian.AppendUint32(body, m.DeadlineMisses)
		body = binary.BigEndian.AppendUint32(body, m.Rebuffers)
		body = binary.BigEndian.AppendUint32(body, m.MaxBuffered)
		body = binary.BigEndian.AppendUint32(body, m.SessionSlots)
		body = binary.BigEndian.AppendUint32(body, uint32(m.MinSlackSlots))
		body = binary.BigEndian.AppendUint64(body, uint64(m.SumSlackSlots))
		body = binary.BigEndian.AppendUint64(body, m.PayloadBytes)
	default:
		return fmt.Errorf("wire: unknown message type %T", msg)
	}
	if len(body) > MaxBody {
		return fmt.Errorf("wire: body of %d bytes exceeds limit", len(body))
	}
	header := make([]byte, 5)
	header[0] = byte(t)
	binary.BigEndian.PutUint32(header[1:], uint32(len(body)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadFrame reads and decodes the next message from r.
func ReadFrame(r io.Reader) (any, error) {
	header := make([]byte, 5)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	t := MsgType(header[0])
	n := binary.BigEndian.Uint32(header[1:])
	if n > MaxBody {
		return nil, fmt.Errorf("wire: frame body of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	switch t {
	case TypeRequest:
		switch len(body) {
		case 8: // versionless v1
			return Request{
				VideoID:     binary.BigEndian.Uint32(body),
				FromSegment: binary.BigEndian.Uint32(body[4:]),
			}, nil
		case 28: // v2: version, flags, trace ids appended
			req := Request{
				VideoID:     binary.BigEndian.Uint32(body),
				FromSegment: binary.BigEndian.Uint32(body[4:]),
				Version:     binary.BigEndian.Uint16(body[8:]),
				Flags:       binary.BigEndian.Uint16(body[10:]),
				TraceID:     binary.BigEndian.Uint64(body[12:]),
				SpanID:      binary.BigEndian.Uint64(body[20:]),
			}
			if req.Version < ProtoV2 {
				return nil, fmt.Errorf("wire: versioned request announces version %d", req.Version)
			}
			return req, nil
		default:
			return nil, fmt.Errorf("wire: request body has %d bytes, want 8 or 28", len(body))
		}
	case TypeScheduleInfo:
		if len(body) < 24 {
			return nil, fmt.Errorf("wire: schedule info body has %d bytes, want >= 24", len(body))
		}
		info := ScheduleInfo{
			VideoID:      binary.BigEndian.Uint32(body[0:]),
			Segments:     binary.BigEndian.Uint32(body[4:]),
			SlotMillis:   binary.BigEndian.Uint32(body[8:]),
			SegmentBytes: binary.BigEndian.Uint32(body[12:]),
			AdmitSlot:    binary.BigEndian.Uint64(body[16:]),
		}
		rest := body[24:]
		// A v1 tail (periods, optionally sizes) is a multiple of 4 bytes;
		// the 18-byte v2 trace block shifts it to 2 mod 4, so the version is
		// decidable from the length alone.
		if len(rest)%4 == 2 {
			if len(rest) < 18 {
				return nil, fmt.Errorf("wire: schedule info carries a truncated trace block of %d bytes", len(rest))
			}
			info.Version = binary.BigEndian.Uint16(rest[0:])
			info.TraceID = binary.BigEndian.Uint64(rest[2:])
			info.SpanID = binary.BigEndian.Uint64(rest[10:])
			if info.Version < ProtoV2 {
				return nil, fmt.Errorf("wire: versioned schedule info announces version %d", info.Version)
			}
			rest = rest[18:]
		}
		// Compare in 64 bits: a forged segment count must not wrap the
		// expected byte length around uint32. The tail carries either the
		// period vector alone or periods followed by per-segment sizes.
		nSeg := uint64(info.Segments)
		switch uint64(len(rest)) {
		case 4 * nSeg:
		case 8 * nSeg:
			if nSeg == 0 {
				break
			}
			info.SegmentSizes = make([]uint32, info.Segments)
			sizes := rest[4*nSeg:]
			for i := range info.SegmentSizes {
				info.SegmentSizes[i] = binary.BigEndian.Uint32(sizes[4*i:])
			}
		default:
			return nil, fmt.Errorf("wire: schedule info carries %d tail bytes for %d segments", len(rest), info.Segments)
		}
		if info.Segments > 0 {
			info.Periods = make([]uint32, info.Segments)
			for i := range info.Periods {
				info.Periods[i] = binary.BigEndian.Uint32(rest[4*i:])
			}
		}
		return info, nil
	case TypeSegment:
		if len(body) < 16 {
			return nil, fmt.Errorf("wire: segment body has %d bytes, want >= 16", len(body))
		}
		payload := make([]byte, len(body)-16)
		copy(payload, body[16:])
		return Segment{
			VideoID: binary.BigEndian.Uint32(body[0:]),
			Segment: binary.BigEndian.Uint32(body[4:]),
			Slot:    binary.BigEndian.Uint64(body[8:]),
			Payload: payload,
		}, nil
	case TypeSlotEnd:
		if len(body) != 8 {
			return nil, fmt.Errorf("wire: slot end body has %d bytes, want 8", len(body))
		}
		return SlotEnd{Slot: binary.BigEndian.Uint64(body)}, nil
	case TypeError:
		return ErrorMsg{Text: string(body)}, nil
	case TypeClientReport:
		if len(body) != clientReportLen {
			return nil, fmt.Errorf("wire: client report body has %d bytes, want %d", len(body), clientReportLen)
		}
		rep := ClientReport{
			Version:          binary.BigEndian.Uint16(body[0:]),
			VideoID:          binary.BigEndian.Uint32(body[2:]),
			TraceID:          binary.BigEndian.Uint64(body[6:]),
			SpanID:           binary.BigEndian.Uint64(body[14:]),
			AdmitSlot:        binary.BigEndian.Uint64(body[22:]),
			FromSegment:      binary.BigEndian.Uint32(body[30:]),
			SegmentsNeeded:   binary.BigEndian.Uint32(body[34:]),
			SegmentsReceived: binary.BigEndian.Uint32(body[38:]),
			SharedFrames:     binary.BigEndian.Uint32(body[42:]),
			StartupSlots:     binary.BigEndian.Uint32(body[46:]),
			DeadlineMisses:   binary.BigEndian.Uint32(body[50:]),
			Rebuffers:        binary.BigEndian.Uint32(body[54:]),
			MaxBuffered:      binary.BigEndian.Uint32(body[58:]),
			SessionSlots:     binary.BigEndian.Uint32(body[62:]),
			MinSlackSlots:    int32(binary.BigEndian.Uint32(body[66:])),
			SumSlackSlots:    int64(binary.BigEndian.Uint64(body[70:])),
			PayloadBytes:     binary.BigEndian.Uint64(body[78:]),
		}
		if rep.Version < ProtoV2 {
			return nil, fmt.Errorf("wire: client report announces version %d", rep.Version)
		}
		return rep, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", t)
	}
}

// SegmentPayload deterministically generates the bytes of one video segment
// so that the server never stores real video data and the client can verify
// every byte it receives. The generator is a seeded xorshift over the
// (video, segment) pair.
func SegmentPayload(videoID, segment, size uint32) []byte {
	return AppendSegmentPayload(make([]byte, 0, size), videoID, segment, size)
}
