package experiments

import "testing"

func quickCapacityConfig() CapacityConfig {
	cfg := DefaultCapacityConfig()
	cfg.HorizonSlots = 2500
	cfg.WarmupSlots = 100
	return cfg
}

func TestCapacityValidation(t *testing.T) {
	cfg := quickCapacityConfig()
	if _, err := Capacity(cfg, nil); err == nil {
		t.Error("empty pools accepted")
	}
	if _, err := Capacity(cfg, []float64{0}); err == nil {
		t.Error("zero pool accepted")
	}
	bad := cfg
	bad.Videos = 0
	if _, err := Capacity(bad, []float64{10}); err == nil {
		t.Error("zero videos accepted")
	}
	bad = cfg
	bad.RatePerHour = 0
	if _, err := Capacity(bad, []float64{10}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestCapacityCurveShape(t *testing.T) {
	rows, err := Capacity(quickCapacityConfig(), []float64{30, 14, 12, 11})
	if err != nil {
		t.Fatal(err)
	}
	// Generous pool: nobody deferred, waits within a slot.
	first := rows[0]
	if first.DeferredShare != 0 {
		t.Fatalf("pool 30 deferred %.3f of requests", first.DeferredShare)
	}
	// Shrinking the pool must monotonically raise average waits and the
	// deferred share.
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgWaitSeconds < rows[i-1].AvgWaitSeconds-1 {
			t.Errorf("avg wait fell from %.1f to %.1f when the pool shrank to %v",
				rows[i-1].AvgWaitSeconds, rows[i].AvgWaitSeconds, rows[i].Capacity)
		}
		if rows[i].DeferredShare < rows[i-1].DeferredShare-0.01 {
			t.Errorf("deferred share fell when the pool shrank to %v", rows[i].Capacity)
		}
	}
	// The tightest pool visibly defers and throttles bandwidth near the
	// pool size.
	last := rows[len(rows)-1]
	if last.DeferredShare <= 0 {
		t.Fatal("tightest pool never deferred")
	}
	if last.AvgBandwidth > last.Capacity+2 {
		t.Fatalf("throttled bandwidth %.1f far above the pool %v", last.AvgBandwidth, last.Capacity)
	}
}

func TestStorageValidation(t *testing.T) {
	cfg := DefaultStorageConfig()
	cfg.Segments = 0
	if _, err := Storage(cfg); err == nil {
		t.Error("zero segments accepted")
	}
	cfg = DefaultStorageConfig()
	cfg.MaxDisks = 0
	if _, err := Storage(cfg); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestStorageShape(t *testing.T) {
	cfg := DefaultStorageConfig()
	cfg.HorizonSlots = 3000
	rows, err := Storage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]StorageRow, len(rows))
	for _, r := range rows {
		byName[r.Policy] = r
		if r.DisksNeeded < r.MinDiskBound {
			t.Errorf("%s: %d disks below the information floor %d", r.Policy, r.DisksNeeded, r.MinDiskBound)
		}
		if r.MaxBusy > 1.0 {
			t.Errorf("%s: chosen array over capacity (%.2f)", r.Policy, r.MaxBusy)
		}
	}
	heuristic := byName["DHB heuristic"]
	naive := byName["naive latest-slot"]
	if heuristic.DisksNeeded > naive.DisksNeeded {
		t.Fatalf("heuristic needs %d disks, naive %d", heuristic.DisksNeeded, naive.DisksNeeded)
	}
	if naive.PeakLoad <= heuristic.PeakLoad {
		t.Fatalf("naive peak %d not above heuristic peak %d", naive.PeakLoad, heuristic.PeakLoad)
	}
}
