package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(3.5)
	}
	mean := sum / n
	if math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("exponential mean = %.4f, want 3.5 +/- 0.05", mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{name: "tiny", mean: 0.05},
		{name: "small", mean: 2},
		{name: "medium", mean: 12},
		{name: "large", mean: 250},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := NewRNG(99)
			const n = 50000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				v := float64(g.Poisson(tt.mean))
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			// Poisson mean and variance both equal the rate.
			tol := 5 * math.Sqrt(tt.mean/n) * math.Max(1, math.Sqrt(tt.mean))
			if math.Abs(mean-tt.mean) > math.Max(tol, 0.02) {
				t.Errorf("mean = %.4f, want %.4f", mean, tt.mean)
			}
			if math.Abs(variance-tt.mean) > math.Max(0.15*tt.mean, 0.05) {
				t.Errorf("variance = %.4f, want %.4f", variance, tt.mean)
			}
		})
	}
}

func TestPoissonZeroMean(t *testing.T) {
	g := NewRNG(1)
	if got := g.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := g.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	g := NewRNG(5)
	f := func(mean float64) bool {
		m := math.Mod(math.Abs(mean), 100)
		return g.Poisson(m) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var order []int
	l.At(5, func(float64) { order = append(order, 3) })
	l.At(1, func(float64) { order = append(order, 1) })
	l.At(3, func(float64) { order = append(order, 2) })
	fired := l.Run(10)
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if l.Now() != 10 {
		t.Fatalf("clock = %v, want 10", l.Now())
	}
}

func TestLoopFIFOTieBreak(t *testing.T) {
	l := NewLoop()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(2, func(float64) { order = append(order, i) })
	}
	l.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestLoopHorizonStopsEvents(t *testing.T) {
	l := NewLoop()
	fired := false
	l.At(100, func(float64) { fired = true })
	l.Run(50)
	if fired {
		t.Fatal("event after horizon fired")
	}
	if l.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", l.Pending())
	}
	l.Run(150)
	if !fired {
		t.Fatal("event did not fire after extending horizon")
	}
}

func TestLoopEventsScheduleEvents(t *testing.T) {
	l := NewLoop()
	count := 0
	var tick Event
	tick = func(now float64) {
		count++
		if count < 5 {
			l.After(1, tick)
		}
	}
	l.At(0, tick)
	l.Run(100)
	if count != 5 {
		t.Fatalf("chained events fired %d times, want 5", count)
	}
	if l.Now() != 100 {
		t.Fatalf("clock = %v, want 100", l.Now())
	}
}

func TestLoopPastSchedulingPanics(t *testing.T) {
	l := NewLoop()
	l.At(10, func(float64) {})
	l.Run(20)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	l.At(5, func(float64) {})
}

func TestPoissonProcessInterarrivals(t *testing.T) {
	g := NewRNG(11)
	p := NewPoissonProcess(g, 0.5) // one arrival every 2 s on average
	const n = 100000
	prev := 0.0
	sum := 0.0
	for i := 0; i < n; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v then %v", i, prev, next)
		}
		sum += next - prev
		prev = next
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("mean interarrival = %.4f, want 2.0 +/- 0.05", mean)
	}
}

func TestPoissonProcessCountIn(t *testing.T) {
	g := NewRNG(12)
	p := NewPoissonProcess(g, 2.0)
	const n = 20000
	total := 0
	for i := 0; i < n; i++ {
		total += p.CountIn(3) // mean 6 per interval
	}
	mean := float64(total) / n
	if math.Abs(mean-6.0) > 0.15 {
		t.Fatalf("mean count = %.4f, want 6.0 +/- 0.15", mean)
	}
}

func TestPoissonProcessRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 did not panic")
		}
	}()
	NewPoissonProcess(NewRNG(1), 0)
}

func TestRNGConvenienceMethods(t *testing.T) {
	g := NewRNG(2)
	if v := g.Intn(10); v < 0 || v >= 10 {
		t.Fatalf("Intn out of range: %d", v)
	}
	if v := g.ExpFloat64(); v < 0 {
		t.Fatalf("ExpFloat64 negative: %v", v)
	}
	sum := 0.0
	for i := 0; i < 10000; i++ {
		sum += g.NormFloat64()
	}
	if math.Abs(sum/10000) > 0.05 {
		t.Fatalf("NormFloat64 mean = %v, want about 0", sum/10000)
	}
}

func TestPoissonProcessRate(t *testing.T) {
	p := NewPoissonProcess(NewRNG(1), 0.25)
	if p.Rate() != 0.25 {
		t.Fatalf("Rate = %v, want 0.25", p.Rate())
	}
}
