package vodclient

import (
	"strconv"

	"vodcast/internal/obs"
	"vodcast/internal/wire"
)

// This file is the client half of the QoE observability loop. The STB oracle
// (internal/client) JUDGES a session — any missed deadline is an error and
// the fetch dies. Production set-top boxes cannot afford that: a miss is a
// rebuffer the customer suffers through, and the interesting question is how
// often and how close to the bound delivery runs. qoeTracker therefore
// mirrors the oracle's deadline arithmetic (segment j is due by slot
// AdmitSlot + Periods[j-from+1] for a session resumed at segment from)
// but measures instead of erroring: startup delay, per-segment slack to
// deadline, miss and rebuffer counts, and buffer occupancy. The summary
// becomes the wire.ClientReport shipped back to the server at session end
// and, optionally, local obs.Registry families with the same client_* names
// the server aggregates under.

// slackBuckets spans the slack-to-deadline distribution in slots: negative
// slack is a late segment, zero is just-in-time, large positive is headroom.
var slackBuckets = []float64{-16, -8, -4, -2, -1, 0, 1, 2, 4, 8, 16, 32, 64, 128}

// startupBuckets spans the startup delay distribution in slots.
var startupBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// qoeTracker accumulates one session's playback telemetry. It is fed the
// same per-slot transmission lists the STB oracle sees.
type qoeTracker struct {
	admit, from, n int
	periods        []int // 1-based; deadline(j) = admit + periods[j-from+1]
	received       []bool
	receivedCount  int
	slacks         []int // slack of each needed segment, in arrival order
	minSlack       int
	sumSlack       int64
	startup        int // -1 until the resume segment arrives
	misses         int
	rebuffers      int
	lastMissSlot   int
	buffered       int
	maxBuffered    int
	sessionSlots   int
}

// newQoETracker mirrors client.NewFrom: admit is the admission slot, periods
// the 1-based maximum-period vector, from the resume segment. The caller has
// already validated all three by arming the oracle.
func newQoETracker(admit int, periods []int, from int) *qoeTracker {
	n := len(periods) - 1
	received := make([]bool, n+1)
	for j := 1; j < from; j++ {
		received[j] = true // already watched before the pause
	}
	return &qoeTracker{
		admit: admit, from: from, n: n, periods: periods,
		received: received,
		startup:  -1, lastMissSlot: -2, minSlack: int(^uint(0) >> 1),
	}
}

// deadline reports the last slot segment j may arrive in (j >= from).
func (q *qoeTracker) deadline(j int) int { return q.admit + q.periods[j-q.from+1] }

// seen reports whether segment j is already held (watched before the resume
// point, or received earlier in the session).
func (q *qoeTracker) seen(j int) bool { return j >= 1 && j <= q.n && q.received[j] }

// observeSlot ingests the transmissions of one slot, then settles the
// deadlines that expire with it — the same two-phase order as the oracle, so
// a segment arriving in its deadline slot counts as on time.
func (q *qoeTracker) observeSlot(slot int, segments []int) {
	for _, j := range segments {
		if j < 1 || j > q.n || q.received[j] || slot <= q.admit {
			continue
		}
		q.received[j] = true
		q.receivedCount++
		slack := q.deadline(j) - slot
		q.slacks = append(q.slacks, slack)
		q.sumSlack += int64(slack)
		if slack < q.minSlack {
			q.minSlack = slack
		}
		if q.startup < 0 && j == q.from {
			q.startup = slot - q.admit
		}
		if slack >= 0 {
			// On-time segments sit in the buffer until consumption; a late
			// segment is consumed immediately on arrival.
			q.buffered++
			if q.buffered > q.maxBuffered {
				q.maxBuffered = q.buffered
			}
		}
	}
	missed := false
	for j := q.from; j <= q.n; j++ {
		if q.deadline(j) != slot {
			continue
		}
		if q.received[j] {
			q.buffered-- // consumed during the next slot; leaves the buffer now
		} else {
			q.misses++
			missed = true
		}
	}
	if missed {
		// Consecutive miss slots are one continuous stall, not N rebuffers.
		if slot != q.lastMissSlot+1 {
			q.rebuffers++
		}
		q.lastMissSlot = slot
	}
}

// finalize closes the session at endSlot. A session whose resume segment
// never arrived has its startup pinned to the whole session length.
func (q *qoeTracker) finalize(endSlot int) {
	q.sessionSlots = endSlot - q.admit
	if q.sessionSlots < 0 {
		q.sessionSlots = 0
	}
	if q.startup < 0 {
		q.startup = q.sessionSlots
	}
	if len(q.slacks) == 0 {
		q.minSlack = 0
	}
}

// needed reports how many segments the session had to deliver.
func (q *qoeTracker) needed() int { return q.n - q.from + 1 }

// meanSlack reports the mean slack-to-deadline over arrived segments.
func (q *qoeTracker) meanSlack() float64 {
	if len(q.slacks) == 0 {
		return 0
	}
	return float64(q.sumSlack) / float64(len(q.slacks))
}

// report assembles the wire summary. Call after finalize.
func (q *qoeTracker) report(videoID uint32, traceID, spanID uint64, shared int, payloadBytes int64) wire.ClientReport {
	return wire.ClientReport{
		Version:          wire.ProtoV2,
		VideoID:          videoID,
		TraceID:          traceID,
		SpanID:           spanID,
		AdmitSlot:        uint64(q.admit),
		FromSegment:      uint32(q.from),
		SegmentsNeeded:   uint32(q.needed()),
		SegmentsReceived: uint32(q.receivedCount),
		SharedFrames:     uint32(shared),
		StartupSlots:     uint32(q.startup),
		DeadlineMisses:   uint32(q.misses),
		Rebuffers:        uint32(q.rebuffers),
		MaxBuffered:      uint32(q.maxBuffered),
		SessionSlots:     uint32(q.sessionSlots),
		MinSlackSlots:    int32(q.minSlack),
		SumSlackSlots:    q.sumSlack,
		PayloadBytes:     uint64(payloadBytes),
	}
}

// publish folds the session into a local registry under the same client_*
// family names the server aggregates, so a headless client is scrapable on
// its own. Call after finalize; a nil registry drops everything.
func (q *qoeTracker) publish(reg *obs.Registry, videoID uint32, payloadBytes int64) {
	if reg == nil {
		return
	}
	video := strconv.FormatUint(uint64(videoID), 10)
	reg.Counter("client_sessions_total", "Completed fetch sessions.").Inc()
	reg.Counter("client_payload_bytes_total", "Verified video payload bytes received.").
		Add(float64(payloadBytes))
	reg.Histogram("client_startup_slots",
		"Slots from admission to the first needed segment.", startupBuckets).
		Observe(float64(q.startup))
	slack := reg.Histogram("client_deadline_slack_slots",
		"Per-segment slack to the delivery deadline, in slots.", slackBuckets)
	for _, s := range q.slacks {
		slack.Observe(float64(s))
	}
	reg.CounterWith("client_miss_total", "Segments that missed their delivery deadline.",
		obs.Labels{"video": video}).Add(float64(q.misses))
	reg.CounterWith("client_rebuffer_total", "Playback stalls caused by deadline misses.",
		obs.Labels{"video": video}).Add(float64(q.rebuffers))
}
