// VBR: the Section 4 pipeline for compressed video — analyze a
// variable-bit-rate trace, derive the four DHB distribution plans
// (peak-rate, deterministic wait, work-ahead smoothing, relaxed
// frequencies), and compare what each costs at one request rate.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vodcast"
)

func main() {
	// The synthetic stand-in for the paper's DVD trace: 8170 s,
	// 636 KB/s mean, 951 KB/s one-second peak.
	tr, err := vodcast.SyntheticMatrix(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d s, mean %.0f B/s, peak %.0f B/s\n\n", tr.Seconds(), tr.Mean(), tr.Peak())

	plans, err := vodcast.PlanVBR(tr, 60 /* max wait seconds */)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "plan\tstream rate B/s\tsegments\tsaturated MB/s\tclient buffer MB\t")
	for _, v := range []vodcast.VBRVariant{vodcast.VariantA, vodcast.VariantB, vodcast.VariantC, vodcast.VariantD} {
		p := plans[v]
		fmt.Fprintf(w, "%v\t%.0f\t%d\t%.2f\t%.1f\t\n",
			v, p.Rate, p.Segments, p.SaturatedBandwidth()/1e6, p.WorkAheadBuffer/1e6)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Measure DHB-d (the cheapest plan) under live demand.
	plan := plans[vodcast.VariantD]
	sched, err := vodcast.NewDHB(plan.SchedulerConfig())
	if err != nil {
		log.Fatal(err)
	}
	horizonSlots := int(100 * 3600 / plan.SlotDuration)
	m, err := vodcast.Measure(vodcast.AdaptDHB(sched), 100, plan.SlotDuration, horizonSlots, 200, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDHB-d at 100 requests/hour: %.2f MB/s average (%.2f MB/s peak)\n",
		m.AvgBandwidth*plan.Rate/1e6, m.MaxBandwidth*plan.Rate/1e6)
}
