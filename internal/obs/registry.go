// Package obs is the observability layer of the repository: a
// dependency-free metrics registry with Prometheus text exposition and a
// qlog-style structured event tracer for scheduler decisions.
//
// The paper's whole evaluation is phrased in observed quantities — per-slot
// bandwidth, peaks, waiting time — so every production-facing component
// (vodserver, the simulators) publishes those quantities through this
// package: counters and gauges for instantaneous state, time-weighted
// histograms for distributions, and a JSONL event stream that captures every
// heuristic decision of Figure 6 for offline replay and diffing.
//
// The package deliberately imports nothing beyond the standard library so
// that core scheduling code can feed it without dependency cycles, and every
// hook is nil-safe so disabled observability costs one predictable branch.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Labels is one metric child's label set. Keys and values are exposed in
// sorted key order so exposition is deterministic.
type Labels map[string]string

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use. Metric registration panics on invalid or conflicting names: those are
// programming errors, caught by the first test that touches the registry.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children []*child // creation order
	byKey    map[string]*child
}

type child struct {
	labels    string // pre-rendered {k="v",...} or ""
	mu        sync.Mutex
	value     float64   // counter/gauge
	fn        func() float64
	counts    []float64 // histogram: per-bucket (non-cumulative) weights
	inf       float64   // histogram: weight above the last bucket
	sum       float64
	count     float64
}

// ValidMetricName reports whether s is a legal Prometheus metric name. The
// registry enforces this at registration time (invalid names panic); the
// exported predicate lets lint checks and tests validate name inventories
// without re-implementing the charset.
func ValidMetricName(s string) bool { return validName(s, false) }

// ValidLabelName reports whether s is a legal Prometheus label name.
func ValidLabelName(s string) bool { return validName(s, true) }

// validName matches the Prometheus metric and label name charset.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(!label && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabelValue applies the exposition escaping rules for label values.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the exposition escaping rules for HELP text.
func escapeHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels serializes a label set as {k="v",...} in sorted key order,
// or "" for an empty set. Invalid label names panic.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		if !validName(k, true) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(ls[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the family with the given name, creating it on first use
// and panicking when a previous registration disagrees on kind.
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, buckets: buckets, byKey: make(map[string]*child)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// childFor returns the child with the given label set, creating it on first
// use.
func (f *family) childFor(ls Labels) *child {
	key := renderLabels(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := &child{labels: key}
	if f.kind == kindHistogram {
		c.counts = make([]float64, len(f.buckets))
	}
	f.children = append(f.children, c)
	f.byKey[key] = c
	return c
}

// Counter is a monotonically non-decreasing metric.
type Counter struct{ c *child }

// Counter returns the unlabelled counter with the given name, registering it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith returns the counter child with the given label set.
func (r *Registry) CounterWith(name, help string, ls Labels) *Counter {
	return &Counter{c: r.lookup(name, help, kindCounter, nil).childFor(ls)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas panic: counters only go up.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("obs: counter decreased")
	}
	c.c.mu.Lock()
	c.c.value += delta
	c.c.mu.Unlock()
}

// Value reports the current total.
func (c *Counter) Value() float64 {
	c.c.mu.Lock()
	defer c.c.mu.Unlock()
	return c.c.value
}

// Gauge is a metric that can go up and down.
type Gauge struct{ c *child }

// Gauge returns the unlabelled gauge with the given name, registering it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith returns the gauge child with the given label set.
func (r *Registry) GaugeWith(name, help string, ls Labels) *Gauge {
	return &Gauge{c: r.lookup(name, help, kindGauge, nil).childFor(ls)}
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time, for quantities the owner already tracks (uptime, live subscriber
// counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	c := r.lookup(name, help, kindGauge, nil).childFor(nil)
	c.mu.Lock()
	c.fn = fn
	c.mu.Unlock()
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.c.mu.Lock()
	g.c.value = v
	g.c.mu.Unlock()
}

// Add shifts the gauge value.
func (g *Gauge) Add(delta float64) {
	g.c.mu.Lock()
	g.c.value += delta
	g.c.mu.Unlock()
}

// Value reports the current gauge value.
func (g *Gauge) Value() float64 {
	g.c.mu.Lock()
	defer g.c.mu.Unlock()
	if g.c.fn != nil {
		return g.c.fn()
	}
	return g.c.value
}

// Histogram accumulates a distribution in cumulative Prometheus buckets.
// Observations carry an explicit weight so slotted protocols can record
// time-weighted load distributions (one observation per slot, weighted by
// the slot duration) alongside ordinary count-weighted latencies.
type Histogram struct {
	f *family
	c *child
}

// DefBuckets are the default latency buckets in seconds, matching the
// Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram returns the unlabelled histogram with the given name and upper
// bucket bounds (ascending, +Inf implicit), registering it on first use. A
// nil bounds slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, help, bounds, nil)
}

// HistogramWith returns the histogram child with the given label set.
func (r *Registry) HistogramWith(name, help string, bounds []float64, ls Labels) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %v", name, bounds[i]))
		}
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	f := r.lookup(name, help, kindHistogram, own)
	return &Histogram{f: f, c: f.childFor(ls)}
}

// Observe records one observation with weight 1.
func (h *Histogram) Observe(v float64) { h.ObserveWeighted(v, 1) }

// ObserveWeighted records an observation with the given weight (e.g. the
// slot duration for a time-weighted load histogram). Negative weights panic.
func (h *Histogram) ObserveWeighted(v, weight float64) {
	if weight < 0 {
		panic("obs: negative observation weight")
	}
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	idx := sort.SearchFloat64s(h.f.buckets, v)
	if idx < len(h.f.buckets) {
		h.c.counts[idx] += weight
	} else {
		h.c.inf += weight
	}
	h.c.sum += v * weight
	h.c.count += weight
}

// Sum reports the weighted sum of observations.
func (h *Histogram) Sum() float64 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.c.sum
}

// Count reports the total observation weight.
func (h *Histogram) Count() float64 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.c.count
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// Names returns every registered family name in sorted order, the inventory
// the metric-name lint check walks.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Sample is one scalar series value from a structured registry walk: the
// family name (histograms expand to their _sum and _count series), the
// pre-rendered label set, the family kind, and the current value. It is the
// scrape unit of the history store — a name+labels pair identifies one
// time series.
type Sample struct {
	// Name is the series name: the family name for counters and gauges, or
	// the family name suffixed _sum / _count for histograms (bucket series
	// are deliberately not walked: the history store retains scalar series,
	// and the sum/count pair is what rates and means are derived from).
	Name string
	// Labels is the pre-rendered {k="v",...} label set, or "" for the
	// unlabelled child — exactly the byte string the text exposition uses,
	// so Name+Labels is a stable series identity across both surfaces.
	Labels string
	// Kind is the family's exposition TYPE ("counter", "gauge",
	// "histogram").
	Kind string
	// Value is the current sample value (GaugeFunc sources are read here).
	Value float64
}

// Samples walks every registered family and returns one Sample per scalar
// series, families in sorted name order and children in sorted label order —
// the same deterministic order the text exposition renders. It is the
// structured counterpart of WritePrometheus for scrapers that retain values
// (the history store) instead of re-parsing the text format.
func (r *Registry) Samples() []Sample {
	families := r.sortedFamilies()
	out := make([]Sample, 0, len(families))
	for _, f := range families {
		for _, c := range f.sortedChildren() {
			c.mu.Lock()
			value := c.value
			if c.fn != nil {
				value = c.fn()
			}
			sum := c.sum
			count := c.count
			c.mu.Unlock()
			if f.kind == kindHistogram {
				out = append(out,
					Sample{Name: f.name + "_sum", Labels: c.labels, Kind: f.kind.String(), Value: sum},
					Sample{Name: f.name + "_count", Labels: c.labels, Kind: f.kind.String(), Value: count})
				continue
			}
			out = append(out, Sample{Name: f.name, Labels: c.labels, Kind: f.kind.String(), Value: value})
		}
	}
	return out
}

// sortedFamilies snapshots the family list in sorted name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })
	return families
}

// sortedChildren snapshots one family's children in sorted label order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	children := make([]*child, len(f.children))
	copy(children, f.children)
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
	return children
}

// WritePrometheus renders every registered family in the text exposition
// format: a HELP and TYPE line per family, then one sample line per child
// (histograms expand to cumulative _bucket lines plus _sum and _count).
// Families render in sorted name order and children in sorted label order,
// never in registration (or map-iteration) order, so two scrapes of
// identical state are byte-identical and diffs between deployments are
// meaningful.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusPrefix(w, "")
}

// WritePrometheusPrefix renders only the families whose name starts with
// prefix, in the same deterministic order as the full dump ("" keeps
// everything). A scraper that wants one family subset — the vod_* serving
// counters, say, without the go_ runtime gauges — filters server-side
// instead of downloading and discarding the rest.
func (r *Registry) WritePrometheusPrefix(w io.Writer, prefix string) error {
	for _, f := range r.sortedFamilies() {
		if prefix != "" && !strings.HasPrefix(f.name, prefix) {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.sortedChildren() {
			if err := f.writeChild(w, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one child's sample lines under its family's lock-free
// snapshot of the child state.
func (f *family) writeChild(w io.Writer, c *child) error {
	c.mu.Lock()
	value := c.value
	if c.fn != nil {
		value = c.fn()
	}
	counts := append([]float64(nil), c.counts...)
	inf := c.inf
	sum := c.sum
	count := c.count
	c.mu.Unlock()

	if f.kind != kindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, c.labels, formatValue(value))
		return err
	}
	// Cumulative buckets, then +Inf, _sum and _count.
	cum := 0.0
	for i, le := range f.buckets {
		cum += counts[i]
		if err := writeBucket(w, f.name, c.labels, formatValue(le), cum); err != nil {
			return err
		}
	}
	cum += inf
	if err := writeBucket(w, f.name, c.labels, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, c.labels, formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %s\n", f.name, c.labels, formatValue(count))
	return err
}

// writeBucket renders one cumulative bucket line, splicing le into any
// existing label set.
func writeBucket(w io.Writer, name, labels, le string, cum float64) error {
	var ls string
	if labels == "" {
		ls = fmt.Sprintf(`{le="%s"}`, le)
	} else {
		ls = strings.TrimSuffix(labels, "}") + fmt.Sprintf(`,le="%s"}`, le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %s\n", name, ls, formatValue(cum))
	return err
}
