package server

import "errors"

// Sentinel errors returned (wrapped, with context) by New. Test code and
// callers classify them with errors.Is; per-video scheduler problems
// additionally match the core package's sentinels through the wrap chain.
var (
	// ErrEmptyCatalogue reports a Config with no videos.
	ErrEmptyCatalogue = errors.New("server: empty catalogue")
	// ErrNilArrivals reports a missing arrival rate function.
	ErrNilArrivals = errors.New("server: nil arrival rate function")
	// ErrBadSlotDuration reports a non-positive slot duration.
	ErrBadSlotDuration = errors.New("server: slot duration must be positive")
	// ErrBadHorizon reports a horizon that does not exceed the warmup.
	ErrBadHorizon = errors.New("server: horizon must exceed warmup")
	// ErrBadCapacity reports a negative channel capacity.
	ErrBadCapacity = errors.New("server: channel capacity must be non-negative")
	// ErrBadDeferral reports DeferRequests without a positive capacity.
	ErrBadDeferral = errors.New("server: deferral requires a positive channel capacity")
	// ErrBadRate reports a video with a non-positive per-stream rate.
	ErrBadRate = errors.New("server: video rate must be positive")
)
