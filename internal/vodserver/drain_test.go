package vodserver

import (
	"net"
	"testing"
	"time"

	"vodcast/internal/conntrack"
	"vodcast/internal/fanout"
)

// discardConn is a net.Conn that swallows writes, so the drain path can be
// measured without socket noise. It deliberately does not implement the
// writev fast path: net.Buffers.WriteTo then falls back to one Write per
// buffer, the worst case for the scratch-reuse logic under test.
type discardConn struct{}

func (discardConn) Read(b []byte) (int, error)         { return 0, nil }
func (discardConn) Write(b []byte) (int, error)        { return len(b), nil }
func (discardConn) Close() error                       { return nil }
func (discardConn) LocalAddr() net.Addr                { return nil }
func (discardConn) RemoteAddr() net.Addr               { return nil }
func (discardConn) SetDeadline(t time.Time) error      { return nil }
func (discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(t time.Time) error { return nil }

// drainFixture builds the pieces of one subscriber's steady-state drain
// cycle: a warm encoder, a ring, and the session-scoped scratch buffers.
func drainFixture(tb testing.TB) (*fanout.Encoder, *fanout.Ring) {
	tb.Helper()
	enc := fanout.NewEncoder()
	if err := enc.AddVideo(1, []int{1500, 700, 2200, 900, 4096}); err != nil {
		tb.Fatal(err)
	}
	return enc, fanout.NewRing(8)
}

// TestDrainZeroAlloc gates the drainRing fix: once the frame pool, the
// drain buffer and the net.Buffers scratch are warm, a full
// encode → push → pop → vectored-write → release cycle must not allocate.
// Before the reusable scratch, every batch paid one heap allocation for
// the escaping net.Buffers header.
func TestDrainZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync primitives")
	}
	enc, ring := drainFixture(t)
	var (
		conn   net.Conn = discardConn{}
		vec    net.Buffers
		frames []*fanout.Frame
	)
	slot := 0
	cycle := func() {
		f, err := enc.EncodeSlot(1, slot, []int{1, 2, 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		slot++
		f.Retain()
		if _, ok := ring.Push(f); !ok {
			t.Fatal("push failed on drained ring")
		}
		f.Release()
		var open bool
		frames, open = ring.PopAll(frames[:0])
		if !open {
			t.Fatal("ring closed unexpectedly")
		}
		sent, n, err := writeFrames(conn, &vec, frames, -1)
		if err != nil || !sent || n == 0 {
			t.Fatalf("writeFrames sent=%v n=%d err=%v", sent, n, err)
		}
		for _, g := range frames {
			g.Release()
		}
	}
	// Warm the pool, the pop buffer and the vectored-write scratch.
	for i := 0; i < 8; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state drain cycle allocates %.1f per batch, want 0", avg)
	}
}

// TestWriteFramesFiltersAdmitSlot pins the admit-slot filter: frames at or
// before the admit slot are skipped entirely (no write, sent=false when
// nothing remains) and the scratch survives for the next batch.
func TestWriteFramesFiltersAdmitSlot(t *testing.T) {
	enc, _ := drainFixture(t)
	var vec net.Buffers
	var frames []*fanout.Frame
	for slot := 0; slot < 4; slot++ {
		f, err := enc.EncodeSlot(1, slot, []int{1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	defer func() {
		for _, f := range frames {
			f.Release()
		}
	}()
	sent, n, err := writeFrames(discardConn{}, &vec, frames, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sent || n != 0 {
		t.Fatal("writeFrames reported a send with every frame at or before the admit slot")
	}
	sent, n, err = writeFrames(discardConn{}, &vec, frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sent || n == 0 {
		t.Fatal("writeFrames skipped frames past the admit slot")
	}
	if len(vec) != 0 || cap(vec) < 2 {
		t.Fatalf("scratch not restored for reuse: len=%d cap=%d", len(vec), cap(vec))
	}
}

// BenchmarkDrainRing measures one subscriber's steady-state drain cycle —
// the consumer half of the broadcast path. Run with -benchmem: the 0 B/op
// row is the point (one net.Buffers header per session, none per batch).
func BenchmarkDrainRing(b *testing.B) {
	enc, ring := drainFixture(b)
	var (
		conn   net.Conn = discardConn{}
		vec    net.Buffers
		frames []*fanout.Frame
	)
	segments := []int{1, 2, 3, 4, 5}
	cycle := func(slot int) {
		f, err := enc.EncodeSlot(1, slot, segments, nil)
		if err != nil {
			b.Fatal(err)
		}
		f.Retain()
		if _, ok := ring.Push(f); !ok {
			b.Fatal("push failed on drained ring")
		}
		f.Release()
		var open bool
		frames, open = ring.PopAll(frames[:0])
		if !open {
			b.Fatal("ring closed unexpectedly")
		}
		if _, _, err := writeFrames(conn, &vec, frames, -1); err != nil {
			b.Fatal(err)
		}
		for _, g := range frames {
			g.Release()
		}
	}
	for i := 0; i < 8; i++ {
		cycle(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i)
	}
}

// BenchmarkDrainRingConntrackDisabled is the disabled-path A/B subject behind
// BENCH_conn.json: the same steady-state drain cycle with the transport
// telemetry hooks a ConntrackDisabled server actually executes — a nil *Conn
// RecordPush on the producer side and RecordDrain on the consumer side, each
// one predictable branch. The budget against BenchmarkDrainRing is <2% and
// 0 allocs/op (make bench-conn).
func BenchmarkDrainRingConntrackDisabled(b *testing.B) {
	enc, ring := drainFixture(b)
	var (
		conn   net.Conn = discardConn{}
		vec    net.Buffers
		frames []*fanout.Frame
		ct     *conntrack.Conn
	)
	segments := []int{1, 2, 3, 4, 5}
	cycle := func(slot int) {
		f, err := enc.EncodeSlot(1, slot, segments, nil)
		if err != nil {
			b.Fatal(err)
		}
		f.Retain()
		depth, ok := ring.Push(f)
		ct.RecordPush(depth, ok)
		if !ok {
			b.Fatal("push failed on drained ring")
		}
		f.Release()
		var open bool
		frames, open = ring.PopAll(frames[:0])
		if !open {
			b.Fatal("ring closed unexpectedly")
		}
		sent, n, err := writeFrames(conn, &vec, frames, -1)
		if err != nil {
			b.Fatal(err)
		}
		if sent {
			ct.RecordDrain(len(frames), n)
		}
		for _, g := range frames {
			g.Release()
		}
	}
	for i := 0; i < 8; i++ {
		cycle(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i)
	}
}
