package core

import (
	"fmt"
	"math"

	"vodcast/internal/smoothing"
	"vodcast/internal/trace"
	"vodcast/internal/video"
)

// VBRVariant identifies one of the four compressed-video solutions of the
// paper's Section 4.
type VBRVariant int

const (
	// VariantA allocates each stream the worst one-second bit rate of the
	// video and streams segments just in time (the base solution DHB-a).
	VariantA VBRVariant = iota + 1
	// VariantB downloads each segment completely before it is watched, so
	// streams only need the worst per-segment average rate (DHB-b).
	VariantB
	// VariantC adds smoothing by work-ahead: streams run at the minimal
	// feasible constant rate and segments pack tighter, so fewer of them
	// carry the whole video (DHB-c).
	VariantC
	// VariantD additionally relaxes each segment's minimum transmission
	// frequency to the latest deadline the work-ahead buffer allows (DHB-d).
	VariantD
)

// String returns the paper's name for the variant.
func (v VBRVariant) String() string {
	switch v {
	case VariantA:
		return "DHB-a"
	case VariantB:
		return "DHB-b"
	case VariantC:
		return "DHB-c"
	case VariantD:
		return "DHB-d"
	default:
		return fmt.Sprintf("VBRVariant(%d)", int(v))
	}
}

// VBRSolution is a ready-to-schedule plan for distributing one VBR video:
// feed Segments and Periods into a Scheduler and multiply its per-slot loads
// by Rate to obtain bandwidth in bytes per second.
type VBRSolution struct {
	// Variant identifies the plan.
	Variant VBRVariant
	// Rate is the per-stream bandwidth in bytes per second.
	Rate float64
	// Segments is the number of transmission units n.
	Segments int
	// SlotDuration is the slot length d in seconds.
	SlotDuration float64
	// Periods is the 1-based maximum-period vector to pass to Config.
	Periods []int
	// WorkAheadBuffer is the maximum client buffer occupancy in bytes for
	// the smoothed variants (C and D); zero for A and B, whose buffering
	// needs stay within a couple of segments.
	WorkAheadBuffer float64
}

// SchedulerConfig builds the scheduler configuration that realizes the plan.
func (s VBRSolution) SchedulerConfig() Config {
	return Config{Segments: s.Segments, Periods: s.Periods}
}

// SaturatedBandwidth reports the plan's average bandwidth in bytes per
// second when the video is in permanent demand (at least one request per
// slot): every segment is then transmitted at its minimum frequency, so the
// mean load is the sum of 1/T[j].
func (s VBRSolution) SaturatedBandwidth() float64 {
	load := 0.0
	for j := 1; j <= s.Segments; j++ {
		load += 1 / float64(s.Periods[j])
	}
	return load * s.Rate
}

// PlanVBR derives the four Section 4 solutions for distributing the traced
// video with the given maximum waiting time in seconds.
func PlanVBR(tr *trace.Trace, maxWait float64) (map[VBRVariant]VBRSolution, error) {
	if tr == nil {
		return nil, fmt.Errorf("core: nil trace")
	}
	if maxWait <= 0 {
		return nil, fmt.Errorf("core: max wait %v must be positive", maxWait)
	}
	n := int(math.Ceil(tr.Duration() / maxWait))
	d := tr.Duration() / float64(n)

	out := make(map[VBRVariant]VBRSolution, 4)

	// DHB-a: every stream carries the worst one-second rate.
	out[VariantA] = VBRSolution{
		Variant:      VariantA,
		Rate:         tr.Peak(),
		Segments:     n,
		SlotDuration: d,
		Periods:      video.DefaultPeriods(n),
	}

	// DHB-b: worst per-segment average rate.
	rateB, err := smoothing.PeakSegmentRate(tr, n)
	if err != nil {
		return nil, fmt.Errorf("core: plan DHB-b: %w", err)
	}
	out[VariantB] = VBRSolution{
		Variant:      VariantB,
		Rate:         rateB,
		Segments:     n,
		SlotDuration: d,
		Periods:      video.DefaultPeriods(n),
	}

	// DHB-c: work-ahead smoothing at the minimal feasible constant rate.
	rateC, err := smoothing.MinWorkAheadRate(tr, d)
	if err != nil {
		return nil, fmt.Errorf("core: plan DHB-c: %w", err)
	}
	nC, err := smoothing.PackedSegments(tr, d, rateC)
	if err != nil {
		return nil, fmt.Errorf("core: plan DHB-c: %w", err)
	}
	bufC, err := smoothing.VerifyFeasible(tr, d, rateC, video.DefaultPeriods(nC))
	if err != nil {
		return nil, fmt.Errorf("core: DHB-c plan infeasible: %w", err)
	}
	out[VariantC] = VBRSolution{
		Variant:         VariantC,
		Rate:            rateC,
		Segments:        nC,
		SlotDuration:    d,
		Periods:         video.DefaultPeriods(nC),
		WorkAheadBuffer: bufC,
	}

	// DHB-d: same transmission plan with relaxed minimum frequencies.
	periodsD, err := smoothing.Periods(tr, d, rateC, nC)
	if err != nil {
		return nil, fmt.Errorf("core: plan DHB-d: %w", err)
	}
	bufD, err := smoothing.VerifyFeasible(tr, d, rateC, periodsD)
	if err != nil {
		return nil, fmt.Errorf("core: DHB-d plan infeasible: %w", err)
	}
	out[VariantD] = VBRSolution{
		Variant:         VariantD,
		Rate:            rateC,
		Segments:        nC,
		SlotDuration:    d,
		Periods:         periodsD,
		WorkAheadBuffer: bufD,
	}
	return out, nil
}
