package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vodcast/internal/metrics"
	"vodcast/internal/obs"
)

// decodeTrace parses every JSONL line of a trace.
func decodeTrace(t *testing.T, raw string) []obs.Event {
	t.Helper()
	var evs []obs.Event
	for i, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d %q: %v", i+1, line, err)
		}
		if ev.Type == "" {
			t.Fatalf("line %d lacks a type: %q", i+1, line)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestTraceRoundTrip is the end-to-end contract of the trace format: a
// short traced run decodes line by line, events honour slot ordering, every
// instance_start pairs with exactly one instance_stop, and re-aggregating
// the per-slot load series reproduces the run's reported bandwidth mean and
// max exactly.
func TestTraceRoundTrip(t *testing.T) {
	cfg := TraceConfig{
		Segments:     30,
		RatePerHour:  200,
		SlotSeconds:  20,
		HorizonSlots: 400,
		WarmupSlots:  50,
		Seed:         7,
	}
	var buf bytes.Buffer
	res, err := TraceDHB(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.String())
	if uint64(len(evs)) != res.Events {
		t.Fatalf("decoded %d events, tracer reports %d", len(evs), res.Events)
	}

	// Ordering: slots retire consecutively from 0; every decision made
	// while slot i is current places into the future window starting at
	// i+1; admits are stamped with the current slot.
	current := 0
	admits := int64(0)
	starts := make(map[[2]int]int) // (slot, segment) -> count
	stopsPerSlot := make(map[int]int)
	var retired []obs.Event
	for _, ev := range evs {
		switch ev.Type {
		case obs.EventSlotRetire:
			if ev.Slot != current {
				t.Fatalf("retired slot %d while slot %d is current", ev.Slot, current)
			}
			if ev.Load != stopsPerSlot[ev.Slot] {
				t.Fatalf("slot %d retired load %d but %d instance_stops", ev.Slot, ev.Load, stopsPerSlot[ev.Slot])
			}
			retired = append(retired, ev)
			current++
		case obs.EventInstanceStop:
			if ev.Slot != current {
				t.Fatalf("instance_stop for slot %d while slot %d is current", ev.Slot, current)
			}
			key := [2]int{ev.Slot, ev.Segment}
			if starts[key] == 0 {
				t.Fatalf("instance_stop without start: %+v", ev)
			}
			starts[key]--
			if starts[key] == 0 {
				delete(starts, key)
			}
			stopsPerSlot[ev.Slot]++
		case obs.EventInstanceStart:
			if ev.Slot <= current {
				t.Fatalf("instance_start at slot %d not after current slot %d", ev.Slot, current)
			}
			starts[[2]int{ev.Slot, ev.Segment}]++
		case obs.EventSlotDecision:
			if ev.WindowLo != current+1 || ev.Slot < ev.WindowLo || ev.Slot > ev.WindowHi {
				t.Fatalf("decision outside window while slot %d is current: %+v", current, ev)
			}
		case obs.EventAdmit:
			if ev.Slot != current {
				t.Fatalf("admit stamped slot %d while slot %d is current", ev.Slot, current)
			}
			admits++
		default:
			t.Fatalf("unexpected event type %q in a simulation trace", ev.Type)
		}
	}

	// Completeness: the drain retired every scheduled instance.
	if len(starts) != 0 {
		t.Fatalf("%d instance_starts without a matching instance_stop: %v", len(starts), starts)
	}
	if admits != res.Requests {
		t.Fatalf("trace has %d admits, scheduler admitted %d", admits, res.Requests)
	}
	totalStops := 0
	for _, n := range stopsPerSlot {
		totalStops += n
	}
	if int64(totalStops) != res.Instances {
		t.Fatalf("trace stopped %d instances, scheduler scheduled %d", totalStops, res.Instances)
	}
	if len(retired) != cfg.HorizonSlots+res.DrainSlots {
		t.Fatalf("retired %d slots, want %d + %d drain", len(retired), cfg.HorizonSlots, res.DrainSlots)
	}

	// Exactness: re-aggregating the measured window of the slot_retire
	// load series through the same accumulator reproduces the reported
	// bandwidth statistics bit for bit.
	bw := metrics.NewBandwidth()
	for _, ev := range retired {
		if ev.Slot >= cfg.WarmupSlots && ev.Slot < cfg.HorizonSlots {
			bw.Record(float64(ev.Load), cfg.SlotSeconds)
		}
	}
	if bw.Mean() != res.AvgBandwidth || bw.Max() != res.MaxBandwidth {
		t.Fatalf("re-aggregated mean/max = %v/%v, reported %v/%v",
			bw.Mean(), bw.Max(), res.AvgBandwidth, res.MaxBandwidth)
	}
	if res.AvgBandwidth <= 0 || res.MaxBandwidth <= 0 {
		t.Fatalf("degenerate run: %+v", res.Measurement)
	}
}

// TestTraceDeterministic: equal configs produce byte-identical traces (the
// trace clock is simulated time, not wall time).
func TestTraceDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.HorizonSlots = 300
	cfg.WarmupSlots = 30
	var a, b bytes.Buffer
	if _, err := TraceDHB(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceDHB(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same config produced different traces")
	}
}

// TestTraceConfigValidation rejects degenerate configs.
func TestTraceConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*TraceConfig){
		"segments": func(c *TraceConfig) { c.Segments = 0 },
		"rate":     func(c *TraceConfig) { c.RatePerHour = 0 },
		"slot":     func(c *TraceConfig) { c.SlotSeconds = 0 },
		"horizon":  func(c *TraceConfig) { c.HorizonSlots = c.WarmupSlots },
		"warmup":   func(c *TraceConfig) { c.WarmupSlots = -1 },
	} {
		cfg := DefaultTraceConfig()
		mutate(&cfg)
		if _, err := TraceDHB(cfg, nil); err == nil {
			t.Fatalf("%s: bad config accepted", name)
		}
	}
}
