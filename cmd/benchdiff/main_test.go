package main

import (
	"os"
	"strings"
	"testing"
)

const oldRun = `
goos: linux
BenchmarkFanOut/videos=4/subs=16/zerocopy-serial     50000     2000 ns/op    0 B/op    0 allocs/op
BenchmarkFanOut/videos=4/subs=16/zerocopy-serial     50000     2200 ns/op    0 B/op    0 allocs/op
BenchmarkFanOut/videos=4/subs=16/reference           10000    12000 ns/op    4096 B/op    3 allocs/op
BenchmarkGone                                        10000      500 ns/op
PASS
`

const newRun = `
BenchmarkFanOut/videos=4/subs=16/zerocopy-serial     80000     1050 ns/op    0 B/op    0 allocs/op
BenchmarkFanOut/videos=4/subs=16/reference           10000    12600 ns/op    4096 B/op    3 allocs/op
BenchmarkFanOut/videos=4/subs=16/zerocopy-parallel  100000      700 ns/op    0 B/op    0 allocs/op
ok
`

func TestParseBenchAveragesReplicates(t *testing.T) {
	results, order, err := parseBench(strings.NewReader(oldRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("parsed %d names, want 3: %v", len(order), order)
	}
	serial := results["BenchmarkFanOut/videos=4/subs=16/zerocopy-serial"]
	if serial == nil || serial.runs != 2 {
		t.Fatalf("serial replicates not folded: %+v", serial)
	}
	if ns, _, _ := serial.mean(); ns != 2100 {
		t.Fatalf("serial mean ns/op = %v, want 2100", ns)
	}
	ref := results["BenchmarkFanOut/videos=4/subs=16/reference"]
	if _, bytes, allocs := ref.mean(); bytes != 4096 || allocs != 3 {
		t.Fatalf("reference mem columns = %v B, %v allocs; want 4096, 3", bytes, allocs)
	}
	if gone := results["BenchmarkGone"]; gone == nil || gone.hasMem {
		t.Fatalf("mem-less line parsed wrong: %+v", gone)
	}
}

func TestDiffRowsMatchesAndFlagsStrays(t *testing.T) {
	oldR, oldOrder, err := parseBench(strings.NewReader(oldRun))
	if err != nil {
		t.Fatal(err)
	}
	newR, newOrder, err := parseBench(strings.NewReader(newRun))
	if err != nil {
		t.Fatal(err)
	}
	rows := diffRows(oldR, newR, oldOrder, newOrder)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	serial := rows[0]
	if serial.delta != -50 {
		t.Fatalf("serial delta = %v%%, want -50%% (2100 -> 1050)", serial.delta)
	}
	if got := formatRow(serial); !strings.Contains(got, "-50.0%") || !strings.Contains(got, "allocs 0 -> 0") {
		t.Fatalf("serial row misformatted: %q", got)
	}
	ref := rows[1]
	if ref.delta != 5 {
		t.Fatalf("reference delta = %v%%, want +5%%", ref.delta)
	}
	gone := rows[2]
	if !gone.onlyOld || !strings.Contains(formatRow(gone), "removed") {
		t.Fatalf("removed benchmark not flagged: %+v", gone)
	}
	added := rows[3]
	if !added.onlyNew || !strings.Contains(formatRow(added), "added") {
		t.Fatalf("added benchmark not flagged: %+v", added)
	}
}

func TestRunRejectsEmptyInputs(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := dir+"/old.txt", dir+"/new.txt"
	for _, p := range []string{oldPath, newPath} {
		if err := os.WriteFile(p, []byte("no benchmarks here\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(oldPath, newPath, &strings.Builder{}); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if err := os.WriteFile(oldPath, []byte(oldRun), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newRun), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(oldPath, newPath, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "benchmark") || !strings.Contains(out.String(), "zerocopy-parallel") {
		t.Fatalf("table missing expected rows:\n%s", out.String())
	}
}
