package obs

import (
	"runtime"
	"sync"
	"time"
)

// This file is the runtime collector: Go process health — goroutine count,
// heap, GC pauses — registered as GaugeFuncs so every scrape carries the
// control-plane context the pipeline latencies need interpreting against
// (a p99 spike that coincides with a GC pause spike is a very different
// problem from one that coincides with a queue-depth spike).

// runtimeSampler caches one runtime.ReadMemStats per refresh interval:
// ReadMemStats stops the world, and one /metricsz scrape reads several
// gauges, so the gauges share a sample instead of stopping the world once
// per gauge.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	stats   runtime.MemStats
	refresh time.Duration
}

// get returns the cached MemStats, refreshing when stale.
func (s *runtimeSampler) get() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) >= s.refresh {
		runtime.ReadMemStats(&s.stats)
		s.last = time.Now()
	}
	return &s.stats
}

// RegisterRuntime registers the Go runtime gauges on r:
//
//	go_goroutines            live goroutines
//	go_heap_alloc_bytes      bytes of allocated heap objects
//	go_heap_sys_bytes        heap memory obtained from the OS
//	go_gc_cycles_total       completed GC cycles
//	go_gc_pause_total_seconds cumulative stop-the-world pause time
//	go_gc_last_pause_seconds most recent stop-the-world pause
//	go_next_gc_bytes         heap size at which the next GC triggers
//
// Values are read at exposition time through one shared MemStats sample
// cached for a second, so scraping does not multiply stop-the-world reads.
func RegisterRuntime(r *Registry) {
	s := &runtimeSampler{refresh: time.Second}
	r.GaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(s.get().HeapAlloc) })
	r.GaugeFunc("go_heap_sys_bytes", "Heap memory obtained from the OS.",
		func() float64 { return float64(s.get().HeapSys) })
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(s.get().NumGC) })
	r.GaugeFunc("go_gc_pause_total_seconds", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(s.get().PauseTotalNs) / 1e9 })
	r.GaugeFunc("go_gc_last_pause_seconds", "Most recent stop-the-world GC pause.",
		func() float64 {
			ms := s.get()
			if ms.NumGC == 0 {
				return 0
			}
			return float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
		})
	r.GaugeFunc("go_next_gc_bytes", "Heap size at which the next GC triggers.",
		func() float64 { return float64(s.get().NextGC) })
}
