package core

import (
	"testing"

	"vodcast/internal/video"
)

// FuzzSchedulerInvariants drives the fast-path scheduler AND its linear
// reference twin (Config.Reference) with an arbitrary byte-coded command
// stream, checking every protocol invariant on every step — no panics,
// deadlines always met, conservation of instances — plus exact fast/
// reference equivalence of assignments, loads and counters, so the RMQ
// ring, the same-slot admission memo and its invalidation on AdvanceSlot
// are all fuzzed against the specification.
//
// Command encoding (one byte each):
//
//	0-1: advance one slot (invalidates the same-slot memo)
//	2-3: admit an ordinary request
//	4:   admit a same-slot duplicate burst of 2-4 ordinary requests
//	5-7: admit a resume at a segment derived from the byte
func FuzzSchedulerInvariants(f *testing.F) {
	f.Add([]byte{2, 0, 2, 2, 0, 5, 0, 0}, uint8(12), uint8(0))
	f.Add([]byte{3, 3, 3, 3}, uint8(30), uint8(2))
	f.Add([]byte{0, 0, 0}, uint8(1), uint8(1))
	f.Add([]byte{4, 4, 0, 4, 2, 0, 4, 6, 4}, uint8(20), uint8(0))
	f.Fuzz(func(t *testing.T, cmds []byte, segByte, capByte uint8) {
		n := 1 + int(segByte)%40
		cap := int(capByte) % 4 // 0 = unlimited
		s, err := New(Config{Segments: n, MaxClientStreams: cap})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := New(Config{Segments: n, MaxClientStreams: cap, Reference: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(cmds) > 400 {
			cmds = cmds[:400]
		}
		// admitBoth admits one request on both schedulers, checks the
		// deadline invariant on the fast result and equivalence with the
		// reference.
		admitBoth := func(idx, from int) {
			i := s.CurrentSlot()
			got, err := admitFromTraced(s, from)
			if err != nil {
				t.Fatalf("cmd %d: %v", idx, err)
			}
			want, err := admitFromTraced(ref, from)
			if err != nil {
				t.Fatalf("cmd %d: reference: %v", idx, err)
			}
			for j := from; j <= n; j++ {
				deadline := i + (j - from + 1)
				if from == 1 {
					deadline = i + j
				}
				if got[j] < i+1 || got[j] > deadline {
					t.Fatalf("cmd %d: segment %d served at %d outside [%d, %d]",
						idx, j, got[j], i+1, deadline)
				}
				if got[j] != want[j] {
					t.Fatalf("cmd %d: segment %d at %d, reference %d", idx, j, got[j], want[j])
				}
			}
		}
		var transmitted int64
		for idx, c := range cmds {
			switch c % 8 {
			case 0, 1:
				rep, refRep := s.AdvanceSlot(), ref.AdvanceSlot()
				if rep.Load != refRep.Load {
					t.Fatalf("cmd %d: retired load %d, reference %d", idx, rep.Load, refRep.Load)
				}
				transmitted += int64(rep.Load)
			case 2, 3:
				admitBoth(idx, 1)
			case 4:
				for burst := 2 + int(c/8)%3; burst > 0; burst-- {
					admitBoth(idx, 1)
				}
			default:
				admitBoth(idx, 1+int(c)%n)
			}
			if s.Requests() != ref.Requests() || s.Instances() != ref.Instances() {
				t.Fatalf("cmd %d: counters (%d, %d), reference (%d, %d)",
					idx, s.Requests(), s.Instances(), ref.Requests(), ref.Instances())
			}
		}
		// Drain and check conservation.
		for k := 0; k <= n; k++ {
			transmitted += int64(s.AdvanceSlot().Load)
		}
		if transmitted != s.Instances() {
			t.Fatalf("transmitted %d, scheduled %d", transmitted, s.Instances())
		}
	})
}

// FuzzPeriodVectors feeds arbitrary (sanitized) period vectors through the
// validator and scheduler: any vector the validator accepts must run without
// violating its own deadlines.
func FuzzPeriodVectors(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{1, 3, 3, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 32 {
			return
		}
		n := len(raw)
		periods := make([]int, n+1)
		for i, b := range raw {
			periods[i+1] = int(b)
		}
		if err := video.ValidatePeriods(periods, n); err != nil {
			return // correctly rejected
		}
		s, err := New(Config{Segments: n, Periods: periods})
		if err != nil {
			t.Fatalf("validated periods rejected by the scheduler: %v", err)
		}
		for step := 0; step < 50; step++ {
			i := s.CurrentSlot()
			got := admitTraced(s)
			for j := 1; j <= n; j++ {
				if got[j] < i+1 || got[j] > i+periods[j] {
					t.Fatalf("segment %d at %d outside [%d, %d]", j, got[j], i+1, i+periods[j])
				}
			}
			s.AdvanceSlot()
		}
	})
}
