package core

import "fmt"

// This file implements the client-bandwidth-limited DHB variant the paper's
// conclusion singles out as future work: "we would like to investigate
// dynamic heuristic broadcasting protocols that limit the client bandwidth
// to two or three data streams".
//
// With a cap c, a request's assignment may place at most c of its segments
// in any one slot, so the set-top box never receives more than c streams
// simultaneously. Sharing becomes harder: an already-scheduled instance only
// helps if its slot still has client-side capacity, so the scheduler tracks
// every future instance of every segment (not just the most recent one) and
// falls back to scheduling a duplicate in a capacity-feasible slot.
//
// Feasibility is guaranteed for every c >= 1: processing segments in
// deadline order, segment j has a window of T[j] >= j slots of which at most
// j-1 client-slots are occupied, so at least one slot always has room (c = 1
// degenerates to the sequential just-in-time schedule S_j at slot i+j).

// admitCapped is the capped counterpart of admit.
func (s *Scheduler) admitCapped(assignment []int) int {
	i := s.current
	s.requests++
	// clientLoad[k] counts this request's segments assigned to slot i+1+k.
	for k := range s.clientLoad {
		s.clientLoad[k] = 0
	}
	placed := 0
	for j := 1; j <= s.n; j++ {
		hi := i + s.periods[j]
		chosen := -1
		shared := true

		// Try to share an already-scheduled instance; prefer the latest
		// feasible one so earlier slots keep capacity for tighter windows.
		inst := s.pruneInstances(j)
		for k := len(inst) - 1; k >= 0; k-- {
			slot := inst[k]
			if slot > hi {
				continue
			}
			if s.clientLoad[slot-i-1] < s.cap {
				chosen = slot
				break
			}
		}

		if chosen < 0 {
			shared = false
			// Schedule a new instance in the minimum-load slot among the
			// window slots with client capacity, ties toward the latest.
			bestLoad := int(^uint(0) >> 1)
			for slot := hi; slot >= i+1; slot-- {
				if s.clientLoad[slot-i-1] >= s.cap {
					continue
				}
				if l := s.ring.Load(slot); l < bestLoad {
					chosen, bestLoad = slot, l
				}
			}
			if chosen < 0 {
				// Unreachable by the feasibility argument above.
				panic(fmt.Sprintf("core: no feasible slot for segment %d (cap %d)", j, s.cap))
			}
			s.ring.Add(chosen, j)
			s.insertInstance(j, chosen)
			if chosen > s.lastSched[j] {
				s.lastSched[j] = chosen
			}
			s.instances++
			placed++
		}

		s.clientLoad[chosen-i-1]++
		if assignment != nil {
			assignment[j] = chosen
		}
		if s.obs != nil {
			s.obs.ObserveDecision(i, j, chosen, i+1, hi, s.ring.Load(chosen), shared)
		}
	}
	if s.obs != nil {
		s.obs.ObserveAdmit(i, 1, placed)
	}
	return placed
}

// pruneInstances drops instances of segment j that already transmitted and
// returns the live, ascending list.
func (s *Scheduler) pruneInstances(j int) []int {
	inst := s.futureInst[j]
	k := 0
	for k < len(inst) && inst[k] <= s.current {
		k++
	}
	if k > 0 {
		inst = inst[k:]
		s.futureInst[j] = inst
	}
	return inst
}

// insertInstance keeps futureInst[j] sorted ascending.
func (s *Scheduler) insertInstance(j, slot int) {
	inst := append(s.futureInst[j], slot)
	k := len(inst) - 1
	for k > 0 && inst[k-1] > slot {
		inst[k] = inst[k-1]
		k--
	}
	inst[k] = slot
	s.futureInst[j] = inst
}
