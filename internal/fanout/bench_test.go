package fanout

import (
	"fmt"
	"runtime"
	"testing"
)

// benchSizes is a VBR-ish segment size vector; each slot broadcasts a
// rotating window of segments so ticks exercise different frame shapes.
var benchSizes = []int{1500, 700, 2200, 900, 4096, 333, 1234, 800, 600, 2048}

func benchSegments(slot int) []int {
	// Three segments per slot, rotating through the catalogue.
	base := slot % len(benchSizes)
	return []int{
		1 + base,
		1 + (base+3)%len(benchSizes),
		1 + (base+7)%len(benchSizes),
	}
}

// benchSpans partitions [0, videos) into at most workers contiguous
// near-equal spans — the same shape station.FanoutSpans hands the server.
func benchSpans(videos, workers int) [][2]int {
	if workers > videos {
		workers = videos
	}
	spans := make([][2]int, workers)
	base, rem := videos/workers, videos%workers
	lo := 0
	for i := range spans {
		sz := base
		if i < rem {
			sz++
		}
		spans[i] = [2]int{lo, lo + sz}
		lo += sz
	}
	return spans
}

// benchCatalogue builds the zero-copy side of one benchmark point: an
// encoder over `videos` identical VBR catalogues and a COW subscriber set
// of `subs` rings per video.
func benchCatalogue(b *testing.B, videos, subs int) (*Encoder, []*Set[*Ring]) {
	b.Helper()
	enc := NewEncoder()
	sets := make([]*Set[*Ring], videos)
	for v := 0; v < videos; v++ {
		if err := enc.AddVideo(uint32(v+1), benchSizes); err != nil {
			b.Fatal(err)
		}
		sets[v] = NewSet[*Ring]()
		for i := 0; i < subs; i++ {
			sets[v].Add(NewRing(8))
		}
	}
	return enc, sets
}

// zerocopySpan runs one tick over the catalogue span [lo, hi): encode each
// video's slot once, push the shared frame to every subscriber in the COW
// snapshot, then drain the rings inline so the benchmark charges the
// consumer's release without socket noise. scratch is the worker's reusable
// drain buffer.
func zerocopySpan(enc *Encoder, sets []*Set[*Ring], segs [][]int, slot, lo, hi int, scratch *[]*Frame) {
	for v := lo; v < hi; v++ {
		f, err := enc.EncodeSlot(uint32(v+1), slot, segs[slot%len(segs)], nil)
		if err != nil {
			panic(err)
		}
		snap := sets[v].Snapshot()
		for _, r := range snap {
			f.Retain()
			if _, ok := r.Push(f); !ok {
				f.Release()
			}
		}
		f.Release()
		for _, r := range snap {
			var frames []*Frame
			frames, _ = r.PopAll((*scratch)[:0])
			for _, g := range frames {
				g.Release()
			}
			*scratch = frames
		}
	}
}

// BenchmarkFanOut measures one broadcast tick across the videos ×
// subscribers-per-video matrix for three data planes:
//
//   - zerocopy-serial: the shared ref-counted frame plane walked by one
//     goroutine, as the clock did before the parallel tick;
//   - zerocopy-parallel: the same plane partitioned across a
//     fanout.Workers pool (one span per GOMAXPROCS, the server default) —
//     run with -cpu 1,4 to see the multi-core scaling this PR targets;
//   - reference: per-tick serialization into a fresh buffer, one copy per
//     subscriber channel (the retained executable spec).
//
// The zero-copy rows must report 0 allocs/op at steady state — make ci
// gates the same property through TestSteadyStateZeroAlloc. Numbers live in
// BENCH_fanout.json; videos=64/subs=256 is the large-catalogue point the
// ≥3× multi-core acceptance target is measured on.
func BenchmarkFanOut(b *testing.B) {
	// Segment lists are precomputed so the loop measures the data plane,
	// not the scenario generator.
	segs := make([][]int, 64)
	for i := range segs {
		segs[i] = benchSegments(i)
	}

	points := [][2]int{
		{1, 1}, {1, 16}, {1, 64},
		{4, 1}, {4, 16}, {4, 64},
		{64, 256},
	}
	for _, pt := range points {
		videos, subs := pt[0], pt[1]
		name := fmt.Sprintf("videos=%d/subs=%d", videos, subs)

		b.Run(name+"/zerocopy-serial", func(b *testing.B) {
			enc, sets := benchCatalogue(b, videos, subs)
			var scratch []*Frame
			// Warm the frame pool before measuring.
			for i := 0; i < 8; i++ {
				zerocopySpan(enc, sets, segs, i, 0, videos, &scratch)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				zerocopySpan(enc, sets, segs, i, 0, videos, &scratch)
			}
		})

		b.Run(name+"/zerocopy-parallel", func(b *testing.B) {
			enc, sets := benchCatalogue(b, videos, subs)
			spans := benchSpans(videos, runtime.GOMAXPROCS(0))
			scratches := make([][]*Frame, len(spans))
			slot := 0
			w := NewWorkers(spans, func(worker, lo, hi int) {
				zerocopySpan(enc, sets, segs, slot, lo, hi, &scratches[worker])
			})
			defer w.Close()
			for i := 0; i < 8; i++ {
				slot = i
				w.Tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot = i
				w.Tick()
			}
		})

		b.Run(name+"/reference", func(b *testing.B) {
			ref := NewFanoutReference()
			chans := make([][]chan []byte, videos)
			for v := 0; v < videos; v++ {
				if err := ref.AddVideo(uint32(v+1), benchSizes); err != nil {
					b.Fatal(err)
				}
				chans[v] = make([]chan []byte, subs)
				for i := range chans[v] {
					chans[v][i] = make(chan []byte, 8)
				}
			}
			tick := func(slot int) {
				for v := 0; v < videos; v++ {
					payload, _, err := ref.EncodeSlot(uint32(v+1), slot, segs[slot%len(segs)], nil)
					if err != nil {
						b.Fatal(err)
					}
					for _, c := range chans[v] {
						select {
						case c <- payload:
						default:
						}
					}
					for _, c := range chans[v] {
						for {
							select {
							case <-c:
								continue
							default:
							}
							break
						}
					}
				}
			}
			for i := 0; i < 8; i++ {
				tick(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick(i)
			}
		})
	}
}
