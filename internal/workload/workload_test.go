package workload

import (
	"math"
	"testing"
	"testing/quick"

	"vodcast/internal/sim"
)

func TestPerHour(t *testing.T) {
	if got := PerHour(3600); got != 1 {
		t.Fatalf("PerHour(3600) = %v, want 1", got)
	}
	if got := PerHour(10); math.Abs(got-10.0/3600) > 1e-15 {
		t.Fatalf("PerHour(10) = %v", got)
	}
}

func TestConstantRate(t *testing.T) {
	r := Constant(60)
	for _, at := range []float64{0, 100, 1e6} {
		if got := r(at); math.Abs(got-60.0/3600) > 1e-15 {
			t.Fatalf("Constant(60)(%v) = %v", at, got)
		}
	}
}

func TestDayNightPeaksAndTroughs(t *testing.T) {
	r := DayNight(100, 10, 18) // peaks at 6 pm
	peak := r(18 * 3600)
	trough := r(6 * 3600)
	if math.Abs(peak-PerHour(100)) > 1e-12 {
		t.Fatalf("peak rate = %v, want %v", peak, PerHour(100))
	}
	if math.Abs(trough-PerHour(10)) > 1e-12 {
		t.Fatalf("trough rate = %v, want %v", trough, PerHour(10))
	}
	// 24-hour periodicity.
	if math.Abs(r(18*3600)-r((18+24)*3600)) > 1e-12 {
		t.Fatal("DayNight is not 24-hour periodic")
	}
}

func TestDayNightBoundedProperty(t *testing.T) {
	r := DayNight(200, 5, 12)
	f := func(at float64) bool {
		v := r(math.Mod(math.Abs(at), 1e7))
		return v >= PerHour(5)-1e-12 && v <= PerHour(200)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadProfileRates: the ramp/soak/spike helpers, table-driven over the
// time axis each one shapes.
func TestLoadProfileRates(t *testing.T) {
	const tol = 1e-12
	tests := []struct {
		name string
		rate RateFunc
		at   float64
		want float64 // requests per hour
	}{
		{"ramp start", Ramp(100, 1000, 60), 0, 100},
		{"ramp before start", Ramp(100, 1000, 60), -5, 100},
		{"ramp midpoint", Ramp(100, 1000, 60), 30, 550},
		{"ramp quarter", Ramp(100, 1000, 60), 15, 325},
		{"ramp end", Ramp(100, 1000, 60), 60, 1000},
		{"ramp holds after end", Ramp(100, 1000, 60), 3600, 1000},
		{"ramp down midpoint", Ramp(1000, 100, 60), 30, 550},
		{"ramp zero-length jumps", Ramp(100, 1000, 0), 0, 1000},
		{"soak is flat", Soak(360), 0, 360},
		{"soak later", Soak(360), 1e6, 360},
		{"spike before", Spike(60, 6000, 10, 5), 9.9, 60},
		{"spike during", Spike(60, 6000, 10, 5), 10, 6000},
		{"spike within", Spike(60, 6000, 10, 5), 14.9, 6000},
		{"spike after", Spike(60, 6000, 10, 5), 15, 60},
		{"spike zero-duration never fires", Spike(60, 6000, 10, 0), 10, 60},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.rate(tc.at); math.Abs(got-PerHour(tc.want)) > tol {
				t.Fatalf("rate(%v) = %v, want %v (=%v/h)", tc.at, got, PerHour(tc.want), tc.want)
			}
		})
	}
}

// TestLoadProfilesDriveArrivals: the helpers compose with SlottedArrivals —
// a ramp's later slots dominate its earlier ones, a spike's plateau
// dominates its base.
func TestLoadProfilesDriveArrivals(t *testing.T) {
	rng := sim.NewRNG(11)
	src := NewSlottedArrivals(rng, Ramp(10, 4000, 3000), 60)
	var early, late int
	for i := 0; i < 100; i++ { // slots 0..99 cover the ramp
		n := src.Next()
		if i < 20 {
			early += n
		}
		if i >= 80 {
			late += n
		}
	}
	if late <= early*4 {
		t.Fatalf("ramp arrivals not climbing: early=%d late=%d", early, late)
	}
}

func TestSlottedArrivalsMean(t *testing.T) {
	rng := sim.NewRNG(3)
	const d = 72.7
	src := NewSlottedArrivals(rng, Constant(50), d)
	const slotCount = 50000
	total := 0
	for i := 0; i < slotCount; i++ {
		total += src.Next()
	}
	mean := float64(total) / slotCount
	want := 50.0 / 3600 * d // about 1.01 per slot
	if math.Abs(mean-want) > 0.02 {
		t.Fatalf("mean arrivals per slot = %.4f, want %.4f", mean, want)
	}
	if src.Slot() != slotCount {
		t.Fatalf("Slot = %d, want %d", src.Slot(), slotCount)
	}
}

func TestSlottedArrivalsTracksRate(t *testing.T) {
	rng := sim.NewRNG(4)
	src := NewSlottedArrivals(rng, DayNight(400, 0, 0), 3600)
	// Slot 0 covers the peak hour (midpoint 0.5 h), slot 12 the trough.
	var peakTotal, troughTotal int
	for day := 0; day < 300; day++ {
		for h := 0; h < 24; h++ {
			n := src.Next()
			switch h {
			case 0:
				peakTotal += n
			case 12:
				troughTotal += n
			}
		}
	}
	if peakTotal <= troughTotal*10 {
		t.Fatalf("peak arrivals %d not dominating trough arrivals %d", peakTotal, troughTotal)
	}
}

func TestSlottedArrivalsBadSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero slot duration did not panic")
		}
	}()
	NewSlottedArrivals(sim.NewRNG(1), Constant(1), 0)
}

func TestZipfWeightsDecreaseAndSum(t *testing.T) {
	z, err := NewZipf(20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Weight(i)
		if i > 0 && z.Weight(i) > z.Weight(i-1) {
			t.Fatalf("weights not decreasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
}

func TestZipfZeroSkewIsUniform(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if math.Abs(z.Weight(i)-0.1) > 1e-12 {
			t.Fatalf("Weight(%d) = %v, want 0.1", i, z.Weight(i))
		}
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("empty catalogue should error")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Fatal("negative skew should error")
	}
}

func TestZipfSampleMatchesWeights(t *testing.T) {
	z, err := NewZipf(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	counts := make([]int, 5)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-z.Weight(i)) > 0.01 {
			t.Errorf("empirical weight of video %d = %.4f, want %.4f", i, got, z.Weight(i))
		}
	}
}

func TestZipfSampleInRangeProperty(t *testing.T) {
	z, err := NewZipf(7, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(10)
	f := func() bool {
		v := z.Sample(rng)
		return v >= 0 && v < 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
