// Multivideo: a whole VOD catalogue on one DHB server — Zipf-skewed
// popularity and day/night demand swings, the setting the paper's
// introduction argues no single static or reactive protocol handles well.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vodcast"
)

func main() {
	catalogue := []vodcast.VideoSpec{
		{Name: "blockbuster", Segments: 99, Rate: 1},
		{Name: "family-film", Segments: 99, Rate: 1},
		{Name: "late-show", Segments: 99, Rate: 1},
		{Name: "documentary", Segments: 99, Rate: 1},
		{Name: "archive-gem", Segments: 99, Rate: 1},
	}

	srv, err := vodcast.NewServer(vodcast.ServerConfig{
		Videos:   catalogue,
		ZipfSkew: 1.0,
		// Demand peaks at 8 pm at 300 requests/hour across the catalogue
		// and bottoms out at 10 overnight.
		Arrivals:     vodcast.DayNightRate(300, 10, 20),
		SlotSeconds:  7200.0 / 99,
		HorizonSlots: 7 * 24 * 3600 / 72, // one simulated week
		WarmupSlots:  400,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := srv.Run()
	fmt.Printf("one week, %d requests served, every customer waited < %.0f s\n\n",
		rep.Requests, rep.MaxWaitSeconds+1)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "video\trequests\tavg streams\tmax streams\t")
	for _, v := range rep.PerVideo {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t\n", v.Name, v.Requests, v.AvgBandwidth, v.MaxBandwidth)
	}
	fmt.Fprintf(w, "TOTAL\t%d\t%.2f\t%.0f\t\n", rep.Requests, rep.AvgBandwidth, rep.MaxBandwidth)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage customer wait: %.1f s (half a slot, as the protocol guarantees)\n", rep.AvgWaitSeconds)
}
