package experiments

import (
	"fmt"

	"vodcast/internal/core"
	"vodcast/internal/dynamic"
	"vodcast/internal/metrics"
	"vodcast/internal/workload"
)

// Slotted is any slotted protocol that can be driven one slot at a time:
// admit the requests arriving during the current slot, then advance, learning
// the finished slot's load.
type Slotted interface {
	// Admit processes one request arriving during the current slot and
	// reports how many new transmissions it forced.
	Admit() int
	// Advance finishes the current slot and reports its load in multiples
	// of the consumption rate.
	Advance() int
}

type dhbAdapter struct{ s *core.Scheduler }

func (a dhbAdapter) Admit() int {
	res, _ := a.s.AdmitRequest(core.AdmitOptions{})
	return res.Placed
}
func (a dhbAdapter) Advance() int { return a.s.AdvanceSlot().Load }

// AdaptDHB exposes a DHB scheduler through the Slotted interface.
func AdaptDHB(s *core.Scheduler) Slotted { return dhbAdapter{s: s} }

type onDemandAdapter struct{ o *dynamic.OnDemand }

func (a onDemandAdapter) Admit() int { return a.o.Admit() }

func (a onDemandAdapter) Advance() int {
	_, load := a.o.AdvanceSlot()
	return load
}

// AdaptOnDemand exposes a dynamic broadcasting protocol through the Slotted
// interface.
func AdaptOnDemand(o *dynamic.OnDemand) Slotted { return onDemandAdapter{o: o} }

// Measurement summarizes a Measure run.
type Measurement struct {
	// AvgBandwidth and MaxBandwidth are in multiples of the consumption
	// rate (per-slot instance counts).
	AvgBandwidth float64
	MaxBandwidth float64
	// Slots is the number of measured (post-warmup) slots.
	Slots int
}

// Measure drives a slotted protocol under constant Poisson arrivals and
// returns its bandwidth statistics.
func Measure(proto Slotted, ratePerHour, slotSeconds float64, horizonSlots, warmupSlots int, seed int64) (Measurement, error) {
	if proto == nil {
		return Measurement{}, fmt.Errorf("experiments: nil protocol")
	}
	if ratePerHour <= 0 {
		return Measurement{}, fmt.Errorf("experiments: rate %v must be positive", ratePerHour)
	}
	if slotSeconds <= 0 {
		return Measurement{}, fmt.Errorf("experiments: slot duration %v must be positive", slotSeconds)
	}
	if horizonSlots <= warmupSlots || warmupSlots < 0 {
		return Measurement{}, fmt.Errorf("experiments: horizon %d must exceed warmup %d >= 0", horizonSlots, warmupSlots)
	}
	avg, max := runSlotted(proto, proto.Advance, seed, ratePerHour, slotSeconds, horizonSlots, warmupSlots)
	return Measurement{AvgBandwidth: avg, MaxBandwidth: max, Slots: horizonSlots - warmupSlots}, nil
}

// Replay drives a slotted protocol with a recorded arrival trace instead of
// synthetic Poisson arrivals, so production request logs can be evaluated
// directly. The horizon extends past the last arrival long enough to drain
// the schedule.
func Replay(proto Slotted, arrivals *workload.ArrivalTrace, slotSeconds float64, drainSlots int) (Measurement, error) {
	if proto == nil {
		return Measurement{}, fmt.Errorf("experiments: nil protocol")
	}
	if arrivals == nil {
		return Measurement{}, fmt.Errorf("experiments: nil arrival trace")
	}
	if drainSlots < 0 {
		return Measurement{}, fmt.Errorf("experiments: drain slots %d must be non-negative", drainSlots)
	}
	counts, err := arrivals.Slotted(slotSeconds)
	if err != nil {
		return Measurement{}, fmt.Errorf("experiments: %w", err)
	}
	bw := metrics.NewBandwidth()
	for _, c := range counts {
		for a := 0; a < c; a++ {
			proto.Admit()
		}
		bw.Record(float64(proto.Advance()), slotSeconds)
	}
	for k := 0; k < drainSlots; k++ {
		bw.Record(float64(proto.Advance()), slotSeconds)
	}
	return Measurement{
		AvgBandwidth: bw.Mean(),
		MaxBandwidth: bw.Max(),
		Slots:        len(counts) + drainSlots,
	}, nil
}
