package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vodcast/internal/core"
	"vodcast/internal/experiments"
	"vodcast/internal/trace"
)

func TestTableValidate(t *testing.T) {
	good := Table{Title: "t", Columns: []string{"a", "b"}}
	good.AddRow("1", "2")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		tbl  Table
	}{
		{name: "no title", tbl: Table{Columns: []string{"a"}}},
		{name: "no columns", tbl: Table{Title: "x"}},
		{
			name: "ragged row",
			tbl:  Table{Title: "x", Columns: []string{"a", "b"}, Rows: [][]string{{"1"}}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tbl.Validate(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestRenderText(t *testing.T) {
	tbl := Table{Title: "demo", Columns: []string{"x", "y"}}
	tbl.AddRow("1", "2.00")
	tbl.AddRow("10", "20.00")
	var buf bytes.Buffer
	if err := RenderText(&buf, tbl, tbl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "demo") != 2 {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "20.00") {
		t.Fatalf("missing cell in %q", out)
	}
}

func TestRenderTextRejectsBadTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderText(&buf, Table{}); err == nil {
		t.Fatal("want error")
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	tbl := Table{Title: "j", Columns: []string{"a"}}
	tbl.AddRow("42")
	var buf bytes.Buffer
	if err := RenderJSON(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	var back []Table
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Title != "j" || back[0].Rows[0][0] != "42" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatalf("F = %q", F(3.14159, 2))
	}
	if I(7) != "7" || I64(-9) != "-9" {
		t.Fatal("integer helpers broken")
	}
}

// TestAllBuildersProduceValidTables runs every experiment at a tiny scale
// and feeds the rows through its table builder.
func TestAllBuildersProduceValidTables(t *testing.T) {
	cfg := experiments.QuickConfig()
	cfg.Rates = []float64{20}
	cfg.IncludeAblation = true
	sweep, err := experiments.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peaks, err := experiments.Peaks(30, 500)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := experiments.ClientCap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zoo, err := experiments.ReactiveZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dsb, err := experiments.DSBComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := experiments.Models(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := experiments.ConfidenceSweep(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	waits, err := experiments.WaitTradeoff(cfg, []int{9, 19})
	if err != nil {
		t.Fatal(err)
	}
	vbrCfg := experiments.QuickVBRConfig()
	vbrCfg.Rates = []float64{20}
	f9, plans, err := experiments.Fig9(vbrCfg)
	if err != nil {
		t.Fatal(err)
	}

	tables := []Table{
		Fig7(sweep),
		Fig8(sweep),
		Ablation(sweep),
		Peaks(peaks),
		ClientCap(caps),
		ReactiveZoo(zoo),
		DSB(dsb),
		Models(models),
		Confidence(ci),
		WaitTradeoff(waits),
		VBRPlan(plans, map[core.VBRVariant]float64{
			core.VariantA: f9[0].DHBA, core.VariantB: f9[0].DHBB,
			core.VariantC: f9[0].DHBC, core.VariantD: f9[0].DHBD,
		}),
	}
	tables = append(tables, Fig9(f9, plans)...)
	var buf bytes.Buffer
	if err := RenderText(&buf, tables...); err != nil {
		t.Fatal(err)
	}
	if err := RenderJSON(&buf, tables...); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output rendered")
	}
}

// TestFig9TableContent pins a couple of cells so a builder regression (wrong
// column, wrong units) cannot slip through.
func TestFig9TableContent(t *testing.T) {
	tr, err := trace.SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := core.PlanVBR(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	tables := Fig9([]experiments.Fig9Row{{RatePerHour: 10, UD: 5.13, DHBA: 3.05}}, plans)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	planRows := tables[0].Rows
	if planRows[0][0] != "DHB-a" || planRows[0][2] != "137" {
		t.Fatalf("plan row = %v", planRows[0])
	}
	sweepRows := tables[1].Rows
	if sweepRows[0][1] != "5.13" {
		t.Fatalf("sweep row = %v", sweepRows[0])
	}
}
