// Flashcrowd: premiere night — 500 customers request the same movie inside
// twenty minutes. The example replays the recorded burst through DHB and
// compares what reactive protocols would pay, the situation the paper's
// introduction says no conventional protocol handles well.
package main

import (
	"fmt"
	"log"

	"vodcast"
)

func main() {
	const (
		segments    = 99
		videoSecs   = 7200.0
		slotSeconds = videoSecs / segments
	)

	// Record the premiere-night arrival log: a trickle all evening, then
	// 500 requests in the 20 minutes after release.
	var times []float64
	for t := 0.0; t < 2*3600; t += 600 {
		times = append(times, t) // one request every 10 minutes before release
	}
	release := 2 * 3600.0
	for i := 0; i < 500; i++ {
		times = append(times, release+float64(i)*(1200.0/500))
	}
	tr, err := vodcast.NewArrivalTrace(times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrival log: %d requests over %.1f h (peak %.0f/h during the premiere)\n\n",
		tr.Count(), tr.Duration()/3600, 500/(1200.0/3600))

	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{Segments: segments})
	if err != nil {
		log.Fatal(err)
	}
	m, err := vodcast.Replay(vodcast.AdaptDHB(dhb), tr, slotSeconds, segments)
	if err != nil {
		log.Fatal(err)
	}

	burstRate := 500 / (1200.0 / 3600) // requests/hour during the burst
	patching, err := vodcast.ModelPatchingMean(burstRate, videoSecs)
	if err != nil {
		log.Fatal(err)
	}
	harmonic, err := vodcast.HarmonicBandwidth(segments)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DHB replaying the log:   avg %.2f streams, peak %.0f\n", m.AvgBandwidth, m.MaxBandwidth)
	fmt.Printf("DHB's hard ceiling:      H(%d) = %.2f streams no matter the crowd\n", segments, harmonic)
	fmt.Printf("optimal patching at the burst rate would need about %.0f streams\n", patching)
	fmt.Printf("plain unicast during the burst: 500 concurrent streams\n")
}
