package reactive

import (
	"testing"
)

func TestHMSMValidatesConfig(t *testing.T) {
	cfg := tapCfg(10, 1)
	cfg.RatePerHour = 0
	if _, err := HMSM(cfg); err == nil {
		t.Fatal("want error")
	}
}

func TestHMSMSingleRequestPlaysOut(t *testing.T) {
	cfg := tapCfg(1, 2)
	cfg.HorizonSeconds = 20 * 3600
	cfg.WarmupSeconds = 0
	res, err := HMSM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests simulated")
	}
	if res.AvgWait != 0 || res.MaxWait != 0 {
		t.Fatal("HMSM must offer zero-delay access")
	}
}

func TestHMSMBeatsTapping(t *testing.T) {
	// Hierarchical merging is the whole point: at moderate-to-high rates it
	// must need far less bandwidth than threshold patching.
	for _, rate := range []float64{10, 50, 200} {
		tap, err := Tapping(tapCfg(rate, 3))
		if err != nil {
			t.Fatal(err)
		}
		hm, err := HMSM(tapCfg(rate, 3))
		if err != nil {
			t.Fatal(err)
		}
		if hm.AvgBandwidth >= tap.AvgBandwidth {
			t.Errorf("rate %v: HMSM %.2f not below tapping %.2f", rate, hm.AvgBandwidth, tap.AvgBandwidth)
		}
	}
}

func TestHMSMLogarithmicGrowth(t *testing.T) {
	// The published bound: bandwidth within a small constant factor of
	// ln(1 + lambda D). Our conservative merge rule must stay above the
	// bound and below about 3x of it at every rate.
	for _, rate := range []float64{5, 20, 100, 500} {
		res, err := HMSM(tapCfg(rate, 7))
		if err != nil {
			t.Fatal(err)
		}
		lower := MergingLowerBound(rate, 7200)
		if res.AvgBandwidth < lower {
			t.Errorf("rate %v: HMSM %.2f below the merging lower bound %.2f", rate, res.AvgBandwidth, lower)
		}
		if res.AvgBandwidth > 3*lower {
			t.Errorf("rate %v: HMSM %.2f more than 3x the bound %.2f — merging broken?", rate, res.AvgBandwidth, lower)
		}
	}
}

func TestHMSMBandwidthGrowsWithRate(t *testing.T) {
	prev := 0.0
	for _, rate := range []float64{2, 20, 200} {
		res, err := HMSM(tapCfg(rate, 5))
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgBandwidth <= prev {
			t.Fatalf("HMSM bandwidth not increasing at rate %v: %.2f after %.2f", rate, res.AvgBandwidth, prev)
		}
		prev = res.AvgBandwidth
	}
}

func TestHMSMDeterministicPerSeed(t *testing.T) {
	a, err := HMSM(tapCfg(20, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HMSM(tapCfg(20, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestHMSMMostStreamsMerge(t *testing.T) {
	res, err := HMSM(tapCfg(100, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialStreams < res.CompleteStreams {
		t.Fatalf("at 100 req/h merging streams (%d) should dominate full streams (%d)",
			res.PartialStreams, res.CompleteStreams)
	}
}

func TestPiggybackingValidation(t *testing.T) {
	if _, err := Piggybacking(tapCfg(10, 1), 0); err == nil {
		t.Fatal("zero delta should error")
	}
	if _, err := Piggybacking(tapCfg(10, 1), 0.5); err == nil {
		t.Fatal("delta 0.5 should error")
	}
	cfg := tapCfg(10, 1)
	cfg.VideoSeconds = -1
	if _, err := Piggybacking(cfg, 0.05); err == nil {
		t.Fatal("bad config should error")
	}
}

func TestPiggybackingSavesOverUnicast(t *testing.T) {
	// Every arrival starts a stream; without merging the average would be
	// lambda*D streams. Piggybacking's 5% rate alteration must recover a
	// visible fraction at moderate rates.
	cfg := tapCfg(20, 13)
	res, err := Piggybacking(cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	unicast := 20.0 / 3600 * 7200 // lambda * D = 40 streams
	if res.AvgBandwidth >= unicast {
		t.Fatalf("piggybacking %.2f no better than unicast %.0f", res.AvgBandwidth, unicast)
	}
	if res.PartialStreams == 0 {
		t.Fatal("no merges happened")
	}
}

func TestPiggybackingWeakerThanBufferedMerging(t *testing.T) {
	// A 5% rate alteration can only merge streams within ~10% of the video
	// of each other, so piggybacking must cost more than tapping (which
	// buffers) at the same rate.
	cfg := tapCfg(50, 15)
	pb, err := Piggybacking(cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tap, err := Tapping(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pb.AvgBandwidth <= tap.AvgBandwidth {
		t.Fatalf("piggybacking %.2f unexpectedly beat tapping %.2f", pb.AvgBandwidth, tap.AvgBandwidth)
	}
}

func TestPiggybackingDeterministicPerSeed(t *testing.T) {
	a, err := Piggybacking(tapCfg(30, 17), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Piggybacking(tapCfg(30, 17), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestPiggybackingLargerDeltaMergesMore(t *testing.T) {
	cfg := tapCfg(30, 19)
	small, err := Piggybacking(cfg, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Piggybacking(cfg, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if large.AvgBandwidth >= small.AvgBandwidth {
		t.Fatalf("delta 0.10 bandwidth %.2f not below delta 0.02 bandwidth %.2f",
			large.AvgBandwidth, small.AvgBandwidth)
	}
}
