// Package vodclient is the set-top-box side of the networked DHB system: it
// requests a video from a vodserver, receives the broadcast segment frames,
// verifies every payload byte and every delivery deadline with the STB
// oracle of internal/client, and reports what it observed.
package vodclient

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"vodcast/internal/client"
	"vodcast/internal/wire"
)

// Result describes one completed fetch.
type Result struct {
	// VideoID and Segments echo the schedule the server granted.
	VideoID  uint32
	Segments int
	// AdmitSlot is the slot the request was admitted in.
	AdmitSlot uint64
	// PayloadBytes counts verified video bytes received.
	PayloadBytes int64
	// SharedFrames counts segment frames that arrived for segments the
	// client already held (broadcast transmissions scheduled for other
	// overlapping customers).
	SharedFrames int
	// MaxBuffered is the peak number of segments held before consumption.
	MaxBuffered int
	// Elapsed is the wall-clock duration of the session.
	Elapsed time.Duration
	// FirstByte is the wall-clock delay from sending the request to the
	// first broadcast payload byte, the client-side view of the server's
	// vod_admit_first_byte_seconds histogram.
	FirstByte time.Duration
}

// Fetch requests videoID from the server at addr, receives until every
// segment has arrived and every deadline has been checked, and returns the
// session summary. The timeout bounds the whole session.
func Fetch(addr string, videoID uint32, timeout time.Duration) (Result, error) {
	return FetchFrom(addr, videoID, 1, timeout)
}

// FetchFrom is Fetch for an interactive customer resuming playback at
// segment from (1 = the beginning).
func FetchFrom(addr string, videoID, from uint32, timeout time.Duration) (Result, error) {
	if timeout <= 0 {
		return Result{}, fmt.Errorf("vodclient: timeout %v must be positive", timeout)
	}
	if from < 1 {
		return Result{}, fmt.Errorf("vodclient: resume segment %d must be at least 1", from)
	}
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: dial: %w", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return Result{}, fmt.Errorf("vodclient: set deadline: %w", err)
	}

	if err := wire.WriteFrame(conn, wire.Request{VideoID: videoID, FromSegment: from}); err != nil {
		return Result{}, fmt.Errorf("vodclient: send request: %w", err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: read schedule: %w", err)
	}
	var info wire.ScheduleInfo
	switch m := msg.(type) {
	case wire.ScheduleInfo:
		info = m
	case wire.ErrorMsg:
		return Result{}, fmt.Errorf("vodclient: server rejected request: %s", m.Text)
	default:
		return Result{}, fmt.Errorf("vodclient: unexpected %T before schedule", msg)
	}
	if info.VideoID != videoID {
		return Result{}, fmt.Errorf("vodclient: schedule for video %d, requested %d", info.VideoID, videoID)
	}

	if from > info.Segments {
		return Result{}, fmt.Errorf("vodclient: resume segment %d beyond %d", from, info.Segments)
	}

	// Rebuild the 1-based period vector and arm the STB oracle.
	periods := make([]int, info.Segments+1)
	for j := uint32(1); j <= info.Segments; j++ {
		periods[j] = int(info.Periods[j-1])
	}
	stb, err := client.NewFrom(int(info.AdmitSlot), periods, int(from))
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: %w", err)
	}

	res := Result{
		VideoID:   info.VideoID,
		Segments:  int(info.Segments),
		AdmitSlot: info.AdmitSlot,
	}
	// The session ends when the shifted suffix's last deadline passes.
	lastSlot := int(info.AdmitSlot) + maxPeriod(periods[:int(info.Segments)-int(from)+2])
	var slotSegments []int
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return Result{}, fmt.Errorf("vodclient: read frame: %w", err)
		}
		switch m := msg.(type) {
		case wire.Segment:
			if m.VideoID != videoID {
				return Result{}, fmt.Errorf("vodclient: frame for video %d on a video-%d subscription", m.VideoID, videoID)
			}
			if res.FirstByte == 0 {
				res.FirstByte = time.Since(start)
			}
			if m.Segment < 1 || m.Segment > info.Segments {
				return Result{}, fmt.Errorf("vodclient: frame for unknown segment %d", m.Segment)
			}
			want := wire.SegmentPayload(m.VideoID, m.Segment, info.SizeOf(m.Segment))
			if !bytes.Equal(m.Payload, want) {
				return Result{}, fmt.Errorf("vodclient: corrupt payload for segment %d", m.Segment)
			}
			if stb.Received(int(m.Segment)) {
				res.SharedFrames++
			}
			res.PayloadBytes += int64(len(m.Payload))
			slotSegments = append(slotSegments, int(m.Segment))
		case wire.SlotEnd:
			if err := stb.ObserveSlot(int(m.Slot), slotSegments); err != nil {
				return Result{}, fmt.Errorf("vodclient: %w", err)
			}
			slotSegments = slotSegments[:0]
			if int(m.Slot) >= lastSlot {
				if !stb.Complete() {
					return Result{}, fmt.Errorf("vodclient: stream ended with segments missing")
				}
				res.MaxBuffered = stb.MaxBuffered()
				res.Elapsed = time.Since(start)
				return res, nil
			}
		case wire.ErrorMsg:
			return Result{}, fmt.Errorf("vodclient: server error: %s", m.Text)
		default:
			return Result{}, fmt.Errorf("vodclient: unexpected frame %T", msg)
		}
	}
}

func maxPeriod(periods []int) int {
	max := 0
	for _, p := range periods[1:] {
		if p > max {
			max = p
		}
	}
	return max
}
