// Package server simulates a complete video-on-demand server distributing a
// catalogue of videos with the DHB protocol over a shared channel pool. The
// paper's introduction motivates exactly this setting: per-video demand that
// swings with the time of day and a catalogue whose popularity is heavily
// skewed, where a protocol must behave well at every request rate at once.
//
// The simulation is a thin deterministic driver over the same
// internal/station broadcast engine the network server uses: it feeds the
// station synthetic Zipf-skewed arrivals and advances its clock by hand, so
// every behaviour measured here is the behaviour a live deployment ships.
package server

import (
	"fmt"

	"vodcast/internal/core"
	"vodcast/internal/metrics"
	"vodcast/internal/obs"
	"vodcast/internal/sim"
	"vodcast/internal/station"
	"vodcast/internal/workload"
)

// VideoSpec describes one catalogue entry.
type VideoSpec struct {
	// Name labels the video in reports.
	Name string
	// Segments is the DHB segment count n.
	Segments int
	// Periods optionally carries a DHB-d period vector; nil selects the
	// CBR default.
	Periods []int
	// Rate is the per-stream bandwidth (stream units or bytes per second).
	Rate float64
}

// Config parameterizes a server simulation.
type Config struct {
	// Videos is the catalogue, ordered from most to least popular.
	Videos []VideoSpec
	// ZipfSkew shapes the popularity law across the catalogue (0 =
	// uniform, 1 = classic Zipf).
	ZipfSkew float64
	// Arrivals is the aggregate request rate across all videos.
	Arrivals workload.RateFunc
	// SlotSeconds is the shared slot duration d.
	SlotSeconds float64
	// HorizonSlots is the simulated span; WarmupSlots are excluded from
	// the statistics.
	HorizonSlots int
	WarmupSlots  int
	// ChannelCapacity, when positive, is the provisioned channel pool (in
	// the units of VideoSpec.Rate). The simulation still transmits
	// everything — DHB schedules ahead, so shedding would break its
	// guarantee — but the report carries how often and how far the load
	// exceeded the pool, the capacity-planning question Section 4's
	// "empty slots could be shared by other videos" raises.
	ChannelCapacity float64
	// DeferRequests additionally turns the capacity into admission
	// control: a request arriving while the next slot's scheduled load has
	// already reached the pool is queued and retried one slot later, so
	// overload degrades waiting times instead of bandwidth. It requires
	// ChannelCapacity > 0.
	DeferRequests bool
	// Shards is passed through to the station engine (0 selects its
	// default). The simulation is deterministic for every value: admissions
	// are issued sequentially in arrival order and per-video schedules are
	// independent.
	Shards int
	// Registry optionally receives the station's per-shard counters and
	// pipeline-stage instruments, so a simulation run exposes the same
	// observability surface as the networked server (useful for calibrating
	// stage budgets offline before a deployment).
	Registry *obs.Registry
	// Seed drives the deterministic RNG.
	Seed int64
}

// VideoReport summarizes one video's share of a run.
type VideoReport struct {
	Name         string
	Requests     int64
	AvgBandwidth float64
	MaxBandwidth float64
}

// Report summarizes a run. Bandwidths are in the units of VideoSpec.Rate.
type Report struct {
	// AvgBandwidth and MaxBandwidth aggregate the whole channel pool.
	AvgBandwidth float64
	MaxBandwidth float64
	// AvgWaitSeconds and MaxWaitSeconds cover all customers (a customer
	// waits for the start of the next slot).
	AvgWaitSeconds float64
	MaxWaitSeconds float64
	Requests       int64
	// P99Bandwidth is the 99th-percentile aggregate load, the usual
	// provisioning target.
	P99Bandwidth float64
	// OverflowFraction and OverflowExcess describe how the load relates to
	// Config.ChannelCapacity: the fraction of measured time above the pool
	// and the time-average excess while above it. Both are zero when no
	// capacity was configured.
	OverflowFraction float64
	OverflowExcess   float64
	// DeferredRequests counts admissions postponed by admission control
	// (Config.DeferRequests); MaxQueue is the longest deferral queue seen.
	DeferredRequests int64
	MaxQueue         int
	PerVideo         []VideoReport
}

// Server is a configured simulation. Build with New, execute with Run.
type Server struct {
	cfg     Config
	zipf    *workload.Zipf
	rng     *sim.RNG
	station *station.Station
	// loadScratch is reused across projectedNextLoad calls.
	loadScratch []int
}

// New validates cfg and prepares the broadcast engine.
func New(cfg Config) (*Server, error) {
	if len(cfg.Videos) == 0 {
		return nil, ErrEmptyCatalogue
	}
	if cfg.Arrivals == nil {
		return nil, ErrNilArrivals
	}
	if cfg.SlotSeconds <= 0 {
		return nil, fmt.Errorf("%w: got %v", ErrBadSlotDuration, cfg.SlotSeconds)
	}
	if cfg.HorizonSlots <= cfg.WarmupSlots {
		return nil, fmt.Errorf("%w: horizon %d, warmup %d", ErrBadHorizon, cfg.HorizonSlots, cfg.WarmupSlots)
	}
	if cfg.ChannelCapacity < 0 {
		return nil, fmt.Errorf("%w: got %v", ErrBadCapacity, cfg.ChannelCapacity)
	}
	if cfg.DeferRequests && cfg.ChannelCapacity <= 0 {
		return nil, ErrBadDeferral
	}
	zipf, err := workload.NewZipf(len(cfg.Videos), cfg.ZipfSkew)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	videos := make([]station.VideoConfig, len(cfg.Videos))
	for i, v := range cfg.Videos {
		if v.Rate <= 0 {
			return nil, fmt.Errorf("%w: video %q has rate %v", ErrBadRate, v.Name, v.Rate)
		}
		videos[i] = station.VideoConfig{Name: v.Name, Segments: v.Segments, Periods: v.Periods}
	}
	st, err := station.New(station.Config{Videos: videos, Shards: cfg.Shards, Registry: cfg.Registry})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &Server{
		cfg:     cfg,
		zipf:    zipf,
		rng:     sim.NewRNG(cfg.Seed),
		station: st,
	}, nil
}

// Station exposes the underlying broadcast engine so callers that passed a
// Registry can read Status snapshots alongside the simulation report.
func (s *Server) Station() *station.Station { return s.station }

// pendingReq is a customer waiting for admission under deferral control.
type pendingReq struct {
	video       int
	arrivalSlot int
	// baseWait is the partial-slot wait the customer always pays.
	baseWait float64
	measured bool
}

// projectedNextLoad reports the aggregate load already scheduled for the
// next transmission slot, the quantity admission control gates on.
func (s *Server) projectedNextLoad() float64 {
	s.loadScratch = s.station.NextLoads(s.loadScratch)
	load := 0.0
	for i, l := range s.loadScratch {
		load += float64(l) * s.cfg.Videos[i].Rate
	}
	return load
}

// Run executes the simulation and returns its report.
func (s *Server) Run() Report {
	var (
		cfg      = s.cfg
		total    = metrics.NewBandwidth()
		perVideo = make([]*metrics.Bandwidth, len(cfg.Videos))
		waits    = metrics.NewWait()
		requests = make([]int64, len(cfg.Videos))
		arrivals = workload.NewSlottedArrivals(s.rng, cfg.Arrivals, cfg.SlotSeconds)

		overflowSlots int
		overflowSum   float64

		pending  []pendingReq
		deferred int64
		maxQueue int
	)
	for i := range perVideo {
		perVideo[i] = metrics.NewBandwidth()
	}
	for slot := 0; slot < cfg.HorizonSlots; slot++ {
		for a := 0; a < arrivals.Next(); a++ {
			pending = append(pending, pendingReq{
				video:       s.zipf.Sample(s.rng),
				arrivalSlot: slot,
				// The customer arrived uniformly inside the slot and waits
				// at least until the next slot boundary.
				baseWait: (1 - s.rng.Float64()) * cfg.SlotSeconds,
				measured: slot >= cfg.WarmupSlots,
			})
		}
		if len(pending) > maxQueue {
			maxQueue = len(pending)
		}
		// Admit in arrival order; under deferral control, stop at the
		// first customer the channel pool cannot take and retry the rest
		// next slot.
		admitted := 0
		for _, req := range pending {
			if cfg.DeferRequests && s.projectedNextLoad() >= cfg.ChannelCapacity {
				break
			}
			// The error is impossible: the index came from the Zipf sampler
			// and the station is never closed during Run.
			_, _ = s.station.Admit(req.video, core.AdmitOptions{})
			requests[req.video]++
			admitted++
			if req.measured {
				waits.Record(req.baseWait + float64(slot-req.arrivalSlot)*cfg.SlotSeconds)
			}
			if slot > req.arrivalSlot {
				deferred++
			}
		}
		pending = pending[admitted:]
		aggregate := 0.0
		for i, rep := range s.station.AdvanceSlot() {
			weighted := float64(rep.Load) * cfg.Videos[i].Rate
			aggregate += weighted
			if slot >= cfg.WarmupSlots {
				perVideo[i].Record(weighted, cfg.SlotSeconds)
			}
		}
		if slot >= cfg.WarmupSlots {
			total.Record(aggregate, cfg.SlotSeconds)
			if cfg.ChannelCapacity > 0 && aggregate > cfg.ChannelCapacity {
				overflowSlots++
				overflowSum += aggregate - cfg.ChannelCapacity
			}
		}
	}
	measured := cfg.HorizonSlots - cfg.WarmupSlots
	rep := Report{
		AvgBandwidth:   total.Mean(),
		MaxBandwidth:   total.Max(),
		AvgWaitSeconds: waits.Mean(),
		MaxWaitSeconds: waits.Max(),
		P99Bandwidth:   float64(total.Quantile(0.99)),
		PerVideo:       make([]VideoReport, len(cfg.Videos)),
	}
	if cfg.ChannelCapacity > 0 && measured > 0 {
		rep.OverflowFraction = float64(overflowSlots) / float64(measured)
		if overflowSlots > 0 {
			rep.OverflowExcess = overflowSum / float64(overflowSlots)
		}
	}
	// Customers still queued at the horizon were deferred too.
	rep.DeferredRequests = deferred + int64(len(pending))
	rep.MaxQueue = maxQueue
	for i, v := range cfg.Videos {
		rep.Requests += requests[i]
		rep.PerVideo[i] = VideoReport{
			Name:         v.Name,
			Requests:     requests[i],
			AvgBandwidth: perVideo[i].Mean(),
			MaxBandwidth: perVideo[i].Max(),
		}
	}
	return rep
}
