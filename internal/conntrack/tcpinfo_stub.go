//go:build !linux

package conntrack

import "syscall"

// readTCPInfo on non-Linux platforms reports no kernel telemetry; the
// classifier runs on the userspace ring/drain signals alone.
func readTCPInfo(syscall.RawConn) (TCPInfo, bool) {
	return TCPInfo{}, false
}
