// Command vodload is the closed-loop load harness for vodserver: it drives
// a server with concurrent QoE-tracking client sessions over a bounded
// connection pool, steps the fleet through a ramp, soak or spike profile,
// renders live capacity telemetry while it runs, and gates every step's
// measurements against the analytic DHB envelopes — exiting non-zero when
// the server breaks its own capacity model.
//
// Usage, against a running server:
//
//	vodserver -addr 127.0.0.1:4800 -stats-addr 127.0.0.1:4900 &
//	vodload -addr 127.0.0.1:4800 -status-addr 127.0.0.1:4900 -sessions 200 -duration 30s
//
// or fully self-contained (boots an in-process server, wires its live
// counters into the server's /statusz so vodtop shows the load pane):
//
//	vodload -sessions 200 -duration 2s -report BENCH_load.json
//
// The exit status is the gate verdict: 0 when every gated step sat inside
// the analytic envelopes, 1 when any check failed, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"vodcast/internal/load"
	"vodcast/internal/vodserver"
	"vodcast/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "", "vodserver address; empty boots a self-contained in-process server")
		statusAddr = flag.String("status-addr", "", "server stats address for the bandwidth gate (automatic in self-contained mode)")

		sessions = flag.Int("sessions", 200, "peak concurrent sessions")
		steps    = flag.Int("steps", 3, "ramp plateaus (ramp profile)")
		duration = flag.Duration("duration", 6*time.Second, "total run duration across all steps")
		profile  = flag.String("profile", "ramp", "load shape: ramp, soak or spike")
		base     = flag.Int("base", 0, "spike profile base sessions (0 = sessions/10)")

		videos       = flag.Int("videos", 2, "catalogue size, video ids 1..n")
		segments     = flag.Int("segments", 6, "segments per video (self-contained server)")
		segmentBytes = flag.Int("segment-bytes", 64, "payload bytes per segment (self-contained server)")
		slotMillis   = flag.Int("slot-ms", 10, "slot duration in milliseconds (self-contained server)")

		conns    = flag.Int("conns", 256, "connection pool bound the sessions multiplex over")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-session timeout, dial included")
		seed     = flag.Int64("seed", 1, "video sampling seed")
		skew     = flag.Float64("skew", 1.0, "Zipf popularity skew across the catalogue")
		rate     = flag.Float64("rate", 0, "open-loop arrival pacing in requests/hour (0 = fully closed loop)")
		interval = flag.Duration("interval", time.Second, "live progress interval")

		reportPath   = flag.String("report", "", "write the final JSON report here (empty = stdout)")
		stepLog      = flag.String("step-log", "", "append one JSON line per finished step here")
		noGate       = flag.Bool("no-gate", false, "measure only; skip the analytic pass/fail gate")
		historyEvery = flag.Duration("history-interval", 250*time.Millisecond, "self-contained server's metric history scrape interval (feeds the /queryz cross-check)")
	)
	flag.Parse()
	code, err := run(runOpts{
		addr: *addr, statusAddr: *statusAddr,
		sessions: *sessions, steps: *steps, duration: *duration,
		profile: *profile, base: *base,
		videos: *videos, segments: *segments, segmentBytes: *segmentBytes, slotMillis: *slotMillis,
		conns: *conns, timeout: *timeout, seed: *seed, skew: *skew, rate: *rate,
		interval: *interval, reportPath: *reportPath, stepLog: *stepLog, noGate: *noGate,
		historyEvery: *historyEvery,
	}, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodload:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// runOpts carries the parsed flag set.
type runOpts struct {
	addr, statusAddr                           string
	sessions, steps, base                      int
	duration, timeout, interval                time.Duration
	profile                                    string
	videos, segments, segmentBytes, slotMillis int
	conns                                      int
	seed                                       int64
	skew, rate                                 float64
	reportPath, stepLog                        string
	noGate                                     bool
	historyEvery                               time.Duration
}

// run executes one harness run and returns the process exit code (the gate
// verdict). Usage and setup problems surface as errors instead.
func run(o runOpts, stdout, stderr io.Writer) (int, error) {
	if o.videos <= 0 {
		return 0, fmt.Errorf("video count %d must be positive", o.videos)
	}
	catalogue := make([]uint32, o.videos)
	for i := range catalogue {
		catalogue[i] = uint32(i + 1)
	}

	prof, err := buildProfile(o)
	if err != nil {
		return 0, err
	}

	addr, statusAddr := o.addr, o.statusAddr
	var wire func(*load.Harness) // self-contained mode publishes Live into /statusz
	if addr == "" {
		srv, err := vodserver.Start(vodserver.Config{
			Addr:         "127.0.0.1:0",
			StatsAddr:    "127.0.0.1:0",
			Videos:       selfCatalogue(catalogue, o.segments, o.segmentBytes),
			SlotDuration: time.Duration(o.slotMillis) * time.Millisecond,
			// Fast scrapes so even short runs give the /queryz cross-check a
			// dense range per step.
			HistoryInterval: o.historyEvery,
		})
		if err != nil {
			return 0, fmt.Errorf("self-contained server: %w", err)
		}
		defer srv.Close()
		addr, statusAddr = srv.Addr(), srv.StatsAddr()
		fmt.Fprintf(stderr, "vodload: self-contained server on %s (statusz on %s)\n", addr, statusAddr)
		wire = func(h *load.Harness) {
			srv.SetLoadStatus(func() vodserver.LoadStatus {
				return vodserver.LoadStatus(h.Live())
			})
		}
	}

	var stepW io.Writer
	if o.stepLog != "" {
		f, err := os.OpenFile(o.stepLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, fmt.Errorf("step log: %w", err)
		}
		defer f.Close()
		stepW = f
	}
	var arrivals workload.RateFunc
	if o.rate > 0 {
		arrivals = workload.Soak(o.rate)
	}

	h, err := load.New(load.Config{
		Addr:           addr,
		StatusAddr:     statusAddr,
		Videos:         catalogue,
		ZipfSkew:       o.skew,
		Profile:        prof,
		MaxConns:       o.conns,
		SessionTimeout: o.timeout,
		Seed:           o.seed,
		Interval:       o.interval,
		Progress:       stderr,
		StepLog:        stepW,
		Arrivals:       arrivals,
		Gate:           load.Gate{Disabled: o.noGate},
	})
	if err != nil {
		return 0, err
	}
	if wire != nil {
		wire(h)
	}

	// Interrupt stops the run at the next session boundary; the report then
	// covers the completed steps and fails the gate.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		<-sig
		close(done)
	}()

	report, err := h.Run(done)
	if err != nil {
		return 0, err
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return 0, err
	}
	if o.reportPath == "" {
		fmt.Fprintf(stdout, "%s\n", out)
	} else if err := os.WriteFile(o.reportPath, append(out, '\n'), 0o644); err != nil {
		return 0, fmt.Errorf("report: %w", err)
	}

	// The history cross-check summary: how many steps had the server's own
	// /queryz range verified against its /statusz counters.
	crossChecked := 0
	for _, st := range report.Steps {
		for _, c := range st.Checks {
			if c.Name == "history_requests_delta" {
				crossChecked++
				break
			}
		}
	}
	if crossChecked > 0 {
		fmt.Fprintf(stderr, "vodload: history cross-check evaluated on %d/%d steps\n", crossChecked, len(report.Steps))
	}

	if report.Pass {
		fmt.Fprintf(stderr, "vodload: PASS — %d steps inside the analytic envelopes\n", len(report.Steps))
		return 0, nil
	}
	fmt.Fprintf(stderr, "vodload: FAIL\n")
	for _, f := range report.Failures {
		fmt.Fprintf(stderr, "  %s\n", f)
	}
	return 1, nil
}

// buildProfile assembles the step sequence the flags describe.
func buildProfile(o runOpts) ([]load.Step, error) {
	switch strings.ToLower(o.profile) {
	case "ramp":
		return load.RampProfile(o.sessions, o.steps, o.duration)
	case "soak":
		return load.SoakProfile(o.sessions, o.duration)
	case "spike":
		base := o.base
		if base == 0 {
			base = o.sessions / 10
		}
		if base < 1 {
			base = 1
		}
		return load.SpikeProfile(base, o.sessions, o.duration)
	default:
		return nil, fmt.Errorf("unknown profile %q (want ramp, soak or spike)", o.profile)
	}
}

// selfCatalogue builds the in-process server's video set.
func selfCatalogue(ids []uint32, segments, segmentBytes int) []vodserver.VideoConfig {
	vs := make([]vodserver.VideoConfig, len(ids))
	for i, id := range ids {
		vs[i] = vodserver.VideoConfig{ID: id, Segments: segments, SegmentBytes: segmentBytes}
	}
	return vs
}
