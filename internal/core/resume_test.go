package core

import (
	"testing"

	"vodcast/internal/sim"
)

func TestAdmitFromValidation(t *testing.T) {
	s := mustNew(t, Config{Segments: 10})
	// AdmitRequest reads From 0 as "the beginning" — only genuinely
	// out-of-range resume points are rejected.
	if _, err := admitFrom(s, -1); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := admitFrom(s, 11); err == nil {
		t.Error("from beyond n accepted")
	}
}

func TestAdmitFromOneEqualsAdmit(t *testing.T) {
	a := mustNew(t, Config{Segments: 15, StartSlot: 1})
	b := mustNew(t, Config{Segments: 15, StartSlot: 1})
	fromOne, err := admitFromTraced(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := admitTraced(b)
	for j := 1; j <= 15; j++ {
		if fromOne[j] != plain[j] {
			t.Fatalf("segment %d: resume-from-1 slot %d vs admit slot %d", j, fromOne[j], plain[j])
		}
	}
}

func TestResumeDeadlines(t *testing.T) {
	// A resume from segment k consumes segment j during slot i + (j-k+1),
	// so the instance must arrive no later than that.
	s := mustNew(t, Config{Segments: 12, StartSlot: 1})
	got, err := admitFromTraced(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 4; j++ {
		if got[j] != 0 {
			t.Fatalf("segment %d scheduled for a resume from 5", j)
		}
	}
	for j := 5; j <= 12; j++ {
		deadline := 1 + (j - 5 + 1)
		if got[j] < 2 || got[j] > deadline {
			t.Fatalf("segment %d served at slot %d outside [2, %d]", j, got[j], deadline)
		}
	}
}

func TestResumeSharesWithOrdinaryRequests(t *testing.T) {
	s := mustNew(t, Config{Segments: 20, StartSlot: 1})
	admit(s) // full request schedules S_j at slot 1+j
	// A resume from segment 10 in the same slot needs S10..S20 by slots
	// 2..12; the full request's instances sit at 11..21, too late for the
	// early suffix but fine for nothing — the resume must schedule its own
	// early copies yet share none too late.
	added, err := admitFrom(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("resume shared instances that violate its deadlines")
	}
	if added > 11 {
		t.Fatalf("resume scheduled %d instances for an 11-segment suffix", added)
	}
}

func TestOrdinaryRequestsShareResumeInstances(t *testing.T) {
	s := mustNew(t, Config{Segments: 10, StartSlot: 1})
	if _, err := admitFrom(s, 6); err != nil {
		t.Fatal(err)
	}
	// Segments 6..10 now sit in slots 2..6. A full request in the same
	// slot has deadlines 1+j >= those slots, so it shares all of them.
	added := admit(s)
	if added != 5 {
		t.Fatalf("full request scheduled %d new instances, want 5 (S1..S5 only)", added)
	}
}

func TestResumeTimelinessUnderLoad(t *testing.T) {
	s := mustNew(t, Config{Segments: 25})
	rng := sim.NewRNG(91)
	for step := 0; step < 3000; step++ {
		i := s.CurrentSlot()
		for a := 0; a < rng.Poisson(0.5); a++ {
			from := 1 + rng.Intn(25)
			got, err := admitFromTraced(s, from)
			if err != nil {
				t.Fatal(err)
			}
			for j := from; j <= 25; j++ {
				deadline := i + (j - from + 1)
				if got[j] < i+1 || got[j] > deadline {
					t.Fatalf("resume from %d at slot %d: segment %d served at %d outside [%d, %d]",
						from, i, j, got[j], i+1, deadline)
				}
			}
		}
		s.AdvanceSlot()
	}
}

func TestResumeCappedRespectsClientBandwidth(t *testing.T) {
	s := mustNew(t, Config{Segments: 20, MaxClientStreams: 2})
	rng := sim.NewRNG(93)
	for step := 0; step < 2500; step++ {
		i := s.CurrentSlot()
		for a := 0; a < rng.Poisson(0.6); a++ {
			from := 1 + rng.Intn(20)
			got, err := admitFromTraced(s, from)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[int]int)
			for j := from; j <= 20; j++ {
				deadline := i + (j - from + 1)
				if got[j] < i+1 || got[j] > deadline {
					t.Fatalf("capped resume: segment %d at %d outside [%d, %d]", j, got[j], i+1, deadline)
				}
				counts[got[j]]++
				if counts[got[j]] > 2 {
					t.Fatalf("capped resume downloads %d streams at once", counts[got[j]])
				}
			}
		}
		s.AdvanceSlot()
	}
}

func TestResumeFromLastSegment(t *testing.T) {
	s := mustNew(t, Config{Segments: 8, StartSlot: 1})
	added, err := admitFrom(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("resume from the final segment scheduled %d instances, want 1", added)
	}
	if got := s.ScheduledAt(2); got != nil {
		t.Skip("tracking disabled") // tracking off in this config
	}
}

func TestResumeConservation(t *testing.T) {
	s := mustNew(t, Config{Segments: 15})
	rng := sim.NewRNG(95)
	var transmitted int64
	for step := 0; step < 2000; step++ {
		for a := 0; a < rng.Poisson(0.4); a++ {
			if _, err := admitFrom(s, 1+rng.Intn(15)); err != nil {
				t.Fatal(err)
			}
		}
		transmitted += int64(s.AdvanceSlot().Load)
	}
	for k := 0; k <= 15; k++ {
		transmitted += int64(s.AdvanceSlot().Load)
	}
	if transmitted != s.Instances() {
		t.Fatalf("transmitted %d, scheduled %d", transmitted, s.Instances())
	}
}
