package wire

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatalf("write %T: %v", msg, err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", msg, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []any{
		Request{VideoID: 7},
		ScheduleInfo{
			VideoID:      1,
			Segments:     3,
			SlotMillis:   50,
			SegmentBytes: 4096,
			AdmitSlot:    123456789,
			Periods:      []uint32{1, 2, 3},
		},
		Segment{VideoID: 2, Segment: 9, Slot: 42, Payload: []byte("hello segment")},
		SlotEnd{Slot: 99},
		ErrorMsg{Text: "no such video"},
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip %T:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}

// TestRoundTripVersionedFrames covers the v2 layouts: versioned requests
// with flags and trace ids, schedule infos carrying the negotiated version
// and trace block (with and without VBR sizes), and the client report.
func TestRoundTripVersionedFrames(t *testing.T) {
	msgs := []any{
		Request{VideoID: 7, FromSegment: 3, Version: ProtoV2},
		Request{VideoID: 7, Version: ProtoV2, Flags: FlagNoReport | FlagNoTrace,
			TraceID: 0xDEADBEEF, SpanID: 42},
		ScheduleInfo{
			VideoID: 1, Segments: 3, SlotMillis: 50, SegmentBytes: 4096,
			AdmitSlot: 123456789, Version: ProtoV2, TraceID: 99, SpanID: 100,
			Periods: []uint32{1, 2, 3},
		},
		ScheduleInfo{
			VideoID: 1, Segments: 2, SlotMillis: 50, AdmitSlot: 5,
			Version: ProtoV2, Periods: []uint32{1, 2}, SegmentSizes: []uint32{64, 80},
		},
		ScheduleInfo{Version: ProtoV2, TraceID: 1, SpanID: 2}, // zero segments
		ClientReport{
			Version: ProtoV2, VideoID: 4, TraceID: 11, SpanID: 12, AdmitSlot: 9,
			FromSegment: 2, SegmentsNeeded: 5, SegmentsReceived: 4, SharedFrames: 3,
			StartupSlots: 1, DeadlineMisses: 1, Rebuffers: 1, MaxBuffered: 2,
			SessionSlots: 6, MinSlackSlots: -2, SumSlackSlots: 7, PayloadBytes: 1 << 40,
		},
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip %T:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}

// TestVersionNegotiationLayouts pins the backward-compat contract: a
// versionless request is exactly the original 8 bytes, versioned frames are
// structurally distinguishable, and half-versioned frames are rejected at
// encode time.
func TestVersionNegotiationLayouts(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Request{VideoID: 3, FromSegment: 2}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5+8 {
		t.Fatalf("versionless request is %d bytes on the wire, want 13", buf.Len())
	}
	buf.Reset()
	if err := WriteFrame(&buf, Request{VideoID: 3, Version: ProtoV2}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5+28 {
		t.Fatalf("v2 request is %d bytes on the wire, want 33", buf.Len())
	}

	// Trace fields without a version must not silently vanish.
	if err := WriteFrame(&buf, Request{VideoID: 3, TraceID: 1}); err == nil {
		t.Error("request with trace id but no version accepted")
	}
	if err := WriteFrame(&buf, Request{VideoID: 3, Version: ProtoV1}); err == nil {
		t.Error("request with explicit v1 layout accepted")
	}
	if err := WriteFrame(&buf, ScheduleInfo{Segments: 1, Periods: []uint32{1}, TraceID: 9}); err == nil {
		t.Error("schedule info with trace id but no version accepted")
	}
	if err := WriteFrame(&buf, ClientReport{Version: 0}); err == nil {
		t.Error("versionless client report accepted")
	}

	// A decoded versioned frame must announce at least v2.
	buf.Reset()
	if err := WriteFrame(&buf, Request{VideoID: 3, Version: ProtoV2}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5+9] = 0 // patch announced version to 0
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("versioned request announcing version 0 accepted")
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	got := roundTrip(t, Segment{VideoID: 1, Segment: 1, Slot: 1, Payload: []byte{}})
	seg, ok := got.(Segment)
	if !ok || len(seg.Payload) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(video, segment uint32, slot uint64, payload []byte) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		msg := Segment{VideoID: video, Segment: segment, Slot: slot, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		seg, ok := got.(Segment)
		if !ok {
			return false
		}
		return seg.VideoID == video && seg.Segment == segment && seg.Slot == slot &&
			bytes.Equal(seg.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := WriteFrame(&buf, SlotEnd{Slot: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.(SlotEnd).Slot != i {
			t.Fatalf("frame %d out of order: %+v", i, got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestWriteRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, struct{}{}); err == nil {
		t.Error("unknown type accepted")
	}
	if err := WriteFrame(&buf, ScheduleInfo{Segments: 2, Periods: []uint32{1}}); err == nil {
		t.Error("mismatched periods accepted")
	}
	if err := WriteFrame(&buf, Segment{Payload: make([]byte, MaxBody+1)}); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		raw  []byte
	}{
		{name: "unknown type", raw: []byte{0xFF, 0, 0, 0, 0}},
		{name: "oversized", raw: []byte{byte(TypeSegment), 0xFF, 0xFF, 0xFF, 0xFF}},
		{name: "short request", raw: []byte{byte(TypeRequest), 0, 0, 0, 2, 1, 2}},
		{name: "short segment", raw: []byte{byte(TypeSegment), 0, 0, 0, 3, 1, 2, 3}},
		{name: "short slot end", raw: []byte{byte(TypeSlotEnd), 0, 0, 0, 2, 1, 2}},
		{name: "short schedule", raw: []byte{byte(TypeScheduleInfo), 0, 0, 0, 4, 1, 2, 3, 4}},
		{name: "truncated body", raw: []byte{byte(TypeSlotEnd), 0, 0, 0, 8, 1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadFrame(bytes.NewReader(tt.raw)); err == nil {
				t.Fatal("malformed frame accepted")
			}
		})
	}
}

func TestReadRejectsBadPeriodCount(t *testing.T) {
	var buf bytes.Buffer
	info := ScheduleInfo{Segments: 2, Periods: []uint32{1, 2}}
	if err := WriteFrame(&buf, info); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the segment count so it disagrees with the period bytes.
	raw[5+4+3] = 9
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "tail bytes") {
		t.Fatalf("corrupted schedule accepted: %v", err)
	}
}

func TestSegmentPayloadDeterministic(t *testing.T) {
	a := SegmentPayload(1, 2, 1024)
	b := SegmentPayload(1, 2, 1024)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	c := SegmentPayload(1, 3, 1024)
	if bytes.Equal(a, c) {
		t.Fatal("different segments produced identical payloads")
	}
	d := SegmentPayload(2, 2, 1024)
	if bytes.Equal(a, d) {
		t.Fatal("different videos produced identical payloads")
	}
}

func TestSegmentPayloadLooksRandom(t *testing.T) {
	p := SegmentPayload(5, 7, 4096)
	counts := make(map[byte]int)
	for _, b := range p {
		counts[b]++
	}
	if len(counts) < 200 {
		t.Fatalf("payload uses only %d distinct byte values", len(counts))
	}
}

func TestReadRejectsOverflowingSegmentCount(t *testing.T) {
	// Regression: a forged ScheduleInfo whose segment count makes
	// 4*Segments wrap around uint32 must be rejected, not crash.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ScheduleInfo{
		Segments: 2,
		Periods:  []uint32{1, 2},
	}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Body layout: 4 video, 4 segments, ... Patch segments to 0x80000002 so
	// that 4*segments == 8 (mod 2^32), matching the 8 period bytes present.
	raw[5+4+0] = 0x80
	raw[5+4+3] = 0x02
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("overflowing segment count accepted")
	}
}

func TestScheduleInfoWithSizesRoundTrip(t *testing.T) {
	info := ScheduleInfo{
		VideoID:      4,
		Segments:     3,
		SlotMillis:   25,
		SegmentBytes: 0,
		AdmitSlot:    11,
		Periods:      []uint32{1, 3, 3},
		SegmentSizes: []uint32{100, 250, 80},
	}
	got := roundTrip(t, info)
	back, ok := got.(ScheduleInfo)
	if !ok || !reflect.DeepEqual(back, info) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, info)
	}
	if back.SizeOf(2) != 250 {
		t.Fatalf("SizeOf(2) = %d, want 250", back.SizeOf(2))
	}
}

func TestScheduleInfoSizeOfUniform(t *testing.T) {
	info := ScheduleInfo{Segments: 2, SegmentBytes: 512, Periods: []uint32{1, 2}}
	if info.SizeOf(1) != 512 || info.SizeOf(2) != 512 {
		t.Fatal("uniform SizeOf broken")
	}
}

func TestWriteRejectsMismatchedSizes(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, ScheduleInfo{
		Segments:     2,
		Periods:      []uint32{1, 2},
		SegmentSizes: []uint32{7},
	})
	if err == nil {
		t.Fatal("mismatched sizes accepted")
	}
}
