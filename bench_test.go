// Benchmarks regenerating the paper's evaluation, one per figure, plus the
// ablations DESIGN.md calls out and microbenchmarks of the scheduling hot
// path (the "cost of scheduling segments on the fly" Section 3 discusses).
//
// The figure benchmarks report the headline quantity of each figure via
// b.ReportMetric, so `go test -bench=.` doubles as a one-screen summary of
// the reproduction:
//
//	BenchmarkFig7AverageBandwidth   dhb-streams / npb-streams / tap-streams
//	BenchmarkFig8MaximumBandwidth   dhb-max / npb-max
//	BenchmarkFig9CompressedVideo    a-MB/s .. d-MB/s
//	BenchmarkAblationDynamicPagoda  dnpb-streams
//	BenchmarkAblationNaivePeak      naive-max / dhb-max
package vodcast_test

import (
	"testing"

	"vodcast"
)

// benchSweepConfig is a single-rate sweep small enough to iterate.
func benchSweepConfig(rate float64) vodcast.SweepConfig {
	cfg := vodcast.QuickSweepConfig()
	cfg.Rates = []float64{rate}
	cfg.TargetRequests = 1000
	cfg.MinHours = 20
	cfg.MaxHours = 100
	return cfg
}

// BenchmarkFig7AverageBandwidth regenerates Figure 7's saturated operating
// point (high request rate), where the paper's key claim lives: DHB's
// average bandwidth stays below NPB's flat stream count.
func BenchmarkFig7AverageBandwidth(b *testing.B) {
	var last vodcast.SweepRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.Sweep(benchSweepConfig(500))
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.DHBAvg, "dhb-streams")
	b.ReportMetric(last.UDAvg, "ud-streams")
	b.ReportMetric(last.TappingAvg, "tap-streams")
	b.ReportMetric(last.NPB, "npb-streams")
}

// BenchmarkFig7LowRate covers the other end of Figure 7, where reactive
// protocols are competitive.
func BenchmarkFig7LowRate(b *testing.B) {
	var last vodcast.SweepRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.Sweep(benchSweepConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.DHBAvg, "dhb-streams")
	b.ReportMetric(last.TappingAvg, "tap-streams")
}

// BenchmarkFig8MaximumBandwidth regenerates Figure 8: the peak bandwidths of
// UD, DHB and NPB, with DHB's peak at most two streams above NPB's.
func BenchmarkFig8MaximumBandwidth(b *testing.B) {
	var last vodcast.SweepRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.Sweep(benchSweepConfig(500))
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.DHBMax, "dhb-max")
	b.ReportMetric(last.UDMax, "ud-max")
	b.ReportMetric(last.NPB, "npb-max")
}

// BenchmarkFig9CompressedVideo regenerates Figure 9's saturated operating
// point: the bandwidth of the four DHB plans for the VBR movie, in MB/s.
func BenchmarkFig9CompressedVideo(b *testing.B) {
	cfg := vodcast.QuickVBRSweepConfig()
	cfg.Rates = []float64{500}
	cfg.TargetRequests = 1000
	cfg.MinHours = 20
	cfg.MaxHours = 100
	var last vodcast.Fig9Row
	for i := 0; i < b.N; i++ {
		rows, _, err := vodcast.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.UD, "ud-MB/s")
	b.ReportMetric(last.DHBA, "a-MB/s")
	b.ReportMetric(last.DHBB, "b-MB/s")
	b.ReportMetric(last.DHBC, "c-MB/s")
	b.ReportMetric(last.DHBD, "d-MB/s")
}

// BenchmarkAblationDynamicPagoda regenerates Section 3's abandoned design:
// the dynamic pagoda protocol the authors tried before DHB.
func BenchmarkAblationDynamicPagoda(b *testing.B) {
	cfg := benchSweepConfig(500)
	cfg.IncludeAblation = true
	var last vodcast.SweepRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.DNPBAvg, "dnpb-streams")
	b.ReportMetric(last.DHBAvg, "dhb-streams")
}

// BenchmarkAblationNaivePeak regenerates Section 3's motivation for the
// heuristic: latest-slot scheduling piles transmissions into common slots.
func BenchmarkAblationNaivePeak(b *testing.B) {
	var last vodcast.PeaksResult
	for i := 0; i < b.N; i++ {
		res, err := vodcast.Peaks(120, 10000)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.NaiveMax), "naive-max")
	b.ReportMetric(float64(last.HeuristicMax), "dhb-max")
}

// BenchmarkDHBAdmitSaturated measures the per-request scheduling cost at
// high load, where most segments are already scheduled and admission is a
// single pass over the period vector.
func BenchmarkDHBAdmitSaturated(b *testing.B) {
	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{Segments: 99})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dhb.AdmitRequest(vodcast.AdmitOptions{})
		dhb.AdvanceSlot()
	}
}

// BenchmarkDHBAdmitIdle measures the worst case: every request arrives into
// an idle system and schedules all 99 segments through the min-load scan.
func BenchmarkDHBAdmitIdle(b *testing.B) {
	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{Segments: 99})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dhb.AdmitRequest(vodcast.AdmitOptions{})
		// Drain the horizon so the next admission hits an idle schedule.
		for k := 0; k < 99; k++ {
			dhb.AdvanceSlot()
		}
	}
}

// BenchmarkUDAdmit measures the universal distribution protocol's admission.
func BenchmarkUDAdmit(b *testing.B) {
	ud, err := vodcast.NewUD(99)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ud.Admit()
		ud.AdvanceSlot()
	}
}

// BenchmarkPagodaConstruct measures building the 99-segment pagoda mapping.
func BenchmarkPagodaConstruct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := vodcast.Pagoda(99); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTapping measures a short stream-tapping simulation.
func BenchmarkTapping(b *testing.B) {
	cfg := vodcast.ReactiveConfig{
		RatePerHour:    100,
		VideoSeconds:   7200,
		HorizonSeconds: 20 * 3600,
		WarmupSeconds:  3600,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := vodcast.Tapping(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanVBR measures the Section 4 analysis pipeline end to end:
// synthesize the trace and derive all four plans.
func BenchmarkPlanVBR(b *testing.B) {
	tr, err := vodcast.SyntheticMatrix(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vodcast.PlanVBR(tr, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionClientCap regenerates the Section 5 future-work study:
// DHB with the client limited to two and three streams.
func BenchmarkExtensionClientCap(b *testing.B) {
	cfg := benchSweepConfig(200)
	var last vodcast.ClientCapRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.ClientCap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.Cap2, "cap2-streams")
	b.ReportMetric(last.Cap3, "cap3-streams")
	b.ReportMetric(last.Unlimited, "unlimited-streams")
}

// BenchmarkExtensionReactiveZoo regenerates the related-work comparison of
// every reactive protocol.
func BenchmarkExtensionReactiveZoo(b *testing.B) {
	cfg := benchSweepConfig(100)
	var last vodcast.ReactiveZooRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.ReactiveZoo(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.HMSM, "hmsm-streams")
	b.ReportMetric(last.Tapping, "tap-streams")
	b.ReportMetric(last.MergingBound, "bound-streams")
}

// BenchmarkExtensionDSB regenerates the dynamic skyscraper comparison.
func BenchmarkExtensionDSB(b *testing.B) {
	cfg := benchSweepConfig(200)
	var last vodcast.DSBRow
	for i := 0; i < b.N; i++ {
		rows, err := vodcast.DSBComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.DSB, "dsb-streams")
	b.ReportMetric(last.UD, "ud-streams")
	b.ReportMetric(last.DHB, "dhb-streams")
}

// BenchmarkHMSMAdmit measures the hierarchical merging simulation itself.
func BenchmarkHMSMAdmit(b *testing.B) {
	cfg := vodcast.ReactiveConfig{
		RatePerHour:    100,
		VideoSeconds:   7200,
		HorizonSeconds: 10 * 3600,
		WarmupSeconds:  3600,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := vodcast.HMSM(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCappedDHBAdmit measures the capped scheduler's hot path.
func BenchmarkCappedDHBAdmit(b *testing.B) {
	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{Segments: 99, MaxClientStreams: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dhb.AdmitRequest(vodcast.AdmitOptions{})
		dhb.AdvanceSlot()
	}
}

// BenchmarkWireEncodeDecode measures the framing codec on a 4 KB segment.
func BenchmarkWireEncodeDecode(b *testing.B) {
	// Exercised through the public server/client pair is too heavy for a
	// microbenchmark; measure payload generation, the data-plane hot path.
	b.Run("payload", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			vodcast.SegmentPayloadForBench(uint32(i), 1, 4096)
		}
	})
}

// BenchmarkStorageEvaluate measures the disk model on a saturated schedule.
func BenchmarkStorageEvaluate(b *testing.B) {
	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{Segments: 99, TrackSegments: true})
	if err != nil {
		b.Fatal(err)
	}
	sched := vodcast.DiskSchedule{SlotSeconds: 72.7}
	for slot := 0; slot < 2000; slot++ {
		dhb.AdmitRequest(vodcast.AdmitOptions{})
		rep := dhb.AdvanceSlot()
		reads := make([]vodcast.DiskRead, 0, len(rep.Segments))
		for _, seg := range rep.Segments {
			reads = append(reads, vodcast.DiskRead{Segment: seg, Bytes: 46e6})
		}
		sched.Slots = append(sched.Slots, reads)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vodcast.EvaluateDisks(vodcast.CommodityDisk2001(), sched, 4); err != nil {
			b.Fatal(err)
		}
	}
}
