//go:build race

package vodserver

// raceEnabled lets the alloc-count gate skip itself under the race
// detector, whose instrumentation allocates inside sync primitives.
const raceEnabled = true
