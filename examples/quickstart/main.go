// Quickstart: distribute one two-hour video with the DHB protocol and
// measure the server bandwidth it needs under Poisson demand.
package main

import (
	"fmt"
	"log"

	"vodcast"
)

func main() {
	// The paper's reference setup: a two-hour video cut into 99 segments,
	// so no customer ever waits more than 7200/99 = 73 seconds.
	const (
		segments    = 99
		slotSeconds = 7200.0 / segments
		ratePerHour = 20.0
	)

	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{Segments: segments})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 200 hours of Poisson arrivals at 20 requests/hour.
	horizonSlots := int(200 * 3600 / slotSeconds)
	m, err := vodcast.Measure(vodcast.AdaptDHB(dhb), ratePerHour, slotSeconds, horizonSlots, 200, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DHB, %d segments, %.0f requests/hour:\n", segments, ratePerHour)
	fmt.Printf("  average bandwidth: %.2f x consumption rate\n", m.AvgBandwidth)
	fmt.Printf("  maximum bandwidth: %.0f x consumption rate\n", m.MaxBandwidth)
	fmt.Printf("  (a static NPB-class protocol would always use 6 streams;\n")
	fmt.Printf("   full-length unicast would need about %.0f)\n", ratePerHour*2)
}
