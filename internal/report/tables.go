package report

import (
	"vodcast/internal/core"
	"vodcast/internal/experiments"
)

// Fig7 builds the Figure 7 table (average bandwidth in streams).
func Fig7(rows []experiments.SweepRow) Table {
	t := Table{
		Title:   "Figure 7 — average bandwidth (data streams), 99 segments, 2 h video",
		Columns: []string{"req/h", "tapping", "UD", "DHB", "NPB"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.TappingAvg, 2), F(r.UDAvg, 2), F(r.DHBAvg, 2), F(r.NPB, 0))
	}
	return t
}

// Fig8 builds the Figure 8 table (maximum bandwidth in streams).
func Fig8(rows []experiments.SweepRow) Table {
	t := Table{
		Title:   "Figure 8 — maximum bandwidth (data streams), 99 segments, 2 h video",
		Columns: []string{"req/h", "UD", "DHB", "NPB"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.UDMax, 0), F(r.DHBMax, 0), F(r.NPB, 0))
	}
	return t
}

// Fig9 builds the Figure 9 tables: the plan parameters and the bandwidth
// sweep in MB/s.
func Fig9(rows []experiments.Fig9Row, plans map[core.VBRVariant]core.VBRSolution) []Table {
	planTable := Table{
		Title:   "Figure 9 — distribution plans for the synthetic Matrix-calibrated trace",
		Columns: []string{"plan", "rate B/s", "segments", "saturated MB/s", "buffer MB"},
	}
	for _, v := range []core.VBRVariant{core.VariantA, core.VariantB, core.VariantC, core.VariantD} {
		p := plans[v]
		planTable.AddRow(v.String(), F(p.Rate, 0), I(p.Segments),
			F(p.SaturatedBandwidth()/1e6, 2), F(p.WorkAheadBuffer/1e6, 1))
	}
	sweep := Table{
		Title:   "Figure 9 — average bandwidth (MB/s)",
		Columns: []string{"req/h", "UD", "DHB-a", "DHB-b", "DHB-c", "DHB-d"},
	}
	for _, r := range rows {
		sweep.AddRow(F(r.RatePerHour, 0), F(r.UD, 2), F(r.DHBA, 2), F(r.DHBB, 2), F(r.DHBC, 2), F(r.DHBD, 2))
	}
	return []Table{planTable, sweep}
}

// Ablation builds the Section 3 dynamic-pagoda table.
func Ablation(rows []experiments.SweepRow) Table {
	t := Table{
		Title:   "Section 3 ablation — average bandwidth (data streams)",
		Columns: []string{"req/h", "UD", "dyn-pagoda", "DHB"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.UDAvg, 2), F(r.DNPBAvg, 2), F(r.DHBAvg, 2))
	}
	return t
}

// Peaks builds the naive-versus-heuristic peak table.
func Peaks(res experiments.PeaksResult) Table {
	t := Table{
		Title:   "Section 3 — bandwidth peaks under saturation, " + I(res.Segments) + " segments",
		Columns: []string{"policy", "max load", "avg load"},
	}
	t.AddRow("naive latest-slot", I(res.NaiveMax), F(res.NaiveAvg, 2))
	t.AddRow("DHB heuristic", I(res.HeuristicMax), F(res.HeuristicAvg, 2))
	return t
}

// VBRPlan builds the Section 4 plan table with a measured saturation column.
func VBRPlan(plans map[core.VBRVariant]core.VBRSolution, measured map[core.VBRVariant]float64) Table {
	t := Table{
		Title:   "Section 4 — the four DHB plans for the synthetic Matrix trace",
		Columns: []string{"plan", "rate B/s", "segments", "saturated MB/s", "buffer MB", "measured MB/s"},
	}
	for _, v := range []core.VBRVariant{core.VariantA, core.VariantB, core.VariantC, core.VariantD} {
		p := plans[v]
		t.AddRow(v.String(), F(p.Rate, 0), I(p.Segments),
			F(p.SaturatedBandwidth()/1e6, 2), F(p.WorkAheadBuffer/1e6, 1), F(measured[v], 2))
	}
	return t
}

// ClientCap builds the Section 5 client-bandwidth table.
func ClientCap(rows []experiments.ClientCapRow) Table {
	t := Table{
		Title:   "Section 5 extension — DHB with limited client bandwidth (avg streams)",
		Columns: []string{"req/h", "cap 1", "cap 2", "cap 3", "unlimited"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.Cap1, 2), F(r.Cap2, 2), F(r.Cap3, 2), F(r.Unlimited, 2))
	}
	return t
}

// ReactiveZoo builds the related-work reactive comparison.
func ReactiveZoo(rows []experiments.ReactiveZooRow) Table {
	t := Table{
		Title:   "Related work — reactive protocols (avg streams; bound = ln(1+lambda*D))",
		Columns: []string{"req/h", "bound", "HMSM", "tapping", "piggyback", "batching", "catching"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.MergingBound, 2), F(r.HMSM, 2), F(r.Tapping, 2),
			F(r.Piggyback, 2), F(r.Batching, 2), F(r.Catching, 2))
	}
	return t
}

// DSB builds the dynamic skyscraper comparison.
func DSB(rows []experiments.DSBRow) Table {
	t := Table{
		Title:   "Related work — dynamic skyscraper vs UD vs DHB (avg streams)",
		Columns: []string{"req/h", "DSB", "UD", "DHB"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.DSB, 2), F(r.UD, 2), F(r.DHB, 2))
	}
	return t
}

// Models builds the model-versus-simulation table.
func Models(rows []experiments.ModelRow) Table {
	t := Table{
		Title:   "Closed-form models vs simulation (avg streams)",
		Columns: []string{"req/h", "DHB sim", "DHB model", "UD sim", "UD model", "tap sim", "tap model"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.DHBSim, 2), F(r.DHBModel, 2),
			F(r.UDSim, 2), F(r.UDModel, 2), F(r.TappingSim, 2), F(r.TappingModel, 2))
	}
	return t
}

// Confidence builds the replicated Figure 7 table with half-widths.
func Confidence(rows []experiments.CIRow) Table {
	t := Table{
		Title:   "Figure 7 with 95% confidence intervals",
		Columns: []string{"req/h", "DHB", "±", "UD", "±", "tapping", "±"},
	}
	for _, r := range rows {
		t.AddRow(F(r.RatePerHour, 0), F(r.DHBMean, 3), F(r.DHBHalf, 3),
			F(r.UDMean, 3), F(r.UDHalf, 3), F(r.TappingMean, 3), F(r.TappingHalf, 3))
	}
	return t
}

// Capacity builds the provisioning curve table.
func Capacity(rows []experiments.CapacityRow) Table {
	t := Table{
		Title:   "Channel-pool provisioning with deferral admission control",
		Columns: []string{"pool", "avg streams", "avg wait s", "max wait s", "deferred/admitted", "max queue"},
	}
	for _, r := range rows {
		t.AddRow(F(r.Capacity, 0), F(r.AvgBandwidth, 2), F(r.AvgWaitSeconds, 1),
			F(r.MaxWaitSeconds, 1), F(r.DeferredShare, 3), I(r.MaxQueue))
	}
	return t
}

// Buffer builds the STB buffer-sizing table.
func Buffer(rows []experiments.BufferRow) Table {
	t := Table{
		Title:   "STB buffer occupancy (segments held before consumption)",
		Columns: []string{"req/h", "DHB mean", "DHB max", "UD mean", "UD max", "max minutes"},
	}
	for _, r := range rows {
		maxSegs := r.DHBMax
		if r.UDMax > maxSegs {
			maxSegs = r.UDMax
		}
		t.AddRow(F(r.RatePerHour, 0), F(r.DHBMean, 2), I(r.DHBMax),
			F(r.UDMean, 2), I(r.UDMax), F(float64(maxSegs)*r.MinutesPerSegment, 0))
	}
	return t
}

// Storage builds the disk-provisioning table.
func Storage(rows []experiments.StorageRow) Table {
	t := Table{
		Title:   "Disk provisioning — striped array needed per scheduling policy",
		Columns: []string{"policy", "peak load", "disks", "floor", "max busy", "mean busy"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, I(r.PeakLoad), I(r.DisksNeeded), I(r.MinDiskBound),
			F(r.MaxBusy, 2), F(r.MeanBusy, 2))
	}
	return t
}

// WaitTradeoff builds the segment-count trade table.
func WaitTradeoff(rows []experiments.WaitTradeoffRow) Table {
	t := Table{
		Title:   "Waiting-time / bandwidth trade (2 h video)",
		Columns: []string{"segments", "max wait s", "DHB avg", "DHB max", "H(n) ceiling"},
	}
	for _, r := range rows {
		t.AddRow(I(r.Segments), F(r.MaxWaitSecs, 1), F(r.DHBAvg, 2), F(r.DHBMax, 0), F(r.Saturation, 2))
	}
	return t
}
