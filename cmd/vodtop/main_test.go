package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/station"
	"vodcast/internal/vodclient"
	"vodcast/internal/vodserver"
)

// TestRenderFrame drives render with a synthetic snapshot and checks every
// dashboard section appears with the right units.
func TestRenderFrame(t *testing.T) {
	snap := vodserver.StatusSnapshot{
		UptimeSeconds: 12.5,
		Stats:         vodserver.Stats{Requests: 42, Instances: 7, BroadcastBytes: 3_500_000, ActiveSubscribers: 3, Dropped: 1},
		Station: station.Status{
			Videos: 2,
			Shards: []station.ShardStatus{
				{Shard: 0, Videos: 1, Pending: 2, QueueCap: 256, Admits: 30, Rejects: 4},
				{Shard: 1, Videos: 1, Pending: 0, QueueCap: 256, Admits: 12, Rejects: 0},
			},
			Stages: map[string]obs.WindowSnapshot{
				"lock_wait":   {Count: 42, P50: 0.000004, P95: 0.00002, P99: 0.00005, Max: 0.0001},
				"admit":       {Count: 42, P50: 0.0012, P95: 0.004, P99: 0.009, Max: 0.02},
				"queue_depth": {Count: 10, P50: 3, P95: 8, P99: 9, Max: 9},
			},
			Clock: station.ClockStatus{
				Running: true, IntervalSeconds: 0.5, Ticks: 25,
				LagSeconds: 0.001, DriftSlots: 0.002,
				Lag: obs.WindowSnapshot{Count: 25, P95: 0.0015},
			},
		},
		FirstByte: obs.WindowSnapshot{
			Count: 42, P50: 0.003, P95: 0.008, P99: 0.012, Max: 0.02,
			SLOThreshold: 0.01, SLOObjective: 0.99, Good: 40, Bad: 2, BurnRate: 4.76,
		},
		Fanout: obs.WindowSnapshot{Count: 25, P50: 0.0001, P95: 0.0004, P99: 0.0006, Max: 0.001},
		Spans:  obs.SpanStats{Roots: 42, Sampled: 6, Finished: 18, SampleEvery: 8},
		QoE: vodserver.QoESnapshot{
			Reports:  9,
			Startup:  obs.WindowSnapshot{Count: 9, P50: 2, P95: 5},
			Slack:    obs.WindowSnapshot{Count: 9, Mean: 3.5},
			MissRate: obs.WindowSnapshot{Count: 9, Mean: 0.25},
		},
		Alerts: []obs.AlertStatus{
			{Name: "client_deadline_miss_rate", Severity: "critical", State: obs.StateFiring,
				Value: 0.75, Op: ">", Threshold: 0.5, Fired: 2},
			{Name: "client_reports_stale", Severity: "warning", State: obs.StateInactive,
				Value: math.NaN(), Op: "stale", Threshold: 30},
		},
	}
	snap.Station.PerVideo = []station.VideoStatus{
		{Video: 0, Name: "trailer", Shard: 0, Slot: 7, Requests: 30, Instances: 19},
		{Video: 1, Name: "feature", Shard: 1, Slot: 7, Requests: 12, Instances: 11},
	}
	var b strings.Builder
	render(&b, "127.0.0.1:4900", snap)
	out := b.String()
	for _, want := range []string{
		"vodtop — 127.0.0.1:4900",
		"requests=42 instances=7 broadcast=3.5MB subscribers=3 dropped=1",
		"clock: running  slot=500.00ms  ticks=25",
		"drift=0.002 slots",
		"(p95 lag 1.50ms)",
		"spans: 42 roots, 6 sampled (1 in 8), 18 finished",
		"target<=10.00ms @ 99.0%",
		"good=40 bad=2  burn=4.76",
		"lock_wait", "admit", "queue_depth", "fanout", "first_byte",
		"SHARD", "REJECTS",
		"QoE  : reports=9  startup p50=2 p95=5 slots  slack mean=3.5 slots  miss/report mean=0.25",
		"VIDEO", "trailer", "feature",
		"ALERT", "SEVERITY",
		"client_deadline_miss_rate", "critical", "FIRING", "> 0.5",
		"client_reports_stale", "inactive", "stale 30",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	// The sub-millisecond stage renders in microseconds; queue depth stays
	// a bare request count.
	if !strings.Contains(out, "4µs") {
		t.Fatalf("lock_wait not rendered in µs:\n%s", out)
	}
	// Shard rows carry the admit/reject counters.
	if !strings.Contains(out, "30") || !strings.Contains(out, "4") {
		t.Fatalf("shard counters missing:\n%s", out)
	}
	// The no-data staleness value renders as a dash, not NaN.
	if strings.Contains(out, "NaN") {
		t.Fatalf("alert pane leaked NaN:\n%s", out)
	}
	// Without a co-located harness the load pane stays hidden.
	if strings.Contains(out, "load :") {
		t.Fatalf("load pane rendered without load status:\n%s", out)
	}
}

// TestRenderLoadPane: the load pane appears exactly when /statusz carries
// harness counters, and shows the step position, fleet and admit rate.
func TestRenderLoadPane(t *testing.T) {
	snap := vodserver.StatusSnapshot{
		Load: &vodserver.LoadStatus{
			Running: true, Step: "ramp-2", StepIndex: 2, Steps: 3,
			TargetSessions: 80, ActiveSessions: 77,
			Sessions: 1234, Errors: 12, ErrorRate: 0.0096, AdmitsPerSec: 612.5,
		},
	}
	var b strings.Builder
	render(&b, "x", snap)
	out := b.String()
	for _, want := range []string{
		"load : step ramp-2 (2/3)",
		"target=80 active=77",
		"sessions=1234 err=12 (0.96%)",
		"admits/s=612.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("load pane missing %q:\n%s", want, out)
		}
	}

	// A harness that finished its run shows as idle, not as a stale step.
	snap.Load = &vodserver.LoadStatus{Sessions: 500}
	b.Reset()
	render(&b, "x", snap)
	if !strings.Contains(b.String(), "load : idle") {
		t.Fatalf("finished harness not idle:\n%s", b.String())
	}
}

// TestOnceFiringExitPath: run's firing result — the source of the -once exit
// code — follows the alert table served by the endpoint, and an empty table
// stays quiet.
func TestOnceFiringExitPath(t *testing.T) {
	serve := func(snap vodserver.StatusSnapshot) (addr string, done func()) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/statusz" {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(snap)
		}))
		return strings.TrimPrefix(srv.URL, "http://"), srv.Close
	}

	quiet := vodserver.StatusSnapshot{Alerts: []obs.AlertStatus{
		{Name: "client_deadline_miss_rate", State: obs.StatePending, Value: 0.75, Op: ">", Threshold: 0.5},
	}}
	addr, done := serve(quiet)
	var b strings.Builder
	firing, err := run(&b, addr, time.Second, true)
	done()
	if err != nil || firing {
		t.Fatalf("pending-only frame: firing=%v err=%v", firing, err)
	}

	hot := vodserver.StatusSnapshot{Alerts: []obs.AlertStatus{
		{Name: "first_byte_slo_burn", State: obs.StateResolved},
		{Name: "client_deadline_miss_rate", Severity: "critical", State: obs.StateFiring,
			Value: 2, Op: ">", Threshold: 0.5, Fired: 1},
	}}
	addr, done = serve(hot)
	b.Reset()
	firing, err = run(&b, addr, time.Second, true)
	done()
	if err != nil || !firing {
		t.Fatalf("firing frame: firing=%v err=%v", firing, err)
	}
	// The frame the probe rendered shows why it will exit non-zero.
	if !strings.Contains(b.String(), "FIRING") {
		t.Fatalf("firing frame missing alert pane:\n%s", b.String())
	}
}

// TestOnceAgainstLiveServer is the acceptance path: a real vodserver, one
// fetched video, then run(..., once=true) renders a populated frame from
// the live /statusz endpoint and returns.
func TestOnceAgainstLiveServer(t *testing.T) {
	s, err := vodserver.Start(vodserver.Config{
		Addr:            "127.0.0.1:0",
		Videos:          []vodserver.VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration:    10 * time.Millisecond,
		StatsAddr:       "127.0.0.1:0",
		SpanSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	firing, err := run(&b, s.StatsAddr(), time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if firing {
		t.Fatal("healthy server reported a firing alert")
	}
	out := b.String()
	if strings.Contains(out, "\x1b[2J") {
		t.Fatalf("-once frame must not clear the screen:\n%q", out)
	}
	for _, want := range []string{"requests=1", "clock: running", "lock_wait", "SHARD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("live frame missing %q:\n%s", want, out)
		}
	}

	// A dead endpoint is an error, not a hang or a zero frame.
	if _, err := run(&b, "127.0.0.1:1", time.Second, true); err == nil {
		t.Fatal("run against dead endpoint succeeded")
	}
	// A non-statusz HTTP server yields a decode/status error.
	if _, err := fetch(&http.Client{Timeout: time.Second}, "0.0.0.0:0"); err == nil {
		t.Fatal("fetch from invalid address succeeded")
	}
	// And a non-positive interval is rejected up front.
	if _, err := run(&b, s.StatsAddr(), 0, true); err == nil {
		t.Fatal("run accepted zero interval")
	}
}
