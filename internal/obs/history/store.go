// Package history is the retained-telemetry layer: a fixed-memory in-process
// time-series store that periodically scrapes an obs.Registry into per-series
// rings, and a flight recorder that dumps bounded diagnostic bundles when an
// alert fires.
//
// Every other observability surface in the repository (/metricsz, /statusz,
// /alertz, vodtop) is a live snapshot: by the time an operator looks, the
// history that explains a miss-rate alert is gone. The paper's evaluation is
// phrased entirely over time — bandwidth and waiting time as demand shifts —
// so the serving process itself retains the last stretch of every metric it
// exports and can answer range queries (/queryz) from memory.
//
// Memory is bounded by construction, not by luck: each series owns three
// fixed-capacity rings (raw scrape interval, 10s, 1m downsampling tiers),
// the per-series cost is known at registration, and a hard byte cap refuses
// new series rather than growing. Downsampling keeps the maximum of each
// bucket — spike-preserving for gauges and depths, and equal to "last value"
// for monotonic counters, so rates derived from downsampled counters stay
// correct.
//
// The package follows the obs idiom: stdlib-only imports (plus obs itself),
// nil-safe methods on every type, and zero-value configs selecting documented
// defaults.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"vodcast/internal/obs"
)

// Tier periods for the two downsampled rings. The raw tier runs at the
// configured scrape interval.
const (
	tier10Period = 10 * time.Second
	tier60Period = time.Minute
)

// pointsPerTier is each ring's fixed capacity. At the default 1s scrape
// interval the raw tier covers the last 6 minutes, the 10s tier the last
// hour, and the 1m tier the last 6 hours — enough to answer "what led up to
// this alert" without unbounded growth.
const pointsPerTier = 360

// Point is one retained sample: a unix timestamp in seconds and the value.
type Point struct {
	Unix  float64 `json:"unix"`
	Value float64 `json:"value"`
}

// Config parameterizes a Store. The zero value of every field selects a
// documented default.
type Config struct {
	// Samples is the scrape source, normally reg.Samples. Required.
	Samples func() []obs.Sample
	// Interval is the raw-tier scrape period; <= 0 selects 1s.
	Interval time.Duration
	// MaxBytes caps resident ring memory. Once admitting another series
	// would exceed it, new series are refused (counted, not grown);
	// established series keep updating. <= 0 selects 8 MiB.
	MaxBytes int
	// Clock stamps scrapes; nil selects time.Now. Tests inject a manual
	// clock to make tier boundaries deterministic.
	Clock func() time.Time
}

// Store retains scraped metric history in fixed memory. All methods are safe
// for concurrent use; a nil *Store is valid and inert, so disabled history
// costs the caller one predictable branch.
type Store struct {
	samples  func() []obs.Sample
	interval time.Duration
	maxBytes int
	clock    func() time.Time

	mu            sync.Mutex
	series        map[string]*series
	bytes         int
	scrapes       uint64
	droppedSeries uint64
	stop          chan struct{}
}

// series is one retained time series: three downsampling tiers keyed by the
// exposition identity Name+Labels.
type series struct {
	raw, t10, t60 ring
}

// ring is a fixed-capacity point ring with a pending downsample bucket.
// The raw tier has period == the scrape interval and no pending bucket
// (every scrape is pushed directly).
type ring struct {
	period time.Duration
	pts    []Point
	head   int // next write position
	n      int // live points

	// Pending bucket for downsampled tiers: the max seen in the bucket
	// that started at curStart, pushed when a scrape lands past its end.
	curStart time.Time
	curMax   float64
	curSet   bool
}

// SeriesCost is the resident-byte estimate charged per admitted series: three
// rings of pointsPerTier points (16 bytes each) plus map/key overhead.
// Exported so callers can size Config.MaxBytes in whole-series units.
const SeriesCost = 3*pointsPerTier*16 + 256

// New returns a store on cfg. It panics if cfg.Samples is nil: a store with
// no scrape source is a programming error, caught by the first test.
func New(cfg Config) *Store {
	if cfg.Samples == nil {
		panic("history: Config.Samples is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 8 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Store{
		samples:  cfg.Samples,
		interval: cfg.Interval,
		maxBytes: cfg.MaxBytes,
		clock:    cfg.Clock,
		series:   make(map[string]*series),
	}
}

// Interval reports the raw-tier scrape period.
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Start begins periodic scraping on an internal goroutine. No-op when nil or
// already running.
func (s *Store) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	s.stop = stop
	s.mu.Unlock()
	go func() {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Scrape()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts periodic scraping. Idempotent and nil-safe.
func (s *Store) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
}

// Scrape performs one scrape pass: read every registry sample, then append
// each to its series rings. The ticker calls it; tests call it directly
// after advancing their clock.
//
// The sample walk runs BEFORE the store lock is taken: GaugeFunc sources may
// read subsystems (alert state, QoE windows) whose own paths can reach back
// into the store via the flight recorder, and scraping outside the lock
// keeps that ordering acyclic.
func (s *Store) Scrape() {
	if s == nil {
		return
	}
	samples := s.samples()
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scrapes++
	for _, sm := range samples {
		key := sm.Name + sm.Labels
		sr, ok := s.series[key]
		if !ok {
			if s.bytes+SeriesCost > s.maxBytes {
				s.droppedSeries++
				continue
			}
			sr = &series{
				raw: ring{period: s.interval},
				t10: ring{period: tier10Period},
				t60: ring{period: tier60Period},
			}
			s.series[key] = sr
			s.bytes += SeriesCost
		}
		sr.raw.push(Point{Unix: unix(now), Value: sm.Value})
		sr.t10.fold(now, sm.Value)
		sr.t60.fold(now, sm.Value)
	}
}

// push appends a point, overwriting the oldest once the ring is full.
func (r *ring) push(p Point) {
	if r.pts == nil {
		r.pts = make([]Point, pointsPerTier)
	}
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// fold accumulates v into the bucket containing t, pushing the previous
// bucket's maximum once t crosses into a new one. Bucket points carry the
// bucket start time.
func (r *ring) fold(t time.Time, v float64) {
	start := t.Truncate(r.period)
	if r.curSet && start.After(r.curStart) {
		r.push(Point{Unix: unix(r.curStart), Value: r.curMax})
		r.curSet = false
	}
	if !r.curSet {
		r.curStart = start
		r.curMax = v
		r.curSet = true
		return
	}
	if v > r.curMax {
		r.curMax = v
	}
}

// points returns the ring's live points oldest-first, including the pending
// downsample bucket so a query sees data up to the latest scrape.
func (r *ring) points() []Point {
	out := make([]Point, 0, r.n+1)
	for i := 0; i < r.n; i++ {
		out = append(out, r.pts[(r.head-r.n+i+len(r.pts))%len(r.pts)])
	}
	if r.curSet {
		out = append(out, Point{Unix: unix(r.curStart), Value: r.curMax})
	}
	return out
}

// wrapped reports whether the ring has ever evicted a point.
func (r *ring) wrapped() bool {
	return r.pts != nil && r.n == len(r.pts)
}

// oldest returns the timestamp of the ring's oldest retained point and
// whether the ring holds any data.
func (r *ring) oldest() (float64, bool) {
	if r.n > 0 {
		return r.pts[(r.head-r.n+len(r.pts))%len(r.pts)].Unix, true
	}
	if r.curSet {
		return unix(r.curStart), true
	}
	return 0, false
}

// Query returns the series' points in [from, to], bucketed at step with the
// maximum per bucket and stamped with the bucket start. The tier is chosen
// automatically: the coarsest tier whose period does not exceed step, then
// escalated to a coarser one when the requested range starts before the
// finer tier's retention. A step below the scrape interval (or <= 0) reads
// the raw tier unbucketed. Unknown series return nil.
func (s *Store) Query(name string, from, to time.Time, step time.Duration) []Point {
	if s == nil || to.Before(from) {
		return nil
	}
	s.mu.Lock()
	sr, ok := s.series[name]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	tiers := []*ring{&sr.raw, &sr.t10, &sr.t60}
	// Coarsest tier still at least as fine as the requested step.
	pick := 0
	for i, r := range tiers {
		if r.period <= step {
			pick = i
		}
	}
	// Escalate while the picked tier has evicted data the range needs and a
	// coarser tier reaches further back. A tier that never wrapped still
	// holds everything it ever saw, so there is nothing to escalate for.
	fromUnix := unix(from)
	for pick < len(tiers)-1 {
		if !tiers[pick].wrapped() {
			break
		}
		old, ok := tiers[pick].oldest()
		if ok && old <= fromUnix {
			break
		}
		coarserOld, coarserOK := tiers[pick+1].oldest()
		if !coarserOK || (ok && coarserOld >= old) {
			break
		}
		pick++
	}
	pts := tiers[pick].points()
	s.mu.Unlock()

	toUnix := unix(to)
	out := make([]Point, 0, len(pts))
	if step <= 0 || step <= s.interval {
		for _, p := range pts {
			if p.Unix >= fromUnix && p.Unix <= toUnix {
				out = append(out, p)
			}
		}
		return out
	}
	stepSec := step.Seconds()
	haveBucket := false
	var bucketStart, bucketMax float64
	for _, p := range pts {
		if p.Unix < fromUnix || p.Unix > toUnix {
			continue
		}
		start := fromUnix + float64(int((p.Unix-fromUnix)/stepSec))*stepSec
		if haveBucket && start > bucketStart {
			out = append(out, Point{Unix: bucketStart, Value: bucketMax})
			haveBucket = false
		}
		if !haveBucket {
			bucketStart, bucketMax, haveBucket = start, p.Value, true
			continue
		}
		if p.Value > bucketMax {
			bucketMax = p.Value
		}
	}
	if haveBucket {
		out = append(out, Point{Unix: bucketStart, Value: bucketMax})
	}
	return out
}

// Series returns every retained series identity (Name+Labels) in sorted
// order — the /queryz discovery listing.
func (s *Store) Series() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Stats is the store's own health surface, rendered into /statusz and
// bundle metadata.
type Stats struct {
	Series        int    `json:"series"`
	Bytes         int    `json:"bytes"`
	MaxBytes      int    `json:"max_bytes"`
	Scrapes       uint64 `json:"scrapes"`
	DroppedSeries uint64 `json:"dropped_series"`
	IntervalMS    int64  `json:"interval_ms"`
}

// Stats reports retention counters. Nil-safe.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Series:        len(s.series),
		Bytes:         s.bytes,
		MaxBytes:      s.maxBytes,
		Scrapes:       s.scrapes,
		DroppedSeries: s.droppedSeries,
		IntervalMS:    s.interval.Milliseconds(),
	}
}

// unix converts a time to float seconds, the wire format of Point.
func unix(t time.Time) float64 {
	return float64(t.UnixNano()) / float64(time.Second)
}

// String implements fmt.Stringer for quick debugging.
func (s *Store) String() string {
	st := s.Stats()
	return fmt.Sprintf("history.Store{series=%d bytes=%d/%d scrapes=%d dropped=%d}",
		st.Series, st.Bytes, st.MaxBytes, st.Scrapes, st.DroppedSeries)
}
