// Package trace provides the variable-bit-rate video substrate for the
// paper's Section 4 study. The paper analyzes a DVD trace of The Matrix
// (8170 s long, 636 KB/s mean, 951 KB/s one-second peak); since the real
// MPEG trace is proprietary, this package generates a seeded synthetic trace
// calibrated to exactly those published statistics, with MPEG-like structure
// (scene-level rate shifts, GOP-periodic ripple, occasional action bursts).
package trace

import (
	"fmt"
	"math"
)

// Trace is a per-second bit-rate series: Rates[k] is the number of bytes the
// decoder consumes during second k of playback.
type Trace struct {
	rates []float64
	cum   []float64 // cum[k] = bytes consumed in the first k seconds
}

// New builds a trace from a per-second byte series. Rates must be positive.
func New(rates []float64) (*Trace, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("trace: empty rate series")
	}
	cum := make([]float64, len(rates)+1)
	for i, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("trace: rate[%d] = %v is not a positive finite number", i, r)
		}
		cum[i+1] = cum[i] + r
	}
	out := &Trace{rates: make([]float64, len(rates)), cum: cum}
	copy(out.rates, rates)
	return out, nil
}

// CBR returns a constant-bit-rate trace of the given whole-second duration.
func CBR(seconds int, rate float64) (*Trace, error) {
	if seconds <= 0 {
		return nil, fmt.Errorf("trace: duration %d must be positive", seconds)
	}
	rates := make([]float64, seconds)
	for i := range rates {
		rates[i] = rate
	}
	return New(rates)
}

// Duration reports the playback length in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.rates)) }

// Seconds reports the number of one-second samples.
func (t *Trace) Seconds() int { return len(t.rates) }

// Rate reports the consumption rate during second k.
func (t *Trace) Rate(k int) float64 { return t.rates[k] }

// Rates returns a copy of the per-second series.
func (t *Trace) Rates() []float64 {
	out := make([]float64, len(t.rates))
	copy(out, t.rates)
	return out
}

// TotalBytes reports the size of the whole video.
func (t *Trace) TotalBytes() float64 { return t.cum[len(t.cum)-1] }

// Mean reports the average consumption rate in bytes per second.
func (t *Trace) Mean() float64 { return t.TotalBytes() / t.Duration() }

// Peak reports the maximum consumption rate over any one-second window, the
// statistic the paper quotes (951 KB/s for its trace).
func (t *Trace) Peak() float64 {
	peak := 0.0
	for _, r := range t.rates {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// CumulativeAt reports C(x): the bytes consumed during the first x seconds of
// playback, interpolating linearly inside a second. Arguments are clamped to
// [0, Duration].
func (t *Trace) CumulativeAt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= t.Duration() {
		return t.TotalBytes()
	}
	k := int(x)
	frac := x - float64(k)
	return t.cum[k] + frac*t.rates[k]
}

// TimeOfByte reports C^-1(bytes): the playback instant at which cumulative
// consumption reaches the given byte count, interpolating linearly inside a
// second. Arguments are clamped to [0, TotalBytes].
func (t *Trace) TimeOfByte(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	total := t.TotalBytes()
	if bytes >= total {
		return t.Duration()
	}
	// Binary search the first whole second whose cumulative count reaches
	// the target, then interpolate within it.
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] < bytes {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k := lo - 1 // cum[k] < bytes <= cum[k+1]
	return float64(k) + (bytes-t.cum[k])/t.rates[k]
}

// SegmentBytes splits playback into n equal-duration segments and reports the
// bytes of video data inside each (index 0 .. n-1).
func (t *Trace) SegmentBytes(n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: segment count %d must be positive", n)
	}
	d := t.Duration() / float64(n)
	out := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		next := t.CumulativeAt(float64(i+1) * d)
		out[i] = next - prev
		prev = next
	}
	return out, nil
}
