package core

// Shorthand wrappers over AdmitRequest for the test suites, matching the
// shapes of the retired method family (Admit, AdmitTraced, AdmitFrom,
// AdmitFromTraced) so scenario tests stay terse.

func admit(s *Scheduler) int {
	res, _ := s.AdmitRequest(AdmitOptions{})
	return res.Placed
}

func admitTraced(s *Scheduler) []int {
	res, _ := s.AdmitRequest(AdmitOptions{WantAssignment: true})
	return res.Assignment
}

func admitFrom(s *Scheduler, from int) (int, error) {
	res, err := s.AdmitRequest(AdmitOptions{From: from})
	return res.Placed, err
}

func admitFromTraced(s *Scheduler, from int) ([]int, error) {
	res, err := s.AdmitRequest(AdmitOptions{From: from, WantAssignment: true})
	if err != nil {
		return nil, err
	}
	return res.Assignment, nil
}
