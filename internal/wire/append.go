package wire

import "encoding/binary"

// This file is the zero-copy side of the codec: append-style encoders that
// serialize data-plane frames directly into a caller-owned buffer instead of
// allocating a body per frame the way WriteFrame does. The broadcast fan-out
// (internal/fanout) uses them to build one shared slot buffer per
// (video, slot) pair; fanout's differential test pins their output
// byte-for-byte to WriteFrame's.
//
// The appenders trust their caller on the MaxBody bound: the fan-out sizes
// segments at configuration time, where vodserver validates them, so the
// per-frame check WriteFrame performs would be dead weight on the hot path.

// segmentFrameOverhead is the non-payload byte count of an encoded Segment
// frame: the 5-byte frame header plus the 16-byte fixed body head.
const segmentFrameOverhead = 5 + 16

// AppendSegmentFrame appends one complete Segment frame — header and body —
// to dst and returns the extended slice. The bytes are exactly those
// WriteFrame(w, Segment{VideoID: videoID, Segment: segment, Slot: slot,
// Payload: payload}) would write.
func AppendSegmentFrame(dst []byte, videoID, segment uint32, slot uint64, payload []byte) []byte {
	dst = append(dst, byte(TypeSegment))
	dst = binary.BigEndian.AppendUint32(dst, uint32(16+len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, videoID)
	dst = binary.BigEndian.AppendUint32(dst, segment)
	dst = binary.BigEndian.AppendUint64(dst, slot)
	return append(dst, payload...)
}

// AppendSlotEndFrame appends one complete SlotEnd frame to dst and returns
// the extended slice, byte-identical to WriteFrame(w, SlotEnd{Slot: slot}).
func AppendSlotEndFrame(dst []byte, slot uint64) []byte {
	dst = append(dst, byte(TypeSlotEnd))
	dst = binary.BigEndian.AppendUint32(dst, 8)
	return binary.BigEndian.AppendUint64(dst, slot)
}

// AppendSegmentPayload appends the deterministic payload bytes of one
// (video, segment) pair to dst and returns the extended slice — the same
// bytes SegmentPayload returns, without the allocation.
func AppendSegmentPayload(dst []byte, videoID, segment, size uint32) []byte {
	state := (uint64(videoID)<<32 ^ uint64(segment)) * 0x9E3779B97F4A7C15
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	for i := uint32(0); i < size; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		dst = append(dst, byte(state))
	}
	return dst
}
