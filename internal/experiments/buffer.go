package experiments

import (
	"fmt"
	"sort"

	"vodcast/internal/core"
	"vodcast/internal/dynamic"
	"vodcast/internal/metrics"
	"vodcast/internal/sim"
	"vodcast/internal/workload"
)

// BufferRow reports how much set-top-box storage one protocol demands at one
// arrival rate — Section 2's question of whether "thirty minutes to one hour
// of video data" suffices.
type BufferRow struct {
	RatePerHour float64
	// Mean/Max buffer occupancy in segments, per protocol.
	DHBMean float64
	DHBMax  int
	UDMean  float64
	UDMax   int
	// MinutesPerSegment converts segments to minutes of video.
	MinutesPerSegment float64
}

// maxOccupancy computes the peak number of segments a customer holds before
// consuming them, from the per-segment serving slots of one request:
// segment j sits in the buffer from its arrival slot until it is consumed at
// slot i+j.
func maxOccupancy(assignment []int, admitSlot int) int {
	type event struct {
		at    int
		delta int
	}
	var events []event
	for j := 1; j < len(assignment); j++ {
		arrive := assignment[j]
		consume := admitSlot + j
		if arrive >= consume {
			// Arrives in its consumption slot: streams straight through.
			continue
		}
		events = append(events, event{at: arrive, delta: 1}, event{at: consume, delta: -1})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		// Consume before arrive at the same slot boundary.
		return events[a].delta < events[b].delta
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// BufferStudy measures client buffer occupancy for DHB and UD across rates.
// Every request's assignment is inspected, so the statistics are exact for
// the simulated horizon.
func BufferStudy(cfg Config) ([]BufferRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.VideoSeconds / float64(cfg.Segments)
	rows := make([]BufferRow, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		hours := cfg.hoursFor(rate)
		horizonSlots := int(hours * 3600 / d)
		seed := cfg.Seed + int64(i)*100
		row := BufferRow{RatePerHour: rate, MinutesPerSegment: d / 60}

		dhb, err := core.New(core.Config{Segments: cfg.Segments})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		row.DHBMean, row.DHBMax = measureBuffers(seed+1, rate, d, horizonSlots,
			dhb.CurrentSlot, func() []int {
				res, _ := dhb.AdmitRequest(core.AdmitOptions{WantAssignment: true})
				return res.Assignment
			}, func() { dhb.AdvanceSlot() })

		ud, err := dynamic.UD(cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		row.UDMean, row.UDMax = measureBuffers(seed+2, rate, d, horizonSlots,
			ud.CurrentSlot, ud.AdmitTraced, func() { ud.AdvanceSlot() })

		rows = append(rows, row)
	}
	return rows, nil
}

func measureBuffers(seed int64, rate, d float64, horizonSlots int,
	current func() int, admit func() []int, advance func()) (mean float64, max int) {
	rng := sim.NewRNG(seed)
	arrivals := workload.NewSlottedArrivals(rng, workload.Constant(rate), d)
	var reps metrics.Replicates
	for slot := 0; slot < horizonSlots; slot++ {
		for a := 0; a < arrivals.Next(); a++ {
			occ := maxOccupancy(admit(), current())
			reps.Add(float64(occ))
			if occ > max {
				max = occ
			}
		}
		advance()
	}
	return reps.Mean(), max
}
