package vodcast_test

import (
	"fmt"
	"log"

	"vodcast"
)

// ExampleNewDHB reproduces Figure 4 of the paper: a single request arriving
// during slot 1 of an idle six-segment system schedules segment S_i in slot
// i+1 for every i.
func ExampleNewDHB() {
	dhb, err := vodcast.NewDHB(vodcast.DHBConfig{
		Segments:      6,
		TrackSegments: true,
		StartSlot:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	dhb.AdmitRequest(vodcast.AdmitOptions{})
	for slot := 2; slot <= 7; slot++ {
		fmt.Printf("slot %d: S%d\n", slot, dhb.ScheduledAt(slot)[0])
	}
	// Output:
	// slot 2: S1
	// slot 3: S2
	// slot 4: S3
	// slot 5: S4
	// slot 6: S5
	// slot 7: S6
}

// ExampleFastBroadcast reproduces Figure 1: the first three streams of fast
// broadcasting with seven segments.
func ExampleFastBroadcast() {
	fb, err := vodcast.FastBroadcast(7)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range fb.Render(4) {
		fmt.Printf("stream %d: %s\n", i+1, row)
	}
	// Output:
	// stream 1: S1 S1 S1 S1
	// stream 2: S2 S3 S2 S3
	// stream 3: S4 S5 S6 S7
}

// ExampleNPBFigure2 reproduces Figure 2: the canonical three-stream new
// pagoda broadcasting mapping.
func ExampleNPBFigure2() {
	npb, err := vodcast.NPBFigure2()
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range npb.Render(6) {
		fmt.Printf("stream %d: %s\n", i+1, row)
	}
	// Output:
	// stream 1: S1 S1 S1 S1 S1 S1
	// stream 2: S2 S4 S2 S5 S2 S4
	// stream 3: S3 S6 S8 S3 S7 S9
}

// ExamplePlanVBR runs the Section 4 pipeline on the synthetic trace and
// prints the segment counts of the four plans.
func ExamplePlanVBR() {
	tr, err := vodcast.SyntheticMatrix(42)
	if err != nil {
		log.Fatal(err)
	}
	plans, err := vodcast.PlanVBR(tr, 60)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []vodcast.VBRVariant{vodcast.VariantA, vodcast.VariantB, vodcast.VariantC, vodcast.VariantD} {
		fmt.Printf("%v: %d segments\n", v, plans[v].Segments)
	}
	// Output:
	// DHB-a: 137 segments
	// DHB-b: 137 segments
	// DHB-c: 132 segments
	// DHB-d: 132 segments
}

// ExampleHarmonicBandwidth shows the harmonic number DHB's saturation load
// approaches for a 99-segment video.
func ExampleHarmonicBandwidth() {
	h, err := vodcast.HarmonicBandwidth(99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H(99) = %.2f streams\n", h)
	// Output:
	// H(99) = 5.18 streams
}

// ExampleModelPatchingMean evaluates the closed form for optimal threshold
// patching at the paper's two-hour video and 20 requests/hour.
func ExampleModelPatchingMean() {
	bw, err := vodcast.ModelPatchingMean(20, 7200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f streams\n", bw)
	// Output:
	// 8.0 streams
}
