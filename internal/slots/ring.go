// Package slots implements the slotted transmission schedule at the heart of
// the DHB protocol: a bounded window of future slots, each holding the set of
// segment instances scheduled for transmission during that slot.
//
// The window advances one slot at a time; retired slots report their load to
// the caller, which feeds the bandwidth statistics. Because no protocol in
// this repository ever schedules further than n slots ahead of the current
// slot, the window is a fixed-size ring. Loads and single-slot reads are
// O(1); the min-load window scans behind DHB's placement rule are answered
// by a tie-aware segment tree in O(log H) (see rmq.go), with the original
// linear scans retained as the differential-testing reference
// (NewRingReference).
package slots

import "fmt"

// Ring is a fixed-horizon window of future transmission slots. Slot indices
// are absolute and monotonically increasing; the ring tracks slots
// [Base, Base+Horizon-1].
type Ring struct {
	horizon   int
	base      int
	loads     []int
	tree      *minTree // nil for the linear reference ring
	segs      [][]int
	trackSegs bool
}

// NewRing returns a ring tracking horizon consecutive slots starting at
// absolute slot base, with the O(log H) range-min index enabled. If
// trackSegs is true the ring also records which segment ids were scheduled
// in each slot (used by golden tests and the schedule visualizer; the hot
// simulation path leaves it off).
func NewRing(horizon, base int, trackSegs bool) *Ring {
	r := newRing(horizon, base, trackSegs)
	r.tree = newMinTree(horizon)
	return r
}

// NewRingReference returns a ring whose min-load scans use the original
// linear walk of the window. It is the executable specification the RMQ ring
// is differential-tested against; simulations should use NewRing.
func NewRingReference(horizon, base int, trackSegs bool) *Ring {
	return newRing(horizon, base, trackSegs)
}

func newRing(horizon, base int, trackSegs bool) *Ring {
	if horizon <= 0 {
		panic("slots: horizon must be positive")
	}
	r := &Ring{
		horizon:   horizon,
		base:      base,
		loads:     make([]int, horizon),
		trackSegs: trackSegs,
	}
	if trackSegs {
		r.segs = make([][]int, horizon)
	}
	return r
}

// Base reports the absolute index of the earliest tracked slot.
func (r *Ring) Base() int { return r.base }

// End reports the absolute index of the latest tracked slot.
func (r *Ring) End() int { return r.base + r.horizon - 1 }

// Horizon reports the number of tracked slots.
func (r *Ring) Horizon() int { return r.horizon }

func (r *Ring) pos(abs int) int {
	if abs < r.base || abs > r.End() {
		panic(fmt.Sprintf("slots: slot %d outside window [%d, %d]", abs, r.base, r.End()))
	}
	return abs % r.horizon
}

// abs maps a ring position back to the absolute slot it currently holds.
func (r *Ring) abs(p int) int {
	baseOff := r.base % r.horizon
	if p >= baseOff {
		return r.base + p - baseOff
	}
	return r.base + r.horizon - baseOff + p
}

// Load reports the number of segment instances scheduled in slot abs.
func (r *Ring) Load(abs int) int { return r.loads[r.pos(abs)] }

// Add schedules one instance of segment seg in slot abs.
func (r *Ring) Add(abs, seg int) {
	p := r.pos(abs)
	r.loads[p]++
	if r.tree != nil {
		r.tree.set(p, r.loads[p])
	}
	if r.trackSegs {
		r.segs[p] = append(r.segs[p], seg)
	}
}

// Segments returns the segment ids scheduled in slot abs, in scheduling
// order. It returns nil unless the ring was built with trackSegs. The
// returned slice is a copy owned by the caller; replay paths that visit many
// slots use EachSegment instead.
func (r *Ring) Segments(abs int) []int {
	if !r.trackSegs {
		return nil
	}
	p := r.pos(abs)
	out := make([]int, len(r.segs[p]))
	copy(out, r.segs[p])
	return out
}

// EachSegment calls fn with each segment id scheduled in slot abs, in
// scheduling order, without copying the slot's segment list. It is a no-op
// unless the ring was built with trackSegs. fn must not call methods that
// mutate the ring.
func (r *Ring) EachSegment(abs int, fn func(seg int)) {
	if !r.trackSegs {
		return
	}
	for _, seg := range r.segs[r.pos(abs)] {
		fn(seg)
	}
}

// MinLoadLatest returns the slot of [from, to] with the minimum load,
// preferring the latest slot among ties — the DHB heuristic of Figure 6.
// Both bounds must lie inside the window and from <= to. O(log H), or
// O(to-from) on a reference ring.
func (r *Ring) MinLoadLatest(from, to int) (slot, load int) {
	if r.tree != nil {
		return r.minRMQ(from, to, true)
	}
	return r.minLoadLatestLinear(from, to)
}

// MinLoadEarliest returns the slot of [from, to] with the minimum load,
// preferring the earliest slot among ties — the ablated tie-breaking rule
// core's PolicyMinLoadEarliest studies.
func (r *Ring) MinLoadEarliest(from, to int) (slot, load int) {
	if r.tree != nil {
		return r.minRMQ(from, to, false)
	}
	return r.minLoadEarliestLinear(from, to)
}

// minRMQ answers either tie direction from the segment tree. The absolute
// range [from, to] wraps the position array at most once; inside each
// contiguous position range increasing position means increasing absolute
// slot, so the ranges are queried separately and combined with the
// tie-direction priority: for "latest" the wrapped-around range [0, pt]
// holds the later slots and wins ties, for "earliest" the range [pf, H-1]
// holds the earlier slots and wins.
func (r *Ring) minRMQ(from, to int, latest bool) (slot, load int) {
	if from > to {
		panic(fmt.Sprintf("slots: empty scan range [%d, %d]", from, to))
	}
	pf, pt := r.pos(from), r.pos(to)
	if pf <= pt {
		q := r.tree.query(pf, pt)
		if latest {
			return r.abs(q.hi), q.load
		}
		return r.abs(q.lo), q.load
	}
	early := r.tree.query(pf, r.horizon-1)
	late := r.tree.query(0, pt)
	if latest {
		if late.load <= early.load {
			return r.abs(late.hi), late.load
		}
		return r.abs(early.hi), early.load
	}
	if early.load <= late.load {
		return r.abs(early.lo), early.load
	}
	return r.abs(late.lo), late.load
}

// minLoadLatestLinear is the executable specification of MinLoadLatest.
func (r *Ring) minLoadLatestLinear(from, to int) (slot, load int) {
	if from > to {
		panic(fmt.Sprintf("slots: empty scan range [%d, %d]", from, to))
	}
	slot, load = to, r.Load(to)
	for s := to - 1; s >= from; s-- {
		if l := r.Load(s); l < load {
			slot, load = s, l
		}
	}
	return slot, load
}

// minLoadEarliestLinear is the executable specification of MinLoadEarliest.
func (r *Ring) minLoadEarliestLinear(from, to int) (slot, load int) {
	if from > to {
		panic(fmt.Sprintf("slots: empty scan range [%d, %d]", from, to))
	}
	slot, load = from, r.Load(from)
	for s := from + 1; s <= to; s++ {
		if l := r.Load(s); l < load {
			slot, load = s, l
		}
	}
	return slot, load
}

// Retire removes the earliest slot from the window, appends a fresh empty
// slot at the far end, and returns the retired slot's absolute index and
// load. Segment ids, when tracked, are returned in scheduling order and the
// returned slice is owned by the caller.
func (r *Ring) Retire() (abs, load int, segs []int) {
	abs = r.base
	p := abs % r.horizon
	load = r.loads[p]
	r.loads[p] = 0
	if r.tree != nil {
		r.tree.set(p, 0)
	}
	if r.trackSegs {
		segs = r.segs[p]
		r.segs[p] = nil
	}
	r.base++
	return abs, load, segs
}
