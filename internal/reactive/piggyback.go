package reactive

import (
	"fmt"

	"vodcast/internal/metrics"
	"vodcast/internal/sim"
)

// pbStream is one display stream in the adaptive piggybacking simulation.
// Position advances at Speed video-seconds per second; speeds change only at
// pairing and merge instants, so position is tracked piecewise-linearly.
type pbStream struct {
	posAt  float64 // position at time refT
	refT   float64
	speed  float64
	paired bool
	front  bool
	epoch  int
	alive  bool
}

func (s *pbStream) pos(now float64) float64 {
	return s.posAt + (now-s.refT)*s.speed
}

func (s *pbStream) setSpeed(now, speed float64) {
	s.posAt = s.pos(now)
	s.refT = now
	s.speed = speed
	s.epoch++
}

// Piggybacking simulates adaptive piggybacking (Golubchik, Lui and Muntz),
// the earliest stream-merging approach of the paper's related work: instead
// of buffering, the server alters display rates by +/-delta (classically 5%,
// imperceptible to viewers) so that a trailing stream catches a leading one,
// after which the pair continues as a single stream.
//
// The policy is greedy pairwise: each new arrival pairs with the closest
// unpaired stream ahead if the catch-up completes before the leader finishes
// the video; merged and unpairable streams play at normal speed.
func Piggybacking(cfg Config, delta float64) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if delta <= 0 || delta >= 0.5 {
		return Result{}, fmt.Errorf("reactive: piggybacking delta %v must be in (0, 0.5)", delta)
	}
	var (
		rng    = sim.NewRNG(cfg.Seed)
		proc   = sim.NewPoissonProcess(rng, cfg.RatePerHour/3600)
		loop   = sim.NewLoop()
		bw     = metrics.NewBandwidth()
		g      = newGauge(bw, cfg.WarmupSeconds)
		res    Result
		d      = cfg.VideoSeconds
		active []*pbStream
	)

	remove := func(s *pbStream) {
		s.alive = false
		s.epoch++
		for i, a := range active {
			if a == s {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}

	var scheduleEnd func(s *pbStream)
	scheduleEnd = func(s *pbStream) {
		epoch := s.epoch
		endAt := s.refT + (d-s.posAt)/s.speed
		loop.At(endAt, func(at float64) {
			if !s.alive || s.epoch != epoch {
				return
			}
			remove(s)
			g.add(-1, at)
		})
	}

	scheduleMerge := func(back, front *pbStream, now float64) {
		gap := front.pos(now) - back.pos(now)
		mergeAt := now + gap/(2*delta)
		backEpoch, frontEpoch := back.epoch, front.epoch
		loop.At(mergeAt, func(at float64) {
			if !back.alive || !front.alive || back.epoch != backEpoch || front.epoch != frontEpoch {
				return
			}
			// The pair becomes one normal-speed stream carried by front.
			remove(back)
			g.add(-1, at)
			res.PartialStreams++ // count completed merges
			front.setSpeed(at, 1)
			front.paired = false
			front.front = false
			scheduleEnd(front)
		})
	}

	for {
		t := proc.Next()
		if t >= cfg.HorizonSeconds {
			break
		}
		loop.Run(t)
		res.Requests++
		s := &pbStream{refT: t, speed: 1, alive: true}
		active = append(active, s)
		g.add(1, t)
		res.CompleteStreams++

		// Find the closest unpaired stream ahead that the newcomer can
		// catch before the leader finishes.
		var target *pbStream
		for _, a := range active {
			if a == s || a.paired || !a.alive {
				continue
			}
			gap := a.pos(t)
			if gap <= 0 {
				continue
			}
			// Catch-up takes gap/(2 delta); the slowed leader advances
			// (1-delta) per second and must not reach d first.
			if a.pos(t)+(1-delta)*gap/(2*delta) >= d {
				continue
			}
			if target == nil || a.pos(t) < target.pos(t) {
				target = a
			}
		}
		if target != nil {
			s.setSpeed(t, 1+delta)
			s.paired = true
			target.setSpeed(t, 1-delta)
			target.paired = true
			target.front = true
			scheduleMerge(s, target, t)
			// The slowed leader's end event is superseded by its epoch
			// bump; the merge handler re-schedules its end.
		}
		scheduleEnd(s)
	}
	loop.Run(cfg.HorizonSeconds)
	g.finish(cfg.HorizonSeconds)
	res.AvgBandwidth = bw.Mean()
	res.MaxBandwidth = bw.Max()
	res.AvgWait, res.MaxWait = 0, 0
	return res, nil
}
