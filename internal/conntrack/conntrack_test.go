package conntrack

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vodcast/internal/obs"
)

// manualClock advances only when told, making hysteresis deterministic.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testSampler(t *testing.T, cfg Config) (*Sampler, *manualClock) {
	t.Helper()
	clk := newManualClock()
	cfg.Clock = clk.Now
	s := New(cfg)
	t.Cleanup(s.Stop)
	return s, clk
}

// sweep advances the clock by one interval and runs one pass.
func sweep(s *Sampler, clk *manualClock) {
	clk.Advance(time.Second)
	s.Sweep()
}

func TestClassifyTable(t *testing.T) {
	s, _ := testSampler(t, Config{})
	ext := TCPInfo{Valid: true, Extended: true}
	cases := []struct {
		name                 string
		wrote, backlog       bool
		occ                  float64
		streak, retransDelta int64
		rwndDelta            time.Duration
		info                 TCPInfo
		kernelOK             bool
		want                 State
	}{
		{name: "idle healthy", want: StateHealthy},
		{name: "backlog without progress stalls", backlog: true, want: StateStalled},
		{name: "backlog with progress is not stalled", backlog: true, wrote: true, want: StateHealthy},
		{name: "retransmit burst is path limited", wrote: true, retransDelta: 3, info: ext, kernelOK: true, want: StatePathLimited},
		{name: "retransmits below threshold ignored", wrote: true, retransDelta: 2, info: ext, kernelOK: true, want: StateHealthy},
		{name: "rwnd limited time is receiver limited", wrote: true, rwndDelta: 500 * time.Millisecond, info: ext, kernelOK: true, want: StateReceiverLimited},
		{name: "deep ring with drained kernel queue is sender backpressured", wrote: true, occ: 0.75,
			info: TCPInfo{Valid: true}, kernelOK: true, want: StateSenderBackpressured},
		{name: "deep ring with kernel backlog is receiver limited", wrote: true, occ: 0.75,
			info: TCPInfo{Valid: true, NotSentBytes: 1 << 20}, kernelOK: true, want: StateReceiverLimited},
		{name: "push fail streak without kernel is receiver limited", wrote: true, streak: 2, want: StateReceiverLimited},
		{name: "deep ring without kernel is receiver limited", wrote: true, occ: 0.9, want: StateReceiverLimited},
	}
	for _, tc := range cases {
		got := s.classify(tc.wrote, tc.backlog, tc.occ, tc.streak, tc.retransDelta,
			tc.rwndDelta, time.Second, tc.info, tc.kernelOK)
		if got != tc.want {
			t.Errorf("%s: classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHysteresisHoldsAndTransitions drives a tracked (kernel-less) connection
// through stall and recovery via its userspace counters, asserting the
// published state only moves after Hold consecutive candidate sweeps.
func TestHysteresisHoldsAndTransitions(t *testing.T) {
	s, clk := testSampler(t, Config{Hold: 2})
	c := s.Register(nil, 1, 8)
	if c == nil {
		t.Fatal("Register returned nil for a live sampler")
	}
	sweep(s, clk) // seed baseline
	if got := c.State(); got != StateHealthy {
		t.Fatalf("fresh conn state = %v, want healthy", got)
	}

	// Frames pile up with no drain progress: candidate stalled.
	c.RecordPush(8, true)
	sweep(s, clk)
	if got := c.State(); got != StateHealthy {
		t.Fatalf("state moved after one candidate sweep: %v", got)
	}
	sweep(s, clk)
	if got := c.State(); got != StateStalled {
		t.Fatalf("state after Hold sweeps = %v, want stalled", got)
	}
	if s.StalledRatio() != 1 {
		t.Fatalf("StalledRatio = %v, want 1", s.StalledRatio())
	}

	// Drain resumes and the ring empties: back to healthy after Hold.
	c.RecordDrain(8, 1<<20)
	sweep(s, clk)
	c.RecordDrain(8, 1<<20)
	sweep(s, clk)
	if got := c.State(); got != StateHealthy {
		t.Fatalf("state after recovery = %v, want healthy", got)
	}
	age := c.StateAge(clk.Now())
	if age < 0 || age > time.Second {
		t.Fatalf("state age after transition = %v", age)
	}
}

// TestHysteresisSuppressesFlap alternates the stall signal every sweep; with
// Hold=2 the published state must never leave healthy.
func TestHysteresisSuppressesFlap(t *testing.T) {
	s, clk := testSampler(t, Config{Hold: 2})
	c := s.Register(nil, 1, 8)
	sweep(s, clk)
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			c.RecordPush(8, true) // backlog, no progress
		} else {
			c.RecordDrain(8, 4096) // progress, ring empty
		}
		sweep(s, clk)
		if got := c.State(); got != StateHealthy {
			t.Fatalf("sweep %d: flapping signal moved state to %v", i, got)
		}
	}
}

func TestNilSamplerAndConnAreInert(t *testing.T) {
	var s *Sampler
	c := s.Register(nil, 1, 8)
	if c != nil {
		t.Fatal("nil sampler Register returned non-nil conn")
	}
	c.RecordPush(3, true)
	c.RecordPush(0, false)
	c.RecordDrain(2, 100)
	if got := c.State(); got != StateHealthy {
		t.Fatalf("nil conn state = %v", got)
	}
	if c.StateAge(time.Now()) != 0 {
		t.Fatal("nil conn StateAge != 0")
	}
	s.Sweep()
	s.Start()
	s.Stop()
	s.Unregister(c)
	s.Unregister(nil)
	if s.Tracked() != 0 || s.StalledRatio() != 0 {
		t.Fatal("nil sampler reported tracked conns")
	}
	sum := s.Snapshot()
	if sum.Tracked != 0 || len(sum.Conns) != 0 || len(sum.States) != NumStates {
		t.Fatalf("nil sampler snapshot = %+v", sum)
	}
}

func TestUnregisterIdempotentAndCounted(t *testing.T) {
	s, clk := testSampler(t, Config{Hold: 1})
	c := s.Register(nil, 1, 4)
	sweep(s, clk)
	c.RecordPush(4, true)
	sweep(s, clk)
	if got := c.State(); got != StateStalled {
		t.Fatalf("state = %v, want stalled with Hold=1", got)
	}
	s.Unregister(c)
	s.Unregister(c)
	if s.Tracked() != 0 {
		t.Fatalf("Tracked = %d after unregister", s.Tracked())
	}
	if counts := s.StateCounts(); counts[StateStalled] != 0 {
		t.Fatalf("stalled count = %d after unregister", counts[StateStalled])
	}
}

func TestSnapshotRowsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, clk := testSampler(t, Config{Hold: 1, Registry: reg})
	a := s.Register(nil, 1, 8)
	b := s.Register(nil, 2, 8)
	sweep(s, clk)
	a.RecordPush(8, true) // stalls
	b.RecordPush(1, true)
	b.RecordDrain(1, 4096) // healthy
	b.RecordPush(0, false) // one refused push
	sweep(s, clk)

	sum := s.Snapshot()
	if sum.Tracked != 2 || len(sum.Conns) != 2 {
		t.Fatalf("snapshot tracked=%d rows=%d", sum.Tracked, len(sum.Conns))
	}
	if sum.Conns[0].ID >= sum.Conns[1].ID {
		t.Fatal("snapshot rows not sorted by id")
	}
	if sum.States["stalled"] != 1 {
		t.Fatalf("states = %v, want one stalled", sum.States)
	}
	if sum.StalledRatio != 0.5 {
		t.Fatalf("StalledRatio = %v, want 0.5", sum.StalledRatio)
	}

	vals := map[string]float64{}
	for _, smp := range reg.Samples() {
		vals[smp.Name+smp.Labels] = smp.Value
	}
	if vals[`conn_state{state="stalled"}`] != 1 {
		t.Fatalf("conn_state stalled gauge = %v", vals[`conn_state{state="stalled"}`])
	}
	if vals["conn_tracked"] != 2 {
		t.Fatalf("conn_tracked = %v", vals["conn_tracked"])
	}
	if vals["conn_stalled_ratio"] != 0.5 {
		t.Fatalf("conn_stalled_ratio = %v", vals["conn_stalled_ratio"])
	}
	if vals["conn_push_fail_total"] != 1 {
		t.Fatalf("conn_push_fail_total = %v", vals["conn_push_fail_total"])
	}
	if vals["conn_drain_bytes_total"] != 4096 {
		t.Fatalf("conn_drain_bytes_total = %v", vals["conn_drain_bytes_total"])
	}
	if vals[`conn_video_tracked{video="1"}`] != 1 || vals[`conn_video_tracked{video="2"}`] != 1 {
		t.Fatalf("per-video gauges = %v", vals)
	}
}

// TestVideoLabelCardinalityCap registers more videos than MaxVideoLabels and
// asserts the overflow folds into video="other" instead of minting new
// children.
func TestVideoLabelCardinalityCap(t *testing.T) {
	reg := obs.NewRegistry()
	s, clk := testSampler(t, Config{MaxVideoLabels: 2, Registry: reg})
	for v := uint32(1); v <= 5; v++ {
		s.Register(nil, v, 4)
	}
	sweep(s, clk)
	videoChildren, other := 0, 0.0
	for _, smp := range reg.Samples() {
		if smp.Name != "conn_video_tracked" {
			continue
		}
		if strings.Contains(smp.Labels, `video="other"`) {
			other = smp.Value
			continue
		}
		videoChildren++
	}
	if videoChildren != 2 {
		t.Fatalf("video label children = %d, want 2", videoChildren)
	}
	if other != 3 {
		t.Fatalf(`video="other" = %v, want 3`, other)
	}
}

func TestEveryStateNameIsValidMetricLabel(t *testing.T) {
	names := StateNames()
	if len(names) != NumStates {
		t.Fatalf("StateNames returned %d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("bad state name %q", n)
		}
		seen[n] = true
	}
	if State(200).String() != "unknown" {
		t.Fatal("out-of-range state did not stringify to unknown")
	}
}

// TestLoopbackKernelSampling exercises the real TCP_INFO read path over a
// loopback socket: the sampler must see kernel telemetry and keep a conn
// whose reader never drains the socket out of the healthy state only via
// the classifier, not via errors.
func TestLoopbackKernelSampling(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	s, clk := testSampler(t, Config{})
	c := s.Register(server, 7, 16)
	if c.raw == nil {
		t.Fatal("TCP conn did not yield a raw syscall conn")
	}

	// Push some traffic so BytesAcked moves.
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.CopyN(io.Discard, client, 1<<16)
	}()
	buf := make([]byte, 1<<16)
	if _, err := server.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-done

	sweep(s, clk)
	sweep(s, clk)
	sum := s.Snapshot()
	if len(sum.Conns) != 1 {
		t.Fatalf("rows = %d", len(sum.Conns))
	}
	row := sum.Conns[0]
	if !row.Kernel {
		t.Fatal("loopback conn sampled without kernel telemetry")
	}
	if row.Remote == "" || row.Video != 7 {
		t.Fatalf("row identity = %+v", row)
	}
	info, ok := readTCPInfo(c.raw)
	if !ok || !info.Valid {
		t.Fatal("readTCPInfo failed on a live TCP socket")
	}
	if info.SndCwnd == 0 {
		t.Fatal("kernel reported zero congestion window")
	}
	if info.BytesAcked == 0 {
		t.Fatal("kernel reported zero acked bytes after a drained 64 KiB write")
	}
}

// TestStartStopLifecycle exercises the ticker goroutine with a real clock.
func TestStartStopLifecycle(t *testing.T) {
	s := New(Config{Interval: time.Millisecond})
	s.Register(nil, 1, 4)
	s.Start()
	s.Start() // idempotent
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop()
	if s.Tracked() != 1 {
		t.Fatalf("Tracked = %d", s.Tracked())
	}
}
