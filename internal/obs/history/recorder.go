package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"vodcast/internal/obs"
)

// This file implements the flight recorder: the component that turns "an
// alert fired" into a diagnostic bundle on disk, captured at the moment the
// process still holds the evidence. A bundle is one timestamped directory
// containing the recent metric history, the span ring, a status snapshot,
// the alert table, and goroutine + heap profiles — everything a postmortem
// needs to answer "what led up to this" without the operator having been
// watching.
//
// Bundles are bounded twice over: a cooldown rate-limits alert-triggered
// captures (a flapping rule cannot fill the disk), and retention keeps only
// the last K bundle directories, pruning the oldest on every write.

// RecorderConfig parameterizes a Recorder. Dir is required; the zero value
// of every other field selects a documented default. The snapshot sources
// (Store, Status, Spans, Alerts) are each optional — a nil source simply
// omits that file from bundles.
type RecorderConfig struct {
	// Dir is the directory bundles are written under; created if absent.
	Dir string
	// Cooldown rate-limits Trigger: captures closer together than this are
	// skipped. <= 0 selects 5 minutes.
	Cooldown time.Duration
	// Keep bounds retained bundle directories; older ones are pruned.
	// <= 0 selects 8.
	Keep int
	// HistoryWindow bounds how far back the bundled metric history reaches.
	// <= 0 selects 10 minutes.
	HistoryWindow time.Duration
	// Store supplies the bundled metric history (history.jsonl).
	Store *Store
	// Status supplies a rendered status snapshot (status.json), normally
	// the same bytes /statusz serves.
	Status func() ([]byte, error)
	// Spans supplies the recent span ring (spans.jsonl).
	Spans func() []obs.SpanRecord
	// Alerts supplies the alert table (alerts.json).
	Alerts func() []obs.AlertStatus
	// Conns supplies a rendered per-connection transport telemetry snapshot
	// (conns.json), normally the same bytes /connz serves — the evidence a
	// stall-attribution postmortem needs.
	Conns func() ([]byte, error)
	// Clock stamps bundles and drives the cooldown; nil selects time.Now.
	Clock func() time.Time
}

// Recorder captures diagnostic bundles. All methods are safe for concurrent
// use; a nil *Recorder is valid and inert, so a server without a flight
// directory configured skips recording with one branch.
type Recorder struct {
	cfg RecorderConfig

	mu       sync.Mutex
	lastAt   time.Time
	haveLast bool
	captured uint64
	skipped  uint64
}

// NewRecorder returns a recorder writing under cfg.Dir, creating the
// directory if needed.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("history: RecorderConfig.Dir is required")
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Minute
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 8
	}
	if cfg.HistoryWindow <= 0 {
		cfg.HistoryWindow = 10 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: create bundle dir: %w", err)
	}
	return &Recorder{cfg: cfg}, nil
}

// Trigger captures a bundle unless one was captured within the cooldown
// window. It returns the bundle directory and true on capture, or "" and
// false when rate-limited (or the recorder is nil). Write errors are
// reported through the returned path being empty with ok true never — a
// failed capture returns ok false so callers need no error branch on the
// alert path.
func (r *Recorder) Trigger(reason string) (string, bool) {
	if r == nil {
		return "", false
	}
	now := r.cfg.Clock()
	r.mu.Lock()
	if r.haveLast && now.Sub(r.lastAt) < r.cfg.Cooldown {
		r.skipped++
		r.mu.Unlock()
		return "", false
	}
	r.lastAt = now
	r.haveLast = true
	r.mu.Unlock()
	dir, err := r.capture(reason, now)
	if err != nil {
		return "", false
	}
	return dir, true
}

// Force captures a bundle unconditionally — the /debug/flightrecord and
// SIGQUIT paths, where an operator asked explicitly. It still arms the
// cooldown so a forced capture quiets subsequent alert triggers.
func (r *Recorder) Force(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("history: recorder disabled")
	}
	now := r.cfg.Clock()
	r.mu.Lock()
	r.lastAt = now
	r.haveLast = true
	r.mu.Unlock()
	return r.capture(reason, now)
}

// bundleMeta is the bundle's self-description, written as meta.json.
type bundleMeta struct {
	Reason     string   `json:"reason"`
	Unix       float64  `json:"unix"`
	Time       string   `json:"time"`
	GoVersion  string   `json:"go_version,omitempty"`
	StoreStats *Stats   `json:"store,omitempty"`
	Files      []string `json:"files"`
}

// historyLine is one series' retained points, one JSON line per series in
// history.jsonl.
type historyLine struct {
	Series string  `json:"series"`
	Points []Point `json:"points"`
}

// capture writes one bundle directory and prunes retention. The directory
// is written under a temporary name and renamed into place so readers never
// see a half-written bundle.
func (r *Recorder) capture(reason string, now time.Time) (string, error) {
	name := fmt.Sprintf("bundle-%s-%s", now.UTC().Format("20060102T150405.000"), sanitizeReason(reason))
	final := filepath.Join(r.cfg.Dir, name)
	tmp := final + ".tmp"
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after successful rename

	var files []string
	write := func(file string, gen func(*os.File) error) error {
		f, err := os.Create(filepath.Join(tmp, file))
		if err != nil {
			return err
		}
		if err := gen(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		files = append(files, file)
		return nil
	}

	// Metric history: one JSONL line per retained series, bounded by the
	// history window.
	if st := r.cfg.Store; st != nil {
		from := now.Add(-r.cfg.HistoryWindow)
		if err := write("history.jsonl", func(f *os.File) error {
			enc := json.NewEncoder(f)
			for _, series := range st.Series() {
				line := historyLine{Series: series, Points: st.Query(series, from, now, 0)}
				if err := enc.Encode(line); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return "", err
		}
	}
	if r.cfg.Spans != nil {
		if err := write("spans.jsonl", func(f *os.File) error {
			enc := json.NewEncoder(f)
			for _, sp := range r.cfg.Spans() {
				if err := enc.Encode(sp); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return "", err
		}
	}
	if r.cfg.Status != nil {
		if err := write("status.json", func(f *os.File) error {
			b, err := r.cfg.Status()
			if err != nil {
				return err
			}
			_, err = f.Write(b)
			return err
		}); err != nil {
			return "", err
		}
	}
	if r.cfg.Alerts != nil {
		if err := write("alerts.json", func(f *os.File) error {
			return json.NewEncoder(f).Encode(r.cfg.Alerts())
		}); err != nil {
			return "", err
		}
	}
	if r.cfg.Conns != nil {
		if err := write("conns.json", func(f *os.File) error {
			b, err := r.cfg.Conns()
			if err != nil {
				return err
			}
			_, err = f.Write(b)
			return err
		}); err != nil {
			return "", err
		}
	}
	for _, prof := range []string{"goroutine", "heap"} {
		p := pprof.Lookup(prof)
		if p == nil {
			continue
		}
		if err := write(prof+".pprof", func(f *os.File) error {
			return p.WriteTo(f, 0)
		}); err != nil {
			return "", err
		}
	}

	meta := bundleMeta{
		Reason: reason,
		Unix:   unix(now),
		Time:   now.UTC().Format(time.RFC3339Nano),
		Files:  append(files, "meta.json"),
	}
	if r.cfg.Store != nil {
		st := r.cfg.Store.Stats()
		meta.StoreStats = &st
	}
	if err := write("meta.json", func(f *os.File) error {
		return json.NewEncoder(f).Encode(meta)
	}); err != nil {
		return "", err
	}

	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	r.mu.Lock()
	r.captured++
	r.mu.Unlock()
	r.prune()
	return final, nil
}

// prune removes the oldest bundles beyond Keep. Bundle names embed a UTC
// timestamp, so lexicographic order is chronological.
func (r *Recorder) prune() {
	names := r.Bundles()
	for len(names) > r.cfg.Keep {
		os.RemoveAll(filepath.Join(r.cfg.Dir, names[0]))
		names = names[1:]
	}
}

// Bundles lists retained bundle directory names, oldest first. Nil-safe.
func (r *Recorder) Bundles() []string {
	if r == nil {
		return nil
	}
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// RecorderStats is the recorder's own health surface, rendered into
// /statusz.
type RecorderStats struct {
	Dir        string `json:"dir"`
	Captured   uint64 `json:"captured"`
	Skipped    uint64 `json:"skipped_cooldown"`
	Bundles    int    `json:"bundles"`
	Keep       int    `json:"keep"`
	CooldownMS int64  `json:"cooldown_ms"`
}

// Stats reports capture counters. Nil-safe.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	captured, skipped := r.captured, r.skipped
	r.mu.Unlock()
	return RecorderStats{
		Dir:        r.cfg.Dir,
		Captured:   captured,
		Skipped:    skipped,
		Bundles:    len(r.Bundles()),
		Keep:       r.cfg.Keep,
		CooldownMS: r.cfg.Cooldown.Milliseconds(),
	}
}

// sanitizeReason maps a trigger reason onto a filesystem-safe slug.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range reason {
		ok := r == '_' || r == '-' || (r >= 'a' && r <= 'z') ||
			(r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	const maxReason = 48
	s := b.String()
	if len(s) > maxReason {
		s = s[:maxReason]
	}
	return s
}
