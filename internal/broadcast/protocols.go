package broadcast

import "fmt"

// FastBroadcast builds Juhn and Tseng's FB mapping for n segments: stream j
// (1-based) cyclically carries segments 2^(j-1) .. min(2^j - 1, n), as in
// Figure 1 of the paper. The final stream is truncated when n is not of the
// form 2^k - 1, which only shortens its cycle and so preserves the
// broadcasting invariant.
func FastBroadcast(n int) (*Mapping, error) {
	if n <= 0 {
		return nil, fmt.Errorf("broadcast: FB needs a positive segment count, got %d", n)
	}
	var streams []Stream
	for lo := 1; lo <= n; lo *= 2 {
		hi := min(2*lo-1, n)
		streams = append(streams, Stream{
			M:    1,
			Subs: []Substream{{Start: lo, Count: hi - lo + 1}},
		})
	}
	return NewMapping(n, streams)
}

// FBStreams reports how many streams FB needs for n segments:
// ceil(log2(n+1)).
func FBStreams(n int) int {
	k := 0
	for lo := 1; lo <= n; lo *= 2 {
		k++
	}
	return k
}

// skyscraperWidths yields the SB segment-group width series
// 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ... of Hua and Sheu.
func skyscraperWidths(k int) []int {
	w := make([]int, k)
	for i := 0; i < k; i++ {
		switch {
		case i == 0:
			w[i] = 1
		case i == 1 || i == 2:
			w[i] = 2
		case (i+1)%2 == 0: // even 1-based index >= 4
			if (i+1)%4 == 0 {
				w[i] = 2*w[i-1] + 1
			} else {
				w[i] = 2*w[i-1] + 2
			}
		default: // odd 1-based index >= 5 repeats its predecessor
			w[i] = w[i-1]
		}
	}
	return w
}

// Skyscraper builds Hua and Sheu's SB mapping for n segments (Figure 3 of
// the paper): stream j cyclically carries a group of w(j) consecutive
// segments, with the width series 1, 2, 2, 5, 5, 12, 12, ... The final
// group is truncated to n.
func Skyscraper(n int) (*Mapping, error) {
	if n <= 0 {
		return nil, fmt.Errorf("broadcast: SB needs a positive segment count, got %d", n)
	}
	var streams []Stream
	start := 1
	var widths []int
	for i := 0; start <= n; i++ {
		widths = skyscraperWidths(i + 1)
		count := min(widths[i], n-start+1)
		streams = append(streams, Stream{
			M:    1,
			Subs: []Substream{{Start: start, Count: count}},
		})
		start += count
	}
	return NewMapping(n, streams)
}

// Pagoda builds a pagoda-family mapping for n segments with a greedy
// fixed-delay-pagoda packer: each new stream starts at the first unassigned
// segment f, is split into m substreams (m chosen to maximize the number of
// segments packed), and substream r carries q_r = floor(g_r / m) consecutive
// segments starting at g_r, giving each a period q_r*m <= g_r.
//
// This stands in for the paper's NPB comparator (see DESIGN.md §3): the DHB
// paper only reproduces NPB's first three streams, and this packer satisfies
// the same invariant, fills streams almost as densely (8 vs 9 segments on
// three streams), and needs the same six streams for the evaluated
// 99-segment configuration.
func Pagoda(n int) (*Mapping, error) {
	if n <= 0 {
		return nil, fmt.Errorf("broadcast: pagoda needs a positive segment count, got %d", n)
	}
	var streams []Stream
	f := 1
	for f <= n {
		bestM, bestPacked := 1, 0
		for m := 1; m <= f; m++ {
			packed := pagodaPacked(f, m)
			if packed > bestPacked {
				bestM, bestPacked = m, packed
			}
		}
		st := Stream{M: bestM, Subs: make([]Substream, bestM)}
		g := f
		for r := 0; r < bestM; r++ {
			q := g / bestM
			if g > n {
				// Later substreams of the final stream stay idle once all
				// segments are assigned.
				st.Subs[r] = Substream{Start: 0, Count: 0}
				continue
			}
			count := min(q, n-g+1)
			st.Subs[r] = Substream{Start: g, Count: count}
			g += count
		}
		streams = append(streams, st)
		f = g
	}
	return NewMapping(n, streams)
}

// pagodaPacked reports how many segments a stream starting at segment f
// packs when split into m substreams.
func pagodaPacked(f, m int) int {
	g := f
	for r := 0; r < m; r++ {
		g += g / m
	}
	return g - f
}

// PagodaStreams reports how many streams the greedy pagoda packer needs for
// n segments.
func PagodaStreams(n int) int {
	m, err := Pagoda(n)
	if err != nil {
		return 0
	}
	return m.Streams()
}

// NPBFigure2 returns the canonical three-stream, nine-segment New Pagoda
// Broadcasting mapping exactly as drawn in Figure 2 of the paper:
//
//	stream 1: S1 S1 S1 S1 S1 S1 ...
//	stream 2: S2 S4 S2 S5 S2 S4 ...
//	stream 3: S3 S6 S8 S3 S7 S9 ...
func NPBFigure2() (*Mapping, error) {
	return NewMapping(9, []Stream{
		{M: 1, Subs: []Substream{{Start: 1, Count: 1}}},
		{M: 2, Subs: []Substream{
			{Start: 2, Count: 1},
			{Start: 4, Count: 2},
		}},
		{M: 3, Subs: []Substream{
			{Start: 3, Count: 1},
			{Start: 6, Count: 2},
			{Start: 8, Count: 2},
		}},
	})
}
