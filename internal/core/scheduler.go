// Package core implements the paper's contribution: the Dynamic Heuristic
// Broadcasting (DHB) protocol of Figure 6.
//
// DHB is a slotted protocol. A video is split into n segments of equal
// duration d; requests arriving during slot i are served by a transmission
// schedule starting at slot i+1. Each segment S_j carries a maximum period
// T[j] (T[j] = j for constant-bit-rate video): a request is satisfied by any
// instance of S_j transmitted in the window [i+1, i+T[j]]. When no such
// instance exists, DHB schedules a new one in the window slot with the
// minimum number of already-scheduled instances, breaking ties toward the
// latest slot so future requests have the best chance of sharing it.
//
// The package also provides the naive variant Section 3 discusses (always
// schedule at the last possible slot i+T[j]), whose bandwidth peaks grow to
// n times the consumption rate, and the VBR planning pipeline of Section 4
// (solutions DHB-a through DHB-d).
package core

import (
	"fmt"

	"vodcast/internal/slots"
	"vodcast/internal/video"
)

// Policy selects how the scheduler places a segment instance that no
// previous schedule covers.
type Policy int

const (
	// PolicyHeuristic is the DHB rule of Figure 6: minimum-load slot in the
	// window, ties broken toward the latest slot.
	PolicyHeuristic Policy = iota + 1
	// PolicyNaive is Section 3's strawman: always the latest slot of the
	// window. It maximizes sharing but piles transmissions into common
	// slots, producing bandwidth peaks up to n instances in one slot.
	PolicyNaive
	// PolicyMinLoadEarliest is an ablation of Figure 6's tie-breaking rule:
	// minimum-load slot, ties toward the EARLIEST slot. It flattens peaks
	// exactly like the heuristic but forfeits sharing, because instances
	// placed early leave the next request's window sooner.
	PolicyMinLoadEarliest
)

// Config parameterizes a Scheduler.
type Config struct {
	// Segments is the number of video segments n.
	Segments int
	// Periods is the 1-based maximum-period vector T (Periods[0] unused).
	// Nil selects the CBR default T[i] = i. Section 4's DHB-d solution
	// passes the work-ahead periods derived by internal/smoothing.
	Periods []int
	// Policy selects the placement rule; the zero value means
	// PolicyHeuristic.
	Policy Policy
	// MaxClientStreams caps how many streams one set-top box may receive
	// simultaneously (Section 5's future-work variant). Zero means
	// unlimited, the published protocol. A positive cap requires the
	// heuristic policy.
	MaxClientStreams int
	// TrackSegments records which segment ids occupy each slot, needed by
	// the schedule visualizer and the golden tests. Leave it off in large
	// simulations.
	TrackSegments bool
	// StartSlot is the index of the first transmission slot (the paper's
	// figures number slots from 1). The scheduler begins with this slot
	// current.
	StartSlot int
	// Observer optionally receives a callback at every scheduling
	// decision (see the Observer interface). Nil disables observation at
	// the cost of one branch per decision.
	Observer Observer
	// Reference selects the linear reference admission path: window scans
	// walk every slot and same-slot admissions are never memoized. It is
	// the executable specification the fast path is differential-tested
	// (and benchmarked) against; production schedulers leave it off.
	Reference bool
}

// SlotReport describes one retired (transmitted) slot.
type SlotReport struct {
	// Slot is the absolute slot index.
	Slot int
	// Load is the number of segment instances transmitted during the slot,
	// i.e. the slot's bandwidth in multiples of the consumption rate.
	Load int
	// Segments lists the transmitted segment ids when tracking is enabled.
	Segments []int
}

// Scheduler is the DHB transmission scheduler for a single video. It is not
// safe for concurrent use; every simulation drives it from one goroutine.
type Scheduler struct {
	n       int
	periods []int
	policy  Policy
	ring    *slots.Ring
	// lastSched[j] is the most recent slot holding an instance of segment
	// j, or a sentinel below every real slot. Because every instance for a
	// request arriving in slot i lands no later than i+T[j], an instance
	// exists in the window [i+1, i+T[j]] if and only if lastSched[j] >= i+1.
	lastSched []int
	current   int

	// reference pins the linear specification path (Config.Reference).
	reference bool
	// fullAdmitSlot memoizes the slot of the last completed full (From = 1)
	// admission: after it every segment has a timely instance
	// (lastSched[j] >= slot+1), so further full admissions in the same slot
	// are pure sharing and skip the placement loop entirely. Advancing the
	// slot invalidates the memo by construction (the comparison against
	// current fails); resumes only raise lastSched, which preserves it.
	fullAdmitSlot int

	// Client-bandwidth-capped mode (cap > 0) additionally tracks every
	// future instance per segment and a per-request slot-occupancy scratch.
	cap        int
	futureInst [][]int
	clientLoad []int

	requests  int64
	instances int64

	obs Observer
}

// New validates cfg and returns a scheduler whose current slot is
// cfg.StartSlot.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Segments <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadSegmentCount, cfg.Segments)
	}
	periods := cfg.Periods
	if periods == nil {
		periods = video.DefaultPeriods(cfg.Segments)
	}
	if err := video.ValidatePeriods(periods, cfg.Segments); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPeriods, err)
	}
	policy := cfg.Policy
	if policy == 0 {
		policy = PolicyHeuristic
	}
	if policy != PolicyHeuristic && policy != PolicyNaive && policy != PolicyMinLoadEarliest {
		return nil, fmt.Errorf("%w: %d", ErrBadPolicy, policy)
	}
	if cfg.StartSlot < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadStartSlot, cfg.StartSlot)
	}
	if cfg.MaxClientStreams < 0 {
		return nil, fmt.Errorf("%w: %d must be non-negative", ErrBadClientCap, cfg.MaxClientStreams)
	}
	if cfg.MaxClientStreams > 0 && policy != PolicyHeuristic {
		return nil, fmt.Errorf("%w: a positive cap requires the heuristic policy", ErrBadClientCap)
	}
	maxP := 0
	for j := 1; j <= cfg.Segments; j++ {
		if periods[j] > maxP {
			maxP = periods[j]
		}
	}
	own := make([]int, len(periods))
	copy(own, periods)
	newRing := slots.NewRing
	if cfg.Reference {
		newRing = slots.NewRingReference
	}
	s := &Scheduler{
		n:             cfg.Segments,
		periods:       own,
		policy:        policy,
		ring:          newRing(maxP+1, cfg.StartSlot, cfg.TrackSegments),
		current:       cfg.StartSlot,
		obs:           cfg.Observer,
		reference:     cfg.Reference,
		fullAdmitSlot: cfg.StartSlot - 1, // below any admissible slot
	}
	s.lastSched = make([]int, cfg.Segments+1)
	for j := range s.lastSched {
		s.lastSched[j] = cfg.StartSlot - 1 // below any schedulable slot
	}
	if cfg.MaxClientStreams > 0 {
		s.cap = cfg.MaxClientStreams
		s.futureInst = make([][]int, cfg.Segments+1)
		s.clientLoad = make([]int, maxP)
	}
	return s, nil
}

// ClientStreamCap reports the per-client concurrent stream cap (0 =
// unlimited).
func (s *Scheduler) ClientStreamCap() int { return s.cap }

// N reports the segment count.
func (s *Scheduler) N() int { return s.n }

// CurrentSlot reports the slot currently being transmitted; arrivals admitted
// now are served starting at CurrentSlot()+1.
func (s *Scheduler) CurrentSlot() int { return s.current }

// Requests reports how many requests have been admitted.
func (s *Scheduler) Requests() int64 { return s.requests }

// Instances reports how many segment instances have been scheduled in total.
func (s *Scheduler) Instances() int64 { return s.instances }

// Period reports T[j].
func (s *Scheduler) Period(j int) int { return s.periods[j] }

// admit implements Figure 6. When assignment is non-nil it is filled with
// the serving slot of every segment. It returns the number of newly
// scheduled instances (shared segments contribute nothing).
func (s *Scheduler) admit(assignment []int) int {
	if s.cap > 0 {
		return s.admitCapped(assignment)
	}
	i := s.current
	// Same-slot memo hit: a full admission already completed in this slot,
	// so every segment has a timely shared instance and the loop below would
	// share every one of them — exactly what this replays, without touching
	// the ring. The memo is only consulted when no Observer is attached (the
	// full loop keeps the exact per-decision callback semantics) and never
	// on the reference path.
	if s.fullAdmitSlot == i && s.obs == nil {
		s.requests++
		if assignment != nil {
			for j := 1; j <= s.n; j++ {
				assignment[j] = s.lastSched[j]
			}
		}
		return 0
	}
	s.requests++
	placed := 0
	for j := 1; j <= s.n; j++ {
		if s.lastSched[j] >= i+1 {
			// A timely instance is already scheduled; share it.
			if assignment != nil {
				assignment[j] = s.lastSched[j]
			}
			if s.obs != nil {
				s.obs.ObserveDecision(i, j, s.lastSched[j], i+1, i+s.periods[j], s.ring.Load(s.lastSched[j]), true)
			}
			continue
		}
		var slot int
		switch s.policy {
		case PolicyHeuristic:
			slot, _ = s.ring.MinLoadLatest(i+1, i+s.periods[j])
		case PolicyMinLoadEarliest:
			slot, _ = s.ring.MinLoadEarliest(i+1, i+s.periods[j])
		default: // PolicyNaive
			slot = i + s.periods[j]
		}
		s.ring.Add(slot, j)
		s.lastSched[j] = slot
		s.instances++
		placed++
		if assignment != nil {
			assignment[j] = slot
		}
		if s.obs != nil {
			s.obs.ObserveDecision(i, j, slot, i+1, i+s.periods[j], s.ring.Load(slot), false)
		}
	}
	if s.obs != nil {
		s.obs.ObserveAdmit(i, 1, placed)
	}
	if !s.reference {
		s.fullAdmitSlot = i
	}
	return placed
}

// ScheduledAt lists the segment ids currently scheduled in the given slot
// (only when the scheduler was built with TrackSegments). The returned slice
// is a copy; replay loops over many slots use EachScheduledAt.
func (s *Scheduler) ScheduledAt(slot int) []int { return s.ring.Segments(slot) }

// EachScheduledAt calls fn with each segment id currently scheduled in the
// given slot, in scheduling order, without copying the slot's segment list.
// It is a no-op unless the scheduler was built with TrackSegments; fn must
// not call back into the scheduler.
func (s *Scheduler) EachScheduledAt(slot int, fn func(seg int)) { s.ring.EachSegment(slot, fn) }

// LoadAt reports the number of instances currently scheduled in the given
// slot, which must lie inside the tracked window
// [CurrentSlot, CurrentSlot+maxPeriod].
func (s *Scheduler) LoadAt(slot int) int { return s.ring.Load(slot) }

// AdvanceSlot finishes transmitting the current slot and moves to the next,
// returning what the finished slot carried. Requests cannot add instances to
// a slot once it is current (their windows start one slot later), so the
// report is final.
func (s *Scheduler) AdvanceSlot() SlotReport {
	abs, load, segs := s.ring.Retire()
	s.current++
	if s.obs != nil {
		s.obs.ObserveRetire(abs, load, segs)
	}
	return SlotReport{Slot: abs, Load: load, Segments: segs}
}
