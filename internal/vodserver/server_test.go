package vodserver

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"bytes"

	"vodcast/internal/core"
	"vodcast/internal/fanout"
	"vodcast/internal/trace"
	"vodcast/internal/vodclient"
	"vodcast/internal/wire"
)

func startTestServer(t *testing.T, videos ...VideoConfig) *Server {
	t.Helper()
	if len(videos) == 0 {
		videos = []VideoConfig{{ID: 1, Segments: 10, SegmentBytes: 512}}
	}
	s, err := Start(Config{
		Addr:         "127.0.0.1:0",
		Videos:       videos,
		SlotDuration: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStartValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "empty catalogue", cfg: Config{SlotDuration: time.Millisecond}},
		{
			name: "zero slot",
			cfg: Config{
				Videos: []VideoConfig{{ID: 1, Segments: 5, SegmentBytes: 64}},
			},
		},
		{
			name: "zero segment bytes",
			cfg: Config{
				Videos:       []VideoConfig{{ID: 1, Segments: 5}},
				SlotDuration: time.Millisecond,
			},
		},
		{
			name: "duplicate ids",
			cfg: Config{
				Videos: []VideoConfig{
					{ID: 1, Segments: 5, SegmentBytes: 64},
					{ID: 1, Segments: 6, SegmentBytes: 64},
				},
				SlotDuration: time.Millisecond,
			},
		},
		{
			name: "bad segments",
			cfg: Config{
				Videos:       []VideoConfig{{ID: 1, Segments: 0, SegmentBytes: 64}},
				SlotDuration: time.Millisecond,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tt.cfg.Addr = "127.0.0.1:0"
			if _, err := Start(tt.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// TestEndToEndSingleClient is the canonical session: one client requests the
// video and must receive every segment, byte-perfect, by its deadline.
func TestEndToEndSingleClient(t *testing.T) {
	s := startTestServer(t)
	res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 10 {
		t.Fatalf("segments = %d, want 10", res.Segments)
	}
	if res.PayloadBytes < 10*512 {
		t.Fatalf("payload bytes = %d, want >= %d", res.PayloadBytes, 10*512)
	}
	st := s.Stats()
	if st.Requests != 1 {
		t.Fatalf("requests = %d, want 1", st.Requests)
	}
	if st.Instances != 10 {
		t.Fatalf("instances = %d, want 10 for an isolated request", st.Instances)
	}
}

// TestEndToEndConcurrentClientsShare verifies the whole point of the
// protocol over the real network: simultaneous customers share broadcast
// instances, so the server transmits far fewer than clients x segments.
func TestEndToEndConcurrentClientsShare(t *testing.T) {
	s := startTestServer(t, VideoConfig{ID: 1, Segments: 12, SegmentBytes: 256})
	const clients = 6
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("client errors: %v", errs)
	}
	st := s.Stats()
	if st.Requests != clients {
		t.Fatalf("requests = %d, want %d", st.Requests, clients)
	}
	// Without sharing the server would transmit 6*12 = 72 instances; the
	// clients arrive within a slot or two of each other, so sharing must
	// cut that down substantially.
	if st.Instances >= clients*12 {
		t.Fatalf("instances = %d: no sharing happened", st.Instances)
	}
	if st.Instances < 12 {
		t.Fatalf("instances = %d below one full video", st.Instances)
	}
}

func TestStaggeredClients(t *testing.T) {
	s := startTestServer(t, VideoConfig{ID: 1, Segments: 8, SegmentBytes: 128})
	for c := 0; c < 3; c++ {
		res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true})
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
		if res.MaxBuffered < 1 {
			t.Fatalf("client %d buffered nothing", c)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestMultipleVideos(t *testing.T) {
	s := startTestServer(t,
		VideoConfig{ID: 1, Segments: 6, SegmentBytes: 128},
		VideoConfig{ID: 2, Segments: 9, SegmentBytes: 64},
	)
	var wg sync.WaitGroup
	results := make([]vodclient.Result, 2)
	errs := make([]error, 2)
	for i, id := range []uint32{1, 2} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: id, Timeout: 10 * time.Second, StrictDeadlines: true})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("video %d: %v", i+1, err)
		}
	}
	if results[0].Segments != 6 || results[1].Segments != 9 {
		t.Fatalf("segments = %d, %d; want 6, 9", results[0].Segments, results[1].Segments)
	}
}

func TestUnknownVideoRejected(t *testing.T) {
	s := startTestServer(t)
	_, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 99, Timeout: 5 * time.Second, StrictDeadlines: true})
	if err == nil {
		t.Fatal("unknown video accepted")
	}
}

func TestBadFirstFrameRejected(t *testing.T) {
	s := startTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.SlotEnd{Slot: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.ErrorMsg); !ok {
		t.Fatalf("want ErrorMsg, got %T", msg)
	}
}

func TestCloseTerminatesCleanly(t *testing.T) {
	s := startTestServer(t)
	// A parked connection that never sends a request must not block Close.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not terminate")
	}
	// Idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: time.Second, StrictDeadlines: true}); err == nil {
		t.Fatal("fetch succeeded after Close")
	}
}

func TestDHBDPeriodsOverTheWire(t *testing.T) {
	// A stretched DHB-d style period vector must flow through the wire
	// protocol and still satisfy the client's deadline oracle.
	s := startTestServer(t, VideoConfig{
		ID:           7,
		Segments:     6,
		Periods:      []int{0, 1, 3, 3, 5, 6, 8},
		SegmentBytes: 256,
	})
	res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 7, Timeout: 10 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 6 {
		t.Fatalf("segments = %d, want 6", res.Segments)
	}
}

func TestClientTimeout(t *testing.T) {
	// A listener that accepts but never answers must trip the client's
	// deadline, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(2 * time.Second)
		}
	}()
	start := time.Now()
	_, err = vodclient.FetchWith(ln.Addr().String(), vodclient.FetchOptions{VideoID: 1, Timeout: 300 * time.Millisecond, StrictDeadlines: true})
	if err == nil {
		t.Fatal("fetch succeeded against a mute server")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("client did not respect its timeout")
	}
}

func TestVBRVideoOverTheWire(t *testing.T) {
	// The full Section 4 pipeline served over sockets: synthesize the
	// trace, derive the DHB-d plan, scale it to test size, and verify a
	// customer receives every variable-size unit by its relaxed deadline.
	tr, err := trace.SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := core.PlanVBR(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := NewVBRVideo(9, tr, plans[core.VariantD], 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Start(Config{
		Addr:         "127.0.0.1:0",
		Videos:       []VideoConfig{vc},
		SlotDuration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 9, Timeout: 30 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != plans[core.VariantD].Segments {
		t.Fatalf("segments = %d, want %d", res.Segments, plans[core.VariantD].Segments)
	}
	// Work-ahead delivery runs early, so the client buffer holds many
	// units at once — the behaviour Section 4's smoothing relies on.
	if res.MaxBuffered < 2 {
		t.Fatalf("max buffered = %d, want work-ahead buffering", res.MaxBuffered)
	}
}

func TestVBRVideoVariantB(t *testing.T) {
	tr, err := trace.SyntheticMatrix(42)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := core.PlanVBR(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := NewVBRVideo(3, tr, plans[core.VariantB], 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Variant B sizes track the trace: they must vary.
	min, max := vc.SegmentSizes[0], vc.SegmentSizes[0]
	for _, sz := range vc.SegmentSizes {
		if sz < min {
			min = sz
		}
		if sz > max {
			max = sz
		}
	}
	if min == max {
		t.Fatal("variant B segment sizes are uniform")
	}
	s, err := Start(Config{
		Addr:         "127.0.0.1:0",
		Videos:       []VideoConfig{vc},
		SlotDuration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 3, Timeout: 30 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}
}

func TestNewVBRVideoValidation(t *testing.T) {
	tr, err := trace.SyntheticMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := core.PlanVBR(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVBRVideo(1, nil, plans[core.VariantA], 1); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewVBRVideo(1, tr, plans[core.VariantA], 0); err == nil {
		t.Error("zero scale accepted")
	}
	bad := plans[core.VariantA]
	bad.Segments = 0
	if _, err := NewVBRVideo(1, tr, bad, 1); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestStartRejectsBadSegmentSizes(t *testing.T) {
	base := Config{Addr: "127.0.0.1:0", SlotDuration: time.Millisecond}
	base.Videos = []VideoConfig{{ID: 1, Segments: 3, SegmentSizes: []int{1, 2}}}
	if _, err := Start(base); err == nil {
		t.Error("mismatched size count accepted")
	}
	base.Videos = []VideoConfig{{ID: 1, Segments: 2, SegmentSizes: []int{1, 0}}}
	if _, err := Start(base); err == nil {
		t.Error("zero size accepted")
	}
}

func TestResumeOverTheWire(t *testing.T) {
	s := startTestServer(t, VideoConfig{ID: 1, Segments: 12, SegmentBytes: 256})
	// A full viewing and a resume from segment 9 share the suffix.
	full, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, From: 9, Timeout: 10 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Segments != 12 || resumed.Segments != 12 {
		t.Fatalf("segments: full %d, resumed %d", full.Segments, resumed.Segments)
	}
	// The resumed session only waits for 4 segments, so it finishes much
	// faster than a full viewing (12 slots vs at most 5).
	if resumed.Elapsed >= full.Elapsed {
		t.Fatalf("resume took %v, full viewing %v", resumed.Elapsed, full.Elapsed)
	}
}

func TestResumeBeyondVideoRejected(t *testing.T) {
	s := startTestServer(t, VideoConfig{ID: 1, Segments: 5, SegmentBytes: 64})
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, From: 6, Timeout: 5 * time.Second, StrictDeadlines: true}); err == nil {
		t.Fatal("resume beyond the video accepted")
	}
}

func TestConcurrentResumesShare(t *testing.T) {
	s := startTestServer(t, VideoConfig{ID: 1, Segments: 10, SegmentBytes: 128})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, errs[id] = vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, From: 6, Timeout: 10 * time.Second, StrictDeadlines: true})
		}(c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
	}
	st := s.Stats()
	// Four resumes of the 5-segment suffix share instances: far below 20.
	if st.Instances >= 20 {
		t.Fatalf("instances = %d: resumes did not share", st.Instances)
	}
}

func TestStatszEndpoint(t *testing.T) {
	s, err := Start(Config{
		Addr:         "127.0.0.1:0",
		Videos:       []VideoConfig{{ID: 1, Segments: 6, SegmentBytes: 64}},
		SlotDuration: 10 * time.Millisecond,
		StatsAddr:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.StatsAddr() == "" {
		t.Fatal("stats endpoint not bound")
	}
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.StatsAddr() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Instances != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// Non-GET is rejected.
	post, err := http.Post("http://"+s.StatsAddr()+"/statsz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}

func TestStatszDisabledByDefault(t *testing.T) {
	s := startTestServer(t)
	if s.StatsAddr() != "" {
		t.Fatal("stats endpoint bound without configuration")
	}
}

func TestUnsubscribeIdempotent(t *testing.T) {
	s := startTestServer(t)
	sub := &subscriber{batches: make(chan slotBatch, 1)}
	v := s.videos[1]
	v.subs.Add(sub)
	s.unsubscribe(1, sub)
	// The channel must be closed exactly once; a second call is a no-op.
	s.unsubscribe(1, sub)
	s.unsubscribe(99, sub) // unknown video: no-op
	if _, open := <-sub.batches; open {
		t.Fatal("channel not closed by unsubscribe")
	}

	// Same contract for a zero-copy ring subscriber: the first call drops
	// the ring, repeats and unknown videos are no-ops.
	rsub := &subscriber{ring: fanout.NewRing(1)}
	v.subs.Add(rsub)
	s.unsubscribe(1, rsub)
	s.unsubscribe(1, rsub)
	s.unsubscribe(99, rsub)
	if !rsub.ring.Dropped() {
		t.Fatal("ring not dropped by unsubscribe")
	}
	if _, open := rsub.ring.PopAll(nil); open {
		t.Fatal("dropped ring still open")
	}
}

// TestReferenceFanoutServesIdenticalStream runs the retained
// serialize-per-tick data plane end to end. The strict client oracle
// verifies every payload byte against the same deterministic generator the
// zero-copy plane is held to in TestEndToEndSingleClient, so the two
// passing together prove the planes are byte-identical on the wire (the
// frame-level differential test lives in internal/fanout).
func TestReferenceFanoutServesIdenticalStream(t *testing.T) {
	s, err := Start(Config{
		Addr:            "127.0.0.1:0",
		Videos:          []VideoConfig{{ID: 1, Segments: 10, SegmentBytes: 512}},
		SlotDuration:    10 * time.Millisecond,
		FanoutReference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	res, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, Timeout: 10 * time.Second, StrictDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 10 || res.PayloadBytes < 10*512 {
		t.Fatalf("reference plane result = %+v", res)
	}
	// Resumes ride the same plane.
	if _, err := vodclient.FetchWith(s.Addr(), vodclient.FetchOptions{VideoID: 1, From: 6, Timeout: 10 * time.Second, StrictDeadlines: true}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Requests != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRawWireV1Session drives a version-less request over a raw TCP
// connection — the legacy protocol the retired Fetch helper spoke — and
// checks the server still serves it: a v1 ScheduleInfo without trace
// identifiers, every segment delivered with verified payload bytes, and the
// stream left open past the final slot with no report owed.
func TestRawWireV1Session(t *testing.T) {
	s := startTestServer(t, VideoConfig{ID: 4, Segments: 5, SegmentBytes: 96})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.Request{VideoID: 4, FromSegment: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := msg.(wire.ScheduleInfo)
	if !ok {
		t.Fatalf("first frame %T, want ScheduleInfo", msg)
	}
	if info.Version != 0 || info.TraceID != 0 || info.SpanID != 0 {
		t.Fatalf("v1 session granted v2 fields: %+v", info)
	}
	// Consume the broadcast exactly as the old v1 client did: verify every
	// payload byte, stop at the slot that retires the whole schedule.
	last := info.AdmitSlot
	for _, p := range info.Periods {
		if info.AdmitSlot+uint64(p) > last {
			last = info.AdmitSlot + uint64(p)
		}
	}
	got := make(map[uint32]bool)
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case wire.Segment:
			want := wire.SegmentPayload(m.VideoID, m.Segment, info.SizeOf(m.Segment))
			if !bytes.Equal(m.Payload, want) {
				t.Fatalf("corrupt payload for segment %d", m.Segment)
			}
			got[m.Segment] = true
		case wire.SlotEnd:
			if m.Slot >= last {
				for j := uint32(1); j <= info.Segments; j++ {
					if !got[j] {
						t.Fatalf("segment %d never delivered", j)
					}
				}
				return
			}
		default:
			t.Fatalf("unexpected frame %T", msg)
		}
	}
}
