package client

import (
	"strings"
	"testing"

	"vodcast/internal/core"
	"vodcast/internal/sim"
	"vodcast/internal/video"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []int{0}); err == nil {
		t.Fatal("empty periods should error")
	}
	if _, err := New(0, []int{0, 2}); err == nil {
		t.Fatal("T[1] != 1 should error")
	}
	if _, err := New(-1, video.DefaultPeriods(3)); err == nil {
		t.Fatal("negative arrival should error")
	}
}

func TestSTBHappyPath(t *testing.T) {
	c, err := New(1, video.DefaultPeriods(3))
	if err != nil {
		t.Fatal(err)
	}
	feeds := []struct {
		slot int
		segs []int
	}{
		{slot: 2, segs: []int{1}},
		{slot: 3, segs: []int{2}},
		{slot: 4, segs: []int{3}},
	}
	for _, f := range feeds {
		if err := c.ObserveSlot(f.slot, f.segs); err != nil {
			t.Fatalf("slot %d: %v", f.slot, err)
		}
	}
	if !c.Complete() {
		t.Fatal("all segments fed but STB not complete")
	}
	if c.MaxBuffered() != 1 {
		t.Fatalf("MaxBuffered = %d, want 1 for just-in-time delivery", c.MaxBuffered())
	}
}

func TestSTBDetectsMissedDeadline(t *testing.T) {
	c, err := New(1, video.DefaultPeriods(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveSlot(2, []int{1}); err != nil {
		t.Fatal(err)
	}
	// Slot 3 passes without segment 2: deadline 1+2=3 missed.
	err = c.ObserveSlot(3, nil)
	if err == nil || !strings.Contains(err.Error(), "segment 2") {
		t.Fatalf("missed deadline not detected: %v", err)
	}
}

func TestSTBEarlyDeliveryBuffers(t *testing.T) {
	c, err := New(0, video.DefaultPeriods(4))
	if err != nil {
		t.Fatal(err)
	}
	// Everything arrives in slot 1: buffer holds 4 segments at once.
	if err := c.ObserveSlot(1, []int{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if c.MaxBuffered() != 4 {
		t.Fatalf("MaxBuffered = %d, want 4", c.MaxBuffered())
	}
	for slot := 2; slot <= 4; slot++ {
		if err := c.ObserveSlot(slot, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Complete() {
		t.Fatal("STB not complete")
	}
}

func TestSTBIgnoresPreArrivalAndDuplicates(t *testing.T) {
	c, err := New(5, video.DefaultPeriods(2))
	if err != nil {
		t.Fatal(err)
	}
	// Transmission during the arrival slot itself cannot be used.
	if err := c.ObserveSlot(5, []int{1}); err != nil {
		t.Fatal(err)
	}
	if c.Received(1) {
		t.Fatal("segment downloaded during the arrival slot")
	}
	if err := c.ObserveSlot(6, []int{1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if !c.Received(1) || !c.Received(2) {
		t.Fatal("segments not received")
	}
	if c.MaxBuffered() != 2 {
		t.Fatalf("MaxBuffered = %d, want 2 (duplicate must not double-count)", c.MaxBuffered())
	}
}

func TestSTBRejectsBadInput(t *testing.T) {
	c, err := New(0, video.DefaultPeriods(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveSlot(1, []int{7}); err == nil {
		t.Fatal("unknown segment accepted")
	}
	if err := c.ObserveSlot(1, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveSlot(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveSlot(1, nil); err == nil {
		t.Fatal("out-of-order slot accepted")
	}
}

// TestDHBServesEveryCustomer is the end-to-end oracle: a DHB scheduler under
// Poisson load, with an STB spawned per request, must deliver every segment
// of every request by its deadline.
func TestDHBServesEveryCustomer(t *testing.T) {
	const n = 30
	periods := video.DefaultPeriods(n)
	for _, policy := range []core.Policy{core.PolicyHeuristic, core.PolicyNaive} {
		s, err := core.New(core.Config{Segments: n, TrackSegments: true, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(31)
		var live []*STB
		for step := 0; step < 3000; step++ {
			for a := 0; a < rng.Poisson(0.5); a++ {
				s.AdmitRequest(core.AdmitOptions{})
				stb, err := New(s.CurrentSlot(), periods)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, stb)
			}
			rep := s.AdvanceSlot()
			kept := live[:0]
			for _, stb := range live {
				if err := stb.ObserveSlot(rep.Slot, rep.Segments); err != nil {
					t.Fatalf("policy %v: %v", policy, err)
				}
				if !stb.Complete() {
					kept = append(kept, stb)
				}
			}
			live = kept
		}
	}
}

// TestDHBWithWorkAheadPeriodsServesEveryCustomer repeats the oracle with a
// stretched DHB-d style period vector.
func TestDHBWithWorkAheadPeriodsServesEveryCustomer(t *testing.T) {
	periods := []int{0, 1, 3, 3, 5, 6, 7, 9, 9, 11, 12}
	s, err := core.New(core.Config{Segments: 10, Periods: periods, TrackSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(33)
	var live []*STB
	for step := 0; step < 4000; step++ {
		for a := 0; a < rng.Poisson(0.8); a++ {
			s.AdmitRequest(core.AdmitOptions{})
			stb, err := New(s.CurrentSlot(), periods)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, stb)
		}
		rep := s.AdvanceSlot()
		kept := live[:0]
		for _, stb := range live {
			if err := stb.ObserveSlot(rep.Slot, rep.Segments); err != nil {
				t.Fatal(err)
			}
			if !stb.Complete() {
				kept = append(kept, stb)
			}
		}
		live = kept
	}
}

func TestNewFromValidation(t *testing.T) {
	p := video.DefaultPeriods(5)
	if _, err := NewFrom(0, p, 0); err == nil {
		t.Error("from 0 accepted")
	}
	if _, err := NewFrom(0, p, 6); err == nil {
		t.Error("from beyond n accepted")
	}
}

func TestResumeSTBDeadlinesShift(t *testing.T) {
	c, err := NewFrom(10, video.DefaultPeriods(6), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The customer consumes segment 4 first: deadline 10+1, then 10+2, ...
	if c.Deadline(4) != 11 || c.Deadline(5) != 12 || c.Deadline(6) != 13 {
		t.Fatalf("deadlines = %d %d %d", c.Deadline(4), c.Deadline(5), c.Deadline(6))
	}
	if c.Deadline(2) != -1 {
		t.Fatalf("pre-resume segment has deadline %d", c.Deadline(2))
	}
	if c.Complete() {
		t.Fatal("resume STB complete before receiving anything")
	}
	if !c.Received(3) {
		t.Fatal("pre-resume segments should count as held")
	}
}

func TestResumeSTBHappyPath(t *testing.T) {
	c, err := NewFrom(0, video.DefaultPeriods(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []struct {
		slot int
		segs []int
	}{
		{slot: 1, segs: []int{3, 1}}, // stray S1 is ignored (already held)
		{slot: 2, segs: []int{4}},
		{slot: 3, segs: []int{5}},
	}
	for _, f := range feeds {
		if err := c.ObserveSlot(f.slot, f.segs); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Complete() {
		t.Fatal("resume STB not complete")
	}
}

func TestResumeSTBDetectsMiss(t *testing.T) {
	c, err := NewFrom(0, video.DefaultPeriods(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 1 passes without segment 3, whose shifted deadline is slot 1.
	if err := c.ObserveSlot(1, nil); err == nil {
		t.Fatal("missed shifted deadline not detected")
	}
}
