package vodclient

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// This file is the bounded dialing layer a load harness multiplexes its
// sessions over. The wire protocol is one session per TCP connection (the
// server closes the connection when the subscription ends), so "reuse" here
// is not connection recycling: the pool bounds how many sockets exist at
// once, shares one configured net.Dialer (and its local port/keep-alive
// state) across every session, and makes sessions beyond the bound queue for
// a slot instead of exhausting file descriptors. A hundred thousand logical
// sessions ride a few hundred connections; the queueing delay each session
// pays is measured and surfaced as Result.PoolWait.

// Pool runs sessions against one server address through a bounded number of
// concurrent connections. All methods are safe for concurrent use.
type Pool struct {
	addr   string
	sem    chan struct{}
	dialer net.Dialer

	mu     sync.Mutex
	active int
	peak   int
	dials  uint64
	waits  uint64
}

// PoolStats is a consistent snapshot of a pool's lifetime counters.
type PoolStats struct {
	// MaxConns is the configured connection bound; Active the connections
	// open right now; Peak the high-water mark.
	MaxConns int `json:"max_conns"`
	Active   int `json:"active"`
	Peak     int `json:"peak"`
	// Dials counts established connections; Waits counts sessions that had
	// to queue for a slot before dialing.
	Dials uint64 `json:"dials"`
	Waits uint64 `json:"waits"`
}

// NewPool returns a pool of at most maxConns concurrent connections to addr.
func NewPool(addr string, maxConns int) (*Pool, error) {
	if addr == "" {
		return nil, fmt.Errorf("vodclient: pool address must be non-empty")
	}
	if maxConns <= 0 {
		return nil, fmt.Errorf("vodclient: pool size %d must be positive", maxConns)
	}
	return &Pool{
		addr: addr,
		sem:  make(chan struct{}, maxConns),
		// Keep-alive pins half-open sockets down fast under churn; the
		// per-session timeout still bounds each dial.
		dialer: net.Dialer{KeepAlive: 15 * time.Second},
	}, nil
}

// Fetch runs one v2 session through the pool: wait for a connection slot,
// dial with the shared dialer, run the session, release the slot. The
// returned Result carries the slot wait (PoolWait) and the dial latency
// (Dial); opts.Timeout bounds dial plus session, not the slot wait — a
// closed-loop harness wants saturated pools to queue, not to error.
func (p *Pool) Fetch(opts FetchOptions) (Result, error) {
	if opts.From == 0 {
		opts.From = 1
	}
	if err := checkOptions(opts); err != nil {
		return Result{}, err
	}
	// Uncontended acquisition is the fast path and records a zero wait; only
	// a full pool starts the clock.
	var wait time.Duration
	select {
	case p.sem <- struct{}{}:
	default:
		waitStart := time.Now()
		p.sem <- struct{}{}
		wait = time.Since(waitStart)
	}
	defer func() { <-p.sem }()

	start := time.Now()
	conn, err := p.dialer.Dial("tcp", p.addr)
	if err != nil {
		return Result{}, fmt.Errorf("vodclient: pool dial: %w", err)
	}
	dial := time.Since(start)

	p.mu.Lock()
	p.dials++
	if wait > 0 {
		p.waits++
	}
	p.active++
	if p.active > p.peak {
		p.peak = p.active
	}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.active--
		p.mu.Unlock()
	}()

	res, err := runSession(conn, start, dial, opts)
	res.PoolWait = wait
	return res, err
}

// Addr reports the server address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		MaxConns: cap(p.sem),
		Active:   p.active,
		Peak:     p.peak,
		Dials:    p.dials,
		Waits:    p.waits,
	}
}
