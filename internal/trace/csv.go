package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits the trace as "second,bytes" rows with a header line, the
// format cmd/tracegen produces and ReadCSV parses back.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("second,bytes\n"); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := 0; i < t.Seconds(); i++ {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", i, strconv.FormatFloat(t.Rate(i), 'f', -1, 64)); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Rows must be consecutive
// seconds starting at 0.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != "second,bytes" {
		return nil, fmt.Errorf("trace: unexpected header %q", got)
	}
	var rates []float64
	line := 1
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" {
			continue
		}
		parts := strings.Split(row, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", line, len(parts))
		}
		sec, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad second: %w", line, err)
		}
		if sec != len(rates) {
			return nil, fmt.Errorf("trace: line %d: second %d out of order (want %d)", line, sec, len(rates))
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rate: %w", line, err)
		}
		rates = append(rates, rate)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return New(rates)
}
