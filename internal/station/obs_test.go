package station

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vodcast/internal/core"
	"vodcast/internal/obs"
)

// shardMetrics reads the per-shard counter/gauge children back out of the
// registry (same name + labels returns the same child).
func shardMetrics(reg *obs.Registry, shard int) (depth *obs.Gauge, admits, rejects *obs.Counter) {
	ls := obs.Labels{"shard": fmt.Sprint(shard)}
	return reg.GaugeWith("station_shard_queue_depth", "", ls),
		reg.CounterWith("station_shard_admits_total", "", ls),
		reg.CounterWith("station_shard_rejects_total", "", ls)
}

// TestOverloadSheddingMetrics fills a shard queue past its bound and asserts
// the reject counter and the queue-depth gauge agree exactly with the
// returned ErrOverloaded errors. Table-driven over queue depths and offered
// loads; FlushBatch is kept above the offered load so nothing drains
// mid-fill.
func TestOverloadSheddingMetrics(t *testing.T) {
	cases := []struct {
		name       string
		queueDepth int
		offered    int
	}{
		{"no overload", 8, 5},
		{"exactly full", 8, 8},
		{"one shed", 8, 9},
		{"heavy overload", 4, 64},
		{"default depth untouched", 0, 100}, // DefaultQueueDepth=1024 > 100
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			st, err := New(Config{
				Videos:     testCatalogue(1, 10),
				QueueDepth: tc.queueDepth,
				FlushBatch: 1 << 20,
				Registry:   reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			shed := 0
			for i := 0; i < tc.offered; i++ {
				switch err := st.Enqueue(0, 1); {
				case err == nil:
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Fatalf("enqueue %d: unexpected error %v", i, err)
				}
			}
			cap := tc.queueDepth
			if cap == 0 {
				cap = DefaultQueueDepth
			}
			wantShed := tc.offered - cap
			if wantShed < 0 {
				wantShed = 0
			}
			if shed != wantShed {
				t.Fatalf("shed %d requests, want %d", shed, wantShed)
			}
			depth, admits, rejects := shardMetrics(reg, 0)
			if got := rejects.Value(); got != float64(shed) {
				t.Fatalf("reject counter = %v, errors returned = %d", got, shed)
			}
			wantDepth := tc.offered - shed
			if got := depth.Value(); got != float64(wantDepth) {
				t.Fatalf("queue-depth gauge = %v, want %v", got, wantDepth)
			}
			if got := st.Pending(0); got != wantDepth {
				t.Fatalf("Pending = %d, gauge says %v", got, wantDepth)
			}
			if got := admits.Value(); got != 0 {
				t.Fatalf("admits counter = %v before any flush", got)
			}
			// Drain: after a slot advance the gauge returns to zero and
			// every queued request became an admit.
			st.AdvanceSlot()
			if got := depth.Value(); got != 0 {
				t.Fatalf("queue-depth gauge = %v after flush", got)
			}
			if got := admits.Value(); got != float64(wantDepth) {
				t.Fatalf("admits counter = %v after flush, want %v", got, wantDepth)
			}
		})
	}
}

// TestOverloadSheddingConcurrent offers load from many goroutines against a
// tiny queue: whatever interleaving happens, accepted + shed must equal
// offered, and the metrics must agree with the error count. Run under -race
// this also exercises the instrumented Enqueue path concurrently.
func TestOverloadSheddingConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := New(Config{
		Videos:     testCatalogue(1, 10),
		QueueDepth: 16,
		FlushBatch: 1 << 20,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const (
		workers = 8
		perW    = 50
	)
	var shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := st.Enqueue(0, 1); errors.Is(err, ErrOverloaded) {
					shed.Add(1)
				} else if err != nil {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	accepted := int64(workers*perW) - shed.Load()
	if accepted != 16 {
		t.Fatalf("accepted %d, want exactly the queue bound 16", accepted)
	}
	depth, _, rejects := shardMetrics(reg, 0)
	if got := rejects.Value(); got != float64(shed.Load()) {
		t.Fatalf("reject counter = %v, errors returned = %d", got, shed.Load())
	}
	if got := depth.Value(); got != float64(accepted) {
		t.Fatalf("queue-depth gauge = %v, accepted = %d", got, accepted)
	}
}

// TestStationStatusAndStages drives an instrumented station through both
// admission paths and the clock, then checks the Status snapshot: stage
// windows populated, shard table consistent with the registry counters,
// clock ticking and drift fields sane.
func TestStationStatusAndStages(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := New(Config{
		Videos:     testCatalogue(4, 10),
		Shards:     2,
		FlushBatch: 4,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for v := 0; v < 4; v++ {
		if _, err := st.Admit(v, core.AdmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := st.Enqueue(i%4, 1); err != nil {
			t.Fatal(err)
		}
	}
	st.AdvanceSlot()

	s := st.Status()
	if s.Videos != 4 || len(s.Shards) != 2 {
		t.Fatalf("videos=%d shards=%d", s.Videos, len(s.Shards))
	}
	if s.Requests != 12 {
		t.Fatalf("requests = %d, want 12", s.Requests)
	}
	var admits float64
	for _, row := range s.Shards {
		if row.Videos != 2 || row.QueueCap != DefaultQueueDepth || row.Pending != 0 {
			t.Fatalf("shard row %+v", row)
		}
		admits += row.Admits
	}
	if admits != 12 {
		t.Fatalf("shard admits sum = %v, want 12", admits)
	}
	// The per-video table carries one row per catalogue entry, in catalogue
	// order, each attributed to its shard with live scheduler counters.
	if len(s.PerVideo) != 4 {
		t.Fatalf("per-video rows = %d, want 4", len(s.PerVideo))
	}
	for v, row := range s.PerVideo {
		if row.Video != v {
			t.Fatalf("per-video rows out of catalogue order: %+v", s.PerVideo)
		}
		if row.Shard != v%2 {
			t.Fatalf("video %d attributed to shard %d, want %d", v, row.Shard, v%2)
		}
		// Each video took 1 Admit + 2 Enqueues; the advance flushed them.
		if row.Requests != 3 {
			t.Fatalf("video %d requests = %d, want 3", v, row.Requests)
		}
		if row.Slot < 1 || row.Instances == 0 {
			t.Fatalf("video %d row %+v: slot/instances not advanced", v, row)
		}
	}
	for _, name := range []string{StageLockWait, StageAdmit, StageEnqueueWait, StageQueueDepth} {
		snap, ok := s.Stages[name]
		if !ok || snap.Count == 0 {
			t.Fatalf("stage %q missing or empty: %+v", name, snap)
		}
		if snap.P50 > snap.P99 || snap.P99 > snap.Max {
			t.Fatalf("stage %q quantiles unordered: %+v", name, snap)
		}
	}
	// The queue-depth stage saw the two batch flushes (size 4) and the
	// advance-time flush; its max is the configured batch trigger.
	if got := s.Stages[StageQueueDepth].Max; got != 4 {
		t.Fatalf("sampled queue depth max = %v, want 4", got)
	}

	if s.Clock.Running || s.Clock.Ticks != 0 {
		t.Fatalf("clock should be idle: %+v", s.Clock)
	}
	if err := st.StartClock(time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Status().Clock.Ticks < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s = st.Status()
	if !s.Clock.Running || s.Clock.IntervalSeconds != 0.001 {
		t.Fatalf("clock status %+v", s.Clock)
	}
	if s.Clock.Ticks < 3 || s.Clock.Lag.Count == 0 {
		t.Fatalf("clock did not tick: %+v", s.Clock)
	}
	if s.Clock.LagSeconds < 0 || s.Clock.DriftSlots < 0 {
		t.Fatalf("negative lag/drift: %+v", s.Clock)
	}
	st.StopClock()
	if s := st.Status(); s.Clock.Running {
		t.Fatalf("clock still running after stop: %+v", s.Clock)
	}
	// The clock gauges reached the registry too.
	if got := reg.CounterWith("station_clock_ticks_total", "", nil).Value(); got < 3 {
		t.Fatalf("clock ticks counter = %v", got)
	}
}

// TestStatusUninstrumented: without a Registry the snapshot still works and
// simply carries no stage windows.
func TestStatusUninstrumented(t *testing.T) {
	st, err := New(Config{Videos: testCatalogue(2, 6)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Admit(0, core.AdmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Enqueue(1, 1); err != nil {
		t.Fatal(err)
	}
	st.AdvanceSlot()
	s := st.Status()
	if s.Stages != nil {
		t.Fatalf("uninstrumented station grew stages: %v", s.Stages)
	}
	if s.Requests != 2 || s.Videos != 2 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Shards[0].Admits != 0 {
		t.Fatalf("uninstrumented shard reports admits %v", s.Shards[0].Admits)
	}
}
