package experiments

import (
	"testing"

	"vodcast/internal/core"
)

// sweepOnce caches the quick sweep: several shape tests read the same rows.
var sweepRows []SweepRow

func quickSweep(t *testing.T) []SweepRow {
	t.Helper()
	if sweepRows != nil {
		return sweepRows
	}
	cfg := QuickConfig()
	cfg.IncludeAblation = true
	rows, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sweepRows = rows
	return rows
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "empty rates", mut: func(c *Config) { c.Rates = nil }},
		{name: "negative rate", mut: func(c *Config) { c.Rates = []float64{-1} }},
		{name: "zero segments", mut: func(c *Config) { c.Segments = 0 }},
		{name: "zero video", mut: func(c *Config) { c.VideoSeconds = 0 }},
		{name: "bad hours", mut: func(c *Config) { c.MaxHours = c.MinHours - 1 }},
		{name: "negative warmup", mut: func(c *Config) { c.WarmupSlots = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if _, err := Sweep(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestHoursForClamps(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.hoursFor(1); got != cfg.MaxHours {
		t.Fatalf("hoursFor(1) = %v, want clamp to %v", got, cfg.MaxHours)
	}
	if got := cfg.hoursFor(1e6); got != cfg.MinHours {
		t.Fatalf("hoursFor(1e6) = %v, want clamp to %v", got, cfg.MinHours)
	}
	if got := cfg.hoursFor(100); got != cfg.TargetRequests/100 {
		t.Fatalf("hoursFor(100) = %v, want %v", got, cfg.TargetRequests/100)
	}
}

// TestFig7Shape pins the paper's Figure 7: DHB needs less average bandwidth
// than stream tapping, UD and NPB at every rate above two requests per hour;
// NPB is flat at its stream count; tapping grows without bound.
func TestFig7Shape(t *testing.T) {
	rows := quickSweep(t)
	for _, r := range rows {
		if r.NPB != 6 {
			t.Fatalf("rate %v: NPB = %v streams, want the flat 6 for 99 segments", r.RatePerHour, r.NPB)
		}
		if r.RatePerHour >= 2 {
			if r.DHBAvg >= r.TappingAvg {
				t.Errorf("rate %v: DHB avg %.2f not below tapping %.2f", r.RatePerHour, r.DHBAvg, r.TappingAvg)
			}
			if r.DHBAvg >= r.UDAvg {
				t.Errorf("rate %v: DHB avg %.2f not below UD %.2f", r.RatePerHour, r.DHBAvg, r.UDAvg)
			}
			if r.DHBAvg >= r.NPB {
				t.Errorf("rate %v: DHB avg %.2f not below NPB %.0f", r.RatePerHour, r.DHBAvg, r.NPB)
			}
		}
	}
	// Tapping must eventually cross above both UD and NPB (the whole point
	// of proactive protocols at high rates).
	last := rows[len(rows)-1]
	if last.TappingAvg <= last.NPB {
		t.Fatalf("tapping avg %.2f did not cross above NPB at %v/h", last.TappingAvg, last.RatePerHour)
	}
	// UD saturates to its FB stream count of 7; DHB saturates below NPB.
	if last.UDAvg < 6.8 || last.UDAvg > 7.0 {
		t.Fatalf("UD saturation = %.2f, want about 7", last.UDAvg)
	}
	if last.DHBAvg < 4.5 || last.DHBAvg >= 6 {
		t.Fatalf("DHB saturation = %.2f, want within [4.5, 6) (H(99) = 5.17)", last.DHBAvg)
	}
}

func TestFig7DHBMonotone(t *testing.T) {
	rows := quickSweep(t)
	for i := 1; i < len(rows); i++ {
		if rows[i].DHBAvg < rows[i-1].DHBAvg-0.05 {
			t.Fatalf("DHB average bandwidth decreased from %.2f to %.2f between %v and %v req/h",
				rows[i-1].DHBAvg, rows[i].DHBAvg, rows[i-1].RatePerHour, rows[i].RatePerHour)
		}
	}
}

// TestFig8Shape pins the paper's Figure 8: NPB has the smallest maximum
// bandwidth, DHB the highest, and the DHB-NPB gap never exceeds twice the
// consumption rate.
func TestFig8Shape(t *testing.T) {
	rows := quickSweep(t)
	for _, r := range rows {
		if r.DHBMax > r.NPB+2 {
			t.Errorf("rate %v: DHB max %.0f exceeds NPB+2 = %.0f (paper: gap never above 2b)",
				r.RatePerHour, r.DHBMax, r.NPB+2)
		}
		if r.UDMax > 7 {
			t.Errorf("rate %v: UD max %.0f above its 7-stream ceiling", r.RatePerHour, r.UDMax)
		}
	}
	last := rows[len(rows)-1]
	if !(last.NPB <= last.UDMax && last.UDMax <= last.DHBMax) {
		t.Fatalf("saturated ordering NPB (%v) <= UD max (%v) <= DHB max (%v) violated",
			last.NPB, last.UDMax, last.DHBMax)
	}
}

// TestAblationShape pins Section 3's finding: the dynamic pagoda protocol
// stays between DHB and static NPB, which is why the authors abandoned it
// for the heuristic approach.
func TestAblationShape(t *testing.T) {
	rows := quickSweep(t)
	for _, r := range rows {
		if r.DNPBAvg == 0 {
			t.Fatal("ablation rows not populated")
		}
		if r.DNPBAvg > r.NPB {
			t.Errorf("rate %v: dynamic pagoda avg %.2f above its static parent %.0f", r.RatePerHour, r.DNPBAvg, r.NPB)
		}
		if r.RatePerHour >= 10 && r.DHBAvg >= r.DNPBAvg {
			t.Errorf("rate %v: DHB avg %.2f not below dynamic pagoda %.2f", r.RatePerHour, r.DHBAvg, r.DNPBAvg)
		}
		if r.DNPBMax > 6 {
			t.Errorf("rate %v: dynamic pagoda max %.0f above 6 streams", r.RatePerHour, r.DNPBMax)
		}
	}
}

// TestPeaks pins Section 3's motivation for the heuristic: naive latest-slot
// scheduling produces bandwidth peaks several times those of DHB.
func TestPeaks(t *testing.T) {
	res, err := Peaks(120, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveMax < 3*res.HeuristicMax {
		t.Fatalf("naive peak %d not at least 3x the heuristic peak %d", res.NaiveMax, res.HeuristicMax)
	}
	if res.HeuristicMax > 10 {
		t.Fatalf("heuristic peak %d too high for 120 segments", res.HeuristicMax)
	}
	// Both policies transmit nearly the same average bandwidth; the
	// heuristic buys its flat peaks with at most a small average overhead.
	if res.HeuristicAvg > res.NaiveAvg*1.1 {
		t.Fatalf("heuristic avg %.2f much above naive avg %.2f", res.HeuristicAvg, res.NaiveAvg)
	}
}

func TestPeaksValidation(t *testing.T) {
	if _, err := Peaks(0, 10); err == nil {
		t.Fatal("zero segments should error")
	}
	if _, err := Peaks(10, 0); err == nil {
		t.Fatal("zero horizon should error")
	}
}

// TestFig9Shape pins the paper's Figure 9: at every rate the bandwidth
// ordering is UD > DHB-a > DHB-b > DHB-c >= DHB-d (in MB/s), and switching
// from peak-rate streams to deterministic waiting (a -> b) is the largest
// single saving.
func TestFig9Shape(t *testing.T) {
	cfg := QuickVBRConfig()
	cfg.Rates = []float64{1, 10, 100, 1000}
	rows, plans, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plans[core.VariantA].Segments != 137 {
		t.Fatalf("DHB-a plan has %d segments, want 137", plans[core.VariantA].Segments)
	}
	for _, r := range rows {
		if !(r.UD > r.DHBA && r.DHBA > r.DHBB && r.DHBB > r.DHBC) {
			t.Errorf("rate %v: ordering UD (%.2f) > a (%.2f) > b (%.2f) > c (%.2f) violated",
				r.RatePerHour, r.UD, r.DHBA, r.DHBB, r.DHBC)
		}
		// DHB-d's relaxation can be statistically invisible at very low
		// rates but must never cost bandwidth beyond noise.
		if r.DHBD > r.DHBC+0.05 {
			t.Errorf("rate %v: DHB-d (%.2f) above DHB-c (%.2f)", r.RatePerHour, r.DHBD, r.DHBC)
		}
	}
	last := rows[len(rows)-1]
	if last.DHBD >= last.DHBC {
		t.Errorf("at saturation DHB-d (%.2f) must beat DHB-c (%.2f)", last.DHBD, last.DHBC)
	}
	if (last.DHBA - last.DHBB) < (last.DHBB - last.DHBC) {
		t.Errorf("a->b saving %.2f should be the largest step (b->c %.2f)",
			last.DHBA-last.DHBB, last.DHBB-last.DHBC)
	}
}

func TestFig9Validation(t *testing.T) {
	cfg := QuickVBRConfig()
	cfg.Rates = nil
	if _, _, err := Fig9(cfg); err == nil {
		t.Fatal("empty rates should error")
	}
}
