package vodserver

import (
	"fmt"
	"net"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/wire"
)

// This file is the server half of the client QoE loop: it reads the
// wire.ClientReport a v2 session sends at its end, folds it into the
// client_* metric families and rolling windows /statusz serves, synthesizes
// the client's side of the admit trace into /spanz, and arms the alert rules
// that watch the folded signals. The server-side windows deliberately track
// per-REPORT aggregates (mean slack, misses per report) rather than
// per-segment samples: a report is one customer's session, which is the
// granularity operators alert on.

// clientStartupBuckets and clientSlackBuckets match the client-local
// families in internal/vodclient, so a fleet scrape and a server scrape bin
// identically. Slack is signed: negative buckets are late segments.
var (
	clientStartupBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	clientSlackBuckets   = []float64{-16, -8, -4, -2, -1, 0, 1, 2, 4, 8, 16, 32, 64, 128}
)

// armAlerts registers the built-in rules plus any operator-supplied ones and
// starts the evaluation ticker. Called once from Start.
func (s *Server) armAlerts() error {
	// Pre-register the per-video report families so the inventory (and the
	// metric-name lint walking it) is complete from boot, not from the
	// first report.
	for _, vc := range s.cfg.Videos {
		s.clientMiss(vc.ID)
		s.clientRebuffer(vc.ID)
	}
	missThreshold := s.cfg.MissRateThreshold
	if missThreshold == 0 {
		missThreshold = 0.5
	}
	// The miss alert watches the windowed mean of misses-per-report, not
	// the lifetime counter: counters never come back down, the window does,
	// so the rule can resolve once healthy sessions roll the bad ones out.
	miss := obs.WindowMeanRule("client_deadline_miss_rate", s.qoeMissRate,
		obs.CmpAbove, missThreshold, s.cfg.AlertFor)
	miss.Severity = "critical"
	miss.Help = fmt.Sprintf(
		"clients are missing delivery deadlines (windowed mean misses/report > %g)", missThreshold)
	if err := s.alerts.Add(miss); err != nil {
		return err
	}
	burn := obs.BurnRateRule("first_byte_slo_burn", s.firstByte, 2.0, s.cfg.AlertFor)
	burn.Help = "admit-to-first-byte SLO error budget burning at more than 2x"
	if err := s.alerts.Add(burn); err != nil {
		return err
	}
	// The stall alert watches the transport classifier's aggregate: the
	// fraction of tracked connections whose published state is stalled. The
	// ratio resolves on its own as stalled subscribers are dropped or
	// recover, so the rule walks firing → resolved without operator action.
	if s.ct != nil {
		stalledRatio := s.cfg.ConnStalledRatio
		if stalledRatio == 0 {
			stalledRatio = 0.5
		}
		stalled := obs.AlertRule{
			Name:     "conn_stalled_ratio",
			Severity: "critical",
			Help: fmt.Sprintf(
				"more than %g of tracked subscriber connections are stalled (backlog with no forward progress)", stalledRatio),
			Value:     s.ct.StalledRatio,
			Op:        obs.CmpAbove,
			Threshold: stalledRatio,
			For:       s.cfg.AlertFor,
		}
		if err := s.alerts.Add(stalled); err != nil {
			return err
		}
	}
	if s.cfg.ReportStaleAfter > 0 {
		stale := obs.StalenessRule("client_reports_stale",
			func() float64 { return s.mReports.Value() }, s.cfg.ReportStaleAfter)
		stale.Help = fmt.Sprintf("no client report for %v", s.cfg.ReportStaleAfter)
		if err := s.alerts.Add(stale); err != nil {
			return err
		}
	}
	for _, r := range s.cfg.AlertRules {
		if err := s.alerts.Add(r); err != nil {
			return err
		}
	}
	s.alerts.Start(s.cfg.AlertInterval)
	return nil
}

// readReport collects the end-of-session ClientReport a v2 subscriber owes.
// The read is bounded: a client that never reports just times out and costs
// nothing. Reports for the wrong video are discarded.
func (s *Server) readReport(conn net.Conn, videoID uint32) {
	timeout := 4 * s.cfg.SlotDuration
	if timeout < time.Second {
		timeout = time.Second
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	rep, ok := msg.(wire.ClientReport)
	if !ok || rep.VideoID != videoID {
		return
	}
	s.ingestReport(rep)
}

// ingestReport folds one client report into the metric families, the QoE
// windows, and — when the session carried trace identifiers — the span ring,
// where the client's playback becomes children of the server's admit span.
func (s *Server) ingestReport(rep wire.ClientReport) {
	s.mReports.Inc()
	s.qoeStartup.Observe(float64(rep.StartupSlots))
	s.mClientStartup.Observe(float64(rep.StartupSlots))
	if rep.SegmentsReceived > 0 {
		meanSlack := float64(rep.SumSlackSlots) / float64(rep.SegmentsReceived)
		s.qoeSlack.Observe(meanSlack)
		s.mClientSlack.Observe(meanSlack)
	}
	s.qoeMissRate.Observe(float64(rep.DeadlineMisses))
	s.clientMiss(rep.VideoID).Add(float64(rep.DeadlineMisses))
	s.clientRebuffer(rep.VideoID).Add(float64(rep.Rebuffers))

	if rep.SpanID == 0 {
		return
	}
	// Synthesize the client's side of the trace. The report arrives after
	// the fact, so the spans are back-dated on the trace clock: the session
	// span covers SessionSlots slots ending now, and the startup span is
	// its prefix up to the first needed segment.
	slotSec := s.cfg.SlotDuration.Seconds()
	end := s.spans.Now()
	sessDur := float64(rep.SessionSlots) * slotSec
	session := s.spans.RecordChild(rep.SpanID, "client_session",
		end-sessDur, sessDur, rep.VideoID, map[string]string{
			"misses":    fmt.Sprint(rep.DeadlineMisses),
			"rebuffers": fmt.Sprint(rep.Rebuffers),
			"received":  fmt.Sprintf("%d/%d", rep.SegmentsReceived, rep.SegmentsNeeded),
			"min_slack": fmt.Sprint(rep.MinSlackSlots),
		})
	s.spans.RecordChild(session, "client_startup",
		end-sessDur, float64(rep.StartupSlots)*slotSec, rep.VideoID, nil)
}

// clientMiss and clientRebuffer return the per-video report counters. The
// registry caches children, so repeated lookups are cheap and idempotent.
func (s *Server) clientMiss(videoID uint32) *obs.Counter {
	return s.reg.CounterWith("client_miss_total",
		"Client-reported segments that missed their delivery deadline.",
		obs.Labels{"video": fmt.Sprint(videoID)})
}

func (s *Server) clientRebuffer(videoID uint32) *obs.Counter {
	return s.reg.CounterWith("client_rebuffer_total",
		"Client-reported playback stalls caused by deadline misses.",
		obs.Labels{"video": fmt.Sprint(videoID)})
}

// QoESnapshot is the client-side view of the pipeline as reported back by
// the set-top boxes, served inside /statusz.
type QoESnapshot struct {
	// Reports counts sessions that reported back.
	Reports uint64 `json:"reports"`
	// Startup is the startup-delay window (slots); Slack the per-report
	// mean slack-to-deadline window (slots, negative = late); MissRate the
	// misses-per-report window the miss alert watches.
	Startup  obs.WindowSnapshot `json:"startup_slots"`
	Slack    obs.WindowSnapshot `json:"slack_slots"`
	MissRate obs.WindowSnapshot `json:"miss_rate"`
}

// QoE assembles the client-side telemetry snapshot.
func (s *Server) QoE() QoESnapshot {
	return QoESnapshot{
		Reports:  uint64(s.mReports.Value()),
		Startup:  s.qoeStartup.Snapshot(),
		Slack:    s.qoeSlack.Snapshot(),
		MissRate: s.qoeMissRate.Snapshot(),
	}
}
