//go:build linux

package conntrack

import (
	"syscall"
	"time"
	"unsafe"
)

// linuxTCPInfo mirrors the leading 192 bytes of the kernel's struct tcp_info
// (include/uapi/linux/tcp.h), through tcpi_sndbuf_limited. The kernel copies
// min(optlen, sizeof(struct tcp_info)) bytes and reports how many it wrote,
// so older kernels simply fill a prefix — fields past the reported length
// stay zero and Extended is left false. Declared field-by-field (not read
// into a Go struct via unsafe casts of kernel-versioned layouts) with the
// offsets fixed by the uapi ABI: the u64 run starting at tcpi_pacing_rate is
// 8-aligned because the preceding u8/u32 block is 104 bytes.
type linuxTCPInfo struct {
	State                  uint8
	CaState                uint8
	Retransmits            uint8
	Probes                 uint8
	Backoff                uint8
	Options                uint8
	WscaleDelRate          uint8 // snd_wscale:4, rcv_wscale:4
	DeliveryRateAppLimited uint8

	Rto     uint32 // offset 8
	Ato     uint32
	SndMss  uint32
	RcvMss  uint32
	Unacked uint32
	Sacked  uint32
	Lost    uint32
	Retrans uint32
	Fackets uint32

	LastDataSent uint32 // offset 44
	LastAckSent  uint32
	LastDataRecv uint32
	LastAckRecv  uint32

	Pmtu        uint32 // offset 60
	RcvSsthresh uint32
	Rtt         uint32
	Rttvar      uint32
	SndSsthresh uint32
	SndCwnd     uint32
	Advmss      uint32
	Reordering  uint32

	RcvRtt   uint32 // offset 92
	RcvSpace uint32

	TotalRetrans uint32 // offset 100

	PacingRate    uint64 // offset 104
	MaxPacingRate uint64
	BytesAcked    uint64 // offset 120
	BytesReceived uint64

	SegsOut      uint32 // offset 136
	SegsIn       uint32
	NotsentBytes uint32 // offset 144
	MinRtt       uint32
	DataSegsIn   uint32
	DataSegsOut  uint32

	DeliveryRate uint64 // offset 160

	BusyTime      uint64 // offset 168, microseconds
	RwndLimited   uint64
	SndbufLimited uint64
}

// tcpInfoExtendedLen is the byte length through tcpi_sndbuf_limited; when
// the kernel reports at least this many bytes the limited-time accounting is
// trustworthy.
const tcpInfoExtendedLen = 192

// readTCPInfo fetches TCP_INFO for the socket behind raw. ok is false when
// raw is nil (not a TCP socket) or the getsockopt fails — classification
// then falls back to userspace signals alone.
func readTCPInfo(raw syscall.RawConn) (info TCPInfo, ok bool) {
	if raw == nil {
		return TCPInfo{}, false
	}
	var ti linuxTCPInfo
	var serr syscall.Errno
	var got uint32
	cerr := raw.Control(func(fd uintptr) {
		got = uint32(unsafe.Sizeof(ti))
		_, _, serr = syscall.Syscall6(syscall.SYS_GETSOCKOPT, fd,
			uintptr(syscall.IPPROTO_TCP), uintptr(syscall.TCP_INFO),
			uintptr(unsafe.Pointer(&ti)), uintptr(unsafe.Pointer(&got)), 0)
	})
	if cerr != nil || serr != 0 {
		return TCPInfo{}, false
	}
	info = TCPInfo{
		Valid:       true,
		RTT:         time.Duration(ti.Rtt) * time.Microsecond,
		RTTVar:      time.Duration(ti.Rttvar) * time.Microsecond,
		SndCwnd:     ti.SndCwnd,
		SndSsthresh: ti.SndSsthresh,
	}
	// The retransmit, byte and queue counters sit progressively deeper in
	// the struct; gate each tier on the prefix the kernel actually filled.
	if got >= 104 {
		info.TotalRetrans = ti.TotalRetrans
	}
	if got >= 128 {
		info.BytesAcked = ti.BytesAcked
	}
	if got >= 148 {
		info.NotSentBytes = ti.NotsentBytes
	}
	if got >= 168 {
		info.DeliveryRate = ti.DeliveryRate
	}
	if got >= tcpInfoExtendedLen {
		info.Extended = true
		info.BusyTime = time.Duration(ti.BusyTime) * time.Microsecond
		info.RwndLimited = time.Duration(ti.RwndLimited) * time.Microsecond
		info.SndbufLimited = time.Duration(ti.SndbufLimited) * time.Microsecond
	}
	return info, true
}
