// Package fanout is the zero-copy broadcast data plane: each (video, slot)
// pair is serialized exactly once into a shared, immutable, ref-counted
// Frame, and every subscriber sharing the slot receives a reference to the
// same bytes through its per-connection write Ring. The package exists so
// the server's per-slot cost scales with the schedule (DHB's defining
// property) instead of the audience: encoding is O(instances), delivery is
// O(subscribers) pointer pushes, and the steady state allocates nothing.
//
// Lifecycle contract: Encoder.EncodeSlot returns a Frame holding one
// reference owned by the caller. The caller Retains before every Ring.Push
// and Releases when a push fails; connection writers Release after the
// frame's bytes have been written (never before — the backing array returns
// to a sync.Pool and would be scribbled over mid-write). When the count
// reaches zero the frame recycles. NewFanoutReference retains the original
// bytes.Buffer encoding as the executable spec; the differential test pins
// the two paths to byte-identical wire output.
package fanout

import (
	"sync"
	"sync/atomic"
)

// Frame is one encoded broadcast slot: every Segment frame of the slot
// followed by its SlotEnd, ready to be written to any subscriber verbatim.
// The bytes are immutable once EncodeSlot returns; sharing is managed by
// the reference count.
type Frame struct {
	data         []byte
	slot         int
	payloadBytes int64
	refs         atomic.Int64
	pool         *Pool
}

// Slot returns the absolute slot index the frame carries.
func (f *Frame) Slot() int { return f.slot }

// Bytes returns the encoded wire bytes. Callers must treat the slice as
// read-only and must hold a reference for as long as they use it.
func (f *Frame) Bytes() []byte { return f.data }

// PayloadBytes returns the total segment payload size carried by the frame,
// excluding wire framing — the quantity the broadcast-bytes counters track.
func (f *Frame) PayloadBytes() int64 { return f.payloadBytes }

// Retain adds a reference. Call it before handing the frame to another
// owner (a ring push); every Retain must be paired with exactly one Release.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference; the last release returns the frame to its
// pool for reuse. Releasing more times than retained is a bug and panics
// rather than silently corrupting a recycled buffer.
func (f *Frame) Release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		if f.pool != nil {
			f.pool.put(f)
		}
	case n < 0:
		panic("fanout: Release of already-freed frame")
	}
}

// refsForTest exposes the live count to the package tests.
func (f *Frame) refsForTest() int64 { return f.refs.Load() }

// Pool recycles frames so the steady-state broadcast path allocates
// nothing: after warm-up every EncodeSlot reuses a frame whose backing
// array already fits the slot.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty frame pool.
func NewPool() *Pool { return &Pool{} }

// get returns a frame holding one reference, with an empty (but
// capacity-preserving) byte slice.
func (p *Pool) get(slot int) *Frame {
	f, _ := p.p.Get().(*Frame)
	if f == nil {
		f = &Frame{pool: p}
	}
	f.slot = slot
	f.data = f.data[:0]
	f.payloadBytes = 0
	f.refs.Store(1)
	return f
}

func (p *Pool) put(f *Frame) {
	f.data = f.data[:0]
	p.p.Put(f)
}
