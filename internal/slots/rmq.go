package slots

// This file is the sublinear engine behind Ring's window scans: a segment
// tree over the ring's positions answering "minimum-load slot in [from, to],
// ties toward the latest (or earliest) slot" in O(log H) where the linear
// reference walks the whole window.
//
// Tie direction matters: DHB's Figure 6 heuristic breaks ties toward the
// LATEST slot (future requests get the best chance of sharing the instance)
// and the PolicyMinLoadEarliest ablation breaks toward the EARLIEST, so each
// tree node keeps, besides the subtree's minimum load, both the leftmost and
// the rightmost position attaining it. One query then serves either rule.
//
// Positions are ring-array indices (abs % horizon), not absolute slots. A
// window query over absolute slots maps to at most two contiguous position
// ranges (it wraps the array at most once), and inside each range increasing
// position means increasing absolute slot, so the tie direction translates
// directly to leftmost/rightmost position — Ring.minRMQ does the wrap split
// and picks the range with the right priority.

// minNode summarizes one position range: the minimum load, and the leftmost
// and rightmost positions attaining it. lo < 0 marks the empty range.
type minNode struct {
	load   int
	lo, hi int
}

var emptyNode = minNode{lo: -1}

// merge combines two summaries where a covers positions left of b.
func merge(a, b minNode) minNode {
	if a.lo < 0 {
		return b
	}
	if b.lo < 0 {
		return a
	}
	if a.load < b.load {
		return a
	}
	if b.load < a.load {
		return b
	}
	return minNode{load: a.load, lo: a.lo, hi: b.hi}
}

// minTree is a flat power-of-two segment tree over ring positions. Leaves
// past the horizon stay empty and are never queried.
type minTree struct {
	size  int // leaf count, the smallest power of two >= horizon
	nodes []minNode
}

func newMinTree(horizon int) *minTree {
	size := 1
	for size < horizon {
		size <<= 1
	}
	t := &minTree{size: size, nodes: make([]minNode, 2*size)}
	for i := range t.nodes {
		t.nodes[i] = emptyNode
	}
	for p := 0; p < horizon; p++ {
		t.nodes[size+p] = minNode{load: 0, lo: p, hi: p}
	}
	for i := size - 1; i >= 1; i-- {
		t.nodes[i] = merge(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t
}

// set records position p's new load and rebuilds its ancestors, O(log H).
func (t *minTree) set(p, load int) {
	i := t.size + p
	t.nodes[i].load = load
	for i >>= 1; i >= 1; i >>= 1 {
		t.nodes[i] = merge(t.nodes[2*i], t.nodes[2*i+1])
	}
}

// query summarizes the contiguous position range [l, r], O(log H).
func (t *minTree) query(l, r int) minNode {
	resL, resR := emptyNode, emptyNode
	l += t.size
	r += t.size + 1
	for l < r {
		if l&1 == 1 {
			resL = merge(resL, t.nodes[l])
			l++
		}
		if r&1 == 1 {
			r--
			resR = merge(t.nodes[r], resR)
		}
		l >>= 1
		r >>= 1
	}
	return merge(resL, resR)
}
