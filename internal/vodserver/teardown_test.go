package vodserver

import (
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"vodcast/internal/wire"
)

// TestSlowSubscriberDroppedMidBroadcast exercises the zero-copy tear-down
// path end to end, and is meant to run under -race: a subscriber that stops
// reading mid-broadcast must be dropped by the fan-out (not stall the slot
// tick), the drop must be counted identically in Stats() and /metricsz, the
// handler goroutine must exit once the connection dies, and a double Close
// of the server must stay a no-op.
func TestSlowSubscriberDroppedMidBroadcast(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := Start(Config{
		Addr: "127.0.0.1:0",
		// Enough bytes per slot to wedge the drain goroutine's vectored
		// write once the client stops reading, and a tiny ring so the very
		// next tick overflows it.
		Videos:           []VideoConfig{{ID: 1, Segments: 200, SegmentBytes: 64 << 10}},
		SlotDuration:     2 * time.Millisecond,
		SubscriberBuffer: 1,
		StatsAddr:        "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.Request{VideoID: 1, FromSegment: 1, Version: wire.ProtoV2}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.ScheduleInfo); !ok {
		t.Fatalf("first frame %T, want ScheduleInfo", msg)
	}
	// Admitted — now never read another byte. TCP backpressure wedges the
	// drain goroutine, the one-slot ring fills, and the fan-out must cut
	// this subscriber loose without blocking the broadcast clock.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := s.Stats()
	if st.Dropped < 1 {
		t.Fatalf("dropped = %d, want >= 1", st.Dropped)
	}
	// The drop is visible identically through the exposition endpoint. The
	// counter is split by attribution reason — the connection's last
	// classified transport state — so the scrape sums the labelled children
	// and requires the label to be present on every one. The drop usually
	// lands before the 1s sampler has classified a 2ms-slot subscriber, so
	// any reason value is legitimate here; the conntrack E2E pins the
	// specific stalled attribution.
	_, body := get(t, s, "/metricsz")
	var scraped, labelled int64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "vod_dropped_subscribers_total") {
			continue
		}
		if !strings.Contains(line, `reason="`) {
			t.Fatalf("drop counter child without a reason label: %q", line)
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad exposition line %q: %v", line, err)
		}
		scraped += int64(v)
		if v > 0 {
			labelled++
		}
	}
	if scraped != st.Dropped {
		t.Fatalf("Stats().Dropped = %d but /metricsz children sum to %d", st.Dropped, scraped)
	}
	if labelled == 0 {
		t.Fatal("no reason-labelled drop counter child carries the drop")
	}

	// Kill the client side; the wedged write fails and the handler exits,
	// draining the subscriber count to zero.
	conn.Close()
	for s.Stats().ActiveSubscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers never drained: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Close twice: the second must be a clean no-op (no double-close of
	// rings, channels or the station).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// No goroutine leak: everything the session spawned winds down. The
	// /metricsz scrape left a keep-alive connection in the default HTTP
	// transport (two client goroutines plus the server-side handler) —
	// drop it so only this test's goroutines are measured. The runtime
	// needs a beat to retire exiting goroutines, so poll.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
