package vodclient

import (
	"net"
	"strings"
	"testing"
	"time"

	"vodcast/internal/obs"
	"vodcast/internal/wire"
)

// fakeServerV2 is fakeServer for scripts that need the decoded request (to
// assert negotiation) or to keep the connection for a report read.
func fakeServerV2(t *testing.T, script func(conn net.Conn, req wire.Request)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		req, ok := msg.(wire.Request)
		if !ok {
			return
		}
		script(conn, req)
	}()
	return ln.Addr().String()
}

func v2Info() wire.ScheduleInfo {
	info := goodInfo()
	info.Version = wire.ProtoV2
	info.TraceID = 0xABCD
	info.SpanID = 77
	return info
}

func streamAll(conn net.Conn, info wire.ScheduleInfo) {
	for j := uint32(1); j <= info.Segments; j++ {
		_ = wire.WriteFrame(conn, wire.Segment{
			VideoID: info.VideoID, Segment: j, Slot: uint64(j),
			Payload: wire.SegmentPayload(info.VideoID, j, info.SizeOf(j)),
		})
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: uint64(j)})
	}
}

func TestQoETrackerSlackMissesRebuffers(t *testing.T) {
	// Video of 4 segments, deadlines admit+1..admit+4, admitted at slot 10.
	q := newQoETracker(10, []int{0, 1, 2, 3, 4}, 1)
	// Slot 11: segments 1 and 2 arrive — 1 is just in time (slack 0), 2 a
	// slot early (slack 1). Segment 1's deadline settles in the same slot.
	q.observeSlot(11, []int{1, 2})
	// Slots 12 and 13 end empty: segment 3 misses its slot-13 deadline.
	q.observeSlot(12, nil)
	q.observeSlot(13, nil)
	// Slot 14: 3 arrives late (slack -1); 4 never arrives and misses too.
	q.observeSlot(14, []int{3})
	q.finalize(14)

	if q.misses != 2 {
		t.Fatalf("misses = %d, want 2 (segment 3 late, segment 4 never)", q.misses)
	}
	if q.rebuffers != 1 {
		t.Fatalf("rebuffers = %d, want 1 (slots 13 and 14 are one stall)", q.rebuffers)
	}
	if q.minSlack != -1 {
		t.Fatalf("minSlack = %d, want -1", q.minSlack)
	}
	if q.startup != 1 {
		t.Fatalf("startup = %d, want 1", q.startup)
	}
	if got := q.needed() - q.receivedCount; got != 1 {
		t.Fatalf("missing = %d, want 1", got)
	}
	if q.sessionSlots != 4 {
		t.Fatalf("sessionSlots = %d, want 4", q.sessionSlots)
	}
	if q.maxBuffered != 2 {
		t.Fatalf("maxBuffered = %d, want 2", q.maxBuffered)
	}
	rep := q.report(1, 2, 3, 0, 64)
	if rep.DeadlineMisses != 2 || rep.MinSlackSlots != -1 ||
		rep.SegmentsReceived != 3 || rep.SegmentsNeeded != 4 ||
		rep.TraceID != 2 || rep.SpanID != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFetchWithToleratesMissedDeadline(t *testing.T) {
	addr := fakeServerV2(t, func(conn net.Conn, req wire.Request) {
		if req.Version != wire.ProtoV2 {
			t.Errorf("request version = %d, want %d", req.Version, wire.ProtoV2)
		}
		info := v2Info()
		_ = wire.WriteFrame(conn, info)
		// Slot 1 ends without segment 1 (deadline slot 1): a strict client
		// dies here, a tolerant one records the miss and keeps receiving.
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 1})
		_ = wire.WriteFrame(conn, wire.Segment{
			VideoID: 1, Segment: 1, Slot: 2, Payload: wire.SegmentPayload(1, 1, 32)})
		_ = wire.WriteFrame(conn, wire.Segment{
			VideoID: 1, Segment: 2, Slot: 2, Payload: wire.SegmentPayload(1, 2, 32)})
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 2})
		_, _ = wire.ReadFrame(conn) // drain the report
	})
	res, err := FetchWith(addr, FetchOptions{VideoID: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 1 || res.Rebuffers != 1 || res.MissingSegments != 0 {
		t.Fatalf("result = %+v, want 1 miss, 1 rebuffer, 0 missing", res)
	}
	if res.MinSlackSlots != -1 {
		t.Fatalf("MinSlackSlots = %d, want -1 (segment 1 one slot late)", res.MinSlackSlots)
	}
	if res.TraceID != 0xABCD {
		t.Fatalf("TraceID = %#x, want 0xABCD", res.TraceID)
	}
}

func TestFetchWithStrictStillRejectsMiss(t *testing.T) {
	addr := fakeServerV2(t, func(conn net.Conn, req wire.Request) {
		_ = wire.WriteFrame(conn, v2Info())
		_ = wire.WriteFrame(conn, wire.SlotEnd{Slot: 1})
	})
	_, err := FetchWith(addr, FetchOptions{
		VideoID: 1, Timeout: 2 * time.Second, StrictDeadlines: true})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("strict miss error = %v, want deadline", err)
	}
}

func TestFetchWithSendsReport(t *testing.T) {
	got := make(chan wire.ClientReport, 1)
	addr := fakeServerV2(t, func(conn net.Conn, req wire.Request) {
		if req.Flags != 0 {
			t.Errorf("request flags = %#x, want 0", req.Flags)
		}
		info := v2Info()
		_ = wire.WriteFrame(conn, info)
		streamAll(conn, info)
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			t.Errorf("read report: %v", err)
			return
		}
		rep, ok := msg.(wire.ClientReport)
		if !ok {
			t.Errorf("got %T, want ClientReport", msg)
			return
		}
		got <- rep
	})
	if _, err := FetchWith(addr, FetchOptions{VideoID: 1, Timeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-got:
		if rep.TraceID != 0xABCD || rep.SpanID != 77 {
			t.Fatalf("report trace = %#x/%d, want 0xabcd/77", rep.TraceID, rep.SpanID)
		}
		if rep.SegmentsNeeded != 2 || rep.SegmentsReceived != 2 ||
			rep.DeadlineMisses != 0 || rep.PayloadBytes != 64 {
			t.Fatalf("report = %+v", rep)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never received a report")
	}
}

func TestFetchWithNoReportSetsFlagAndSkipsReport(t *testing.T) {
	done := make(chan struct{})
	addr := fakeServerV2(t, func(conn net.Conn, req wire.Request) {
		defer close(done)
		if req.Flags&wire.FlagNoReport == 0 {
			t.Error("FlagNoReport not set on opt-out request")
		}
		info := v2Info()
		_ = wire.WriteFrame(conn, info)
		streamAll(conn, info)
		// The client must close without writing a report frame.
		if msg, err := wire.ReadFrame(conn); err == nil {
			t.Errorf("unexpected frame after opt-out session: %T", msg)
		}
	})
	if _, err := FetchWith(addr, FetchOptions{
		VideoID: 1, Timeout: 2 * time.Second, NoReport: true}); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestFetchWithLegacyServerSkipsReport(t *testing.T) {
	done := make(chan struct{})
	addr := fakeServerV2(t, func(conn net.Conn, req wire.Request) {
		defer close(done)
		info := goodInfo() // version-less schedule: server negotiated down
		_ = wire.WriteFrame(conn, info)
		streamAll(conn, info)
		if msg, err := wire.ReadFrame(conn); err == nil {
			t.Errorf("client sent %T to a v1 server", msg)
		}
	})
	res, err := FetchWith(addr, FetchOptions{VideoID: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != 0 {
		t.Fatalf("TraceID = %d against a v1 server, want 0", res.TraceID)
	}
	<-done
}

func TestFetchWithPublishesRegistry(t *testing.T) {
	addr := fakeServerV2(t, func(conn net.Conn, req wire.Request) {
		info := v2Info()
		_ = wire.WriteFrame(conn, info)
		streamAll(conn, info)
		_, _ = wire.ReadFrame(conn)
	})
	reg := obs.NewRegistry()
	if _, err := FetchWith(addr, FetchOptions{
		VideoID: 1, Timeout: 2 * time.Second, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	for _, want := range []string{
		"client_sessions_total", "client_payload_bytes_total",
		"client_startup_slots", "client_deadline_slack_slots",
		"client_miss_total", "client_rebuffer_total",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s missing from local registry (have %v)", want, names)
		}
		if !obs.ValidMetricName(want) {
			t.Errorf("family %s fails the metric-name lint", want)
		}
	}
	if got := reg.Histogram("client_deadline_slack_slots", "", slackBuckets).Count(); got != 2 {
		t.Fatalf("slack observations = %v, want 2", got)
	}
}
