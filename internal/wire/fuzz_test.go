package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must never
// panic, never allocate unboundedly, and round-trip anything it accepts.
func FuzzReadFrame(f *testing.F) {
	// Seed with one valid frame of each type, both protocol versions.
	seeds := []any{
		Request{VideoID: 1},
		Request{VideoID: 1, FromSegment: 2, Version: ProtoV2,
			Flags: FlagNoReport, TraceID: 7, SpanID: 8},
		ScheduleInfo{VideoID: 1, Segments: 2, SlotMillis: 10, SegmentBytes: 64,
			AdmitSlot: 5, Periods: []uint32{1, 2}},
		ScheduleInfo{VideoID: 1, Segments: 2, SlotMillis: 10, SegmentBytes: 64,
			AdmitSlot: 5, Version: ProtoV2, TraceID: 3, SpanID: 4,
			Periods: []uint32{1, 2}, SegmentSizes: []uint32{32, 64}},
		Segment{VideoID: 1, Segment: 2, Slot: 3, Payload: []byte("abc")},
		SlotEnd{Slot: 9},
		ErrorMsg{Text: "boom"},
		ClientReport{Version: ProtoV2, VideoID: 1, TraceID: 7, SpanID: 8,
			AdmitSlot: 5, SegmentsNeeded: 2, SegmentsReceived: 2,
			MinSlackSlots: -1, SumSlackSlots: 3, PayloadBytes: 128},
	}
	for _, msg := range seeds {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, raw []byte) {
		msg, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode and decode to the same value.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		checkEqualFrames(t, msg, back)
	})
}

func checkEqualFrames(t *testing.T, a, b any) {
	t.Helper()
	switch am := a.(type) {
	case Segment:
		bm, ok := b.(Segment)
		if !ok || am.VideoID != bm.VideoID || am.Segment != bm.Segment ||
			am.Slot != bm.Slot || !bytes.Equal(am.Payload, bm.Payload) {
			t.Fatalf("segment round trip mismatch: %+v vs %+v", a, b)
		}
	case ScheduleInfo:
		bm, ok := b.(ScheduleInfo)
		if !ok || am.VideoID != bm.VideoID || am.Segments != bm.Segments ||
			len(am.Periods) != len(bm.Periods) || am.Version != bm.Version ||
			am.TraceID != bm.TraceID || am.SpanID != bm.SpanID {
			t.Fatalf("schedule round trip mismatch: %+v vs %+v", a, b)
		}
	default:
		if a != b {
			t.Fatalf("round trip mismatch: %+v vs %+v", a, b)
		}
	}
}

// FuzzReadFrameStream verifies the decoder's framing discipline: after a
// valid frame it must resume exactly at the next frame boundary.
func FuzzReadFrameStream(f *testing.F) {
	f.Add(uint32(3), []byte("xyz"))
	f.Fuzz(func(t *testing.T, video uint32, payload []byte) {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		var buf bytes.Buffer
		first := Segment{VideoID: video, Segment: 1, Slot: 2, Payload: payload}
		second := SlotEnd{Slot: 7}
		if err := WriteFrame(&buf, first); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, second); err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(buf.Bytes())
		got1, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		checkEqualFrames(t, first, got1)
		got2, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		checkEqualFrames(t, second, got2)
		if _, err := ReadFrame(r); err != io.EOF {
			t.Fatalf("want EOF after last frame, got %v", err)
		}
	})
}
