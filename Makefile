# Developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-compare bench-conn bench-core bench-fanout bench-history bench-load bench-obs bench-station bench-wire ci lint fuzz experiments examples cover clean

all: build test

test:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'TestStressAdmissionsRaceClock|TestConcurrentEquivalence' ./internal/station/

build:
	$(GO) build ./...
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/vodserver/ ./internal/vodclient/ ./internal/station/

# Static analysis beyond vet, pinned so every machine runs the same checks.
# staticcheck is not vendored: when the binary is missing the lane prints
# the pinned install command and passes, so hermetic CI containers keep
# working without network access.
STATICCHECK_VERSION ?= 2024.1.1
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "lint: running staticcheck"; \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed — skipping (install: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# The one-stop gate: vet, the race suite, a coverage floor on the
# observability-critical packages (including the wire codec and the QoE
# client since they carry the telemetry loop), and the metric-name lint
# (every family a fully wired server registers — the client_* families
# included — must pass obs.ValidMetricName).
COVER_FLOOR ?= 85
ci:
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race ./...
	$(GO) test -coverprofile=ci-cover.out ./internal/obs/ ./internal/obs/history/ ./internal/station/ ./internal/wire/ ./internal/vodclient/
	@total=$$($(GO) tool cover -func=ci-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "obs+history+station+wire+vodclient coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= floor+0) }' || \
		{ echo "coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }
	$(GO) test -run '^TestRegisteredMetricNamesValid$$' -count=1 ./internal/vodserver/
	# The flight-recorder acceptance E2E: fault injection fires the miss
	# alert, exactly one bundle lands, its history shows the step-up and
	# /queryz serves the same series.
	$(GO) test -race -run '^TestE2EFlightRecorder$$' -count=1 ./internal/vodserver/
	# The transport-telemetry acceptance E2E: a paused and a slow subscriber
	# land in different /connz states, the stall alert walks pending →
	# firing → resolved, exactly one bundle carries conns.json, and the drop
	# path attributes the disconnect reason="stalled".
	$(GO) test -race -run '^TestE2EConntrackStallAttribution$$' -count=1 ./internal/vodserver/
	# Disabled-path smoke for the telemetry history layer: the nil-store and
	# nil-recorder fast paths must keep compiling and running (the real <2%
	# budget evidence lives in BENCH_obs3.json).
	$(GO) test -run '^$$' -bench 'BenchmarkNilStoreScrape|BenchmarkNilRecorderTrigger' -benchtime=1x ./internal/obs/history/
	# The zero-alloc gate runs without -race (race instrumentation itself
	# allocates, so the test skips under the race suite above), then a
	# one-iteration smoke of the fan-out A/B matrix.
	$(GO) test -run '^TestSteadyStateZeroAlloc$$' -count=1 ./internal/fanout/
	$(GO) test -run '^$$' -bench 'BenchmarkFanOut' -benchtime=1x ./internal/fanout/
	# The multi-core race lane: the parallel fan-out tick, its COW set and
	# worker pool, and the churn stress all re-run with four scheduler
	# threads so cross-worker interleavings the single-threaded suite can't
	# produce get race coverage.
	GOMAXPROCS=4 $(GO) test -race -cpu 4 -count=1 ./internal/fanout/ ./internal/station/ ./internal/vodserver/
	# The drain-path alloc gate: one vectored write per popped batch, zero
	# allocations per batch at steady state.
	$(GO) test -run '^TestDrainZeroAlloc$$' -count=1 ./internal/vodserver/
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./internal/...
	$(GO) run ./cmd/vodload -sessions 200 -duration 2s -slot-ms 5 -report /dev/null
	@rm -f ci-cover.out
	@echo "ci: all gates passed"

bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/...

# The closed-loop load harness against a self-contained server: three ramp
# steps, live capacity telemetry, and the analytic DHB gate. The reference
# run lives in BENCH_load.json; the target fails when the gate does.
bench-load:
	$(GO) run ./cmd/vodload -sessions 200 -steps 3 -duration 6s -slot-ms 5 \
		-report BENCH_load.json -interval 1s
	@echo "bench-load: report in BENCH_load.json"

# The zero-copy data plane A/B (shared ref-counted slot frames + write
# rings versus the serialize-per-tick reference) across -cpu 1,4: the
# serial/parallel/reference matrix behind BENCH_fanout.json. The zero-copy
# rows must hold 0 allocs/op.
bench-fanout:
	$(GO) test -run '^$$' -bench 'BenchmarkFanOut' -benchmem -cpu 1,4 ./internal/fanout/

# Benchstat-style regression gate: build a throwaway worktree at BASE, run
# the same benchmark matrix in both trees, and print the old/new/delta
# table with cmd/benchdiff. Override BASE, BENCH_COMPARE or BENCH_PKG to
# point it elsewhere, e.g.
#   make bench-compare BASE=v1.2 BENCH_COMPARE=BenchmarkStation BENCH_PKG=./internal/station/
BASE ?= HEAD~1
BENCH_COMPARE ?= BenchmarkFanOut
BENCH_PKG ?= ./internal/fanout/
bench-compare:
	@rm -rf .bench-base bench-old.txt bench-new.txt
	git worktree add --detach .bench-base $(BASE)
	cd .bench-base && $(GO) test -run '^$$' -bench '$(BENCH_COMPARE)' -benchmem -count=3 $(BENCH_PKG) > ../bench-old.txt \
		|| { cd .. && git worktree remove --force .bench-base; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH_COMPARE)' -benchmem -count=3 $(BENCH_PKG) > bench-new.txt
	git worktree remove --force .bench-base
	$(GO) run ./cmd/benchdiff bench-old.txt bench-new.txt

# The transport-telemetry disabled-path A/B behind BENCH_conn.json: the
# subscriber drain benchmark with conntrack sampling wired in versus the
# nil-sampler fast path a -no-conntrack server takes. The budget is <2% and
# 0 allocs/op on the disabled rows.
bench-conn:
	$(GO) test -run '^$$' -bench 'BenchmarkDrainRing' -benchmem -count=3 ./internal/vodserver/

# The admission fast path A/B (RMQ ring + same-slot memo versus the linear
# reference): the matrix behind BENCH_core.json.
bench-core:
	$(GO) test -run '^$$' -bench 'BenchmarkAdmit' -benchmem ./internal/core/

# Sharded station versus the single-mutex whole-engine baseline across
# -cpu 1,2,4; the reference numbers live in BENCH_station.json, and
# BENCH_obs2.json holds the disabled-path A/B for the pipeline
# observability layer.
bench-station:
	$(GO) test -run '^$$' -bench 'BenchmarkStation' -benchmem -cpu 1,2,4 ./internal/station/

# Proves the scheduler observer hook is free when disabled: compare the
# ObserverOff ns/op against ObserverOn (a no-op observer wired in).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkSchedulerObserver' -benchmem ./internal/core/

# The telemetry history layer: scrape and query cost of the in-process
# metric TSDB, plus the nil fast paths a history-disabled server takes
# (the <2% disabled-path A/B lives in BENCH_obs3.json).
bench-history:
	$(GO) test -run '^$$' -bench 'BenchmarkStore|BenchmarkNil' -benchmem ./internal/obs/history/

# The wire codec A/B behind BENCH_wire.json: V1 frames are the trace-disabled
# path, V2 frames carry the trace block; the budget is <2% on the V1 rows.
bench-wire:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/wire/

fuzz:
	$(GO) test ./internal/wire/ -fuzz='^FuzzReadFrame$$' -fuzztime=30s
	$(GO) test ./internal/core/ -fuzz='^FuzzSchedulerInvariants$$' -fuzztime=30s

experiments:
	@for e in fig7 fig8 fig9 ablation peaks vbrplan clientcap reactive dsb models ci wait capacity storage buffer; do \
		echo "== $$e =="; $(GO) run ./cmd/vodsim -experiment $$e -full; echo; \
	done

examples:
	@for e in quickstart comparison vbr multivideo network flashcrowd; do \
		echo "== $$e =="; $(GO) run ./examples/$$e; echo; \
	done

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out ci-cover.out test_output.txt bench_output.txt bench-old.txt bench-new.txt
	rm -rf .bench-base
