// Command vodsim regenerates the evaluation of the paper: it runs the
// simulation behind each figure and prints the same series the paper plots,
// plus the extension studies this repository adds.
//
// Usage:
//
//	vodsim -experiment fig7            # average bandwidth sweep (Figure 7)
//	vodsim -experiment fig8            # maximum bandwidth sweep (Figure 8)
//	vodsim -experiment fig9            # compressed video study (Figure 9)
//	vodsim -experiment ablation        # dynamic pagoda vs UD vs DHB (Section 3)
//	vodsim -experiment peaks           # naive vs heuristic peaks (Section 3)
//	vodsim -experiment vbrplan         # the DHB-a..d plans (Section 4)
//	vodsim -experiment clientcap       # client-bandwidth-limited DHB (Section 5)
//	vodsim -experiment reactive        # the reactive protocol zoo (Section 2)
//	vodsim -experiment dsb             # dynamic skyscraper vs UD vs DHB (Section 2)
//	vodsim -experiment models          # closed-form models vs simulation
//	vodsim -experiment ci              # Figure 7 with confidence intervals
//	vodsim -experiment wait            # waiting-time / bandwidth trade
//	vodsim -experiment capacity        # channel-pool provisioning curve
//	vodsim -experiment storage         # disk-array provisioning per policy
//	vodsim -experiment buffer          # STB buffer sizing per protocol
//	vodsim -experiment trace -trace out.jsonl   # traced DHB run (qlog-style JSONL)
//
// Add -full for publication-length horizons (the default quick preset runs
// in seconds and preserves every qualitative shape) and -json for
// machine-readable output. The trace experiment captures every scheduler
// decision of one DHB run — admissions, per-segment slot decisions,
// instance starts/stops, slot retires — as one JSON object per line, for
// offline analysis and for cmd/schedviz -trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vodcast/internal/core"
	"vodcast/internal/experiments"
	"vodcast/internal/report"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig7", "which experiment to run (see the package comment)")
		full       = flag.Bool("full", false, "use publication-length horizons instead of the quick preset")
		asJSON     = flag.Bool("json", false, "emit JSON instead of text tables")
		chart      = flag.Bool("chart", false, "additionally draw an ASCII chart (fig7, fig8, ablation, dsb)")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		tracePath  = flag.String("trace", "", "JSONL file capturing the event stream of the trace experiment")
		rate       = flag.Float64("rate", 100, "arrival rate in requests/hour for the trace experiment")
	)
	flag.Parse()
	if err := run(os.Stdout, *experiment, *full, *asJSON, *chart, *seed, *tracePath, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, experiment string, full, asJSON, chart bool, seed int64, tracePath string, rate float64) error {
	if experiment == "trace" {
		return runTrace(w, full, asJSON, seed, tracePath, rate)
	}
	tables, err := buildTables(experiment, full, seed)
	if err != nil {
		return err
	}
	if asJSON {
		return report.RenderJSON(w, tables...)
	}
	if err := report.RenderText(w, tables...); err != nil {
		return err
	}
	if chart {
		return renderChart(w, experiment, full, seed)
	}
	return nil
}

// runTrace runs the traced DHB experiment: one run under Poisson arrivals
// with every scheduler event streamed to tracePath as JSONL, reporting the
// run's bandwidth statistics alongside the trace inventory.
func runTrace(w io.Writer, full, asJSON bool, seed int64, tracePath string, rate float64) error {
	if tracePath == "" {
		return fmt.Errorf("the trace experiment needs -trace out.jsonl")
	}
	cfg := experiments.DefaultTraceConfig()
	cfg.Seed = seed
	cfg.RatePerHour = rate
	if full {
		cfg.HorizonSlots = 20000
		cfg.WarmupSlots = 500
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return fmt.Errorf("trace file: %w", err)
	}
	res, runErr := experiments.TraceDHB(cfg, f)
	if closeErr := f.Close(); runErr == nil {
		runErr = closeErr
	}
	if runErr != nil {
		return runErr
	}
	table := report.Table{
		Title: fmt.Sprintf("Traced DHB run — n = %d, %.0f req/h, trace: %s",
			cfg.Segments, cfg.RatePerHour, tracePath),
		Columns: []string{"slots", "requests", "instances", "events", "avg bw", "max bw"},
	}
	table.AddRow(
		fmt.Sprint(res.Slots),
		fmt.Sprint(res.Requests),
		fmt.Sprint(res.Instances),
		fmt.Sprint(res.Events),
		fmt.Sprintf("%.3f", res.AvgBandwidth),
		fmt.Sprintf("%.0f", res.MaxBandwidth),
	)
	if asJSON {
		return report.RenderJSON(w, table)
	}
	return report.RenderText(w, table)
}

// renderChart draws the sweep experiments as ASCII curves.
func renderChart(w io.Writer, experiment string, full bool, seed int64) error {
	cfg := experiments.QuickConfig()
	if full {
		cfg = experiments.DefaultConfig()
	}
	cfg.Seed = seed
	var series []report.Series
	title := ""
	switch experiment {
	case "fig7":
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return err
		}
		title = "Figure 7 — avg bandwidth (streams) vs requests/hour"
		tap := report.Series{Name: "tapping"}
		ud := report.Series{Name: "UD"}
		dhb := report.Series{Name: "DHB"}
		npb := report.Series{Name: "NPB"}
		for _, r := range rows {
			tap.Points = append(tap.Points, report.Point{X: r.RatePerHour, Y: r.TappingAvg})
			ud.Points = append(ud.Points, report.Point{X: r.RatePerHour, Y: r.UDAvg})
			dhb.Points = append(dhb.Points, report.Point{X: r.RatePerHour, Y: r.DHBAvg})
			npb.Points = append(npb.Points, report.Point{X: r.RatePerHour, Y: r.NPB})
		}
		series = []report.Series{tap, ud, dhb, npb}
	case "fig8":
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return err
		}
		title = "Figure 8 — max bandwidth (streams) vs requests/hour"
		ud := report.Series{Name: "UD"}
		dhb := report.Series{Name: "DHB"}
		npb := report.Series{Name: "NPB"}
		for _, r := range rows {
			ud.Points = append(ud.Points, report.Point{X: r.RatePerHour, Y: r.UDMax})
			dhb.Points = append(dhb.Points, report.Point{X: r.RatePerHour, Y: r.DHBMax})
			npb.Points = append(npb.Points, report.Point{X: r.RatePerHour, Y: r.NPB})
		}
		series = []report.Series{ud, dhb, npb}
	case "ablation":
		cfg.IncludeAblation = true
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return err
		}
		title = "Section 3 ablation — avg bandwidth vs requests/hour"
		ud := report.Series{Name: "UD"}
		dp := report.Series{Name: "dyn-pagoda"}
		dhb := report.Series{Name: "DHB"}
		for _, r := range rows {
			ud.Points = append(ud.Points, report.Point{X: r.RatePerHour, Y: r.UDAvg})
			dp.Points = append(dp.Points, report.Point{X: r.RatePerHour, Y: r.DNPBAvg})
			dhb.Points = append(dhb.Points, report.Point{X: r.RatePerHour, Y: r.DHBAvg})
		}
		series = []report.Series{ud, dp, dhb}
	case "dsb":
		rows, err := experiments.DSBComparison(cfg)
		if err != nil {
			return err
		}
		title = "DSB vs UD vs DHB — avg bandwidth vs requests/hour"
		dsb := report.Series{Name: "DSB"}
		ud := report.Series{Name: "UD"}
		dhb := report.Series{Name: "DHB"}
		for _, r := range rows {
			dsb.Points = append(dsb.Points, report.Point{X: r.RatePerHour, Y: r.DSB})
			ud.Points = append(ud.Points, report.Point{X: r.RatePerHour, Y: r.UD})
			dhb.Points = append(dhb.Points, report.Point{X: r.RatePerHour, Y: r.DHB})
		}
		series = []report.Series{dsb, ud, dhb}
	default:
		return fmt.Errorf("no chart for experiment %q", experiment)
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return report.RenderChart(w, title, series, report.ChartOptions{LogX: true})
}

// buildTables runs the requested experiment and shapes its result.
func buildTables(experiment string, full bool, seed int64) ([]report.Table, error) {
	cfg := experiments.QuickConfig()
	vbrCfg := experiments.QuickVBRConfig()
	if full {
		cfg = experiments.DefaultConfig()
		vbrCfg = experiments.DefaultVBRConfig()
	}
	cfg.Seed = seed
	vbrCfg.Seed = seed

	switch experiment {
	case "fig7":
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Fig7(rows)}, nil
	case "fig8":
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Fig8(rows)}, nil
	case "fig9":
		rows, plans, err := experiments.Fig9(vbrCfg)
		if err != nil {
			return nil, err
		}
		return report.Fig9(rows, plans), nil
	case "ablation":
		cfg.IncludeAblation = true
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Ablation(rows)}, nil
	case "peaks":
		horizon := 20000
		if full {
			horizon = 200000
		}
		res, err := experiments.Peaks(120, horizon)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Peaks(res)}, nil
	case "vbrplan":
		vbrCfg.Rates = []float64{1000}
		rows, plans, err := experiments.Fig9(vbrCfg)
		if err != nil {
			return nil, err
		}
		measured := map[core.VBRVariant]float64{
			core.VariantA: rows[0].DHBA,
			core.VariantB: rows[0].DHBB,
			core.VariantC: rows[0].DHBC,
			core.VariantD: rows[0].DHBD,
		}
		return []report.Table{report.VBRPlan(plans, measured)}, nil
	case "clientcap":
		rows, err := experiments.ClientCap(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.ClientCap(rows)}, nil
	case "reactive":
		rows, err := experiments.ReactiveZoo(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.ReactiveZoo(rows)}, nil
	case "dsb":
		rows, err := experiments.DSBComparison(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.DSB(rows)}, nil
	case "models":
		rows, err := experiments.Models(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Models(rows)}, nil
	case "ci":
		rows, err := experiments.ConfidenceSweep(cfg, 10)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Confidence(rows)}, nil
	case "wait":
		cfg.Rates = []float64{100}
		rows, err := experiments.WaitTradeoff(cfg, []int{9, 19, 49, 99, 199, 399})
		if err != nil {
			return nil, err
		}
		return []report.Table{report.WaitTradeoff(rows)}, nil
	case "buffer":
		rows, err := experiments.BufferStudy(cfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Buffer(rows)}, nil
	case "storage":
		scfg := experiments.DefaultStorageConfig()
		scfg.Seed = seed
		if !full {
			scfg.HorizonSlots = 3000
		}
		rows, err := experiments.Storage(scfg)
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Storage(rows)}, nil
	case "capacity":
		ccfg := experiments.DefaultCapacityConfig()
		ccfg.Seed = seed
		if !full {
			ccfg.HorizonSlots = 2500
			ccfg.WarmupSlots = 100
		}
		rows, err := experiments.Capacity(ccfg, []float64{30, 16, 14, 13, 12, 11})
		if err != nil {
			return nil, err
		}
		return []report.Table{report.Capacity(rows)}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", experiment)
	}
}
