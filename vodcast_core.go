// Package vodcast is a from-scratch Go implementation of the Dynamic
// Heuristic Broadcasting (DHB) protocol for video-on-demand (Carter, Pâris,
// Mohan, Long — ICDCS 2001), together with every protocol and substrate its
// evaluation depends on: fast broadcasting, pagoda/NPB and skyscraper
// mappings, the universal distribution protocol, stream tapping/patching,
// batching, selective catching, a discrete-event simulator, a VBR-video
// substrate with work-ahead smoothing, and a multi-video broadcast station.
//
// The facade is split by theme:
//
//   - vodcast_core.go (this file): the DHB scheduler, its admission API,
//     Section 4's compressed-video planning, VBR traces, workload shaping
//     and the closed-form performance models.
//   - vodcast_protocols.go: the related-work protocols the paper compares
//     against — static mappings, dynamic on-demand and reactive protocols.
//   - vodcast_experiments.go: the measurement harness and every figure
//     reproduction and follow-on study.
//   - vodcast_serving.go: the multi-video station engine, the catalogue
//     simulation, the networked server/client pair and disk provisioning.
//
// The three entry points most users want: NewDHB builds the paper's
// scheduler, Measure drives any slotted protocol under Poisson load, and
// PlanVBR turns a variable-bit-rate trace into the four Section 4
// distribution plans. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package vodcast

import (
	"vodcast/internal/analysis"
	"vodcast/internal/core"
	"vodcast/internal/trace"
	"vodcast/internal/workload"
)

// ---- The DHB protocol (the paper's contribution) ----

// DHBConfig parameterizes a DHB scheduler; see NewDHB.
type DHBConfig = core.Config

// DHB is the dynamic heuristic broadcasting scheduler of Figure 6.
type DHB = core.Scheduler

// SlotReport describes one transmitted slot of a DHB schedule.
type SlotReport = core.SlotReport

// Policy selects the placement rule of a DHB scheduler.
type Policy = core.Policy

// Placement policies: the published min-load heuristic, the naive
// latest-slot strawman it improves on, and the earliest-tie-break ablation.
const (
	PolicyHeuristic       = core.PolicyHeuristic
	PolicyNaive           = core.PolicyNaive
	PolicyMinLoadEarliest = core.PolicyMinLoadEarliest
)

// NewDHB builds a DHB scheduler.
func NewDHB(cfg DHBConfig) (*DHB, error) { return core.New(cfg) }

// AdmitOptions parameterizes one admission through DHB.AdmitRequest: the
// resume segment (0 or 1 for a full viewing) and whether to materialize the
// per-segment slot assignment.
type AdmitOptions = core.AdmitOptions

// AdmitResult reports one admission: the admit slot, the number of newly
// scheduled instances and, when requested, the per-segment assignment.
type AdmitResult = core.AdmitResult

// Sentinel errors of the scheduler's validation paths; classify wrapped
// construction and admission errors with errors.Is.
var (
	ErrBadSegmentCount = core.ErrBadSegmentCount
	ErrBadPeriods      = core.ErrBadPeriods
	ErrBadPolicy       = core.ErrBadPolicy
	ErrBadResumePoint  = core.ErrBadResumePoint
)

// ---- Compressed (VBR) video support: Section 4 ----

// VBRVariant identifies one of the DHB-a .. DHB-d solutions.
type VBRVariant = core.VBRVariant

// The four Section 4 solutions.
const (
	VariantA = core.VariantA
	VariantB = core.VariantB
	VariantC = core.VariantC
	VariantD = core.VariantD
)

// VBRSolution is a ready-to-schedule plan for one VBR video.
type VBRSolution = core.VBRSolution

// PlanVBR derives the four Section 4 plans for distributing the traced video
// with the given maximum waiting time in seconds.
func PlanVBR(tr *Trace, maxWaitSeconds float64) (map[VBRVariant]VBRSolution, error) {
	return core.PlanVBR(tr, maxWaitSeconds)
}

// ---- VBR traces ----

// Trace is a per-second bit-rate series of a compressed video.
type Trace = trace.Trace

// NewTrace builds a trace from a per-second byte series.
func NewTrace(rates []float64) (*Trace, error) { return trace.New(rates) }

// CBRTrace returns a constant-bit-rate trace.
func CBRTrace(seconds int, rate float64) (*Trace, error) { return trace.CBR(seconds, rate) }

// SyntheticMatrix generates the seeded synthetic trace calibrated to the
// published statistics of the paper's movie (8170 s, 636 KB/s mean,
// 951 KB/s peak).
func SyntheticMatrix(seed int64) (*Trace, error) { return trace.SyntheticMatrix(seed) }

// ---- Workload shaping ----

// RateFunc reports an instantaneous arrival rate (requests/second) at a
// simulated instant.
type RateFunc = workload.RateFunc

// ConstantRate returns a fixed hourly request rate.
func ConstantRate(requestsPerHour float64) RateFunc { return workload.Constant(requestsPerHour) }

// DayNightRate returns a 24-hour-periodic rate peaking at peakHour.
func DayNightRate(peakPerHour, offPeakPerHour, peakHour float64) RateFunc {
	return workload.DayNight(peakPerHour, offPeakPerHour, peakHour)
}

// ---- Closed-form performance models ----

// ModelOnDemandMean predicts the average load of an on-demand protocol over
// a static mapping at the given Poisson rate.
func ModelOnDemandMean(m *Mapping, ratePerHour, slotSeconds float64) (float64, error) {
	return analysis.OnDemandMean(m, ratePerHour, slotSeconds)
}

// ModelDHBMean predicts DHB's average load with the renewal model.
func ModelDHBMean(periods []int, ratePerHour, slotSeconds float64) (float64, error) {
	return analysis.DHBMean(periods, ratePerHour, slotSeconds)
}

// ModelDHBSaturated returns DHB's saturation bandwidth, sum of 1/T[s].
func ModelDHBSaturated(periods []int) (float64, error) {
	return analysis.DHBSaturated(periods)
}

// ModelPatchingMean returns optimal threshold patching's bandwidth,
// sqrt(1 + 2 lambda D) - 1.
func ModelPatchingMean(ratePerHour, videoSeconds float64) (float64, error) {
	return analysis.PatchingMean(ratePerHour, videoSeconds)
}

// HarmonicBandwidth returns H(n), the bandwidth of harmonic broadcasting
// and DHB's saturation level for CBR video.
func HarmonicBandwidth(n int) (float64, error) { return analysis.HarmonicBandwidth(n) }
