package core

import (
	"fmt"
	"testing"
)

// BenchmarkAdmit is the before/after matrix behind BENCH_core.json: catalogue
// sizes n x arrivals-per-slot x {reference, fast}. "reference" runs the
// linear-scan ring and no memo (Config.Reference), i.e. the pre-optimization
// trajectory; "fast" runs the RMQ ring plus the same-slot admission memo.
// Each benchmark op is ONE admission; a slot advance is folded in every
// `arrivals` admissions, so ns/op is the amortized steady-state admit cost.
// At arrivals=1 every admission pays a full placement loop on both paths
// (the memo never gets a same-slot hit), isolating the RMQ-vs-linear window
// query. At arrivals=64 the fast path serves 63 of 64 admissions from the
// memo, which is where the headline speedup comes from.
func BenchmarkAdmit(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, arrivals := range []int{1, 64} {
			for _, mode := range []struct {
				name      string
				reference bool
			}{
				{"reference", true},
				{"fast", false},
			} {
				name := fmt.Sprintf("n=%d/arrivals=%d/%s", n, arrivals, mode.name)
				b.Run(name, func(b *testing.B) {
					s, err := New(Config{Segments: n, Reference: mode.reference})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					k := 0
					for i := 0; i < b.N; i++ {
						admit(s)
						if k++; k == arrivals {
							k = 0
							s.AdvanceSlot()
						}
					}
				})
			}
		}
	}
}

// BenchmarkAdmitBuffered measures the allocation-free buffered path: the
// caller wants the full assignment vector back but supplies a reusable
// buffer, so steady-state admissions must be 0 allocs/op.
func BenchmarkAdmitBuffered(b *testing.B) {
	const n = 256
	s, err := New(Config{Segments: n})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int, n+1)
	b.ReportAllocs()
	b.ResetTimer()
	k := 0
	for i := 0; i < b.N; i++ {
		res, err := s.AdmitRequest(AdmitOptions{Assignment: buf})
		if err != nil {
			b.Fatal(err)
		}
		buf = res.Assignment
		if k++; k == 64 {
			k = 0
			s.AdvanceSlot()
		}
	}
}
