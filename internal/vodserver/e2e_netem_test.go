//go:build netem

package vodserver

import (
	"os"
	"os/exec"
	"testing"
	"time"
)

// This file is the netem-shaped A/B variant of the conntrack E2E, behind the
// `netem` build tag because it reshapes the loopback interface:
//
//	go test -tags netem -run TestE2ENetemPathAttribution ./internal/vodserver/
//
// It requires root and the tc binary, and skips itself cleanly when either is
// missing. Where the in-tree E2E distinguishes a paused reader (stalled) from
// a slow application reader (receiver_limited), this one injects packet loss
// into the PATH: a subscriber that reads as fast as it can across a lossy
// link must classify path_limited — retransmissions, not application
// behaviour — while a paused reader on the same link still classifies
// stalled. The A/B is the point: the classifier attributes the same symptom
// (late frames) to different layers.

// netemSetup shapes loopback with packet loss and returns a teardown. Skips
// the test when the environment cannot shape.
func netemSetup(t *testing.T) func() {
	t.Helper()
	if os.Geteuid() != 0 {
		t.Skip("netem shaping requires root")
	}
	tc, err := exec.LookPath("tc")
	if err != nil {
		t.Skip("tc binary not available")
	}
	if out, err := exec.Command(tc, "qdisc", "add", "dev", "lo", "root", "netem", "loss", "10%").CombinedOutput(); err != nil {
		t.Skipf("cannot shape loopback: %v: %s", err, out)
	}
	return func() {
		if out, err := exec.Command(tc, "qdisc", "del", "dev", "lo", "root").CombinedOutput(); err != nil {
			t.Errorf("netem teardown failed — loopback still shaped: %v: %s", err, out)
		}
	}
}

func TestE2ENetemPathAttribution(t *testing.T) {
	teardown := netemSetup(t)
	defer teardown()

	s, err := Start(Config{
		Addr:             "127.0.0.1:0",
		Videos:           []VideoConfig{{ID: 1, Segments: 2000, SegmentBytes: 4 << 10}},
		SlotDuration:     5 * time.Millisecond,
		SubscriberBuffer: 512,
		StatsAddr:        "127.0.0.1:0",
		SLOTargetSeconds: 10,
		// Sweeps are driven by hand, exactly as in the unshaped E2E.
		ConntrackInterval: time.Hour,
		AlertInterval:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The shaped-path subscriber reads as fast as it can: every late frame
	// it sees is the network's fault, and the kernel's retransmit counter is
	// the evidence.
	shaped := admitRaw(t, s.Addr(), 1)
	defer shaped.Close()
	shapedRemote := shaped.LocalAddr().String()
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := shaped.Read(buf); err != nil {
				return
			}
		}
	}()

	// The paused subscriber stops reading entirely — same lossy link, but
	// the stall is its own: nothing moves regardless of the path.
	paused := admitRaw(t, s.Addr(), 1)
	defer paused.Close()
	pausedRemote := paused.LocalAddr().String()

	deadline := time.Now().Add(20 * time.Second)
	for {
		s.Conns().Sweep()
		sum := connzSummary(t, s)
		sh, shok := connzRow(sum, shapedRemote)
		pa, paok := connzRow(sum, pausedRemote)
		if shok && paok && sh.State == "path_limited" && pa.State == "stalled" {
			if sh.Retrans == 0 {
				t.Fatalf("path_limited without retransmit evidence: %+v", sh)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("classifier never separated path loss from the stall; /connz: %+v", sum)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
